package distrib

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// ChaosConfig is the deterministic fault-injection harness for the
// fabric's transports. Every frame crossing a chaos-wrapped link
// draws one action from a seeded stream — pass, delay, drop, corrupt,
// truncate, stall, or kill — so a campaign of injected faults replays
// identically for a given seed while the merged results must stay
// bit-identical to an in-process run (requeue + fallback guarantee
// correctness; chaos only decides how hard they are exercised).
//
// Rates are probabilities in [0,1] and are evaluated cumulatively in
// field order; their sum must stay ≤ 1 (the remainder is the pass
// probability).
type ChaosConfig struct {
	// Seed drives every per-link decision stream. Streams are derived
	// per (seed, worker, direction) so links fail independently but
	// reproducibly.
	Seed int64
	// DelayRate holds a frame for a deterministic duration ≤ MaxDelay.
	DelayRate float64
	// DropRate silently discards a frame (the sender believes it was
	// delivered — the shard-timeout / heartbeat paths must recover).
	DropRate float64
	// CorruptRate flips one deterministic byte anywhere in the frame,
	// including the length prefix and checksum.
	CorruptRate float64
	// TruncateRate delivers only the first half of a frame, desyncing
	// the stream.
	TruncateRate float64
	// StallRate wedges the link: the frame (and the goroutine moving
	// it) blocks until Stall elapses or the worker is declared dead.
	StallRate float64
	// KillRate terminates the worker process (or closes its
	// connection) mid-frame.
	KillRate float64
	// MaxDelay bounds DelayRate holds (default 2ms).
	MaxDelay time.Duration
	// Stall bounds how long a stalled link stays wedged; 0 means
	// until the link is torn down — the harshest setting, which is
	// exactly what the heartbeat detector must handle.
	Stall time.Duration
}

// UniformChaos spreads a total fault rate evenly across all six
// actions — the `-chaos seed,rate` CLI shape.
func UniformChaos(seed int64, rate float64) *ChaosConfig {
	per := rate / 6
	return &ChaosConfig{
		Seed:      seed,
		DelayRate: per, DropRate: per, CorruptRate: per,
		TruncateRate: per, StallRate: per, KillRate: per,
	}
}

// ParseChaos parses the CLI form "seed,rate" (e.g. "7,0.2").
func ParseChaos(s string) (*ChaosConfig, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return nil, fmt.Errorf("distrib: -chaos wants seed,rate (got %q)", s)
	}
	seed, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("distrib: -chaos seed: %w", err)
	}
	rate, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return nil, fmt.Errorf("distrib: -chaos rate: %w", err)
	}
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("distrib: -chaos rate %v outside [0,1]", rate)
	}
	return UniformChaos(seed, rate), nil
}

type chaosAction uint8

const (
	chaosPass chaosAction = iota
	chaosDelay
	chaosDrop
	chaosCorrupt
	chaosTruncate
	chaosStall
	chaosKill
)

// splitmix64 is the memory-less PRNG step used for chaos streams —
// one uint64 of state, full-period, and trivially seedable per link.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// chaosStream is one link direction's deterministic decision source.
// closed is the owning worker's stop channel (released when the
// worker is declared dead), so a stalled frame never outlives its
// link; kill tears the worker down (process kill or conn close).
type chaosStream struct {
	state  uint64
	cfg    *ChaosConfig
	closed <-chan struct{}
	kill   func()
}

func newChaosStream(cfg *ChaosConfig, workerID, direction int, closed <-chan struct{}, kill func()) *chaosStream {
	seed := splitmix64(uint64(cfg.Seed)<<8 ^ uint64(workerID)<<1 ^ uint64(direction))
	return &chaosStream{state: seed, cfg: cfg, closed: closed, kill: kill}
}

// next returns a deterministic uniform draw in [0,1).
func (c *chaosStream) next() float64 {
	c.state = splitmix64(c.state)
	return float64(c.state>>11) / float64(1<<53)
}

// action draws one fault decision for the next frame.
func (c *chaosStream) action() chaosAction {
	u := c.next()
	for a, rate := range []float64{
		c.cfg.DelayRate, c.cfg.DropRate, c.cfg.CorruptRate,
		c.cfg.TruncateRate, c.cfg.StallRate, c.cfg.KillRate,
	} {
		if u < rate {
			return chaosAction(a + 1)
		}
		u -= rate
	}
	return chaosPass
}

// delay returns the deterministic hold duration for a delay action.
func (c *chaosStream) delay() time.Duration {
	max := c.cfg.MaxDelay
	if max <= 0 {
		max = 2 * time.Millisecond
	}
	return time.Duration(c.next() * float64(max))
}

// stall blocks for the configured stall window or until the link is
// torn down.
func (c *chaosStream) stall() {
	if c.cfg.Stall <= 0 {
		<-c.closed
		return
	}
	select {
	case <-time.After(c.cfg.Stall):
	case <-c.closed:
	}
}

// chaosWriter applies one chaos decision per Write. writeFrame issues
// exactly one Write per frame (and flushes immediately, so the bufio
// layer above never merges frames), making each Write one frame.
type chaosWriter struct {
	w  io.Writer
	st *chaosStream
}

var errChaosKilled = errors.New("distrib: chaos killed link")

func (cw *chaosWriter) Write(p []byte) (int, error) {
	switch cw.st.action() {
	case chaosDelay:
		time.Sleep(cw.st.delay())
	case chaosDrop:
		return len(p), nil
	case chaosCorrupt:
		q := append([]byte(nil), p...)
		q[int(cw.st.next()*float64(len(q)))] ^= 0xff
		if _, err := cw.w.Write(q); err != nil {
			return 0, err
		}
		return len(p), nil
	case chaosTruncate:
		if _, err := cw.w.Write(p[:len(p)/2]); err != nil {
			return 0, err
		}
		return len(p), nil
	case chaosStall:
		cw.st.stall()
		return len(p), nil
	case chaosKill:
		cw.st.kill()
		return 0, errChaosKilled
	}
	return cw.w.Write(p)
}

// chaosReadProxy re-frames the worker's outbound stream through a
// pipe, applying one chaos decision per frame. It parses real frame
// boundaries from the source (the worker always writes well-formed
// frames) so corruption and truncation hit exactly one frame.
func chaosReadProxy(src io.Reader, st *chaosStream) io.Reader {
	pr, pw := io.Pipe()
	go func() {
		br := bufio.NewReaderSize(src, 1<<16)
		for {
			var hdr [frameHeaderSize]byte
			if _, err := io.ReadFull(br, hdr[:]); err != nil {
				pw.CloseWithError(err)
				return
			}
			n := binary.LittleEndian.Uint32(hdr[0:4])
			if n == 0 || n > maxFrame {
				pw.CloseWithError(fmt.Errorf("distrib: chaos proxy: bad frame length %d", n))
				return
			}
			frame := make([]byte, frameHeaderSize+int(n))
			copy(frame, hdr[:])
			if _, err := io.ReadFull(br, frame[frameHeaderSize:]); err != nil {
				pw.CloseWithError(err)
				return
			}
			switch st.action() {
			case chaosDelay:
				time.Sleep(st.delay())
			case chaosDrop:
				continue
			case chaosCorrupt:
				frame[int(st.next()*float64(len(frame)))] ^= 0xff
			case chaosTruncate:
				if _, err := pw.Write(frame[:len(frame)/2]); err != nil {
					return
				}
				continue
			case chaosStall:
				st.stall()
				continue
			case chaosKill:
				st.kill()
				pw.CloseWithError(errChaosKilled)
				return
			}
			if _, err := pw.Write(frame); err != nil {
				return
			}
		}
	}()
	return pr
}
