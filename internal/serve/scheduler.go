// Package serve is the mapping-as-a-service layer: an HTTP/JSON
// daemon that drives one shared evaluation engine for many concurrent
// tenants, so every request after the first runs against warm
// interned topologies and memoized prices. The scheduler admits
// requests under fair-share admission control, the handler clamps
// per-request budgets and streams checkpointed best-so-far results,
// and the engine-level miss coalescer merges concurrent requests'
// cache misses into shared batched pricing calls.
package serve

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Overloaded is the admission-control rejection: the server is at
// capacity (or the tenant is over its fair share) and the client
// should retry after the hinted delay. The HTTP layer maps it to
// 503 + Retry-After.
type Overloaded struct {
	// Tenant is set when the rejection is a fair-share bound rather
	// than total capacity.
	Tenant string
	// RetryAfter estimates when a slot frees up: current queue depth
	// times the mean observed service time over the concurrency.
	RetryAfter time.Duration
}

func (o *Overloaded) Error() string {
	if o.Tenant != "" {
		return fmt.Sprintf("serve: tenant %q over fair share, retry after %s", o.Tenant, o.RetryAfter)
	}
	return fmt.Sprintf("serve: at capacity, retry after %s", o.RetryAfter)
}

// SchedulerStats snapshots the admission-control counters for
// /metrics.
type SchedulerStats struct {
	Running       int   `json:"running"`
	Queued        int   `json:"queued"`
	Tenants       int   `json:"active_tenants"`
	Admitted      int64 `json:"admitted"`
	Completed     int64 `json:"completed"`
	RejectedFull  int64 `json:"rejected_capacity"`
	RejectedShare int64 `json:"rejected_fair_share"`
	Canceled      int64 `json:"canceled_in_queue"`
	// QueueWaitNS and ServiceNS are cumulative, for mean-latency
	// derivation without a histogram dependency.
	QueueWaitNS int64 `json:"queue_wait_ns_total"`
	ServiceNS   int64 `json:"service_ns_total"`
}

// Scheduler is the request admission controller: a bounded run queue
// with per-tenant fair-share caps. Capacity is maxConcurrent running
// solves plus maxQueue waiting ones; each tenant may hold at most
// ceil(capacity / active tenants) slots, so one chatty tenant cannot
// starve the rest, while a lone tenant still gets the whole server.
type Scheduler struct {
	maxConcurrent int
	maxQueue      int
	slots         chan struct{}

	mu      sync.Mutex
	tenant  map[string]int
	queued  int
	running int
	stats   SchedulerStats
	// meanServiceNS is an EWMA of observed solve times, seeding the
	// Retry-After hint; starts at a second so the first rejection
	// still carries a sane hint.
	meanServiceNS float64
}

// NewScheduler builds a scheduler admitting maxConcurrent running
// solves and maxQueue queued ones. Non-positive values select 1
// running / 0 queued (strictly serial, reject when busy).
func NewScheduler(maxConcurrent, maxQueue int) *Scheduler {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Scheduler{
		maxConcurrent: maxConcurrent,
		maxQueue:      maxQueue,
		slots:         make(chan struct{}, maxConcurrent),
		tenant:        map[string]int{},
		meanServiceNS: float64(time.Second),
	}
}

// retryAfter estimates the wait for a freed slot (caller holds mu).
func (s *Scheduler) retryAfter() time.Duration {
	depth := s.queued + 1
	d := time.Duration(float64(depth) * s.meanServiceNS / float64(s.maxConcurrent))
	if d < time.Second {
		d = time.Second
	}
	return d.Round(time.Second)
}

// Admit reserves a solve slot for tenant, blocking in the bounded
// queue until one frees. It returns a release callback the caller
// must invoke when the solve finishes, plus the time spent queued.
// Rejections (capacity or fair share) return *Overloaded; a context
// cancellation while queued returns ctx.Err().
func (s *Scheduler) Admit(ctx context.Context, tenant string) (release func(), wait time.Duration, err error) {
	s.mu.Lock()
	capacity := s.maxConcurrent + s.maxQueue
	if s.running+s.queued >= capacity {
		s.stats.RejectedFull++
		o := &Overloaded{RetryAfter: s.retryAfter()}
		s.mu.Unlock()
		return nil, 0, o
	}
	active := len(s.tenant)
	if s.tenant[tenant] == 0 {
		active++
	}
	share := (capacity + active - 1) / active
	if s.tenant[tenant] >= share {
		s.stats.RejectedShare++
		o := &Overloaded{Tenant: tenant, RetryAfter: s.retryAfter()}
		s.mu.Unlock()
		return nil, 0, o
	}
	s.tenant[tenant]++
	s.queued++
	s.mu.Unlock()

	enqueued := time.Now()
	select {
	case s.slots <- struct{}{}:
	case <-ctx.Done():
		s.mu.Lock()
		s.queued--
		s.stats.Canceled++
		s.dropTenant(tenant)
		s.mu.Unlock()
		return nil, time.Since(enqueued), ctx.Err()
	}
	wait = time.Since(enqueued)

	s.mu.Lock()
	s.queued--
	s.running++
	s.stats.Admitted++
	s.stats.QueueWaitNS += wait.Nanoseconds()
	s.mu.Unlock()

	started := time.Now()
	var once sync.Once
	release = func() {
		once.Do(func() {
			service := time.Since(started)
			<-s.slots
			s.mu.Lock()
			s.running--
			s.stats.Completed++
			s.stats.ServiceNS += service.Nanoseconds()
			// EWMA with a 1/8 gain: stable under bursts, converges in
			// a few requests.
			s.meanServiceNS += (float64(service.Nanoseconds()) - s.meanServiceNS) / 8
			s.dropTenant(tenant)
			s.mu.Unlock()
		})
	}
	return release, wait, nil
}

// WaitIdle blocks until no solve is running or queued, polling the
// counters (the scheduler has no completion broadcast and drain is
// rare enough that 20 ms polls beat adding one). Returns ctx.Err()
// when the context ends first.
func (s *Scheduler) WaitIdle(ctx context.Context) error {
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		s.mu.Lock()
		idle := s.running == 0 && s.queued == 0
		s.mu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// dropTenant decrements a tenant's slot count, removing the map
// entry at zero so fair shares are computed over active tenants only
// (caller holds mu).
func (s *Scheduler) dropTenant(tenant string) {
	if s.tenant[tenant]--; s.tenant[tenant] <= 0 {
		delete(s.tenant, tenant)
	}
}

// Stats snapshots the counters.
func (s *Scheduler) Stats() SchedulerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Running = s.running
	st.Queued = s.queued
	st.Tenants = len(s.tenant)
	return st
}
