package surrogate

import (
	"math"
	"math/rand"

	"temp/internal/model"
	"temp/internal/nn"
	"temp/internal/parallel"
)

// This file provides the operator-level feature mappings and trainer
// behind the "surrogate" cost backend: an MLP that learns a teacher
// per-operator cost model (the closed-form analytic tier) so the
// solver can screen huge mapping spaces without touching the exact
// model. Training is driven entirely by the caller's seeded RNG, so a
// fixed (teacher, seed) pair always yields bit-identical predictors.

// boolFeat encodes a flag as a {0,1} feature.
func boolFeat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// IntraFeatures maps one (operator, configuration) pair onto the
// surrogate's intra-cost feature vector: tensor volumes, parallel
// degrees and the structural flags that switch cost-model branches.
func IntraFeatures(op model.Op, cfg parallel.Config) []float64 {
	cfg = cfg.Normalize()
	return []float64{
		op.FLOPs,
		op.Input.Bytes(),
		op.Output.Bytes(),
		op.Weight.Bytes(),
		float64(cfg.DP), float64(cfg.TP), float64(cfg.SP),
		float64(cfg.CP), float64(cfg.TATP),
		boolFeat(op.Kind.IsGEMM()),
		boolFeat(op.FlashFused),
		boolFeat(op.TPSharded),
		boolFeat(op.HasWeight()),
		boolFeat(cfg.FSDP),
		boolFeat(cfg.MegatronSP),
	}
}

// InterFeatures maps a resharding volume onto the inter-cost feature
// vector. The structural layout math (which bytes move) is exact and
// cheap; only the link-time curve is learned.
func InterFeatures(bytes float64) []float64 {
	return []float64{bytes}
}

// OpDNN is a trained operator-level latency predictor: standardized
// log features and a log-space target, so accuracy is uniform in
// relative terms across the latency range (exact-zero costs — e.g.
// resharding between identical layouts — are served structurally by
// the caller, never learned).
//
// After TrainOpDNN returns, an OpDNN is immutable: Predict only reads
// the trained weights, so one predictor may serve concurrent Predict
// calls from any number of goroutines.
type OpDNN struct {
	mlp *nn.MLP
	std *nn.Standardizer
}

// opTargetFloor keeps log targets finite for degenerate zero-cost
// samples.
const opTargetFloor = 1e-12

// TrainOpDNN fits an operator-level predictor on a dataset. hidden
// sizes the two hidden layers and epochs bounds training; zero values
// take the defaults (24, 150).
func TrainOpDNN(train []Sample, hidden, epochs int, rng *rand.Rand) *OpDNN {
	if hidden <= 0 {
		hidden = 24
	}
	if epochs <= 0 {
		epochs = 150
	}
	xs := make([][]float64, len(train))
	ys := make([][]float64, len(train))
	for i, s := range train {
		xs[i] = logFeat(s.Features)
		ys[i] = []float64{math.Log(math.Max(s.TargetMS, opTargetFloor))}
	}
	std := nn.FitStandardizer(xs)
	xs = std.ApplyAll(xs)
	mlp := nn.NewMLP([]int{len(xs[0]), hidden, hidden, 1}, rng)
	mlp.Fit(xs, ys, epochs, 32, nn.AdamConfig{LR: 3e-3}, rng)
	return &OpDNN{mlp: mlp, std: std}
}

// Predict implements Predictor (milliseconds).
func (d *OpDNN) Predict(features []float64) float64 {
	x := d.std.Apply(logFeat(features))
	return math.Exp(d.mlp.Predict(x)[0])
}

var _ Predictor = (*OpDNN)(nil)
