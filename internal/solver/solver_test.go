package solver

import (
	"testing"

	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
)

// mustDLS runs DLS failing the test on option errors.
func mustDLS(t *testing.T, g model.Graph, space []parallel.Config, cm CostModel, opts DLSOptions) (Assignment, Stats) {
	t.Helper()
	a, s, err := DLS(g, space, cm, opts)
	if err != nil {
		t.Fatalf("DLS: %v", err)
	}
	return a, s
}

func setup() (model.Graph, []parallel.Config, *Analytic) {
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	g := model.BlockGraph(m)
	space := parallel.EnumerateConfigs(w.Dies(), true, 0)
	return g, space, &Analytic{W: w, M: m}
}

func TestAnalyticIntraPositive(t *testing.T) {
	g, space, cm := setup()
	for _, op := range g.Ops {
		for _, cfg := range space[:4] {
			if v := cm.Intra(op, cfg); v <= 0 {
				t.Errorf("Intra(%s, %s) = %v", op.Name, cfg, v)
			}
		}
	}
}

func TestAnalyticInterZeroForSameLayout(t *testing.T) {
	g, space, cm := setup()
	cfg := space[0]
	if v := cm.Inter(g.Ops[0], g.Ops[1], cfg, cfg); v != 0 {
		t.Errorf("same-layout reshard cost = %v, want 0", v)
	}
	// A DP→TATP layout change costs something.
	a := parallel.Config{DP: 32}.Normalize()
	b := parallel.Config{TATP: 32}.Normalize()
	if v := cm.Inter(g.Ops[0], g.Ops[1], a, b); v <= 0 {
		t.Errorf("layout change reshard cost = %v, want >0", v)
	}
}

func TestAnalyticMemoryOK(t *testing.T) {
	_, _, cm := setup()
	if !cm.MemoryOK(parallel.Config{DP: 4, TATP: 8}.Normalize()) {
		t.Error("6.7B TATP config should fit")
	}
	big := &Analytic{W: hw.EvaluationWafer(), M: model.GPT3_175B()}
	if big.MemoryOK(parallel.Config{DP: 32}.Normalize()) {
		t.Error("175B pure DP (replicated weights) should not fit")
	}
}

func TestChainDPOptimalOnTinyInstance(t *testing.T) {
	// On a small instance, chain DP must match exhaustive search.
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	g := model.BlockGraph(m)
	sub := model.Graph{Model: m, Ops: g.Ops[:4]}
	space := parallel.EnumerateConfigs(w.Dies(), true, 8)[:6]
	cm := &Analytic{W: w, M: m}

	_, exh := Exhaustive(sub, space, cm)
	assign, dls := mustDLS(t, sub, space, cm, DLSOptions{Seed: 3, DisableGA: true})
	if len(assign) != len(sub.Ops) {
		t.Fatalf("assignment length %d", len(assign))
	}
	// DP optimizes the chain cost exactly; exhaustive must agree.
	if dls.DPCost > exh.FinalCost*(1+1e-9) {
		t.Errorf("chain DP cost %v worse than exhaustive %v", dls.DPCost, exh.FinalCost)
	}
}

func TestGANeverWorsensDP(t *testing.T) {
	g, space, cm := setup()
	_, withGA := mustDLS(t, g, space, cm, DLSOptions{Seed: 11})
	if withGA.FinalCost > withGA.DPCost*(1+1e-9) {
		t.Errorf("GA worsened DP result: %v → %v", withGA.DPCost, withGA.FinalCost)
	}
	if withGA.Generations == 0 {
		t.Error("GA did not run")
	}
}

func TestDLSDeterministic(t *testing.T) {
	g, space, cm := setup()
	a1, s1 := mustDLS(t, g, space, cm, DLSOptions{Seed: 5})
	a2, s2 := mustDLS(t, g, space, cm, DLSOptions{Seed: 5})
	if s1.FinalCost != s2.FinalCost {
		t.Errorf("same seed, different costs: %v vs %v", s1.FinalCost, s2.FinalCost)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("same seed, different assignments at op %d", i)
		}
	}
}

func TestDLSFasterThanExhaustive(t *testing.T) {
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	g := model.BlockGraph(m)
	space := parallel.EnumerateConfigs(w.Dies(), true, 0)
	cm := &Analytic{W: w, M: m}
	sub := model.Graph{Model: m, Ops: g.Ops[:6]}

	_, dls := mustDLS(t, g, space, cm, DLSOptions{Seed: 7})
	_, exh := Exhaustive(sub, space, cm)
	// DLS effort is polynomial (memoized model calls); the joint
	// search expands a tree that grows geometrically per operator.
	dlsPerOp := float64(dls.Evaluations) / float64(len(g.Ops))
	exhPerOp := float64(exh.Nodes) / float64(len(sub.Ops))
	if exhPerOp <= dlsPerOp {
		t.Errorf("exhaustive per-op node expansions %v not above DLS evals %v", exhPerOp, dlsPerOp)
	}
}

func TestDLSAvoidsOOMConfigs(t *testing.T) {
	m := model.GPT3_175B()
	w := hw.EvaluationWafer()
	g := model.BlockGraph(m)
	space := parallel.EnumerateConfigs(w.Dies(), true, 0)
	cm := &Analytic{W: w, M: m}
	assign, stats := mustDLS(t, g, space, cm, DLSOptions{Seed: 9})
	if stats.FinalCost >= 1e6 {
		t.Fatalf("DLS could not find a memory-feasible assignment (cost %v)", stats.FinalCost)
	}
	for i, c := range assign {
		if !cm.MemoryOK(space[c]) {
			t.Errorf("op %d assigned OOM config %s", i, space[c])
		}
	}
}

func TestUniform(t *testing.T) {
	idx, share := Uniform(Assignment{2, 2, 1, 2})
	if idx != 2 || share != 0.75 {
		t.Errorf("Uniform = %d/%v", idx, share)
	}
	if i, s := Uniform(nil); i != 0 || s != 0 {
		t.Errorf("empty Uniform = %d/%v", i, s)
	}
}

func TestExhaustivePruningCorrect(t *testing.T) {
	// Pruned exhaustive must equal brute-force total cost on a toy
	// instance evaluated through assignmentCost.
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	g := model.BlockGraph(m)
	sub := model.Graph{Model: m, Ops: g.Ops[:3]}
	space := parallel.EnumerateConfigs(w.Dies(), true, 4)[:4]
	cm := &Analytic{W: w, M: m}
	best, stats := Exhaustive(sub, space, cm)

	ev := newEvaluator(cm, sub.Ops, space)
	bruteBest := 1e300
	var cur Assignment = make([]int, 3)
	for a := 0; a < len(space); a++ {
		for b := 0; b < len(space); b++ {
			for c := 0; c < len(space); c++ {
				cur[0], cur[1], cur[2] = a, b, c
				if v := ev.assignmentCost(cur); v < bruteBest {
					bruteBest = v
				}
			}
		}
	}
	if diff := stats.FinalCost - bruteBest; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("exhaustive %v ≠ brute force %v", stats.FinalCost, bruteBest)
	}
	if got := ev.assignmentCost(best); got != stats.FinalCost {
		t.Errorf("returned assignment cost %v ≠ reported %v", got, stats.FinalCost)
	}
}
