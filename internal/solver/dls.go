package solver

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"temp/internal/engine"
	"temp/internal/model"
	"temp/internal/parallel"
)

// Assignment maps each operator of the block graph to an index into
// the strategy space.
type Assignment []int

// Stats records what a search did.
type Stats struct {
	// Evaluations counts distinct Intra/Inter cost-model calls (the
	// memoized unique-key count, identical at any worker count).
	Evaluations int
	// Nodes counts search-tree expansions (exhaustive search only);
	// it is the quantity that explodes as Ω(|S|^m) in §III
	// challenge 3.
	Nodes int
	// Elapsed is the wall-clock search time.
	Elapsed time.Duration
	// DPCost is the chain-optimal cost found by dynamic programming.
	DPCost float64
	// FinalCost is the cost after genetic refinement.
	FinalCost float64
	// Generations the GA ran.
	Generations int
}

// DLSOptions tunes the dual-level search.
type DLSOptions struct {
	// Population and Generations size the genetic stage; zero values
	// take defaults (32, 40).
	Population, Generations int
	// MutationRate per gene (default 0.15).
	MutationRate float64
	// Seed drives the GA's randomness.
	Seed int64
	// DisableGA stops after dynamic programming (ablation).
	DisableGA bool
	// Workers bounds the parallel evaluation of each GA generation;
	// 0 means GOMAXPROCS. The search result is bit-identical at any
	// worker count: the RNG only drives the (serial) crossover and
	// mutation steps, and cost evaluation is a pure function. Set 1
	// for CostModel implementations that are not safe for concurrent
	// use (see the CostModel contract).
	Workers int
}

func (o DLSOptions) withDefaults() DLSOptions {
	if o.Population == 0 {
		o.Population = 32
	}
	if o.Generations == 0 {
		o.Generations = 40
	}
	if o.MutationRate == 0 {
		o.MutationRate = 0.15
	}
	return o
}

// evalShards shards the memo maps so parallel GA workers do not
// serialize on one lock; must be a power of two.
const evalShards = 16

type memoShard[K comparable] struct {
	mu sync.RWMutex
	m  map[K]float64
}

// get returns the memoized value for k, computing it at most once
// per distinct key observed at insert time; fresh reports whether
// this call stored a new entry (for deterministic evaluation
// counting — duplicate concurrent computes of the same key return
// the stored value and do not count).
func (s *memoShard[K]) get(k K, compute func() float64) (v float64, fresh bool) {
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	if ok {
		return v, false
	}
	v = compute()
	s.mu.Lock()
	if old, ok := s.m[k]; ok {
		s.mu.Unlock()
		return old, false
	}
	s.m[k] = v
	s.mu.Unlock()
	return v, true
}

// evalCounter wraps a CostModel to count evaluations and memoize.
// It is safe for concurrent use: the memo maps are sharded behind
// read-write locks and the counter is atomic, so parallel GA workers
// share one memo. The count is the number of distinct keys
// evaluated, which is identical in serial and parallel runs.
type evalCounter struct {
	cm    CostModel
	ops   []model.Op
	space []parallel.Config
	n     atomic.Int64

	intra [evalShards]memoShard[[2]int]
	inter [evalShards]memoShard[[3]int]
	mem   [evalShards]memoShard[int]
}

func newEvalCounter(cm CostModel, ops []model.Op, space []parallel.Config) *evalCounter {
	e := &evalCounter{cm: cm, ops: ops, space: space}
	for i := 0; i < evalShards; i++ {
		e.intra[i].m = map[[2]int]float64{}
		e.inter[i].m = map[[3]int]float64{}
		e.mem[i].m = map[int]float64{}
	}
	return e
}

func (e *evalCounter) intraCost(op, cfg int) float64 {
	v, fresh := e.intra[(op*31+cfg)&(evalShards-1)].get([2]int{op, cfg}, func() float64 {
		return e.cm.Intra(e.ops[op], e.space[cfg])
	})
	if fresh {
		e.n.Add(1)
	}
	return v
}

func (e *evalCounter) interCost(op int, a, b int) float64 {
	if op == 0 {
		return 0
	}
	v, fresh := e.inter[(op*31+a*7+b)&(evalShards-1)].get([3]int{op, a, b}, func() float64 {
		return e.cm.Inter(e.ops[op-1], e.ops[op], e.space[a], e.space[b])
	})
	if fresh {
		e.n.Add(1)
	}
	return v
}

func (e *evalCounter) memoryOK(cfg int) bool {
	v, fresh := e.mem[cfg&(evalShards-1)].get(cfg, func() float64 {
		if e.cm.MemoryOK(e.space[cfg]) {
			return 1
		}
		return 0
	})
	if fresh {
		e.n.Add(1)
	}
	return v == 1
}

// oomPenalty dominates any latency; an assignment with an
// out-of-memory gene can never beat a feasible one.
const oomPenalty = 1e6

func (e *evalCounter) penalty(cfg int) float64 {
	if e.memoryOK(cfg) {
		return 0
	}
	return oomPenalty
}

// assignmentCost totals the chain objective of Eq. (4) plus an OOM
// penalty for strategies that exceed per-die memory.
func (e *evalCounter) assignmentCost(a Assignment) float64 {
	var total float64
	for i, cfg := range a {
		total += e.intraCost(i, cfg) + e.penalty(cfg)
		if i > 0 {
			total += e.interCost(i, a[i-1], cfg)
		}
	}
	return total
}

// DLS runs the dual-level search of Fig. 12(b) over the block graph:
// the chain is cut at residual-free boundaries, a recursive dynamic
// program finds the chain-optimal per-operator strategies, and a
// genetic stage refines the joint assignment under the global memory
// constraint. Each generation's population is priced in parallel
// across opts.Workers goroutines through the shared memo; for a
// fixed seed the returned assignment and cost are bit-identical at
// any worker count. Returns the assignment, its cost, and search
// stats.
func DLS(g model.Graph, space []parallel.Config, cm CostModel, opts DLSOptions) (Assignment, Stats) {
	opts = opts.withDefaults()
	start := time.Now()
	ev := newEvalCounter(cm, g.Ops, space)

	// Level 1: dynamic programming per residual-free segment. The
	// segment boundaries cut the O(N²) joint space into independent
	// chains (§VII-B); transitions across boundaries are still
	// charged via interCost when totalling.
	assign := make(Assignment, len(g.Ops))
	offset := 0
	for _, seg := range g.Segments() {
		segAssign := chainDP(ev, offset, len(seg))
		copy(assign[offset:], segAssign)
		offset += len(seg)
	}
	dpCost := ev.assignmentCost(assign)

	stats := Stats{DPCost: dpCost}
	best := append(Assignment(nil), assign...)
	bestCost := dpCost

	// Level 2: genetic refinement (crossover, mutation, elitism) on
	// the joint genome, seeded with the DP solution. Only the cost
	// evaluation fans out; selection and variation stay serial so
	// the RNG stream matches the single-threaded search exactly.
	if !opts.DisableGA {
		rng := rand.New(rand.NewSource(opts.Seed))
		pop := make([]Assignment, opts.Population)
		costs := make([]float64, opts.Population)
		pop[0] = append(Assignment(nil), assign...)
		for i := 1; i < opts.Population; i++ {
			ind := append(Assignment(nil), assign...)
			// Diversify: re-roll a few genes.
			for j := range ind {
				if rng.Float64() < 0.3 {
					ind[j] = rng.Intn(len(space))
				}
			}
			pop[i] = ind
		}
		evalPop := func() {
			engine.ForEach(opts.Workers, len(pop), func(i int) {
				costs[i] = ev.assignmentCost(pop[i])
			})
		}
		evalPop()
		for gen := 0; gen < opts.Generations; gen++ {
			stats.Generations++
			next := make([]Assignment, 0, opts.Population)
			// Elitism: carry the best individual forward.
			eliteIdx := 0
			for i := range costs {
				if costs[i] < costs[eliteIdx] {
					eliteIdx = i
				}
			}
			next = append(next, append(Assignment(nil), pop[eliteIdx]...))
			for len(next) < opts.Population {
				a := tournament(rng, pop, costs)
				b := tournament(rng, pop, costs)
				child := crossover(rng, a, b)
				mutate(rng, child, len(space), opts.MutationRate)
				next = append(next, child)
			}
			pop = next
			evalPop()
			for i := range pop {
				if costs[i] < bestCost {
					bestCost = costs[i]
					best = append(Assignment(nil), pop[i]...)
				}
			}
		}
	}

	stats.FinalCost = bestCost
	stats.Evaluations = int(ev.n.Load())
	stats.Elapsed = time.Since(start)
	return best, stats
}

// chainDP solves the per-operator assignment of a chain segment
// [offset, offset+n) optimally in O(n·|S|²).
func chainDP(ev *evalCounter, offset, n int) Assignment {
	s := len(ev.space)
	cost := make([][]float64, n)
	from := make([][]int, n)
	for i := range cost {
		cost[i] = make([]float64, s)
		from[i] = make([]int, s)
	}
	for c := 0; c < s; c++ {
		cost[0][c] = ev.intraCost(offset, c) + ev.penalty(c)
	}
	for i := 1; i < n; i++ {
		for c := 0; c < s; c++ {
			best := math.Inf(1)
			bestFrom := 0
			for p := 0; p < s; p++ {
				v := cost[i-1][p] + ev.interCost(offset+i, p, c)
				if v < best {
					best = v
					bestFrom = p
				}
			}
			cost[i][c] = best + ev.intraCost(offset+i, c) + ev.penalty(c)
			from[i][c] = bestFrom
		}
	}
	// Trace back from the cheapest terminal state.
	bestC := 0
	for c := 1; c < s; c++ {
		if cost[n-1][c] < cost[n-1][bestC] {
			bestC = c
		}
	}
	out := make(Assignment, n)
	out[n-1] = bestC
	for i := n - 1; i > 0; i-- {
		out[i-1] = from[i][out[i]]
	}
	return out
}

func tournament(rng *rand.Rand, pop []Assignment, costs []float64) Assignment {
	a, b := rng.Intn(len(pop)), rng.Intn(len(pop))
	if costs[a] <= costs[b] {
		return pop[a]
	}
	return pop[b]
}

func crossover(rng *rand.Rand, a, b Assignment) Assignment {
	child := make(Assignment, len(a))
	cut := rng.Intn(len(a))
	copy(child, a[:cut])
	copy(child[cut:], b[cut:])
	return child
}

func mutate(rng *rand.Rand, a Assignment, space int, rate float64) {
	for i := range a {
		if rng.Float64() < rate {
			a[i] = rng.Intn(space)
		}
	}
}

// Exhaustive performs the joint search the paper's ILP baseline
// stands for: full enumeration of |S|^m assignments with
// branch-and-bound pruning on the (admissible) partial chain cost.
// The memory-feasibility penalty of every strategy is precomputed
// once before the descent, so the inner loop replaces a map-backed
// bound check with a slice lookup. Practical only on reduced
// instances; the §VIII-H comparison runs both searches on instances
// this one can finish.
func Exhaustive(g model.Graph, space []parallel.Config, cm CostModel) (Assignment, Stats) {
	start := time.Now()
	ev := newEvalCounter(cm, g.Ops, space)
	n := len(g.Ops)
	// Hoist the per-config feasibility penalty out of the descent:
	// every strategy is probed at depth 0 anyway, so this costs no
	// extra cost-model calls.
	pen := make([]float64, len(space))
	for c := range space {
		pen[c] = ev.penalty(c)
	}
	best := make(Assignment, n)
	bestCost := math.Inf(1)
	cur := make(Assignment, n)
	nodes := 0
	var rec func(i int, sofar float64)
	rec = func(i int, sofar float64) {
		if sofar >= bestCost {
			return // bound: costs are non-negative
		}
		if i == n {
			bestCost = sofar
			copy(best, cur)
			return
		}
		for c := 0; c < len(space); c++ {
			nodes++
			cur[i] = c
			v := ev.intraCost(i, c) + pen[c]
			if i > 0 {
				v += ev.interCost(i, cur[i-1], c)
			}
			rec(i+1, sofar+v)
		}
	}
	rec(0, 0)
	return best, Stats{
		Evaluations: int(ev.n.Load()),
		Nodes:       nodes,
		Elapsed:     time.Since(start),
		FinalCost:   bestCost,
		DPCost:      bestCost,
	}
}

// Uniform returns the space index whose configuration the assignment
// uses most often — the dominant strategy the end-to-end evaluation
// runs with — along with its share of operators.
func Uniform(a Assignment) (int, float64) {
	if len(a) == 0 {
		return 0, 0
	}
	counts := map[int]int{}
	for _, c := range a {
		counts[c]++
	}
	best, bestN := a[0], 0
	for c, n := range counts {
		if n > bestN || (n == bestN && c < best) {
			best, bestN = c, n
		}
	}
	return best, float64(bestN) / float64(len(a))
}

// String renders an assignment compactly.
func (a Assignment) String() string {
	return fmt.Sprintf("%v", []int(a))
}
