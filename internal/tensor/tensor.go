// Package tensor models logical tensor shapes and the partition
// descriptors used by TEMP's unified parallelism representation
// (paper §VI-A, Fig. 10). A tensor in a transformer training step is
// described by up to four named dimensions:
//
//	B — batch
//	M — sequence (token) dimension
//	N — input-feature (hidden) dimension
//	K — output-feature (intermediate) dimension
//
// Parallel strategies split these dimensions: DP splits B, SP/CP
// split M, TP splits N or K, and TATP splits the pair of dimensions
// it streams over. A Partition records the split factor along every
// dimension plus the replication factor, which is what distinguishes
// the memory-efficient stream partitioning from replication-relied
// tensor parallelism (Fig. 1).
package tensor

import (
	"fmt"
	"strings"

	"temp/internal/unit"
)

// Dim names a logical tensor dimension.
type Dim int

// The four logical dimensions of Eq. (1)'s linear-operator tensors.
const (
	B Dim = iota // batch
	M            // sequence
	N            // input features / hidden
	K            // output features / intermediate
	numDims
)

// String implements fmt.Stringer.
func (d Dim) String() string {
	switch d {
	case B:
		return "B"
	case M:
		return "M"
	case N:
		return "N"
	case K:
		return "K"
	default:
		return fmt.Sprintf("Dim(%d)", int(d))
	}
}

// Dims enumerates all dimensions in canonical order.
func Dims() []Dim { return []Dim{B, M, N, K} }

// Shape is a dense logical tensor shape. A zero extent means the
// dimension is absent (e.g. a weight matrix has no B or M extent).
type Shape struct {
	Name  string
	Ext   [numDims]int64
	DType unit.DType
}

// NewShape builds a shape; absent dimensions are passed as 0.
func NewShape(name string, b, m, n, k int64, dt unit.DType) Shape {
	return Shape{Name: name, Ext: [numDims]int64{b, m, n, k}, DType: dt}
}

// Weight builds an [N, K] weight shape.
func Weight(name string, n, k int64, dt unit.DType) Shape {
	return NewShape(name, 0, 0, n, k, dt)
}

// Activation builds a [B, M, H] activation shape where the hidden
// extent is stored in the N slot.
func Activation(name string, b, m, h int64, dt unit.DType) Shape {
	return NewShape(name, b, m, h, 0, dt)
}

// Elems returns the number of elements (product of present extents).
func (s Shape) Elems() int64 {
	p := int64(1)
	present := false
	for _, e := range s.Ext {
		if e > 0 {
			p *= e
			present = true
		}
	}
	if !present {
		return 0
	}
	return p
}

// Bytes returns the dense size in bytes.
func (s Shape) Bytes() float64 {
	return float64(s.Elems()) * s.DType.Size()
}

// Extent returns the extent along d (0 when absent).
func (s Shape) Extent(d Dim) int64 { return s.Ext[d] }

// Has reports whether dimension d is present.
func (s Shape) Has(d Dim) bool { return s.Ext[d] > 0 }

// String renders e.g. "act[B=8 M=2048 N=4096]fp16".
func (s Shape) String() string {
	var sb strings.Builder
	sb.WriteString(s.Name)
	sb.WriteByte('[')
	first := true
	for _, d := range Dims() {
		if s.Ext[d] == 0 {
			continue
		}
		if !first {
			sb.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&sb, "%s=%d", d, s.Ext[d])
	}
	sb.WriteByte(']')
	sb.WriteString(s.DType.String())
	return sb.String()
}

// Partition records how a tensor is split across a device group: the
// split factor along each dimension and the number of replicas of
// each shard. A stationary Megatron-style activation under TP has
// Replicas == TP degree; a TATP stream partition always has
// Replicas == 1 (non-overlapping sub-tensors, Fig. 1(b)).
type Partition struct {
	Split    [numDims]int
	Replicas int
}

// Unit returns the trivial partition (whole tensor, one copy).
func Unit() Partition {
	return Partition{Split: [numDims]int{1, 1, 1, 1}, Replicas: 1}
}

// Split builds a partition splitting the given dims by the given
// factors with a single replica.
func SplitBy(factors map[Dim]int) Partition {
	p := Unit()
	for d, f := range factors {
		if f <= 0 {
			panic(fmt.Sprintf("tensor: non-positive split factor %d along %s", f, d))
		}
		p.Split[d] = f
	}
	return p
}

// WithReplicas returns a copy of p with the replica count set.
func (p Partition) WithReplicas(r int) Partition {
	if r <= 0 {
		panic("tensor: non-positive replica count")
	}
	p.Replicas = r
	return p
}

// Ways returns the total number of distinct shards.
func (p Partition) Ways() int {
	w := 1
	for _, f := range p.Split {
		if f > 1 {
			w *= f
		}
	}
	return w
}

// Devices returns the number of device slots the partition occupies
// (shards × replicas).
func (p Partition) Devices() int { return p.Ways() * p.Replicas }

// Compose merges two partitions applied to the same tensor by
// multiplying split factors and replica counts. It is used when
// hybrid strategies stack (e.g. DP batch split × TATP stream split).
func (p Partition) Compose(q Partition) Partition {
	out := Unit()
	for i := range out.Split {
		a, b := p.Split[i], q.Split[i]
		if a == 0 {
			a = 1
		}
		if b == 0 {
			b = 1
		}
		out.Split[i] = a * b
	}
	ra, rb := p.Replicas, q.Replicas
	if ra == 0 {
		ra = 1
	}
	if rb == 0 {
		rb = 1
	}
	out.Replicas = ra * rb
	return out
}

// String renders e.g. "split[B/2 K/4]×2rep".
func (p Partition) String() string {
	var sb strings.Builder
	sb.WriteString("split[")
	first := true
	for _, d := range Dims() {
		f := p.Split[d]
		if f <= 1 {
			continue
		}
		if !first {
			sb.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&sb, "%s/%d", d, f)
	}
	sb.WriteByte(']')
	if p.Replicas > 1 {
		fmt.Fprintf(&sb, "×%drep", p.Replicas)
	}
	return sb.String()
}

// ShardShape returns the shape of one shard of s under p. Splits
// along absent dimensions are ignored. Extents divide with ceiling to
// model padding of ragged shards.
func (p Partition) ShardShape(s Shape) Shape {
	out := s
	for _, d := range Dims() {
		f := p.Split[d]
		if f <= 1 || s.Ext[d] == 0 {
			continue
		}
		out.Ext[d] = int64(unit.CeilDiv(int(s.Ext[d]), f))
	}
	return out
}

// ShardBytes returns the per-device resident bytes of s under p: one
// shard (replication does not change per-device residency, it changes
// how many devices hold the same shard).
func (p Partition) ShardBytes(s Shape) float64 {
	return p.ShardShape(s).Bytes()
}

// GroupBytes returns the total bytes materialized across the whole
// group: shards × replicas. For a replication-free partition this is
// exactly s.Bytes(); replication inflates it, which is the memory
// waste Fig. 4(c) quantifies.
func (p Partition) GroupBytes(s Shape) float64 {
	return p.ShardShape(s).Bytes() * float64(p.Ways()) * float64(p.Replicas)
}

// ReshardBytes estimates the per-device data volume that must move to
// convert a shard of s laid out under p into the layout q. Dimensions
// whose split factor changes force the affected bytes to be
// exchanged; the estimate charges the destination shard size once for
// any layout change, and zero when the layouts are identical. This is
// the inter-operator P2P term of Eq. (3).
func ReshardBytes(s Shape, p, q Partition) float64 {
	if p == q {
		return 0
	}
	same := true
	for _, d := range Dims() {
		a, b := p.Split[d], q.Split[d]
		if a == 0 {
			a = 1
		}
		if b == 0 {
			b = 1
		}
		if a != b && s.Has(d) {
			same = false
			break
		}
	}
	if same && p.Replicas == q.Replicas {
		return 0
	}
	return q.ShardBytes(s)
}
