package engine

import "math"

// appendJobKey appends the canonical binary encoding of a job's
// identity to buf and returns the extended slice. The encoding is the
// persistent memo's content key, so it must be:
//
//   - total: every field of every nested struct participates (a
//     reflection test walks the structs and asserts each perturbation
//     changes the key), so two jobs encode equal iff they are equal;
//   - stable: fixed-width little-endian integers, IEEE-754 bit
//     patterns for floats and length-prefixed strings — no maps, no
//     hashing, no platform dependence — so keys written by one run
//     resolve in every later run;
//   - versioned externally: the disk file's header carries the schema
//     version, bumped whenever Job (or a nested struct) changes shape.
//
// Callers normalize the job first (Config.Normalize,
// CanonicalBackendKey) so equivalent spellings share one key.
func appendJobKey(buf []byte, j Job) []byte {
	// Model.
	buf = appendString(buf, j.Model.Name)
	buf = appendInt(buf, j.Model.Heads)
	buf = appendInt(buf, j.Model.Batch)
	buf = appendInt(buf, j.Model.Hidden)
	buf = appendInt(buf, j.Model.Layers)
	buf = appendInt(buf, j.Model.Seq)
	buf = appendInt(buf, j.Model.FFNMult)
	buf = appendInt(buf, j.Model.Vocab)

	// Wafer.
	buf = appendString(buf, j.Wafer.Name)
	buf = appendInt(buf, j.Wafer.Rows)
	buf = appendInt(buf, j.Wafer.Cols)
	d := j.Wafer.Die
	buf = appendFloat(buf, d.AreaMM2)
	buf = appendFloat(buf, d.WidthMM)
	buf = appendFloat(buf, d.HeightMM)
	buf = appendFloat(buf, d.SRAMBytes)
	buf = appendFloat(buf, d.HBMBytes)
	buf = appendInt(buf, d.HBMStacks)
	buf = appendFloat(buf, d.HBMBandwidth)
	buf = appendFloat(buf, d.HBMLatency)
	buf = appendFloat(buf, d.HBMEnergyPerBit)
	buf = appendFloat(buf, d.PeakFLOPS)
	buf = appendFloat(buf, d.FLOPSPerWatt)
	buf = appendFloat(buf, d.FrequencyHz)
	buf = appendFloat(buf, d.VectorFLOPS)
	l := j.Wafer.Link
	buf = appendFloat(buf, l.Bandwidth)
	buf = appendFloat(buf, l.Latency)
	buf = appendFloat(buf, l.EnergyPerBit)
	buf = appendFloat(buf, l.MaxReachMM)
	buf = appendFloat(buf, l.FECLatency)
	buf = appendFloat(buf, l.RampBytes)
	buf = appendFloat(buf, j.Wafer.IOBandwidth)
	buf = appendFloat(buf, j.Wafer.InterWaferBandwidth)
	buf = appendFloat(buf, j.Wafer.InterWaferLatency)

	// Parallel configuration.
	c := j.Config
	buf = appendInt(buf, c.DP)
	buf = appendInt(buf, c.TP)
	buf = appendInt(buf, c.SP)
	buf = appendInt(buf, c.CP)
	buf = appendInt(buf, c.TATP)
	buf = appendInt(buf, c.PP)
	buf = appendBool(buf, c.FSDP)
	buf = appendBool(buf, c.MegatronSP)

	// Options.
	o := j.Opts
	buf = appendInt(buf, int(o.Engine))
	buf = appendInt(buf, int(o.Recompute))
	buf = appendBool(buf, o.DistributedOptimizer)
	buf = appendInt(buf, o.Microbatch)
	buf = appendInt(buf, o.TCME.MaxIter)
	buf = appendBool(buf, o.TCME.DisableMerge)
	buf = appendBool(buf, o.TCME.DisableReroute)
	buf = appendInt(buf, o.Wafers)
	buf = appendBool(buf, o.DisableStreamOverlap)
	buf = appendBool(buf, o.ForceStreamWeights)
	buf = appendBool(buf, o.NoFlashAttention)
	buf = appendBool(buf, o.AdaptiveRebalance)

	// Backend tier.
	buf = appendString(buf, j.Backend)
	return buf
}

func appendInt(buf []byte, v int) []byte { return appendU64(buf, uint64(int64(v))) }

func appendFloat(buf []byte, v float64) []byte { return appendU64(buf, math.Float64bits(v)) }

func appendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func appendString(buf []byte, s string) []byte {
	buf = appendU64(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendU64(buf []byte, v uint64) []byte {
	return append(buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
