package distrib

import (
	"context"
	"fmt"
	"net"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"
)

// The test kind: squares its input, with knobs to sleep (so crashes
// land mid-sweep), fail, or panic. Registered in init so the helper
// worker process (this same test binary) serves it too.
const testKind = "distrib.test.square"

type squareIn struct {
	V       int
	SleepMS int
	Fail    bool
	Panic   bool
}

type squareOut struct{ V int }

func init() {
	RegisterKind(testKind, HandlerGob(func(ctx context.Context, in squareIn) (squareOut, error) {
		if in.SleepMS > 0 {
			select {
			case <-time.After(time.Duration(in.SleepMS) * time.Millisecond):
			case <-ctx.Done():
				return squareOut{}, ctx.Err()
			}
		}
		if in.Fail {
			return squareOut{}, fmt.Errorf("task %d failed", in.V)
		}
		if in.Panic {
			panic(fmt.Sprintf("task %d panicked", in.V))
		}
		return squareOut{V: in.V * in.V}, nil
	}))
}

// TestWorkerProcess is not a test: it is the worker subprocess body,
// entered when the fabric re-invokes this test binary.
func TestWorkerProcess(t *testing.T) {
	if os.Getenv("TEMP_DISTRIB_WORKER") != "1" {
		t.Skip("worker-process helper, not a test")
	}
	if err := ServeStdio(); err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(3)
	}
	os.Exit(0)
}

func newTestFabric(t *testing.T, workers, shardSize int) *Fabric {
	t.Helper()
	f, err := New(Options{
		Workers:   workers,
		ShardSize: shardSize,
		Command:   []string{os.Args[0], "-test.run=^TestWorkerProcess$"},
		Env:       []string{"TEMP_DISTRIB_WORKER=1"},
	})
	if err != nil {
		t.Fatalf("fabric: %v", err)
	}
	if f.Live() != workers {
		t.Fatalf("live workers = %d, want %d", f.Live(), workers)
	}
	t.Cleanup(func() { f.Shutdown() })
	return f
}

func squares(n, sleepMS int) []squareIn {
	in := make([]squareIn, n)
	for i := range in {
		in[i] = squareIn{V: i, SleepMS: sleepMS}
	}
	return in
}

func checkSquares(t *testing.T, outs []squareOut, errs []error) {
	t.Helper()
	for i := range outs {
		if errs[i] != nil {
			t.Fatalf("task %d: %v", i, errs[i])
		}
		if outs[i].V != i*i {
			t.Fatalf("task %d = %d, want %d", i, outs[i].V, i*i)
		}
	}
}

// TestFabricDistributes: subprocess workers execute every shard and
// the merged output is index-addressed into input order.
func TestFabricDistributes(t *testing.T) {
	f := newTestFabric(t, 2, 3)
	outs, errs := RunTasks[squareIn, squareOut](f, testKind, squares(40, 0))
	checkSquares(t, outs, errs)
	fs := f.Shutdown()
	if fs.Tasks != 40 || fs.Shards != 14 {
		t.Fatalf("stats = %d tasks / %d shards, want 40/14", fs.Tasks, fs.Shards)
	}
	sum := 0
	for _, w := range fs.Workers {
		sum += w.Tasks
	}
	if sum != 40 || fs.InProcessTasks != 0 {
		t.Fatalf("worker tasks sum %d (inproc %d), want 40 (0)", sum, fs.InProcessTasks)
	}
}

// TestWorkerCrashRecovery kills a worker subprocess mid-sweep and
// asserts the coordinator requeues its shards and the merged result
// stays bit-identical to the in-process golden.
func TestWorkerCrashRecovery(t *testing.T) {
	inputs := squares(40, 20)

	golden, goldenErrs := RunTasks[squareIn, squareOut](nil, testKind, inputs)
	checkSquares(t, golden, goldenErrs)

	f := newTestFabric(t, 2, 2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(60 * time.Millisecond)
		if err := f.kill(0); err != nil {
			t.Error(err)
		}
	}()
	outs, errs := RunTasks[squareIn, squareOut](f, testKind, inputs)
	<-done
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("task %d surfaced a transport error: %v", i, errs[i])
		}
	}
	if !reflect.DeepEqual(outs, golden) {
		t.Fatal("merged result after crash differs from the in-process golden")
	}
	fs := f.Shutdown()
	if fs.Requeued < 1 {
		t.Fatalf("requeued = %d, want >= 1 after worker kill", fs.Requeued)
	}
	died := 0
	for _, w := range fs.Workers {
		if w.Died {
			died++
		}
	}
	if died != 1 {
		t.Fatalf("died workers = %d, want 1", died)
	}
}

// TestAllWorkersDead: with every worker killed before the run, the
// coordinator degrades to in-process execution and still completes.
func TestAllWorkersDead(t *testing.T) {
	f := newTestFabric(t, 2, 4)
	for i := 0; i < 2; i++ {
		if err := f.kill(i); err != nil {
			t.Fatal(err)
		}
	}
	outs, errs := RunTasks[squareIn, squareOut](f, testKind, squares(20, 0))
	checkSquares(t, outs, errs)
	fs := f.Shutdown()
	if fs.InProcessTasks != 20 {
		t.Fatalf("inprocess tasks = %d, want all 20", fs.InProcessTasks)
	}
}

// TestSpawnFailureFallsBack: a fabric whose workers never spawn still
// runs everything in-process (degraded, not broken).
func TestSpawnFailureFallsBack(t *testing.T) {
	f, err := New(Options{Workers: 2, Command: []string{"/nonexistent/tempworker"}})
	if err == nil {
		t.Fatal("expected a spawn error report")
	}
	outs, errs := RunTasks[squareIn, squareOut](f, testKind, squares(10, 0))
	checkSquares(t, outs, errs)
	fs := f.Shutdown()
	if fs.Spawned != 0 || fs.InProcessTasks != 10 {
		t.Fatalf("spawned %d, inprocess %d; want 0, 10", fs.Spawned, fs.InProcessTasks)
	}
}

// TestNilFabricRunsInProcess: a nil *Fabric is the documented
// degenerate coordinator.
func TestNilFabricRunsInProcess(t *testing.T) {
	outs, errs := RunTasks[squareIn, squareOut](nil, testKind, squares(8, 0))
	checkSquares(t, outs, errs)
}

// TestTaskErrorsAndPanics: handler errors and panics come back as
// per-task errors — from worker subprocesses — without poisoning
// neighbouring tasks.
func TestTaskErrorsAndPanics(t *testing.T) {
	f := newTestFabric(t, 2, 2)
	in := squares(12, 0)
	in[3].Fail = true
	in[7].Panic = true
	outs, errs := RunTasks[squareIn, squareOut](f, testKind, in)
	for i := range in {
		switch i {
		case 3:
			if errs[i] == nil || errs[i].Error() != "task 3 failed" {
				t.Fatalf("task 3 error = %v", errs[i])
			}
		case 7:
			if errs[i] == nil || !strings.Contains(errs[i].Error(), "panic") {
				t.Fatalf("task 7 error = %v, want panic text", errs[i])
			}
		default:
			if errs[i] != nil || outs[i].V != i*i {
				t.Fatalf("task %d: out %d err %v", i, outs[i].V, errs[i])
			}
		}
	}
}

// TestUnknownKind: a kind no handler serves surfaces per-task errors.
func TestUnknownKind(t *testing.T) {
	f := newTestFabric(t, 1, 0)
	_, errs := f.Run("no.such.kind", [][]byte{{1}, {2}})
	for i, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "unknown task kind") {
			t.Fatalf("task %d error = %v", i, err)
		}
	}
}

// TestTCPTransport: a worker serving over TCP (the multi-machine
// path) is indistinguishable from a stdio subprocess.
func TestTCPTransport(t *testing.T) {
	// Reserve a port, release it, and have the worker retry-dial while
	// the fabric binds and accepts.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	workerDone := make(chan error, 1)
	go func() {
		var err error
		for i := 0; i < 100; i++ {
			if err = ConnectAndServe(addr); err == nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		workerDone <- err
	}()
	f, err := New(Options{Workers: 1, Listen: addr, ShardSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	outs, errs := RunTasks[squareIn, squareOut](f, testKind, squares(16, 0))
	checkSquares(t, outs, errs)
	fs := f.Shutdown()
	if err := <-workerDone; err != nil {
		t.Fatalf("tcp worker: %v", err)
	}
	if fs.InProcessTasks != 0 || fs.Tasks != 16 {
		t.Fatalf("tcp run: %d fabric tasks, %d inprocess", fs.Tasks, fs.InProcessTasks)
	}
}

// TestDeterministicAcrossWorkerCounts: the merged output is
// bit-identical at 0 (in-process), 1, and 3 workers.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	inputs := squares(30, 1)
	golden, _ := RunTasks[squareIn, squareOut](nil, testKind, inputs)
	for _, n := range []int{1, 3} {
		f := newTestFabric(t, n, 2)
		outs, errs := RunTasks[squareIn, squareOut](f, testKind, inputs)
		checkSquares(t, outs, errs)
		if !reflect.DeepEqual(outs, golden) {
			t.Fatalf("output at %d workers differs from in-process", n)
		}
		f.Shutdown()
	}
}

// TestStealing: with one deliberately slow worker, the other steals
// from its deque and the counters record it.
func TestStealing(t *testing.T) {
	f := newTestFabric(t, 2, 1)
	in := squares(24, 0)
	// Worker 0's first shard sleeps long; its remaining shards get
	// stolen by worker 1 while it is stuck.
	in[0].SleepMS = 300
	outs, errs := RunTasks[squareIn, squareOut](f, testKind, in)
	checkSquares(t, outs, errs)
	fs := f.Shutdown()
	if fs.Stolen < 1 {
		t.Fatalf("stolen = %d, want >= 1", fs.Stolen)
	}
}
