package hw

import (
	"testing"

	"temp/internal/unit"
)

// TestTableIDie pins the Table I configuration this reproduction is
// calibrated against.
func TestTableIDie(t *testing.T) {
	d := TableIDie()
	if d.SRAMBytes != 80*unit.MiB {
		t.Errorf("SRAM = %v, want 80MiB", unit.Bytes(d.SRAMBytes))
	}
	if d.HBMBytes != 72*unit.GB {
		t.Errorf("HBM = %v, want 72GB per stack", d.HBMBytes)
	}
	if d.HBMStacks != 2 {
		t.Errorf("HBMStacks = %d, want 2 (Fig. 3 floorplan / Fig. 4(c) capacity line)", d.HBMStacks)
	}
	if d.MemCapacity() != 144*unit.GB {
		t.Errorf("MemCapacity = %v, want 144GB", d.MemCapacity())
	}
	if d.MemBandwidth() != 2*unit.TB {
		t.Errorf("MemBandwidth = %v, want 2TB/s", d.MemBandwidth())
	}
	if d.PeakFLOPS != 1800*unit.TFLOPS {
		t.Errorf("PeakFLOPS = %v", d.PeakFLOPS)
	}
	if d.FLOPSPerWatt != 2*unit.TFLOPS {
		t.Errorf("FLOPSPerWatt = %v", d.FLOPSPerWatt)
	}
	if d.HBMBandwidth != 1*unit.TB {
		t.Errorf("HBMBandwidth = %v", d.HBMBandwidth)
	}
}

func TestTableID2D(t *testing.T) {
	l := TableID2D()
	if l.Bandwidth != 4*unit.TB {
		t.Errorf("Bandwidth = %v", l.Bandwidth)
	}
	if l.Latency != 200*unit.Nanosecond {
		t.Errorf("Latency = %v", l.Latency)
	}
	if l.EnergyPerBit != 5*unit.PicoJoule {
		t.Errorf("EnergyPerBit = %v", l.EnergyPerBit)
	}
	if l.MaxReachMM != 50 {
		t.Errorf("MaxReachMM = %v, want 50 (signal-integrity limit)", l.MaxReachMM)
	}
}

func TestEffectiveBandwidthMonotone(t *testing.T) {
	l := TableID2D()
	// Granularity ramp: bigger transfers get closer to peak.
	sizes := []float64{64 * unit.KB, 1 * unit.MB, 8 * unit.MB, 64 * unit.MB, 512 * unit.MB}
	prev := 0.0
	for _, s := range sizes {
		bw := l.EffectiveBandwidth(s)
		if bw <= prev {
			t.Fatalf("EffectiveBandwidth not increasing at %v: %v <= %v", s, bw, prev)
		}
		if bw > l.Bandwidth {
			t.Fatalf("EffectiveBandwidth exceeds peak at %v", s)
		}
		prev = bw
	}
	// §III-B: tens to hundreds of MB are needed to approach peak.
	if eff := l.EffectiveBandwidth(100*unit.MB) / l.Bandwidth; eff < 0.7 {
		t.Errorf("100MB transfer reaches only %.2f of peak, want ≥0.7", eff)
	}
	if eff := l.EffectiveBandwidth(512*unit.MB) / l.Bandwidth; eff < 0.9 {
		t.Errorf("512MB transfer reaches only %.2f of peak, want ≥0.9", eff)
	}
	// Ring-collective-sized chunks (single-digit MB) fall well below
	// half of peak — the §III-B granularity penalty.
	if eff := l.EffectiveBandwidth(4*unit.MB) / l.Bandwidth; eff > 0.5 {
		t.Errorf("4MB transfer reaches %.2f of peak, want <0.5", eff)
	}
	// Zero/negative sizes return peak (degenerate guard).
	if l.EffectiveBandwidth(0) != l.Bandwidth {
		t.Error("zero-size transfer should return peak bandwidth")
	}
}

func TestEvaluationWafer(t *testing.T) {
	w := EvaluationWafer()
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.Dies() != 32 {
		t.Errorf("Dies() = %d, want 32 (4×8, §VIII-A)", w.Dies())
	}
	if got := w.TotalPeakFLOPS(); got != 32*1800*unit.TFLOPS {
		t.Errorf("TotalPeakFLOPS = %v", got)
	}
	if got := w.TotalHBMBytes(); got != 32*144*unit.GB {
		t.Errorf("TotalHBMBytes = %v", got)
	}
}

func TestReferenceWaferGrid(t *testing.T) {
	w := ReferenceWafer()
	if w.Rows != 6 || w.Cols != 8 {
		t.Errorf("reference wafer grid = %dx%d, want 6x8 (Fig. 3)", w.Rows, w.Cols)
	}
}

func TestWaferWithGrid(t *testing.T) {
	w := WaferWithGrid(8, 12)
	if w.Dies() != 96 {
		t.Errorf("Dies = %d", w.Dies())
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Wafer{
		{Name: "zero-rows", Rows: 0, Cols: 8, Die: TableIDie(), Link: TableID2D()},
		{Name: "zero-flops", Rows: 4, Cols: 8, Link: TableID2D()},
		{Name: "zero-bw", Rows: 4, Cols: 8, Die: TableIDie()},
	}
	for _, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("Validate(%s) = nil, want error", w.Name)
		}
	}
}

func TestComparisonWafer32MatchesA100Peak(t *testing.T) {
	w := ComparisonWafer32()
	c := A100Cluster()
	if c.GPUs() != 32 {
		t.Fatalf("cluster GPUs = %d, want 32", c.GPUs())
	}
	wsc := w.TotalPeakFLOPS()
	gpu := float64(c.GPUs()) * c.GPUPeakFLOPS
	if wsc != gpu {
		t.Errorf("FP16 peak mismatch: WSC %v vs GPU %v (Fig. 15 requires parity)", wsc, gpu)
	}
}

func TestA100ClusterHierarchy(t *testing.T) {
	c := A100Cluster()
	if c.IntraNodeBandwidth <= c.InterNodeBandwidth {
		t.Error("NVLink should be faster than inter-node IB")
	}
	if c.Nodes != 4 || c.GPUsPerNode != 8 {
		t.Errorf("cluster shape = %dx%d, want 4x8", c.Nodes, c.GPUsPerNode)
	}
}

func TestMultiWaferDies(t *testing.T) {
	m := MultiWafer{Wafer: EvaluationWafer(), Wafers: 4}
	if m.Dies() != 128 {
		t.Errorf("MultiWafer.Dies = %d, want 128", m.Dies())
	}
}

// TestWSCAdvantageOverDGX encodes the §I claim that WSC D2D links are
// ~6× faster than board-level GPU interconnects.
func TestWSCAdvantageOverDGX(t *testing.T) {
	w := EvaluationWafer()
	c := A100Cluster()
	ratio := w.Link.Bandwidth / c.IntraNodeBandwidth
	if ratio < 5 {
		t.Errorf("D2D/NVLink bandwidth ratio = %.1f, want ≥5 (paper: ~6×)", ratio)
	}
}
