// Command tempsim evaluates one training configuration on the wafer
// simulator and prints the latency/memory/power breakdown. Models and
// wafers resolve through the scenario registry, and whole scenarios
// can be supplied as JSON files. -strategy adds (or overrides) a
// partition-mapping search stage on scenario runs, solved by any
// registered strategy under an optional -budget.
//
//	tempsim -model gpt3-6.7b -dp 4 -tatp 8
//	tempsim -model llama3-70b -engine smap -tp 8 -dp 4 -recompute none
//	tempsim -scenario examples/custom_scenario/scenario.json
//	tempsim -scenario scenario.json -strategy portfolio -budget 30s
//	tempsim -scenarios scenarios/        # batch, one result per file
//	tempsim -list-models                 # registry contents
//	tempsim -list-strategies             # search strategies
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"temp/internal/cost"
	"temp/internal/distrib"
	"temp/internal/engine"
	"temp/internal/fault"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
	"temp/internal/sim"
	"temp/internal/solver"
	"temp/internal/spec"
	"temp/internal/unit"
)

// printBreakdown renders one evaluation in tempsim's usual layout.
func printBreakdown(m model.Config, w hw.Wafer, cfg parallel.Config, o cost.Options, b cost.Breakdown) {
	nw := o.Wafers
	if nw < 1 {
		nw = 1
	}
	fmt.Printf("model      %s on %s (%d dies, %d wafer(s))\n", m, w.Name, w.Dies(), nw)
	fmt.Printf("config     %s engine=%s recompute=%s\n", cfg, o.Engine, o.Recompute)
	fmt.Printf("step       %s\n", unit.Seconds(b.StepTime))
	fmt.Printf("  compute  %s\n", unit.Seconds(b.ComputeTime))
	fmt.Printf("  stream   %s (exposed)\n", unit.Seconds(b.StreamTime))
	fmt.Printf("  coll     %s\n", unit.Seconds(b.CollectiveTime))
	fmt.Printf("  bubble   %s\n", unit.Seconds(b.BubbleTime))
	fmt.Printf("memory     %s / %s per die (OOM=%v)\n",
		unit.Bytes(b.Memory.Total()), unit.Bytes(b.Memory.Capacity), b.OOM())
	fmt.Printf("  weights=%s grads=%s optim=%s acts=%s stream=%s\n",
		unit.Bytes(b.Memory.Weights), unit.Bytes(b.Memory.Grads),
		unit.Bytes(b.Memory.Optimizer), unit.Bytes(b.Memory.Activations),
		unit.Bytes(b.Memory.StreamBuf))
	fmt.Printf("throughput %.1f tokens/s, power %.0f W, %.3f tokens/s/W, BW util %.1f%%\n",
		b.ThroughputTokens, b.Power, b.PowerEfficiency, b.BWUtilization*100)
}

// printScenarioResult renders one batch entry compactly.
func printScenarioResult(r sim.ScenarioResult) {
	if r.Err != nil {
		fmt.Printf("%-24s ERROR: %v\n", r.Name, r.Err)
		return
	}
	status := "ok"
	if !r.Result.Feasible {
		status = "OOM"
	}
	line := fmt.Sprintf("%-24s %-12s %-32s %-4s step=%s tput=%.1f tok/s",
		r.Name, r.Result.System, r.Result.Config.String(), status,
		unit.Seconds(r.Result.StepTime), r.Result.ThroughputTokens)
	if r.Faulted {
		line += fmt.Sprintf(" fault-norm-tput=%.3f", r.FaultNormTput)
	}
	if r.Recovery != nil {
		line += fmt.Sprintf(" repair=%.3f->%.3f", r.Recovery.RepriceNorm, r.Recovery.RepairedNorm)
	}
	if r.Solver != nil {
		line += fmt.Sprintf(" solver=%s cost=%.3fms", r.Solver.Strategy, r.Solver.FinalCost*1e3)
	}
	fmt.Println(line)
}

// attachResilience mutates a scenario spec per the -repair and
// -fault-campaign flags: -repair rides on an existing fault stage;
// -fault-campaign adds one (the campaign does not need injection
// rates, so a missing fault stage is created empty).
func attachResilience(ss *spec.ScenarioSpec, repair, campaign bool) {
	if repair && ss.Fault != nil && ss.Fault.Repair == nil {
		ss.Fault.Repair = &spec.RepairSpec{}
	}
	if campaign {
		if ss.Fault == nil {
			ss.Fault = &spec.FaultSpec{}
		}
		if ss.Fault.Campaign == nil {
			ss.Fault.Campaign = &spec.CampaignSpec{}
		}
	}
}

// printRecovery renders a repair-stage record.
func printRecovery(rec *fault.Recovery) {
	fmt.Printf("repair     %d dead links, %d dead dies: re-price %.3f -> repaired %.3f on %s (%s, %d evals, %s)\n",
		rec.Report.DeadLinks, rec.Report.DeadDies, rec.RepriceNorm, rec.RepairedNorm,
		rec.RepairedConfig, rec.Strategy, rec.WarmEvals, rec.WarmElapsed)
	if rec.ColdEvals > 0 {
		fmt.Printf("           cold re-solve: %.3f (%d evals, %s)\n",
			rec.ColdNorm, rec.ColdEvals, rec.ColdElapsed)
	}
}

// printCampaign renders a survivability grid.
func printCampaign(cr *fault.CampaignResult) {
	fmt.Printf("campaign   %s on %s, config %s (%d trials/cell, seed %d, backend %s)\n",
		cr.Model, cr.Wafer, cr.Config, cr.Trials, cr.Seed, cr.Backend)
	for _, c := range cr.Cells {
		fmt.Printf("  link %4.0f%% core %4.0f%%: functional %5.1f%%  mean %.3f  p5 %.3f  min %.3f\n",
			c.LinkRate*100, c.CoreRate*100, c.FunctionalRate*100, c.MeanNorm, c.P5Norm, c.MinNorm)
	}
}

// writeCampaignJSON writes one campaign result as a JSON artifact.
func writeCampaignJSON(path string, cr *fault.CampaignResult) error {
	buf, err := json.MarshalIndent(cr, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// printSolverOutcome renders a scenario's search stage.
func printSolverOutcome(o *sim.SolverOutcome) {
	name := o.Strategy
	if o.Winner != "" {
		name += " (winner " + o.Winner + ")"
	}
	evals := fmt.Sprintf("%d exact evals", o.Evaluations)
	if o.ScreenEvaluations > 0 {
		evals += fmt.Sprintf(" + %d screen evals", o.ScreenEvaluations)
	}
	fmt.Printf("solver     %s on %s: seed %.3fms -> final %.3fms (%s, %s)\n",
		name, o.Backend, o.DPCost*1e3, o.FinalCost*1e3, evals, o.Elapsed)
	fmt.Printf("           dominant per-op strategy %s (%.0f%% of operators)\n",
		o.Dominant, o.Share*100)
}

func runScenarioFile(ctx context.Context, path string, override *spec.SolverStage, costStage *spec.CostStage, repair bool, campaignPath string) error {
	ss, err := spec.LoadScenario(path)
	if err != nil {
		return err
	}
	attachResilience(&ss, repair, campaignPath != "")
	sc, err := ss.Resolve()
	if err != nil {
		return err
	}
	if override != nil {
		sc.Solver = override
	}
	if costStage != nil {
		sc.Cost = costStage
	}
	// One pass: RunScenarios carries the breakdown plus the optional
	// solver and fault stages.
	res := sim.RunScenariosCtx(ctx, []spec.Scenario{sc})[0]
	if res.Err != nil {
		return res.Err
	}
	r := res.Result
	opts := sc.System.Opts
	if sc.Wafers > 1 {
		opts.Wafers = sc.Wafers
	}
	backend := "analytic"
	if sc.Cost != nil && sc.Cost.Key != "" {
		backend = sc.Cost.Key
	}
	fmt.Printf("scenario   %s (system %s, backend %s)\n", sc.Name, sc.System.Name, backend)
	printBreakdown(sc.Model, sc.Wafer, r.Config, opts, r.Breakdown)
	if !r.Feasible {
		fmt.Println("status     OOM: no feasible configuration; showing lowest-memory attempt")
	}
	if res.Faulted {
		fmt.Printf("fault      norm tput %.3f (link=%.2f core=%.2f, %d trials)\n",
			res.FaultNormTput, sc.Fault.LinkRate, sc.Fault.CoreRate, sc.Fault.TrialCount())
	}
	if res.Recovery != nil {
		printRecovery(res.Recovery)
	}
	if res.Campaign != nil {
		printCampaign(res.Campaign)
		if campaignPath != "" {
			if err := writeCampaignJSON(campaignPath, res.Campaign); err != nil {
				return err
			}
		}
	}
	if res.Solver != nil {
		printSolverOutcome(res.Solver)
	}
	return nil
}

func main() {
	var (
		name      = flag.String("model", "gpt3-6.7b", "registered model name (-list-models)")
		waferName = flag.String("wafer", "", "registered wafer name (-list-wafers); overrides -rows/-cols")
		rows      = flag.Int("rows", 4, "wafer die rows")
		cols      = flag.Int("cols", 8, "wafer die columns")
		dp        = flag.Int("dp", 1, "data parallel degree")
		tp        = flag.Int("tp", 1, "tensor parallel degree")
		sp        = flag.Int("sp", 1, "sequence parallel degree")
		cp        = flag.Int("cp", 1, "context parallel degree")
		tatp      = flag.Int("tatp", 1, "TATP stream parallel degree")
		pp        = flag.Int("pp", 1, "pipeline degree across wafers")
		wafers    = flag.Int("wafers", 1, "wafer count")
		mapper    = flag.String("engine", "tcme", "mapping engine: smap|gmap|tcme")
		rec       = flag.String("recompute", "selective", "recompute: none|selective|full")
		fsdp      = flag.Bool("fsdp", false, "fully sharded data parallelism")
		mesp      = flag.Bool("megatron-sp", false, "Megatron-3 fused sequence parallelism")
		mb        = flag.Int("microbatch", 0, "sequences per rank per micro-step")
		debugTr   = flag.Bool("debug", false, "print the calibration trace")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "evaluation worker-pool size")
		scenario  = flag.String("scenario", "", "run one scenario JSON file")
		scenarios = flag.String("scenarios", "", "run every *.json scenario in a directory")
		strategy  = flag.String("strategy", "", "add/override a solver stage on scenario runs (-list-strategies)")
		budget    = flag.String("budget", "", "solver-stage budget: eval count, duration, or both (\"20000,30s\")")
		repair    = flag.Bool("repair", false, "add a degradation-aware repair stage to scenario fault stages")
		campaign  = flag.String("fault-campaign", "", "run a deterministic fault campaign and write survivability JSON to this file")
		seed      = flag.Int64("seed", 7, "solver-stage and surrogate-training randomness seed")
		backend   = flag.String("backend", "", "cost backend pricing the evaluation (-list-backends); accepts name or name@seed=N")
		listM     = flag.Bool("list-models", false, "list registered model names")
		listW     = flag.Bool("list-wafers", false, "list registered wafer names")
		listS     = flag.Bool("list-systems", false, "list registered system names")
		listSt    = flag.Bool("list-strategies", false, "list registered search strategies")
		listB     = flag.Bool("list-backends", false, "list registered cost backends")
		memoDir   = flag.String("memo-dir", os.Getenv("TEMPMEMO"),
			"persist priced results in this directory and warm-start from them (default $TEMPMEMO)")
		distribute = flag.Int("distribute", 0, "shard -scenarios batches across N worker subprocesses")
		workerMode = flag.Bool("worker-mode", false, "internal: serve shards from a coordinator over stdio")
	)
	flag.Parse()
	engine.SetWorkers(*workers)

	// First SIGINT/SIGTERM cancels scenario runs gracefully (solves
	// stop at their next budget check, distributed shards are
	// cancelled); a second signal kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *memoDir != "" {
		dm, err := engine.AttachDiskMemo(*memoDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tempsim:", err)
			os.Exit(1)
		}
		defer dm.Close()
	}
	if *workerMode {
		if err := distrib.ServeStdio(); err != nil {
			fmt.Fprintln(os.Stderr, "tempsim: worker:", err)
			os.Exit(1)
		}
		return
	}

	switch {
	case *listB:
		for _, n := range cost.BackendNames() {
			fmt.Println(n)
		}
		return
	case *listM:
		for _, n := range spec.Models.Names() {
			fmt.Println(n)
		}
		return
	case *listW:
		for _, n := range spec.Wafers.Names() {
			fmt.Println(n)
		}
		return
	case *listS:
		for _, n := range spec.Systems.Names() {
			fmt.Println(n)
		}
		return
	case *listSt:
		for _, n := range solver.StrategyNames() {
			fmt.Println(n)
		}
		return
	case *scenario != "":
		override, err := spec.SolverOverride(*strategy, *budget, *seed, *workers)
		var costStage *spec.CostStage
		if err == nil {
			costStage, err = spec.CostOverride(*backend, *seed)
		}
		if err == nil {
			err = runScenarioFile(ctx, *scenario, override, costStage, *repair, *campaign)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tempsim:", err)
			os.Exit(1)
		}
		return
	case *scenarios != "":
		override, err := spec.SolverOverride(*strategy, *budget, *seed, *workers)
		var costStage *spec.CostStage
		if err == nil {
			costStage, err = spec.CostOverride(*backend, *seed)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tempsim:", err)
			os.Exit(1)
		}
		specs, err := spec.LoadScenarioDir(*scenarios)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tempsim:", err)
			os.Exit(1)
		}
		for i := range specs {
			attachResilience(&specs[i], *repair, *campaign != "")
		}
		// -distribute (or a spec-declared distrib block) shards the
		// batch across worker subprocesses; results merge in spec
		// order and match the in-process run bit-for-bit.
		n, shard, retries := *distribute, 0, 0
		var hb time.Duration
		missed := 0
		syncMemo := false
		for _, ss := range specs {
			if ss.Distrib != nil {
				if n == 0 {
					n = ss.Distrib.Workers
				}
				shard, retries = ss.Distrib.ShardSize, ss.Distrib.Retries
				hb = time.Duration(ss.Distrib.HeartbeatMS) * time.Millisecond
				missed = ss.Distrib.MissedBeats
				syncMemo = ss.Distrib.SyncMemo
				break
			}
		}
		var fab *distrib.Fabric
		if n > 0 {
			if exe, eerr := os.Executable(); eerr == nil {
				cmdline := []string{exe, "-worker-mode", "-workers", fmt.Sprint(*workers)}
				if *memoDir != "" {
					cmdline = append(cmdline, "-memo-dir", *memoDir)
				}
				var ferr error
				if fab, ferr = distrib.New(distrib.Options{
					Workers: n, Command: cmdline, ShardSize: shard, Retries: retries,
					Heartbeat: hb, MissedBeats: missed, SyncMemo: syncMemo,
				}); ferr != nil {
					fmt.Fprintln(os.Stderr, "tempsim: distrib:", ferr)
				}
				defer fab.Shutdown()
			}
		}
		var results []sim.ScenarioResult
		if fab != nil {
			ov := sim.Overrides{Strategy: *strategy, Budget: *budget, Seed: *seed, Workers: *workers, Backend: *backend}
			results = sim.RunScenarioSpecsOnCtx(ctx, fab, specs, ov)
		} else {
			results = sim.RunScenarioSpecsWithStagesCtx(ctx, specs, override, costStage)
		}
		failed := false
		var lastCampaign *fault.CampaignResult
		for _, r := range results {
			printScenarioResult(r)
			failed = failed || r.Err != nil
			if r.Campaign != nil {
				lastCampaign = r.Campaign
			}
		}
		if *campaign != "" && lastCampaign != nil {
			if err := writeCampaignJSON(*campaign, lastCampaign); err != nil {
				fmt.Fprintln(os.Stderr, "tempsim:", err)
				os.Exit(1)
			}
		}
		if failed {
			os.Exit(1)
		}
		return
	}

	m, err := spec.LookupModel(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tempsim:", err)
		os.Exit(1)
	}
	var w hw.Wafer
	if *waferName != "" {
		if w, err = spec.LookupWafer(*waferName); err != nil {
			fmt.Fprintln(os.Stderr, "tempsim:", err)
			os.Exit(1)
		}
	} else {
		w = hw.WaferWithGrid(*rows, *cols)
	}
	cfg := parallel.Config{DP: *dp, TP: *tp, SP: *sp, CP: *cp, TATP: *tatp, PP: *pp,
		FSDP: *fsdp, MegatronSP: *mesp}
	o := cost.Options{Microbatch: *mb, Wafers: *wafers, DistributedOptimizer: true}
	switch strings.ToLower(*mapper) {
	case "smap":
		o.Engine = cost.SMap
	case "gmap":
		o.Engine = cost.GMap
	default:
		o.Engine = cost.TCMEEngine
	}
	switch strings.ToLower(*rec) {
	case "none":
		o.Recompute = cost.RecomputeNone
	case "full":
		o.Recompute = cost.RecomputeFull
	default:
		o.Recompute = cost.RecomputeSelective
	}

	key := ""
	if *backend != "" {
		stage, err := spec.CostOverride(*backend, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tempsim:", err)
			os.Exit(1)
		}
		key = stage.Key
	}
	if *repair {
		fmt.Fprintln(os.Stderr, "tempsim: -repair needs a scenario with a fault stage (-scenario/-scenarios)")
		os.Exit(1)
	}
	b, err := engine.EvaluateJob(engine.Job{Model: m, Wafer: w, Config: cfg, Opts: o, Backend: key})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tempsim:", err)
		os.Exit(1)
	}
	printBreakdown(m, w, cfg, o, b)
	if *debugTr {
		fmt.Println("trace     ", cost.Debug(m, w, cfg, o))
	}
	if *campaign != "" {
		cr, err := fault.Campaign{
			Model: m, Wafer: w, Config: cfg, Opts: o,
			Backend: key, Workers: *workers,
		}.Run()
		if err == nil {
			printCampaign(&cr)
			err = writeCampaignJSON(*campaign, &cr)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tempsim:", err)
			os.Exit(1)
		}
	}
}
