package spec

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"temp/internal/baselines"
	"temp/internal/cost"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
)

// evalConfig returns a configuration that covers a wafer's dies with
// the DP × TATP=8 split the Fig. 7 study uses.
func evalConfig(w hw.Wafer) parallel.Config {
	return parallel.Config{DP: w.Dies() / 8, TATP: 8}
}

// TestWaferRoundTrip: every registered wafer survives ToSpec → JSON →
// FromSpec with an identical cost-model breakdown.
func TestWaferRoundTrip(t *testing.T) {
	m := model.GPT3_6_7B()
	for _, name := range Wafers.Names() {
		w, ok := Wafers.Lookup(name)
		if !ok {
			t.Fatalf("registered wafer %q does not look up", name)
		}
		data, err := json.Marshal(WaferSpecOf(w))
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var s WaferSpec
		if err := json.Unmarshal(data, &s); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		w2, err := s.Wafer()
		if err != nil {
			t.Fatalf("%s: build: %v", name, err)
		}
		if !reflect.DeepEqual(w, w2) {
			t.Errorf("%s: wafer changed across round-trip:\n  was %+v\n  got %+v", name, w, w2)
		}
		cfg := evalConfig(w)
		b1, err1 := cost.Evaluate(m, w, cfg, cost.TEMPOptions())
		b2, err2 := cost.Evaluate(m, w2, cfg, cost.TEMPOptions())
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: evaluate: %v / %v", name, err1, err2)
		}
		if !reflect.DeepEqual(b1, b2) {
			t.Errorf("%s: breakdown changed across round-trip", name)
		}
	}
}

// TestModelRoundTrip: every registered model survives ToSpec → JSON →
// FromSpec with an identical cost-model breakdown.
func TestModelRoundTrip(t *testing.T) {
	w := hw.EvaluationWafer()
	cfg := evalConfig(w)
	for _, name := range Models.Names() {
		m, ok := Models.Lookup(name)
		if !ok {
			t.Fatalf("registered model %q does not look up", name)
		}
		data, err := json.Marshal(ModelSpecOf(m))
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var s ModelSpec
		if err := json.Unmarshal(data, &s); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		m2, err := s.Model()
		if err != nil {
			t.Fatalf("%s: build: %v", name, err)
		}
		if m != m2 {
			t.Errorf("%s: model changed across round-trip:\n  was %+v\n  got %+v", name, m, m2)
		}
		b1, err1 := cost.Evaluate(m, w, cfg, cost.TEMPOptions())
		b2, err2 := cost.Evaluate(m2, w, cfg, cost.TEMPOptions())
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: evaluate: %v / %v", name, err1, err2)
		}
		if !reflect.DeepEqual(b1, b2) {
			t.Errorf("%s: breakdown changed across round-trip", name)
		}
	}
}

// TestSystemRoundTrip: every registered system survives ToSpec → JSON
// → FromSpec with an identical best-configuration sweep result.
func TestSystemRoundTrip(t *testing.T) {
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	for _, name := range Systems.Names() {
		sys, ok := Systems.Lookup(name)
		if !ok {
			t.Fatalf("registered system %q does not look up", name)
		}
		ss, err := SystemSpecOf(sys)
		if err != nil {
			t.Fatalf("%s: to spec: %v", name, err)
		}
		data, err := json.Marshal(ss)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var parsed SystemSpec
		if err := json.Unmarshal(data, &parsed); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		sys2, err := parsed.System()
		if err != nil {
			t.Fatalf("%s: build: %v", name, err)
		}
		if sys2.Name != sys.Name || sys2.Opts != sys.Opts || sys2.Envelope != sys.Envelope {
			t.Fatalf("%s: system changed across round-trip: %+v vs %+v", name, sys, sys2)
		}
		if !reflect.DeepEqual(sys.Space(w.Dies()), sys2.Space(w.Dies())) {
			t.Fatalf("%s: configuration space changed across round-trip", name)
		}
		r1, err1 := baselines.Best(sys, m, w)
		r2, err2 := baselines.Best(sys2, m, w)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: best: %v / %v", name, err1, err2)
		}
		if !reflect.DeepEqual(r1, r2) {
			t.Errorf("%s: best result changed across round-trip", name)
		}
	}
}

// TestScenarioSpecJSONRoundTrip: a scenario using registry names
// serializes to the compact string form and back.
func TestScenarioSpecJSONRoundTrip(t *testing.T) {
	in := `{"name":"x","model":"gpt3-175b","wafer":"wsc-4x8","system":"TEMP"}`
	s, err := ParseScenario([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Model.Name != "gpt3-175b" || s.Wafer.Name != "wsc-4x8" {
		t.Fatalf("name refs not preserved: %+v", s)
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseScenario(data)
	if err != nil {
		t.Fatalf("re-parse: %v (json %s)", err, data)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Errorf("scenario spec changed across JSON round-trip")
	}
	sc, err := s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Model.Name != "GPT-3 175B" || sc.Wafer.Name != "wsc-4x8" || sc.System.Name != "TEMP" {
		t.Errorf("resolution wrong: %s / %s / %s", sc.Model.Name, sc.Wafer.Name, sc.System.Name)
	}
}

// TestValidationErrors: malformed specs fail with diagnostics instead
// of evaluating garbage.
func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{
			"non-power-of-two grid sweep",
			`{"model":"gpt3-6.7b","wafer":{"rows":3,"cols":5}}`,
			"not a power of two",
		},
		{
			"zero layers",
			`{"model":{"name":"bad","heads":8,"hidden":1024,"layers":0},"wafer":"wsc-4x8"}`,
			"layers",
		},
		{
			"unknown engine",
			`{"model":"gpt3-6.7b","wafer":"wsc-4x8","system":{"scheme":"mesp","engine":"warp"}}`,
			"unknown engine",
		},
		{
			"unknown scheme",
			`{"model":"gpt3-6.7b","wafer":"wsc-4x8","system":{"scheme":"zero3"}}`,
			"unknown scheme",
		},
		{
			"unknown model name",
			`{"model":"gpt5","wafer":"wsc-4x8"}`,
			"unknown model",
		},
		{
			"unknown wafer name",
			`{"model":"gpt3-6.7b","wafer":"wse-3"}`,
			"unknown wafer",
		},
		{
			"config degree mismatch",
			`{"model":"gpt3-6.7b","wafer":"wsc-4x8","config":{"dp":4,"tatp":4}}`,
			"degree",
		},
		{
			"heads not dividing hidden",
			`{"model":{"name":"bad","heads":7,"hidden":1024,"layers":4},"wafer":"wsc-4x8"}`,
			"divisible",
		},
	}
	for _, tc := range cases {
		s, err := ParseScenario([]byte(tc.json))
		if err == nil {
			err = s.Validate()
		}
		if err == nil {
			t.Errorf("%s: validated unexpectedly", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// Typos in field names are errors, not silently ignored — at the
	// top level and inside nested inline specs (the refs' custom
	// unmarshalers must re-apply DisallowUnknownFields).
	if _, err := ParseScenario([]byte(`{"model":"gpt3-6.7b","wafer":"wsc-4x8","cofnig":{}}`)); err == nil {
		t.Error("unknown top-level JSON field accepted")
	}
	nested := `{"model":{"name":"X","heads":8,"hidden":1024,"layers":4,"batchsize":32},"wafer":"wsc-4x8"}`
	if _, err := ParseScenario([]byte(nested)); err == nil {
		t.Error("unknown field inside inline model spec accepted")
	}
	nestedWafer := `{"model":"gpt3-6.7b","wafer":{"rows":4,"cols":8,"hbm":1}}`
	if _, err := ParseScenario([]byte(nestedWafer)); err == nil {
		t.Error("unknown field inside inline wafer spec accepted")
	}
}

// TestRegistryLookup: canonicalized and substring matching mirrors the
// historical CLI behavior.
func TestRegistryLookup(t *testing.T) {
	for _, q := range []string{"gpt3-6.7b", "GPT-3 6.7B", "gpt3_6_7b", "llama3 405B"} {
		if _, ok := Models.Lookup(q); !ok {
			t.Errorf("model query %q did not resolve", q)
		}
	}
	m, ok := Models.Lookup("opt")
	if !ok || m.Name != "OPT 175B" {
		t.Errorf("substring query 'opt' resolved to %q", m.Name)
	}
	if _, ok := Models.Lookup("nonexistent-model"); ok {
		t.Error("bogus model resolved")
	}
	if s, ok := Systems.Lookup("mega+smap"); !ok || s.Name != "Mega+SMap" {
		t.Errorf("system query resolved to %q", s.Name)
	}
	if w, ok := Wafers.Lookup("wsc-6x8"); !ok || w.Rows != 6 {
		t.Errorf("wafer query resolved to %+v", w)
	}
}

// TestSystemSpecDefaults: scheme defaults fill engine and the zero
// envelope reproduces the named constructors exactly.
func TestSystemSpecDefaults(t *testing.T) {
	sys, err := SystemSpec{Scheme: "temp"}.System()
	if err != nil {
		t.Fatal(err)
	}
	if sys.Opts.Engine != cost.TCMEEngine || sys.Name != "TEMP" {
		t.Errorf("temp scheme default = %+v", sys)
	}
	sys, err = SystemSpec{Scheme: "mesp"}.System()
	if err != nil {
		t.Fatal(err)
	}
	if sys.Opts.Engine != cost.GMap {
		t.Errorf("mesp default engine = %v, want GMap", sys.Opts.Engine)
	}
	ref := baselines.MeSP(cost.GMap)
	if sys.Opts != ref.Opts || !reflect.DeepEqual(sys.Space(32), ref.Space(32)) {
		t.Error("spec-built MeSP differs from constructor")
	}
}

// TestEnvelopeFilter: envelopes cap the swept space without touching
// the unrestricted path.
func TestEnvelopeFilter(t *testing.T) {
	full := baselines.TEMP()
	capped, err := SystemSpec{Scheme: "temp", Envelope: &EnvelopeSpec{MaxTATP: 4}}.System()
	if err != nil {
		t.Fatal(err)
	}
	fullSpace := full.Space(32)
	cappedSpace := capped.Space(32)
	if len(cappedSpace) >= len(fullSpace) {
		t.Fatalf("envelope did not shrink space: %d vs %d", len(cappedSpace), len(fullSpace))
	}
	for _, c := range cappedSpace {
		if c.Normalize().TATP > 4 {
			t.Errorf("config %s escaped the envelope", c)
		}
	}
	// The zero envelope returns the identical slice (no copy), so the
	// historical sweeps stay bit-identical.
	if !reflect.DeepEqual(fullSpace, full.Configs(32)) {
		t.Error("zero envelope altered the space")
	}
}
