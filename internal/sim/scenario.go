package sim

import (
	"fmt"

	"temp/internal/baselines"
	"temp/internal/engine"
	"temp/internal/fault"
	"temp/internal/spec"
)

// RunScenario evaluates one resolved scenario:
//
//   - an explicit configuration is priced directly through the
//     evaluation engine (memoized, worker-bounded),
//   - Wafers > 1 runs the §VIII-E multi-wafer assembly,
//   - otherwise the system's configuration space is swept for its
//     best feasible configuration (the footing every figure uses).
func RunScenario(sc spec.Scenario) (baselines.Result, error) {
	if sc.Config != nil {
		opts := sc.System.Opts
		if sc.Wafers > 1 {
			opts.Wafers = sc.Wafers
		}
		b, err := engine.Evaluate(sc.Model, sc.Wafer, *sc.Config, opts)
		if err != nil {
			return baselines.Result{}, fmt.Errorf("sim: scenario %q: %w", sc.Name, err)
		}
		return baselines.Result{
			System: sc.System.Name, Config: *sc.Config,
			Breakdown: b, Feasible: !b.OOM(),
		}, nil
	}
	if sc.Wafers > 1 {
		return MultiWafer(sc.System, sc.Model, sc.Wafer, sc.Wafers)
	}
	return baselines.Best(sc.System, sc.Model, sc.Wafer)
}

// ScenarioResult pairs one scenario with its outcome. Err is set when
// the scenario could not be evaluated (e.g. nothing placeable).
type ScenarioResult struct {
	Name   string
	Result baselines.Result
	// FaultNormTput is the §VIII-F normalized throughput under the
	// scenario's fault injection; valid only when Faulted is true.
	FaultNormTput float64
	Faulted       bool
	Err           error
}

// runOne evaluates a scenario including its optional fault stage.
func runOne(sc spec.Scenario) ScenarioResult {
	r, err := RunScenario(sc)
	out := ScenarioResult{Name: sc.Name, Result: r, Err: err}
	if err != nil || sc.Fault == nil {
		return out
	}
	in := fault.Injection{
		LinkRate:    sc.Fault.LinkRate,
		CoreRate:    sc.Fault.CoreRate,
		CoresPerDie: sc.Fault.CoresPerDie,
	}
	if !in.Active() {
		return out
	}
	opts := sc.System.Opts
	if sc.Wafers > 1 {
		opts.Wafers = sc.Wafers
	}
	out.FaultNormTput = fault.NormalizedThroughput(sc.Model, sc.Wafer, r.Config, opts,
		in, sc.Fault.TrialCount(), sc.Fault.RandSeed())
	out.Faulted = true
	return out
}

// RunScenarios fans a scenario batch out over the evaluation engine
// and returns results in input order regardless of completion order.
// Results are deterministic: the cost model is pure and each
// scenario's fault stage seeds its own RNG, so any worker count
// produces the same output.
func RunScenarios(scs []spec.Scenario) []ScenarioResult {
	out := make([]ScenarioResult, len(scs))
	engine.Map(len(scs), func(i int) {
		out[i] = runOne(scs[i])
	})
	return out
}

// RunScenarioSpecs resolves and runs serialized scenario specs. A
// spec that fails to resolve contributes an error result rather than
// aborting the batch.
func RunScenarioSpecs(specs []spec.ScenarioSpec) []ScenarioResult {
	scs := make([]spec.Scenario, len(specs))
	errs := make([]error, len(specs))
	for i, s := range specs {
		scs[i], errs[i] = s.Resolve()
	}
	out := make([]ScenarioResult, len(specs))
	engine.Map(len(specs), func(i int) {
		if errs[i] != nil {
			out[i] = ScenarioResult{Name: specs[i].Name, Err: errs[i]}
			return
		}
		out[i] = runOne(scs[i])
	})
	return out
}
