package experiments

import (
	"fmt"
	"slices"
	"strings"

	"temp/internal/engine"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/spec"
)

// The experiment runners default to the paper's exact footing (the
// §VIII-A evaluation wafer, the Table II model set) but resolve both
// through the scenario registry, so CLI overrides can re-run any
// Table-II-driven experiment on a different wafer or model set.
// Overrides are set once before a run starts; the runners read them
// concurrently.
var (
	overrideModels []model.Config
	overrideWafer  *hw.Wafer
)

// UseModels restricts the experiment model set to the named
// registered models (comma-separated lists are accepted per entry).
func UseModels(names ...string) error {
	var ms []model.Config
	for _, entry := range names {
		for _, name := range strings.Split(entry, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			m, err := spec.LookupModel(name)
			if err != nil {
				return fmt.Errorf("experiments: %w", err)
			}
			ms = append(ms, m)
		}
	}
	if len(ms) == 0 {
		return fmt.Errorf("experiments: no models named")
	}
	overrideModels = ms
	return nil
}

// UseBackend retargets every experiment evaluation at a registered
// cost backend (the -backend flag): the shared engine's default
// backend is swapped, so all sweeps price through the chosen fidelity
// tier. Backend keys accept a training seed ("surrogate@seed=7").
func UseBackend(key string) error {
	if _, err := engine.SetDefaultBackend(key); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	return nil
}

// UseWafer redirects the experiments to a registered wafer. The
// experiment sweeps enumerate power-of-two degree products, so a
// wafer whose die count is not a power of two is rejected here rather
// than failing mid-suite with empty configuration spaces.
func UseWafer(name string) error {
	w, err := spec.LookupWafer(name)
	if err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	if d := w.Dies(); d&(d-1) != 0 {
		return fmt.Errorf("experiments: wafer %s has %d dies (%dx%d), not a power of two; the baseline sweeps need power-of-two grids",
			w.Name, d, w.Rows, w.Cols)
	}
	overrideWafer = &w
	return nil
}

// ResetOverrides restores the paper's defaults.
func ResetOverrides() {
	overrideModels = nil
	overrideWafer = nil
}

// evalWafer returns the wafer the Table-II experiments run on.
func evalWafer() hw.Wafer {
	if overrideWafer != nil {
		return *overrideWafer
	}
	return hw.EvaluationWafer()
}

// overriddenModels returns a copy of the override set (or nil).
// Runners append figure-specific models to what evalModels returns,
// so handing out the global slice would alias its backing array
// across concurrently-running experiments.
func overriddenModels() []model.Config {
	if len(overrideModels) == 0 {
		return nil
	}
	return slices.Clone(overrideModels)
}
