// Package engine is the concurrent evaluation engine behind every
// design-space sweep in the repository. The cost model is a pure
// function of (model, wafer, config, options), so the engine memoizes
// its results in a goroutine-safe sharded cache and fans batches of
// configurations out across a bounded worker pool. The solver's
// genetic stage, the experiment runners and all three CLIs route
// their sweeps through it: figures that revisit the same
// configuration space (Fig. 13 and Fig. 14 sweep identical systems)
// pay for each evaluation once, and multi-core runners evaluate the
// rest in parallel.
//
// Below the memo layer, every worker also shares the pricing hot
// path's structural caches — interned topologies, per-topology
// placement/orchestration state and compiled collective-lowering
// templates (see DESIGN.md "Hot-path architecture") — because those
// key off process-global frozen topologies. A Sweep or GA population
// therefore lowers each distinct group structure once no matter how
// many candidates or workers touch it; TestSweepSharesHotPathCaches
// pins both the -race safety and the parallel/serial determinism of
// that sharing.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"temp/internal/cost"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
)

// Job identifies one cost-model evaluation. All fields are plain
// comparable values, so a Job doubles as the cache key.
type Job struct {
	Model  model.Config
	Wafer  hw.Wafer
	Config parallel.Config
	Opts   cost.Options
	// Backend is the canonical cost-backend key pricing the job
	// ("replay", "surrogate@seed=7"; see cost.BackendKey). Empty
	// means the pool's default backend — the analytic tier unless
	// SetDefaultBackend retargeted it. The resolved key is part of
	// the memo key, so tiers never share cache entries.
	Backend string
}

// Result is the outcome of one Job.
type Result struct {
	Breakdown cost.Breakdown
	Err       error
}

// shardCount shards the cache to keep lock contention off the hot
// path; must be a power of two.
const shardCount = 64

// Cache is a goroutine-safe sharded memoization cache over
// cost.Evaluate, built on the shared Memo helper. The cost model is
// deterministic, so concurrent misses on the same key may compute
// twice but always store the same value; hit/miss counters track
// effectiveness.
type Cache struct {
	memo   *Memo[Job, Result]
	hits   atomic.Int64
	misses atomic.Int64
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{memo: NewMemo[Job, Result](shardCount, jobHash)}
}

// jobHash mixes the discriminating key fields with FNV-1a. Only
// shard selection depends on it, so it hashes a representative
// subset of the key, not every field.
func jobHash(j Job) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		h ^= v
		h *= prime
	}
	for i := 0; i < len(j.Model.Name); i++ {
		mix(uint64(j.Model.Name[i]))
	}
	mix(uint64(j.Model.Seq))
	mix(uint64(j.Model.Batch))
	mix(uint64(j.Model.Layers))
	c := j.Config
	mix(uint64(c.DP))
	mix(uint64(c.TP))
	mix(uint64(c.SP))
	mix(uint64(c.CP))
	mix(uint64(c.TATP))
	mix(uint64(c.PP))
	if c.FSDP {
		mix(1)
	}
	if c.MegatronSP {
		mix(2)
	}
	mix(uint64(j.Wafer.Rows))
	mix(uint64(j.Wafer.Cols))
	mix(uint64(j.Opts.Engine))
	mix(uint64(j.Opts.Recompute))
	mix(uint64(j.Opts.Microbatch))
	mix(uint64(j.Opts.Wafers))
	for i := 0; i < len(j.Backend); i++ {
		mix(uint64(j.Backend[i]))
	}
	return h
}

// priceJob runs one evaluation through the job's backend; the empty
// key is the analytic tier's direct fast path.
func priceJob(j Job) Result {
	if j.Backend == "" {
		b, err := cost.Evaluate(j.Model, j.Wafer, j.Config, j.Opts)
		return Result{Breakdown: b, Err: err}
	}
	be, err := cost.NewBackend(j.Backend)
	if err != nil {
		return Result{Err: err}
	}
	b, err := be.Price(j.Model, j.Wafer, j.Config, j.Opts)
	return Result{Breakdown: b, Err: err}
}

// Evaluate returns the memoized cost-model result for one job.
func (c *Cache) Evaluate(j Job) (cost.Breakdown, error) {
	// Normalize so equivalent configurations (and equivalent backend
	// spellings) share one entry; the cost model normalizes
	// internally, so the result is identical.
	j.Config = j.Config.Normalize()
	j.Backend = cost.CanonicalBackendKey(j.Backend)
	r, fresh := c.memo.Get(j, func() Result {
		return priceJob(j)
	})
	if fresh {
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
	}
	return r.Breakdown, r.Err
}

// Stats reports cache effectiveness counters.
type Stats struct {
	Hits, Misses int64
	Entries      int
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: c.memo.Len()}
}

// Pool couples a worker count with a cache. The zero worker count
// means runtime.GOMAXPROCS(0). The bound is global across nested
// fan-outs: Map calls may nest freely (experiments → systems →
// config sweeps), but every cost-model evaluation routed through the
// pool acquires one of its workers tokens, so at most workers
// evaluations compute concurrently no matter how deep the
// orchestration stacks.
type Pool struct {
	workers int
	cache   *Cache
	// backend is the default cost-backend key injected into jobs that
	// leave Job.Backend empty ("" = analytic). It retargets every
	// sweep routed through the pool — the CLI -backend axis.
	backend string
	// sem bounds concurrent leaf evaluations. Only leaves (the
	// actual cost-model computation, which never re-enters the
	// engine) hold a token, so nested Map orchestration cannot
	// deadlock against it.
	sem chan struct{}
}

// New returns a pool with its own cache. workers <= 0 selects
// runtime.GOMAXPROCS(0).
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, cache: NewCache(), sem: make(chan struct{}, workers)}
}

// Do runs one leaf computation under the pool's global evaluation
// bound. f must not call back into the pool (it would deadlock the
// token it holds); the engine's own evaluation paths already route
// through Do, so callers only need it for work that bypasses the
// cache (e.g. cluster evaluations).
func (p *Pool) Do(f func()) {
	p.sem <- struct{}{}
	defer func() { <-p.sem }()
	f()
}

// Workers returns the pool's worker bound.
func (p *Pool) Workers() int { return p.workers }

// Cache returns the pool's cache.
func (p *Pool) Cache() *Cache { return p.cache }

// Evaluate runs one memoized cost-model evaluation under the pool's
// global bound.
func (p *Pool) Evaluate(m model.Config, w hw.Wafer, cfg parallel.Config, o cost.Options) (cost.Breakdown, error) {
	return p.evaluate(Job{Model: m, Wafer: w, Config: cfg, Opts: o})
}

// EvaluateJob runs one memoized evaluation of an explicit job
// (including its backend key) under the pool's global bound.
func (p *Pool) EvaluateJob(j Job) (cost.Breakdown, error) {
	return p.evaluate(j)
}

// evaluate serves a job from the cache, acquiring a worker token
// only for the miss path (the actual cost-model computation).
func (p *Pool) evaluate(j Job) (cost.Breakdown, error) {
	j.Config = j.Config.Normalize()
	if j.Backend == "" {
		j.Backend = p.backend
	}
	j.Backend = cost.CanonicalBackendKey(j.Backend)
	r, fresh := p.cache.memo.Get(j, func() Result {
		var res Result
		p.Do(func() {
			res = priceJob(j)
		})
		return res
	})
	if fresh {
		p.cache.misses.Add(1)
	} else {
		p.cache.hits.Add(1)
	}
	return r.Breakdown, r.Err
}

// Sweep fans the jobs out across the pool's workers and returns
// their results in input order, regardless of completion order.
func (p *Pool) Sweep(jobs []Job) []Result {
	out := make([]Result, len(jobs))
	p.Map(len(jobs), func(i int) {
		b, err := p.evaluate(jobs[i])
		out[i] = Result{Breakdown: b, Err: err}
	})
	return out
}

// Map runs f(0..n-1) across the pool's workers. Each index runs
// exactly once; f must be safe for concurrent invocation when the
// pool has more than one worker.
func (p *Pool) Map(n int, f func(i int)) {
	ForEach(p.workers, n, f)
}

// ForEach runs f(0..n-1) across at most workers goroutines. With one
// worker (or one item) it degenerates to a plain serial loop, so
// callers can treat it as the single fan-out primitive at any
// parallelism level.
func ForEach(workers, n int, f func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for k := 0; k < workers; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// defaultPool serves the package-level helpers; the CLIs retune its
// worker bound via SetWorkers while every caller keeps sharing one
// cache.
var defaultPool atomic.Pointer[Pool]

func init() {
	defaultPool.Store(New(0))
}

// Default returns the shared pool.
func Default() *Pool { return defaultPool.Load() }

// SetWorkers rebounds the shared pool's worker count, retaining the
// shared cache (and everything already memoized in it) and the
// default backend.
func SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	cur := Default()
	defaultPool.Store(&Pool{workers: n, cache: cur.cache, backend: cur.backend, sem: make(chan struct{}, n)})
}

// Workers returns the shared pool's worker bound.
func Workers() int { return Default().workers }

// SetDefaultBackend retargets the shared pool's default cost backend:
// every job that does not name a backend explicitly is priced by this
// tier from now on. The cache is retained — backend keys are part of
// the memo key, so tiers never cross-contaminate. The key must
// resolve (see cost.NewBackend); it is returned canonicalized.
func SetDefaultBackend(key string) (string, error) {
	canon := cost.CanonicalBackendKey(key)
	if _, err := cost.NewBackend(canon); err != nil {
		return "", err
	}
	cur := Default()
	defaultPool.Store(&Pool{workers: cur.workers, cache: cur.cache, backend: canon, sem: make(chan struct{}, cur.workers)})
	return canon, nil
}

// DefaultBackend returns the shared pool's default backend key (""
// means analytic).
func DefaultBackend() string { return Default().backend }

// EvaluateJob runs one memoized evaluation of an explicit job on the
// shared pool.
func EvaluateJob(j Job) (cost.Breakdown, error) { return Default().EvaluateJob(j) }

// Evaluate runs one memoized evaluation on the shared pool.
func Evaluate(m model.Config, w hw.Wafer, cfg parallel.Config, o cost.Options) (cost.Breakdown, error) {
	return Default().Evaluate(m, w, cfg, o)
}

// Sweep fans jobs out on the shared pool.
func Sweep(jobs []Job) []Result { return Default().Sweep(jobs) }

// Map runs f(0..n-1) on the shared pool.
func Map(n int, f func(i int)) { Default().Map(n, f) }

// Do runs one leaf computation under the shared pool's global
// evaluation bound.
func Do(f func()) { Default().Do(f) }
