package solver

import (
	"context"
	"fmt"

	"temp/internal/distrib"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
)

// Distributed portfolio racing: each racer (ga, anneal, hillclimb,
// and multifid when screening applies) is one task, so the race
// spreads across worker processes instead of goroutines. Each worker
// rebuilds its cost models from the same (model, wafer, backend,
// seed) tuple, so a racer's result is bit-identical to the in-process
// portfolio's corresponding sub-strategy.

type raceTask struct {
	Strategy   string
	Seed       int64
	ScreenSeed int64
	Model      model.Config
	Wafer      hw.Wafer
	Backend    string
	Budget     Budget
}

type raceOut struct {
	Assignment Assignment
	Stats      Stats
}

func init() {
	distrib.RegisterKind("solver.race", distrib.HandlerGob(runRaceTask))
}

func runRaceTask(ctx context.Context, t raceTask) (raceOut, error) {
	g := model.BlockGraph(t.Model)
	space := parallel.EnumerateConfigs(t.Wafer.Dies(), true, 0)
	cm, screen, err := SearchModels(t.Strategy, t.Backend, t.Model, t.Wafer, t.ScreenSeed)
	if err != nil {
		return raceOut{}, err
	}
	st, err := NewStrategy(t.Strategy, Params{"seed": float64(t.Seed)})
	if err != nil {
		return raceOut{}, err
	}
	p := Problem{Graph: g, Space: space, Model: cm, Screen: screen}
	a, s := st.Solve(ctx, p, t.Budget)
	return raceOut{Assignment: a, Stats: s}, nil
}

// DistributedRace runs the portfolio's race with one racer per fabric
// task. Winner selection replicates Portfolio.Solve: strictly lower
// FinalCost wins, ties break toward the earlier racer, and the
// aggregate stats carry every racer under Sub. The only semantic
// difference from the in-process portfolio is the deadline: it
// applies per racer rather than as one shared context, since workers
// are separate processes. Cancelling ctx aborts the race: unfinished
// racers report ctx.Err() and the call fails.
func DistributedRace(ctx context.Context, f *distrib.Fabric, m model.Config, w hw.Wafer, backendKey string, seed, screenSeed int64, b Budget) (Assignment, Stats, error) {
	inner := b
	inner.Deadline = b.Deadline
	names := []string{"ga", "anneal", "hillclimb", "multifid"}
	tasks := make([]raceTask, len(names))
	for i, name := range names {
		tasks[i] = raceTask{
			Strategy: name, Seed: seed + int64(i), ScreenSeed: screenSeed,
			Model: m, Wafer: w, Backend: backendKey, Budget: inner,
		}
	}
	outs, errs := distrib.RunTasksCtx[raceTask, raceOut](ctx, f, "solver.race", tasks)
	for i, err := range errs {
		if err != nil {
			return nil, Stats{}, fmt.Errorf("solver: distributed racer %s: %w", names[i], err)
		}
	}
	winner := 0
	for i := 1; i < len(outs); i++ {
		if outs[i].Stats.FinalCost < outs[winner].Stats.FinalCost {
			winner = i
		}
	}
	stats := Stats{Strategy: "portfolio"}
	win := outs[winner].Stats
	stats.Winner = win.Strategy
	stats.DPCost = win.DPCost
	stats.FinalCost = win.FinalCost
	stats.Generations = win.Generations
	stats.Iterations = win.Iterations
	stats.Restarts = win.Restarts
	stats.Checkpoints = win.Checkpoints
	for _, o := range outs {
		stats.Sub = append(stats.Sub, o.Stats)
		stats.Evaluations += o.Stats.Evaluations
		stats.ScreenEvaluations += o.Stats.ScreenEvaluations
		if o.Stats.Elapsed > stats.Elapsed {
			stats.Elapsed = o.Stats.Elapsed
		}
	}
	return outs[winner].Assignment, stats, nil
}
