package fault

import (
	"testing"

	"temp/internal/cost"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
	"temp/internal/solver"
)

// TestRepairBeatsReprice pins the PR's acceptance scenario: on a
// seeded link-fault mask that leaves the fabric connected, the
// warm-started repair search recovers strictly more normalized
// throughput than re-pricing the pre-fault mapping, within a bounded
// evaluation budget.
func TestRepairBeatsReprice(t *testing.T) {
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	pre := parallel.Config{DP: 2, TATP: 16}
	const maxEvals = 2000
	rec, err := RepairInjected(m, w, pre, cost.TEMPOptions(),
		Injection{LinkRate: 0.15}, 3,
		RepairOptions{Budget: solver.Budget{MaxEvals: maxEvals}})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Functional {
		t.Fatal("pinned mask left the fabric non-functional")
	}
	if rec.RepriceNorm <= 0 {
		t.Fatalf("re-price norm %v, want > 0", rec.RepriceNorm)
	}
	if rec.RepairedNorm <= rec.RepriceNorm {
		t.Errorf("repair %.4f does not strictly beat re-price %.4f",
			rec.RepairedNorm, rec.RepriceNorm)
	}
	// Strategies check the budget between move batches, so allow the
	// one-eval overshoot hillclimb exhibits at some budgets.
	if rec.WarmEvals <= 0 || rec.WarmEvals > maxEvals+1 {
		t.Errorf("warm search used %d evals, want (0, %d]", rec.WarmEvals, maxEvals+1)
	}
	if rec.Report.DeadLinks == 0 {
		t.Error("pinned mask killed no links")
	}
}

// TestRepairNeverBelowReprice: the pre-fault configuration is always a
// verification candidate, so repair can never report a worse recovery
// than keeping the old mapping — even when the search finds nothing.
func TestRepairNeverBelowReprice(t *testing.T) {
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	pre := parallel.Config{DP: 8, TATP: 4} // robust mapping: repair rarely improves it
	rec, err := RepairInjected(m, w, pre, cost.TEMPOptions(),
		Injection{LinkRate: 0.1}, 5,
		RepairOptions{Budget: solver.Budget{MaxEvals: 200}})
	if err != nil {
		t.Fatal(err)
	}
	if rec.RepairedNorm < rec.RepriceNorm {
		t.Errorf("repaired %.4f below re-price %.4f", rec.RepairedNorm, rec.RepriceNorm)
	}
}

// TestRepairDisconnectedMask: a mask that partitions the fabric ends
// repair early with zero recovery and zero search effort.
func TestRepairDisconnectedMask(t *testing.T) {
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	rec, err := RepairInjected(m, w, parallel.Config{DP: 4, TATP: 8}, cost.TEMPOptions(),
		Injection{LinkRate: 0.3}, 42, RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Report.Connected {
		t.Skip("seed 42 @ 30% no longer disconnects; repick the seed")
	}
	if rec.Functional || rec.RepairedNorm != 0 || rec.RepriceNorm != 0 || rec.WarmEvals != 0 {
		t.Errorf("disconnected repair should be a zero recovery: %+v", rec)
	}
}

// TestRepairDeterministic: same seed, same recovery (wall-clock aside).
func TestRepairDeterministic(t *testing.T) {
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	pre := parallel.Config{DP: 2, TATP: 16}
	run := func() Recovery {
		rec, err := RepairInjected(m, w, pre, cost.TEMPOptions(),
			Injection{LinkRate: 0.15}, 3,
			RepairOptions{Budget: solver.Budget{MaxEvals: 500}, Cold: true})
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}
	a, b := run(), run()
	if a.RepairedNorm != b.RepairedNorm || a.RepairedConfig != b.RepairedConfig ||
		a.RepriceNorm != b.RepriceNorm || a.ColdNorm != b.ColdNorm ||
		a.WarmEvals != b.WarmEvals || a.ColdEvals != b.ColdEvals ||
		a.Report != b.Report {
		t.Errorf("repair not deterministic:\n a %+v\n b %+v", a, b)
	}
	if a.ColdEvals <= 0 {
		t.Error("Cold option ran no cold re-solve")
	}
}

// TestUniformAssignmentRoundTrip covers the warm-start bridge: a
// uniform pre-fault mapping resolves to its space index and back.
func TestUniformAssignmentRoundTrip(t *testing.T) {
	space := parallel.EnumerateConfigs(32, true, 0)
	pre := parallel.Config{DP: 2, TATP: 16}
	a, ok := solver.UniformAssignment(space, pre, 13)
	if !ok {
		t.Fatalf("config %s not found in its own space", pre)
	}
	if len(a) != 13 {
		t.Fatalf("assignment length %d, want 13", len(a))
	}
	for _, c := range a {
		if c != a[0] {
			t.Fatal("assignment not uniform")
		}
	}
	if got := space[a[0]].Normalize(); got != pre.Normalize() {
		t.Errorf("assignment decodes to %s, want %s", got, pre.Normalize())
	}
	if _, ok := solver.UniformAssignment(space, parallel.Config{DP: 3}, 13); ok {
		t.Error("degree-3 config resolved in a 32-die space")
	}
}
