package cost

import (
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
	"temp/internal/tensor"
	"temp/internal/unit"
)

// OperatorModel is the per-operator fast path of a cost backend: it
// prices single operators and operator transitions under candidate
// strategies — the shape the solver's search strategies evaluate
// millions of times. It is structurally identical to solver.CostModel,
// so any backend's operator model plugs straight into a
// solver.Problem.
//
// Implementations must be safe for concurrent use after construction
// (the solver prices GA populations across worker goroutines).
type OperatorModel interface {
	// Intra returns T_intra(op) of Eq. (2): compute overlapped with
	// streaming plus exposed collectives, under the strategy.
	Intra(op model.Op, cfg parallel.Config) float64
	// Inter returns T_inter(op1, op2) of Eq. (3): the resharding P2P
	// cost between consecutive operators under their strategies.
	Inter(prev, next model.Op, pc, nc parallel.Config) float64
	// MemoryOK reports whether the strategy fits per-die memory for
	// the whole model.
	MemoryOK(cfg parallel.Config) bool
}

// OperatorAnalytic is the closed-form wafer cost model of §VII-A: ring
// and stream formulas over the Table I link parameters, matching the
// first-order behaviour of the full mesh simulation at a tiny fraction
// of its cost. It is the analytic backend's operator fast path
// (solver.Analytic is an alias for it).
//
// The struct is read-only after construction, so it is safe for
// concurrent use as-is.
type OperatorAnalytic struct {
	W hw.Wafer
	M model.Config
	// Microbatch sequences per DP rank (0 = default 4).
	Microbatch int
	// MemBudget per die; 0 means the wafer die's capacity.
	MemBudget float64
}

func (a *OperatorAnalytic) mb() float64 {
	if a.Microbatch > 0 {
		return float64(a.Microbatch)
	}
	return 4
}

// computeTerm prices the pure compute share of one operator — the
// tier-independent part every backend's Intra shares (the fidelity
// axis is communication).
func (a *OperatorAnalytic) computeTerm(op model.Op, cfg parallel.Config) float64 {
	die := a.W.Die
	frac := a.mb() / float64(a.M.Batch)
	gemmShard := float64(cfg.TP * cfg.SP * cfg.CP * cfg.TATP)
	if op.Kind.IsGEMM() {
		shard := op.FLOPs * frac / gemmShard
		per := shard
		if cfg.TATP > 1 && op.HasWeight() {
			per = shard / float64(cfg.TATP)
		}
		eff := per / (per + gemmHalfEff)
		if eff < 0.05 {
			eff = 0.05
		}
		return shard / (die.PeakFLOPS * eff)
	}
	vecShard := float64(cfg.SP * cfg.CP * cfg.TATP)
	if op.TPSharded || cfg.MegatronSP {
		vecShard *= float64(cfg.TP)
	}
	shard := op.FLOPs * frac / vecShard
	comp := shard / die.VectorFLOPS
	if !op.FlashFused {
		bytes := (op.Input.Bytes() + op.Output.Bytes()) * frac / vecShard
		comp = unit.MaxF(comp, bytes/die.MemBandwidth())
	}
	return comp
}

// streamedBytes returns the per-group streamed operand volume and
// the per-round sub-tensor size of one weighted op under TATP — the
// tier-shared operand-selection rule (min of weight and input
// shards).
func (a *OperatorAnalytic) streamedBytes(op model.Op, cfg parallel.Config) (streamed, sub float64) {
	frac := a.mb() / float64(a.M.Batch)
	wGroup := op.Weight.Bytes() / float64(cfg.TP)
	iGroup := op.Input.Bytes() * frac / float64(cfg.SP*cfg.CP)
	streamed = unit.MinF(wGroup, iGroup)
	return streamed, streamed / float64(cfg.TATP)
}

// arBytes returns the per-block partial-sum all-reduce volume of the
// TP collective — shared by every tier (only its lowering differs).
func (a *OperatorAnalytic) arBytes(cfg parallel.Config) float64 {
	return a.mb() * float64(a.M.Seq) / float64(cfg.SP*cfg.CP*cfg.TATP) *
		float64(a.M.Hidden) * unit.FP16.Size()
}

// Intra implements OperatorModel.
func (a *OperatorAnalytic) Intra(op model.Op, cfg parallel.Config) float64 {
	cfg = cfg.Normalize()
	comp := a.computeTerm(op, cfg)

	// Streaming (TATP) overlaps with compute; collectives expose.
	var stream float64
	if cfg.TATP > 1 && op.HasWeight() {
		streamed, sub := a.streamedBytes(op, cfg)
		stream = streamed/a.W.Link.EffectiveBandwidth(sub) + float64(cfg.TATP)*streamRoundSync
	}

	var coll float64
	if cfg.TP > 1 && op.HasWeight() {
		// Half the weighted GEMMs end a TP block with a partial-sum
		// reduction; amortize one AR across two weighted ops.
		arBytes := a.arBytes(cfg)
		n := float64(cfg.TP)
		chunk := arBytes / n
		coll = 0.5 * (2 * (n - 1) * chunk / a.W.Link.EffectiveBandwidth(chunk))
	}
	return unit.MaxF(comp, stream) + coll
}

// actPartition derives the activation layout a configuration induces.
func actPartition(cfg parallel.Config) tensor.Partition {
	cfg = cfg.Normalize()
	p := tensor.SplitBy(map[tensor.Dim]int{
		tensor.B: cfg.DP,
		tensor.M: cfg.SP * cfg.CP * cfg.TATP,
	})
	if cfg.MegatronSP {
		p = p.Compose(tensor.SplitBy(map[tensor.Dim]int{tensor.M: cfg.TP}))
	} else {
		p = p.WithReplicas(cfg.TP)
	}
	return p
}

// ReshardBytes returns the bytes one operator transition moves per
// micro-step under two layouts — the exact structural part of the
// inter cost every fidelity tier shares.
func (a *OperatorAnalytic) ReshardBytes(prev model.Op, pc, nc parallel.Config) float64 {
	bytes := tensor.ReshardBytes(prev.Output, actPartition(pc), actPartition(nc))
	return bytes * a.mb() / float64(a.M.Batch)
}

// Inter implements OperatorModel: resharding bytes over one mesh link
// at effective bandwidth (consecutive operators live on the same dies,
// so a layout change is a neighbor exchange).
func (a *OperatorAnalytic) Inter(prev, next model.Op, pc, nc parallel.Config) float64 {
	bytes := a.ReshardBytes(prev, pc, nc)
	if bytes <= 0 {
		return 0
	}
	return bytes / a.W.Link.EffectiveBandwidth(bytes)
}

// MemoryOK implements OperatorModel with the same footprint
// conventions as the full model: weights+grads+optimizer+selective
// activations.
func (a *OperatorAnalytic) MemoryOK(cfg parallel.Config) bool {
	cfg = cfg.Normalize()
	budget := a.MemBudget
	if budget <= 0 {
		budget = a.W.Die.MemCapacity()
	}
	p := float64(a.M.Params())
	weights := p * 2 / float64(cfg.WeightShardWays())
	grads := weights
	optim := p * 12 / float64(cfg.Degree())
	sLocal := float64(a.M.Seq) / float64(cfg.SP*cfg.CP*cfg.TATP)
	if cfg.MegatronSP {
		sLocal /= float64(cfg.TP)
	}
	acts := 34 * a.mb() * sLocal * float64(a.M.Hidden) * float64(a.M.Layers)
	return weights+grads+optim+acts <= budget
}

var _ OperatorModel = (*OperatorAnalytic)(nil)
