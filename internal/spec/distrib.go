package spec

import "fmt"

// DistribSpec is the optional "distrib" block of a scenario spec: it
// declares how a batch containing the scenario should be spread
// across worker processes. The CLIs honor it when -distribute is not
// given (an explicit flag always wins), so a checked-in scenario dir
// can carry its own fan-out policy.
type DistribSpec struct {
	// Workers is the worker-process count (0 = run in-process).
	Workers int `json:"workers"`
	// ShardSize caps tasks per shard (0 = automatic).
	ShardSize int `json:"shard_size,omitempty"`
	// Retries bounds per-shard requeues after a worker failure
	// (0 = the fabric default).
	Retries int `json:"retries,omitempty"`
}

func (d *DistribSpec) validate(name string) error {
	if d == nil {
		return nil
	}
	if d.Workers < 0 {
		return fmt.Errorf("scenario %q: distrib workers %d is negative", name, d.Workers)
	}
	if d.ShardSize < 0 {
		return fmt.Errorf("scenario %q: distrib shard_size %d is negative", name, d.ShardSize)
	}
	if d.Retries < 0 {
		return fmt.Errorf("scenario %q: distrib retries %d is negative", name, d.Retries)
	}
	return nil
}
