package spec

import (
	"fmt"
	"strings"

	"temp/internal/cost"
)

// CostSpec selects the cost backend pricing a scenario — the fidelity
// axis, serializable like every other spec. The zero spec is the
// analytic tier (the historical monolithic model, golden-pinned).
//
//	"cost": {"backend": "replay"}
//	"cost": {"backend": "surrogate", "seed": 42}
//
// Seed drives the surrogate tier's train-once randomness; runs with
// the same spec are bit-identical end to end (deterministic sampling,
// seeded training, frozen weights at inference).
type CostSpec struct {
	// Backend names a registered cost backend (analytic | replay |
	// surrogate); empty defaults to analytic.
	Backend string `json:"backend,omitempty"`
	// Seed seeds surrogate training; 0 means
	// cost.DefaultSurrogateSeed. Deterministic tiers ignore it.
	Seed int64 `json:"seed,omitempty"`
}

// BackendName returns the defaulted backend name.
func (s CostSpec) BackendName() string {
	name := strings.ToLower(strings.TrimSpace(s.Backend))
	if name == "" {
		return "analytic"
	}
	return name
}

// Key returns the canonical backend key threaded through engine jobs
// and baselines sweeps ("" for analytic). A seed embedded in the
// backend name ("surrogate@seed=42") wins over the Seed field, so
// CLI -backend key forms compose with the default -seed flag.
func (s CostSpec) Key() string {
	name := s.BackendName()
	if strings.Contains(name, "@") {
		return cost.CanonicalBackendKey(name)
	}
	return cost.CanonicalBackendKey(cost.BackendKey(name, s.Seed))
}

// Validate reports structural problems with the spec.
func (s CostSpec) Validate() error {
	_, err := s.Build()
	return err
}

// CostStage is a resolved CostSpec: the backend instance plus the
// canonical key scenario evaluation threads through the engine.
type CostStage struct {
	Key     string
	Backend cost.Backend
}

// SurrogateSeed returns the stage's surrogate training seed, or 0
// when the stage is nil or its backend is not seeded — the seed the
// solver's screening tier reuses so one spec pins a whole run.
func (cs *CostStage) SurrogateSeed() int64 {
	if cs == nil || cs.Backend == nil {
		return 0
	}
	if s, ok := cs.Backend.(interface{ Seed() int64 }); ok {
		return s.Seed()
	}
	return 0
}

// Build resolves the spec against the cost-backend registry.
func (s CostSpec) Build() (*CostStage, error) {
	key := s.Key()
	be, err := cost.NewBackend(key)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return &CostStage{Key: key, Backend: be}, nil
}

// CostOverride builds the stage the CLI -backend flag injects into
// scenario runs (overriding any spec-declared stage); nil when the
// flag is unset.
func CostOverride(backend string, seed int64) (*CostStage, error) {
	if backend == "" {
		return nil, nil
	}
	return CostSpec{Backend: backend, Seed: seed}.Build()
}
