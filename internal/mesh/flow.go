package mesh

import (
	"fmt"
	"sort"
	"sync"
)

// Flow is one point-to-point transfer inside a communication phase:
// Bytes of payload moving from Src to Dst along Route. Payload names
// the logical datum carried so that the TCME optimizer can recognise
// duplicate transmissions of the same data and merge them into
// multicast trees (§VI-B phase 4).
type Flow struct {
	Src, Dst DieID
	Bytes    float64
	Route    Path
	Payload  string
}

// Phase is a set of flows that execute concurrently. A phase
// completes when its slowest link has drained; consecutive phases are
// serialized by the caller.
type Phase struct {
	Label string
	Flows []Flow
}

// LinkLoads accumulates the byte load each alive link carries.
type LinkLoads map[Link]float64

// forEachLink calls fn for every (flow index, traversed link) pair of
// the phase, in flow order then route order. It is the single
// load-accumulation walk shared by Loads, the dense Time kernel and
// the generic fallback, so their float summation orders cannot drift.
func (p Phase) forEachLink(fn func(i int, l Link)) {
	for i := range p.Flows {
		r := p.Flows[i].Route
		for j := 0; j+1 < len(r); j++ {
			fn(i, Link{r[j], r[j+1]})
		}
	}
}

// Loads computes the per-link byte loads of the phase.
func (p Phase) Loads() LinkLoads {
	out := make(LinkLoads)
	p.forEachLink(func(i int, l Link) { out[l] += p.Flows[i].Bytes })
	return out
}

// MaxLoad returns the most congested link and its load. When the
// phase is empty it returns a zero link and zero load.
func (p Phase) MaxLoad() (Link, float64) {
	loads := p.Loads()
	var (
		best     Link
		bestLoad float64
		found    bool
	)
	// Deterministic tie-break: iterate links in sorted order.
	keys := make([]Link, 0, len(loads))
	for l := range loads {
		keys = append(keys, l)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].From != keys[j].From {
			return keys[i].From < keys[j].From
		}
		return keys[i].To < keys[j].To
	})
	for _, l := range keys {
		if !found || loads[l] > bestLoad {
			best, bestLoad, found = l, loads[l], true
		}
	}
	return best, bestLoad
}

// PhaseTime is the latency estimate for one phase: the bottleneck
// link's serialization time (its byte load over granularity-adjusted
// bandwidth) plus the longest flow's hop latency. This is the
// standard α–β contention model the wafer cost model builds on.
type PhaseTime struct {
	// Serialization is the bottleneck-link drain time in seconds.
	Serialization float64
	// HopLatency is the per-hop propagation of the longest route.
	HopLatency float64
	// Bottleneck is the most loaded link.
	Bottleneck Link
	// BottleneckBytes is its byte load.
	BottleneckBytes float64
	// TotalBytes is the payload volume summed over flows (for
	// energy accounting each byte is charged per hop separately;
	// see LinkBytes).
	TotalBytes float64
	// LinkBytes is the volume summed over every (flow, link) pair —
	// the quantity D2D energy scales with.
	LinkBytes float64
	// MaxHops is the longest route length.
	MaxHops int
}

// Total returns the phase completion time.
func (pt PhaseTime) Total() float64 { return pt.Serialization + pt.HopLatency }

// timeScratch holds the dense per-link accumulators of the Time
// kernel, reused through a pool so steady-state evaluation allocates
// nothing. Slices are indexed by canonical link ID and grown to the
// largest topology seen.
type timeScratch struct {
	loads    []float64
	msgBytes []float64
	msgCount []int32
}

var timePool = sync.Pool{New: func() any { return new(timeScratch) }}

// grab sizes the scratch for n links and zeroes it.
func (s *timeScratch) grab(n int) {
	if cap(s.loads) < n {
		s.loads = make([]float64, n)
		s.msgBytes = make([]float64, n)
		s.msgCount = make([]int32, n)
		return
	}
	s.loads = s.loads[:n]
	s.msgBytes = s.msgBytes[:n]
	s.msgCount = s.msgCount[:n]
	for i := range s.loads {
		s.loads[i] = 0
		s.msgBytes[i] = 0
		s.msgCount[i] = 0
	}
}

// Time evaluates the phase on topology t.
//
// The kernel accumulates per-link loads into flat arrays over the
// canonical link index and scans IDs in ascending order for the
// bottleneck — bit-identical to the historical map-accumulate-and-sort
// implementation, because link IDs ascend in exactly the (From, To)
// order the old sort used and the per-accumulator float summation
// order (flow order, then route order) is unchanged. Routes that
// traverse non-mesh links (synthetic test phases) fall back to the
// generic map path.
func (t *Topology) Time(p Phase) PhaseTime { return t.timePhase(p, false, 0) }

// timePhase is the shared kernel behind Time and the template
// evaluation path: when scaled is set every flow carries scale bytes
// (templates store byte-invariant structures), otherwise each flow's
// own Bytes field is used.
func (t *Topology) timePhase(p Phase, scaled bool, scale float64) PhaseTime {
	var out PhaseTime
	for i := range p.Flows {
		b := p.Flows[i].Bytes
		if scaled {
			b = scale
		}
		out.TotalBytes += b
		if h := p.Flows[i].Route.Hops(); h > out.MaxHops {
			out.MaxHops = h
		}
	}
	s := timePool.Get().(*timeScratch)
	s.grab(len(t.links))
	ok := true
	p.forEachLink(func(i int, l Link) {
		if !ok {
			return
		}
		id := t.LinkID(l)
		if id < 0 {
			ok = false
			return
		}
		bytes := p.Flows[i].Bytes
		if scaled {
			bytes = scale
		}
		s.loads[id] += bytes
		s.msgBytes[id] += bytes
		s.msgCount[id]++
		out.LinkBytes += bytes
	})
	if !ok {
		timePool.Put(s)
		return t.timeGeneric(p, scaled, scale)
	}
	for id := range s.loads {
		n := s.msgCount[id]
		if n == 0 {
			continue
		}
		mean := s.msgBytes[id] / float64(n)
		bw := t.link.EffectiveBandwidth(mean)
		ser := s.loads[id] / bw
		if ser > out.Serialization {
			out.Serialization = ser
			out.Bottleneck = t.links[id]
			out.BottleneckBytes = s.loads[id]
		}
	}
	timePool.Put(s)
	out.HopLatency = float64(out.MaxHops) * t.link.Latency
	return out
}

// timeGeneric is the historical map-based kernel, kept for phases
// whose routes step between non-adjacent dies.
func (t *Topology) timeGeneric(p Phase, scaled bool, scale float64) PhaseTime {
	var out PhaseTime
	loads := make(LinkLoads)
	// Per-link mean message size drives granularity efficiency.
	msgBytes := make(map[Link]float64)
	msgCount := make(map[Link]int)
	for _, f := range p.Flows {
		b := f.Bytes
		if scaled {
			b = scale
		}
		out.TotalBytes += b
		h := f.Route.Hops()
		if h > out.MaxHops {
			out.MaxHops = h
		}
	}
	p.forEachLink(func(i int, l Link) {
		bytes := p.Flows[i].Bytes
		if scaled {
			bytes = scale
		}
		loads[l] += bytes
		msgBytes[l] += bytes
		msgCount[l]++
		out.LinkBytes += bytes
	})
	keys := make([]Link, 0, len(loads))
	for l := range loads {
		keys = append(keys, l)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].From != keys[j].From {
			return keys[i].From < keys[j].From
		}
		return keys[i].To < keys[j].To
	})
	for _, l := range keys {
		mean := msgBytes[l] / float64(msgCount[l])
		bw := t.link.EffectiveBandwidth(mean)
		ser := loads[l] / bw
		if ser > out.Serialization {
			out.Serialization = ser
			out.Bottleneck = l
			out.BottleneckBytes = loads[l]
		}
	}
	out.HopLatency = float64(out.MaxHops) * t.link.Latency
	return out
}

// SeqTime evaluates a sequence of phases executed back to back and
// returns the summed PhaseTime (bottleneck fields describe the
// slowest phase).
func (t *Topology) SeqTime(phases []Phase) PhaseTime {
	var out PhaseTime
	var worst float64
	for _, p := range phases {
		pt := t.Time(p)
		out.Serialization += pt.Serialization
		out.HopLatency += pt.HopLatency
		out.TotalBytes += pt.TotalBytes
		out.LinkBytes += pt.LinkBytes
		if pt.MaxHops > out.MaxHops {
			out.MaxHops = pt.MaxHops
		}
		if pt.Total() > worst {
			worst = pt.Total()
			out.Bottleneck = pt.Bottleneck
			out.BottleneckBytes = pt.BottleneckBytes
		}
	}
	return out
}

// Utilization summarises how evenly a phase loads the mesh: the mean
// link load divided by the bottleneck load over alive links that
// carry traffic, and the fraction of alive links used at all. Both
// feed the bandwidth-utilization figures (Fig. 4(b)).
type Utilization struct {
	// Balance is mean(loaded links) / max load, in (0,1].
	Balance float64
	// Coverage is loaded links / alive links, in [0,1].
	Coverage float64
}

// Utilization computes phase utilization on t.
func (t *Topology) Utilization(p Phase) Utilization {
	loads := p.Loads()
	if len(loads) == 0 {
		return Utilization{}
	}
	var sum, max float64
	for _, v := range loads {
		sum += v
		if v > max {
			max = v
		}
	}
	alive := t.aliveLinks()
	u := Utilization{}
	if max > 0 {
		u.Balance = sum / float64(len(loads)) / max
	}
	if alive > 0 {
		u.Coverage = float64(len(loads)) / float64(alive)
	}
	return u
}

// MulticastTree merges a set of same-payload flows from a common
// source into a tree: each link carries the payload once instead of
// once per destination. It returns the equivalent flows (one per
// tree edge... represented as per-destination flows sharing deduped
// links) as a single Flow per unique tree link, preserving total
// drain-time semantics under the link-serialization model.
func MulticastTree(t *Topology, src DieID, dsts []DieID, bytes float64, payload string) []Flow {
	if len(dsts) == 0 {
		return nil
	}
	// Greedy nearest-attachment Steiner heuristic: grow the tree
	// from src, always attaching the closest remaining destination
	// via a shortest path to any node already in the tree.
	inTree := map[DieID]bool{src: true}
	treeLinks := map[Link]bool{}
	remaining := append([]DieID(nil), dsts...)
	SortDies(remaining)
	for len(remaining) > 0 {
		bestIdx, bestLen := -1, 0
		var bestPath Path
		for i, d := range remaining {
			if inTree[d] {
				// Already covered by an earlier attachment.
				bestIdx, bestPath = i, Path{d}
				break
			}
			// Shortest path from d to the current tree.
			p := t.RouteWeighted(d, src, func(l Link) float64 { return 0 })
			// Trim at first tree node.
			for j, node := range p {
				if inTree[node] {
					p = p[:j+1]
					break
				}
			}
			if bestIdx == -1 || len(p) < bestLen {
				bestIdx, bestLen, bestPath = i, len(p), p
			}
		}
		d := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		if len(bestPath) == 0 {
			continue // unreachable destination (faulted); skip
		}
		// bestPath runs from d toward the tree; traffic flows the
		// other way (tree → d).
		for i := len(bestPath) - 1; i > 0; i-- {
			treeLinks[Link{bestPath[i], bestPath[i-1]}] = true
			inTree[bestPath[i-1]] = true
		}
		inTree[d] = true
	}
	// Emit one flow per tree link so that the serialization model
	// charges each link exactly once.
	links := make([]Link, 0, len(treeLinks))
	for l := range treeLinks {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].From != links[j].From {
			return links[i].From < links[j].From
		}
		return links[i].To < links[j].To
	})
	out := make([]Flow, 0, len(links))
	for _, l := range links {
		out = append(out, Flow{
			Src:     l.From,
			Dst:     l.To,
			Bytes:   bytes,
			Route:   Path{l.From, l.To},
			Payload: payload,
		})
	}
	return out
}

// ValidatePhase checks that every flow's route is connected, starts
// at Src and ends at Dst over alive links. Used by tests and by the
// TCME optimizer's invariant checks.
func (t *Topology) ValidatePhase(p Phase) error {
	for i, f := range p.Flows {
		if len(f.Route) == 0 {
			return fmt.Errorf("mesh: flow %d (%s) has empty route", i, f.Payload)
		}
		if f.Route[0] != f.Src || f.Route[len(f.Route)-1] != f.Dst {
			return fmt.Errorf("mesh: flow %d (%s) route endpoints %v do not match %d→%d",
				i, f.Payload, f.Route, f.Src, f.Dst)
		}
		if !f.Route.Valid(t) {
			return fmt.Errorf("mesh: flow %d (%s) route %v crosses a missing or dead link",
				i, f.Payload, f.Route)
		}
		if f.Bytes < 0 {
			return fmt.Errorf("mesh: flow %d (%s) has negative bytes", i, f.Payload)
		}
	}
	return nil
}

// EnergyJoules returns the D2D transfer energy of a phase: every byte
// is charged per traversed link at the link's energy/bit.
func (t *Topology) EnergyJoules(p Phase) float64 {
	var linkBytes float64
	for _, f := range p.Flows {
		linkBytes += f.Bytes * float64(f.Route.Hops())
	}
	return linkBytes * 8 * t.link.EnergyPerBit
}
