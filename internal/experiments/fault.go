package experiments

import (
	"context"
	"fmt"

	"temp/internal/cost"
	"temp/internal/fault"
	"temp/internal/model"
	"temp/internal/parallel"
	"temp/internal/solver"
)

// FaultResilience extends Fig. 20 beyond re-pricing: what repair
// solving recovers over keeping the pre-fault mapping (and over a cold
// re-solve), how a robust-trained mapping survives the same masks a
// standard-trained one sees, and how much worse the adversarial
// worst-case mask is than random sampling suggests. An on-demand
// resilience table (id "fault"), not a paper artefact — excluded from
// All like "strategies".
func FaultResilience(quick bool) (*Table, error) {
	t := &Table{
		ID:      "fault",
		Title:   "Fault resilience: repair vs re-price, robust-trained mapping, worst-case mask",
		Headers: []string{"section", "case", "norm tput", "detail"},
	}
	w := evalWafer()
	m := model.GPT3_6_7B()
	cfg := parallel.Config{DP: 4, TATP: 8}
	o := cost.TEMPOptions()
	evals := 4000
	trials := 6
	if quick {
		evals = 1500
		trials = 4
	}

	// Repair vs re-price vs cold re-solve on seeded link masks. The
	// pre-fault mapping is communication-heavy (TATP-dominant), the
	// regime where a dead link hurts the kept mapping most and a repair
	// solve has real room to recover; rate/seed pairs are pinned to
	// masks that leave the fabric connected.
	pre := parallel.Config{DP: 2, TATP: 16}
	masks := []struct {
		rate float64
		seed int64
	}{{0.10, 13}, {0.15, 3}}
	if quick {
		masks = masks[1:]
	}
	var gained float64
	for _, mask := range masks {
		rec, err := fault.RepairInjected(m, w, pre, o, fault.Injection{LinkRate: mask.rate}, mask.seed,
			fault.RepairOptions{Budget: solver.Budget{MaxEvals: evals}, Cold: true})
		if err != nil {
			return nil, err
		}
		sec := fmt.Sprintf("repair @ link %.0f%%", mask.rate*100)
		t.AddRow(sec, "re-price", f3(rec.RepriceNorm), "pre-fault mapping kept")
		t.AddRow(sec, "repaired", f3(rec.RepairedNorm),
			fmt.Sprintf("%s, %d evals, %s", rec.RepairedConfig, rec.WarmEvals, rec.Strategy))
		t.AddRow(sec, "cold re-solve", f3(rec.ColdNorm),
			fmt.Sprintf("%d evals", rec.ColdEvals))
		gained += rec.RepairedNorm - rec.RepriceNorm
	}

	// Robust-trained vs standard-trained mapping under the same seeded
	// mask ensemble (each normalized to its own fault-free baseline —
	// the survivability metric).
	g := model.BlockGraph(m)
	space := parallel.EnumerateConfigs(w.Dies(), true, 0)
	cm := &solver.Analytic{W: w, M: m}
	in := fault.Injection{LinkRate: 0.1}
	rm, err := fault.NewRobustModel(cm, m, w, in, 3, 99, 0.5)
	if err != nil {
		return nil, err
	}
	solveWith := func(model solver.CostModel) (parallel.Config, error) {
		st, err := solver.NewStrategy("hillclimb", solver.Params{"seed": 7})
		if err != nil {
			return parallel.Config{}, err
		}
		a, _ := st.Solve(context.Background(),
			solver.Problem{Graph: g, Space: space, Model: model},
			solver.Budget{MaxEvals: evals})
		idx, _ := solver.Uniform(a)
		return space[idx], nil
	}
	stdCfg, err := solveWith(cm)
	if err != nil {
		return nil, err
	}
	robCfg, err := solveWith(rm)
	if err != nil {
		return nil, err
	}
	stdNorm, err := fault.NormalizedThroughput(m, w, stdCfg, o, in, trials, 99)
	if err != nil {
		return nil, err
	}
	robNorm, err := fault.NormalizedThroughput(m, w, robCfg, o, in, trials, 99)
	if err != nil {
		return nil, err
	}
	t.AddRow("robust @ link 10%", "standard-trained", f3(stdNorm), stdCfg.String())
	t.AddRow("robust @ link 10%", "robust-trained", f3(robNorm),
		fmt.Sprintf("%s, %d-mask ensemble", robCfg, rm.Masks()))

	// Adversarial worst-case 2-link mask vs random 2-link sampling.
	wc, err := fault.MaskSearch{K: 2, Seed: 7}.Run(m, w, cfg, o)
	if err != nil {
		return nil, err
	}
	rnd, err := fault.RandomMaskNorm(m, w, cfg, o, fault.LinkMask, 2, 4*trials, 7)
	if err != nil {
		return nil, err
	}
	t.AddRow("worst 2-link mask", "adversarial", f3(wc.Norm),
		fmt.Sprintf("%d site + %d joint evals", wc.SiteEvals, wc.JointEvals))
	t.AddRow("worst 2-link mask", "random (mean)", f3(rnd),
		fmt.Sprintf("%d masks", 4*trials))

	t.AddNote("repair recovers %+.3f norm tput over re-price-only (mean over %d masks)",
		gained/float64(len(masks)), len(masks))
	t.AddNote("worst-case mask costs %.3f vs %.3f under random sampling: adversarial bound, not expectation", wc.Norm, rnd)
	return t, nil
}
