package solver

import (
	"context"
	"math/rand"
)

// GA is the paper's dual-level search (Fig. 12(b)) as a pluggable
// strategy: chain dynamic programming seeds the population, then a
// genetic stage (tournament selection, one-point crossover, per-gene
// mutation, elitism) refines the joint assignment under the global
// memory constraint. Each generation's population is priced in
// parallel across Budget.Workers goroutines through the shared memo;
// for a fixed seed the returned assignment and cost are bit-identical
// at any worker count — and bit-identical to the pre-framework
// solver.DLS for the same options.
type GA struct {
	// Population and Generations size the genetic stage; zero values
	// take defaults (32, 40).
	Population, Generations int
	// MutationRate per gene (default 0.15).
	MutationRate float64
	// Seed drives the GA's randomness.
	Seed int64
	// dpOnly stops after dynamic programming (the DLS -no-ga
	// ablation; exposed as the registered "dp" strategy).
	dpOnly bool
}

// newGA builds the registered "ga" strategy from params.
func newGA(p Params) (Strategy, error) {
	if err := p.checkKnown("ga", "population", "generations", "mutation", "seed"); err != nil {
		return nil, err
	}
	g := &GA{
		Population:   int(p.value("population", 0)),
		Generations:  int(p.value("generations", 0)),
		MutationRate: p.value("mutation", 0),
		Seed:         p.seed(),
	}
	if err := (DLSOptions{Population: g.Population, Generations: g.Generations,
		MutationRate: g.MutationRate}).Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Name implements Strategy.
func (s *GA) Name() string {
	if s.dpOnly {
		return "dp"
	}
	return "ga"
}

// Solve implements Strategy. The search trajectory is exactly the
// pre-framework DLS: the budget and checkpoint hooks only observe it
// (they never touch the RNG stream), so an unlimited budget
// reproduces the historical assignments bit-identically per seed.
func (s *GA) Solve(ctx context.Context, p Problem, b Budget) (Assignment, Stats) {
	stats := Stats{Strategy: s.Name()}
	if !p.valid() {
		return nil, stats
	}
	population := s.Population
	if population == 0 {
		population = 32
	}
	generations := s.Generations
	if generations == 0 {
		generations = 40
	}
	mutation := s.MutationRate
	if mutation == 0 {
		mutation = 0.15
	}

	ev := p.evaluator()
	r := newRun(b, ev, &stats)

	// Level 1: dynamic programming per residual-free segment. The
	// segment boundaries cut the O(N²) joint space into independent
	// chains (§VII-B); transitions across boundaries are still
	// charged via interCost when totalling.
	assign := p.seedAssignment(ev, b)
	dpCost := ev.assignmentCost(assign)
	stats.DPCost = dpCost
	best := append(Assignment(nil), assign...)
	bestCost := dpCost

	// Level 2: genetic refinement (crossover, mutation, elitism) on
	// the joint genome, seeded with the DP solution. Only the cost
	// evaluation fans out; selection and variation stay serial so
	// the RNG stream matches the single-threaded search exactly.
	//
	// The population lives in structure-of-arrays form (soaPop):
	// crossover and mutation inherit the parents' memoized cost terms
	// and invalidate only what they change, so a generation re-prices
	// the few genuinely new (position, config) keys instead of walking
	// population×genes memo lookups. Selection order, RNG stream,
	// evaluation counts, costs and the returned assignment are
	// bit-identical to the per-individual walk (ga_golden.json pins
	// all of it).
	if !s.dpOnly {
		rng := rand.New(rand.NewSource(s.Seed))
		n := len(assign)
		sp := newSoaPop(ev, population, n)
		copy(sp.nextGenes[:n], assign)
		for i := 1; i < population; i++ {
			row := sp.nextGenes[i*n : (i+1)*n]
			copy(row, assign)
			// Diversify: re-roll a few genes.
			for j := range row {
				if rng.Float64() < 0.3 {
					row[j] = rng.Intn(len(p.Space))
				}
			}
		}
		sp.markAllDirty()
		sp.price(b.Workers)
		for gen := 0; gen < generations; gen++ {
			if r.stop(ctx) {
				break
			}
			stats.Generations++
			// Elitism: carry the best individual forward (a cut-0
			// "crossover" with itself is a clean term-preserving copy).
			eliteIdx := 0
			for i := range sp.costs {
				if sp.costs[i] < sp.costs[eliteIdx] {
					eliteIdx = i
				}
			}
			sp.breedInto(0, eliteIdx, eliteIdx, 0)
			for i := 1; i < population; i++ {
				pa := tournamentIdx(rng, sp.costs)
				pb := tournamentIdx(rng, sp.costs)
				sp.breedInto(i, pa, pb, rng.Intn(n))
				for j := 0; j < n; j++ {
					if rng.Float64() < mutation {
						sp.mutateGene(i, j, rng.Intn(len(p.Space)))
					}
				}
			}
			sp.price(b.Workers)
			for i := range sp.costs {
				if sp.costs[i] < bestCost {
					bestCost = sp.costs[i]
					best = append(best[:0], sp.row(i)...)
				}
			}
			r.checkpoint(gen+1, best, bestCost)
		}
	}

	r.finish(bestCost)
	return best, stats
}

// newDP builds the registered "dp" strategy: chain dynamic
// programming only, no genetic refinement (the DisableGA ablation).
func newDP(p Params) (Strategy, error) {
	if err := p.checkKnown("dp", "seed"); err != nil {
		return nil, err
	}
	return &GA{Seed: p.seed(), dpOnly: true}, nil
}

// tournamentIdx is binary tournament selection over row indices: two
// uniform draws, lower cost wins, ties to the first draw — the exact
// RNG consumption and tie-break of the historical Assignment-based
// tournament.
func tournamentIdx(rng *rand.Rand, costs []float64) int {
	a, b := rng.Intn(len(costs)), rng.Intn(len(costs))
	if costs[a] <= costs[b] {
		return a
	}
	return b
}
