// Package spec is the declarative scenario layer: serializable JSON
// descriptions of wafers, models, systems and evaluation scenarios,
// plus name-keyed registries pre-populated with every constructor the
// paper's evaluation uses. The layers above consume specs instead of
// hardcoded constructors — hw.Wafer, model.Config and
// baselines.System are all buildable from (and round-trippable to) a
// spec — so arbitrary hardware/workload/system combinations can be
// defined in JSON files, resolved against the registries, and
// batch-swept through the concurrent evaluation engine without
// recompiling.
//
// Every spec follows the same conventions: zero-valued fields default
// to the paper's Table I / §VIII-A reference values, Validate reports
// structural problems before anything is built, and the builders
// (Wafer, Model, System, Resolve) return fully-validated domain
// objects.
package spec

import (
	"fmt"
	"strings"

	"temp/internal/baselines"
	"temp/internal/cost"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
)

// DieSpec describes one compute die. Zero fields inherit the Table I
// die (500 mm² logic, 2×72 GB HBM at 1 TB/s, 1800 TFLOPS).
type DieSpec struct {
	AreaMM2         float64 `json:"area_mm2,omitempty"`
	WidthMM         float64 `json:"width_mm,omitempty"`
	HeightMM        float64 `json:"height_mm,omitempty"`
	SRAMBytes       float64 `json:"sram_bytes,omitempty"`
	HBMBytes        float64 `json:"hbm_bytes,omitempty"`
	HBMStacks       int     `json:"hbm_stacks,omitempty"`
	HBMBandwidth    float64 `json:"hbm_bandwidth,omitempty"`
	HBMLatency      float64 `json:"hbm_latency,omitempty"`
	HBMEnergyPerBit float64 `json:"hbm_energy_per_bit,omitempty"`
	PeakFLOPS       float64 `json:"peak_flops,omitempty"`
	FLOPSPerWatt    float64 `json:"flops_per_watt,omitempty"`
	FrequencyHz     float64 `json:"frequency_hz,omitempty"`
	VectorFLOPS     float64 `json:"vector_flops,omitempty"`
}

// Die builds the hw.Die, filling defaults from Table I.
func (s DieSpec) Die() hw.Die {
	d := hw.TableIDie()
	if s.AreaMM2 > 0 {
		d.AreaMM2 = s.AreaMM2
	}
	if s.WidthMM > 0 {
		d.WidthMM = s.WidthMM
	}
	if s.HeightMM > 0 {
		d.HeightMM = s.HeightMM
	}
	if s.SRAMBytes > 0 {
		d.SRAMBytes = s.SRAMBytes
	}
	if s.HBMBytes > 0 {
		d.HBMBytes = s.HBMBytes
	}
	if s.HBMStacks > 0 {
		d.HBMStacks = s.HBMStacks
	}
	if s.HBMBandwidth > 0 {
		d.HBMBandwidth = s.HBMBandwidth
	}
	if s.HBMLatency > 0 {
		d.HBMLatency = s.HBMLatency
	}
	if s.HBMEnergyPerBit > 0 {
		d.HBMEnergyPerBit = s.HBMEnergyPerBit
	}
	if s.PeakFLOPS > 0 {
		d.PeakFLOPS = s.PeakFLOPS
		// Vector units track the PE array unless stated explicitly.
		d.VectorFLOPS = s.PeakFLOPS / 16
	}
	if s.FLOPSPerWatt > 0 {
		d.FLOPSPerWatt = s.FLOPSPerWatt
	}
	if s.FrequencyHz > 0 {
		d.FrequencyHz = s.FrequencyHz
	}
	if s.VectorFLOPS > 0 {
		d.VectorFLOPS = s.VectorFLOPS
	}
	return d
}

// DieSpecOf captures a die as a fully-explicit spec.
func DieSpecOf(d hw.Die) DieSpec {
	return DieSpec{
		AreaMM2: d.AreaMM2, WidthMM: d.WidthMM, HeightMM: d.HeightMM,
		SRAMBytes: d.SRAMBytes, HBMBytes: d.HBMBytes, HBMStacks: d.HBMStacks,
		HBMBandwidth: d.HBMBandwidth, HBMLatency: d.HBMLatency,
		HBMEnergyPerBit: d.HBMEnergyPerBit, PeakFLOPS: d.PeakFLOPS,
		FLOPSPerWatt: d.FLOPSPerWatt, FrequencyHz: d.FrequencyHz,
		VectorFLOPS: d.VectorFLOPS,
	}
}

// LinkSpec describes the D2D interconnect. Zero fields inherit the
// Table I link (4 TB/s, 200 ns, 5 pJ/bit, 32 MB granularity ramp).
type LinkSpec struct {
	Bandwidth    float64 `json:"bandwidth,omitempty"`
	Latency      float64 `json:"latency,omitempty"`
	EnergyPerBit float64 `json:"energy_per_bit,omitempty"`
	MaxReachMM   float64 `json:"max_reach_mm,omitempty"`
	FECLatency   float64 `json:"fec_latency,omitempty"`
	RampBytes    float64 `json:"ramp_bytes,omitempty"`
}

// Link builds the hw.D2D, filling defaults from Table I.
func (s LinkSpec) Link() hw.D2D {
	l := hw.TableID2D()
	if s.Bandwidth > 0 {
		l.Bandwidth = s.Bandwidth
	}
	if s.Latency > 0 {
		l.Latency = s.Latency
	}
	if s.EnergyPerBit > 0 {
		l.EnergyPerBit = s.EnergyPerBit
	}
	if s.MaxReachMM > 0 {
		l.MaxReachMM = s.MaxReachMM
	}
	if s.FECLatency > 0 {
		l.FECLatency = s.FECLatency
	}
	if s.RampBytes > 0 {
		l.RampBytes = s.RampBytes
	}
	return l
}

// LinkSpecOf captures a link as a fully-explicit spec.
func LinkSpecOf(l hw.D2D) LinkSpec {
	return LinkSpec{
		Bandwidth: l.Bandwidth, Latency: l.Latency,
		EnergyPerBit: l.EnergyPerBit, MaxReachMM: l.MaxReachMM,
		FECLatency: l.FECLatency, RampBytes: l.RampBytes,
	}
}

// WaferSpec describes a wafer-scale chip: the die array plus optional
// die/link/IO overrides. Omitted components inherit the §VIII-A
// evaluation wafer's values.
type WaferSpec struct {
	Name string `json:"name,omitempty"`
	Rows int    `json:"rows"`
	Cols int    `json:"cols"`
	// Die and Link override the Table I components when present.
	Die  *DieSpec  `json:"die,omitempty"`
	Link *LinkSpec `json:"link,omitempty"`
	// Off-wafer parameters; zero inherits the evaluation wafer.
	IOBandwidth         float64 `json:"io_bandwidth,omitempty"`
	InterWaferBandwidth float64 `json:"inter_wafer_bandwidth,omitempty"`
	InterWaferLatency   float64 `json:"inter_wafer_latency,omitempty"`
}

// Validate reports structural problems with the spec.
func (s WaferSpec) Validate() error {
	if s.Rows <= 0 || s.Cols <= 0 {
		return fmt.Errorf("spec: wafer %q has non-positive die array %dx%d", s.Name, s.Rows, s.Cols)
	}
	if s.Die != nil {
		if s.Die.PeakFLOPS < 0 || s.Die.HBMBytes < 0 || s.Die.HBMBandwidth < 0 {
			return fmt.Errorf("spec: wafer %q has negative die parameters", s.Name)
		}
	}
	if s.Link != nil && s.Link.Bandwidth < 0 {
		return fmt.Errorf("spec: wafer %q has negative link bandwidth", s.Name)
	}
	return nil
}

// Wafer builds the hw.Wafer: validation, defaulting, then the hw
// layer's own invariant check.
func (s WaferSpec) Wafer() (hw.Wafer, error) {
	if err := s.Validate(); err != nil {
		return hw.Wafer{}, err
	}
	die := hw.TableIDie()
	if s.Die != nil {
		die = s.Die.Die()
	}
	link := hw.TableID2D()
	if s.Link != nil {
		link = s.Link.Link()
	}
	w := hw.Custom(s.Name, s.Rows, s.Cols, die, link)
	if s.IOBandwidth > 0 {
		w.IOBandwidth = s.IOBandwidth
	}
	if s.InterWaferBandwidth > 0 {
		w.InterWaferBandwidth = s.InterWaferBandwidth
	}
	if s.InterWaferLatency > 0 {
		w.InterWaferLatency = s.InterWaferLatency
	}
	if err := w.Validate(); err != nil {
		return hw.Wafer{}, err
	}
	return w, nil
}

// WaferSpecOf captures a wafer as a fully-explicit spec (the ToSpec
// round-trip): building the result reproduces the wafer exactly.
func WaferSpecOf(w hw.Wafer) WaferSpec {
	die := DieSpecOf(w.Die)
	link := LinkSpecOf(w.Link)
	return WaferSpec{
		Name: w.Name, Rows: w.Rows, Cols: w.Cols,
		Die: &die, Link: &link,
		IOBandwidth:         w.IOBandwidth,
		InterWaferBandwidth: w.InterWaferBandwidth,
		InterWaferLatency:   w.InterWaferLatency,
	}
}

// ModelSpec describes one transformer language model (the Table II
// shape parameters). Batch, Seq, FFNMult and Vocab default to 128,
// 2048, 4 and 50257 (the GPT-3 conventions) when zero.
type ModelSpec struct {
	Name    string `json:"name"`
	Heads   int    `json:"heads"`
	Batch   int    `json:"batch,omitempty"`
	Hidden  int    `json:"hidden"`
	Layers  int    `json:"layers"`
	Seq     int    `json:"seq,omitempty"`
	FFNMult int    `json:"ffn_mult,omitempty"`
	Vocab   int    `json:"vocab,omitempty"`
}

// withDefaults returns the spec with zero fields defaulted.
func (s ModelSpec) withDefaults() ModelSpec {
	if s.Batch == 0 {
		s.Batch = 128
	}
	if s.Seq == 0 {
		s.Seq = 2048
	}
	if s.FFNMult == 0 {
		s.FFNMult = 4
	}
	if s.Vocab == 0 {
		s.Vocab = 50257
	}
	return s
}

// Validate reports structural problems with the spec after
// defaulting.
func (s ModelSpec) Validate() error {
	d := s.withDefaults()
	return model.Config{
		Name: d.Name, Heads: d.Heads, Batch: d.Batch, Hidden: d.Hidden,
		Layers: d.Layers, Seq: d.Seq, FFNMult: d.FFNMult, Vocab: d.Vocab,
	}.Validate()
}

// Model builds the model.Config.
func (s ModelSpec) Model() (model.Config, error) {
	d := s.withDefaults()
	m := model.Config{
		Name: d.Name, Heads: d.Heads, Batch: d.Batch, Hidden: d.Hidden,
		Layers: d.Layers, Seq: d.Seq, FFNMult: d.FFNMult, Vocab: d.Vocab,
	}
	if m.Name == "" {
		m.Name = fmt.Sprintf("custom-%dx%d", m.Hidden, m.Layers)
	}
	if err := m.Validate(); err != nil {
		return model.Config{}, err
	}
	return m, nil
}

// ModelSpecOf captures a model as a fully-explicit spec.
func ModelSpecOf(m model.Config) ModelSpec {
	return ModelSpec{
		Name: m.Name, Heads: m.Heads, Batch: m.Batch, Hidden: m.Hidden,
		Layers: m.Layers, Seq: m.Seq, FFNMult: m.FFNMult, Vocab: m.Vocab,
	}
}

// EnvelopeSpec restricts a system's configuration space (see
// baselines.Envelope).
type EnvelopeSpec struct {
	MaxDP   int `json:"max_dp,omitempty"`
	MaxTP   int `json:"max_tp,omitempty"`
	MaxSP   int `json:"max_sp,omitempty"`
	MaxCP   int `json:"max_cp,omitempty"`
	MaxTATP int `json:"max_tatp,omitempty"`
}

// Envelope converts to the baselines representation.
func (s EnvelopeSpec) Envelope() baselines.Envelope {
	return baselines.Envelope{
		MaxDP: s.MaxDP, MaxTP: s.MaxTP, MaxSP: s.MaxSP,
		MaxCP: s.MaxCP, MaxTATP: s.MaxTATP,
	}
}

// SystemSpec describes an evaluated training system as scheme ×
// engine × configuration-space envelope.
type SystemSpec struct {
	// Name overrides the derived system name when set.
	Name string `json:"name,omitempty"`
	// Scheme is the partitioning scheme: megatron1 | mesp | fsdp |
	// temp.
	Scheme string `json:"scheme"`
	// Engine is the mapping engine: smap | gmap | tcme. Defaults to
	// tcme for the temp scheme and gmap otherwise.
	Engine string `json:"engine,omitempty"`
	// Envelope optionally caps the swept configuration space.
	Envelope *EnvelopeSpec `json:"envelope,omitempty"`
}

// ParseEngine resolves a mapping-engine name.
func ParseEngine(name string) (cost.Engine, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "smap":
		return cost.SMap, nil
	case "gmap":
		return cost.GMap, nil
	case "tcme", "temp":
		return cost.TCMEEngine, nil
	default:
		return 0, fmt.Errorf("spec: unknown engine %q (want smap|gmap|tcme)", name)
	}
}

// engineName renders an engine in spec notation.
func engineName(e cost.Engine) string { return strings.ToLower(e.String()) }

// Validate reports structural problems with the spec.
func (s SystemSpec) Validate() error {
	_, err := s.System()
	return err
}

// System builds the baselines.System.
func (s SystemSpec) System() (baselines.System, error) {
	scheme := strings.ToLower(strings.TrimSpace(s.Scheme))
	if scheme == "" {
		scheme = "temp"
	}
	engName := s.Engine
	if engName == "" {
		if scheme == "temp" || scheme == "tatp" {
			engName = "tcme"
		} else {
			engName = "gmap"
		}
	}
	e, err := ParseEngine(engName)
	if err != nil {
		return baselines.System{}, err
	}
	var env baselines.Envelope
	if s.Envelope != nil {
		env = s.Envelope.Envelope()
	}
	sys, err := baselines.FromScheme(scheme, e, env)
	if err != nil {
		return baselines.System{}, err
	}
	if s.Name != "" {
		sys.Name = s.Name
	}
	return sys, nil
}

// SystemSpecOf captures a system as a spec. It relies on the Scheme
// field the baselines constructors stamp; hand-built systems with an
// empty scheme cannot be serialized.
func SystemSpecOf(s baselines.System) (SystemSpec, error) {
	if s.Scheme == "" {
		return SystemSpec{}, fmt.Errorf("spec: system %q has no scheme; only scheme-built systems serialize", s.Name)
	}
	out := SystemSpec{Name: s.Name, Scheme: s.Scheme, Engine: engineName(s.Opts.Engine)}
	if !s.Envelope.Zero() {
		out.Envelope = &EnvelopeSpec{
			MaxDP: s.Envelope.MaxDP, MaxTP: s.Envelope.MaxTP,
			MaxSP: s.Envelope.MaxSP, MaxCP: s.Envelope.MaxCP,
			MaxTATP: s.Envelope.MaxTATP,
		}
	}
	return out, nil
}

// ConfigSpec pins one explicit hybrid parallel configuration instead
// of sweeping a system's space.
type ConfigSpec struct {
	DP         int  `json:"dp,omitempty"`
	TP         int  `json:"tp,omitempty"`
	SP         int  `json:"sp,omitempty"`
	CP         int  `json:"cp,omitempty"`
	TATP       int  `json:"tatp,omitempty"`
	PP         int  `json:"pp,omitempty"`
	FSDP       bool `json:"fsdp,omitempty"`
	MegatronSP bool `json:"megatron_sp,omitempty"`
}

// Config converts to the parallel representation (zero degrees
// normalize to 1).
func (s ConfigSpec) Config() parallel.Config {
	return parallel.Config{
		DP: s.DP, TP: s.TP, SP: s.SP, CP: s.CP, TATP: s.TATP, PP: s.PP,
		FSDP: s.FSDP, MegatronSP: s.MegatronSP,
	}.Normalize()
}

// ConfigSpecOf captures a parallel configuration as a spec.
func ConfigSpecOf(c parallel.Config) ConfigSpec {
	c = c.Normalize()
	return ConfigSpec{
		DP: c.DP, TP: c.TP, SP: c.SP, CP: c.CP, TATP: c.TATP, PP: c.PP,
		FSDP: c.FSDP, MegatronSP: c.MegatronSP,
	}
}

// FaultSpec adds fault injection to a scenario (§VIII-F): the
// scenario's winning configuration is re-evaluated under random
// link/core failures and reported as normalized throughput.
type FaultSpec struct {
	LinkRate    float64 `json:"link_rate,omitempty"`
	CoreRate    float64 `json:"core_rate,omitempty"`
	CoresPerDie int     `json:"cores_per_die,omitempty"`
	// Trials is the number of random injections averaged (default 8).
	Trials int `json:"trials,omitempty"`
	// Seed fixes the injection randomness (default 42).
	Seed int64 `json:"seed,omitempty"`
	// Repair adds the degradation-aware repair stage: one seeded mask
	// is re-solved on the degraded fabric, warm-started from the
	// winning configuration.
	Repair *RepairSpec `json:"repair,omitempty"`
	// Campaign sweeps the winning configuration over a LinkRate ×
	// CoreRate survivability grid.
	Campaign *CampaignSpec `json:"campaign,omitempty"`
}

// TrialCount returns the defaulted trial count.
func (s FaultSpec) TrialCount() int {
	if s.Trials > 0 {
		return s.Trials
	}
	return 8
}

// RandSeed returns the defaulted seed.
func (s FaultSpec) RandSeed() int64 {
	if s.Seed != 0 {
		return s.Seed
	}
	return 42
}
