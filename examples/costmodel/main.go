// costmodel trains the DNN-based wafer cost model of §VII-A on
// simulator-generated samples and validates it against the
// multivariate-regression baseline (Fig. 21), then uses the dual-level
// solver with the analytic model to pick per-operator strategies.
package main

import (
	"fmt"
	"math/rand"

	"temp"
	"temp/internal/hw"
	"temp/internal/parallel"
	"temp/internal/surrogate"
)

func main() {
	w := hw.EvaluationWafer()

	fmt.Println("Fig. 21: DNN cost model vs linear regression")
	for _, cat := range []surrogate.Category{surrogate.Compute, surrogate.Comm, surrogate.Overlap} {
		rng := rand.New(rand.NewSource(100 + int64(cat)))
		train := surrogate.Generate(cat, 1200, w, rng)
		test := surrogate.Generate(cat, 400, w, rng)
		dnn := surrogate.TrainDNN(train, rng)
		lin := surrogate.TrainLinear(train)
		de := surrogate.Validate(dnn, test)
		le := surrogate.Validate(lin, test)
		fmt.Printf("  %-14s DNN corr=%.3f err=%.1f%% (%s/lookup) | linear corr=%.3f err=%.1f%%\n",
			cat, de.Corr, de.MAPE, de.PerCall, le.Corr, le.MAPE)
	}

	fmt.Println("\nDLWS: per-operator strategy search (GPT-3 175B)")
	m := temp.GPT3_175B()
	g := temp.BlockGraph(m)
	space := parallel.EnumerateConfigs(w.Dies(), true, 0)
	cm := &temp.AnalyticCostModel{W: w, M: m}
	assign, stats, err := temp.DLS(g, space, cm, temp.DLSOptions{Seed: 7})
	if err != nil {
		panic(err)
	}
	fmt.Printf("  searched %d strategies × %d ops in %s (%d evaluations)\n",
		len(space), len(g.Ops), stats.Elapsed, stats.Evaluations)
	for i, op := range g.Ops[:4] {
		fmt.Printf("  %-12s → %s\n", op.Name, space[assign[i]])
	}
	fmt.Println("  ...")
}
