package engine

import (
	"reflect"
	"testing"

	"temp/internal/cost"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
)

// keyLeafPaths walks a struct type and returns the field-index chain
// of every leaf (non-struct) field.
func keyLeafPaths(t reflect.Type, prefix []int) [][]int {
	var out [][]int
	for i := 0; i < t.NumField(); i++ {
		path := append(append([]int(nil), prefix...), i)
		if f := t.Field(i); f.Type.Kind() == reflect.Struct {
			out = append(out, keyLeafPaths(f.Type, path)...)
			continue
		}
		out = append(out, path)
	}
	return out
}

// perturb changes a leaf field to a different value.
func perturb(v reflect.Value) {
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
	case reflect.Float64:
		v.SetFloat(v.Float() + 1.5)
	case reflect.String:
		v.SetString(v.String() + "\x01")
	default:
		panic("unhandled key field kind " + v.Kind().String())
	}
}

// TestJobKeyCoversEveryField pins the persistent memo's content key
// to the full Job identity: perturbing ANY leaf field of the job (or
// of any nested struct) must change the encoded key. The walk is
// reflective, so adding a field to Job, cost.Options, hw.Wafer, etc.
// without extending appendJobKey fails this test instead of silently
// aliasing distinct jobs on disk.
func TestJobKeyCoversEveryField(t *testing.T) {
	base := Job{
		Model: model.GPT3_6_7B(),
		Wafer: hw.EvaluationWafer(),
		Config: parallel.Config{
			DP: 2, TP: 2, SP: 2, CP: 1, TATP: 4, PP: 1,
		},
		Opts:    cost.TEMPOptions(),
		Backend: "replay",
	}
	baseKey := string(appendJobKey(nil, base))
	if len(baseKey) == 0 {
		t.Fatal("empty job key")
	}

	paths := keyLeafPaths(reflect.TypeOf(base), nil)
	if len(paths) < 40 {
		t.Fatalf("leaf walk found only %d fields — walker broken?", len(paths))
	}
	for _, path := range paths {
		cp := base
		v := reflect.ValueOf(&cp).Elem()
		name := ""
		tt := reflect.TypeOf(base)
		for _, i := range path {
			name += "." + tt.Field(i).Name
			tt = tt.Field(i).Type
			v = v.Field(i)
		}
		perturb(v)
		if got := string(appendJobKey(nil, cp)); got == baseKey {
			t.Errorf("perturbing Job%s does not change the disk-memo key", name)
		}
	}
}

// TestJobKeyDeterministic: the key is a pure function of the job, and
// string fields are length-prefixed so adjacent fields cannot alias.
func TestJobKeyDeterministic(t *testing.T) {
	j := Job{Model: model.GPT3_6_7B(), Wafer: hw.EvaluationWafer(), Opts: cost.TEMPOptions()}
	a := string(appendJobKey(nil, j))
	b := string(appendJobKey(nil, j))
	if a != b {
		t.Fatal("job key not deterministic")
	}
	// Shifting a suffix from one string field to the next must change
	// the key (length prefixes prevent concatenation aliasing).
	x, y := j, j
	x.Model.Name, x.Backend = "ab", "c"
	y.Model.Name, y.Backend = "a", "bc"
	if string(appendJobKey(nil, x)) == string(appendJobKey(nil, y)) {
		t.Fatal("string fields alias under concatenation")
	}
}
