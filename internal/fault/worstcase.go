package fault

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"temp/internal/cost"
	"temp/internal/engine"
	"temp/internal/hw"
	"temp/internal/mesh"
	"temp/internal/model"
	"temp/internal/parallel"
	"temp/internal/solver"
)

// MaskKind selects what a worst-case mask may kill.
type MaskKind string

// Mask site kinds.
const (
	LinkMask  MaskKind = "link"  // D2D link bundles
	DieMask   MaskKind = "die"   // whole dies
	MixedMask MaskKind = "mixed" // either
)

// MaskSearch finds the most damaging K-site fault mask for one
// mapping — Fig. 20's random sampling turned into an adversarial
// bound. It reuses the Strategy framework on a synthetic problem: K
// slot-operators choose among fault sites, the cost of a site is its
// exactly-priced single-site normalized throughput (lower = more
// damaging, so minimizing cost maximizes damage), and candidate masks
// from the search are then jointly re-priced exactly and greedily
// polished.
type MaskSearch struct {
	// K is the mask size in sites (default 2).
	K int
	// Kind selects the site population (default LinkMask).
	Kind MaskKind
	// Strategy is the registered search strategy (default "hillclimb");
	// Seed/Params/Budget tune it as in RepairOptions.
	Strategy string
	Seed     int64
	Params   solver.Params
	Budget   solver.Budget
	// Backend names the cost tier pricing the masks ("" = analytic).
	Backend string
	// Workers bounds the upfront single-site pricing fan-out.
	Workers int
}

// WorstCase reports the most damaging mask found.
type WorstCase struct {
	// Links/Dies are the mask's sites.
	Links []mesh.Link  `json:"links,omitempty"`
	Dies  []mesh.DieID `json:"dies,omitempty"`
	// Norm is the mapping's normalized throughput under the mask (0 =
	// the mask disconnects the fabric or defeats placement).
	Norm float64 `json:"norm"`
	// SiteEvals counts exact single-site pricings; JointEvals counts
	// exact whole-mask pricings.
	SiteEvals  int           `json:"site_evals"`
	JointEvals int           `json:"joint_evals"`
	Elapsed    time.Duration `json:"elapsed"`
	Strategy   string        `json:"strategy"`
}

// maskSite is one killable fault site.
type maskSite struct {
	link  mesh.Link
	die   mesh.DieID
	isDie bool
}

// maskModel adapts precomputed single-site damage to the solver's
// CostModel interface. Space entries are opaque tokens encoding site
// indices (Config{DP: i+1}); the evaluator never normalizes them.
// Adjacent duplicate sites pay a penalty so local moves diversify;
// remaining duplicates are resolved during verification.
type maskModel struct {
	norms []float64
}

func (mm *maskModel) site(cfg parallel.Config) int { return cfg.DP - 1 }

func (mm *maskModel) Intra(_ model.Op, cfg parallel.Config) float64 {
	return mm.norms[mm.site(cfg)]
}

func (mm *maskModel) Inter(_, _ model.Op, pc, nc parallel.Config) float64 {
	if mm.site(pc) == mm.site(nc) {
		return 10 // dominates any norm difference, far below oomPenalty
	}
	return 0
}

func (mm *maskModel) MemoryOK(parallel.Config) bool { return true }

// maskSites enumerates the killable sites of a pristine topology for
// one mask kind: D2D link bundles (From < To), dies, or both.
func maskSites(pristine *mesh.Topology, kind MaskKind) []maskSite {
	var sites []maskSite
	if kind == LinkMask || kind == MixedMask {
		for id := 0; id < pristine.NumLinks(); id++ {
			l := pristine.LinkByID(id)
			if l.From < l.To {
				sites = append(sites, maskSite{link: l})
			}
		}
	}
	if kind == DieMask || kind == MixedMask {
		for d := 0; d < pristine.Dies(); d++ {
			sites = append(sites, maskSite{die: mesh.DieID(d), isDie: true})
		}
	}
	return sites
}

// maskPricer returns a closure exactly pricing the mapping under a
// joint site mask, normalized to the fault-free baseline (0 when the
// mask disconnects the fabric or defeats placement).
func maskPricer(backend string, m model.Config, w hw.Wafer, cfg parallel.Config, o cost.Options,
	pristine *mesh.Topology, sites []maskSite, baseTokens float64) func(chosen []int) float64 {
	return func(chosen []int) float64 {
		topo := pristine.Clone()
		for _, si := range chosen {
			st := sites[si]
			if st.isDie {
				topo.SetCoreFraction(st.die, 0)
				topo.SetDieAlive(st.die, false)
			} else {
				topo.SetLinkAlive(st.link, false)
			}
		}
		topo = topo.Intern()
		if !topo.Connected() {
			return 0
		}
		b, ok := priceDegraded(backend, m, w, cfg, o, topo)
		if !ok {
			return 0
		}
		return b.ThroughputTokens / baseTokens
	}
}

// RandomMaskNorm prices the mapping under `trials` uniformly random
// K-site masks (seeded, deterministic) and returns the mean normalized
// throughput — the random-sampling baseline a worst-case search is
// compared against.
func RandomMaskNorm(m model.Config, w hw.Wafer, cfg parallel.Config, o cost.Options,
	kind MaskKind, k, trials int, seed int64) (float64, error) {
	if trials <= 0 {
		return 0, fmt.Errorf("fault: random mask trial count %d is not positive", trials)
	}
	if kind == "" {
		kind = LinkMask
	}
	if k <= 0 {
		k = 2
	}
	base, err := cost.EvaluateWith("", m, w, cfg, o)
	if err != nil {
		return 0, fmt.Errorf("fault: random mask baseline: %w", err)
	}
	if base.ThroughputTokens <= 0 {
		return 0, fmt.Errorf("fault: random mask baseline throughput is not positive")
	}
	pristine := mesh.FromWafer(w)
	sites := maskSites(pristine, kind)
	if k > len(sites) {
		return 0, fmt.Errorf("fault: mask size %d exceeds %d %s sites", k, len(sites), kind)
	}
	price := maskPricer("", m, w, cfg, o, pristine, sites, base.ThroughputTokens)
	rng := rand.New(rand.NewSource(seed))
	var sum float64
	for t := 0; t < trials; t++ {
		sum += price(rng.Perm(len(sites))[:k])
	}
	return sum / float64(trials), nil
}

// Run searches for the worst-case mask of the mapping cfg.
func (s MaskSearch) Run(m model.Config, w hw.Wafer, cfg parallel.Config, o cost.Options) (WorstCase, error) {
	start := time.Now()
	k := s.K
	if k <= 0 {
		k = 2
	}
	kind := s.Kind
	if kind == "" {
		kind = LinkMask
	}
	base, err := cost.EvaluateWith(s.Backend, m, w, cfg, o)
	if err != nil {
		return WorstCase{}, fmt.Errorf("fault: mask search baseline: %w", err)
	}
	if base.ThroughputTokens <= 0 {
		return WorstCase{}, fmt.Errorf("fault: mask search baseline throughput is not positive")
	}

	pristine := mesh.FromWafer(w)
	sites := maskSites(pristine, kind)
	if k > len(sites) {
		return WorstCase{}, fmt.Errorf("fault: mask size %d exceeds %d %s sites", k, len(sites), kind)
	}
	priceMask := maskPricer(s.Backend, m, w, cfg, o, pristine, sites, base.ThroughputTokens)

	// Exact single-site damage, fanned deterministically.
	norms := make([]float64, len(sites))
	engine.ForEach(s.Workers, len(sites), func(i int) {
		norms[i] = priceMask([]int{i})
	})
	wc := WorstCase{SiteEvals: len(sites)}

	// Synthetic strategy-framework problem: K slots over the site
	// space, seeded like any other search.
	space := make([]parallel.Config, len(sites))
	for i := range sites {
		space[i] = parallel.Config{DP: i + 1}
	}
	p := solver.Problem{
		Graph: model.Graph{Ops: make([]model.Op, k)},
		Space: space,
		Model: &maskModel{norms: norms},
	}
	name := s.Strategy
	if name == "" {
		name = "hillclimb"
	}
	params := solver.Params{}
	for kk, v := range s.Params {
		params[kk] = v
	}
	if _, ok := params["seed"]; !ok {
		params["seed"] = float64(s.Seed)
	}
	st, err := solver.NewStrategy(name, params)
	if err != nil {
		return WorstCase{}, fmt.Errorf("fault: mask search strategy: %w", err)
	}
	a, stats := st.Solve(context.Background(), p, s.Budget)
	wc.Strategy = stats.Strategy

	// Damage order: most damaging single sites first (ties by index).
	order := make([]int, len(sites))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if norms[order[i]] != norms[order[j]] {
			return norms[order[i]] < norms[order[j]]
		}
		return order[i] < order[j]
	})

	// dedup pads a candidate mask to k distinct sites with the most
	// damaging unused singles.
	dedup := func(chosen []int) []int {
		used := map[int]bool{}
		out := make([]int, 0, k)
		for _, c := range chosen {
			if c >= 0 && c < len(sites) && !used[c] {
				used[c] = true
				out = append(out, c)
			}
		}
		for _, c := range order {
			if len(out) >= k {
				break
			}
			if !used[c] {
				used[c] = true
				out = append(out, c)
			}
		}
		return out
	}

	// Candidate masks: the search result and the greedy top-K, jointly
	// verified exactly.
	cands := [][]int{dedup(a), dedup(nil)}
	bestNorm := 2.0
	var best []int
	for _, c := range cands {
		wc.JointEvals++
		if n := priceMask(c); n < bestNorm {
			bestNorm, best = n, c
		}
	}
	// Greedy polish: per slot, try the most damaging unused singles.
	for slot := 0; slot < len(best); slot++ {
		inMask := map[int]bool{}
		for _, c := range best {
			inMask[c] = true
		}
		tried := 0
		for _, c := range order {
			if tried >= 6 {
				break
			}
			if inMask[c] {
				continue
			}
			tried++
			cand := append([]int(nil), best...)
			cand[slot] = c
			wc.JointEvals++
			if n := priceMask(cand); n < bestNorm {
				bestNorm, best = n, cand
			}
		}
	}

	wc.Norm = bestNorm
	for _, si := range best {
		if sites[si].isDie {
			wc.Dies = append(wc.Dies, sites[si].die)
		} else {
			wc.Links = append(wc.Links, sites[si].link)
		}
	}
	wc.Elapsed = time.Since(start)
	return wc, nil
}
