package spec

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestSolverSpecRoundTrip serializes a SolverSpec through JSON and
// back: the decoded spec must build the same strategy and budget.
func TestSolverSpecRoundTrip(t *testing.T) {
	in := SolverSpec{
		Strategy: "anneal",
		Seed:     11,
		Params:   map[string]float64{"iterations": 500},
		Budget:   &BudgetSpec{Evals: 20000, Time: "30s", Checkpoint: 100},
	}
	buf, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out SolverSpec
	if err := strictUnmarshal(buf, &out); err != nil {
		t.Fatal(err)
	}
	st, err := out.Build()
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != "anneal" || st.Strategy.Name() != "anneal" {
		t.Errorf("round-tripped strategy %q/%q, want anneal", st.Name, st.Strategy.Name())
	}
	if st.Budget.MaxEvals != 20000 || st.Budget.Deadline != 30*time.Second || st.Budget.Checkpoint != 100 {
		t.Errorf("round-tripped budget %+v", st.Budget)
	}
}

// TestSolverSpecDefaultsToGA checks the zero spec is the paper's GA.
func TestSolverSpecDefaultsToGA(t *testing.T) {
	st, err := SolverSpec{}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != "ga" || st.Strategy.Name() != "ga" {
		t.Errorf("zero spec built %q/%q, want ga", st.Name, st.Strategy.Name())
	}
}

// TestSolverSpecErrors rejects unknown strategies, unknown params and
// malformed budgets.
func TestSolverSpecErrors(t *testing.T) {
	cases := []SolverSpec{
		{Strategy: "no-such-strategy"},
		{Strategy: "ga", Params: map[string]float64{"popsicle": 1}},
		{Strategy: "ga", Params: map[string]float64{"population": -4}},
		{Budget: &BudgetSpec{Evals: -1}},
		{Budget: &BudgetSpec{Time: "not-a-duration"}},
		{Budget: &BudgetSpec{Time: "-5s"}},
		{Budget: &BudgetSpec{Checkpoint: -1}},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d (%+v): accepted", i, s)
		}
	}
}

// TestScenarioSpecSolverStage resolves a scenario carrying a solver
// stage and checks the stage comes back built.
func TestScenarioSpecSolverStage(t *testing.T) {
	ss := ScenarioSpec{
		Name:   "with-solver",
		Model:  ModelRef{Name: "gpt3-6.7b"},
		Wafer:  WaferRef{Name: "wsc-4x8"},
		Solver: &SolverSpec{Strategy: "portfolio", Seed: 3},
	}
	sc, err := ss.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Solver == nil || sc.Solver.Strategy.Name() != "portfolio" {
		t.Fatalf("solver stage not resolved: %+v", sc.Solver)
	}
	// JSON round-trip through ParseScenario keeps the stage.
	buf, err := json.Marshal(ss)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := ParseScenario(buf)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Solver == nil || rt.Solver.Strategy != "portfolio" || rt.Solver.Seed != 3 {
		t.Fatalf("round-tripped scenario lost the solver stage: %+v", rt.Solver)
	}
	// A bad stage fails resolution.
	ss.Solver = &SolverSpec{Strategy: "bogus"}
	if _, err := ss.Resolve(); err == nil {
		t.Error("bogus solver strategy accepted")
	}
}

// TestParseBudget covers the CLI budget grammar, including the
// rejection of zero/negative deadlines and duplicate keys.
func TestParseBudget(t *testing.T) {
	cases := []struct {
		in       string
		evals    int
		deadline time.Duration
		wantErr  string // substring; "" means success
	}{
		{in: "", evals: 0, deadline: 0},
		{in: ",", evals: 0, deadline: 0},
		{in: "20000", evals: 20000},
		{in: "30s", deadline: 30 * time.Second},
		{in: "20000,30s", evals: 20000, deadline: 30 * time.Second},
		{in: "30s,20000", evals: 20000, deadline: 30 * time.Second},
		{in: " 500ms , 7 ", evals: 7, deadline: 500 * time.Millisecond},
		{in: "abc", wantErr: "neither an eval count nor a duration"},
		{in: "-5", wantErr: "not positive"},
		{in: "0", wantErr: "not positive"},
		{in: "0s", wantErr: "deadline \"0s\" is not positive"},
		{in: "-2s", wantErr: "deadline \"-2s\" is not positive"},
		{in: "20000,-1s", wantErr: "not positive"},
		{in: "10,20", wantErr: "sets the eval cap twice"},
		{in: "5s,30s", wantErr: "sets the deadline twice"},
		{in: "100,1s,200", wantErr: "sets the eval cap twice"},
	}
	for _, tc := range cases {
		b, err := ParseBudget(tc.in)
		if tc.wantErr != "" {
			if err == nil {
				t.Errorf("ParseBudget(%q) accepted, want error containing %q", tc.in, tc.wantErr)
			} else if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("ParseBudget(%q) error %q, want substring %q", tc.in, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseBudget(%q): %v", tc.in, err)
			continue
		}
		if b.MaxEvals != tc.evals || b.Deadline != tc.deadline {
			t.Errorf("ParseBudget(%q) = %+v, want evals %d deadline %s", tc.in, b, tc.evals, tc.deadline)
		}
	}
}
