package solver

import (
	"context"
	"fmt"
	"sort"

	"temp/internal/engine"
)

// MultiFidelity is the two-stage surrogate-screened search (§VII-A's
// speed play): candidate assignments are explored on the cheap
// screening model (Problem.Screen — typically the surrogate cost
// backend's operator DNN), then the survivors are re-priced on the
// exact model and refined with an exact-model coordinate descent
// whose candidate moves are ranked by the screen. The returned winner
// is therefore always exact-verified — the strategy never reports a
// surrogate-priced cost — while the exact model sees orders of
// magnitude fewer distinct evaluations than a direct GA (which must
// fill the full chain-DP tables on it).
//
// Without a screening model the strategy degrades to the plain GA on
// the exact model, so it stays usable from generic registry sweeps.
type MultiFidelity struct {
	// Seed drives the screening racers' randomness.
	Seed int64
	// TopR is how many screen-ranked configurations each gene tries
	// per exact refinement sweep (default 8).
	TopR int
}

// newMultiFidelity builds the registered "multifid" strategy.
func newMultiFidelity(p Params) (Strategy, error) {
	mf := &MultiFidelity{
		Seed: p.seed(),
		TopR: int(p.value("topr", 0)),
	}
	if err := p.checkKnown("multifid", "seed", "topr"); err != nil {
		return nil, err
	}
	if mf.TopR < 0 {
		return nil, fmt.Errorf("solver: multifid topr %d is negative", mf.TopR)
	}
	return mf, nil
}

// Name implements Strategy.
func (s *MultiFidelity) Name() string { return "multifid" }

// Solve implements Strategy.
func (s *MultiFidelity) Solve(ctx context.Context, p Problem, b Budget) (Assignment, Stats) {
	stats := Stats{Strategy: s.Name()}
	if !p.valid() {
		return nil, stats
	}
	if p.Screen == nil {
		// No screening tier: fall back to the exact GA so the strategy
		// still returns a verified answer.
		a, ga := (&GA{Seed: s.Seed}).Solve(ctx, p, b)
		ga.Strategy = s.Name()
		return a, ga
	}
	topR := s.TopR
	if topR == 0 {
		topR = 8
	}
	// Budget.Deadline is a global wall-clock bound: convert it to a
	// shared context deadline spanning screen, verify and refine (the
	// same contract the portfolio keeps for its race).
	if b.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, b.Deadline)
		defer cancel()
		b.Deadline = 0
	}

	// The run clock starts before screening so Stats.Elapsed covers
	// the whole search, screen race included.
	ev := p.evaluator()
	r := newRun(b, ev, &stats)

	// --- Stage 1: screen. Race the local-search portfolio on the
	// cheap model; none of these touch the exact evaluator.
	screenP := Problem{Graph: p.Graph, Space: p.Space, Model: p.Screen}
	racers := defaultRacers(s.Seed)
	inner := b
	inner.Workers = 1
	inner.MaxEvals = 0 // the eval budget governs the exact stage
	candidates := make([]Assignment, len(racers))
	subStats := make([]Stats, len(racers))
	engine.ForEach(b.Workers, len(racers), func(i int) {
		candidates[i], subStats[i] = racers[i].Solve(ctx, screenP, inner)
	})
	for _, ss := range subStats {
		stats.ScreenEvaluations += ss.Evaluations
	}
	stats.Sub = subStats

	// --- Stage 2: verify. Price every distinct survivor on the exact
	// model; the best verified candidate seeds the refinement.
	seen := map[string]bool{}
	var survivors []Assignment
	var survivorCosts []float64
	var best Assignment
	bestCost := 0.0
	for _, c := range candidates {
		if len(c) != len(p.Graph.Ops) {
			continue
		}
		key := c.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		cost := ev.assignmentCost(c)
		survivors = append(survivors, c)
		survivorCosts = append(survivorCosts, cost)
		if best == nil || cost < bestCost {
			best = append(Assignment(nil), c...)
			bestCost = cost
		}
	}
	if best == nil {
		// Screening produced nothing usable (empty graph edge cases):
		// fall back to the exact chain-DP seed.
		best = p.seedAssignment(ev, b)
		bestCost = ev.assignmentCost(best)
		survivors = append(survivors, best)
		survivorCosts = append(survivorCosts, bestCost)
	}
	stats.DPCost = bestCost

	// --- Stage 3: screen-guided exact refinement. Coordinate descent
	// on the exact model, but each gene only tries the TopR
	// configurations the screen ranks best for that position — so the
	// exact evaluator prices a sliver of the space.
	screenEv := newEvaluator(p.Screen, p.Graph.Ops, p.Space)
	sweeps := 0
	// refine runs coordinate descent from one start: screen-guided
	// sweeps first (a sliver of the space per gene), then a
	// full-space polish to a coordinate-wise exact optimum — still
	// far fewer distinct exact terms than the GA's chain-DP tables
	// alone.
	refine := func(start Assignment, startCost float64) {
		inc := ev.incremental(start)
		cur := startCost
		for _, r1 := range []int{topR, len(p.Space)} {
			for ; !r.stop(ctx); sweeps++ {
				improved := false
				for i := range inc.assign {
					if r.stop(ctx) {
						break
					}
					stats.Iterations++
					for _, c := range s.screenRank(screenEv, inc.assign, i, r1) {
						if c == inc.assign[i] {
							continue
						}
						if cand := inc.moveCost(i, c); cand < cur {
							inc.apply(i, c)
							cur = cand
							improved = true
						}
					}
				}
				if cur < bestCost {
					bestCost = cur
					best = append(best[:0], inc.assign...)
				}
				r.checkpoint(sweeps+1, best, bestCost)
				if !improved {
					break
				}
			}
		}
	}
	// Refine every distinct verified survivor: the exact terms are
	// memoized, so the marginal cost of later starts is small, and a
	// runner-up's basin sometimes holds the better exact optimum.
	for i, c := range survivors {
		if r.stop(ctx) {
			break
		}
		refine(c, survivorCosts[i])
	}

	stats.ScreenEvaluations += int(screenEv.n.Load())
	r.finish(bestCost)
	return best, stats
}

// screenRank orders the strategy space for gene i by the screening
// model's delta cost around the current assignment and returns the
// TopR cheapest configurations.
func (s *MultiFidelity) screenRank(screenEv *evaluator, assign Assignment, i, topR int) []int {
	n := len(screenEv.space)
	if topR >= n {
		topR = n
	}
	type ranked struct {
		cfg  int
		cost float64
	}
	rs := make([]ranked, n)
	for c := 0; c < n; c++ {
		v := screenEv.intraCost(i, c) + screenEv.penalty(c)
		if i > 0 {
			v += screenEv.interCost(i, assign[i-1], c)
		}
		if i+1 < len(assign) {
			v += screenEv.interCost(i+1, c, assign[i+1])
		}
		rs[c] = ranked{cfg: c, cost: v}
	}
	sort.SliceStable(rs, func(a, b int) bool { return rs[a].cost < rs[b].cost })
	out := make([]int, 0, topR)
	for _, r := range rs[:topR] {
		out = append(out, r.cfg)
	}
	return out
}
