package temp

import (
	"testing"

	"temp/internal/collective"
	"temp/internal/cost"
	"temp/internal/hw"
	"temp/internal/mesh"
	"temp/internal/model"
	"temp/internal/parallel"
	"temp/internal/solver"
	"temp/internal/stream"
	"temp/internal/tcme"
	"temp/internal/unit"
)

// Ablation benchmarks for the design choices DESIGN.md calls out.
// These isolate single mechanisms rather than regenerate paper
// artefacts.

// BenchmarkAblationOrchestration compares the three stream
// orchestrations on identical hardware: physical ring, TATP's
// bidirectional chain, and the naive multi-hop fallback.
func BenchmarkAblationOrchestration(b *testing.B) {
	link := hw.TableID2D()
	sub := 64 * unit.MB
	cases := []struct {
		name  string
		build func() (*mesh.Topology, *stream.Orchestration)
	}{
		{"ring-2x8", func() (*mesh.Topology, *stream.Orchestration) {
			t := mesh.New(2, 8, link)
			r := mesh.Rect{R0: 0, C0: 0, R1: 1, C1: 7}
			return t, stream.Orchestrate(t, r.DiesOn(t), &r)
		}},
		{"bidir-1x16", func() (*mesh.Topology, *stream.Orchestration) {
			t := mesh.New(1, 16, link)
			r := mesh.Rect{R0: 0, C0: 0, R1: 0, C1: 15}
			return t, stream.Orchestrate(t, r.DiesOn(t), &r)
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			topo, orch := tc.build()
			var total float64
			for i := 0; i < b.N; i++ {
				total = topo.SeqTime(orch.Phases(sub)).Total()
			}
			b.ReportMetric(total*1e6, "stream-us")
			b.ReportMetric(float64(orch.MaxHopsPerRound()), "max-hops")
		})
	}
	// The naive logical ring on the same 1×16 chain, for contrast.
	b.Run("naive-ring-on-chain-1x16", func(b *testing.B) {
		topo := mesh.New(1, 16, link)
		order := mesh.Rect{R0: 0, C0: 0, R1: 0, C1: 15}.DiesOn(topo)
		var total float64
		for i := 0; i < b.N; i++ {
			phases := collective.RingAllGather(topo, order, sub)
			total = topo.SeqTime(phases).Total()
		}
		b.ReportMetric(total*1e6, "stream-us")
	})
}

// BenchmarkAblationTCMEMoves isolates the optimizer's two moves on
// the Fig. 11 contention scenario.
func BenchmarkAblationTCMEMoves(b *testing.B) {
	topo := mesh.New(4, 4, hw.TableID2D())
	id := func(r, c int) mesh.DieID { return topo.ID(mesh.Coord{R: r, C: c}) }
	bytes := 32 * unit.MB
	build := func() []mesh.Phase {
		var seqs [][]mesh.Phase
		for _, g := range [][]mesh.DieID{
			{id(0, 1), id(0, 0), id(1, 0), id(1, 1)},
			{id(0, 3), id(0, 2), id(1, 2), id(1, 3)},
			{id(2, 1), id(2, 0), id(3, 0), id(3, 1)},
			{id(2, 3), id(2, 2), id(3, 2), id(3, 3)},
		} {
			seqs = append(seqs, collective.RingAllGather(topo, g, bytes))
		}
		for i, c := range [][]mesh.DieID{
			{id(0, 2), id(0, 0), id(2, 0), id(2, 2)},
			{id(0, 3), id(0, 1), id(2, 1), id(2, 3)},
			{id(1, 2), id(1, 0), id(3, 0), id(3, 2)},
			{id(1, 3), id(1, 1), id(3, 1), id(3, 3)},
		} {
			seqs = append(seqs, collective.P2PChain(topo, c, bytes, "t"+string(rune('a'+i))))
		}
		return collective.Merge(seqs...)
	}
	for _, tc := range []struct {
		name string
		opts tcme.Options
	}{
		{"full", tcme.Options{}},
		{"merge-only", tcme.Options{DisableReroute: true}},
		{"reroute-only", tcme.Options{DisableMerge: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var agg tcme.Result
			for i := 0; i < b.N; i++ {
				_, agg = tcme.OptimizeAll(topo, build(), tc.opts)
			}
			b.ReportMetric(agg.Improvement(), "bottleneck-reduction-x")
		})
	}
}

// BenchmarkAblationSolverLevels compares chain-DP-only against the
// full dual-level search.
func BenchmarkAblationSolverLevels(b *testing.B) {
	m := model.GPT3_175B()
	w := hw.EvaluationWafer()
	g := model.BlockGraph(m)
	space := parallel.EnumerateConfigs(w.Dies(), true, 0)
	cm := &solver.Analytic{W: w, M: m}
	for _, tc := range []struct {
		name string
		opts solver.DLSOptions
	}{
		{"dp-only", solver.DLSOptions{Seed: 7, DisableGA: true}},
		{"dp+ga", solver.DLSOptions{Seed: 7}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var stats solver.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, stats, err = solver.DLS(g, space, cm, tc.opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(stats.FinalCost*1e3, "chain-cost-ms")
			b.ReportMetric(float64(stats.Evaluations), "model-evals")
		})
	}
}

// BenchmarkAblationSelectivePolicy measures the selective transfer
// policy against forced weight streaming on a long-sequence workload.
func BenchmarkAblationSelectivePolicy(b *testing.B) {
	m := model.Llama2_7B().WithSeq(16384, 32)
	w := hw.EvaluationWafer()
	cfg := parallel.Config{DP: 2, TATP: 16}
	for _, tc := range []struct {
		name  string
		force bool
	}{
		{"selective", false},
		{"always-weights", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			o := cost.TEMPOptions()
			o.ForceStreamWeights = tc.force
			var step float64
			for i := 0; i < b.N; i++ {
				res, err := cost.Evaluate(m, w, cfg, o)
				if err != nil {
					b.Fatal(err)
				}
				step = res.StepTime
			}
			b.ReportMetric(step, "step-s")
		})
	}
}
