package engine

import (
	"sync"
	"time"

	"temp/internal/parallel"
)

// Coalescer merges concurrent Sweeps' cache misses across callers
// before batched pricing — the serving daemon's cross-request
// batching layer. Each Sweep that reaches its miss path submits its
// family-grouped configuration lists and blocks; the coalescer holds
// submissions for a short window (or until enough distinct jobs
// accumulate), merges everything pending into per-family unions with
// cross-submission dedup, prices the unions through the pool's
// chunked cost.PriceBatch path, and hands every submitter its slice
// of the results.
//
// Results are bit-identical to uncoalesced sweeps: batched kernels
// are grouping-invariant (pinned by the PR 7 batched-vs-scalar
// tests), and the memo-publication step in Sweep is untouched, so
// hit/miss counter semantics match the scalar path exactly. The only
// observable differences are latency (a submission waits up to the
// window for peers) and fewer duplicate pricings when two requests
// miss on the same job at the same time.
type Coalescer struct {
	// pool prices flushes; nil means the shared Default() pool at
	// flush time (so the coalescer survives SetWorkers swaps).
	pool *Pool
	// window is how long the first submission of a batch waits for
	// peers; <= 0 flushes every submission immediately (no
	// cross-request merging, same code path).
	window time.Duration
	// maxJobs flushes early once this many distinct jobs are pending.
	maxJobs int

	mu        sync.Mutex
	pending   []*coalesceSub
	distinct  int
	scheduled bool
}

// coalesceSub is one Sweep's blocked submission.
type coalesceSub struct {
	order    []jobFamily
	families map[jobFamily][]parallel.Config
	priced   map[Job]Result
	done     chan struct{}
}

// defaultCoalesceMaxJobs bounds pending work before an early flush:
// enough to fill several PriceBatch chunks per flush without letting
// a burst of large sweeps pile up latency behind one timer.
const defaultCoalesceMaxJobs = 4 * sweepChunkCap

// NewCoalescer returns a coalescer pricing through p (nil = the
// shared pool, resolved at each flush). window <= 0 disables the
// wait-for-peers hold; maxJobs <= 0 selects the default early-flush
// bound.
func NewCoalescer(p *Pool, window time.Duration, maxJobs int) *Coalescer {
	if maxJobs <= 0 {
		maxJobs = defaultCoalesceMaxJobs
	}
	return &Coalescer{pool: p, window: window, maxJobs: maxJobs}
}

// target resolves the pool pricing this coalescer's flushes.
func (c *Coalescer) target() *Pool {
	if c.pool != nil {
		return c.pool
	}
	return Default()
}

// price submits one sweep's family-grouped misses and blocks until a
// flush has priced them, writing results into priced.
func (c *Coalescer) price(order []jobFamily, families map[jobFamily][]parallel.Config, priced map[Job]Result) {
	sub := &coalesceSub{order: order, families: families, priced: priced, done: make(chan struct{})}
	n := 0
	for _, cfgs := range families {
		n += len(cfgs)
	}
	c.mu.Lock()
	c.pending = append(c.pending, sub)
	c.distinct += n
	switch {
	case c.distinct >= c.maxJobs || c.window <= 0:
		// Enough work (or no hold window): flush synchronously in this
		// goroutine. A timer-scheduled flush racing with this one finds
		// an empty pending list and is a no-op.
		batch := c.take()
		c.mu.Unlock()
		c.flush(batch)
	case !c.scheduled:
		c.scheduled = true
		c.mu.Unlock()
		time.AfterFunc(c.window, func() {
			c.mu.Lock()
			batch := c.take()
			c.mu.Unlock()
			c.flush(batch)
		})
	default:
		c.mu.Unlock()
	}
	<-sub.done
}

// take claims everything pending (caller holds mu).
func (c *Coalescer) take() []*coalesceSub {
	batch := c.pending
	c.pending = nil
	c.distinct = 0
	c.scheduled = false
	return batch
}

// flush merges a batch of submissions into per-family config unions,
// prices them once, and distributes results to every submitter.
func (c *Coalescer) flush(batch []*coalesceSub) {
	if len(batch) == 0 {
		return
	}
	p := c.target()
	if len(batch) == 1 {
		// Nothing to merge with: price directly (still counted as a
		// flush so the telemetry reflects coalescer traffic).
		s := batch[0]
		n := 0
		for _, cfgs := range s.families {
			n += len(cfgs)
		}
		p.priceFamilies(s.order, s.families, n, s.priced)
		p.cache.coalFlushes.Add(1)
		p.cache.coalJobs.Add(int64(n))
		close(s.done)
		return
	}

	// Union the submissions: families in first-seen order, configs
	// deduped across submitters within each family.
	var order []jobFamily
	union := make(map[jobFamily][]parallel.Config)
	seen := make(map[Job]bool)
	shared := 0
	distinct := 0
	for _, s := range batch {
		for _, f := range s.order {
			if _, ok := union[f]; !ok {
				order = append(order, f)
			}
			for _, cfg := range s.families[f] {
				j := Job{Model: f.Model, Wafer: f.Wafer, Config: cfg, Opts: f.Opts, Backend: f.Backend}
				if seen[j] {
					shared++ // a second request wanted the same job
					continue
				}
				seen[j] = true
				union[f] = append(union[f], cfg)
				distinct++
			}
		}
	}
	merged := make(map[Job]Result, distinct)
	p.priceFamilies(order, union, distinct, merged)
	p.cache.coalFlushes.Add(1)
	p.cache.coalJobs.Add(int64(distinct))
	p.cache.coalShared.Add(int64(shared))
	for _, s := range batch {
		for _, f := range s.order {
			for _, cfg := range s.families[f] {
				j := Job{Model: f.Model, Wafer: f.Wafer, Config: cfg, Opts: f.Opts, Backend: f.Backend}
				s.priced[j] = merged[j]
			}
		}
		close(s.done)
	}
}

// SetCoalescer attaches (or, with nil, detaches) a cross-request miss
// coalescer to the shared pool. Subsequent Sweeps route their batched
// miss pricing through it; in-flight sweeps on the previous pool
// value finish on whichever path they started.
func SetCoalescer(co *Coalescer) {
	cur := Default()
	defaultPool.Store(&Pool{workers: cur.workers, cache: cur.cache, backend: cur.backend,
		sem: make(chan struct{}, cur.workers), coal: co})
}

// Coalescing reports whether the shared pool has a coalescer
// attached.
func Coalescing() bool { return Default().coal != nil }
