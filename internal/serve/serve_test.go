package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"temp/internal/spec"
)

// testRequests is a small deterministic workload: a plain sweep, a
// seeded GA solve, and a batch with a clamp budget.
func testRequests() []spec.RequestSpec {
	sweep := spec.ScenarioSpec{
		Name:  "sweep",
		Model: spec.ModelRef{Name: "gpt3-6.7b"},
		Wafer: spec.WaferRef{Name: "wsc-4x8"},
	}
	solve := spec.ScenarioSpec{
		Name:  "solve-ga",
		Model: spec.ModelRef{Name: "llama2-7b"},
		Wafer: spec.WaferRef{Name: "wsc-4x8"},
		Solver: &spec.SolverSpec{
			Strategy: "ga", Seed: 7,
			Budget: &spec.BudgetSpec{Evals: 1500},
		},
	}
	return []spec.RequestSpec{
		{ID: "sweep", Scenario: &sweep},
		{ID: "solve", Tenant: "a", Scenario: &solve},
		{ID: "batch", Tenant: "b", Scenarios: []spec.ScenarioSpec{sweep, solve},
			Budget: &spec.BudgetSpec{Evals: 1200}},
	}
}

// TestServeBitIdenticalUnderConcurrency hammers one shared-engine
// server with many concurrent solve requests and checks every
// response is byte-identical to the serial in-process path — the
// cache, the coalescer and the scheduler must never change results.
func TestServeBitIdenticalUnderConcurrency(t *testing.T) {
	reqs := testRequests()

	// Serial goldens first (also warms the shared cache — warmth must
	// not change results either).
	golden := make([][]byte, len(reqs))
	for i, req := range reqs {
		direct, err := RunRequest(req)
		if err != nil {
			t.Fatalf("direct solve %s: %v", req.ID, err)
		}
		golden[i], _ = json.Marshal(CanonicalResults(direct))
	}

	srv := New(Options{MaxConcurrent: 4, MaxQueue: 64})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	rounds := 4
	if testing.Short() {
		rounds = 2
	}
	var wg sync.WaitGroup
	errs := make(chan error, rounds*len(reqs))
	for r := 0; r < rounds; r++ {
		for i, req := range reqs {
			wg.Add(1)
			go func(r, i int, req spec.RequestSpec) {
				defer wg.Done()
				body, _ := json.Marshal(req)
				resp, _, err := postSolveOnce(ts.Client(), ts.URL, body)
				if err != nil {
					errs <- fmt.Errorf("round %d req %s: %v", r, req.ID, err)
					return
				}
				got, _ := json.Marshal(CanonicalResults(resp.Results))
				if !bytes.Equal(got, golden[i]) {
					errs <- fmt.Errorf("round %d req %s: served results diverged from serial solve", r, req.ID)
				}
			}(r, i, req)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m := srv.Metrics()
	if m.Requests == 0 || m.Scheduler.Admitted == 0 {
		t.Errorf("metrics recorded no traffic: %+v", m)
	}
	if m.ServedMisses != 0 {
		t.Errorf("warm hammer re-priced %d jobs; every result should come from cache", m.ServedMisses)
	}
}

// TestServeStreamCheckpoints checks a streamed solve emits checkpoint
// events and a final done event whose results match the non-streamed
// path.
func TestServeStreamCheckpoints(t *testing.T) {
	// Anneal checkpoints per move. Bound the search by iterations,
	// not evals: the chain-DP seed alone prices the full term table
	// (tens of thousands of terms), so a small eval cap ends the
	// search before any move — and any snapshot — happens.
	solve := spec.ScenarioSpec{
		Name:  "stream-anneal",
		Model: spec.ModelRef{Name: "llama2-7b"},
		Wafer: spec.WaferRef{Name: "wsc-4x8"},
		Solver: &spec.SolverSpec{
			Strategy: "anneal", Seed: 3,
			Params: map[string]float64{"iterations": 100},
			Budget: &spec.BudgetSpec{Checkpoint: 10},
		},
	}
	req := spec.RequestSpec{ID: "stream", Scenario: &solve, Stream: true}
	direct, err := RunRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	wantResults, _ := json.Marshal(CanonicalResults(direct))

	ts := httptest.NewServer(New(Options{MaxConcurrent: 2, MaxQueue: 8}))
	defer ts.Close()

	body, _ := json.Marshal(req)
	httpResp, err := ts.Client().Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if ct := httpResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(httpResp.Body); err != nil {
		t.Fatal(err)
	}
	stream := buf.String()
	checkpoints := bytes.Count(buf.Bytes(), []byte("event: checkpoint\n"))
	if checkpoints == 0 {
		t.Errorf("streamed solve emitted no checkpoint events:\n%s", stream)
	}
	idx := bytes.LastIndex(buf.Bytes(), []byte("event: done\ndata: "))
	if idx < 0 {
		t.Fatalf("no done event in stream:\n%s", stream)
	}
	line := buf.Bytes()[idx+len("event: done\ndata: "):]
	if nl := bytes.IndexByte(line, '\n'); nl >= 0 {
		line = line[:nl]
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		t.Fatalf("done event: %v", err)
	}
	got, _ := json.Marshal(CanonicalResults(resp.Results))
	if !bytes.Equal(got, wantResults) {
		t.Error("streamed final results diverged from direct solve")
	}
}

// TestSchedulerAdmission covers capacity rejection, fair-share
// rejection, and queue-cancel bookkeeping.
func TestSchedulerAdmission(t *testing.T) {
	s := NewScheduler(1, 1)
	ctx := context.Background()

	rel1, _, err := s.Admit(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	// Second request queues; run it in a goroutine.
	started := make(chan struct{})
	finished := make(chan error, 1)
	go func() {
		close(started)
		rel2, _, err := s.Admit(ctx, "b")
		if err == nil {
			rel2()
		}
		finished <- err
	}()
	<-started
	// Wait until it is actually queued.
	for i := 0; i < 100; i++ {
		if s.Stats().Queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := s.Stats().Queued; got != 1 {
		t.Fatalf("queued = %d, want 1", got)
	}

	// Capacity (1 running + 1 queued) is full: next admit rejects.
	if _, _, err := s.Admit(ctx, "c"); err == nil {
		t.Fatal("over-capacity admit accepted")
	} else {
		var o *Overloaded
		if !asOverloaded(err, &o) {
			t.Fatalf("rejection is %T, want *Overloaded", err)
		}
		if o.RetryAfter <= 0 {
			t.Errorf("Retry-After hint %s not positive", o.RetryAfter)
		}
	}

	rel1()
	if err := <-finished; err != nil {
		t.Fatalf("queued request failed: %v", err)
	}

	st := s.Stats()
	if st.Admitted != 2 || st.Completed != 2 || st.RejectedFull != 1 {
		t.Errorf("stats = %+v, want 2 admitted, 2 completed, 1 rejected", st)
	}
}

// TestSchedulerFairShare checks one tenant cannot hold the whole
// capacity once a second tenant is active.
func TestSchedulerFairShare(t *testing.T) {
	s := NewScheduler(4, 0)
	ctx := context.Background()

	// Tenant a takes 2 slots, tenant b takes 1: a's share is now
	// ceil(4/2) = 2, so a's third admit must reject while b still
	// fits.
	relA1, _, err := s.Admit(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	defer relA1()
	relA2, _, err := s.Admit(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	defer relA2()
	relB, _, err := s.Admit(ctx, "b")
	if err != nil {
		t.Fatal(err)
	}
	defer relB()

	if _, _, err := s.Admit(ctx, "a"); err == nil {
		t.Fatal("tenant a admitted past its fair share")
	} else {
		var o *Overloaded
		if !asOverloaded(err, &o) || o.Tenant != "a" {
			t.Fatalf("rejection = %v, want fair-share rejection for tenant a", err)
		}
	}
	if st := s.Stats(); st.RejectedShare != 1 {
		t.Errorf("rejected_fair_share = %d, want 1", st.RejectedShare)
	}
	// Tenant b is under its share and still gets in.
	relB2, _, err := s.Admit(ctx, "b")
	if err != nil {
		t.Fatalf("tenant b rejected under its share: %v", err)
	}
	relB2()
}

// asOverloaded is errors.As without importing errors twice in tests.
func asOverloaded(err error, o **Overloaded) bool {
	v, ok := err.(*Overloaded)
	if ok {
		*o = v
	}
	return ok
}

// TestServeRejectsBadRequests covers the 4xx paths.
func TestServeRejectsBadRequests(t *testing.T) {
	ts := httptest.NewServer(New(Options{MaxConcurrent: 1}))
	defer ts.Close()

	cases := []struct {
		body string
		code int
	}{
		{`{`, 400},
		{`{}`, 400},
		{`{"scenario":{"model":"no-such-model","wafer":"wsc-4x8"}}`, 400},
		{`{"scenario":{"model":"gpt3-6.7b","wafer":"wsc-4x8"},"typo_field":1}`, 400},
		{`{"scenario":{"model":"gpt3-6.7b","wafer":"wsc-4x8"},"budget":{"time":"-5s"}}`, 400},
	}
	for i, tc := range cases {
		resp, err := ts.Client().Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("case %d: status %d, want %d", i, resp.StatusCode, tc.code)
		}
	}
}

// TestLoadGenSmoke runs the load generator end to end against a test
// server: two passes over a tiny mix, warm pass served fully from
// cache, served results verified against the direct path.
func TestLoadGenSmoke(t *testing.T) {
	srv := New(Options{MaxConcurrent: 4, MaxQueue: 16})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	mix := testRequests()[:2]
	rep, err := RunLoad(LoadOptions{
		URL: ts.URL, Clients: 4, Passes: 2, Mix: mix, Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Passes) != 2 {
		t.Fatalf("passes = %d, want 2", len(rep.Passes))
	}
	for _, p := range rep.Passes {
		if p.Errors != 0 {
			t.Errorf("pass %d had %d errors", p.Pass, p.Errors)
		}
		if p.Requests != len(mix) {
			t.Errorf("pass %d ran %d requests, want %d", p.Pass, p.Requests, len(mix))
		}
	}
	warm := rep.Passes[len(rep.Passes)-1]
	if warm.Misses != 0 {
		t.Errorf("warm pass re-priced %d jobs", warm.Misses)
	}
	if rep.Verify == nil || !rep.Verify.Match {
		t.Fatalf("verify failed: %+v", rep.Verify)
	}
}
