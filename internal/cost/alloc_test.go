package cost_test

import (
	"testing"

	"temp/internal/cost"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
)

// TestEvaluateSteadyStateAllocs pins the analytic hot path's
// allocation budget. After the first evaluation warms the interned
// topology's derived caches (placement, orchestrations, compiled
// lowering templates), a GMap/SMap evaluation runs in a handful of
// allocations (currently 8: the evaluator itself and a few template
// sequence headers) — the regression guard leaves headroom but
// catches any return of the per-evaluation map/route churn, which
// cost thousands.
func TestEvaluateSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	cfg := parallel.Config{DP: 2, TP: 2, SP: 2, TATP: 4}
	for _, tc := range []struct {
		name   string
		engine cost.Engine
		budget float64
	}{
		{"GMap", cost.GMap, 32},
		{"SMap", cost.SMap, 32},
	} {
		o := cost.TEMPOptions()
		o.Engine = tc.engine
		if _, err := cost.Evaluate(m, w, cfg, o); err != nil {
			t.Fatalf("%s warmup: %v", tc.name, err)
		}
		avg := testing.AllocsPerRun(50, func() {
			if _, err := cost.Evaluate(m, w, cfg, o); err != nil {
				t.Fatal(err)
			}
		})
		if avg > tc.budget {
			t.Errorf("%s steady-state Evaluate allocates %.1f objects/op, budget %.0f", tc.name, avg, tc.budget)
		}
	}
}
