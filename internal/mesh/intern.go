package mesh

import (
	"math"
	"sync"

	"temp/internal/hw"
)

// The topology interner. Every cost-model evaluation begins by
// materializing the wafer's mesh; before interning, each evaluation
// rebuilt the same Topology (die/link masks, link index) from scratch.
// The interner keys topologies by (rows, cols, link parameters, fault
// mask) and hands out one frozen instance per key, so the evaluation
// hot path shares a single immutable topology — and the derived-
// structure caches (lowered collectives, orchestrations, placements)
// can key off its pointer identity.

// internKey identifies one topology state. hw.D2D is a flat struct of
// floats, so the key is comparable; mask is the canonical fault-state
// encoding ("" for a healthy mesh).
type internKey struct {
	rows, cols int
	link       hw.D2D
	mask       string
}

// maxFaultedInterns bounds the faulted-mask side of the interner.
// Healthy topologies are one per wafer geometry (a handful per
// process), but Monte Carlo fault studies intern one random mask per
// trial with near-zero cross-trial reuse — unbounded retention would
// grow memory for the process lifetime. When the bound is hit the
// faulted table is reset wholesale; evicted topologies stay frozen
// and fully functional (their derived caches live on the topology,
// not in global maps), they merely stop being shared and become
// collectable once callers drop them.
const maxFaultedInterns = 256

var interner struct {
	mu      sync.Mutex
	healthy map[internKey]*Topology
	faulted map[internKey]*Topology
}

// Shared returns the interned immutable healthy topology for the
// given grid and link parameters.
func Shared(rows, cols int, link hw.D2D) *Topology {
	return intern(internKey{rows: rows, cols: cols, link: link}, func() *Topology {
		return New(rows, cols, link)
	})
}

// Intern returns the canonical shared instance of the receiver's exact
// state (grid, link parameters, die/link/core fault mask), freezing
// the receiver if it becomes the canonical instance. After Intern the
// receiver must be treated as immutable — the Set* mutators panic.
// Healthy topologies share the Shared/FromWafer instance.
func (t *Topology) Intern() *Topology {
	if t.frozen {
		return t
	}
	key := internKey{rows: t.rows, cols: t.cols, link: t.link, mask: t.maskKey()}
	return intern(key, func() *Topology { return t })
}

// Frozen reports whether the topology is interned (immutable). The
// derived-structure caches only engage on frozen topologies.
func (t *Topology) Frozen() bool { return t.frozen }

func intern(key internKey, build func() *Topology) *Topology {
	interner.mu.Lock()
	defer interner.mu.Unlock()
	table := &interner.healthy
	if key.mask != "" {
		table = &interner.faulted
	}
	if t, ok := (*table)[key]; ok {
		return t
	}
	t := build()
	t.frozen = true
	if key.mask != "" && len(interner.faulted) >= maxFaultedInterns {
		interner.faulted = nil
	}
	if *table == nil {
		*table = map[internKey]*Topology{}
	}
	(*table)[key] = t
	return t
}

// maskKey canonically encodes the fault state: empty for a healthy
// mesh, else the dead-die set, dead-link set and non-unit core
// fractions (bit-exact).
func (t *Topology) maskKey() string {
	if t.healthy() && !t.degradedCores() {
		return ""
	}
	var b []byte
	put32 := func(v uint32) {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	for i, alive := range t.dieAlive {
		if !alive {
			put32(uint32(i))
		}
	}
	b = append(b, '|')
	for id, alive := range t.linkAlive {
		if !alive {
			put32(uint32(id))
		}
	}
	b = append(b, '|')
	for i, f := range t.coreFrac {
		if f != 1.0 {
			put32(uint32(i))
			bits := math.Float64bits(f)
			put32(uint32(bits))
			put32(uint32(bits >> 32))
		}
	}
	return string(b)
}

func (t *Topology) degradedCores() bool {
	for _, f := range t.coreFrac {
		if f != 1.0 {
			return true
		}
	}
	return false
}

// Clone returns a mutable deep copy of the topology's fault state.
// The immutable link index is shared with the receiver.
func (t *Topology) Clone() *Topology {
	c := &Topology{
		rows:      t.rows,
		cols:      t.cols,
		link:      t.link,
		dieAlive:  append([]bool(nil), t.dieAlive...),
		linkAlive: append([]bool(nil), t.linkAlive...),
		coreFrac:  append([]float64(nil), t.coreFrac...),
		deadDies:  t.deadDies,
		deadLinks: t.deadLinks,
		links:     t.links,
		slot:      t.slot,
		enum:      t.enum,
	}
	return c
}

// Derived returns the value cached under key on a frozen topology,
// building it with build on the first request. Concurrent first
// requests may build twice; builds must be deterministic, and one
// winner is kept. On a mutable topology nothing is cached (the result
// would go stale on the next fault mutation) and build's result is
// returned directly.
func (t *Topology) Derived(key any, build func() any) any {
	if !t.frozen {
		return build()
	}
	if v, ok := t.derived.Load(key); ok {
		return v
	}
	v, _ := t.derived.LoadOrStore(key, build())
	return v
}
