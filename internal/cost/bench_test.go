package cost_test

import (
	"testing"

	"temp/internal/cost"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
)

// benchCase is the hot-path shape every GA generation prices: the TEMP
// engine (TCME placement + communication optimization) on the
// evaluation wafer.
func benchCase() (model.Config, hw.Wafer, parallel.Config, cost.Options) {
	return model.GPT3_6_7B(), hw.EvaluationWafer(),
		parallel.Config{DP: 2, TP: 2, SP: 2, TATP: 4}, cost.TEMPOptions()
}

func BenchmarkEvaluateTEMP(b *testing.B) {
	m, w, cfg, o := benchCase()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cost.Evaluate(m, w, cfg, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateGMap(b *testing.B) {
	m, w, cfg, o := benchCase()
	o.Engine = cost.GMap
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cost.Evaluate(m, w, cfg, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateSMap(b *testing.B) {
	m, w, cfg, o := benchCase()
	o.Engine = cost.SMap
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cost.Evaluate(m, w, cfg, o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPriceBatch measures the batched kernel at the chunk size
// engine.Sweep feeds it (K=64 candidates per dense link-index walk);
// cand/s is the per-candidate throughput the sweep path sees.
func BenchmarkPriceBatch(b *testing.B) {
	m, w, _, o := benchCase()
	o.Engine = cost.GMap
	ab, err := cost.NewBackend("analytic")
	if err != nil {
		b.Fatal(err)
	}
	be := ab.(cost.BatchBackend)
	const k = 64
	cfgs := batchCandidates(w.Dies(), k)
	out := make([]cost.Breakdown, k)
	errs := make([]error, k)
	be.PriceBatch(m, w, cfgs, o, out, errs) // warm caches + pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		be.PriceBatch(m, w, cfgs, o, out, errs)
	}
	b.ReportMetric(float64(k)*float64(b.N)/b.Elapsed().Seconds(), "cand/s")
}
