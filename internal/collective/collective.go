// Package collective lowers the communication primitives of
// distributed training — all-reduce, all-gather, reduce-scatter,
// broadcast and point-to-point chains — onto wafer mesh flows. The
// ring algorithms operate over an ordered die list (a physical ring
// or chain produced by the placement layer); when the ring does not
// physically close, the wrap-around step is routed multi-hop across
// the mesh, which is exactly the topology mismatch the paper's
// baselines suffer from.
package collective

import (
	"fmt"

	"temp/internal/mesh"
)

// ringStep emits one phase in which every position i sends chunkBytes
// to position (i+1) mod N along the order, tagging flows with the
// payload prefix. On an open chain the N-1→0 step is a multi-hop
// route.
func ringStep(t *mesh.Topology, order []mesh.DieID, chunkBytes float64, label, payload string) mesh.Phase {
	n := len(order)
	ph := mesh.Phase{Label: label}
	for i := 0; i < n; i++ {
		src, dst := order[i], order[(i+1)%n]
		route := t.Route(src, dst)
		if route == nil {
			continue
		}
		ph.Flows = append(ph.Flows, mesh.Flow{
			Src:     src,
			Dst:     dst,
			Bytes:   chunkBytes,
			Route:   route,
			Payload: fmt.Sprintf("%s.pos%d", payload, i),
		})
	}
	return ph
}

// RingAllReduce lowers a bandwidth-optimal ring all-reduce of bytes
// per participant: a reduce-scatter pass followed by an all-gather
// pass, 2(N-1) steps of bytes/N chunks.
func RingAllReduce(t *mesh.Topology, order []mesh.DieID, bytes float64) []mesh.Phase {
	n := len(order)
	if n <= 1 || bytes <= 0 {
		return nil
	}
	return lower(t, kindAllReduce, "", order, bytes/float64(n), func(chunk float64) []mesh.Phase {
		phases := make([]mesh.Phase, 0, 2*(n-1))
		for s := 0; s < n-1; s++ {
			phases = append(phases, ringStep(t, order, chunk,
				fmt.Sprintf("allreduce-rs-%d", s), fmt.Sprintf("ar.rs%d", s)))
		}
		for s := 0; s < n-1; s++ {
			phases = append(phases, ringStep(t, order, chunk,
				fmt.Sprintf("allreduce-ag-%d", s), fmt.Sprintf("ar.ag%d", s)))
		}
		return phases
	})
}

// RingAllGather lowers an all-gather where every participant
// contributes shardBytes and ends holding all N shards: N-1 ring
// steps of shardBytes each.
func RingAllGather(t *mesh.Topology, order []mesh.DieID, shardBytes float64) []mesh.Phase {
	n := len(order)
	if n <= 1 || shardBytes <= 0 {
		return nil
	}
	return lower(t, kindAllGather, "", order, shardBytes, func(shard float64) []mesh.Phase {
		phases := make([]mesh.Phase, 0, n-1)
		for s := 0; s < n-1; s++ {
			phases = append(phases, ringStep(t, order, shard,
				fmt.Sprintf("allgather-%d", s), fmt.Sprintf("ag%d", s)))
		}
		return phases
	})
}

// RingReduceScatter lowers a reduce-scatter of bytes per participant
// into N-1 ring steps of bytes/N chunks.
func RingReduceScatter(t *mesh.Topology, order []mesh.DieID, bytes float64) []mesh.Phase {
	n := len(order)
	if n <= 1 || bytes <= 0 {
		return nil
	}
	return lower(t, kindReduceScatter, "", order, bytes/float64(n), func(chunk float64) []mesh.Phase {
		phases := make([]mesh.Phase, 0, n-1)
		for s := 0; s < n-1; s++ {
			phases = append(phases, ringStep(t, order, chunk,
				fmt.Sprintf("reducescatter-%d", s), fmt.Sprintf("rs%d", s)))
		}
		return phases
	})
}

// Broadcast lowers a one-to-many transfer of bytes from root to dsts
// as a single multicast-tree phase.
func Broadcast(t *mesh.Topology, root mesh.DieID, dsts []mesh.DieID, bytes float64, payload string) []mesh.Phase {
	if len(dsts) == 0 || bytes <= 0 {
		return nil
	}
	key := append([]mesh.DieID{root}, dsts...)
	return lower(t, kindBroadcast, payload, key, bytes, func(bytes float64) []mesh.Phase {
		flows := mesh.MulticastTree(t, root, dsts, bytes, payload)
		if len(flows) == 0 {
			return nil
		}
		return []mesh.Phase{{Label: "broadcast", Flows: flows}}
	})
}

// P2P lowers a single point-to-point transfer.
func P2P(t *mesh.Topology, src, dst mesh.DieID, bytes float64, payload string) []mesh.Phase {
	if bytes <= 0 || src == dst {
		return nil
	}
	return lower(t, kindP2P, payload, []mesh.DieID{src, dst}, bytes, func(bytes float64) []mesh.Phase {
		route := t.Route(src, dst)
		if route == nil {
			return nil
		}
		return []mesh.Phase{{
			Label: "p2p",
			Flows: []mesh.Flow{{Src: src, Dst: dst, Bytes: bytes, Route: route, Payload: payload}},
		}}
	})
}

// P2PChain lowers a pipeline of transfers src→…→dst along an ordered
// die list (the inter-group chain transfers of Fig. 11's TATP
// example): each consecutive pair exchanges bytes in one phase.
func P2PChain(t *mesh.Topology, order []mesh.DieID, bytes float64, payload string) []mesh.Phase {
	if len(order) < 2 || bytes <= 0 {
		return nil
	}
	return lower(t, kindChain, payload, order, bytes, func(bytes float64) []mesh.Phase {
		ph := mesh.Phase{Label: "p2p-chain"}
		for i := 0; i+1 < len(order); i++ {
			route := t.Route(order[i], order[i+1])
			if route == nil {
				continue
			}
			ph.Flows = append(ph.Flows, mesh.Flow{
				Src:     order[i],
				Dst:     order[i+1],
				Bytes:   bytes,
				Route:   route,
				Payload: fmt.Sprintf("%s.hop%d", payload, i),
			})
		}
		if len(ph.Flows) == 0 {
			return nil
		}
		return []mesh.Phase{ph}
	})
}

// AllToAll lowers a full personalized exchange: every ordered pair
// (i,j), i≠j, moves bytesPerPair. Emitted as a single phase; the mesh
// contention model serializes overlapping routes.
func AllToAll(t *mesh.Topology, order []mesh.DieID, bytesPerPair float64) []mesh.Phase {
	n := len(order)
	if n <= 1 || bytesPerPair <= 0 {
		return nil
	}
	return lower(t, kindAllToAll, "", order, bytesPerPair, func(bytes float64) []mesh.Phase {
		ph := mesh.Phase{Label: "alltoall"}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				route := t.Route(order[i], order[j])
				if route == nil {
					continue
				}
				ph.Flows = append(ph.Flows, mesh.Flow{
					Src:     order[i],
					Dst:     order[j],
					Bytes:   bytes,
					Route:   route,
					Payload: fmt.Sprintf("a2a.%d.%d", i, j),
				})
			}
		}
		return []mesh.Phase{ph}
	})
}

// Time sums the phase times of a lowered collective on t.
func Time(t *mesh.Topology, phases []mesh.Phase) float64 {
	return t.SeqTime(phases).Total()
}

// Energy sums the D2D energy of a lowered collective on t.
func Energy(t *mesh.Topology, phases []mesh.Phase) float64 {
	var e float64
	for _, p := range phases {
		e += t.EnergyJoules(p)
	}
	return e
}

// MergeFlows combines concurrent phase sequences exactly like Merge —
// step k of every sequence lands in one shared phase, flows in the
// same order — but skips the per-flow payload retagging and phase
// labels. Only the TCME optimizer reads payloads, so the analytic
// (non-TCME) evaluation path merges with this allocation-lean form;
// the contention model's result is identical because phase timing
// never consults payloads or labels.
func MergeFlows(seqs ...[]mesh.Phase) []mesh.Phase {
	maxLen, total := 0, 0
	for _, s := range seqs {
		if len(s) > maxLen {
			maxLen = len(s)
		}
		for _, p := range s {
			total += len(p.Flows)
		}
	}
	if maxLen == 0 {
		return nil
	}
	out := make([]mesh.Phase, maxLen)
	flows := make([]mesh.Flow, 0, total)
	for k := 0; k < maxLen; k++ {
		start := len(flows)
		for _, s := range seqs {
			if k < len(s) {
				flows = append(flows, s[k].Flows...)
			}
		}
		end := len(flows)
		out[k].Flows = flows[start:end:end]
	}
	return out
}

// Merge combines the flows of several concurrently executing phase
// sequences into a single phase sequence, aligning step k of every
// sequence into one shared phase. This is how hybrid parallelism's
// overlapping collectives (e.g. FSDP all-gather + TATP P2P, Fig. 11)
// are exposed to the contention model and the TCME optimizer.
func Merge(seqs ...[]mesh.Phase) []mesh.Phase {
	maxLen := 0
	for _, s := range seqs {
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	out := make([]mesh.Phase, maxLen)
	for k := 0; k < maxLen; k++ {
		out[k].Label = fmt.Sprintf("merged-%d", k)
		for si, s := range seqs {
			if k < len(s) {
				for _, f := range s[k].Flows {
					f.Payload = fmt.Sprintf("s%d.%s", si, f.Payload)
					out[k].Flows = append(out[k].Flows, f)
				}
			}
		}
	}
	return out
}
