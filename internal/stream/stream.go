// Package stream implements the tensor-stream partition paradigm
// (TSPP) and its topology-aware realization TATP (§V, Fig. 8,
// Algorithm 1). A stream schedule coordinates N dies over N rounds:
// each die holds one resident sub-tensor, computes one sub-output per
// round, and exchanges sub-tensors with physical neighbors so that
// communication fully overlaps computation.
//
// Three orchestrations are provided:
//
//   - Ring: the naive logical ring. Minimal transfer volume (each die
//     forwards one sub-tensor per round) but requires a physical ring;
//     on a chain the wrap-around link becomes an O(N)-hop transfer —
//     the tail-latency failure mode of Fig. 5(a).
//   - Bidirectional: TATP's redundant-transfer orchestration for
//     chains. Every sub-tensor is relayed one hop per round in both
//     directions from its origin; all transfers are single-hop, and
//     total volume is conserved (each sub-tensor still travels N-1
//     hops overall, split between the two directions) at the price of
//     buffering early arrivals (Fig. 8(b)).
//   - Fallback: a logical ring over physically scattered dies, paying
//     multi-hop routes. Used to model non-contiguous "tetris" groups
//     (Fig. 7(a)).
package stream

import (
	"fmt"
)

// Mode identifies an orchestration.
type Mode int

// Orchestration modes.
const (
	// Ring is the physical-ring streaming schedule (1× volume).
	Ring Mode = iota
	// Bidirectional is TATP's chain schedule (2× volume, 1 hop).
	Bidirectional
	// Fallback is a logical ring over non-contiguous dies.
	Fallback
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Ring:
		return "ring"
	case Bidirectional:
		return "bidir"
	case Fallback:
		return "fallback"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Send is one sub-tensor transfer scheduled in a round. Positions are
// logical chain indices (0..N-1), not die IDs; Orchestration binds
// them to physical dies.
type Send struct {
	From, To int
	SubT     int
}

// Schedule is a complete N-round stream execution plan.
type Schedule struct {
	N    int
	Mode Mode
	// Compute[t][j] is the sub-tensor index position j consumes in
	// round t.
	Compute [][]int
	// Sends[t] lists the transfers issued concurrently with round
	// t's compute; they arrive before round t+1.
	Sends [][]Send
	// PeakBuffer is the maximum number of sub-tensors simultaneously
	// resident on any position (includes the die's own shard).
	PeakBuffer int
	// VolumeFactor is the total transfer volume divided by the
	// naive ring's N·(N-1) sub-tensor sends. Both Ring and
	// Bidirectional conserve volume (factor 1): the bidirectional
	// schedule splits each sub-tensor's N-1 hops between the two
	// directions instead of doubling them.
	VolumeFactor float64
}

// RingSchedule builds the naive ring schedule: position j computes
// subT[(j+t) mod N] in round t and forwards it to position j-1.
func RingSchedule(n int) *Schedule {
	if n < 1 {
		panic("stream: non-positive group size")
	}
	s := &Schedule{N: n, Mode: Ring, VolumeFactor: 1}
	for t := 0; t < n; t++ {
		comp := make([]int, n)
		var sends []Send
		for j := 0; j < n; j++ {
			k := (j + t) % n
			comp[j] = k
			if t < n-1 {
				sends = append(sends, Send{From: j, To: (j - 1 + n) % n, SubT: k})
			}
		}
		s.Compute = append(s.Compute, comp)
		s.Sends = append(s.Sends, sends)
	}
	s.PeakBuffer = computePeakBuffer(s)
	return s
}

// BidirectionalSchedule builds TATP's chain schedule (the canonical
// form of Algorithm 1): ascending positions (j < ceil(N/2)) consume
// sub-tensors in increasing index order, descending positions in
// decreasing order, and every sub-tensor is relayed outward one hop
// per round in both directions from its origin.
func BidirectionalSchedule(n int) *Schedule {
	if n < 1 {
		panic("stream: non-positive group size")
	}
	s := &Schedule{N: n, Mode: Bidirectional}
	half := (n + 1) / 2
	var totalSends int
	for t := 0; t < n; t++ {
		comp := make([]int, n)
		for j := 0; j < n; j++ {
			if j < half {
				comp[j] = (j + t) % n
			} else {
				comp[j] = (j - t + n) % n
			}
		}
		var sends []Send
		// Leftward relay: subT[k] sits at position k-t in round t
		// and moves to k-t-1 (alive while it has not reached 0).
		for k := 0; k < n; k++ {
			if pos := k - t; pos-1 >= 0 && pos <= k {
				sends = append(sends, Send{From: pos, To: pos - 1, SubT: k})
			}
		}
		// Rightward relay: subT[k] sits at k+t and moves to k+t+1.
		for k := 0; k < n; k++ {
			if pos := k + t; pos+1 <= n-1 && pos >= k {
				sends = append(sends, Send{From: pos, To: pos + 1, SubT: k})
			}
		}
		totalSends += len(sends)
		s.Compute = append(s.Compute, comp)
		s.Sends = append(s.Sends, sends)
	}
	if n > 1 {
		s.VolumeFactor = float64(totalSends) / float64(n*(n-1))
	} else {
		s.VolumeFactor = 0
	}
	s.PeakBuffer = computePeakBuffer(s)
	return s
}

// computePeakBuffer simulates residency: a position buffers its own
// shard plus every received sub-tensor until it has both consumed it
// (if it ever does) and finished forwarding it.
func computePeakBuffer(s *Schedule) int {
	n := s.N
	// lastNeeded[pos][k]: the last round at which position pos
	// touches sub-tensor k (compute use or forward).
	last := make([][]int, n)
	arrive := make([][]int, n)
	for j := 0; j < n; j++ {
		last[j] = make([]int, n)
		arrive[j] = make([]int, n)
		for k := range last[j] {
			last[j][k] = -1
			arrive[j][k] = -1
		}
		arrive[j][j] = 0
	}
	for t, comp := range s.Compute {
		for j, k := range comp {
			if t > last[j][k] {
				last[j][k] = t
			}
		}
		for _, snd := range s.Sends[t] {
			if t > last[snd.From][snd.SubT] {
				last[snd.From][snd.SubT] = t
			}
			if arrive[snd.To][snd.SubT] < 0 || t+1 < arrive[snd.To][snd.SubT] {
				arrive[snd.To][snd.SubT] = t + 1
			}
		}
	}
	peak := 0
	for j := 0; j < n; j++ {
		for t := 0; t < s.N; t++ {
			live := 0
			for k := 0; k < n; k++ {
				if arrive[j][k] >= 0 && arrive[j][k] <= t && last[j][k] >= t {
					live++
				}
			}
			if live > peak {
				peak = live
			}
		}
	}
	return peak
}

// Validate checks the schedule's correctness invariants:
//
//  1. every position consumes every sub-tensor exactly once,
//  2. one compute per position per round,
//  3. a position only sends sub-tensors it holds (own shard, or
//     received in an earlier round),
//  4. every consumed sub-tensor has arrived by its use round.
func (s *Schedule) Validate() error {
	n := s.N
	if len(s.Compute) != n {
		return fmt.Errorf("stream: %d rounds, want %d", len(s.Compute), n)
	}
	// has[j][k]: earliest round sub-tensor k is available at j.
	has := make([][]int, n)
	for j := range has {
		has[j] = make([]int, n)
		for k := range has[j] {
			has[j][k] = -1
		}
		has[j][j] = 0
	}
	for t := 0; t < n; t++ {
		for j, k := range s.Compute[t] {
			if k < 0 || k >= n {
				return fmt.Errorf("stream: round %d pos %d uses invalid sub-tensor %d", t, j, k)
			}
			if has[j][k] < 0 || has[j][k] > t {
				return fmt.Errorf("stream: round %d pos %d uses sub-tensor %d before arrival", t, j, k)
			}
		}
		for _, snd := range s.Sends[t] {
			if snd.From < 0 || snd.From >= n || snd.To < 0 || snd.To >= n {
				return fmt.Errorf("stream: round %d send %+v out of range", t, snd)
			}
			if has[snd.From][snd.SubT] < 0 || has[snd.From][snd.SubT] > t {
				return fmt.Errorf("stream: round %d pos %d forwards sub-tensor %d it does not hold",
					t, snd.From, snd.SubT)
			}
		}
		for _, snd := range s.Sends[t] {
			if has[snd.To][snd.SubT] < 0 {
				has[snd.To][snd.SubT] = t + 1
			}
		}
	}
	for j := 0; j < n; j++ {
		seen := make([]bool, n)
		for t := 0; t < n; t++ {
			k := s.Compute[t][j]
			if seen[k] {
				return fmt.Errorf("stream: pos %d consumes sub-tensor %d twice", j, k)
			}
			seen[k] = true
		}
		for k, ok := range seen {
			if !ok {
				return fmt.Errorf("stream: pos %d never consumes sub-tensor %d", j, k)
			}
		}
	}
	return nil
}

// MaxSendsPerRound returns the largest per-round send count of any
// single position, which bounds the per-round link pressure.
func (s *Schedule) MaxSendsPerRound() int {
	max := 0
	for _, sends := range s.Sends {
		per := map[int]int{}
		for _, snd := range sends {
			per[snd.From]++
			if per[snd.From] > max {
				max = per[snd.From]
			}
		}
	}
	return max
}
