package solver

import (
	"context"
	"testing"

	"temp/internal/cost"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
)

// screenFor resolves the surrogate backend's operator model — the
// screening tier multifid explores on.
func screenFor(t *testing.T, m model.Config, w hw.Wafer) CostModel {
	t.Helper()
	be, err := cost.NewBackend(cost.BackendKey("surrogate", 7))
	if err != nil {
		t.Fatal(err)
	}
	screen, err := be.Operator(m, w)
	if err != nil {
		t.Fatal(err)
	}
	return screen
}

// TestMultiFidelityBeatsGAOnZoo is the acceptance criterion of the
// multi-fidelity refactor: on every zoo model, the surrogate-screened
// search must reach a final step time equal to or better than the
// pure-analytic GA while issuing at least 3× fewer exact cost-model
// evaluations — and its winner must be exact-verified, never a
// surrogate-priced cost.
//
// Models too large for the evaluation wafer (every configuration
// OOMs) have no step time; there the comparison is penalty-dominated
// and only required to agree within floating-point noise of the
// shared OOM penalty.
func TestMultiFidelityBeatsGAOnZoo(t *testing.T) {
	w := hw.EvaluationWafer()
	space := parallel.EnumerateConfigs(w.Dies(), true, 0)
	models := model.Zoo()
	if testing.Short() {
		models = []model.Config{model.GPT3_6_7B(), model.Llama3_70B()}
	}
	for _, m := range models {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			g := model.BlockGraph(m)
			cm := &Analytic{W: w, M: m}
			exact := Problem{Graph: g, Space: space, Model: cm}
			_, ga := (&GA{Seed: 7}).Solve(context.Background(), exact, Budget{})

			screened := exact
			screened.Screen = screenFor(t, m, w)
			a, mf := (&MultiFidelity{Seed: 7}).Solve(context.Background(), screened, Budget{})

			if mf.Strategy != "multifid" {
				t.Errorf("strategy name %q", mf.Strategy)
			}
			feasible := ga.FinalCost < oomPenalty
			if feasible {
				if mf.FinalCost > ga.FinalCost {
					t.Errorf("multifid cost %v worse than GA %v", mf.FinalCost, ga.FinalCost)
				}
			} else if mf.FinalCost > ga.FinalCost*(1+1e-9) {
				t.Errorf("infeasible instance: multifid penalty cost %v far above GA %v", mf.FinalCost, ga.FinalCost)
			}
			if 3*mf.Evaluations > ga.Evaluations {
				t.Errorf("multifid used %d exact evaluations, GA %d — want ≥3× fewer", mf.Evaluations, ga.Evaluations)
			}
			if mf.ScreenEvaluations == 0 {
				t.Error("no screen evaluations recorded — the cheap tier never ran")
			}
			// Never an unverified winner: the reported cost must be the
			// exact model's price of the returned assignment.
			if got := newEvaluator(cm, g.Ops, space).assignmentCost(a); got != mf.FinalCost {
				t.Errorf("reported cost %v ≠ exact re-price %v — winner left unverified", mf.FinalCost, got)
			}
		})
	}
}

// TestMultiFidelityDeterminism: same seed, same screen → identical
// assignment and stats at any worker count.
func TestMultiFidelityDeterminism(t *testing.T) {
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	p := Problem{
		Graph: model.BlockGraph(m),
		Space: parallel.EnumerateConfigs(w.Dies(), true, 0),
		Model: &Analytic{W: w, M: m},
	}
	p.Screen = screenFor(t, m, w)
	ref, refStats := (&MultiFidelity{Seed: 7}).Solve(context.Background(), p, Budget{Workers: 1})
	for _, workers := range []int{2, 8} {
		a, s := (&MultiFidelity{Seed: 7}).Solve(context.Background(), p, Budget{Workers: workers})
		if s.FinalCost != refStats.FinalCost || s.Evaluations != refStats.Evaluations {
			t.Errorf("workers=%d: cost/evals %v/%d ≠ serial %v/%d",
				workers, s.FinalCost, s.Evaluations, refStats.FinalCost, refStats.Evaluations)
		}
		for i := range a {
			if a[i] != ref[i] {
				t.Fatalf("workers=%d: assignment diverged at op %d", workers, i)
			}
		}
	}
}

// TestMultiFidelityFallsBackWithoutScreen: no screening model means
// the strategy degrades to the exact GA (same seed), keeping generic
// registry sweeps working.
func TestMultiFidelityFallsBackWithoutScreen(t *testing.T) {
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	p := Problem{
		Graph: model.BlockGraph(m),
		Space: parallel.EnumerateConfigs(w.Dies(), true, 0),
		Model: &Analytic{W: w, M: m},
	}
	aGA, ga := (&GA{Seed: 7}).Solve(context.Background(), p, Budget{})
	aMF, mf := (&MultiFidelity{Seed: 7}).Solve(context.Background(), p, Budget{})
	if mf.Strategy != "multifid" {
		t.Errorf("fallback renamed the strategy to %q", mf.Strategy)
	}
	if mf.FinalCost != ga.FinalCost || mf.Evaluations != ga.Evaluations {
		t.Errorf("fallback diverged from GA: %v/%d vs %v/%d",
			mf.FinalCost, mf.Evaluations, ga.FinalCost, ga.Evaluations)
	}
	for i := range aMF {
		if aMF[i] != aGA[i] {
			t.Fatalf("fallback assignment diverged at op %d", i)
		}
	}
}

// TestPortfolioGainsMultifidRacer: with a screening model on the
// problem, the portfolio races multifid too — and still never returns
// anything worse than the GA baseline.
func TestPortfolioGainsMultifidRacer(t *testing.T) {
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	p := Problem{
		Graph: model.BlockGraph(m),
		Space: parallel.EnumerateConfigs(w.Dies(), true, 0),
		Model: &Analytic{W: w, M: m},
	}
	p.Screen = screenFor(t, m, w)
	_, ga := (&GA{Seed: 7}).Solve(context.Background(), Problem{Graph: p.Graph, Space: p.Space, Model: p.Model}, Budget{})
	a, pf := (&Portfolio{Seed: 7}).Solve(context.Background(), p, Budget{})
	if len(pf.Sub) != 4 {
		t.Fatalf("portfolio raced %d strategies, want 4 (ga/anneal/hillclimb/multifid)", len(pf.Sub))
	}
	names := map[string]bool{}
	for _, s := range pf.Sub {
		names[s.Strategy] = true
	}
	if !names["multifid"] {
		t.Error("multifid racer missing from screened portfolio")
	}
	if pf.FinalCost > ga.FinalCost {
		t.Errorf("screened portfolio cost %v worse than GA %v", pf.FinalCost, ga.FinalCost)
	}
	if len(a) != len(p.Graph.Ops) {
		t.Fatalf("portfolio assignment covers %d ops", len(a))
	}
}
