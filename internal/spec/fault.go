package spec

import (
	"fmt"

	"temp/internal/fault"
	"temp/internal/solver"
)

// RepairSpec adds the degradation-aware repair stage to a scenario's
// fault injection: after the fault stage re-prices the winning
// configuration, one seeded mask is localized and re-solved on the
// degraded fabric (warm-started from the pre-fault mapping) and the
// Recovery record is reported alongside the survivability numbers.
type RepairSpec struct {
	// Strategy is the registered repair search strategy (default
	// "hillclimb").
	Strategy string `json:"strategy,omitempty"`
	// Seed drives the strategy's randomness; shorthand for
	// params["seed"] (the explicit param wins).
	Seed int64 `json:"seed,omitempty"`
	// Params are strategy tuning knobs by name.
	Params map[string]float64 `json:"params,omitempty"`
	// Budget bounds the repair search (default: a
	// fault.DefaultRepairEvals evaluation cap).
	Budget *BudgetSpec `json:"budget,omitempty"`
	// VerifyTop caps the exactly re-priced candidate configurations
	// (default 4).
	VerifyTop int `json:"verify_top,omitempty"`
	// Cold additionally runs the cold re-solve comparison.
	Cold bool `json:"cold,omitempty"`
}

// Options resolves the spec into repair options, validating the
// strategy name and params against the solver registry.
func (s RepairSpec) Options() (fault.RepairOptions, error) {
	if s.VerifyTop < 0 {
		return fault.RepairOptions{}, fmt.Errorf("spec: repair verify_top %d is negative", s.VerifyTop)
	}
	params := solver.Params{}
	for k, v := range s.Params {
		params[k] = v
	}
	if s.Seed != 0 {
		if _, ok := params["seed"]; !ok {
			params["seed"] = float64(s.Seed)
		}
	}
	name := s.Strategy
	if name == "" {
		name = "hillclimb"
	}
	if _, err := solver.NewStrategy(name, params); err != nil {
		return fault.RepairOptions{}, fmt.Errorf("spec: repair: %w", err)
	}
	ro := fault.RepairOptions{
		Strategy:  name,
		Params:    params,
		VerifyTop: s.VerifyTop,
		Cold:      s.Cold,
	}
	if s.Budget != nil {
		b, err := s.Budget.Budget()
		if err != nil {
			return fault.RepairOptions{}, err
		}
		ro.Budget = b
	}
	return ro, nil
}

// CampaignSpec adds a deterministic Monte Carlo fault campaign to a
// scenario's fault stage: the winning configuration is swept over a
// LinkRate × CoreRate grid and the survivability curves (functional
// rate, mean/P5 normalized throughput) are reported as JSON.
type CampaignSpec struct {
	// LinkRates × CoreRates is the injection grid; empty axes use the
	// fault package defaults.
	LinkRates []float64 `json:"link_rates,omitempty"`
	CoreRates []float64 `json:"core_rates,omitempty"`
	// CoresPerDie sizes the per-die core array (default 64).
	CoresPerDie int `json:"cores_per_die,omitempty"`
	// Trials is the Monte Carlo sample count per cell (default 8).
	Trials int `json:"trials,omitempty"`
	// Seed drives every trial's mask (default 42).
	Seed int64 `json:"seed,omitempty"`
}

// Validate reports structural problems with the spec.
func (s CampaignSpec) Validate() error {
	for _, r := range append(append([]float64(nil), s.LinkRates...), s.CoreRates...) {
		if r < 0 || r > 1 {
			return fmt.Errorf("spec: campaign rate %v outside [0,1]", r)
		}
	}
	if s.Trials < 0 {
		return fmt.Errorf("spec: campaign trials %d is negative", s.Trials)
	}
	return nil
}

// RobustSpec selects the robust solver objective: expected cost over
// a small ensemble of seeded fault masks, so the search trades a
// small fault-free premium for graceful degradation.
type RobustSpec struct {
	// Masks is the ensemble size (default 4).
	Masks int `json:"masks,omitempty"`
	// LinkRate/CoreRate/CoresPerDie describe the mask distribution; at
	// least one rate must be positive.
	LinkRate    float64 `json:"link_rate,omitempty"`
	CoreRate    float64 `json:"core_rate,omitempty"`
	CoresPerDie int     `json:"cores_per_die,omitempty"`
	// Seed draws the ensemble deterministically (default 42).
	Seed int64 `json:"seed,omitempty"`
	// FaultWeight is the probability mass on the faulted side of the
	// objective, in [0,1] (default 0.5).
	FaultWeight float64 `json:"fault_weight,omitempty"`
}

// Validate reports structural problems with the spec.
func (s RobustSpec) Validate() error {
	if s.Masks < 0 {
		return fmt.Errorf("spec: robust masks %d is negative", s.Masks)
	}
	if s.LinkRate < 0 || s.LinkRate > 1 || s.CoreRate < 0 || s.CoreRate > 1 {
		return fmt.Errorf("spec: robust fault rates must lie in [0,1]")
	}
	if s.LinkRate == 0 && s.CoreRate == 0 {
		return fmt.Errorf("spec: robust objective needs link_rate or core_rate > 0")
	}
	if s.FaultWeight < 0 || s.FaultWeight > 1 {
		return fmt.Errorf("spec: robust fault_weight %v outside [0,1]", s.FaultWeight)
	}
	return nil
}

// Injection returns the mask distribution.
func (s RobustSpec) Injection() fault.Injection {
	return fault.Injection{LinkRate: s.LinkRate, CoreRate: s.CoreRate, CoresPerDie: s.CoresPerDie}
}

// RandSeed returns the defaulted ensemble seed.
func (s RobustSpec) RandSeed() int64 {
	if s.Seed != 0 {
		return s.Seed
	}
	return 42
}
