//go:build race

package solver

// raceEnabled skips the allocation guards: the race detector's
// instrumentation allocates on paths that are allocation-free in
// normal builds.
const raceEnabled = true
