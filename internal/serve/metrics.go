package serve

import (
	"encoding/json"
	"net/http"

	"temp/internal/distrib"
	"temp/internal/engine"
)

// Metrics is the GET /metrics document: one JSON snapshot of every
// counter layer the daemon composes — HTTP traffic, admission
// control, the shared engine's cache/batch/coalesce counters, and
// (when attached) the distributed fabric's coordinator counters.
type Metrics struct {
	UptimeNS int64 `json:"uptime_ns"`
	// Requests/Errors/Streamed count HTTP-level outcomes.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	Streamed int64 `json:"streamed"`
	// Draining reports whether the server is refusing new solves;
	// DrainRejected counts the 503s served while draining, and
	// CanceledSolves the solves cut short by client disconnect or
	// drain-grace expiry. InflightSolves is the live solve count.
	Draining       bool  `json:"draining,omitempty"`
	DrainRejected  int64 `json:"drain_rejected,omitempty"`
	CanceledSolves int64 `json:"canceled_solves,omitempty"`
	InflightSolves int   `json:"inflight_solves"`
	// Scheduler is the admission-control snapshot.
	Scheduler SchedulerStats `json:"scheduler"`
	// Engine is the shared evaluation engine's counter snapshot
	// (process lifetime); ServedHits/ServedMisses/ServedDiskHits are
	// the deltas since this server was constructed — the server's own
	// traffic.
	Engine         engine.Stats `json:"engine"`
	ServedHits     int64        `json:"served_cache_hits"`
	ServedMisses   int64        `json:"served_cache_misses"`
	ServedDiskHits int64        `json:"served_cache_disk_hits"`
	// HitRatio is served hits (memory + disk) over all served
	// lookups; 0 when nothing was looked up yet.
	HitRatio float64 `json:"hit_ratio"`
	// Coalescing reports whether a cross-request miss coalescer is
	// attached to the engine.
	Coalescing bool `json:"coalescing"`
	// Workers is the engine worker-pool size.
	Workers int `json:"workers"`
	// Distrib is the worker fabric's live coordinator snapshot, when
	// one is attached.
	Distrib *distrib.Stats `json:"distrib,omitempty"`
}

// Metrics builds the current snapshot.
func (s *Server) Metrics() Metrics {
	es := engineSnapshot()
	m := Metrics{
		UptimeNS:       sinceNS(s.start),
		Requests:       s.reqTotal.Load(),
		Errors:         s.reqErrors.Load(),
		Streamed:       s.streamed.Load(),
		Scheduler:      s.sched.Stats(),
		Engine:         es,
		ServedHits:     es.Hits - s.startEngine.hits,
		ServedMisses:   es.Misses - s.startEngine.misses,
		ServedDiskHits: es.DiskHits - s.startEngine.diskHits,
		Coalescing:     engine.Coalescing(),
		Workers:        engine.Workers(),
		Draining:       s.draining.Load(),
		DrainRejected:  s.drainRejected.Load(),
		CanceledSolves: s.canceledSolves.Load(),
	}
	s.inflightMu.Lock()
	m.InflightSolves = len(s.inflight)
	s.inflightMu.Unlock()
	if total := m.ServedHits + m.ServedDiskHits + m.ServedMisses; total > 0 {
		m.HitRatio = float64(m.ServedHits+m.ServedDiskHits) / float64(total)
	}
	if s.opts.Fabric != nil {
		st := s.opts.Fabric.Snapshot()
		m.Distrib = &st
	}
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Metrics())
}
