// Package cost implements TEMP's wafer-centric cost model (§VII-A):
// it lowers one LLM training step under a hybrid parallel
// configuration onto the wafer mesh and produces latency (compute,
// stream, collective, pipeline-bubble), per-die memory occupancy,
// energy/power and throughput estimates. The same model evaluates the
// paper's baselines (Megatron-1, Megatron-3/MeSP, FSDP × SMap/GMap)
// and the A100 GPU cluster of Fig. 15, so every comparison in the
// evaluation runs through one consistent pipeline.
package cost

import (
	"fmt"

	"temp/internal/tcme"
)

// Engine selects the mapping engine (§VIII-A baselines).
type Engine int

// Mapping engines.
const (
	// SMap is the sequential mapper: logical ranks are flattened in
	// a fixed priority order onto row-major die IDs, producing
	// wrapped, non-contiguous groups with multi-hop communication.
	SMap Engine = iota
	// GMap is the Gemini-adapted mapper: groups land on contiguous
	// rectangles, but communication stays contention-agnostic.
	GMap
	// TCMEEngine is TEMP's traffic-conscious mapping engine:
	// rectangle placement plus the §VI-B communication optimizer.
	TCMEEngine
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case SMap:
		return "SMap"
	case GMap:
		return "GMap"
	case TCMEEngine:
		return "TCME"
	default:
		return fmt.Sprintf("engine(%d)", int(e))
	}
}

// Recompute selects the activation-recomputation policy, which
// dominates activation residency.
type Recompute int

// Recomputation policies.
const (
	// RecomputeNone stashes every intermediate activation
	// (including the attention score matrices when flash attention
	// is unavailable).
	RecomputeNone Recompute = iota
	// RecomputeSelective stashes the standard 34·s·b·h bytes per
	// layer (flash-attention-style selective recomputation).
	RecomputeSelective
	// RecomputeFull stashes only each layer's input (2·s·b·h bytes)
	// and re-runs the forward pass during backward.
	RecomputeFull
)

// String implements fmt.Stringer.
func (r Recompute) String() string {
	switch r {
	case RecomputeNone:
		return "none"
	case RecomputeSelective:
		return "selective"
	case RecomputeFull:
		return "full"
	default:
		return fmt.Sprintf("recompute(%d)", int(r))
	}
}

// Options configures one evaluation.
type Options struct {
	Engine    Engine
	Recompute Recompute
	// DistributedOptimizer shards FP32 optimizer state across all
	// weight-replica dimensions (ZeRO-1 style). Megatron-1 predates
	// it; every newer baseline and TEMP enable it.
	DistributedOptimizer bool
	// Microbatch is the number of sequences each data-parallel rank
	// processes per micro-step; the rest of the global batch is
	// covered by gradient accumulation. 0 means DefaultMicrobatch.
	Microbatch int
	// TCME tunes the optimizer when Engine == TCMEEngine.
	TCME tcme.Options
	// Wafers is the number of wafers; PP in the parallel config
	// spreads pipeline stages across them (§VIII-E). 0 means 1.
	Wafers int
	// DisableStreamOverlap turns off TATP's compute/communication
	// overlap (ablation: pure TSPP without pipelined rounds).
	DisableStreamOverlap bool
	// ForceStreamWeights disables the selective transfer policy and
	// always streams sub-weights, the canonical TSPP dataflow of
	// Fig. 8 / Algorithm 1. The Fig. 9 sweet-spot study uses it.
	ForceStreamWeights bool
	// NoFlashAttention disables the flash-attention/online-softmax
	// fusion of Fig. 12 operators 4–7: attention score matrices then
	// spill to DRAM and are stashed for backward. Megatron-1
	// predates these kernels; TEMP and the newer baselines have them
	// (§VII-A).
	NoFlashAttention bool
	// AdaptiveRebalance enables TEMP's fault-tolerance step 2
	// (Fig. 20(a)): sub-tensor sizes are re-balanced to each die's
	// surviving core capacity, so degraded dies slow the system by
	// the mean capacity loss instead of the worst die's.
	AdaptiveRebalance bool
}

// DefaultMicrobatch is the per-rank micro-step size in sequences.
const DefaultMicrobatch = 4

func (o Options) microbatch() int {
	if o.Microbatch > 0 {
		return o.Microbatch
	}
	return DefaultMicrobatch
}

func (o Options) wafers() int {
	if o.Wafers > 0 {
		return o.Wafers
	}
	return 1
}

// TEMPOptions returns the options TEMP itself runs with.
func TEMPOptions() Options {
	return Options{
		Engine:               TCMEEngine,
		Recompute:            RecomputeSelective,
		DistributedOptimizer: true,
	}
}
