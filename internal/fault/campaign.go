package fault

import (
	"fmt"
	"math/rand"
	"sort"

	"temp/internal/cost"
	"temp/internal/engine"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
)

// TrialSeed derives the RNG seed of one Monte Carlo trial from the
// campaign seed and the trial's grid coordinates (splitmix64
// finalizer). Every trial owns an independent seeded RNG, so the
// campaign is bit-identical at any worker count and any evaluation
// order — unlike a single RNG streamed across trials, where
// parallelism would reorder the draws.
func TrialSeed(seed int64, cell, trial int) int64 {
	z := uint64(seed) ^ 0x9e3779b97f4a7c15*uint64(cell+1) ^ 0xbf58476d1ce4e5b9*uint64(trial+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z &^ (1 << 63))
}

// Campaign is a deterministic Monte Carlo fault campaign: a
// LinkRate × CoreRate grid of injections, each cell sampled over
// Trials seeded masks, fanned through the engine worker pool. The
// output survivability curves answer the §VIII-F question at scale:
// at which fault rates does this mapping stop being functional, and
// how much throughput does the adaptive tolerance retain on the way
// down.
type Campaign struct {
	Model   model.Config
	Wafer   hw.Wafer
	Config  parallel.Config
	Opts    cost.Options
	Backend string
	// LinkRates × CoreRates is the injection grid (defaults:
	// DefaultLinkRates × DefaultCoreRates).
	LinkRates []float64
	CoreRates []float64
	// CoresPerDie sizes the per-die core array (default 64).
	CoresPerDie int
	// Trials is the Monte Carlo sample count per cell (default 8).
	Trials int
	// Seed drives every trial's mask via TrialSeed (default 42).
	Seed int64
	// Workers bounds the fan-out (0 = GOMAXPROCS). Results are
	// bit-identical at any worker count.
	Workers int
}

// Default campaign grid: the Fig. 20 sweep region, crossed.
var (
	DefaultLinkRates = []float64{0, 0.1, 0.2, 0.3, 0.4}
	DefaultCoreRates = []float64{0, 0.1, 0.2}
)

// CellStats is the survivability summary of one (LinkRate, CoreRate)
// grid cell.
type CellStats struct {
	LinkRate float64 `json:"link_rate"`
	CoreRate float64 `json:"core_rate"`
	// FunctionalRate is the fraction of trials whose degraded fabric
	// still placed and priced the configuration.
	FunctionalRate float64 `json:"functional_rate"`
	// MeanNorm / P5Norm / MinNorm summarize normalized throughput
	// across trials (non-functional trials count as zero). P5Norm is
	// the lower 5th percentile (floor-indexed order statistic).
	MeanNorm float64 `json:"mean_norm"`
	P5Norm   float64 `json:"p5_norm"`
	MinNorm  float64 `json:"min_norm"`
}

// CampaignResult is the JSON-serializable campaign output.
type CampaignResult struct {
	Model   string `json:"model"`
	Wafer   string `json:"wafer"`
	Config  string `json:"config"`
	Backend string `json:"backend"`
	Trials  int    `json:"trials"`
	Seed    int64  `json:"seed"`
	// BaselineTokens is the fault-free throughput every norm is
	// relative to.
	BaselineTokens float64 `json:"baseline_tokens_per_sec"`
	// Cells are the grid cells in link-major order.
	Cells []CellStats `json:"cells"`
}

// Run executes the campaign. Deterministic: per-trial RNGs are seeded
// by TrialSeed and every trial writes its own result slot, so any
// worker count produces bit-identical output.
func (c Campaign) Run() (CampaignResult, error) {
	trials := c.Trials
	if trials <= 0 {
		trials = 8
	}
	seed := c.Seed
	if seed == 0 {
		seed = 42
	}
	links := c.LinkRates
	if len(links) == 0 {
		links = DefaultLinkRates
	}
	cores := c.CoreRates
	if len(cores) == 0 {
		cores = DefaultCoreRates
	}
	for _, r := range append(append([]float64(nil), links...), cores...) {
		if r < 0 || r > 1 {
			return CampaignResult{}, fmt.Errorf("fault: campaign rate %v outside [0,1]", r)
		}
	}
	base, err := cost.EvaluateWith(c.Backend, c.Model, c.Wafer, c.Config, c.Opts)
	if err != nil {
		return CampaignResult{}, fmt.Errorf("fault: campaign baseline: %w", err)
	}
	if base.ThroughputTokens <= 0 {
		return CampaignResult{}, fmt.Errorf("fault: campaign baseline throughput is not positive")
	}

	type cell struct{ link, core float64 }
	var cells []cell
	for _, lr := range links {
		for _, cr := range cores {
			cells = append(cells, cell{lr, cr})
		}
	}
	n := len(cells) * trials
	norms := make([]float64, n)
	functional := make([]bool, n)
	engine.ForEach(c.Workers, n, func(i int) {
		ci, ti := i/trials, i%trials
		in := Injection{
			LinkRate:    cells[ci].link,
			CoreRate:    cells[ci].core,
			CoresPerDie: c.CoresPerDie,
		}
		rng := rand.New(rand.NewSource(TrialSeed(seed, ci, ti)))
		out := EvaluateWith(c.Backend, c.Model, c.Wafer, c.Config, c.Opts, in, rng)
		if out.Functional {
			norms[i] = out.Breakdown.ThroughputTokens / base.ThroughputTokens
			functional[i] = true
		}
	})

	backend := cost.CanonicalBackendKey(c.Backend)
	if backend == "" {
		backend = "analytic"
	}
	res := CampaignResult{
		Model: c.Model.Name, Wafer: c.Wafer.Name, Config: c.Config.Normalize().String(),
		Backend: backend, Trials: trials, Seed: seed,
		BaselineTokens: base.ThroughputTokens,
	}
	sorted := make([]float64, trials)
	for ci, cl := range cells {
		st := CellStats{LinkRate: cl.link, CoreRate: cl.core}
		var sum float64
		fn := 0
		for ti := 0; ti < trials; ti++ {
			v := norms[ci*trials+ti]
			sum += v
			sorted[ti] = v
			if functional[ci*trials+ti] {
				fn++
			}
		}
		sort.Float64s(sorted)
		st.FunctionalRate = float64(fn) / float64(trials)
		st.MeanNorm = sum / float64(trials)
		st.P5Norm = sorted[(trials-1)*5/100]
		st.MinNorm = sorted[0]
		res.Cells = append(res.Cells, st)
	}
	return res, nil
}
