package surrogate

import (
	"math/rand"
	"testing"
	"time"

	"temp/internal/hw"
)

func TestGenerateShapes(t *testing.T) {
	w := hw.EvaluationWafer()
	rng := rand.New(rand.NewSource(1))
	for _, cat := range []Category{Compute, Comm, Overlap} {
		ds := Generate(cat, 50, w, rng)
		if len(ds) != 50 {
			t.Fatalf("%v: %d samples", cat, len(ds))
		}
		dim := len(ds[0].Features)
		for _, s := range ds {
			if len(s.Features) != dim {
				t.Fatalf("%v: ragged features", cat)
			}
			if s.TargetMS <= 0 {
				t.Fatalf("%v: non-positive target %v", cat, s.TargetMS)
			}
		}
	}
}

func TestCategoryStrings(t *testing.T) {
	if Compute.String() != "compute" || Comm.String() != "communication" || Overlap.String() != "overlap" {
		t.Error("category strings wrong")
	}
}

// TestFig21Accuracy is the acceptance test for the §VIII-G claims:
// the DNN cost model achieves high correlation and single-digit
// percentage error, beating the linear-regression baseline.
func TestFig21Accuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	w := hw.EvaluationWafer()
	for _, cat := range []Category{Compute, Comm, Overlap} {
		rng := rand.New(rand.NewSource(100 + int64(cat)))
		train := Generate(cat, 1200, w, rng)
		test := Generate(cat, 400, w, rng)
		dnn := TrainDNN(train, rng)
		lin := TrainLinear(train)
		de := Validate(dnn, test)
		le := Validate(lin, test)
		if de.Corr < 0.97 {
			t.Errorf("%v: DNN corr %.3f, want ≥0.97 (paper ≥0.988)", cat, de.Corr)
		}
		if de.MAPE > 12 {
			t.Errorf("%v: DNN error %.1f%%, want ≤12%% (paper ~4.4%%)", cat, de.MAPE)
		}
		if de.MAPE >= le.MAPE {
			t.Errorf("%v: DNN error %.1f%% not below linear %.1f%%", cat, de.MAPE, le.MAPE)
		}
		if de.PerCall > time.Millisecond {
			t.Errorf("%v: DNN lookup %v too slow (paper: hundreds of µs)", cat, de.PerCall)
		}
	}
}

func TestLinearUnderfitsCompute(t *testing.T) {
	w := hw.EvaluationWafer()
	rng := rand.New(rand.NewSource(9))
	train := Generate(Compute, 600, w, rng)
	test := Generate(Compute, 200, w, rng)
	lin := TrainLinear(train)
	le := Validate(lin, test)
	if le.MAPE < 10 {
		t.Errorf("linear regression MAPE %.1f%% suspiciously good on a multiplicative target", le.MAPE)
	}
}

func TestDNNDeterministicWithSeed(t *testing.T) {
	w := hw.EvaluationWafer()
	mk := func() float64 {
		rng := rand.New(rand.NewSource(4))
		train := Generate(Overlap, 200, w, rng)
		d := TrainDNN(train, rng)
		return d.Predict(train[0].Features)
	}
	if a, b := mk(), mk(); a != b {
		t.Errorf("same seed, different predictions: %v vs %v", a, b)
	}
}
