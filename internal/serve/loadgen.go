package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"temp/internal/spec"
)

// LoadOptions configures the load generator.
type LoadOptions struct {
	// URL is the daemon's base address ("http://127.0.0.1:8080").
	URL string
	// Clients is the number of concurrent request loops (default 8).
	Clients int
	// Repeat replays each mix entry this many times per pass
	// (default 1).
	Repeat int
	// Passes is how many full sweeps over the mix to run (default 2:
	// one cold, one warm — the warm/cold throughput ratio is the
	// cache-effectiveness headline).
	Passes int
	// Mix is the request workload. Stream is forced off for load
	// requests; the verify pass uses the mix as-is.
	Mix []spec.RequestSpec
	// Verify re-solves each distinct mix entry locally after the load
	// passes and byte-compares the served results against the direct
	// path.
	Verify bool
	// Timeout bounds each HTTP request (default 5 minutes).
	Timeout time.Duration
	// Max503Retries bounds how many times one request is retried after
	// a 503 (overload or drain), honoring the server's Retry-After
	// hint. Default 3; negative disables retries (503 = hard failure).
	Max503Retries int
	// MaxRetryWait caps each Retry-After sleep so load loops stay
	// snappy even when the server hints multi-second waits (default
	// 250 ms; the hint is advisory for a load generator).
	MaxRetryWait time.Duration
}

// PassReport summarizes one sweep over the mix.
type PassReport struct {
	Pass      int     `json:"pass"`
	Requests  int     `json:"requests"`
	Errors    int     `json:"errors"`
	ElapsedNS int64   `json:"elapsed_ns"`
	SolvesSec float64 `json:"solves_per_sec"`
	// Latency percentiles over successful requests (whole-request
	// wall clock, queue wait included).
	P50NS int64 `json:"p50_ns"`
	P95NS int64 `json:"p95_ns"`
	P99NS int64 `json:"p99_ns"`
	// MeanQueueNS is the server-reported admission-queue wait.
	MeanQueueNS int64 `json:"mean_queue_wait_ns"`
	// Retries503 counts 503 responses absorbed by bounded retry
	// (overload backpressure or a draining server) across the pass.
	Retries503 int64 `json:"retries_503"`
	// Hits/Misses/DiskHits are the engine-counter deltas across the
	// pass (from /metrics); HitRatio = (hits+disk)/(hits+disk+misses).
	Hits     int64   `json:"cache_hits"`
	Misses   int64   `json:"cache_misses"`
	DiskHits int64   `json:"cache_disk_hits"`
	HitRatio float64 `json:"hit_ratio"`
}

// VerifyReport is the served-vs-direct bit-identity check.
type VerifyReport struct {
	Checked  int    `json:"checked"`
	Match    bool   `json:"match"`
	Mismatch string `json:"mismatch,omitempty"`
}

// LoadReport is the full load-test document (-loadtest -json).
type LoadReport struct {
	URL     string        `json:"url"`
	Clients int           `json:"clients"`
	Passes  []PassReport  `json:"passes"`
	Metrics *Metrics      `json:"server_metrics,omitempty"`
	Verify  *VerifyReport `json:"verify,omitempty"`
	// WarmSpeedup is last-pass throughput over first-pass throughput:
	// the shared-cache effectiveness headline.
	WarmSpeedup float64 `json:"warm_speedup"`
}

// RunLoad drives the daemon at URL with Clients concurrent request
// loops replaying the mix for Passes sweeps, then optionally verifies
// served results against the direct in-process path.
func RunLoad(o LoadOptions) (LoadReport, error) {
	if o.Clients < 1 {
		o.Clients = 8
	}
	if o.Repeat < 1 {
		o.Repeat = 1
	}
	if o.Passes < 1 {
		o.Passes = 2
	}
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Minute
	}
	if len(o.Mix) == 0 {
		return LoadReport{}, fmt.Errorf("serve: load mix is empty")
	}
	client := &http.Client{Timeout: o.Timeout}
	rep := LoadReport{URL: o.URL, Clients: o.Clients}

	// Pre-marshal the load bodies once (stream forced off).
	bodies := make([][]byte, len(o.Mix))
	for i, req := range o.Mix {
		req.Stream = false
		buf, err := json.Marshal(req)
		if err != nil {
			return rep, err
		}
		bodies[i] = buf
	}

	for pass := 0; pass < o.Passes; pass++ {
		before, err := fetchMetrics(client, o.URL)
		if err != nil {
			return rep, err
		}
		pr := runPass(client, o, bodies, pass, newRetrier(o))
		after, err := fetchMetrics(client, o.URL)
		if err != nil {
			return rep, err
		}
		pr.Hits = after.Engine.Hits - before.Engine.Hits
		pr.Misses = after.Engine.Misses - before.Engine.Misses
		pr.DiskHits = after.Engine.DiskHits - before.Engine.DiskHits
		if total := pr.Hits + pr.DiskHits + pr.Misses; total > 0 {
			pr.HitRatio = float64(pr.Hits+pr.DiskHits) / float64(total)
		}
		rep.Passes = append(rep.Passes, pr)
		if pass == o.Passes-1 {
			rep.Metrics = &after
		}
	}
	first, last := rep.Passes[0], rep.Passes[len(rep.Passes)-1]
	if first.SolvesSec > 0 {
		rep.WarmSpeedup = last.SolvesSec / first.SolvesSec
	}

	if o.Verify {
		v := verifyMix(client, o)
		rep.Verify = &v
	}
	return rep, nil
}

// runPass sweeps the mix once with the configured concurrency.
func runPass(client *http.Client, o LoadOptions, bodies [][]byte, pass int, rt *retrier) PassReport {
	jobs := o.Repeat * len(bodies)
	var next atomic.Int64
	latencies := make([]int64, jobs)
	queueWaits := make([]int64, jobs)
	errs := make([]bool, jobs)
	started := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < o.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= jobs {
					return
				}
				t0 := time.Now()
				resp, err := rt.postSolve(client, o.URL, bodies[i%len(bodies)])
				latencies[i] = time.Since(t0).Nanoseconds()
				if err != nil {
					errs[i] = true
					continue
				}
				queueWaits[i] = resp.QueueWaitNS
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(started)

	pr := PassReport{Pass: pass, Requests: jobs, ElapsedNS: elapsed.Nanoseconds(), Retries503: rt.count.Load()}
	var ok []int64
	var queueTotal int64
	for i, l := range latencies {
		if errs[i] {
			pr.Errors++
			continue
		}
		ok = append(ok, l)
		queueTotal += queueWaits[i]
	}
	if n := len(ok); n > 0 {
		sort.Slice(ok, func(a, b int) bool { return ok[a] < ok[b] })
		pr.P50NS = percentile(ok, 0.50)
		pr.P95NS = percentile(ok, 0.95)
		pr.P99NS = percentile(ok, 0.99)
		pr.MeanQueueNS = queueTotal / int64(n)
		pr.SolvesSec = float64(n) / elapsed.Seconds()
	}
	return pr
}

// percentile reads the q-quantile from ascending-sorted ns.
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// verifyMix byte-compares each distinct mix entry's served results
// against the direct in-process solve — the determinism contract the
// whole cache/coalesce/fabric stack must preserve.
func verifyMix(client *http.Client, o LoadOptions) VerifyReport {
	rt := newRetrier(o)
	v := VerifyReport{Match: true}
	for i, req := range o.Mix {
		req.Stream = false
		body, err := json.Marshal(req)
		if err != nil {
			return VerifyReport{Mismatch: err.Error()}
		}
		served, err := rt.postSolve(client, o.URL, body)
		if err != nil {
			return VerifyReport{Checked: v.Checked, Mismatch: fmt.Sprintf("mix[%d]: served: %v", i, err)}
		}
		direct, err := RunRequest(req)
		if err != nil {
			return VerifyReport{Checked: v.Checked, Mismatch: fmt.Sprintf("mix[%d]: direct: %v", i, err)}
		}
		a, _ := json.Marshal(CanonicalResults(served.Results))
		b, _ := json.Marshal(CanonicalResults(direct))
		if !bytes.Equal(a, b) {
			return VerifyReport{Checked: v.Checked, Mismatch: fmt.Sprintf("mix[%d]: served results differ from direct solve", i)}
		}
		v.Checked++
	}
	return v
}

// retrier is the shared 503-retry policy: the load loops and the
// verify pass absorb overload/drain backpressure with bounded retry,
// honoring (a capped form of) the server's Retry-After hint.
type retrier struct {
	max     int
	maxWait time.Duration
	count   atomic.Int64
}

// newRetrier materializes the options' retry policy.
func newRetrier(o LoadOptions) *retrier {
	rt := &retrier{max: o.Max503Retries, maxWait: o.MaxRetryWait}
	if rt.max == 0 {
		rt.max = 3
	}
	if rt.max < 0 {
		rt.max = 0
	}
	if rt.maxWait <= 0 {
		rt.maxWait = 250 * time.Millisecond
	}
	return rt
}

// postSolve POSTs one request body with bounded 503 retry.
func (rt *retrier) postSolve(client *http.Client, base string, body []byte) (Response, error) {
	for attempt := 0; ; attempt++ {
		resp, retryAfter, err := postSolveOnce(client, base, body)
		if err == nil || retryAfter < 0 || attempt >= rt.max {
			return resp, err
		}
		rt.count.Add(1)
		if retryAfter > rt.maxWait {
			retryAfter = rt.maxWait
		}
		time.Sleep(retryAfter)
	}
}

// postSolveOnce POSTs one request body and decodes the response.
// retryAfter is the server's Retry-After hint on a 503 (1 s when the
// header is absent or unparseable) and -1 for every other outcome.
func postSolveOnce(client *http.Client, base string, body []byte) (resp Response, retryAfter time.Duration, err error) {
	retryAfter = -1
	httpResp, err := client.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		return Response{}, retryAfter, err
	}
	defer httpResp.Body.Close()
	buf, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return Response{}, retryAfter, err
	}
	if httpResp.StatusCode != http.StatusOK {
		if httpResp.StatusCode == http.StatusServiceUnavailable {
			retryAfter = time.Second
			if secs, perr := strconv.Atoi(httpResp.Header.Get("Retry-After")); perr == nil && secs >= 0 {
				retryAfter = time.Duration(secs) * time.Second
			}
		}
		var eb errorBody
		if json.Unmarshal(buf, &eb) == nil && eb.Error != "" {
			return Response{}, retryAfter, fmt.Errorf("%s (HTTP %d)", eb.Error, httpResp.StatusCode)
		}
		return Response{}, retryAfter, fmt.Errorf("HTTP %d", httpResp.StatusCode)
	}
	if err := json.Unmarshal(buf, &resp); err != nil {
		return Response{}, -1, err
	}
	return resp, -1, nil
}

// fetchMetrics GETs and decodes /metrics.
func fetchMetrics(client *http.Client, base string) (Metrics, error) {
	httpResp, err := client.Get(base + "/metrics")
	if err != nil {
		return Metrics{}, err
	}
	defer httpResp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(httpResp.Body).Decode(&m); err != nil {
		return Metrics{}, err
	}
	return m, nil
}

// LoadMix reads every *.json file in dir as the load mix. Each file
// is a request envelope, or a bare scenario spec (wrapped into a
// single-scenario request), so existing scenario files work as a mix
// directly.
func LoadMix(dir string) ([]spec.RequestSpec, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: mix dir: %w", err)
	}
	var mix []spec.RequestSpec
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		req, rerr := spec.ParseRequest(data)
		if rerr == nil && req.Validate() == nil {
			if req.ID == "" {
				req.ID = strings.TrimSuffix(e.Name(), ".json")
			}
			mix = append(mix, req)
			continue
		}
		ss, serr := spec.ParseScenario(data)
		if serr != nil || ss.Validate() != nil {
			return nil, fmt.Errorf("serve: %s is neither a request envelope (%v) nor a scenario (%v)", path, rerr, serr)
		}
		if ss.Name == "" {
			ss.Name = strings.TrimSuffix(e.Name(), ".json")
		}
		mix = append(mix, spec.RequestSpec{ID: ss.Name, Scenario: &ss})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("serve: no *.json mix files in %s", dir)
	}
	return mix, nil
}
