package spec

import (
	"encoding/json"
	"testing"
)

func TestCostSpecKeyAndBuild(t *testing.T) {
	cases := []struct {
		spec CostSpec
		key  string
	}{
		{CostSpec{}, ""},
		{CostSpec{Backend: "analytic"}, ""},
		{CostSpec{Backend: "Replay"}, "replay"},
		{CostSpec{Backend: "replay", Seed: 9}, "replay"},
		{CostSpec{Backend: "surrogate"}, "surrogate@seed=1"},
		{CostSpec{Backend: "surrogate", Seed: 42}, "surrogate@seed=42"},
		// A seed embedded in the name (the CLI key form) wins over the
		// Seed field, so "-backend surrogate@seed=42" composes with
		// the default -seed.
		{CostSpec{Backend: "surrogate@seed=42", Seed: 7}, "surrogate@seed=42"},
	}
	for _, tc := range cases {
		if got := tc.spec.Key(); got != tc.key {
			t.Errorf("CostSpec%+v.Key() = %q, want %q", tc.spec, got, tc.key)
		}
		stage, err := tc.spec.Build()
		if err != nil {
			t.Errorf("CostSpec%+v.Build(): %v", tc.spec, err)
			continue
		}
		if stage.Key != tc.key {
			t.Errorf("stage key %q, want %q", stage.Key, tc.key)
		}
		if stage.Backend == nil {
			t.Errorf("CostSpec%+v built nil backend", tc.spec)
		}
	}
	if err := (CostSpec{Backend: "no-such-tier"}).Validate(); err == nil {
		t.Error("unknown backend validated")
	}
}

func TestScenarioCostStageRoundTrip(t *testing.T) {
	raw := []byte(`{
		"name": "surrogate-run",
		"model": "gpt3-6.7b",
		"wafer": "wsc-4x8",
		"cost": {"backend": "surrogate", "seed": 42},
		"config": {"dp": 2, "tp": 4, "tatp": 4}
	}`)
	ss, err := ParseScenario(raw)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Cost == nil || ss.Cost.Backend != "surrogate" || ss.Cost.Seed != 42 {
		t.Fatalf("cost stage did not parse: %+v", ss.Cost)
	}
	sc, err := ss.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Cost == nil || sc.Cost.Key != "surrogate@seed=42" {
		t.Fatalf("resolved cost stage %+v", sc.Cost)
	}
	// JSON round-trip preserves the stage.
	buf, err := json.Marshal(ss)
	if err != nil {
		t.Fatal(err)
	}
	ss2, err := ParseScenario(buf)
	if err != nil {
		t.Fatal(err)
	}
	if ss2.Cost == nil || *ss2.Cost != *ss.Cost {
		t.Fatalf("round-trip lost the cost stage: %+v", ss2.Cost)
	}
	// Unknown backends fail at Resolve with the scenario's name.
	bad := ss
	bad.Cost = &CostSpec{Backend: "fpga"}
	if _, err := bad.Resolve(); err == nil {
		t.Error("unknown backend resolved")
	}
}

func TestCostOverride(t *testing.T) {
	if stage, err := CostOverride("", 7); err != nil || stage != nil {
		t.Errorf("empty override = %v, %v; want nil, nil", stage, err)
	}
	stage, err := CostOverride("surrogate", 7)
	if err != nil {
		t.Fatal(err)
	}
	if stage.Key != "surrogate@seed=7" {
		t.Errorf("override key %q", stage.Key)
	}
	if _, err := CostOverride("warp-drive", 7); err == nil {
		t.Error("unknown override accepted")
	}
}
