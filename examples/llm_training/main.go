// llm_training reproduces the core Fig. 13 comparison on one model:
// the six baseline systems (Megatron-1, MeSP, FSDP × SMap/GMap)
// against TEMP, each at its best configuration, with latency and
// memory side by side.
package main

import (
	"fmt"
	"log"

	"temp"
)

func main() {
	w := temp.EvaluationWafer()
	for _, m := range []temp.Model{temp.GPT3_6_7B(), temp.Llama3_70B()} {
		fmt.Printf("=== %s on %s ===\n", m.Name, w.Name)
		rs, err := temp.CompareAll(m, w)
		if err != nil {
			log.Fatal(err)
		}
		var tempStep float64
		for _, r := range rs {
			if r.System == "TEMP" {
				tempStep = r.StepTime
			}
		}
		fmt.Printf("%-11s %-30s %-6s %-9s %-9s %s\n",
			"system", "best config", "status", "step(s)", "mem/die", "TEMP speedup")
		for _, r := range rs {
			status, speed := "ok", "-"
			if !r.Feasible {
				status = "OOM"
			} else if r.System != "TEMP" {
				speed = fmt.Sprintf("%.2fx", r.StepTime/tempStep)
			}
			fmt.Printf("%-11s %-30s %-6s %-9.3f %-9s %s\n",
				r.System, r.Config.String(), status, r.StepTime,
				fmt.Sprintf("%.1fGB", r.Memory.Total()/1e9), speed)
		}
		fmt.Println()
	}
}
