package solver

import (
	"context"

	"temp/internal/engine"
)

// Portfolio races several strategies on the same problem across the
// engine's worker pool and returns the best assignment any of them
// finds. Each racer gets its own evaluator (so per-racer stats stay
// deterministic) and a serial inner budget — the race itself is the
// parallelism. The first racer is the GA with the portfolio's own
// seed, so the portfolio never returns a worse assignment than the
// GA baseline under the same budget; ties break toward the earlier
// racer.
type Portfolio struct {
	// Subs are the raced strategies. Empty defaults to
	// {ga, anneal, hillclimb} seeded from Seed.
	Subs []Strategy
	// Seed derives the default racers' seeds.
	Seed int64
}

// newPortfolio builds the registered "portfolio" strategy from
// params.
func newPortfolio(p Params) (Strategy, error) {
	if err := p.checkKnown("portfolio", "seed"); err != nil {
		return nil, err
	}
	return &Portfolio{Seed: p.seed()}, nil
}

// Name implements Strategy.
func (s *Portfolio) Name() string { return "portfolio" }

// defaultRacers is the local-search trio (GA first, so races seeded
// from it are never worse than the GA baseline) shared by the
// portfolio's race and the multifid strategy's screening stage.
func defaultRacers(seed int64) []Strategy {
	return []Strategy{
		&GA{Seed: seed},
		&Anneal{Seed: seed + 1},
		&HillClimb{Seed: seed + 2},
	}
}

// racers returns the configured or default sub-strategies. When the
// problem carries a screening model, the surrogate-screened
// multi-fidelity search joins the default race (it verifies on the
// exact model, so the portfolio's winner stays exact-priced).
func (s *Portfolio) racers(p Problem) []Strategy {
	if len(s.Subs) > 0 {
		return s.Subs
	}
	out := defaultRacers(s.Seed)
	if p.Screen != nil {
		out = append(out, &MultiFidelity{Seed: s.Seed + 3})
	}
	return out
}

// Solve implements Strategy. Budget.MaxEvals applies per racer (each
// owns its evaluator, so every racer searches under the same eval
// budget); Budget.Deadline is global — it is converted to a shared
// context deadline before the race, so total wall-clock stays bounded
// even when the workers bound serializes racers.
func (s *Portfolio) Solve(ctx context.Context, p Problem, b Budget) (Assignment, Stats) {
	stats := Stats{Strategy: s.Name()}
	if !p.valid() {
		return nil, stats
	}
	subs := s.racers(p)
	inner := b
	inner.Workers = 1
	if b.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, b.Deadline)
		defer cancel()
		inner.Deadline = 0
	}
	assigns := make([]Assignment, len(subs))
	subStats := make([]Stats, len(subs))
	engine.ForEach(b.Workers, len(subs), func(i int) {
		assigns[i], subStats[i] = subs[i].Solve(ctx, p, inner)
	})

	winner := 0
	for i := 1; i < len(subs); i++ {
		if subStats[i].FinalCost < subStats[winner].FinalCost {
			winner = i
		}
	}
	stats.Sub = subStats
	stats.Winner = subStats[winner].Strategy
	stats.DPCost = subStats[winner].DPCost
	stats.FinalCost = subStats[winner].FinalCost
	stats.Generations = subStats[winner].Generations
	stats.Iterations = subStats[winner].Iterations
	stats.Restarts = subStats[winner].Restarts
	stats.Checkpoints = subStats[winner].Checkpoints
	for _, ss := range subStats {
		stats.Evaluations += ss.Evaluations
		stats.ScreenEvaluations += ss.ScreenEvaluations
		if ss.Elapsed > stats.Elapsed {
			stats.Elapsed = ss.Elapsed
		}
	}
	return assigns[winner], stats
}
