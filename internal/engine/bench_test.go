package engine

import (
	"testing"

	"temp/internal/cost"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
)

// benchJobs is a Fig. 17-shaped sweep: the full TATP-enabled
// configuration space of the evaluation wafer for one 7B model.
func benchJobs() []Job {
	w := hw.EvaluationWafer()
	m := model.Llama2_7B()
	cfgs := parallel.EnumerateConfigs(w.Dies(), true, 0)
	jobs := make([]Job, 0, len(cfgs))
	for _, cfg := range cfgs {
		jobs = append(jobs, Job{Model: m, Wafer: w, Config: cfg, Opts: cost.TEMPOptions()})
	}
	return jobs
}

// BenchmarkSweepSerial evaluates the sweep on one worker with a cold
// cache each iteration — the pre-engine baseline.
func BenchmarkSweepSerial(b *testing.B) {
	jobs := benchJobs()
	b.ReportMetric(float64(len(jobs)), "configs")
	for i := 0; i < b.N; i++ {
		New(1).Sweep(jobs)
	}
}

// BenchmarkSweepParallel evaluates the same cold sweep across
// GOMAXPROCS workers; on a multi-core runner it scales near-linearly
// with cores.
func BenchmarkSweepParallel(b *testing.B) {
	jobs := benchJobs()
	b.ReportMetric(float64(len(jobs)), "configs")
	for i := 0; i < b.N; i++ {
		New(0).Sweep(jobs)
	}
}

// BenchmarkSweepCached measures the steady state the experiment
// runners see when a figure revisits a swept space: pure cache hits.
func BenchmarkSweepCached(b *testing.B) {
	jobs := benchJobs()
	p := New(0)
	p.Sweep(jobs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Sweep(jobs)
	}
}
