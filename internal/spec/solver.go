package spec

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"temp/internal/solver"
)

// BudgetSpec bounds a solver-stage search: distinct cost-model
// evaluations, wall-clock time, and the checkpoint interval for
// best-so-far snapshots. The zero spec is an unlimited budget.
type BudgetSpec struct {
	// Evals caps distinct cost-model evaluations (0 = unlimited).
	Evals int `json:"evals,omitempty"`
	// Time is a Go duration ("30s", "500ms") capping wall-clock
	// search time.
	Time string `json:"time,omitempty"`
	// Checkpoint records a best-so-far snapshot every N
	// iterations/generations (0 = none).
	Checkpoint int `json:"checkpoint,omitempty"`
}

// Budget converts to the solver representation.
func (s BudgetSpec) Budget() (solver.Budget, error) {
	if s.Evals < 0 {
		return solver.Budget{}, fmt.Errorf("spec: budget evals %d is negative", s.Evals)
	}
	if s.Checkpoint < 0 {
		return solver.Budget{}, fmt.Errorf("spec: budget checkpoint %d is negative", s.Checkpoint)
	}
	b := solver.Budget{MaxEvals: s.Evals, Checkpoint: s.Checkpoint}
	if s.Time != "" {
		d, err := time.ParseDuration(s.Time)
		if err != nil {
			return solver.Budget{}, fmt.Errorf("spec: budget time: %w", err)
		}
		if d <= 0 {
			return solver.Budget{}, fmt.Errorf("spec: budget time %q is not positive", s.Time)
		}
		b.Deadline = d
	}
	return b, nil
}

// SolverSpec selects a partition-mapping search strategy by
// registered name plus tuning params — the optimizer axis of a
// scenario, serializable like every other spec. The zero spec is the
// paper's GA with default options.
type SolverSpec struct {
	// Strategy is a registered strategy name (ga | anneal |
	// hillclimb | dp | portfolio); empty defaults to ga.
	Strategy string `json:"strategy,omitempty"`
	// Seed drives the strategy's randomness; shorthand for
	// params["seed"] (the explicit param wins).
	Seed int64 `json:"seed,omitempty"`
	// Params are strategy tuning knobs by name ("population",
	// "iterations", ...); unknown knobs are rejected.
	Params map[string]float64 `json:"params,omitempty"`
	// Budget optionally bounds the search.
	Budget *BudgetSpec `json:"budget,omitempty"`
	// Robust selects the robust objective: the search minimizes
	// expected cost over a seeded fault-mask ensemble instead of the
	// fault-free cost alone.
	Robust *RobustSpec `json:"robust,omitempty"`
}

// StrategyName returns the defaulted strategy name.
func (s SolverSpec) StrategyName() string {
	if s.Strategy == "" {
		return "ga"
	}
	return strings.ToLower(strings.TrimSpace(s.Strategy))
}

// Validate reports structural problems with the spec.
func (s SolverSpec) Validate() error {
	_, err := s.Build()
	return err
}

// SolverStage is a resolved SolverSpec: the built strategy, its
// budget, the name it resolved under, and the seed that drove it
// (reused by the surrogate screening tier when no cost stage pins
// one).
type SolverStage struct {
	Name     string
	Strategy solver.Strategy
	Budget   solver.Budget
	Seed     int64
	// Robust carries the validated robust-objective block; the
	// scenario runner builds the ensemble model from it (it needs the
	// resolved model/wafer pair).
	Robust *RobustSpec
}

// Build resolves the spec against the solver's strategy registry.
func (s SolverSpec) Build() (*SolverStage, error) {
	params := solver.Params{}
	for k, v := range s.Params {
		params[k] = v
	}
	if s.Seed != 0 {
		if _, ok := params["seed"]; !ok {
			params["seed"] = float64(s.Seed)
		}
	}
	st, err := solver.NewStrategy(s.StrategyName(), params)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	stage := &SolverStage{Name: s.StrategyName(), Strategy: st, Seed: int64(params["seed"])}
	if s.Budget != nil {
		if stage.Budget, err = s.Budget.Budget(); err != nil {
			return nil, err
		}
	}
	if s.Robust != nil {
		if err := s.Robust.Validate(); err != nil {
			return nil, err
		}
		stage.Robust = s.Robust
	}
	return stage, nil
}

// SolverOverride builds the stage the CLI -strategy/-budget flags
// inject into scenario runs (overriding any spec-declared stage);
// nil when both flags are unset.
func SolverOverride(strategy, budget string, seed int64, workers int) (*SolverStage, error) {
	if strategy == "" && budget == "" {
		return nil, nil
	}
	if strategy == "" {
		strategy = "ga"
	}
	st, err := solver.NewStrategy(strategy, solver.Params{"seed": float64(seed)})
	if err != nil {
		return nil, err
	}
	b, err := ParseBudget(budget)
	if err != nil {
		return nil, err
	}
	b.Workers = workers
	return &SolverStage{Name: strategy, Strategy: st, Budget: b, Seed: seed}, nil
}

// ParseBudget parses a CLI -budget flag: an integer evaluation cap
// ("20000"), a Go duration deadline ("30s"), or both comma-separated
// ("20000,30s"). Empty means unlimited. Zero or negative caps and
// deadlines are rejected, as is naming either key twice ("10,20" or
// "5s,30s") — a duplicate almost always means a typo'd mixed budget,
// and silently keeping the last value would bound the search
// differently than the user asked.
func ParseBudget(s string) (solver.Budget, error) {
	var b solver.Budget
	haveEvals, haveDeadline := false, false
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if n, err := strconv.Atoi(tok); err == nil {
			if n <= 0 {
				return solver.Budget{}, fmt.Errorf("spec: budget evals %d is not positive", n)
			}
			if haveEvals {
				return solver.Budget{}, fmt.Errorf("spec: budget %q sets the eval cap twice (%d and %d)", s, b.MaxEvals, n)
			}
			haveEvals = true
			b.MaxEvals = n
			continue
		}
		d, err := time.ParseDuration(tok)
		if err != nil {
			return solver.Budget{}, fmt.Errorf("spec: budget %q is neither an eval count nor a duration", tok)
		}
		if d <= 0 {
			return solver.Budget{}, fmt.Errorf("spec: budget deadline %q is not positive", tok)
		}
		if haveDeadline {
			return solver.Budget{}, fmt.Errorf("spec: budget %q sets the deadline twice (%s and %s)", s, b.Deadline, d)
		}
		haveDeadline = true
		b.Deadline = d
	}
	return b, nil
}
