// Package sim is the end-to-end facade: it composes the baseline
// descriptors, the cost model and the solver into the evaluations
// the paper's figures report — single-wafer system comparisons,
// ablations and multi-wafer pipeline scaling.
package sim

import (
	"fmt"

	"temp/internal/baselines"
	"temp/internal/cost"
	"temp/internal/engine"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
)

// CompareAll evaluates the six baselines plus TEMP at each system's
// best configuration (the Fig. 13/14 footing) and returns results in
// A–F,TEMP order. The per-system sweeps run concurrently on the
// shared evaluation engine; a repeated comparison (Fig. 14 after
// Fig. 13) is served from its cache.
func CompareAll(m model.Config, w hw.Wafer) ([]baselines.Result, error) {
	systems := append(baselines.Six(), baselines.TEMP())
	out := make([]baselines.Result, len(systems))
	errs := make([]error, len(systems))
	engine.Map(len(systems), func(i int) {
		out[i], errs[i] = baselines.Best(systems[i], m, w)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sim: %s on %s: %w", systems[i].Name, m.Name, err)
		}
	}
	return out, nil
}

// Ablation evaluates the Fig. 16 ladder: Base (FSDP+SMap), Base+TATP
// (stream partitioning under the same naive mapper), and
// Base+TATP+TCME (the full TEMP engine), each at its best
// configuration.
func Ablation(m model.Config, w hw.Wafer) ([3]baselines.Result, error) {
	var out [3]baselines.Result
	base, err := baselines.Best(baselines.FSDP(cost.SMap), m, w)
	if err != nil {
		return out, err
	}
	out[0] = base
	out[0].System = "Base"

	// The ablation keeps the base system's FSDP sharding and layers
	// TATP on top — the FSDP-allgather × TATP-stream hybrid whose
	// contention Fig. 11 dissects.
	tatpConfigs := func(dies int) []parallel.Config {
		var cs []parallel.Config
		for _, c := range parallel.EnumerateConfigs(dies, true, 0) {
			if c.TATP >= 2 && c.DP >= 2 {
				c.FSDP = true
				cs = append(cs, c)
			}
		}
		return cs
	}
	tatp := baselines.System{
		Name:    "Base+TATP",
		Opts:    cost.Options{Engine: cost.SMap, Recompute: cost.RecomputeSelective, DistributedOptimizer: true},
		Configs: tatpConfigs,
	}
	r1, err := baselines.Best(tatp, m, w)
	if err != nil {
		return out, err
	}
	out[1] = r1

	full := baselines.TEMP()
	full.Name = "Base+TATP+TCME"
	full.Configs = tatpConfigs
	r2, err := baselines.Best(full, m, w)
	if err != nil {
		return out, err
	}
	out[2] = r2
	return out, nil
}

// MultiWafer evaluates a system on a multi-wafer assembly (§VIII-E):
// pipeline stages span wafers; baselines may only pick PP from
// multiples of the wafer count (their Fig. 19 failure mode), while
// TEMP holds PP at the wafer count and uses TATP inside each wafer.
func MultiWafer(s baselines.System, m model.Config, w hw.Wafer, wafers int) (baselines.Result, error) {
	opts := s.Opts
	opts.Wafers = wafers
	isTEMP := s.Name == "TEMP"

	ppChoices := []int{wafers, 2 * wafers}
	if isTEMP {
		ppChoices = []int{wafers}
	}
	var jobs []engine.Job
	for _, pp := range ppChoices {
		stageWafer := w
		if pp > wafers {
			// Multiple stages per wafer: each stage gets a half
			// wafer.
			stageWafer = hw.WaferWithGrid(w.Rows, w.Cols/2)
			stageWafer.Die = w.Die
			stageWafer.Link = w.Link
			stageWafer.InterWaferBandwidth = w.InterWaferBandwidth
			stageWafer.InterWaferLatency = w.InterWaferLatency
		}
		for _, cfg := range s.Space(mesh(stageWafer)) {
			cfg.PP = pp
			jobs = append(jobs, engine.Job{Model: m, Wafer: stageWafer, Config: cfg, Opts: opts, Backend: s.Backend})
		}
	}
	best := baselines.Result{System: s.Name}
	found := false
	for i, r := range engine.Sweep(jobs) {
		if r.Err != nil || r.Breakdown.OOM() {
			continue
		}
		b := r.Breakdown
		if !found || b.StepTime < best.StepTime {
			best = baselines.Result{System: s.Name, Config: jobs[i].Config, Breakdown: b, Feasible: true}
			found = true
		}
	}
	if !found {
		return best, fmt.Errorf("sim: no feasible multi-wafer config for %s on %s", s.Name, m.Name)
	}
	return best, nil
}

func mesh(w hw.Wafer) int { return w.Dies() }
