package cost

import (
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
	"temp/internal/unit"
)

// EvaluateCluster runs the analytic GPU-cluster model of Fig. 15: a
// switched topology (NVSwitch inside a node, InfiniBand across
// nodes), so collectives always find physical rings and pay no mesh
// contention — but at an order of magnitude less bandwidth than
// wafer D2D links. The strategy follows Megatron-3 conventions: TP
// (with fused SP) inside nodes, DP across nodes.
func EvaluateCluster(m model.Config, c hw.Cluster, cfg parallel.Config, o Options) (Breakdown, error) {
	cfg = cfg.Normalize()
	gpus := c.GPUs()
	if err := cfg.Validate(gpus); err != nil {
		return Breakdown{}, err
	}

	mb := o.microbatch()
	perRank := maxInt(m.Batch/maxInt(cfg.DP, 1), 1)
	if mb > perRank {
		mb = perRank
	}
	microSteps := maxInt(perRank/mb, 1)
	graph := model.BlockGraph(m)

	// Compute: identical operator shards, GPU peak. Same conventions
	// as the wafer model: vector ops replicate across TP unless SP
	// is fused; flash-fused ops never touch DRAM.
	gemmShard := float64(cfg.TP * cfg.SP * cfg.CP * cfg.TATP)
	vecShard := float64(cfg.SP * cfg.CP * cfg.TATP)
	if cfg.MegatronSP {
		vecShard *= float64(cfg.TP)
	}
	frac := float64(mb) / float64(m.Batch)
	var fwdComp, attn float64
	for _, op := range graph.Ops {
		var t float64
		if op.Kind.IsGEMM() {
			shard := op.FLOPs * frac / gemmShard
			eff := shard / (shard + gemmHalfEff)
			if eff < 0.05 {
				eff = 0.05
			}
			t = shard / (c.GPUPeakFLOPS * eff)
		} else {
			shard := op.FLOPs * frac / vecShard
			t = shard / c.GPUVectorFLOPS
			if !op.FlashFused {
				bytes := (op.Input.Bytes() + op.Output.Bytes()) * frac / vecShard
				t = unit.MaxF(t, bytes/c.GPUMemBandwidth)
			}
		}
		fwdComp += t
		if op.FlashFused {
			attn += t
		}
	}
	var recompExtra float64
	switch o.Recompute {
	case RecomputeFull:
		recompExtra = fwdComp
	case RecomputeSelective:
		recompExtra = attn
	}

	// TP all-reduce inside a node: NVSwitch provides in-network
	// reduction (SHARP-style), so the all-reduce moves each byte
	// through the switch once instead of 2(N-1)/N ring passes — the
	// switch-routing advantage §V credits GPU clusters with.
	switchAR := func(n int, bytes float64) float64 {
		if n <= 1 || bytes <= 0 {
			return 0
		}
		return bytes/c.IntraNodeBandwidth + 2*c.IntraNodeLatency
	}
	ringTime := func(n int, bytes, bw, lat float64) float64 {
		if n <= 1 || bytes <= 0 {
			return 0
		}
		return 2*float64(n-1)/float64(n)*bytes/bw + float64(2*(n-1))*lat
	}
	h := float64(m.Hidden)
	fp := unit.FP16.Size()
	sAR := float64(m.Seq) / float64(cfg.SP*cfg.CP*cfg.TATP)
	arBytes := float64(mb) * sAR * h * fp
	collPerLayer := 2 * switchAR(cfg.TP, arBytes)

	layerFwd := fwdComp + collPerLayer
	layerBwd := 2*fwdComp + recompExtra + collPerLayer
	microTime := float64(m.Layers) * (layerFwd + layerBwd)

	// DP gradient all-reduce across nodes over InfiniBand.
	grads := graph.WeightBytes() * float64(m.Layers) / float64(cfg.TP*cfg.TATP)
	dpAR := ringTime(cfg.DP, grads, c.InterNodeBandwidth, c.InterNodeLatency)
	dpExposed := unit.MaxF(0, dpAR-0.5*float64(m.Layers)*layerBwd)

	// Memory: reuse the wafer breakdown against GPU capacity.
	fakeWafer := hw.Wafer{
		Rows: 1, Cols: gpus,
		Die: hw.Die{
			HBMBytes: c.GPUMemBytes, HBMStacks: 1, HBMBandwidth: c.GPUMemBandwidth,
			PeakFLOPS: c.GPUPeakFLOPS, FLOPSPerWatt: c.FLOPSPerWatt,
			VectorFLOPS: c.GPUVectorFLOPS, HBMEnergyPerBit: 7 * unit.PicoJoule,
		},
	}
	mem := MemoryPerDie(m, fakeWafer, cfg, o, m.Layers)
	optimTime := 3 * mem.Optimizer / c.GPUMemBandwidth

	stepTime := float64(microSteps)*microTime + dpExposed + optimTime

	totalFLOPs := 3 * float64(m.Layers) * graph.ForwardFLOPs()
	commBytes := float64(microSteps) * float64(m.Layers) * 2 * arBytes * float64(gpus)
	commBytes += grads * float64(gpus)
	b := Breakdown{
		Model:          m.Name + " (GPU)",
		Config:         cfg,
		Engine:         GMap,
		StepTime:       stepTime,
		ComputeTime:    float64(microSteps) * float64(m.Layers) * (3*fwdComp + recompExtra),
		CollectiveTime: float64(microSteps)*float64(m.Layers)*2*collPerLayer + dpExposed,
		OptimizerTime:  optimTime,
		Memory:         mem,
		EnergyCompute:  totalFLOPs / c.FLOPSPerWatt,
		EnergyComm:     commBytes * 8 * c.EnergyPerBitIntra,
	}
	dram := float64(microSteps)*(3*mem.Weights+6*mem.Activations/float64(m.Layers)) + 3*mem.Optimizer
	b.EnergyDRAM = dram * float64(gpus) * 8 * 7 * unit.PicoJoule
	b.ThroughputTokens = float64(m.Tokens()) / stepTime
	b.Power = (b.EnergyCompute + b.EnergyComm + b.EnergyDRAM) / stepTime
	if b.Power > 0 {
		b.PowerEfficiency = b.ThroughputTokens / b.Power
	}
	return b, nil
}
