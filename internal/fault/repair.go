package fault

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"temp/internal/cost"
	"temp/internal/hw"
	"temp/internal/mesh"
	"temp/internal/model"
	"temp/internal/parallel"
	"temp/internal/solver"
)

// DegradedModel builds the search cost model for a fault-degraded
// topology: the replay operator model pinned to the degraded mesh, so
// candidate configurations are ranked by how their TATP streams and TP
// collectives actually route around dead links (the closed-form
// analytic tier cannot see the fault mask at all). The topology is
// interned so repeated models on the same mask share lowering caches.
func DegradedModel(m model.Config, w hw.Wafer, topo *mesh.Topology) solver.CostModel {
	return cost.NewOperatorReplayOn(m, w, topo.Intern())
}

// RepairOptions tunes the degradation-aware repair search.
type RepairOptions struct {
	// Backend names the cost tier pricing the exact verification and
	// the fault-free baseline ("" = analytic).
	Backend string
	// Strategy is the registered search strategy re-solving on the
	// degraded fabric (default "hillclimb" — the warm start makes a
	// local search the natural repair move).
	Strategy string
	// Seed drives the strategy's randomness (shorthand for
	// Params["seed"]; the explicit param wins).
	Seed int64
	// Params are extra strategy tuning knobs.
	Params solver.Params
	// Budget bounds the warm (and cold) searches. A zero budget gets
	// a default cap of DefaultRepairEvals evaluations so repair stays
	// an online operation.
	Budget solver.Budget
	// VerifyTop caps how many distinct candidate configurations from
	// the search are exactly re-priced on the degraded topology
	// (default 4). The pre-fault configuration is always compared, so
	// repair is never reported worse than re-price-only.
	VerifyTop int
	// Cold additionally runs the same strategy without the warm start
	// (chain-DP seeding) for the Recovery comparison.
	Cold bool
}

// DefaultRepairEvals caps the repair search when no budget is given.
const DefaultRepairEvals = 4000

// Recovery reports one repair-solving run: what the fault did, what
// re-pricing the old mapping salvages, and what re-solving on the
// degraded fabric recovers — with the evaluation and wall-clock cost
// of recovering it.
type Recovery struct {
	// Report is the localization of the fault mask.
	Report Report `json:"report"`
	// Functional is false when the surviving fabric cannot run any
	// configuration (all norms are then zero).
	Functional bool `json:"functional"`
	// BaselineTokens is the fault-free throughput (tokens/s) the norms
	// below are relative to.
	BaselineTokens float64 `json:"baseline_tokens_per_sec"`
	// RepriceNorm is the pre-fault mapping re-priced on the degraded
	// fabric — what a system without repair solving keeps.
	RepriceNorm float64 `json:"reprice_norm"`
	// RepairedNorm is the best normalized throughput recovered by the
	// warm-started repair search (never below RepriceNorm).
	RepairedNorm float64 `json:"repaired_norm"`
	// RepairedConfig is the configuration achieving RepairedNorm.
	RepairedConfig parallel.Config `json:"repaired_config"`
	// ColdNorm is the cold re-solve's recovered norm (0 unless
	// RepairOptions.Cold).
	ColdNorm float64 `json:"cold_norm,omitempty"`
	// WarmEvals/WarmElapsed are the evals- and wall-clock-to-recover
	// of the warm-started search; Cold* are the cold re-solve's.
	WarmEvals   int           `json:"warm_evals"`
	WarmElapsed time.Duration `json:"warm_elapsed"`
	ColdEvals   int           `json:"cold_evals,omitempty"`
	ColdElapsed time.Duration `json:"cold_elapsed,omitempty"`
	// Strategy names the search strategy that ran.
	Strategy string `json:"strategy"`
}

// Repair re-solves the partition mapping on an already-degraded
// topology (Fig. 20(a) steps: localize, re-partition, re-route — plus
// the re-*solve* the paper's framework-level story implies): the
// search warm-starts from the pre-fault mapping via Budget.Resume on
// the interned degraded mesh, then the top candidate configurations
// are exactly re-priced on it. The pre-fault configuration is always
// one candidate, so the recovery is at worst re-price-only.
func Repair(m model.Config, w hw.Wafer, pre parallel.Config, o cost.Options,
	topo *mesh.Topology, ro RepairOptions) (Recovery, error) {
	topo = topo.Intern()
	rep := Localize(topo)
	base, err := cost.EvaluateWith(ro.Backend, m, w, pre, o)
	if err != nil {
		return Recovery{}, fmt.Errorf("fault: repair baseline: %w", err)
	}
	if base.ThroughputTokens <= 0 {
		return Recovery{}, fmt.Errorf("fault: repair baseline throughput is not positive")
	}
	rec := Recovery{Report: rep, BaselineTokens: base.ThroughputTokens}
	if !rep.Connected {
		return rec, nil
	}
	if b, ok := priceDegraded(ro.Backend, m, w, pre, o, topo); ok {
		rec.RepriceNorm = b.ThroughputTokens / base.ThroughputTokens
	}

	g := model.BlockGraph(m)
	space := parallel.EnumerateConfigs(w.Dies(), true, 0)
	p := solver.Problem{Graph: g, Space: space, Model: DegradedModel(m, w, topo)}
	name := ro.Strategy
	if name == "" {
		name = "hillclimb"
	}
	params := solver.Params{}
	for k, v := range ro.Params {
		params[k] = v
	}
	if _, ok := params["seed"]; !ok {
		params["seed"] = float64(ro.Seed)
	}
	verifyTop := ro.VerifyTop
	if verifyTop <= 0 {
		verifyTop = 4
	}

	solve := func(warm bool) (parallel.Config, float64, solver.Stats, error) {
		st, err := solver.NewStrategy(name, params)
		if err != nil {
			return parallel.Config{}, 0, solver.Stats{}, fmt.Errorf("fault: repair strategy: %w", err)
		}
		b := ro.Budget
		if b.MaxEvals == 0 && b.Deadline == 0 {
			b.MaxEvals = DefaultRepairEvals
		}
		if warm {
			if a, ok := solver.UniformAssignment(space, pre, len(g.Ops)); ok {
				b.Resume = a
			}
		}
		a, stats := st.Solve(context.Background(), p, b)
		cfg, norm := verifyCandidates(ro.Backend, m, w, o, topo, space, a, verifyTop, base.ThroughputTokens)
		return cfg, norm, stats, nil
	}

	cfg, norm, stats, err := solve(true)
	if err != nil {
		return Recovery{}, err
	}
	rec.Strategy = stats.Strategy
	rec.WarmEvals = stats.Evaluations
	rec.WarmElapsed = stats.Elapsed
	rec.RepairedNorm, rec.RepairedConfig = norm, cfg
	if rec.RepriceNorm >= rec.RepairedNorm {
		rec.RepairedNorm, rec.RepairedConfig = rec.RepriceNorm, pre.Normalize()
	}
	rec.Functional = rec.RepairedNorm > 0

	if ro.Cold {
		_, coldNorm, coldStats, err := solve(false)
		if err != nil {
			return Recovery{}, err
		}
		rec.ColdNorm = coldNorm
		rec.ColdEvals = coldStats.Evaluations
		rec.ColdElapsed = coldStats.Elapsed
	}
	return rec, nil
}

// RepairInjected is Repair on a freshly injected fault mask: the
// injection is applied to the wafer's pristine mesh with a seeded RNG
// (deterministic per seed), then repaired.
func RepairInjected(m model.Config, w hw.Wafer, pre parallel.Config, o cost.Options,
	in Injection, seed int64, ro RepairOptions) (Recovery, error) {
	topo := mesh.FromWafer(w).Clone()
	in.Apply(topo, rand.New(rand.NewSource(seed)))
	return Repair(m, w, pre, o, topo, ro)
}

// verifyCandidates exactly re-prices the most-used distinct
// configurations of a search result on the degraded topology and
// returns the best (screen-then-verify: the degraded replay model
// ranks, the backend tier decides).
func verifyCandidates(backend string, m model.Config, w hw.Wafer, o cost.Options,
	topo *mesh.Topology, space []parallel.Config, a solver.Assignment,
	verifyTop int, baseTokens float64) (parallel.Config, float64) {
	counts := map[int]int{}
	for _, c := range a {
		if c >= 0 && c < len(space) {
			counts[c]++
		}
	}
	order := make([]int, 0, len(counts))
	for c := range counts {
		order = append(order, c)
	}
	sort.Slice(order, func(i, j int) bool {
		if counts[order[i]] != counts[order[j]] {
			return counts[order[i]] > counts[order[j]]
		}
		return order[i] < order[j]
	})
	if len(order) > verifyTop {
		order = order[:verifyTop]
	}
	var bestCfg parallel.Config
	var bestNorm float64
	for _, c := range order {
		if b, ok := priceDegraded(backend, m, w, space[c], o, topo); ok {
			if norm := b.ThroughputTokens / baseTokens; norm > bestNorm {
				bestNorm, bestCfg = norm, space[c]
			}
		}
	}
	return bestCfg, bestNorm
}
