package model

import (
	"math"
	"testing"
)

// TestTableIIConfigs pins the Table II parameter configurations.
func TestTableIIConfigs(t *testing.T) {
	tests := []struct {
		cfg                               Config
		heads, batch, hidden, layers, seq int
	}{
		{GPT3_6_7B(), 32, 128, 4096, 32, 2048},
		{Llama2_7B(), 32, 128, 4096, 32, 4096},
		{Llama3_70B(), 64, 128, 8192, 80, 4096},
		{GPT3_76B(), 80, 128, 10240, 60, 2048},
		{GPT3_175B(), 96, 128, 12288, 96, 2048},
		{OPT_175B(), 96, 128, 12288, 96, 4096},
	}
	for _, tc := range tests {
		c := tc.cfg
		if c.Heads != tc.heads || c.Batch != tc.batch || c.Hidden != tc.hidden ||
			c.Layers != tc.layers || c.Seq != tc.seq {
			t.Errorf("%s = %+v, want heads=%d batch=%d hidden=%d layers=%d seq=%d",
				c.Name, c, tc.heads, tc.batch, tc.hidden, tc.layers, tc.seq)
		}
	}
}

// TestParamsMatchNominalSizes checks parameter counts land within 20%
// of each model's nominal size.
func TestParamsMatchNominalSizes(t *testing.T) {
	tests := []struct {
		cfg     Config
		nominal float64
	}{
		{GPT3_6_7B(), 6.7e9},
		{Llama2_7B(), 7e9},
		{Llama3_70B(), 70e9},
		{GPT3_76B(), 76e9},
		{GPT3_175B(), 175e9},
		{OPT_175B(), 175e9},
		{Grok1_341B(), 341e9},
		{Llama3_405B(), 405e9},
		{GPT3_504B(), 504e9},
	}
	for _, tc := range tests {
		got := float64(tc.cfg.Params())
		if r := got / tc.nominal; r < 0.8 || r > 1.25 {
			t.Errorf("%s params = %.2e, nominal %.2e (ratio %.2f)", tc.cfg.Name, got, tc.nominal, r)
		}
	}
}

func TestDerivedQuantities(t *testing.T) {
	c := GPT3_6_7B()
	if c.Intermediate() != 4*4096 {
		t.Errorf("Intermediate = %d", c.Intermediate())
	}
	if c.HeadDim() != 128 {
		t.Errorf("HeadDim = %d", c.HeadDim())
	}
	if c.Tokens() != 128*2048 {
		t.Errorf("Tokens = %d", c.Tokens())
	}
	if c.ParamBytes() != float64(c.Params())*2 {
		t.Errorf("ParamBytes = %v", c.ParamBytes())
	}
}

// TestLayerFLOPsApproximation: for short sequences, per-layer forward
// FLOPs ≈ 2·tokens·12H² within 10% (attention adds the rest).
func TestLayerFLOPsApproximation(t *testing.T) {
	c := GPT3_175B()
	tokens := float64(c.Tokens())
	h := float64(c.Hidden)
	gemmOnly := 2 * tokens * 12 * h * h
	got := c.LayerFLOPs()
	if got <= gemmOnly {
		t.Errorf("LayerFLOPs %v should exceed GEMM-only %v (attention term)", got, gemmOnly)
	}
	if got > 1.25*gemmOnly {
		t.Errorf("LayerFLOPs %v too large vs GEMM-only %v", got, gemmOnly)
	}
}

func TestTrainFLOPsRule(t *testing.T) {
	c := GPT3_6_7B()
	if got, want := c.TrainFLOPs(), 3*float64(c.Layers)*c.LayerFLOPs(); got != want {
		t.Errorf("TrainFLOPs = %v, want %v", got, want)
	}
}

func TestActivationBytesGrowWithSeq(t *testing.T) {
	short := Llama2_7B()
	long := Llama2_7B().WithSeq(16384, short.Batch)
	if long.ActivationBytesPerLayer() <= short.ActivationBytesPerLayer() {
		t.Error("activation bytes should grow with sequence length")
	}
	// Quadratic attention term: 8× seq at same batch must grow >8×.
	ratio := long.ActivationBytesPerLayer() / short.ActivationBytesPerLayer()
	if ratio < 4 {
		t.Errorf("activation growth ratio = %.1f, want super-linear", ratio)
	}
}

func TestWithSeq(t *testing.T) {
	c := GPT3_6_7B().WithSeq(16384, 32)
	if c.Seq != 16384 || c.Batch != 32 {
		t.Errorf("WithSeq = %+v", c)
	}
	// batch 0 keeps the original batch.
	c2 := GPT3_6_7B().WithSeq(16384, 0)
	if c2.Batch != 128 {
		t.Errorf("WithSeq(.,0) batch = %d", c2.Batch)
	}
}

func TestEvaluationModels(t *testing.T) {
	ms := EvaluationModels()
	if len(ms) != 6 {
		t.Fatalf("EvaluationModels = %d entries, want 6", len(ms))
	}
	names := map[string]bool{}
	for _, m := range ms {
		if names[m.Name] {
			t.Errorf("duplicate model %s", m.Name)
		}
		names[m.Name] = true
	}
}

// TestLlamaActivationVsWeightRatio validates the §V claim that drives
// the selective transfer policy: at long sequence lengths Llama2-7B
// activations are ~3× larger than the layer's weights.
func TestLlamaActivationVsWeightRatio(t *testing.T) {
	c := Llama2_7B().WithSeq(14336, 32)
	g := BlockGraph(c)
	// Compare the FC1 input activation against its weight tensor.
	var fc1 Op
	for _, o := range g.Ops {
		if o.Name == "fc1" {
			fc1 = o
		}
	}
	ratio := fc1.Input.Bytes() / fc1.Weight.Bytes()
	if ratio < 2 {
		t.Errorf("activation/weight ratio = %.2f, want ≥2 at 14k sequence", ratio)
	}
	// At short sequences with small batch, weights dominate instead.
	cs := Llama2_7B().WithSeq(512, 8)
	gs := BlockGraph(cs)
	for _, o := range gs.Ops {
		if o.Name == "fc1" {
			if r := o.Input.Bytes() / o.Weight.Bytes(); r > 1 {
				t.Errorf("short-seq ratio = %.2f, want <1", r)
			}
		}
	}
}

func TestLayerParamsConsistent(t *testing.T) {
	for _, c := range EvaluationModels() {
		perLayer := float64(c.LayerParams())
		total := float64(c.Params())
		embed := float64(c.Vocab) * float64(c.Hidden)
		if math.Abs(total-(float64(c.Layers)*perLayer+embed)) > 1 {
			t.Errorf("%s: Params inconsistent with LayerParams", c.Name)
		}
	}
}
