package fault

import (
	"fmt"
	"math/rand"
	"sort"

	"temp/internal/cost"
	"temp/internal/engine"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
)

// TrialSeed derives the RNG seed of one Monte Carlo trial from the
// campaign seed and the trial's grid coordinates (splitmix64
// finalizer). Every trial owns an independent seeded RNG, so the
// campaign is bit-identical at any worker count and any evaluation
// order — unlike a single RNG streamed across trials, where
// parallelism would reorder the draws.
func TrialSeed(seed int64, cell, trial int) int64 {
	z := uint64(seed) ^ 0x9e3779b97f4a7c15*uint64(cell+1) ^ 0xbf58476d1ce4e5b9*uint64(trial+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z &^ (1 << 63))
}

// Campaign is a deterministic Monte Carlo fault campaign: a
// LinkRate × CoreRate grid of injections, each cell sampled over
// Trials seeded masks, fanned through the engine worker pool. The
// output survivability curves answer the §VIII-F question at scale:
// at which fault rates does this mapping stop being functional, and
// how much throughput does the adaptive tolerance retain on the way
// down.
type Campaign struct {
	Model   model.Config
	Wafer   hw.Wafer
	Config  parallel.Config
	Opts    cost.Options
	Backend string
	// LinkRates × CoreRates is the injection grid (defaults:
	// DefaultLinkRates × DefaultCoreRates).
	LinkRates []float64
	CoreRates []float64
	// CoresPerDie sizes the per-die core array (default 64).
	CoresPerDie int
	// Trials is the Monte Carlo sample count per cell (default 8).
	Trials int
	// Seed drives every trial's mask via TrialSeed (default 42).
	Seed int64
	// Workers bounds the fan-out (0 = GOMAXPROCS). Results are
	// bit-identical at any worker count.
	Workers int
}

// Default campaign grid: the Fig. 20 sweep region, crossed.
var (
	DefaultLinkRates = []float64{0, 0.1, 0.2, 0.3, 0.4}
	DefaultCoreRates = []float64{0, 0.1, 0.2}
)

// CellStats is the survivability summary of one (LinkRate, CoreRate)
// grid cell.
type CellStats struct {
	LinkRate float64 `json:"link_rate"`
	CoreRate float64 `json:"core_rate"`
	// FunctionalRate is the fraction of trials whose degraded fabric
	// still placed and priced the configuration.
	FunctionalRate float64 `json:"functional_rate"`
	// MeanNorm / P5Norm / MinNorm summarize normalized throughput
	// across trials (non-functional trials count as zero). P5Norm is
	// the lower 5th percentile (floor-indexed order statistic).
	MeanNorm float64 `json:"mean_norm"`
	P5Norm   float64 `json:"p5_norm"`
	MinNorm  float64 `json:"min_norm"`
}

// CampaignResult is the JSON-serializable campaign output.
type CampaignResult struct {
	Model   string `json:"model"`
	Wafer   string `json:"wafer"`
	Config  string `json:"config"`
	Backend string `json:"backend"`
	Trials  int    `json:"trials"`
	Seed    int64  `json:"seed"`
	// BaselineTokens is the fault-free throughput every norm is
	// relative to.
	BaselineTokens float64 `json:"baseline_tokens_per_sec"`
	// Cells are the grid cells in link-major order.
	Cells []CellStats `json:"cells"`
}

// normalized returns a copy with every default filled in and the
// grid validated, so local and distributed execution start from the
// same fully-explicit campaign.
func (c Campaign) normalized() (Campaign, error) {
	if c.Trials <= 0 {
		c.Trials = 8
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if len(c.LinkRates) == 0 {
		c.LinkRates = DefaultLinkRates
	}
	if len(c.CoreRates) == 0 {
		c.CoreRates = DefaultCoreRates
	}
	for _, r := range append(append([]float64(nil), c.LinkRates...), c.CoreRates...) {
		if r < 0 || r > 1 {
			return Campaign{}, fmt.Errorf("fault: campaign rate %v outside [0,1]", r)
		}
	}
	return c, nil
}

// cellCoord is one grid cell's injection rates.
type cellCoord struct{ link, core float64 }

// cells enumerates the grid in link-major order — the canonical cell
// indexing shared by local and distributed runs.
func (c Campaign) cells() []cellCoord {
	var cells []cellCoord
	for _, lr := range c.LinkRates {
		for _, cr := range c.CoreRates {
			cells = append(cells, cellCoord{lr, cr})
		}
	}
	return cells
}

// baseline prices the fault-free configuration every norm is relative
// to.
func (c Campaign) baseline() (float64, error) {
	base, err := cost.EvaluateWith(c.Backend, c.Model, c.Wafer, c.Config, c.Opts)
	if err != nil {
		return 0, fmt.Errorf("fault: campaign baseline: %w", err)
	}
	if base.ThroughputTokens <= 0 {
		return 0, fmt.Errorf("fault: campaign baseline throughput is not positive")
	}
	return base.ThroughputTokens, nil
}

// trial runs one Monte Carlo trial of one cell on a normalized
// campaign.
func (c Campaign) trial(cl cellCoord, ci, ti int, baseTokens float64) (norm float64, functional bool) {
	in := Injection{
		LinkRate:    cl.link,
		CoreRate:    cl.core,
		CoresPerDie: c.CoresPerDie,
	}
	rng := rand.New(rand.NewSource(TrialSeed(c.Seed, ci, ti)))
	out := EvaluateWith(c.Backend, c.Model, c.Wafer, c.Config, c.Opts, in, rng)
	if !out.Functional {
		return 0, false
	}
	return out.Breakdown.ThroughputTokens / baseTokens, true
}

// summarize folds the flat per-trial results (cell-major, trials
// within a cell contiguous) into the survivability curves.
func (c Campaign) summarize(cells []cellCoord, norms []float64, functional []bool, baseTokens float64) CampaignResult {
	backend := cost.CanonicalBackendKey(c.Backend)
	if backend == "" {
		backend = "analytic"
	}
	res := CampaignResult{
		Model: c.Model.Name, Wafer: c.Wafer.Name, Config: c.Config.Normalize().String(),
		Backend: backend, Trials: c.Trials, Seed: c.Seed,
		BaselineTokens: baseTokens,
	}
	sorted := make([]float64, c.Trials)
	for ci, cl := range cells {
		st := CellStats{LinkRate: cl.link, CoreRate: cl.core}
		var sum float64
		fn := 0
		for ti := 0; ti < c.Trials; ti++ {
			v := norms[ci*c.Trials+ti]
			sum += v
			sorted[ti] = v
			if functional[ci*c.Trials+ti] {
				fn++
			}
		}
		sort.Float64s(sorted)
		st.FunctionalRate = float64(fn) / float64(c.Trials)
		st.MeanNorm = sum / float64(c.Trials)
		st.P5Norm = sorted[(c.Trials-1)*5/100]
		st.MinNorm = sorted[0]
		res.Cells = append(res.Cells, st)
	}
	return res
}

// Run executes the campaign. Deterministic: per-trial RNGs are seeded
// by TrialSeed and every trial writes its own result slot, so any
// worker count produces bit-identical output.
func (c Campaign) Run() (CampaignResult, error) {
	cc, err := c.normalized()
	if err != nil {
		return CampaignResult{}, err
	}
	baseTokens, err := cc.baseline()
	if err != nil {
		return CampaignResult{}, err
	}
	cells := cc.cells()
	n := len(cells) * cc.Trials
	norms := make([]float64, n)
	functional := make([]bool, n)
	engine.ForEach(cc.Workers, n, func(i int) {
		ci, ti := i/cc.Trials, i%cc.Trials
		norms[i], functional[i] = cc.trial(cells[ci], ci, ti, baseTokens)
	})
	return cc.summarize(cells, norms, functional, baseTokens), nil
}
