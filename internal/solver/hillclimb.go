package solver

import (
	"context"
	"fmt"
	"math/rand"
)

// HillClimb is a random-restart stochastic hill-climb: every restart
// starts from the chain-DP seed (the first verbatim, later ones with
// a fraction of genes re-rolled), then accepts random single-gene
// moves only when they improve, priced through the delta evaluator.
// Deterministic per seed.
type HillClimb struct {
	// Seed drives the perturbation and move randomness.
	Seed int64
	// Restarts is the restart count (default 4).
	Restarts int
	// Iterations is the move count per restart (default 2000).
	Iterations int
	// Perturb is the per-gene re-roll probability on restarts after
	// the first (default 0.3, matching the GA's diversification).
	Perturb float64
}

// newHillClimb builds the registered "hillclimb" strategy from
// params.
func newHillClimb(p Params) (Strategy, error) {
	if err := p.checkKnown("hillclimb", "restarts", "iterations", "perturb", "seed"); err != nil {
		return nil, err
	}
	h := &HillClimb{
		Seed:       p.seed(),
		Restarts:   int(p.value("restarts", 0)),
		Iterations: int(p.value("iterations", 0)),
		Perturb:    p.value("perturb", 0),
	}
	if h.Restarts < 0 || h.Iterations < 0 {
		return nil, fmt.Errorf("solver: hillclimb restarts %d / iterations %d negative", h.Restarts, h.Iterations)
	}
	if h.Perturb < 0 || h.Perturb > 1 {
		return nil, fmt.Errorf("solver: hillclimb perturb %v outside [0,1]", h.Perturb)
	}
	return h, nil
}

// Name implements Strategy.
func (s *HillClimb) Name() string { return "hillclimb" }

// Solve implements Strategy.
func (s *HillClimb) Solve(ctx context.Context, p Problem, b Budget) (Assignment, Stats) {
	stats := Stats{Strategy: s.Name()}
	if !p.valid() {
		return nil, stats
	}
	restarts := s.Restarts
	if restarts == 0 {
		restarts = 4
	}
	iters := s.Iterations
	if iters == 0 {
		iters = 2000
	}
	perturb := s.Perturb
	if perturb == 0 {
		perturb = 0.3
	}

	ev := p.evaluator()
	r := newRun(b, ev, &stats)

	seed := p.seedAssignment(ev, b)
	best := append(Assignment(nil), seed...)
	bestCost := ev.assignmentCost(seed)
	stats.DPCost = bestCost

	rng := rand.New(rand.NewSource(s.Seed))
	n := len(p.Graph.Ops)
	for restart := 0; restart < restarts; restart++ {
		if r.stop(ctx) {
			break
		}
		stats.Restarts++
		start := append(Assignment(nil), seed...)
		if restart > 0 {
			for j := range start {
				if rng.Float64() < perturb {
					start[j] = rng.Intn(len(p.Space))
				}
			}
		}
		inc := ev.incremental(start)
		cur := inc.cost()
		if cur < bestCost {
			bestCost = cur
			best = append(best[:0], inc.assign...)
		}
		for it := 0; it < iters; it++ {
			if r.stop(ctx) {
				break
			}
			stats.Iterations++
			i := rng.Intn(n)
			c := rng.Intn(len(p.Space))
			if c == inc.assign[i] {
				continue
			}
			if cand := inc.moveCost(i, c); cand < cur {
				inc.apply(i, c)
				cur = cand
				// Track the global best move-by-move so checkpoints
				// (and deadline cut-offs) never report a stale
				// snapshot.
				if cur < bestCost {
					bestCost = cur
					best = append(best[:0], inc.assign...)
				}
			}
			r.checkpoint(stats.Iterations, best, bestCost)
		}
	}

	r.finish(bestCost)
	return best, stats
}
