package distrib

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"

	"temp/internal/engine"
)

// Options configures a Fabric.
type Options struct {
	// Workers is how many worker processes to attach. With Command
	// set they are spawned; with Listen set they are accepted over
	// TCP. Zero workers (or every spawn failing) leaves a degraded
	// fabric that executes everything in-process.
	Workers int
	// Command is the worker subprocess argv (the binary re-invoking
	// itself with -worker-mode plus passthrough flags).
	Command []string
	// Env is appended to the subprocess environment.
	Env []string
	// Listen, when non-empty, accepts workers on this TCP address
	// instead of spawning subprocesses.
	Listen string
	// ShardSize caps tasks per shard; 0 picks one automatically so
	// every worker sees several shards (stealing needs slack).
	ShardSize int
	// Retries bounds how many times a shard is requeued after a
	// worker failure before the coordinator runs it in-process.
	// Zero means the default (2).
	Retries int
	// Stderr receives spawned workers' stderr (default os.Stderr).
	Stderr io.Writer
}

const defaultRetries = 2

// WorkerStats is one worker's contribution, reported in -json.
type WorkerStats struct {
	ID          int     `json:"worker"`
	PID         int     `json:"pid,omitempty"`
	Shards      int     `json:"shards"`
	Tasks       int     `json:"tasks"`
	Stolen      int     `json:"shards_stolen"`
	BusyNS      int64   `json:"busy_ns"`
	StealWaitNS int64   `json:"steal_wait_ns"`
	TasksPerSec float64 `json:"tasks_per_sec"`
	Died        bool    `json:"died,omitempty"`
	Hits        int64   `json:"cache_hits"`
	Misses      int64   `json:"cache_misses"`
	DiskHits    int64   `json:"cache_disk_hits"`
	BatchCalls  int64   `json:"batch_calls"`
	BatchedJobs int64   `json:"batched_jobs"`
}

// Stats aggregates a fabric's lifetime counters.
type Stats struct {
	Spawned        int           `json:"workers_spawned"`
	Shards         int           `json:"shards"`
	Tasks          int           `json:"tasks"`
	Stolen         int           `json:"shards_stolen"`
	Requeued       int           `json:"shards_requeued"`
	InProcessTasks int           `json:"inprocess_tasks"`
	Workers        []WorkerStats `json:"per_worker,omitempty"`
}

// EngineTotals sums the workers' engine cache counters, for merging
// into the coordinator's own engine.Stats.
func (s Stats) EngineTotals() engine.Stats {
	var t engine.Stats
	for _, w := range s.Workers {
		t.Hits += w.Hits
		t.Misses += w.Misses
		t.DiskHits += w.DiskHits
		t.BatchCalls += w.BatchCalls
		t.BatchedJobs += w.BatchedJobs
	}
	return t
}

// worker is the coordinator's view of one attached worker.
type worker struct {
	id    int
	pid   int
	cmd   *exec.Cmd
	conn  io.Closer
	in    *bufio.Writer
	out   *bufio.Reader
	close func()

	alive atomic.Bool
	stats WorkerStats
}

// shard is one dispatchable unit: tasks [start, start+len(payloads))
// of the current Run.
type shard struct {
	seq      uint64
	kind     string
	start    int
	payloads [][]byte
	retries  int
}

// Fabric is the coordinator. A nil *Fabric is valid and executes
// everything in-process, so call sites thread one pointer through
// without branching on "distributed or not".
type Fabric struct {
	opts    Options
	workers []*worker
	ln      net.Listener
	seq     atomic.Uint64

	mu       sync.Mutex
	stolen   int
	requeued int
	shards   int
	tasks    int
	inproc   int

	closed     bool
	finalStats Stats
}

// New builds a fabric per opts. Spawn or accept failures are not
// fatal: the fabric runs with however many workers came up (possibly
// zero → in-process). The error reports the first attach failure for
// logging; the fabric is still usable.
func New(opts Options) (*Fabric, error) {
	if opts.Retries == 0 {
		opts.Retries = defaultRetries
	}
	if opts.Stderr == nil {
		opts.Stderr = os.Stderr
	}
	f := &Fabric{opts: opts}
	var firstErr error
	if opts.Listen != "" {
		ln, err := net.Listen("tcp", opts.Listen)
		if err != nil {
			return f, fmt.Errorf("distrib: listen %s: %w", opts.Listen, err)
		}
		f.ln = ln
		for i := 0; i < opts.Workers; i++ {
			w, err := f.acceptWorker(i)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			f.workers = append(f.workers, w)
		}
		return f, firstErr
	}
	if len(opts.Command) == 0 {
		return f, nil
	}
	for i := 0; i < opts.Workers; i++ {
		w, err := f.spawnWorker(i)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		f.workers = append(f.workers, w)
	}
	return f, firstErr
}

// Addr returns the listener's address ("" when not listening), so a
// port-0 listen can tell workers where to connect.
func (f *Fabric) Addr() string {
	if f == nil || f.ln == nil {
		return ""
	}
	return f.ln.Addr().String()
}

// Live reports how many workers are currently attached and healthy.
func (f *Fabric) Live() int {
	if f == nil {
		return 0
	}
	n := 0
	for _, w := range f.workers {
		if w.alive.Load() {
			n++
		}
	}
	return n
}

func (f *Fabric) spawnWorker(id int) (*worker, error) {
	cmd := exec.Command(f.opts.Command[0], f.opts.Command[1:]...)
	cmd.Env = append(os.Environ(), f.opts.Env...)
	cmd.Stderr = f.opts.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("distrib: worker %d stdin: %w", id, err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("distrib: worker %d stdout: %w", id, err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("distrib: worker %d start: %w", id, err)
	}
	w := &worker{
		id:  id,
		cmd: cmd,
		in:  bufio.NewWriterSize(stdin, 1<<16),
		out: bufio.NewReaderSize(stdout, 1<<16),
		close: func() {
			stdin.Close()
			cmd.Wait()
		},
	}
	if err := f.attach(w); err != nil {
		stdin.Close()
		cmd.Process.Kill()
		cmd.Wait()
		return nil, err
	}
	return w, nil
}

func (f *Fabric) acceptWorker(id int) (*worker, error) {
	conn, err := f.ln.Accept()
	if err != nil {
		return nil, fmt.Errorf("distrib: accept worker %d: %w", id, err)
	}
	w := &worker{
		id:    id,
		conn:  conn,
		in:    bufio.NewWriterSize(conn, 1<<16),
		out:   bufio.NewReaderSize(conn, 1<<16),
		close: func() { conn.Close() },
	}
	if err := f.attach(w); err != nil {
		conn.Close()
		return nil, err
	}
	return w, nil
}

// attach completes the hello exchange and marks the worker live.
func (f *Fabric) attach(w *worker) error {
	if err := exchangeHello(w.out, w.in, os.Getpid()); err != nil {
		return fmt.Errorf("distrib: worker %d hello: %w", w.id, err)
	}
	w.alive.Store(true)
	w.stats = WorkerStats{ID: w.id}
	if w.cmd != nil {
		w.stats.PID = w.cmd.Process.Pid
	}
	return nil
}

// Run shards payloads of one kind across the live workers and merges
// results into input order. Every task result lands in its global
// index slot, so the output is bit-identical at any worker count —
// including zero, where everything runs in-process through the same
// registered handler. errs[i] reports task i's handler failure (or
// panic, as text); transport failures never surface here, they
// requeue the shard.
func (f *Fabric) Run(kind string, payloads [][]byte) ([][]byte, []error) {
	out := make([][]byte, len(payloads))
	errs := make([]error, len(payloads))
	if len(payloads) == 0 {
		return out, errs
	}
	live := f.liveWorkers()
	if len(live) == 0 {
		f.runLocal(kind, payloads, 0, out, errs)
		return out, errs
	}

	shards := f.buildShards(kind, payloads, len(live))
	q := newQueues(len(f.workers), shards)
	var wg sync.WaitGroup
	for _, w := range live {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			f.drive(w, q, payloads, out, errs)
		}(w)
	}
	wg.Wait()
	// Anything still queued means every worker died mid-run: finish
	// in-process so Run always completes with full results.
	for _, sh := range q.drain() {
		f.runLocal(sh.kind, sh.payloads, sh.start, out, errs)
	}
	f.mu.Lock()
	f.shards += len(shards)
	f.tasks += len(payloads)
	f.mu.Unlock()
	return out, errs
}

// runLocal executes tasks in-process through the registered handler,
// writing into the global slots starting at base.
func (f *Fabric) runLocal(kind string, payloads [][]byte, base int, out [][]byte, errs []error) {
	h := lookupKind(kind)
	engine.Map(len(payloads), func(i int) {
		b, msg := execTask(h, kind, payloads[i])
		out[base+i] = b
		if msg != "" {
			errs[base+i] = errors.New(msg)
		}
	})
	if f != nil {
		f.mu.Lock()
		f.inproc += len(payloads)
		f.mu.Unlock()
	}
}

func (f *Fabric) liveWorkers() []*worker {
	if f == nil {
		return nil
	}
	var live []*worker
	for _, w := range f.workers {
		if w.alive.Load() {
			live = append(live, w)
		}
	}
	return live
}

// buildShards slices payloads into contiguous shards. The automatic
// shard size aims at ~4 shards per worker so stealing has slack,
// clamped to [1, 64] (matching the engine's sweep chunk cap).
func (f *Fabric) buildShards(kind string, payloads [][]byte, liveWorkers int) []*shard {
	size := f.opts.ShardSize
	if size <= 0 {
		size = (len(payloads) + liveWorkers*4 - 1) / (liveWorkers * 4)
		if size < 1 {
			size = 1
		}
		if size > 64 {
			size = 64
		}
	}
	var shards []*shard
	for start := 0; start < len(payloads); start += size {
		end := start + size
		if end > len(payloads) {
			end = len(payloads)
		}
		shards = append(shards, &shard{
			seq:      f.seq.Add(1),
			kind:     kind,
			start:    start,
			payloads: payloads[start:end],
		})
	}
	return shards
}

// queues is the per-worker shard deques plus the shared lock. Shards
// are dealt round-robin; an idle worker first pops from the front of
// its own deque, then steals from the back of the longest one.
type queues struct {
	mu sync.Mutex
	q  [][]*shard
}

func newQueues(workers int, shards []*shard) *queues {
	qs := &queues{q: make([][]*shard, workers)}
	for i, sh := range shards {
		w := i % workers
		qs.q[w] = append(qs.q[w], sh)
	}
	return qs
}

// next pops the next shard for worker id, stealing when its own deque
// is empty. The second return reports a steal.
func (qs *queues) next(id int) (*shard, bool) {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	if own := qs.q[id]; len(own) > 0 {
		sh := own[0]
		qs.q[id] = own[1:]
		return sh, false
	}
	victim, best := -1, 0
	for i, q := range qs.q {
		if i != id && len(q) > best {
			victim, best = i, len(q)
		}
	}
	if victim < 0 {
		return nil, false
	}
	q := qs.q[victim]
	sh := q[len(q)-1]
	qs.q[victim] = q[:len(q)-1]
	return sh, true
}

// requeue pushes a failed shard onto the front of worker id's deque
// (or any non-empty-capable deque — fronts keep retry order tight).
func (qs *queues) requeue(sh *shard, exclude int) {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	id := 0
	if id == exclude && len(qs.q) > 1 {
		id = 1
	}
	qs.q[id] = append([]*shard{sh}, qs.q[id]...)
}

// drain empties every deque, returning the leftovers.
func (qs *queues) drain() []*shard {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	var left []*shard
	for i, q := range qs.q {
		left = append(left, q...)
		qs.q[i] = nil
	}
	return left
}

// drive is one worker's dispatcher loop: pop (or steal) a shard, send
// it, wait for the result, merge. A transport failure marks the
// worker dead and requeues the in-flight shard with a bounded retry;
// past the bound the shard runs in-process immediately, so one
// persistently failing shard cannot live-lock the run.
func (f *Fabric) drive(w *worker, qs *queues, payloads [][]byte, out [][]byte, errs []error) {
	for {
		idleStart := time.Now()
		sh, stolen := qs.next(w.id)
		if sh == nil {
			return
		}
		if stolen {
			w.stats.Stolen++
			w.stats.StealWaitNS += time.Since(idleStart).Nanoseconds()
			f.mu.Lock()
			f.stolen++
			f.mu.Unlock()
		}
		busyStart := time.Now()
		res, err := f.roundTrip(w, sh)
		if err != nil {
			w.alive.Store(false)
			w.stats.Died = true
			if sh.retries < f.opts.Retries {
				sh.retries++
				f.mu.Lock()
				f.requeued++
				f.mu.Unlock()
				qs.requeue(sh, w.id)
			} else {
				f.runLocal(sh.kind, sh.payloads, sh.start, out, errs)
			}
			return
		}
		for i := range res.Payloads {
			g := sh.start + i
			out[g] = res.Payloads[i]
			if res.Errs[i] != "" {
				errs[g] = errors.New(res.Errs[i])
			}
		}
		w.stats.Shards++
		w.stats.Tasks += len(sh.payloads)
		w.stats.BusyNS += time.Since(busyStart).Nanoseconds()
	}
}

// roundTrip sends one shard and reads its result, validating shape.
func (f *Fabric) roundTrip(w *worker, sh *shard) (*resultMsg, error) {
	msg := &shardMsg{Seq: sh.seq, Kind: sh.kind, Start: sh.start, Payloads: sh.payloads}
	if err := writeFrame(w.in, &envelope{Type: msgShard, Shard: msg}); err != nil {
		return nil, err
	}
	env, err := readFrame(w.out)
	if err != nil {
		return nil, err
	}
	if env.Type != msgResult || env.Result == nil {
		return nil, fmt.Errorf("distrib: worker %d: expected result, got type %d", w.id, env.Type)
	}
	res := env.Result
	if res.Seq != sh.seq || len(res.Payloads) != len(sh.payloads) || len(res.Errs) != len(sh.payloads) {
		return nil, fmt.Errorf("distrib: worker %d: result shape mismatch for shard %d", w.id, sh.seq)
	}
	return res, nil
}

// kill forcibly terminates worker i's process — the crash-injection
// hook for tests.
func (f *Fabric) kill(i int) error {
	if i < 0 || i >= len(f.workers) || f.workers[i].cmd == nil {
		return fmt.Errorf("distrib: no process for worker %d", i)
	}
	return f.workers[i].cmd.Process.Kill()
}

// Snapshot returns the coordinator-side counters without disturbing
// the fabric — the live-telemetry accessor for the serving daemon's
// /metrics endpoint. Per-worker stats (shards, tasks, engine
// counters) are only consistent at Shutdown, when workers report
// their final tallies over the done exchange, so Snapshot reports
// the coordinator's own counters plus the live-worker count and
// leaves Workers empty.
func (f *Fabric) Snapshot() Stats {
	if f == nil {
		return Stats{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		s := f.finalStats
		s.Workers = nil
		return s
	}
	return Stats{
		Spawned:        len(f.workers),
		Shards:         f.shards,
		Tasks:          f.tasks,
		Stolen:         f.stolen,
		Requeued:       f.requeued,
		InProcessTasks: f.inproc,
	}
}

// Shutdown ends every worker (done → collect stats → wait), closes
// the listener, and returns the aggregated stats. Idempotent; Run
// must not be called afterwards.
func (f *Fabric) Shutdown() Stats {
	if f == nil {
		return Stats{}
	}
	f.mu.Lock()
	if f.closed {
		s := f.finalStats
		f.mu.Unlock()
		return s
	}
	f.closed = true
	f.mu.Unlock()

	for _, w := range f.workers {
		if w.alive.Load() {
			if err := writeFrame(w.in, &envelope{Type: msgDone}); err == nil {
				if env, err := readFrame(w.out); err == nil && env.Type == msgStats && env.Stats != nil {
					st := env.Stats
					w.stats.Hits, w.stats.Misses, w.stats.DiskHits = st.Hits, st.Misses, st.DiskHits
					w.stats.BatchCalls, w.stats.BatchedJobs = st.BatchCalls, st.BatchedJobs
				}
			}
			w.alive.Store(false)
		} else if w.cmd != nil && w.cmd.Process != nil {
			w.cmd.Process.Kill()
		}
		w.close()
		if w.stats.BusyNS > 0 {
			w.stats.TasksPerSec = float64(w.stats.Tasks) / (float64(w.stats.BusyNS) / 1e9)
		}
	}
	if f.ln != nil {
		f.ln.Close()
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s := Stats{
		Spawned:        len(f.workers),
		Shards:         f.shards,
		Tasks:          f.tasks,
		Stolen:         f.stolen,
		Requeued:       f.requeued,
		InProcessTasks: f.inproc,
	}
	for _, w := range f.workers {
		s.Workers = append(s.Workers, w.stats)
	}
	f.finalStats = s
	return s
}
