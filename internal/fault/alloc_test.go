package fault

import (
	"math/rand"
	"testing"

	"temp/internal/hw"
	"temp/internal/mesh"
)

// TestApplyAllocFree pins the de-allocated injection hot path: walking
// the dense canonical link index (no per-trial dedup map) keeps Apply
// at zero allocations per call.
func TestApplyAllocFree(t *testing.T) {
	topo := mesh.FromWafer(hw.EvaluationWafer()).Clone()
	rng := rand.New(rand.NewSource(9))
	in := Injection{LinkRate: 0.2, CoreRate: 0.1, CoresPerDie: 64}
	allocs := testing.AllocsPerRun(100, func() {
		in.Apply(topo, rng)
	})
	if allocs != 0 {
		t.Errorf("Apply allocates %.0f times per call, want 0", allocs)
	}
}

// TestLocalizeAllocBound: Localize itself is allocation-free except
// for the connectivity scan's seen/stack scratch — bound it so the
// dense-index walk never regresses to a map-per-call.
func TestLocalizeAllocBound(t *testing.T) {
	topo := mesh.FromWafer(hw.EvaluationWafer()).Clone()
	Injection{LinkRate: 0.15}.Apply(topo, rand.New(rand.NewSource(3)))
	allocs := testing.AllocsPerRun(100, func() {
		Localize(topo)
	})
	if allocs > 4 {
		t.Errorf("Localize allocates %.0f times per call, want <= 4", allocs)
	}
}
