package spec

import (
	"fmt"
)

// RequestSpec is the serving daemon's request envelope: one or more
// scenario specs plus per-request serving options (tenant identity
// for fair-share admission, a budget clamp, streaming). It is the
// wire schema of tempserve's POST /v1/solve — strictly parsed like
// every other spec, so typos surface as 400s instead of silently
// solving the wrong scenario.
type RequestSpec struct {
	// ID optionally names the request; echoed back in the response
	// and in log lines. Empty means the server assigns one.
	ID string `json:"id,omitempty"`
	// Tenant groups requests for fair-share admission control; empty
	// means the anonymous tenant.
	Tenant string `json:"tenant,omitempty"`
	// Scenario is the single-scenario form; Scenarios the batch form.
	// Exactly one of the two must be set.
	Scenario  *ScenarioSpec  `json:"scenario,omitempty"`
	Scenarios []ScenarioSpec `json:"scenarios,omitempty"`
	// Budget, when set, clamps every solver stage in the request:
	// each stage's eval cap and deadline are lowered to these bounds
	// (stages with tighter bounds keep them). Scenarios without a
	// solver stage are unaffected.
	Budget *BudgetSpec `json:"budget,omitempty"`
	// Stream requests checkpointed best-so-far streaming (SSE) instead
	// of one final JSON document.
	Stream bool `json:"stream,omitempty"`
}

// ParseRequest decodes a request envelope from JSON, rejecting
// unknown fields.
func ParseRequest(data []byte) (RequestSpec, error) {
	var r RequestSpec
	if err := strictUnmarshal(data, &r); err != nil {
		return RequestSpec{}, fmt.Errorf("spec: parsing request: %w", err)
	}
	return r, nil
}

// Specs returns the request's scenario list: the batch form, or the
// single scenario wrapped in a one-element slice.
func (r RequestSpec) Specs() []ScenarioSpec {
	if r.Scenario != nil {
		return []ScenarioSpec{*r.Scenario}
	}
	return r.Scenarios
}

// Validate reports structural problems: no scenarios, both envelope
// forms at once, an invalid clamp budget, or any invalid scenario.
func (r RequestSpec) Validate() error {
	if r.Scenario != nil && len(r.Scenarios) > 0 {
		return fmt.Errorf("spec: request sets both scenario and scenarios")
	}
	specs := r.Specs()
	if len(specs) == 0 {
		return fmt.Errorf("spec: request has no scenarios")
	}
	if r.Budget != nil {
		if _, err := r.Budget.Budget(); err != nil {
			return err
		}
	}
	for i, ss := range specs {
		if err := ss.Validate(); err != nil {
			return fmt.Errorf("spec: request scenario %d: %w", i, err)
		}
	}
	return nil
}

// ClampBudget lowers b to the clamp's bounds: a set eval cap or
// deadline in clamp replaces a looser (or unset) one in b. Checkpoint
// in clamp applies only when b has none, so a scenario's own
// checkpoint cadence wins.
func ClampBudget(b BudgetSpec, clamp BudgetSpec) BudgetSpec {
	if clamp.Evals > 0 && (b.Evals == 0 || b.Evals > clamp.Evals) {
		b.Evals = clamp.Evals
	}
	if clamp.Time != "" {
		bd, berr := b.Budget()
		cd, cerr := clamp.Budget()
		if cerr == nil && (berr != nil || bd.Deadline == 0 || bd.Deadline > cd.Deadline) {
			b.Time = clamp.Time
		}
	}
	if clamp.Checkpoint > 0 && b.Checkpoint == 0 {
		b.Checkpoint = clamp.Checkpoint
	}
	return b
}
