package spec

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"temp/internal/baselines"
	"temp/internal/cost"
	"temp/internal/hw"
	"temp/internal/model"
)

// Registry is a name-keyed catalogue of constructors. Lookups are
// forgiving: names are canonicalized (case, spaces, "-", "_", ".",
// "+" ignored) and a query that is a substring of exactly one — or,
// for compatibility with the historical CLI matching, the first in
// registration order — registered name also resolves.
type Registry[T any] struct {
	mu    sync.RWMutex
	order []string
	items map[string]func() T
}

// NewRegistry returns an empty registry.
func NewRegistry[T any]() *Registry[T] {
	return &Registry[T]{items: make(map[string]func() T)}
}

// canonical collapses a name to its matching key.
func canonical(name string) string {
	return strings.ToLower(strings.NewReplacer(
		" ", "", "-", "", "_", "", ".", "", "+", "").Replace(name))
}

// Register adds a named constructor. Re-registering a name replaces
// the previous constructor (user specs may shadow built-ins).
func (r *Registry[T]) Register(name string, build func() T) {
	key := canonical(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.items[key]; !exists {
		r.order = append(r.order, name)
	} else {
		for i, n := range r.order {
			if canonical(n) == key {
				r.order[i] = name
				break
			}
		}
	}
	r.items[key] = build
}

// Lookup resolves a name to a freshly-built value. Exact canonical
// matches win; otherwise the first registered name containing the
// query matches (so "gpt3-175b", "GPT-3 175B" and "175b" all work).
func (r *Registry[T]) Lookup(name string) (T, bool) {
	key := canonical(name)
	r.mu.RLock()
	defer r.mu.RUnlock()
	var zero T
	if key == "" {
		return zero, false
	}
	if b, ok := r.items[key]; ok {
		return b(), true
	}
	for _, n := range r.order {
		if strings.Contains(canonical(n), key) {
			return r.items[canonical(n)](), true
		}
	}
	return zero, false
}

// Names lists registered names in registration (paper) order.
func (r *Registry[T]) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// SortedNames lists registered names alphabetically.
func (r *Registry[T]) SortedNames() []string {
	out := r.Names()
	sort.Strings(out)
	return out
}

// Package-level registries, pre-populated with every constructor the
// paper's evaluation uses.
var (
	// Wafers maps names to wafer constructors (wsc-4x8, wsc-6x8,
	// wsc-4x8-a100match).
	Wafers = NewRegistry[hw.Wafer]()
	// Models maps names to the model zoo (Table II, §VIII-E and
	// Fig. 4 models).
	Models = NewRegistry[model.Config]()
	// Systems maps names to the §VIII-A comparison systems (the six
	// baselines plus TEMP).
	Systems = NewRegistry[baselines.System]()
)

func init() {
	for _, build := range []func() hw.Wafer{
		hw.EvaluationWafer, hw.ReferenceWafer, hw.ComparisonWafer32,
	} {
		w := build()
		Wafers.Register(w.Name, build)
	}
	for _, m := range model.Zoo() {
		m := m
		Models.Register(m.Name, func() model.Config { return m })
	}
	for _, build := range []func() baselines.System{
		func() baselines.System { return baselines.Megatron1(cost.SMap) },
		func() baselines.System { return baselines.Megatron1(cost.GMap) },
		func() baselines.System { return baselines.MeSP(cost.SMap) },
		func() baselines.System { return baselines.MeSP(cost.GMap) },
		func() baselines.System { return baselines.FSDP(cost.SMap) },
		func() baselines.System { return baselines.FSDP(cost.GMap) },
		baselines.TEMP,
	} {
		s := build()
		Systems.Register(s.Name, build)
	}
}

// LookupWafer resolves a registered wafer name.
func LookupWafer(name string) (hw.Wafer, error) {
	if w, ok := Wafers.Lookup(name); ok {
		return w, nil
	}
	return hw.Wafer{}, fmt.Errorf("spec: unknown wafer %q (have %s)", name, strings.Join(Wafers.Names(), ", "))
}

// LookupModel resolves a registered model name.
func LookupModel(name string) (model.Config, error) {
	if m, ok := Models.Lookup(name); ok {
		return m, nil
	}
	return model.Config{}, fmt.Errorf("spec: unknown model %q (have %s)", name, strings.Join(Models.Names(), ", "))
}

// LookupSystem resolves a registered system name.
func LookupSystem(name string) (baselines.System, error) {
	if s, ok := Systems.Lookup(name); ok {
		return s, nil
	}
	return baselines.System{}, fmt.Errorf("spec: unknown system %q (have %s)", name, strings.Join(Systems.Names(), ", "))
}
