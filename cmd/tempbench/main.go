// Command tempbench regenerates the paper's tables and figures
// through the repository's simulator. Run with -list to see the
// experiment IDs, -exp <id> for a single artefact, or no flags for
// the full evaluation suite. The suite fans out across -workers
// goroutines on the shared evaluation engine; -json additionally
// writes each experiment's wall-clock time and headline observation
// to a machine-readable file for perf tracking across revisions.
//
//	tempbench -exp fig13          # Fig. 13 training comparison
//	tempbench -quick              # full suite on reduced model set
//	tempbench -quick -json bench.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"temp/internal/engine"
	"temp/internal/experiments"
)

// record is one experiment's entry in the -json output. Seconds is
// wall-clock while the suite's other experiments run concurrently on
// the same cores, so it ranks experiments within one run; for
// revision-to-revision comparison use TotalSeconds, or time one
// experiment in isolation with -exp.
type record struct {
	ID       string  `json:"id"`
	Title    string  `json:"title"`
	Seconds  float64 `json:"seconds"`
	Rows     int     `json:"rows"`
	Headline string  `json:"headline,omitempty"`
}

// output is the top-level -json document.
type output struct {
	Quick        bool     `json:"quick"`
	Workers      int      `json:"workers"`
	TotalSeconds float64  `json:"total_seconds"`
	CacheHits    int64    `json:"cache_hits"`
	CacheMisses  int64    `json:"cache_misses"`
	Experiments  []record `json:"experiments"`
}

func toRecord(t *experiments.Table, d time.Duration) record {
	r := record{ID: t.ID, Title: t.Title, Seconds: d.Seconds(), Rows: len(t.Rows)}
	if len(t.Notes) > 0 {
		r.Headline = t.Notes[0]
	}
	return r
}

func writeJSON(path string, out output) error {
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func main() {
	exp := flag.String("exp", "", "experiment id (default: run all)")
	quick := flag.Bool("quick", false, "reduced model set for fast runs")
	list := flag.Bool("list", false, "list experiment ids")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "evaluation worker-pool size")
	jsonPath := flag.String("json", "", "write per-experiment timings and headline metrics to this file")
	flag.Parse()
	engine.SetWorkers(*workers)

	if *list {
		for _, r := range experiments.Runners() {
			fmt.Println(r.ID)
		}
		return
	}
	if *exp != "" {
		start := time.Now()
		tab, err := experiments.ByID(*exp, *quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tempbench:", err)
			os.Exit(1)
		}
		tab.Fprint(os.Stdout)
		if *jsonPath != "" {
			stats := engine.Default().Cache().Stats()
			out := output{
				Quick: *quick, Workers: engine.Workers(),
				TotalSeconds: time.Since(start).Seconds(),
				CacheHits:    stats.Hits, CacheMisses: stats.Misses,
				Experiments: []record{toRecord(tab, time.Since(start))},
			}
			if err := writeJSON(*jsonPath, out); err != nil {
				fmt.Fprintln(os.Stderr, "tempbench:", err)
				os.Exit(1)
			}
		}
		return
	}
	start := time.Now()
	tabs, durs, err := experiments.AllTimed(*quick)
	total := time.Since(start)
	for _, t := range tabs {
		t.Fprint(os.Stdout)
	}
	if *jsonPath != "" {
		stats := engine.Default().Cache().Stats()
		out := output{
			Quick: *quick, Workers: engine.Workers(),
			TotalSeconds: total.Seconds(),
			CacheHits:    stats.Hits, CacheMisses: stats.Misses,
		}
		for i, t := range tabs {
			out.Experiments = append(out.Experiments, toRecord(t, durs[i]))
		}
		if werr := writeJSON(*jsonPath, out); werr != nil {
			fmt.Fprintln(os.Stderr, "tempbench:", werr)
			os.Exit(1)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tempbench:", err)
		os.Exit(1)
	}
}
