// Custom scenario: define an off-paper wafer (2×16 dies with HBM3-
// class memory and 6 TB/s links) and an off-paper model (Falcon 40B)
// entirely in JSON, then run it end-to-end through the declarative
// scenario layer — no Go constructors, no recompilation. The same
// file drives `tempbench -scenario` and `tempsim -scenario`.
package main

import (
	_ "embed"
	"fmt"
	"log"

	"temp"
)

//go:embed scenario.json
var scenarioJSON []byte

func main() {
	// The registries already know every paper constructor by name.
	fmt.Printf("registered wafers: %v\n", temp.RegisteredWafers.Names())
	fmt.Printf("registered models: %d (Table II, §VIII-E, Fig. 4)\n\n", len(temp.RegisteredModels.Names()))

	// Parse and resolve the declarative scenario. Validation catches
	// malformed specs (bad grids, zero layers, unknown engines) here,
	// before anything is evaluated.
	ss, err := temp.ParseScenario(scenarioJSON)
	if err != nil {
		log.Fatal(err)
	}
	sc, err := ss.Resolve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario %q:\n", sc.Name)
	fmt.Printf("  model  %s (%.1fB params)\n", sc.Model, float64(sc.Model.Params())/1e9)
	fmt.Printf("  wafer  %s: %d dies, %.0f GB HBM/die, %.0f TFLOPS/die\n",
		sc.Wafer.Name, sc.Wafer.Dies(), sc.Wafer.Die.MemCapacity()/1e9, sc.Wafer.Die.PeakFLOPS/1e12)
	fmt.Printf("  system %s (envelope caps TATP at %d)\n\n", sc.System.Name, sc.System.Envelope.MaxTATP)

	// Sweep the system's configuration space for the best feasible
	// configuration — the same footing every paper figure uses.
	best, err := temp.RunScenario(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best config %s:\n", best.Config)
	fmt.Printf("  step latency     %.3fs\n", best.StepTime)
	fmt.Printf("  per-die memory   %.1f GB (capacity %.1f GB, OOM=%v)\n",
		best.Memory.Total()/1e9, best.Memory.Capacity/1e9, best.OOM())
	fmt.Printf("  throughput       %.0f tokens/s\n", best.ThroughputTokens)
	fmt.Printf("  power efficiency %.2f tokens/s/W\n\n", best.PowerEfficiency)

	// Round-trip: the winning setup serializes back to a spec, so a
	// swept scenario can be pinned and replayed exactly.
	pinned := ss
	cfgSpec := temp.ConfigSpec{DP: best.Config.DP, TP: best.Config.TP, SP: best.Config.SP,
		CP: best.Config.CP, TATP: best.Config.TATP}
	pinned.Config = &cfgSpec
	pinnedSc, err := pinned.Resolve()
	if err != nil {
		log.Fatal(err)
	}
	replay, err := temp.RunScenario(pinnedSc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pinned replay of %s: step %.3fs (identical=%v)\n",
		best.Config, replay.StepTime, replay.StepTime == best.StepTime)
}
