package engine

import (
	"sync"
	"testing"

	"temp/internal/cost"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
)

// TestSweepSharesHotPathCaches hammers the evaluation hot path's
// shared structures from a concurrent Sweep: the topology interner,
// the per-topology derived state (placements, orchestrations,
// compiled lowering templates) and the collective lowering cache are
// all populated and read by every worker at once. Run under -race
// this is the concurrency contract test for the hot-path caches; the
// result check doubles as a determinism guard (parallel and serial
// sweeps must agree bit for bit).
func TestSweepSharesHotPathCaches(t *testing.T) {
	m := model.GPT3_6_7B()
	wafers := []hw.Wafer{hw.EvaluationWafer(), hw.ReferenceWafer()}
	var jobs []Job
	for _, w := range wafers {
		for _, cfg := range parallel.EnumerateConfigs(w.Dies(), true, 0) {
			jobs = append(jobs, Job{Model: m, Wafer: w, Config: cfg, Opts: cost.TEMPOptions()})
		}
	}
	serial := New(1).Sweep(jobs)

	// Two parallel pools race each other on the process-global caches.
	pools := []*Pool{New(8), New(8)}
	results := make([][]Result, len(pools))
	var wg sync.WaitGroup
	for i, p := range pools {
		wg.Add(1)
		go func(i int, p *Pool) {
			defer wg.Done()
			results[i] = p.Sweep(jobs)
		}(i, p)
	}
	wg.Wait()

	for i, rs := range results {
		for j, r := range rs {
			if (r.Err == nil) != (serial[j].Err == nil) {
				t.Fatalf("pool %d job %d error mismatch: %v vs %v", i, j, r.Err, serial[j].Err)
			}
			if r.Err != nil {
				continue
			}
			got, want := r.Breakdown, serial[j].Breakdown
			if got.StepTime != want.StepTime || got.ComputeTime != want.ComputeTime ||
				got.StreamTime != want.StreamTime || got.CollectiveTime != want.CollectiveTime ||
				got.ThroughputTokens != want.ThroughputTokens || got.EnergyComm != want.EnergyComm {
				t.Fatalf("pool %d job %d (%s) diverged from serial sweep", i, j, jobs[j].Config)
			}
		}
	}
}
