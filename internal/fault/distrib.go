package fault

import (
	"context"

	"temp/internal/distrib"
	"temp/internal/engine"
)

// Distributed fault campaigns: one task per grid cell. The task ships
// the fully-normalized campaign plus the coordinator-priced baseline,
// so every worker derives the identical cell list and trial seeds.

type campaignCellTask struct {
	C              Campaign
	Cell           int
	BaselineTokens float64
}

type campaignCellOut struct {
	Norms      []float64
	Functional []bool
}

func init() {
	distrib.RegisterKind("fault.campaign.cell", distrib.HandlerGob(runCampaignCell))
}

func runCampaignCell(ctx context.Context, t campaignCellTask) (campaignCellOut, error) {
	if err := ctx.Err(); err != nil {
		return campaignCellOut{}, err
	}
	cl := t.C.cells()[t.Cell]
	out := campaignCellOut{
		Norms:      make([]float64, t.C.Trials),
		Functional: make([]bool, t.C.Trials),
	}
	engine.ForEach(t.C.Workers, t.C.Trials, func(ti int) {
		out.Norms[ti], out.Functional[ti] = t.C.trial(cl, t.Cell, ti, t.BaselineTokens)
	})
	return out, nil
}

// RunOn executes the campaign with its grid cells sharded across the
// fabric (in-process when f is nil or degraded). Per-trial seeding
// makes the merged result bit-identical to Run at any worker count.
func (c Campaign) RunOn(f *distrib.Fabric) (CampaignResult, error) {
	cc, err := c.normalized()
	if err != nil {
		return CampaignResult{}, err
	}
	baseTokens, err := cc.baseline()
	if err != nil {
		return CampaignResult{}, err
	}
	cells := cc.cells()
	tasks := make([]campaignCellTask, len(cells))
	for ci := range cells {
		tasks[ci] = campaignCellTask{C: cc, Cell: ci, BaselineTokens: baseTokens}
	}
	outs, errs := distrib.RunTasks[campaignCellTask, campaignCellOut](f, "fault.campaign.cell", tasks)
	norms := make([]float64, len(cells)*cc.Trials)
	functional := make([]bool, len(cells)*cc.Trials)
	for ci := range cells {
		if errs[ci] != nil {
			return CampaignResult{}, errs[ci]
		}
		copy(norms[ci*cc.Trials:], outs[ci].Norms)
		copy(functional[ci*cc.Trials:], outs[ci].Functional)
	}
	return cc.summarize(cells, norms, functional, baseTokens), nil
}
