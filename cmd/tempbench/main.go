// Command tempbench regenerates the paper's tables and figures
// through the repository's simulator. Run with -list to see the
// experiment IDs, -exp <id> for a single artefact, or no flags for
// the full evaluation suite.
//
//	tempbench -exp fig13          # Fig. 13 training comparison
//	tempbench -quick              # full suite on reduced model set
package main

import (
	"flag"
	"fmt"
	"os"

	"temp/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id (default: run all)")
	quick := flag.Bool("quick", false, "reduced model set for fast runs")
	list := flag.Bool("list", false, "list experiment ids")
	flag.Parse()

	if *list {
		for _, id := range []string{"fig4b", "fig4c", "fig5", "fig7", "fig9", "fig13",
			"fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
			"tabH", "dls-quality"} {
			fmt.Println(id)
		}
		return
	}
	if *exp != "" {
		tab, err := experiments.ByID(*exp, *quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tempbench:", err)
			os.Exit(1)
		}
		tab.Fprint(os.Stdout)
		return
	}
	tabs, err := experiments.All(*quick)
	for _, t := range tabs {
		t.Fprint(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tempbench:", err)
		os.Exit(1)
	}
}
