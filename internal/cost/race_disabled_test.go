//go:build !race

package cost_test

const raceEnabled = false
