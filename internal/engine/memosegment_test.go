package engine

import (
	"strings"
	"testing"
)

// TestMemoSegmentRoundTrip: Segment/ImportSegment carry every record
// bit-identically into a shared-nothing memo, existing keys keep
// their local value, and the import is idempotent.
func TestMemoSegmentRoundTrip(t *testing.T) {
	src := NewMemoryMemo()
	const n = 6
	for i := 0; i < n; i++ {
		if err := src.Store(diskJob(i), diskResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	seg, err := src.Segment()
	if err != nil {
		t.Fatal(err)
	}

	dst := NewMemoryMemo()
	// Pre-seed one key with a local value: import must not clobber it.
	local := diskResult(99)
	if err := dst.Store(diskJob(0), local); err != nil {
		t.Fatal(err)
	}
	added, err := dst.ImportSegment(seg)
	if err != nil {
		t.Fatal(err)
	}
	if added != n-1 {
		t.Fatalf("imported %d records, want %d (one key pre-seeded)", added, n-1)
	}
	for i := 0; i < n; i++ {
		got, ok := dst.Lookup(diskJob(i))
		if !ok {
			t.Fatalf("job %d missing after import", i)
		}
		want := diskResult(i)
		if i == 0 {
			want = local
		}
		if !sameResult(got, want) {
			t.Fatalf("job %d: result diverged after segment import", i)
		}
	}
	// Idempotent: re-importing the same segment adds nothing.
	if again, err := dst.ImportSegment(seg); err != nil || again != 0 {
		t.Fatalf("re-import added %d records (err %v), want 0", again, err)
	}
}

// TestMemoSegmentRejectsCorruption: any flipped byte in a shipped
// segment rejects the whole import — a warm start must never seed a
// wrong price.
func TestMemoSegmentRejectsCorruption(t *testing.T) {
	src := NewMemoryMemo()
	for i := 0; i < 4; i++ {
		if err := src.Store(diskJob(i), diskResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	seg, err := src.Segment()
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte past the header, inside some record frame.
	bad := append([]byte(nil), seg...)
	bad[len(bad)/2] ^= 0xff

	dst := NewMemoryMemo()
	added, err := dst.ImportSegment(bad)
	if err == nil {
		t.Fatal("corrupt segment imported without error")
	}
	if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("error %q does not name corruption", err)
	}
	if added != 0 || dst.Len() != 0 {
		t.Fatalf("corrupt import merged %d records (len %d), want 0", added, dst.Len())
	}
}
