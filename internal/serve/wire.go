package serve

import (
	"fmt"
	"time"

	"temp/internal/baselines"
	"temp/internal/engine"
	"temp/internal/fault"
	"temp/internal/sim"
	"temp/internal/solver"
	"temp/internal/spec"
)

// ResultWire is one scenario's outcome on the wire:
// sim.ScenarioResult with the error flattened to text so it
// JSON-encodes. Floats round-trip exactly through encoding/json
// (shortest-representation), so byte-comparing two marshalled
// ResultWire slices is a bit-identity check on the underlying
// results.
type ResultWire struct {
	Name          string                `json:"name"`
	Result        baselines.Result      `json:"result"`
	FaultNormTput float64               `json:"fault_norm_tput,omitempty"`
	Faulted       bool                  `json:"faulted,omitempty"`
	Solver        *sim.SolverOutcome    `json:"solver,omitempty"`
	Recovery      *fault.Recovery       `json:"recovery,omitempty"`
	Campaign      *fault.CampaignResult `json:"campaign,omitempty"`
	Err           string                `json:"error,omitempty"`
}

// CanonicalResults returns a copy of the results with wall-clock
// timing fields zeroed — everything left is deterministic for a
// fixed (spec, seed, budget), so byte-comparing two canonicalized
// marshallings is the served-vs-direct bit-identity check.
func CanonicalResults(rs []ResultWire) []ResultWire {
	out := append([]ResultWire(nil), rs...)
	for i := range out {
		if s := out[i].Solver; s != nil {
			cp := *s
			cp.Elapsed = 0
			out[i].Solver = &cp
		}
		if r := out[i].Recovery; r != nil {
			cp := *r
			cp.WarmElapsed, cp.ColdElapsed = 0, 0
			out[i].Recovery = &cp
		}
	}
	return out
}

// toWire flattens scenario results for the response body.
func toWire(rs []sim.ScenarioResult) []ResultWire {
	out := make([]ResultWire, len(rs))
	for i, r := range rs {
		out[i] = ResultWire{
			Name: r.Name, Result: r.Result,
			FaultNormTput: r.FaultNormTput, Faulted: r.Faulted,
			Solver: r.Solver, Recovery: r.Recovery, Campaign: r.Campaign,
		}
		if r.Err != nil {
			out[i].Err = r.Err.Error()
		}
	}
	return out
}

// Response is the POST /v1/solve response document (also the final
// SSE "done" event of a streamed solve).
type Response struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant,omitempty"`
	// Results are in request scenario order, deterministic for a
	// given (spec, seed, budget) regardless of concurrency, worker
	// count, or cache warmth.
	Results []ResultWire `json:"results"`
	// QueueWaitNS is the time the request spent in the admission
	// queue; ElapsedNS the solve time after admission.
	QueueWaitNS int64 `json:"queue_wait_ns"`
	ElapsedNS   int64 `json:"elapsed_ns"`
	// Distributed reports whether the solve fanned out over the
	// worker fabric.
	Distributed bool `json:"distributed,omitempty"`
}

// CheckpointEvent is one streamed best-so-far snapshot: the solver
// checkpoint plus which scenario it belongs to.
type CheckpointEvent struct {
	Scenario string `json:"scenario"`
	solver.Checkpoint
}

// errorBody is the JSON error envelope for non-200 responses.
type errorBody struct {
	Error string `json:"error"`
}

// clampSolverBudget lowers b to the clamp's bounds: a tighter (or
// only) eval cap and deadline win; the clamp's checkpoint cadence
// applies only when the stage has none.
func clampSolverBudget(b, clamp solver.Budget) solver.Budget {
	if clamp.MaxEvals > 0 && (b.MaxEvals == 0 || b.MaxEvals > clamp.MaxEvals) {
		b.MaxEvals = clamp.MaxEvals
	}
	if clamp.Deadline > 0 && (b.Deadline == 0 || b.Deadline > clamp.Deadline) {
		b.Deadline = clamp.Deadline
	}
	if clamp.Checkpoint > 0 && b.Checkpoint == 0 {
		b.Checkpoint = clamp.Checkpoint
	}
	return b
}

// streamCheckpointInterval is the checkpoint cadence a streamed
// request gets when neither its scenarios nor its clamp budget set
// one — without it a streamed solve would emit no progress events.
const streamCheckpointInterval = 50

// resolveRequest resolves a validated request's scenarios and applies
// the request-level budget clamp (and, for streamed requests, the
// per-scenario checkpoint callback) to each solver stage. onCP may be
// nil; it is invoked concurrently when scenarios solve in parallel.
func resolveRequest(req spec.RequestSpec, onCP func(scenario string, cp solver.Checkpoint)) ([]spec.Scenario, error) {
	var clamp solver.Budget
	if req.Budget != nil {
		var err error
		if clamp, err = req.Budget.Budget(); err != nil {
			return nil, err
		}
	}
	specs := req.Specs()
	scs := make([]spec.Scenario, len(specs))
	for i, ss := range specs {
		sc, err := ss.Resolve()
		if err != nil {
			return nil, err
		}
		if sc.Solver != nil {
			// Resolve() builds a fresh stage per call, so mutating the
			// budget here never leaks across requests.
			sc.Solver.Budget = clampSolverBudget(sc.Solver.Budget, clamp)
			if onCP != nil {
				if sc.Solver.Budget.Checkpoint == 0 {
					sc.Solver.Budget.Checkpoint = streamCheckpointInterval
				}
				name := sc.Name
				if name == "" {
					name = fmt.Sprintf("scenario-%d", i)
				}
				sc.Solver.Budget.OnCheckpoint = func(cp solver.Checkpoint) { onCP(name, cp) }
			}
		}
		scs[i] = sc
	}
	return scs, nil
}

// RunRequest resolves and solves a request in-process — the exact
// code path the HTTP handler runs after admission, exported so the
// load generator's verify pass (and tests) can compare served
// responses against a direct solve bit-for-bit.
func RunRequest(req spec.RequestSpec) ([]ResultWire, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	scs, err := resolveRequest(req, nil)
	if err != nil {
		return nil, err
	}
	return toWire(sim.RunScenarios(scs)), nil
}

// clampedSpecs applies the request budget clamp to the serializable
// specs themselves — the fabric path, where scenarios travel to
// worker processes as JSON and resolved stages cannot. Checkpoint
// streaming does not cross the wire, so callers only fan out
// non-streamed requests.
func clampedSpecs(req spec.RequestSpec) []spec.ScenarioSpec {
	specs := req.Specs()
	if req.Budget == nil {
		return specs
	}
	out := make([]spec.ScenarioSpec, len(specs))
	for i, ss := range specs {
		if ss.Solver != nil {
			sol := *ss.Solver
			var b spec.BudgetSpec
			if sol.Budget != nil {
				b = *sol.Budget
			}
			b = spec.ClampBudget(b, *req.Budget)
			sol.Budget = &b
			ss.Solver = &sol
		}
		out[i] = ss
	}
	return out
}

// engineSnapshot is CountersSnapshot re-exported so the metrics
// handler and the load generator share one accessor.
func engineSnapshot() engine.Stats { return engine.CountersSnapshot() }

// sinceNS is a small helper keeping the wire structs free of
// time.Duration (which JSON-encodes as bare ns anyway).
func sinceNS(t time.Time) int64 { return time.Since(t).Nanoseconds() }
