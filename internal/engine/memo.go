package engine

import "sync"

// MemoShard is one lock-striped slice of a Memo: a map guarded by a
// read-write lock. It is the single sharded-memoization helper shared
// by the engine's cost-model cache and the solver's evaluator (which
// previously carried its own copy).
type MemoShard[K comparable, V any] struct {
	mu sync.RWMutex
	m  map[K]V
}

// Get returns the memoized value for k, computing it at most once per
// distinct key observed at insert time; fresh reports whether this
// call stored a new entry. Concurrent misses on the same key may both
// compute, but only the first store wins and only it reports fresh —
// so counting fresh results yields the distinct-key count, identical
// at any worker count for a deterministic compute.
func (s *MemoShard[K, V]) Get(k K, compute func() V) (v V, fresh bool) {
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	if ok {
		return v, false
	}
	v = compute()
	s.mu.Lock()
	if old, ok := s.m[k]; ok {
		s.mu.Unlock()
		return old, false
	}
	if s.m == nil {
		s.m = make(map[K]V)
	}
	s.m[k] = v
	s.mu.Unlock()
	return v, true
}

// Peek returns the memoized value for k without computing anything on
// a miss — the probe batched pricing and delta evaluation use to
// split already-priced terms from genuinely new work.
func (s *MemoShard[K, V]) Peek(k K) (V, bool) {
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	return v, ok
}

// each calls f for every entry of the shard under its read lock.
func (s *MemoShard[K, V]) each(f func(K, V)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for k, v := range s.m {
		f(k, v)
	}
}

// len returns the shard's entry count.
func (s *MemoShard[K, V]) len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Memo is a goroutine-safe sharded memoization map: the caller's hash
// function spreads keys over power-of-two lock stripes so parallel
// workers do not serialize on one lock.
type Memo[K comparable, V any] struct {
	hash   func(K) uint64
	shards []MemoShard[K, V]
	mask   uint64
}

// NewMemo returns a memo with at least the requested shard count
// (rounded up to a power of two) using hash for shard selection. The
// hash only picks the stripe, so it may mix any representative subset
// of the key.
func NewMemo[K comparable, V any](shards int, hash func(K) uint64) *Memo[K, V] {
	n := 1
	for n < shards {
		n <<= 1
	}
	m := &Memo[K, V]{hash: hash, shards: make([]MemoShard[K, V], n), mask: uint64(n - 1)}
	for i := range m.shards {
		m.shards[i].m = make(map[K]V)
	}
	return m
}

// Get returns the memoized value for k, computing and storing it on
// first use; fresh reports whether this call stored the entry (see
// MemoShard.Get).
func (m *Memo[K, V]) Get(k K, compute func() V) (V, bool) {
	return m.shards[m.hash(k)&m.mask].Get(k, compute)
}

// Peek returns the memoized value for k, or the zero value and false,
// without computing anything.
func (m *Memo[K, V]) Peek(k K) (V, bool) {
	return m.shards[m.hash(k)&m.mask].Peek(k)
}

// Range calls f for every memoized entry, one shard at a time under
// that shard's read lock. Iteration order is unspecified; f must not
// call back into the memo (it would self-deadlock on the shard lock).
func (m *Memo[K, V]) Range(f func(K, V)) {
	for i := range m.shards {
		m.shards[i].each(f)
	}
}

// Shards returns the shard count (always a power of two).
func (m *Memo[K, V]) Shards() int { return len(m.shards) }

// Len returns the total entry count across shards.
func (m *Memo[K, V]) Len() int {
	n := 0
	for i := range m.shards {
		n += m.shards[i].len()
	}
	return n
}
