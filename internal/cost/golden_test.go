package cost_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"temp/internal/baselines"
	"temp/internal/cost"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
)

// goldenBreakdown pins every float field of one pre-refactor
// cost.Evaluate result. JSON float64 round-trips are exact (shortest
// representation that parses back to the same bits), so equality
// checks below are bit-level.
type goldenBreakdown struct {
	Step      float64 `json:"step"`
	Compute   float64 `json:"compute"`
	Stream    float64 `json:"stream"`
	Coll      float64 `json:"coll"`
	P2P       float64 `json:"p2p"`
	Bubble    float64 `json:"bubble"`
	Optimizer float64 `json:"optimizer"`
	MemTotal  float64 `json:"mem_total"`
	EnergyCmp float64 `json:"energy_compute"`
	EnergyCom float64 `json:"energy_comm"`
	EnergyDRM float64 `json:"energy_dram"`
	Tput      float64 `json:"tput"`
	Power     float64 `json:"power"`
	PowerEff  float64 `json:"power_eff"`
	BWUtil    float64 `json:"bw_util"`
}

func toGolden(b cost.Breakdown) goldenBreakdown {
	return goldenBreakdown{
		Step: b.StepTime, Compute: b.ComputeTime, Stream: b.StreamTime,
		Coll: b.CollectiveTime, P2P: b.P2PTime, Bubble: b.BubbleTime,
		Optimizer: b.OptimizerTime, MemTotal: b.Memory.Total(),
		EnergyCmp: b.EnergyCompute, EnergyCom: b.EnergyComm, EnergyDRM: b.EnergyDRAM,
		Tput: b.ThroughputTokens, Power: b.Power, PowerEff: b.PowerEfficiency,
		BWUtil: b.BWUtilization,
	}
}

// goldenCase is one (wafer, model, system, config) evaluation captured
// before the backend refactor.
type goldenCase struct {
	Wafer     string          `json:"wafer"`
	Model     string          `json:"model"`
	System    string          `json:"system"`
	Config    string          `json:"config"`
	ConfigIdx int             `json:"config_idx"`
	Breakdown goldenBreakdown `json:"breakdown"`
}

const goldenPath = "testdata/analytic_golden.json"

// goldenWafers and goldenSystems enumerate every registered wafer and
// system constructor (mirroring the spec registries, which this
// package cannot import without a cycle).
func goldenWafers() []hw.Wafer {
	return []hw.Wafer{hw.EvaluationWafer(), hw.ReferenceWafer(), hw.ComparisonWafer32()}
}

func goldenSystems() []baselines.System {
	return append(baselines.Six(), baselines.TEMP())
}

// goldenConfigs picks a deterministic spread of each system's space:
// first, middle and last configuration.
func goldenConfigs(s baselines.System, dies int) ([]parallel.Config, []int) {
	space := s.Space(dies)
	if len(space) == 0 {
		return nil, nil
	}
	idxs := []int{0, len(space) / 2, len(space) - 1}
	var cfgs []parallel.Config
	var out []int
	seen := map[int]bool{}
	for _, i := range idxs {
		if seen[i] {
			continue
		}
		seen[i] = true
		cfgs = append(cfgs, space[i])
		out = append(out, i)
	}
	return cfgs, out
}

// generateGolden evaluates every case with the monolithic entry point.
func generateGolden(t *testing.T) []goldenCase {
	t.Helper()
	var out []goldenCase
	for _, w := range goldenWafers() {
		for _, m := range model.Zoo() {
			for _, sys := range goldenSystems() {
				cfgs, idxs := goldenConfigs(sys, w.Dies())
				for i, cfg := range cfgs {
					b, err := cost.Evaluate(m, w, cfg, sys.Opts)
					if err != nil {
						continue // unplaceable on this grid; not pinned
					}
					out = append(out, goldenCase{
						Wafer: w.Name, Model: m.Name, System: sys.Name,
						Config: cfg.String(), ConfigIdx: idxs[i],
						Breakdown: toGolden(b),
					})
				}
			}
		}
	}
	return out
}

// TestAnalyticGolden pins the analytic tier to the pre-refactor
// cost.Evaluate: every registered wafer × model × system (at a
// deterministic spread of each system's configuration space) must
// reproduce the captured breakdown bit-identically. Regenerate with
// UPDATE_COST_GOLDEN=1 go test ./internal/cost -run TestAnalyticGolden
// only when an intentional cost-model change lands.
func TestAnalyticGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep is not -short")
	}
	if os.Getenv("UPDATE_COST_GOLDEN") != "" {
		cases := generateGolden(t)
		buf, err := json.MarshalIndent(cases, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d cases to %s", len(cases), goldenPath)
		return
	}
	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	var cases []goldenCase
	if err := json.Unmarshal(buf, &cases); err != nil {
		t.Fatal(err)
	}
	if len(cases) == 0 {
		t.Fatal("empty golden file")
	}
	wafers := map[string]hw.Wafer{}
	for _, w := range goldenWafers() {
		wafers[w.Name] = w
	}
	models := map[string]model.Config{}
	for _, m := range model.Zoo() {
		models[m.Name] = m
	}
	systems := map[string]baselines.System{}
	for _, s := range goldenSystems() {
		systems[s.Name] = s
	}
	for _, gc := range cases {
		gc := gc
		t.Run(fmt.Sprintf("%s/%s/%s/%d", gc.Wafer, gc.Model, gc.System, gc.ConfigIdx), func(t *testing.T) {
			w, ok := wafers[gc.Wafer]
			if !ok {
				t.Fatalf("wafer %q no longer registered", gc.Wafer)
			}
			m, ok := models[gc.Model]
			if !ok {
				t.Fatalf("model %q no longer registered", gc.Model)
			}
			sys, ok := systems[gc.System]
			if !ok {
				t.Fatalf("system %q no longer registered", gc.System)
			}
			space := sys.Space(w.Dies())
			if gc.ConfigIdx >= len(space) {
				t.Fatalf("config index %d outside space of %d", gc.ConfigIdx, len(space))
			}
			cfg := space[gc.ConfigIdx]
			if cfg.String() != gc.Config {
				t.Fatalf("config at index %d is %s, golden captured %s", gc.ConfigIdx, cfg, gc.Config)
			}
			check := func(label string, b cost.Breakdown) {
				if got := toGolden(b); got != gc.Breakdown {
					t.Errorf("%s breakdown diverged from pre-refactor capture:\n got  %+v\n want %+v",
						label, got, gc.Breakdown)
				}
			}
			b, err := cost.Evaluate(m, w, cfg, sys.Opts)
			if err != nil {
				t.Fatalf("Evaluate: %v", err)
			}
			check("Evaluate", b)
			// The analytic backend must be the monolithic entry point,
			// bit for bit.
			be, err := cost.NewBackend("analytic")
			if err != nil {
				t.Fatalf("NewBackend(analytic): %v", err)
			}
			pb, err := be.Price(m, w, cfg, sys.Opts)
			if err != nil {
				t.Fatalf("analytic Price: %v", err)
			}
			check("analytic backend Price", pb)
		})
	}
}
