// Command tempbench regenerates the paper's tables and figures
// through the repository's simulator. Run with -list to see the
// experiment IDs, -exp <id> for a single artefact, or no flags for
// the full evaluation suite. The suite fans out across -workers
// goroutines on the shared evaluation engine; -json additionally
// writes each experiment's wall-clock time and headline observation
// to a machine-readable file for perf tracking across revisions.
//
// Models and wafers resolve through the scenario registry: -model and
// -wafer re-run the Table-II-driven experiments on a different
// footing, and -scenario/-scenarios evaluate declarative JSON
// scenarios outside the paper's frozen set entirely.
//
//	tempbench -exp fig13          # Fig. 13 training comparison
//	tempbench -quick              # full suite on reduced model set
//	tempbench -quick -json bench.json
//	tempbench -exp fig13 -model llama3-70b -wafer wsc-6x8
//	tempbench -exp strategies     # search-strategy comparison table
//	tempbench -scenarios scenarios/   # batch of JSON scenarios
//	tempbench -scenario s.json -strategy portfolio -budget 20000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"temp/internal/baselines"
	"temp/internal/collective"
	"temp/internal/cost"
	"temp/internal/distrib"
	"temp/internal/engine"
	"temp/internal/experiments"
	"temp/internal/fault"
	"temp/internal/hw"
	"temp/internal/sim"
	"temp/internal/solver"
	"temp/internal/spec"
	"temp/internal/unit"
)

// record is one experiment's entry in the -json output. Seconds is
// wall-clock while the suite's other experiments run concurrently on
// the same cores, so it ranks experiments within one run; for
// revision-to-revision comparison use TotalSeconds, or time one
// experiment in isolation with -exp.
type record struct {
	ID      string  `json:"id"`
	Title   string  `json:"title"`
	Seconds float64 `json:"seconds"`
	Rows    int     `json:"rows"`
	// Backend is the cost backend the run priced through and Strategy
	// the solver strategy in effect (scenario runs) — together they
	// let BENCH_*.json track the fidelity/speed trajectory across
	// revisions.
	Backend  string `json:"backend,omitempty"`
	Strategy string `json:"strategy,omitempty"`
	Headline string `json:"headline,omitempty"`
}

// output is the top-level -json document.
type output struct {
	Quick        bool    `json:"quick"`
	Workers      int     `json:"workers"`
	Backend      string  `json:"backend,omitempty"`
	TotalSeconds float64 `json:"total_seconds"`
	// Memory-tier memo counters: hits served from the in-process
	// cache, misses priced exactly this run. EvalsPerSec is the
	// candidate-throughput headline — exact cost-model computations
	// per wall-clock second.
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	EvalsPerSec float64 `json:"evals_per_sec"`
	// Disk-tier counter: results served from the -memo-dir persistent
	// memo instead of being re-priced (warm starts drive this to the
	// cold run's miss count while misses drop to ~0).
	CacheDiskHits int64 `json:"cache_disk_hits"`
	// Persistent-memo hygiene: records rewritten away by open-time
	// auto-compaction and corrupt tail bytes dropped during recovery
	// (both 0 for a clean or absent memo).
	CacheDiskCompacted    int `json:"cache_disk_compacted,omitempty"`
	CacheDiskDroppedBytes int `json:"cache_disk_dropped_bytes,omitempty"`
	// Batched-pricing telemetry: PriceBatch kernel invocations and the
	// total candidates they priced (BatchedJobs/BatchCalls is the mean
	// batch size).
	BatchCalls  int64 `json:"batch_calls"`
	BatchedJobs int64 `json:"batched_jobs"`
	// Lowering-cache counters (the memoized collective lowerings the
	// hot path shares across candidates) ride along so BENCH_*.json
	// tracks hot-path cache effectiveness across revisions.
	LoweringTemplates int   `json:"lowering_templates,omitempty"`
	LoweringHits      int64 `json:"lowering_hits,omitempty"`
	LoweringMisses    int64 `json:"lowering_misses,omitempty"`
	// Distributed-run telemetry: the -distribute worker count and the
	// fabric's per-worker throughput / steal counters. The engine
	// cache counters above aggregate coordinator + workers.
	Distribute  int            `json:"distribute,omitempty"`
	Distrib     *distrib.Stats `json:"distrib,omitempty"`
	Experiments []record       `json:"experiments"`
}

// finishDistrib shuts the fabric down and folds its workers' engine
// cache counters into stats and its fabric telemetry into the output.
// No-op on a nil fabric.
func finishDistrib(out output, f *distrib.Fabric, workers int, stats *engine.Stats) output {
	if f == nil {
		return out
	}
	fs := f.Shutdown()
	t := fs.EngineTotals()
	stats.Hits += t.Hits
	stats.Misses += t.Misses
	stats.DiskHits += t.DiskHits
	stats.BatchCalls += t.BatchCalls
	stats.BatchedJobs += t.BatchedJobs
	out.Distribute = workers
	out.Distrib = &fs
	return out
}

// workerPassthrough builds the flag tail replicated onto spawned
// worker processes so they price with the coordinator's exact
// configuration (engine bound, shared memo dir, overrides).
func workerPassthrough(workers int, memoDir, modelNames, waferName, backend string) []string {
	args := []string{"-workers", fmt.Sprint(workers)}
	if memoDir != "" {
		args = append(args, "-memo-dir", memoDir)
	}
	if modelNames != "" {
		args = append(args, "-model", modelNames)
	}
	if waferName != "" {
		args = append(args, "-wafer", waferName)
	}
	if backend != "" {
		args = append(args, "-backend", backend)
	}
	return args
}

// fabTuning carries the resilience knobs every fabric construction
// shares: the -chaos injection campaign, -sync-memo shipping, and the
// -heartbeat liveness cadence.
type fabTuning struct {
	chaos       *distrib.ChaosConfig
	syncMemo    bool
	heartbeat   time.Duration
	missedBeats int
}

// newFabric attaches n workers: spawned self-invocations by default,
// TCP-accepted when listen is set. Attach failures degrade (warn and
// run with fewer workers, possibly in-process) rather than abort.
func newFabric(n int, listen string, shardSize, retries int, passthrough []string, tune fabTuning) *distrib.Fabric {
	if n <= 0 && listen == "" {
		return nil
	}
	opts := distrib.Options{
		Workers: n, Listen: listen, ShardSize: shardSize, Retries: retries,
		Chaos: tune.chaos, SyncMemo: tune.syncMemo,
		Heartbeat: tune.heartbeat, MissedBeats: tune.missedBeats,
	}
	if listen == "" {
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintln(os.Stderr, "tempbench: distrib:", err)
			return nil
		}
		opts.Command = append([]string{exe, "-worker-mode"}, passthrough...)
	}
	f, err := distrib.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tempbench: distrib:", err)
	}
	return f
}

// withEngineStats stamps the evaluation-cache counters — memory hits,
// persistent-memo (disk) hits, exact-pricing misses, batched-kernel
// telemetry — and derives evals_per_sec from the already-set
// TotalSeconds.
func (o output) withEngineStats(s engine.Stats) output {
	o.CacheHits, o.CacheMisses, o.CacheDiskHits = s.Hits, s.Misses, s.DiskHits
	o.CacheDiskCompacted, o.CacheDiskDroppedBytes = s.DiskCompacted, s.DiskDropped
	o.BatchCalls, o.BatchedJobs = s.BatchCalls, s.BatchedJobs
	if o.TotalSeconds > 0 {
		o.EvalsPerSec = float64(s.Misses) / o.TotalSeconds
	}
	return o
}

// withLoweringStats stamps the collective lowering-cache counters.
func (o output) withLoweringStats() output {
	ls := collective.CacheStats()
	o.LoweringTemplates = ls.Templates
	o.LoweringHits = ls.Hits
	o.LoweringMisses = ls.Misses
	return o
}

// startProfiles arms the pprof flags: a CPU profile covering the whole
// run and a heap profile snapshotted at exit. The returned stop
// function must run before the process exits (it is skipped on error
// exits, which is fine — profiles of failed runs mislead anyway).
func startProfiles(cpuPath, memPath string) (func(), error) {
	stop := func() {}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return stop, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return stop, err
		}
		stop = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if memPath == "" {
		return stop, nil
	}
	cpuStop := stop
	return func() {
		cpuStop()
		f, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tempbench: memprofile:", err)
			return
		}
		defer f.Close()
		runtime.GC() // materialize accurate live-heap statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "tempbench: memprofile:", err)
		}
	}, nil
}

// scenarioFabric builds the fabric for a scenario batch: the CLI
// -distribute always wins; otherwise the batch's first spec-declared
// distrib block applies. Returns the fabric (nil = in-process) and
// the effective worker count.
func scenarioFabric(specs []spec.ScenarioSpec, distribute int, listen string, passthrough []string, tune fabTuning) (*distrib.Fabric, int) {
	shard, retries := 0, 0
	n := distribute
	for _, s := range specs {
		if s.Distrib != nil {
			if n == 0 {
				n = s.Distrib.Workers
			}
			shard, retries = s.Distrib.ShardSize, s.Distrib.Retries
			// Spec-declared resilience knobs apply unless the CLI set
			// its own (flags always win).
			if tune.heartbeat == 0 && s.Distrib.HeartbeatMS > 0 {
				tune.heartbeat = time.Duration(s.Distrib.HeartbeatMS) * time.Millisecond
			}
			if tune.missedBeats == 0 {
				tune.missedBeats = s.Distrib.MissedBeats
			}
			if s.Distrib.SyncMemo {
				tune.syncMemo = true
			}
			break
		}
	}
	if n <= 0 && listen == "" {
		return nil, 0
	}
	return newFabric(n, listen, shard, retries, passthrough, tune), n
}

// applyOverrides installs the -model/-wafer/-backend experiment
// overrides (shared by the coordinator's suite path and worker mode).
func applyOverrides(modelNames, waferName, backend string) error {
	if modelNames != "" {
		if err := experiments.UseModels(modelNames); err != nil {
			return err
		}
	}
	if waferName != "" {
		if err := experiments.UseWafer(waferName); err != nil {
			return err
		}
	}
	if backend != "" {
		if err := experiments.UseBackend(backend); err != nil {
			return err
		}
	}
	return nil
}

// backendLabel names the engine's default backend for perf records.
func backendLabel() string {
	if b := engine.DefaultBackend(); b != "" {
		return b
	}
	return "analytic"
}

func toRecord(t *experiments.Table, d time.Duration) record {
	r := record{ID: t.ID, Title: t.Title, Seconds: d.Seconds(), Rows: len(t.Rows), Backend: backendLabel()}
	if len(t.Notes) > 0 {
		r.Headline = t.Notes[0]
	}
	return r
}

func writeJSON(path string, out output) error {
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// scenarioTable renders a scenario batch in the experiments table
// format, so scenario runs and paper artefacts read alike.
func scenarioTable(results []sim.ScenarioResult) *experiments.Table {
	t := &experiments.Table{
		ID:      "scenarios",
		Title:   "Declarative scenario batch",
		Headers: []string{"scenario", "system", "config", "status", "step(s)", "tput tok/s", "mem/die", "fault-tput", "repair", "solver"},
	}
	for _, r := range results {
		if r.Err != nil {
			t.AddRow(r.Name, "-", "-", "ERROR", "-", "-", "-", "-", "-", "-")
			t.AddNote("%s: %v", r.Name, r.Err)
			continue
		}
		status := "ok"
		if !r.Result.Feasible {
			status = "OOM"
		}
		ft := "-"
		if r.Faulted {
			ft = fmt.Sprintf("%.3f", r.FaultNormTput)
		}
		rp := "-"
		if r.Recovery != nil {
			rp = fmt.Sprintf("%.3f->%.3f", r.Recovery.RepriceNorm, r.Recovery.RepairedNorm)
		}
		sv := "-"
		if r.Solver != nil {
			sv = fmt.Sprintf("%s %.3fms", r.Solver.Strategy, r.Solver.FinalCost*1e3)
		}
		t.AddRow(r.Name, r.Result.System, r.Result.Config.String(), status,
			fmt.Sprintf("%.3f", r.Result.StepTime),
			fmt.Sprintf("%.1f", r.Result.ThroughputTokens),
			unit.Bytes(r.Result.Memory.Total()), ft, rp, sv)
		if r.Campaign != nil {
			worst := r.Campaign.Cells[len(r.Campaign.Cells)-1]
			t.AddNote("%s: campaign %d cells x %d trials; worst cell link %.0f%% core %.0f%%: functional %.2f, mean norm %.3f",
				r.Name, len(r.Campaign.Cells), r.Campaign.Trials,
				worst.LinkRate*100, worst.CoreRate*100, worst.FunctionalRate, worst.MeanNorm)
		}
	}
	return t
}

// attachResilience mutates a scenario spec per the -repair and
// -fault-campaign flags: -repair rides on an existing fault stage;
// -fault-campaign adds one (the campaign needs no injection rates, so
// a missing fault stage is created empty).
func attachResilience(ss *spec.ScenarioSpec, repair, campaign bool) {
	if repair && ss.Fault != nil && ss.Fault.Repair == nil {
		ss.Fault.Repair = &spec.RepairSpec{}
	}
	if campaign {
		if ss.Fault == nil {
			ss.Fault = &spec.FaultSpec{}
		}
		if ss.Fault.Campaign == nil {
			ss.Fault.Campaign = &spec.CampaignSpec{}
		}
	}
}

// writeCampaignsJSON writes the campaign survivability artifact: one
// result per campaign-staged scenario.
func writeCampaignsJSON(path string, crs []fault.CampaignResult) error {
	buf, err := json.MarshalIndent(crs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// runStandaloneCampaign runs a fault campaign outside the scenario
// path: baselines.Best picks the mapping for the selected model/wafer
// pair, then the campaign sweeps it over the default (-quick: reduced)
// grid and writes the survivability artifact.
func runStandaloneCampaign(path, modelNames, waferName, backend string, quick bool, seed int64, workers int, fab *distrib.Fabric) error {
	name := "gpt3-6.7b"
	if modelNames != "" {
		name = strings.TrimSpace(strings.Split(modelNames, ",")[0])
	}
	m, err := spec.LookupModel(name)
	if err != nil {
		return err
	}
	w := hw.EvaluationWafer()
	if waferName != "" {
		if w, err = spec.LookupWafer(waferName); err != nil {
			return err
		}
	}
	key := ""
	if backend != "" {
		stage, err := spec.CostOverride(backend, seed)
		if err != nil {
			return err
		}
		key = stage.Key
	}
	sys := baselines.TEMP()
	best, err := baselines.Best(sys, m, w)
	if err != nil {
		return err
	}
	c := fault.Campaign{
		Model: m, Wafer: w, Config: best.Config, Opts: sys.Opts,
		Backend: key, Seed: seed, Workers: workers,
	}
	if quick {
		c.LinkRates = []float64{0, 0.2, 0.4}
		c.CoreRates = []float64{0, 0.1}
		c.Trials = 4
	}
	var cr fault.CampaignResult
	if fab != nil {
		cr, err = c.RunOn(fab)
	} else {
		cr, err = c.Run()
	}
	if err != nil {
		return err
	}
	fmt.Printf("fault campaign: %s on %s, config %s (%d trials/cell, seed %d, backend %s)\n",
		cr.Model, cr.Wafer, cr.Config, cr.Trials, cr.Seed, cr.Backend)
	for _, cl := range cr.Cells {
		fmt.Printf("  link %4.0f%% core %4.0f%%: functional %5.1f%%  mean %.3f  p5 %.3f  min %.3f\n",
			cl.LinkRate*100, cl.CoreRate*100, cl.FunctionalRate*100, cl.MeanNorm, cl.P5Norm, cl.MinNorm)
	}
	return writeCampaignsJSON(path, []fault.CampaignResult{cr})
}

func runScenarios(specs []spec.ScenarioSpec, jsonPath string, workers int, override *spec.SolverStage, costStage *spec.CostStage, campaignPath string, fab *distrib.Fabric, ov sim.Overrides, distributed int) error {
	start := time.Now()
	var results []sim.ScenarioResult
	if fab != nil {
		results = sim.RunScenarioSpecsOn(fab, specs, ov)
	} else {
		results = sim.RunScenarioSpecsWithStages(specs, override, costStage)
	}
	tab := scenarioTable(results)
	tab.Fprint(os.Stdout)
	if campaignPath != "" {
		var crs []fault.CampaignResult
		for _, r := range results {
			if r.Campaign != nil {
				crs = append(crs, *r.Campaign)
			}
		}
		if err := writeCampaignsJSON(campaignPath, crs); err != nil {
			return err
		}
	}
	if jsonPath != "" {
		stats := engine.CountersSnapshot()
		rec := toRecord(tab, time.Since(start))
		switch {
		case costStage != nil && costStage.Key != "":
			rec.Backend = costStage.Key
		case costStage == nil:
			// No CLI override: label from the spec-declared cost stages,
			// but only when the whole batch shares one tier — a mixed
			// batch keeps the default label rather than misattributing
			// timings to one spec's tier.
			uniform := ""
			for i, s := range specs {
				key := ""
				if s.Cost != nil {
					key = s.Cost.Key()
				}
				if i > 0 && key != uniform {
					uniform = ""
					break
				}
				uniform = key
			}
			if uniform != "" {
				rec.Backend = uniform
			}
		}
		if override != nil {
			rec.Strategy = override.Name
		} else {
			// Label the strategy only when every solver-staged scenario
			// in the batch used the same one.
			uniform := ""
			for _, r := range results {
				if r.Solver == nil {
					continue
				}
				if uniform != "" && r.Solver.Strategy != uniform {
					uniform = ""
					break
				}
				uniform = r.Solver.Strategy
			}
			rec.Strategy = uniform
		}
		out := output{
			Workers:      workers,
			Backend:      rec.Backend,
			TotalSeconds: time.Since(start).Seconds(),
			Experiments:  []record{rec},
		}
		out = finishDistrib(out, fab, distributed, &stats)
		if err := writeJSON(jsonPath, out.withEngineStats(stats).withLoweringStats()); err != nil {
			return err
		}
	}
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("scenario %s: %w", r.Name, r.Err)
		}
	}
	return nil
}

func main() {
	exp := flag.String("exp", "", "experiment id (default: run all)")
	quick := flag.Bool("quick", false, "reduced model set for fast runs")
	list := flag.Bool("list", false, "list experiment ids")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "evaluation worker-pool size")
	jsonPath := flag.String("json", "", "write per-experiment timings and headline metrics to this file")
	modelNames := flag.String("model", "", "run Table-II experiments on these registered models (comma-separated)")
	waferName := flag.String("wafer", "", "run experiments on this registered wafer")
	scenario := flag.String("scenario", "", "run one scenario JSON file")
	scenarios := flag.String("scenarios", "", "run every *.json scenario in a directory")
	strategy := flag.String("strategy", "", "add/override a solver stage on scenario runs (-list-strategies)")
	budget := flag.String("budget", "", "solver-stage budget: eval count, duration, or both (\"20000,30s\")")
	repair := flag.Bool("repair", false, "add a degradation-aware repair stage to scenario fault stages")
	faultCampaign := flag.String("fault-campaign", "", "run a deterministic fault campaign and write survivability JSON to this file")
	seed := flag.Int64("seed", 7, "solver-stage randomness seed")
	backend := flag.String("backend", "", "cost backend pricing every evaluation (-list-backends); accepts name or name@seed=N")
	listM := flag.Bool("list-models", false, "list registered model names")
	listW := flag.Bool("list-wafers", false, "list registered wafer names")
	listSt := flag.Bool("list-strategies", false, "list registered search strategies")
	listB := flag.Bool("list-backends", false, "list registered cost backends")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	memoDir := flag.String("memo-dir", os.Getenv("TEMPMEMO"),
		"persist priced results in this directory and warm-start from them (default $TEMPMEMO)")
	distribute := flag.Int("distribute", 0, "shard the run across N worker subprocesses (0 = in-process)")
	listenAddr := flag.String("listen", "", "accept -distribute workers over TCP on this address instead of spawning them")
	connectAddr := flag.String("connect", "", "worker: dial the coordinator's -listen address and serve shards")
	redial := flag.Int("redial", 10, "-connect: re-dial attempts after connection loss with exponential backoff (0 = single attempt)")
	workerMode := flag.Bool("worker-mode", false, "internal: serve shards from a coordinator over stdio")
	chaosSpec := flag.String("chaos", "", "deterministic chaos injection on fabric links: \"seed,rate\" spreads rate across delay/drop/corrupt/truncate/stall/kill (results stay bit-identical)")
	syncMemo := flag.Bool("sync-memo", false, "ship the warm disk-memo to attaching workers over the wire (shared-nothing workers)")
	heartbeat := flag.Duration("heartbeat", 0, "fabric liveness ping cadence (0 = default 500ms); 3 missed beats declare a worker dead")
	flag.Parse()
	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tempbench:", err)
		os.Exit(1)
	}
	defer stopProfiles()
	engine.SetWorkers(*workers)
	if *memoDir != "" {
		dm, err := engine.AttachDiskMemo(*memoDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tempbench:", err)
			os.Exit(1)
		}
		defer dm.Close()
	}

	if *workerMode || *connectAddr != "" {
		// Worker side of the distributed fabric: apply the replicated
		// overrides, then serve shards until the coordinator says done.
		err := applyOverrides(*modelNames, *waferName, *backend)
		if err == nil {
			switch {
			case *connectAddr != "" && *redial > 0:
				err = distrib.DialAndServe(*connectAddr, distrib.RedialOptions{Attempts: *redial})
			case *connectAddr != "":
				err = distrib.ConnectAndServe(*connectAddr)
			default:
				err = distrib.ServeStdio()
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tempbench: worker:", err)
			os.Exit(1)
		}
		return
	}
	passthrough := workerPassthrough(*workers, *memoDir, *modelNames, *waferName, *backend)
	tune := fabTuning{syncMemo: *syncMemo, heartbeat: *heartbeat}
	if *chaosSpec != "" {
		cc, err := distrib.ParseChaos(*chaosSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tempbench:", err)
			os.Exit(1)
		}
		tune.chaos = cc
	}

	switch {
	case *listB:
		for _, n := range cost.BackendNames() {
			fmt.Println(n)
		}
		return
	case *listM:
		for _, n := range spec.Models.Names() {
			fmt.Println(n)
		}
		return
	case *listW:
		for _, n := range spec.Wafers.Names() {
			fmt.Println(n)
		}
		return
	case *listSt:
		for _, n := range solver.StrategyNames() {
			fmt.Println(n)
		}
		return
	case *scenario != "":
		ss, err := spec.LoadScenario(*scenario)
		var override *spec.SolverStage
		var costStage *spec.CostStage
		if err == nil {
			override, err = spec.SolverOverride(*strategy, *budget, *seed, *workers)
		}
		if err == nil {
			costStage, err = spec.CostOverride(*backend, *seed)
		}
		if err == nil {
			attachResilience(&ss, *repair, *faultCampaign != "")
			fab, n := scenarioFabric([]spec.ScenarioSpec{ss}, *distribute, *listenAddr, passthrough, tune)
			defer fab.Shutdown()
			ov := sim.Overrides{Strategy: *strategy, Budget: *budget, Seed: *seed, Workers: *workers, Backend: *backend}
			err = runScenarios([]spec.ScenarioSpec{ss}, *jsonPath, *workers, override, costStage, *faultCampaign, fab, ov, n)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tempbench:", err)
			os.Exit(1)
		}
		return
	case *scenarios != "":
		sss, err := spec.LoadScenarioDir(*scenarios)
		var override *spec.SolverStage
		var costStage *spec.CostStage
		if err == nil {
			override, err = spec.SolverOverride(*strategy, *budget, *seed, *workers)
		}
		if err == nil {
			costStage, err = spec.CostOverride(*backend, *seed)
		}
		if err == nil {
			for i := range sss {
				attachResilience(&sss[i], *repair, *faultCampaign != "")
			}
			fab, n := scenarioFabric(sss, *distribute, *listenAddr, passthrough, tune)
			defer fab.Shutdown()
			ov := sim.Overrides{Strategy: *strategy, Budget: *budget, Seed: *seed, Workers: *workers, Backend: *backend}
			err = runScenarios(sss, *jsonPath, *workers, override, costStage, *faultCampaign, fab, ov, n)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tempbench:", err)
			os.Exit(1)
		}
		return
	case *faultCampaign != "":
		// Standalone campaign: the best TEMP mapping of the selected
		// model/wafer pair, swept over the default (or -quick reduced)
		// grid — the CI survivability artifact path.
		fab := newFabric(*distribute, *listenAddr, 0, 0, passthrough, tune)
		defer fab.Shutdown()
		if err := runStandaloneCampaign(*faultCampaign, *modelNames, *waferName, *backend, *quick, *seed, *workers, fab); err != nil {
			fmt.Fprintln(os.Stderr, "tempbench:", err)
			os.Exit(1)
		}
		return
	}

	if err := applyOverrides(*modelNames, *waferName, *backend); err != nil {
		fmt.Fprintln(os.Stderr, "tempbench:", err)
		os.Exit(1)
	}

	if *list {
		for _, r := range experiments.Runners() {
			fmt.Println(r.ID)
		}
		return
	}
	fab := newFabric(*distribute, *listenAddr, 0, 0, passthrough, tune)
	defer fab.Shutdown()
	if *exp != "" {
		start := time.Now()
		tab, err := experiments.ByIDOn(fab, *exp, *quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tempbench:", err)
			os.Exit(1)
		}
		tab.Fprint(os.Stdout)
		if *jsonPath != "" {
			stats := engine.CountersSnapshot()
			out := output{
				Quick: *quick, Workers: engine.Workers(), Backend: backendLabel(),
				TotalSeconds: time.Since(start).Seconds(),
				Experiments:  []record{toRecord(tab, time.Since(start))},
			}
			out = finishDistrib(out, fab, *distribute, &stats)
			if err := writeJSON(*jsonPath, out.withEngineStats(stats).withLoweringStats()); err != nil {
				fmt.Fprintln(os.Stderr, "tempbench:", err)
				os.Exit(1)
			}
		}
		return
	}
	start := time.Now()
	var tabs []*experiments.Table
	var durs []time.Duration
	if fab != nil {
		tabs, durs, err = experiments.AllTimedOn(fab, *quick)
	} else {
		tabs, durs, err = experiments.AllTimed(*quick)
	}
	total := time.Since(start)
	for _, t := range tabs {
		t.Fprint(os.Stdout)
	}
	if *jsonPath != "" {
		stats := engine.CountersSnapshot()
		out := output{
			Quick: *quick, Workers: engine.Workers(), Backend: backendLabel(),
			TotalSeconds: total.Seconds(),
		}
		for i, t := range tabs {
			out.Experiments = append(out.Experiments, toRecord(t, durs[i]))
		}
		out = finishDistrib(out, fab, *distribute, &stats)
		if werr := writeJSON(*jsonPath, out.withEngineStats(stats).withLoweringStats()); werr != nil {
			fmt.Fprintln(os.Stderr, "tempbench:", werr)
			os.Exit(1)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tempbench:", err)
		os.Exit(1)
	}
}
