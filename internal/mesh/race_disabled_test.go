//go:build !race

package mesh

const raceEnabled = false
