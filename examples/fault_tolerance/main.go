// fault_tolerance demonstrates the §VIII-F mechanism: inject link and
// core faults into the wafer, localize them, and measure how TEMP's
// adaptive re-partitioning and re-routing preserve throughput
// (Fig. 20's curves) — then go beyond re-pricing: repair the mapping
// on the degraded fabric, sweep a survivability campaign, and find
// the worst-case mask for the chosen mapping.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"temp"
)

func main() {
	w := temp.EvaluationWafer()
	m := temp.GPT3_6_7B()
	cfg := temp.ParallelConfig{DP: 4, TATP: 8}
	o := temp.TEMPOptions()

	fmt.Println("link faults (Fig. 20(b)): throughput is sensitive — a cliff appears")
	for _, rate := range []float64{0, 0.1, 0.2, 0.35, 0.5, 0.8} {
		v, err := temp.FaultNormalizedThroughput(m, w, cfg, o,
			temp.FaultInjection{LinkRate: rate}, 6, 42)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  link fault rate %4.0f%% → normalized throughput %.2f\n", rate*100, v)
	}

	fmt.Println("core faults (Fig. 20(c)): graceful degradation under re-balancing")
	for _, rate := range []float64{0, 0.05, 0.10, 0.15, 0.20, 0.25} {
		v, err := temp.FaultNormalizedThroughput(m, w, cfg, o,
			temp.FaultInjection{CoreRate: rate, CoresPerDie: 64}, 6, 43)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  core fault rate %4.0f%% → normalized throughput %.2f\n", rate*100, v)
	}

	// One concrete faulted run with localization details.
	out := temp.EvaluateWithFaults(m, w, cfg, o,
		temp.FaultInjection{LinkRate: 0.15, CoreRate: 0.1, CoresPerDie: 64},
		rand.New(rand.NewSource(7)))
	fmt.Printf("mixed faults: %d dead links, %d dead dies, mean capacity %.2f, functional=%v\n",
		out.Report.DeadLinks, out.Report.DeadDies, out.Report.MeanCapacity, out.Functional)
	if out.Functional {
		fmt.Printf("  degraded step: %.3fs (%.0f tokens/s)\n",
			out.Breakdown.StepTime, out.Breakdown.ThroughputTokens)
	}

	// Repair: instead of keeping the pre-fault mapping on the degraded
	// fabric, warm-start a bounded search from it and re-map. A
	// communication-heavy mapping shows the recovery best: dead links
	// hurt it most, and the repair solve finds a layout that routes
	// around them.
	rec, err := temp.RepairInjectedFaults(m, w, temp.ParallelConfig{DP: 2, TATP: 16}, o,
		temp.FaultInjection{LinkRate: 0.15}, 3,
		temp.FaultRepairOptions{Budget: temp.SearchBudget{MaxEvals: 1500}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repair at 15%% link faults: re-price %.2f → repaired %.2f (config %s, %d evals, %s)\n",
		rec.RepriceNorm, rec.RepairedNorm, rec.RepairedConfig, rec.WarmEvals, rec.Strategy)

	// Campaign: a deterministic Monte Carlo survivability grid.
	cr, err := temp.FaultCampaign{
		Model: m, Wafer: w, Config: cfg, Opts: o,
		LinkRates: []float64{0, 0.2, 0.4},
		CoreRates: []float64{0, 0.1},
		Trials:    4, Seed: 42,
	}.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("survivability campaign (functional rate / mean norm tput):")
	for _, c := range cr.Cells {
		fmt.Printf("  link %.0f%% core %.0f%%: functional %.2f, mean %.2f, p5 %.2f\n",
			c.LinkRate*100, c.CoreRate*100, c.FunctionalRate, c.MeanNorm, c.P5Norm)
	}

	// Worst case: which 2 links hurt this mapping the most?
	wc, err := temp.FaultMaskSearch{K: 2, Seed: 42}.Run(m, w, cfg, o)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worst 2-link mask: norm tput %.2f, links %v\n", wc.Norm, wc.Links)
}
