// Package hw defines the hardware configurations of the systems the
// paper evaluates: the wafer-scale chip of Table I / Fig. 3, the
// multi-wafer assembly of §VIII-E, and the A100 GPU cluster used for
// the Fig. 15 comparison. It also encodes the physical constraint at
// the heart of the paper (§III-B): die-to-die interconnect on a 2.5D
// interposer is limited to adjacent dies because signal integrity
// collapses beyond 50 mm, so a wafer exposes only a 2D mesh with no
// long-distance or diagonal links.
package hw

import (
	"fmt"

	"temp/internal/unit"
)

// Die describes one compute die (Table I, logic + DRAM die stack).
type Die struct {
	// AreaMM2 is the logic die area in mm².
	AreaMM2 float64
	// WidthMM and HeightMM give the die footprint (Fig. 3).
	WidthMM, HeightMM float64
	// SRAMBytes is the on-die SRAM capacity.
	SRAMBytes float64
	// HBMBytes is the capacity of one HBM stack.
	HBMBytes float64
	// HBMStacks is the number of HBM stacks bonded to the die; the
	// Fig. 3 floorplan shows multiple stacks along the die edges,
	// and the per-die capacity line of Fig. 4(c) (~145 GB) matches
	// two 72 GB stacks.
	HBMStacks int
	// HBMBandwidth is the access bandwidth of one stack (bytes/s).
	HBMBandwidth float64
	// HBMLatency is the DRAM access latency in seconds.
	HBMLatency float64
	// HBMEnergyPerBit is the DRAM access energy (J/bit).
	HBMEnergyPerBit float64
	// PeakFLOPS is the die's peak FP16 throughput (FLOP/s).
	PeakFLOPS float64
	// FLOPSPerWatt is compute power efficiency (FLOP/s per watt).
	FLOPSPerWatt float64
	// FrequencyHz is the operating frequency.
	FrequencyHz float64
	// VectorFLOPS is the peak throughput of the vector units used by
	// softmax/normalization/element-wise operators; a fraction of the
	// PE-array GEMM throughput.
	VectorFLOPS float64
}

// MemCapacity returns the die's total HBM capacity across stacks.
func (d Die) MemCapacity() float64 {
	stacks := d.HBMStacks
	if stacks < 1 {
		stacks = 1
	}
	return float64(stacks) * d.HBMBytes
}

// MemBandwidth returns the die's aggregate HBM bandwidth.
func (d Die) MemBandwidth() float64 {
	stacks := d.HBMStacks
	if stacks < 1 {
		stacks = 1
	}
	return float64(stacks) * d.HBMBandwidth
}

// D2D describes the die-to-die interconnect of one mesh link.
type D2D struct {
	// Bandwidth is the per-direction link bandwidth (bytes/s).
	Bandwidth float64
	// Latency is the per-hop latency in seconds.
	Latency float64
	// EnergyPerBit is the transfer energy (J/bit).
	EnergyPerBit float64
	// MaxReachMM is the longest manufacturable link (signal
	// integrity limit, §III-B). Links between non-adjacent dies
	// would exceed it and are therefore absent from the mesh.
	MaxReachMM float64
	// FECLatency is the extra forward-error-correction latency that
	// a hypothetical long link would pay (§I: 210 ns, 14× a normal
	// hop). Kept for the motivation experiments.
	FECLatency float64
	// RampBytes is the transfer granularity at which the link
	// reaches half of peak efficiency. D2D links need tens to
	// hundreds of MB to hit peak (§III-B), so small messages see
	// lower effective bandwidth: eff(b) = b / (b + RampBytes).
	// Ring-collective chunks (bytes/N) sit well below this knee,
	// which is why stationary-tensor parallelism underuses wafer
	// links while TATP's bulk sub-tensor streams do not.
	RampBytes float64
}

// EffectiveBandwidth returns the granularity-adjusted bandwidth for a
// message of the given size.
func (d D2D) EffectiveBandwidth(bytes float64) float64 {
	if bytes <= 0 {
		return d.Bandwidth
	}
	eff := bytes / (bytes + d.RampBytes)
	return d.Bandwidth * eff
}

// Wafer is the full wafer-scale chip configuration.
type Wafer struct {
	Name string
	// Rows × Cols is the compute die array (Fig. 3: 6×8 on the
	// reference floorplan; §VIII-A evaluates a 4×8 array).
	Rows, Cols int
	Die        Die
	Link       D2D
	// IOBandwidth is the aggregate off-wafer bandwidth.
	IOBandwidth float64
	// InterWaferBandwidth is the per-wafer-pair bandwidth available
	// in multi-wafer systems (§VIII-I cites ~9 TB/s).
	InterWaferBandwidth float64
	// InterWaferLatency is the wafer-to-wafer hop latency.
	InterWaferLatency float64
}

// Dies returns the number of compute dies on the wafer.
func (w Wafer) Dies() int { return w.Rows * w.Cols }

// TotalHBMBytes returns the aggregate wafer memory.
func (w Wafer) TotalHBMBytes() float64 { return float64(w.Dies()) * w.Die.MemCapacity() }

// TotalPeakFLOPS returns the aggregate wafer compute.
func (w Wafer) TotalPeakFLOPS() float64 { return float64(w.Dies()) * w.Die.PeakFLOPS }

// Validate checks structural invariants.
func (w Wafer) Validate() error {
	if w.Rows <= 0 || w.Cols <= 0 {
		return fmt.Errorf("hw: wafer %q has non-positive die array %dx%d", w.Name, w.Rows, w.Cols)
	}
	if w.Die.PeakFLOPS <= 0 {
		return fmt.Errorf("hw: wafer %q has non-positive die FLOPS", w.Name)
	}
	if w.Die.HBMBytes <= 0 {
		return fmt.Errorf("hw: wafer %q has non-positive die HBM capacity", w.Name)
	}
	if w.Die.HBMBandwidth <= 0 {
		return fmt.Errorf("hw: wafer %q has non-positive die HBM bandwidth", w.Name)
	}
	if w.Link.Bandwidth <= 0 {
		return fmt.Errorf("hw: wafer %q has non-positive link bandwidth", w.Name)
	}
	return nil
}

// Custom builds a wafer from an arbitrary die array and component
// descriptions — the FromSpec entry point of the declarative scenario
// layer. Off-wafer and inter-wafer parameters that are zero inherit
// the §VIII-A evaluation defaults, so a spec only has to state what it
// changes.
func Custom(name string, rows, cols int, die Die, link D2D) Wafer {
	ref := EvaluationWafer()
	if name == "" {
		name = fmt.Sprintf("wsc-%dx%d", rows, cols)
	}
	w := Wafer{
		Name:                name,
		Rows:                rows,
		Cols:                cols,
		Die:                 die,
		Link:                link,
		IOBandwidth:         ref.IOBandwidth,
		InterWaferBandwidth: ref.InterWaferBandwidth,
		InterWaferLatency:   ref.InterWaferLatency,
	}
	if die.VectorFLOPS <= 0 {
		// Vector units scale with the PE array unless stated.
		w.Die.VectorFLOPS = die.PeakFLOPS / 16
	}
	return w
}

// TableIDie returns the compute die of Table I: 500 mm² logic,
// 80 MB SRAM, 1800 TFLOPS at 2 TFLOPS/W, 72 GB HBM at 1 TB/s.
func TableIDie() Die {
	return Die{
		AreaMM2:         500,
		WidthMM:         33.25,
		HeightMM:        24.99,
		SRAMBytes:       80 * unit.MiB,
		HBMBytes:        72 * unit.GB,
		HBMStacks:       2,
		HBMBandwidth:    1 * unit.TB,
		HBMLatency:      100 * unit.Nanosecond,
		HBMEnergyPerBit: 6.0 * unit.PicoJoule,
		PeakFLOPS:       1800 * unit.TFLOPS,
		FLOPSPerWatt:    2 * unit.TFLOPS,
		FrequencyHz:     2.0e9,
		VectorFLOPS:     1800 * unit.TFLOPS / 16,
	}
}

// TableID2D returns the D2D interconnect of Table I: 4 TB/s, 200 ns,
// 5 pJ/bit. The 50 mm reach limit and 210 ns FEC penalty come from
// §I/§III-B; the tens-of-MB granularity ramp from §III-B.
func TableID2D() D2D {
	return D2D{
		Bandwidth:    4 * unit.TB,
		Latency:      200 * unit.Nanosecond,
		EnergyPerBit: 5.0 * unit.PicoJoule,
		MaxReachMM:   50,
		FECLatency:   210 * unit.Nanosecond,
		RampBytes:    32 * unit.MB,
	}
}

// EvaluationWafer returns the §VIII-A configuration: a 4×8 die array
// at 2 GHz with Table I dies and links.
func EvaluationWafer() Wafer {
	return Wafer{
		Name:                "wsc-4x8",
		Rows:                4,
		Cols:                8,
		Die:                 TableIDie(),
		Link:                TableID2D(),
		IOBandwidth:         4 * unit.TB,
		InterWaferBandwidth: 9 * unit.TB,
		InterWaferLatency:   1 * unit.Microsecond,
	}
}

// ReferenceWafer returns the Fig. 3 floorplan: 6×8 dies on a
// 215 mm × 215 mm wafer.
func ReferenceWafer() Wafer {
	w := EvaluationWafer()
	w.Name = "wsc-6x8"
	w.Rows, w.Cols = 6, 8
	return w
}

// WaferWithGrid returns the evaluation wafer resized to rows×cols,
// used by the scaling studies (Fig. 7(c) sweeps 4×5 up to 80×95-die
// style configurations at smaller granularity).
func WaferWithGrid(rows, cols int) Wafer {
	w := EvaluationWafer()
	w.Name = fmt.Sprintf("wsc-%dx%d", rows, cols)
	w.Rows, w.Cols = rows, cols
	return w
}

// ComparisonWafer32 returns the 32-die wafer used in Fig. 15, sized
// to match the FP16 peak of a 32×A100 cluster (312 TFLOPS per GPU):
// 32 dies × 312 TFLOPS.
func ComparisonWafer32() Wafer {
	w := WaferWithGrid(4, 8)
	w.Name = "wsc-4x8-a100match"
	w.Die.PeakFLOPS = 312 * unit.TFLOPS
	w.Die.VectorFLOPS = 312 * unit.TFLOPS / 16
	return w
}

// MultiWafer describes an assembly of identical wafers connected by
// inter-wafer links; pipeline parallelism spans wafers (§VIII-E).
type MultiWafer struct {
	Wafer  Wafer
	Wafers int
}

// Dies returns total dies across all wafers.
func (m MultiWafer) Dies() int { return m.Wafers * m.Wafer.Dies() }

// Cluster models the switched GPU system of Fig. 15: GPUs grouped
// into nodes with all-to-all NVSwitch bandwidth inside a node and
// InfiniBand between nodes. Because switches provide arbitrary
// physical rings, collectives on a Cluster pay no mesh-topology
// penalty — the property the paper contrasts WSCs against (§V).
type Cluster struct {
	Name            string
	Nodes           int
	GPUsPerNode     int
	GPUPeakFLOPS    float64
	GPUVectorFLOPS  float64
	GPUMemBytes     float64
	GPUMemBandwidth float64
	// IntraNodeBandwidth is per-GPU NVLink/NVSwitch bandwidth.
	IntraNodeBandwidth float64
	IntraNodeLatency   float64
	// InterNodeBandwidth is per-GPU network bandwidth.
	InterNodeBandwidth float64
	InterNodeLatency   float64
	EnergyPerBitIntra  float64
	EnergyPerBitInter  float64
	FLOPSPerWatt       float64
}

// GPUs returns the total device count.
func (c Cluster) GPUs() int { return c.Nodes * c.GPUsPerNode }

// A100Cluster returns the 4-node, 32-GPU A100 reference (Fig. 15):
// 312 TFLOPS FP16 per GPU, 600 GB/s NVSwitch, 25 GB/s/GPU IB.
func A100Cluster() Cluster {
	return Cluster{
		Name:               "a100-4x8",
		Nodes:              4,
		GPUsPerNode:        8,
		GPUPeakFLOPS:       312 * unit.TFLOPS,
		GPUVectorFLOPS:     312 * unit.TFLOPS / 16,
		GPUMemBytes:        80 * unit.GB,
		GPUMemBandwidth:    2.0 * unit.TB,
		IntraNodeBandwidth: 600 * unit.GB,
		IntraNodeLatency:   2 * unit.Microsecond,
		InterNodeBandwidth: 25 * unit.GB,
		InterNodeLatency:   5 * unit.Microsecond,
		EnergyPerBitIntra:  10 * unit.PicoJoule,
		EnergyPerBitInter:  30 * unit.PicoJoule,
		FLOPSPerWatt:       0.78 * unit.TFLOPS,
	}
}
