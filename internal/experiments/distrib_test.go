package experiments

import (
	"context"
	"reflect"
	"testing"
)

// TestByIDOnMatchesByID: one experiment routed through the fabric task
// codec (gob both ways, in-process path) matches the direct runner.
func TestByIDOnMatchesByID(t *testing.T) {
	direct, err := ByID("fig9", true)
	if err != nil {
		t.Fatal(err)
	}
	out, err := runTableTask(context.Background(), tableTask{ID: "fig9", Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*direct, out.Table) {
		t.Errorf("fig9 through the task codec differs:\n got %+v\nwant %+v", out.Table, *direct)
	}
	tab, err := ByIDOn(nil, "fig9", true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, tab) {
		t.Errorf("ByIDOn(nil) differs from ByID")
	}
}
