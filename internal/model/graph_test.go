package model

import (
	"math"
	"testing"
)

func TestBlockGraphStructure(t *testing.T) {
	g := BlockGraph(GPT3_6_7B())
	if len(g.Ops) != 12 {
		t.Fatalf("block has %d ops, want 12 (Fig. 12 block with fused attention)", len(g.Ops))
	}
	// GEMM-class ops: QKV, score, context, proj, FC1, FC2.
	var gemms, weighted int
	for _, o := range g.Ops {
		if o.Kind.IsGEMM() {
			gemms++
		}
		if o.HasWeight() {
			weighted++
		}
	}
	if gemms != 6 {
		t.Errorf("GEMM-class ops = %d, want 6", gemms)
	}
	if weighted != 4 {
		t.Errorf("weighted ops = %d, want 4 (QKV, proj, FC1, FC2)", weighted)
	}
}

func TestBlockWeightBytesMatchLayerParams(t *testing.T) {
	for _, c := range EvaluationModels() {
		g := BlockGraph(c)
		got := g.WeightBytes()
		// Graph carries the matmul weights; LayerParams adds the
		// small layer-norm vectors.
		want := float64(c.LayerParams()) * 2
		if r := got / want; r < 0.99 || r > 1.001 {
			t.Errorf("%s: block weight bytes %.3e vs layer params %.3e (ratio %.4f)",
				c.Name, got, want, r)
		}
	}
}

func TestBlockFLOPsMatchConfig(t *testing.T) {
	for _, c := range EvaluationModels() {
		g := BlockGraph(c)
		got := g.ForwardFLOPs()
		want := c.LayerFLOPs()
		if r := got / want; r < 0.95 || r > 1.05 {
			t.Errorf("%s: graph FLOPs %.3e vs config %.3e (ratio %.3f)", c.Name, got, want, r)
		}
	}
}

func TestOpKindStrings(t *testing.T) {
	kinds := map[OpKind]string{
		GEMM: "gemm", AttentionScore: "attn-score", Softmax: "softmax",
		AttentionContext: "attn-context", GeLU: "gelu", LayerNorm: "layernorm",
		Residual: "residual", Embedding: "embedding",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestCutPointsAvoidResidualSpans(t *testing.T) {
	g := BlockGraph(GPT3_6_7B())
	cuts := g.CutPoints()
	if len(cuts) == 0 {
		t.Fatal("no cut points found")
	}
	for _, c := range cuts {
		if g.Ops[c].ResidualSpan || g.Ops[c-1].ResidualSpan {
			t.Errorf("cut at %d splits a residual span", c)
		}
	}
}

func TestSegmentsCoverAllOps(t *testing.T) {
	g := BlockGraph(GPT3_175B())
	segs := g.Segments()
	if len(segs) < 2 {
		t.Fatalf("expected ≥2 residual-free segments, got %d", len(segs))
	}
	var n int
	for _, s := range segs {
		n += len(s)
	}
	if n != len(g.Ops) {
		t.Errorf("segments cover %d ops, want %d", n, len(g.Ops))
	}
	// Order must be preserved.
	id := 0
	for _, s := range segs {
		for _, o := range s {
			if o.ID < id {
				t.Fatalf("segment order broken at op %d", o.ID)
			}
			id = o.ID
		}
	}
}

func TestFlashFusedOpsMarked(t *testing.T) {
	g := BlockGraph(GPT3_6_7B())
	var fused int
	for _, o := range g.Ops {
		if o.FlashFused {
			fused++
			if o.Kind == GEMM {
				t.Errorf("plain GEMM %s marked flash-fused", o.Name)
			}
		}
	}
	if fused != 3 {
		t.Errorf("flash-fused ops = %d, want 3 (score, softmax, context)", fused)
	}
}

func TestIOBytesPositive(t *testing.T) {
	g := BlockGraph(Llama2_7B())
	for _, o := range g.Ops {
		if o.IOBytes() <= 0 {
			t.Errorf("op %s has non-positive IO bytes", o.Name)
		}
		if o.FLOPs <= 0 {
			t.Errorf("op %s has non-positive FLOPs", o.Name)
		}
	}
}

func TestAttentionQuadraticInSeq(t *testing.T) {
	short := BlockGraph(GPT3_6_7B())
	long := BlockGraph(GPT3_6_7B().WithSeq(4096, 128))
	var fShort, fLong float64
	for _, o := range short.Ops {
		if o.Kind == AttentionScore {
			fShort = o.FLOPs
		}
	}
	for _, o := range long.Ops {
		if o.Kind == AttentionScore {
			fLong = o.FLOPs
		}
	}
	if r := fLong / fShort; math.Abs(r-4) > 1e-9 {
		t.Errorf("attention FLOPs ratio for 2× seq = %v, want 4 (quadratic)", r)
	}
}
