package solver

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
)

// TestOnCheckpointCallback checks the streaming hook fires once per
// recorded snapshot with exactly the checkpoint appended to Stats,
// and that the callback's Assignment is a private copy.
func TestOnCheckpointCallback(t *testing.T) {
	p := strategyProblem(t)
	var got []Checkpoint
	b := Budget{Checkpoint: 100, OnCheckpoint: func(cp Checkpoint) {
		got = append(got, cp)
	}}
	_, s := (&Anneal{Seed: 7}).Solve(context.Background(), p, b)
	if len(s.Checkpoints) == 0 {
		t.Fatal("no checkpoints recorded")
	}
	if len(got) != len(s.Checkpoints) {
		t.Fatalf("callback fired %d times for %d recorded checkpoints", len(got), len(s.Checkpoints))
	}
	for i := range got {
		if got[i].Iteration != s.Checkpoints[i].Iteration ||
			got[i].Cost != s.Checkpoints[i].Cost ||
			got[i].Evaluations != s.Checkpoints[i].Evaluations {
			t.Errorf("callback checkpoint %d diverged from recorded: %+v vs %+v",
				i, got[i], s.Checkpoints[i])
		}
		if len(got[i].Assignment) != len(s.Checkpoints[i].Assignment) {
			t.Errorf("checkpoint %d assignment length %d, want %d",
				i, len(got[i].Assignment), len(s.Checkpoints[i].Assignment))
		}
	}
	// Mutating a delivered snapshot must not corrupt recorded stats.
	got[0].Assignment[0] = -1
	if s.Checkpoints[0].Assignment[0] == -1 {
		t.Error("callback received the recorded assignment slice, not a copy")
	}
}

// TestOnCheckpointConcurrentPortfolio checks racer checkpoints from a
// concurrent portfolio all arrive (callers must be able to rely on
// one synchronous call per snapshot even with racing strategies).
func TestOnCheckpointConcurrentPortfolio(t *testing.T) {
	p := strategyProblem(t)
	var mu sync.Mutex
	calls := 0
	b := Budget{Checkpoint: 200, Workers: 4, OnCheckpoint: func(cp Checkpoint) {
		mu.Lock()
		calls++
		mu.Unlock()
	}}
	st, err := NewStrategy("portfolio", Params{"seed": 7})
	if err != nil {
		t.Fatal(err)
	}
	_, s := st.Solve(context.Background(), p, b)
	mu.Lock()
	defer mu.Unlock()
	// The portfolio's top-level Checkpoints alias the winner's, so
	// the per-racer sum is the exact number of snapshots taken.
	total := 0
	for _, sub := range s.Sub {
		total += len(sub.Checkpoints)
	}
	if calls == 0 {
		t.Fatal("portfolio solve fired no checkpoint callbacks")
	}
	if calls != total {
		t.Errorf("callback fired %d times for %d snapshots recorded across racers", calls, total)
	}
}

// TestBudgetOnCheckpointNotSerialized pins the wire contract: the
// callback is dropped by JSON encoding, so budgets travel to distrib
// workers unchanged.
func TestBudgetOnCheckpointNotSerialized(t *testing.T) {
	b := Budget{MaxEvals: 10, OnCheckpoint: func(Checkpoint) {}}
	buf, err := json.Marshal(b)
	if err != nil {
		t.Fatalf("budget with callback failed to marshal: %v", err)
	}
	var rt Budget
	if err := json.Unmarshal(buf, &rt); err != nil {
		t.Fatal(err)
	}
	if rt.MaxEvals != 10 || rt.OnCheckpoint != nil {
		t.Errorf("round-trip = %+v", rt)
	}
}
