// Package nn is a small, dependency-free neural-network library used
// as the substrate for TEMP's DNN-based cost model (§VII-A): fully
// connected layers with ReLU activations, mean-squared-error loss,
// Adam optimization and feature standardization. It is deliberately
// minimal — just enough to train the latency-prediction MLPs the
// paper trains with an external framework.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is one fully connected layer with optional ReLU.
type Dense struct {
	In, Out int
	// W is row-major [Out][In]; B is [Out].
	W, B []float64
	ReLU bool

	// Adam state.
	mW, vW, mB, vB []float64

	// scratch from the last forward pass, used by backward.
	lastIn  []float64
	lastPre []float64
	// reusable training buffers (Forward output, Backward dL/din);
	// like lastIn/lastPre they make training single-threaded while
	// keeping Infer/Predict read-only and concurrency-safe.
	fwdOut []float64
	bwdIn  []float64
}

// NewDense builds a layer with He-initialized weights.
func NewDense(in, out int, relu bool, rng *rand.Rand) *Dense {
	d := &Dense{
		In: in, Out: out, ReLU: relu,
		W:  make([]float64, in*out),
		B:  make([]float64, out),
		mW: make([]float64, in*out),
		vW: make([]float64, in*out),
		mB: make([]float64, out),
		vB: make([]float64, out),
	}
	std := math.Sqrt(2.0 / float64(in))
	for i := range d.W {
		d.W[i] = rng.NormFloat64() * std
	}
	return d
}

// Infer computes the layer output for one sample without recording
// backward scratch: it only reads W and B, so a trained layer may
// serve any number of concurrent Infer calls.
func (d *Dense) Infer(x []float64) []float64 {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: dense input %d, want %d", len(x), d.In))
	}
	out := make([]float64, d.Out)
	for o := 0; o < d.Out; o++ {
		s := d.B[o]
		row := d.W[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			s += row[i] * xi
		}
		if d.ReLU && s < 0 {
			s = 0
		}
		out[o] = s
	}
	return out
}

// Forward computes the layer output for one sample and records the
// pre-activation scratch Backward consumes. Training only; concurrent
// callers must use Infer.
func (d *Dense) Forward(x []float64) []float64 {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: dense input %d, want %d", len(x), d.In))
	}
	d.lastIn = append(d.lastIn[:0], x...)
	if cap(d.lastPre) < d.Out {
		d.lastPre = make([]float64, d.Out)
		d.fwdOut = make([]float64, d.Out)
	}
	d.lastPre = d.lastPre[:d.Out]
	out := d.fwdOut[:d.Out]
	for o := 0; o < d.Out; o++ {
		s := d.B[o]
		row := d.W[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			s += row[i] * xi
		}
		d.lastPre[o] = s
		if d.ReLU && s < 0 {
			s = 0
		}
		out[o] = s
	}
	return out
}

// Backward consumes dL/dout, accumulates parameter gradients into gW
// and gB, and returns dL/din. The returned slice is layer-owned
// scratch, valid until the layer's next Backward call.
func (d *Dense) Backward(dOut, gW, gB []float64) []float64 {
	if cap(d.bwdIn) < d.In {
		d.bwdIn = make([]float64, d.In)
	}
	dIn := d.bwdIn[:d.In]
	for i := range dIn {
		dIn[i] = 0
	}
	for o := 0; o < d.Out; o++ {
		g := dOut[o]
		if d.ReLU && d.lastPre[o] <= 0 {
			continue
		}
		gB[o] += g
		row := d.W[o*d.In : (o+1)*d.In]
		gRow := gW[o*d.In : (o+1)*d.In]
		for i := 0; i < d.In; i++ {
			gRow[i] += g * d.lastIn[i]
			dIn[i] += g * row[i]
		}
	}
	return dIn
}

// MLP is a feed-forward stack of Dense layers.
type MLP struct {
	Layers []*Dense
	step   int

	// training scratch, reused across TrainBatch calls.
	gW, gB [][]float64
	dOut   []float64
}

// NewMLP builds a network with the given layer widths; all hidden
// layers use ReLU, the output layer is linear.
func NewMLP(widths []int, rng *rand.Rand) *MLP {
	if len(widths) < 2 {
		panic("nn: MLP needs at least input and output widths")
	}
	m := &MLP{}
	for i := 0; i+1 < len(widths); i++ {
		relu := i+2 < len(widths)
		m.Layers = append(m.Layers, NewDense(widths[i], widths[i+1], relu, rng))
	}
	return m
}

// Predict runs a read-only forward pass. It touches none of the
// training scratch, so a trained MLP is safe for concurrent Predict
// calls from any number of goroutines (the contract the surrogate
// cost backends and the solver's CostModel rely on). Training must
// not run concurrently with Predict.
func (m *MLP) Predict(x []float64) []float64 {
	h := x
	for _, l := range m.Layers {
		h = l.Infer(h)
	}
	return h
}

// forward is the training pass: each layer records the scratch
// Backward consumes, so it must stay single-threaded.
func (m *MLP) forward(x []float64) []float64 {
	h := x
	for _, l := range m.Layers {
		h = l.Forward(h)
	}
	return h
}

// AdamConfig holds optimizer hyper-parameters; zero values take the
// usual defaults.
type AdamConfig struct {
	LR, Beta1, Beta2, Eps float64
}

func (c AdamConfig) withDefaults() AdamConfig {
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.Beta1 == 0 {
		c.Beta1 = 0.9
	}
	if c.Beta2 == 0 {
		c.Beta2 = 0.999
	}
	if c.Eps == 0 {
		c.Eps = 1e-8
	}
	return c
}

// TrainBatch runs one Adam step on a minibatch with MSE loss and
// returns the batch loss.
func (m *MLP) TrainBatch(xs [][]float64, ys [][]float64, cfg AdamConfig) float64 {
	cfg = cfg.withDefaults()
	if m.gW == nil {
		m.gW = make([][]float64, len(m.Layers))
		m.gB = make([][]float64, len(m.Layers))
		for i, l := range m.Layers {
			m.gW[i] = make([]float64, len(l.W))
			m.gB[i] = make([]float64, len(l.B))
		}
	}
	gW, gB := m.gW, m.gB
	for i := range gW {
		for j := range gW[i] {
			gW[i][j] = 0
		}
		for j := range gB[i] {
			gB[i][j] = 0
		}
	}
	var loss float64
	for s := range xs {
		out := m.forward(xs[s])
		if cap(m.dOut) < len(out) {
			m.dOut = make([]float64, len(out))
		}
		dOut := m.dOut[:len(out)]
		for o := range out {
			diff := out[o] - ys[s][o]
			loss += diff * diff
			dOut[o] = 2 * diff / float64(len(xs))
		}
		for li := len(m.Layers) - 1; li >= 0; li-- {
			dOut = m.Layers[li].Backward(dOut, gW[li], gB[li])
		}
	}
	loss /= float64(len(xs))
	m.step++
	b1c := 1 - math.Pow(cfg.Beta1, float64(m.step))
	b2c := 1 - math.Pow(cfg.Beta2, float64(m.step))
	for li, l := range m.Layers {
		adam(l.W, gW[li], l.mW, l.vW, cfg, b1c, b2c)
		adam(l.B, gB[li], l.mB, l.vB, cfg, b1c, b2c)
	}
	return loss
}

func adam(w, g, mo, vo []float64, cfg AdamConfig, b1c, b2c float64) {
	for i := range w {
		mo[i] = cfg.Beta1*mo[i] + (1-cfg.Beta1)*g[i]
		vo[i] = cfg.Beta2*vo[i] + (1-cfg.Beta2)*g[i]*g[i]
		mh := mo[i] / b1c
		vh := vo[i] / b2c
		w[i] -= cfg.LR * mh / (math.Sqrt(vh) + cfg.Eps)
	}
}

// Fit trains for the given number of epochs over shuffled minibatches
// and returns the final epoch's mean loss.
func (m *MLP) Fit(xs, ys [][]float64, epochs, batch int, cfg AdamConfig, rng *rand.Rand) float64 {
	if len(xs) == 0 || len(xs) != len(ys) {
		panic("nn: Fit requires matching non-empty datasets")
	}
	if batch <= 0 {
		batch = 32
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	var last float64
	bx := make([][]float64, 0, batch)
	by := make([][]float64, 0, batch)
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		var batches int
		for at := 0; at < len(idx); at += batch {
			end := at + batch
			if end > len(idx) {
				end = len(idx)
			}
			bx, by = bx[:0], by[:0]
			for _, i := range idx[at:end] {
				bx = append(bx, xs[i])
				by = append(by, ys[i])
			}
			epochLoss += m.TrainBatch(bx, by, cfg)
			batches++
		}
		last = epochLoss / float64(batches)
	}
	return last
}

// Standardizer performs per-feature z-score normalization.
type Standardizer struct {
	Mean, Std []float64
}

// FitStandardizer computes feature statistics over a dataset.
func FitStandardizer(xs [][]float64) *Standardizer {
	if len(xs) == 0 {
		panic("nn: empty dataset")
	}
	d := len(xs[0])
	s := &Standardizer{Mean: make([]float64, d), Std: make([]float64, d)}
	for _, x := range xs {
		for i, v := range x {
			s.Mean[i] += v
		}
	}
	for i := range s.Mean {
		s.Mean[i] /= float64(len(xs))
	}
	for _, x := range xs {
		for i, v := range x {
			dv := v - s.Mean[i]
			s.Std[i] += dv * dv
		}
	}
	for i := range s.Std {
		s.Std[i] = math.Sqrt(s.Std[i] / float64(len(xs)))
		if s.Std[i] < 1e-12 {
			s.Std[i] = 1
		}
	}
	return s
}

// Apply standardizes one sample (allocating a new slice).
func (s *Standardizer) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = (v - s.Mean[i]) / s.Std[i]
	}
	return out
}

// ApplyAll standardizes a dataset.
func (s *Standardizer) ApplyAll(xs [][]float64) [][]float64 {
	out := make([][]float64, len(xs))
	for i, x := range xs {
		out[i] = s.Apply(x)
	}
	return out
}

// LinearRegression is the multivariate least-squares baseline the
// paper compares the DNN model against (Fig. 21). Solved by normal
// equations with ridge damping for stability.
type LinearRegression struct {
	// Coef has length features+1; the last entry is the intercept.
	Coef []float64
}

// FitLinear fits y = Xw + b by ridge-regularized normal equations.
func FitLinear(xs [][]float64, ys []float64, ridge float64) *LinearRegression {
	n := len(xs)
	if n == 0 || n != len(ys) {
		panic("nn: FitLinear requires matching non-empty datasets")
	}
	d := len(xs[0]) + 1 // +1 intercept
	// Build A = XᵀX + λI and b = Xᵀy.
	A := make([][]float64, d)
	for i := range A {
		A[i] = make([]float64, d)
	}
	bvec := make([]float64, d)
	row := make([]float64, d)
	for s := 0; s < n; s++ {
		copy(row, xs[s])
		row[d-1] = 1
		for i := 0; i < d; i++ {
			bvec[i] += row[i] * ys[s]
			for j := 0; j < d; j++ {
				A[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < d; i++ {
		A[i][i] += ridge
	}
	coef := solveGaussian(A, bvec)
	return &LinearRegression{Coef: coef}
}

// Predict evaluates the regression on one sample.
func (l *LinearRegression) Predict(x []float64) float64 {
	s := l.Coef[len(l.Coef)-1]
	for i, v := range x {
		s += l.Coef[i] * v
	}
	return s
}

// solveGaussian solves Ax = b in place with partial pivoting.
func solveGaussian(A [][]float64, b []float64) []float64 {
	n := len(A)
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[piv][col]) {
				piv = r
			}
		}
		A[col], A[piv] = A[piv], A[col]
		b[col], b[piv] = b[piv], b[col]
		p := A[col][col]
		if math.Abs(p) < 1e-15 {
			continue
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := A[r][col] / p
			for c := col; c < n; c++ {
				A[r][c] -= f * A[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		if math.Abs(A[i][i]) < 1e-15 {
			x[i] = 0
			continue
		}
		x[i] = b[i] / A[i][i]
	}
	return x
}

// Pearson returns the Pearson correlation of two equal-length series.
func Pearson(a, b []float64) float64 {
	n := float64(len(a))
	if len(a) != len(b) || len(a) == 0 {
		panic("nn: Pearson requires matching non-empty series")
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// MAPE returns the mean absolute percentage error of predictions
// against truths, skipping zero truths.
func MAPE(pred, truth []float64) float64 {
	if len(pred) != len(truth) || len(pred) == 0 {
		panic("nn: MAPE requires matching non-empty series")
	}
	var s float64
	var n int
	for i := range pred {
		if truth[i] == 0 {
			continue
		}
		s += math.Abs(pred[i]-truth[i]) / math.Abs(truth[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n) * 100
}
