package fault

import (
	"reflect"
	"testing"
)

// TestCampaignRunOnMatchesRun: the distributed per-cell decomposition
// (here on a nil fabric, i.e. the degraded in-process path that also
// backs worker-loss fallback) is bit-identical to Campaign.Run. This
// exercises the full gob round-trip of the task and result shapes.
func TestCampaignRunOnMatchesRun(t *testing.T) {
	c := testCampaign()
	direct, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	dist, err := c.RunOn(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, dist) {
		t.Errorf("RunOn diverges from Run:\n got %+v\nwant %+v", dist, direct)
	}
}
