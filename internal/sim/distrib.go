package sim

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"

	"temp/internal/baselines"
	"temp/internal/distrib"
	"temp/internal/fault"
	"temp/internal/spec"
)

// Distributed scenario batches: each scenario spec is one task. Specs
// travel as their canonical JSON (they carry custom marshalers gob
// cannot see through); results travel as gob of a wire mirror whose
// error is a string.

// Overrides mirrors the CLI's solver/cost override flags in a
// serializable form so a worker rebuilds the exact stages the
// coordinator would have used.
type Overrides struct {
	Strategy string `json:"strategy,omitempty"`
	Budget   string `json:"budget,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	Workers  int    `json:"workers,omitempty"`
	Backend  string `json:"backend,omitempty"`
}

// Stages materializes the override stages (nil when the respective
// flags are unset), exactly as the CLIs build them.
func (o Overrides) Stages() (*spec.SolverStage, *spec.CostStage, error) {
	var sol *spec.SolverStage
	var cst *spec.CostStage
	var err error
	if o.Strategy != "" || o.Budget != "" {
		if sol, err = spec.SolverOverride(o.Strategy, o.Budget, o.Seed, o.Workers); err != nil {
			return nil, nil, err
		}
	}
	if o.Backend != "" {
		if cst, err = spec.CostOverride(o.Backend, o.Seed); err != nil {
			return nil, nil, err
		}
	}
	return sol, cst, nil
}

type scenarioTask struct {
	Spec json.RawMessage `json:"spec"`
	Ov   Overrides       `json:"overrides"`
}

// scenarioWire is ScenarioResult with the error flattened to text.
type scenarioWire struct {
	Name          string
	Result        baselines.Result
	FaultNormTput float64
	Faulted       bool
	Solver        *SolverOutcome
	Recovery      *fault.Recovery
	Campaign      *fault.CampaignResult
	ErrMsg        string
}

func init() {
	distrib.RegisterKind("sim.scenario", runScenarioPayload)
}

func runScenarioPayload(ctx context.Context, payload []byte) ([]byte, error) {
	var t scenarioTask
	if err := json.Unmarshal(payload, &t); err != nil {
		return nil, fmt.Errorf("sim: decode scenario task: %w", err)
	}
	ss, err := spec.ParseScenario(t.Spec)
	if err != nil {
		return nil, err
	}
	sol, cst, err := t.Ov.Stages()
	if err != nil {
		return nil, err
	}
	res := RunScenarioSpecsWithStagesCtx(ctx, []spec.ScenarioSpec{ss}, sol, cst)[0]
	w := scenarioWire{
		Name: res.Name, Result: res.Result,
		FaultNormTput: res.FaultNormTput, Faulted: res.Faulted,
		Solver: res.Solver, Recovery: res.Recovery, Campaign: res.Campaign,
	}
	if res.Err != nil {
		w.ErrMsg = res.Err.Error()
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, fmt.Errorf("sim: encode scenario result: %w", err)
	}
	return buf.Bytes(), nil
}

// RunScenarioSpecsOn distributes a scenario batch across the fabric
// (in-process when f is nil or degraded), merging results back into
// spec order. It matches RunScenarioSpecsWithStages(specs, ov.Stages())
// bit-for-bit at any worker count.
func RunScenarioSpecsOn(f *distrib.Fabric, specs []spec.ScenarioSpec, ov Overrides) []ScenarioResult {
	return RunScenarioSpecsOnCtx(context.Background(), f, specs, ov)
}

// RunScenarioSpecsOnCtx is RunScenarioSpecsOn with cancellation:
// scenarios not finished when ctx ends report ctx.Err(), and workers
// receive best-effort shard cancellation.
func RunScenarioSpecsOnCtx(ctx context.Context, f *distrib.Fabric, specs []spec.ScenarioSpec, ov Overrides) []ScenarioResult {
	payloads := make([][]byte, len(specs))
	out := make([]ScenarioResult, len(specs))
	encErr := make([]error, len(specs))
	for i, s := range specs {
		raw, err := json.Marshal(s)
		if err == nil {
			var b []byte
			b, err = json.Marshal(scenarioTask{Spec: raw, Ov: ov})
			payloads[i] = b
		}
		if err != nil {
			encErr[i] = err
			payloads[i] = []byte("{}")
		}
	}
	raw, errs := f.RunCtx(ctx, "sim.scenario", payloads)
	for i := range specs {
		switch {
		case encErr[i] != nil:
			out[i] = ScenarioResult{Name: specs[i].Name, Err: encErr[i]}
		case errs[i] != nil:
			out[i] = ScenarioResult{Name: specs[i].Name, Err: errs[i]}
		default:
			var w scenarioWire
			if err := gob.NewDecoder(bytes.NewReader(raw[i])).Decode(&w); err != nil {
				out[i] = ScenarioResult{Name: specs[i].Name, Err: err}
				continue
			}
			out[i] = ScenarioResult{
				Name: w.Name, Result: w.Result,
				FaultNormTput: w.FaultNormTput, Faulted: w.Faulted,
				Solver: w.Solver, Recovery: w.Recovery, Campaign: w.Campaign,
			}
			if w.ErrMsg != "" {
				out[i].Err = errors.New(w.ErrMsg)
			}
		}
	}
	return out
}
