package solver

import (
	"context"
	"fmt"
	"math"
	"time"

	"temp/internal/model"
	"temp/internal/parallel"
)

// Assignment maps each operator of the block graph to an index into
// the strategy space.
type Assignment []int

// DLSOptions tunes the dual-level search.
type DLSOptions struct {
	// Population and Generations size the genetic stage; zero values
	// take defaults (32, 40).
	Population, Generations int
	// MutationRate per gene (default 0.15).
	MutationRate float64
	// Seed drives the GA's randomness.
	Seed int64
	// DisableGA stops after dynamic programming (ablation).
	DisableGA bool
	// Workers bounds the parallel evaluation of each GA generation;
	// 0 means GOMAXPROCS. The search result is bit-identical at any
	// worker count: the RNG only drives the (serial) crossover and
	// mutation steps, and cost evaluation is a pure function. Set 1
	// for CostModel implementations that are not safe for concurrent
	// use (see the CostModel contract).
	Workers int
}

// Validate rejects structurally invalid options. Zero values are
// legal (they select defaults); negative sizes and out-of-range
// rates, which the pre-framework search silently accepted, are
// errors.
func (o DLSOptions) Validate() error {
	if o.Population < 0 {
		return fmt.Errorf("solver: population %d is negative", o.Population)
	}
	if o.Generations < 0 {
		return fmt.Errorf("solver: generations %d is negative", o.Generations)
	}
	if o.MutationRate < 0 || o.MutationRate > 1 {
		return fmt.Errorf("solver: mutation rate %v outside [0,1]", o.MutationRate)
	}
	if o.Workers < 0 {
		return fmt.Errorf("solver: workers %d is negative", o.Workers)
	}
	return nil
}

// DLS runs the dual-level search of Fig. 12(b) over the block graph:
// the chain is cut at residual-free boundaries, a recursive dynamic
// program finds the chain-optimal per-operator strategies, and a
// genetic stage refines the joint assignment under the global memory
// constraint. It is the GA strategy behind the pre-framework entry
// point: for a fixed seed the returned assignment and cost are
// bit-identical at any worker count. Invalid options (negative sizes,
// out-of-range rates) are reported instead of silently clamped.
func DLS(g model.Graph, space []parallel.Config, cm CostModel, opts DLSOptions) (Assignment, Stats, error) {
	if err := opts.Validate(); err != nil {
		return nil, Stats{}, err
	}
	ga := &GA{
		Population:   opts.Population,
		Generations:  opts.Generations,
		MutationRate: opts.MutationRate,
		Seed:         opts.Seed,
		dpOnly:       opts.DisableGA,
	}
	a, s := ga.Solve(context.Background(),
		Problem{Graph: g, Space: space, Model: cm},
		Budget{Workers: opts.Workers})
	return a, s, nil
}

// Exhaustive performs the joint search the paper's ILP baseline
// stands for: full enumeration of |S|^m assignments with
// branch-and-bound pruning on the (admissible) partial chain cost.
// The memory-feasibility penalty of every strategy is precomputed
// once before the descent, so the inner loop replaces a map-backed
// bound check with a slice lookup. Practical only on reduced
// instances; the §VIII-H comparison runs both searches on instances
// this one can finish.
func Exhaustive(g model.Graph, space []parallel.Config, cm CostModel) (Assignment, Stats) {
	start := time.Now()
	ev := newEvaluator(cm, g.Ops, space)
	n := len(g.Ops)
	// Hoist the per-config feasibility penalty out of the descent:
	// every strategy is probed at depth 0 anyway, so this costs no
	// extra cost-model calls.
	pen := make([]float64, len(space))
	for c := range space {
		pen[c] = ev.penalty(c)
	}
	best := make(Assignment, n)
	bestCost := math.Inf(1)
	cur := make(Assignment, n)
	nodes := 0
	var rec func(i int, sofar float64)
	rec = func(i int, sofar float64) {
		if sofar >= bestCost {
			return // bound: costs are non-negative
		}
		if i == n {
			bestCost = sofar
			copy(best, cur)
			return
		}
		for c := 0; c < len(space); c++ {
			nodes++
			cur[i] = c
			v := ev.intraCost(i, c) + pen[c]
			if i > 0 {
				v += ev.interCost(i, cur[i-1], c)
			}
			rec(i+1, sofar+v)
		}
	}
	rec(0, 0)
	return best, Stats{
		Strategy:    "exhaustive",
		Evaluations: int(ev.n.Load()),
		Nodes:       nodes,
		Elapsed:     time.Since(start),
		FinalCost:   bestCost,
		DPCost:      bestCost,
	}
}

// Uniform returns the space index whose configuration the assignment
// uses most often — the dominant strategy the end-to-end evaluation
// runs with — along with its share of operators.
func Uniform(a Assignment) (int, float64) {
	if len(a) == 0 {
		return 0, 0
	}
	counts := map[int]int{}
	for _, c := range a {
		counts[c]++
	}
	best, bestN := a[0], 0
	for c, n := range counts {
		if n > bestN || (n == bestN && c < best) {
			best, bestN = c, n
		}
	}
	return best, float64(bestN) / float64(len(a))
}

// UniformAssignment builds the assignment that pins every operator to
// one configuration, locating cfg in the strategy space by normalized
// equality. ok is false when cfg is not in the space. This is how a
// whole-model mapping (a scenario's winning configuration) becomes a
// Budget.Resume warm start for repair solving on a degraded fabric.
func UniformAssignment(space []parallel.Config, cfg parallel.Config, ops int) (Assignment, bool) {
	cfg = cfg.Normalize()
	for i, c := range space {
		if c.Normalize() == cfg {
			a := make(Assignment, ops)
			for j := range a {
				a[j] = i
			}
			return a, true
		}
	}
	return nil, false
}

// String renders an assignment compactly.
func (a Assignment) String() string {
	return fmt.Sprintf("%v", []int(a))
}
