// fault_tolerance demonstrates the §VIII-F mechanism: inject link and
// core faults into the wafer, localize them, and measure how TEMP's
// adaptive re-partitioning and re-routing preserve throughput
// (Fig. 20's curves).
package main

import (
	"fmt"
	"math/rand"

	"temp"
)

func main() {
	w := temp.EvaluationWafer()
	m := temp.GPT3_6_7B()
	cfg := temp.ParallelConfig{DP: 4, TATP: 8}
	o := temp.TEMPOptions()

	fmt.Println("link faults (Fig. 20(b)): throughput is sensitive — a cliff appears")
	for _, rate := range []float64{0, 0.1, 0.2, 0.35, 0.5, 0.8} {
		v := temp.FaultNormalizedThroughput(m, w, cfg, o,
			temp.FaultInjection{LinkRate: rate}, 6, 42)
		fmt.Printf("  link fault rate %4.0f%% → normalized throughput %.2f\n", rate*100, v)
	}

	fmt.Println("core faults (Fig. 20(c)): graceful degradation under re-balancing")
	for _, rate := range []float64{0, 0.05, 0.10, 0.15, 0.20, 0.25} {
		v := temp.FaultNormalizedThroughput(m, w, cfg, o,
			temp.FaultInjection{CoreRate: rate, CoresPerDie: 64}, 6, 43)
		fmt.Printf("  core fault rate %4.0f%% → normalized throughput %.2f\n", rate*100, v)
	}

	// One concrete faulted run with localization details.
	out := temp.EvaluateWithFaults(m, w, cfg, o,
		temp.FaultInjection{LinkRate: 0.15, CoreRate: 0.1, CoresPerDie: 64},
		rand.New(rand.NewSource(7)))
	fmt.Printf("mixed faults: %d dead links, %d dead dies, mean capacity %.2f, functional=%v\n",
		out.Report.DeadLinks, out.Report.DeadDies, out.Report.MeanCapacity, out.Functional)
	if out.Functional {
		fmt.Printf("  degraded step: %.3fs (%.0f tokens/s)\n",
			out.Breakdown.StepTime, out.Breakdown.ThroughputTokens)
	}
}
