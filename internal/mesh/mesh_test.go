package mesh

import (
	"math/rand"
	"testing"
	"testing/quick"

	"temp/internal/hw"
)

func grid(r, c int) *Topology { return New(r, c, hw.TableID2D()) }

func TestIDCoordRoundTrip(t *testing.T) {
	tp := grid(4, 8)
	for i := 0; i < tp.Dies(); i++ {
		d := DieID(i)
		if got := tp.ID(tp.CoordOf(d)); got != d {
			t.Fatalf("round trip failed for die %d: got %d", d, got)
		}
	}
}

func TestAdjacency(t *testing.T) {
	tp := grid(4, 8)
	tests := []struct {
		a, b DieID
		want bool
	}{
		{0, 1, true},   // horizontal neighbor
		{0, 8, true},   // vertical neighbor
		{0, 9, false},  // diagonal — no diagonal links on an interposer
		{7, 8, false},  // row wrap is not adjacency
		{0, 2, false},  // distance 2
		{31, 30, true}, // last row
	}
	for _, tc := range tests {
		if got := tp.Adjacent(tc.a, tc.b); got != tc.want {
			t.Errorf("Adjacent(%d,%d) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestNeighborsCorners(t *testing.T) {
	tp := grid(4, 8)
	if n := tp.Neighbors(0); len(n) != 2 {
		t.Errorf("corner die has %d neighbors, want 2", len(n))
	}
	if n := tp.Neighbors(1); len(n) != 3 {
		t.Errorf("edge die has %d neighbors, want 3", len(n))
	}
	if n := tp.Neighbors(9); len(n) != 4 {
		t.Errorf("interior die has %d neighbors, want 4", len(n))
	}
}

func TestLinkCount(t *testing.T) {
	tp := grid(4, 8)
	// Directed links of an RxC mesh: 2*(R*(C-1) + C*(R-1)).
	want := 2 * (4*7 + 8*3)
	if got := tp.TotalLinks(); got != want {
		t.Errorf("TotalLinks = %d, want %d", got, want)
	}
	if got := len(tp.Links()); got != want {
		t.Errorf("alive Links = %d, want %d", got, want)
	}
}

func TestRouteXYAndYX(t *testing.T) {
	tp := grid(4, 8)
	src, dst := tp.ID(Coord{0, 0}), tp.ID(Coord{3, 5})
	xy := tp.RouteXY(src, dst)
	yx := tp.RouteYX(src, dst)
	wantHops := tp.HopDistance(src, dst)
	if xy.Hops() != wantHops || yx.Hops() != wantHops {
		t.Fatalf("route hops = %d/%d, want %d", xy.Hops(), yx.Hops(), wantHops)
	}
	if !xy.Valid(tp) || !yx.Valid(tp) {
		t.Fatal("routes not valid")
	}
	if xy[0] != src || xy[len(xy)-1] != dst {
		t.Fatal("XY endpoints wrong")
	}
	// XY goes along the row first; YX along the column first.
	if tp.CoordOf(xy[1]).R != 0 {
		t.Error("XY route should move along columns first")
	}
	if tp.CoordOf(yx[1]).C != 0 {
		t.Error("YX route should move along rows first")
	}
}

func TestRouteSelfIsSingleton(t *testing.T) {
	tp := grid(4, 8)
	p := tp.RouteXY(5, 5)
	if len(p) != 1 || p.Hops() != 0 {
		t.Errorf("self route = %v", p)
	}
}

// Property: for random die pairs, XY routes are always valid and
// minimal on a healthy mesh.
func TestRouteXYMinimalProperty(t *testing.T) {
	tp := grid(6, 9)
	f := func(a, b uint8) bool {
		src := DieID(int(a) % tp.Dies())
		dst := DieID(int(b) % tp.Dies())
		p := tp.RouteXY(src, dst)
		return p.Valid(tp) && p.Hops() == tp.HopDistance(src, dst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRouteWeightedAvoidsLoadedLink(t *testing.T) {
	tp := grid(4, 4)
	src, dst := DieID(0), DieID(3)
	hot := Link{1, 2} // on the XY route 0→1→2→3
	p := tp.RouteWeighted(src, dst, func(l Link) float64 {
		if l == hot {
			return 100
		}
		return 0
	})
	if !p.Valid(tp) {
		t.Fatal("weighted route invalid")
	}
	for _, l := range p.Links() {
		if l == hot {
			t.Fatalf("weighted route %v crosses the penalized link", p)
		}
	}
}

func TestRouteAroundDeadLink(t *testing.T) {
	tp := grid(4, 4)
	tp.SetLinkAlive(Link{1, 2}, false)
	p := tp.Route(0, 3)
	if p == nil || !p.Valid(tp) {
		t.Fatalf("fault-aware route failed: %v", p)
	}
	for _, l := range p.Links() {
		if l == (Link{1, 2}) || l == (Link{2, 1}) {
			t.Fatal("route crosses dead link")
		}
	}
}

func TestRouteUnreachable(t *testing.T) {
	tp := grid(1, 3) // a line: kill the middle link to disconnect
	tp.SetLinkAlive(Link{0, 1}, false)
	if p := tp.Route(0, 2); p != nil {
		t.Fatalf("expected nil route, got %v", p)
	}
}

func TestDieFaultMasks(t *testing.T) {
	tp := grid(4, 4)
	tp.SetDieAlive(5, false)
	if tp.DieAlive(5) {
		t.Fatal("die 5 should be dead")
	}
	if got := len(tp.AliveDies()); got != 15 {
		t.Errorf("alive dies = %d, want 15", got)
	}
	for _, n := range tp.Neighbors(1) {
		if n == 5 {
			t.Fatal("dead die listed as neighbor")
		}
	}
	if p := tp.Route(4, 6); p != nil {
		for _, d := range p {
			if d == 5 {
				t.Fatal("route passes through dead die")
			}
		}
	}
}

func TestConnected(t *testing.T) {
	tp := grid(2, 2)
	if !tp.Connected() {
		t.Fatal("healthy mesh should be connected")
	}
	// Cut die 0 off completely.
	tp.SetLinkAlive(Link{0, 1}, false)
	tp.SetLinkAlive(Link{0, 2}, false)
	if tp.Connected() {
		t.Fatal("mesh should be disconnected")
	}
	// Killing the isolated die restores connectivity of the rest.
	tp.SetDieAlive(0, false)
	if !tp.Connected() {
		t.Fatal("remaining dies should be connected")
	}
}

func TestCoreFractionClamped(t *testing.T) {
	tp := grid(2, 2)
	tp.SetCoreFraction(0, 1.5)
	if tp.CoreFraction(0) != 1 {
		t.Error("core fraction should clamp to 1")
	}
	tp.SetCoreFraction(0, -0.5)
	if tp.CoreFraction(0) != 0 {
		t.Error("core fraction should clamp to 0")
	}
	if tp.CoreFraction(1) != 1 {
		t.Error("default core fraction should be 1")
	}
}

func TestRectRing(t *testing.T) {
	tp := grid(6, 9)
	tests := []struct {
		r    Rect
		ring bool
	}{
		{Rect{0, 0, 1, 3}, true},  // 2×4
		{Rect{0, 0, 0, 3}, false}, // 1×4 line: no cycle
		{Rect{0, 0, 2, 2}, false}, // 3×3 odd area: no cycle
		{Rect{0, 0, 2, 3}, true},  // 3×4
		{Rect{0, 0, 3, 3}, true},  // 4×4
	}
	for _, tc := range tests {
		if got := tc.r.HasRing(); got != tc.ring {
			t.Errorf("HasRing(%+v) = %v, want %v", tc.r, got, tc.ring)
		}
		if !tc.ring {
			continue
		}
		p, ok := tc.r.RingPath(tp)
		if !ok {
			t.Fatalf("RingPath(%+v) failed", tc.r)
		}
		if len(p) != tc.r.Area() {
			t.Fatalf("ring visits %d dies, want %d", len(p), tc.r.Area())
		}
		seen := map[DieID]bool{}
		for i, d := range p {
			if seen[d] {
				t.Fatalf("ring revisits die %d", d)
			}
			seen[d] = true
			next := p[(i+1)%len(p)]
			if !tp.Adjacent(d, next) {
				t.Fatalf("ring step %d→%d not adjacent (rect %+v, path %v)", d, next, tc.r, p)
			}
		}
	}
}

func TestRectSnakePath(t *testing.T) {
	tp := grid(6, 9)
	rects := []Rect{{0, 0, 0, 5}, {1, 2, 3, 4}, {0, 0, 5, 8}, {2, 2, 2, 2}}
	for _, r := range rects {
		p := r.SnakePath(tp)
		if len(p) != r.Area() {
			t.Fatalf("snake visits %d, want %d", len(p), r.Area())
		}
		seen := map[DieID]bool{}
		for i, d := range p {
			if seen[d] {
				t.Fatalf("snake revisits die %d", d)
			}
			seen[d] = true
			if i > 0 && !tp.Adjacent(p[i-1], d) {
				t.Fatalf("snake step %d→%d not adjacent", p[i-1], d)
			}
		}
	}
}

// Property: every rectangle with even area and both sides ≥2 yields a
// closed Hamiltonian ring.
func TestRingPathProperty(t *testing.T) {
	tp := grid(10, 10)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		h := rng.Intn(5) + 2
		w := rng.Intn(5) + 2
		if h*w%2 == 1 {
			w++
		}
		if h > 10 || w > 10 {
			continue
		}
		r := Rect{0, 0, h - 1, w - 1}
		p, ok := r.RingPath(tp)
		if !ok {
			t.Fatalf("no ring for %dx%d", h, w)
		}
		if !tp.Adjacent(p[len(p)-1], p[0]) {
			t.Fatalf("%dx%d ring does not close: %v", h, w, p)
		}
	}
}

func TestHopDistanceSymmetric(t *testing.T) {
	tp := grid(5, 7)
	f := func(a, b uint8) bool {
		x := DieID(int(a) % tp.Dies())
		y := DieID(int(b) % tp.Dies())
		return tp.HopDistance(x, y) == tp.HopDistance(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
