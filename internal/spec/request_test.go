package spec

import (
	"strings"
	"testing"
)

// TestParseRequestStrict accepts well-formed envelopes and rejects
// unknown fields.
func TestParseRequest(t *testing.T) {
	good := `{
		"id": "r1", "tenant": "a",
		"scenario": {"model": "gpt3-6.7b", "wafer": "wsc-4x8"},
		"budget": {"evals": 1000, "time": "5s"},
		"stream": true
	}`
	r, err := ParseRequest([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.ID != "r1" || r.Tenant != "a" || !r.Stream || r.Scenario == nil || r.Budget.Evals != 1000 {
		t.Errorf("parsed request = %+v", r)
	}
	if n := len(r.Specs()); n != 1 {
		t.Errorf("Specs() returned %d scenarios, want 1", n)
	}

	if _, err := ParseRequest([]byte(`{"scenarioo": {}}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseRequest([]byte(`{`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

// TestRequestValidate covers the envelope's structural rules.
func TestRequestValidate(t *testing.T) {
	sc := ScenarioSpec{Model: ModelRef{Name: "gpt3-6.7b"}, Wafer: WaferRef{Name: "wsc-4x8"}}
	cases := []struct {
		name    string
		req     RequestSpec
		wantErr string
	}{
		{name: "single", req: RequestSpec{Scenario: &sc}},
		{name: "batch", req: RequestSpec{Scenarios: []ScenarioSpec{sc, sc}}},
		{name: "empty", req: RequestSpec{}, wantErr: "no scenarios"},
		{name: "both-forms", req: RequestSpec{Scenario: &sc, Scenarios: []ScenarioSpec{sc}},
			wantErr: "both scenario and scenarios"},
		{name: "bad-budget", req: RequestSpec{Scenario: &sc, Budget: &BudgetSpec{Time: "-5s"}},
			wantErr: "not positive"},
		{name: "bad-scenario", req: RequestSpec{Scenario: &ScenarioSpec{Model: ModelRef{Name: "no-such"}}},
			wantErr: "scenario 0"},
	}
	for _, tc := range cases {
		err := tc.req.Validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestClampBudget checks the request-level clamp only tightens.
func TestClampBudget(t *testing.T) {
	cases := []struct {
		name        string
		b, clamp    BudgetSpec
		wantEvals   int
		wantTime    string
		wantCkpoint int
	}{
		{name: "zero-clamp", b: BudgetSpec{Evals: 100, Time: "5s", Checkpoint: 3},
			wantEvals: 100, wantTime: "5s", wantCkpoint: 3},
		{name: "tighter-evals", b: BudgetSpec{Evals: 100}, clamp: BudgetSpec{Evals: 50}, wantEvals: 50},
		{name: "looser-evals", b: BudgetSpec{Evals: 100}, clamp: BudgetSpec{Evals: 500}, wantEvals: 100},
		{name: "unset-evals", clamp: BudgetSpec{Evals: 500}, wantEvals: 500},
		{name: "tighter-time", b: BudgetSpec{Time: "30s"}, clamp: BudgetSpec{Time: "5s"}, wantTime: "5s"},
		{name: "looser-time", b: BudgetSpec{Time: "5s"}, clamp: BudgetSpec{Time: "30s"}, wantTime: "5s"},
		{name: "unset-time", clamp: BudgetSpec{Time: "30s"}, wantTime: "30s"},
		{name: "checkpoint-keeps-own", b: BudgetSpec{Checkpoint: 7}, clamp: BudgetSpec{Checkpoint: 100}, wantCkpoint: 7},
		{name: "checkpoint-fills", clamp: BudgetSpec{Checkpoint: 100}, wantCkpoint: 100},
	}
	for _, tc := range cases {
		got := ClampBudget(tc.b, tc.clamp)
		if got.Evals != tc.wantEvals || got.Time != tc.wantTime || got.Checkpoint != tc.wantCkpoint {
			t.Errorf("%s: ClampBudget(%+v, %+v) = %+v", tc.name, tc.b, tc.clamp, got)
		}
	}
}
