package cost

import (
	"fmt"
	"math"
	"sync"

	"temp/internal/collective"
	"temp/internal/hw"
	"temp/internal/mesh"
	"temp/internal/model"
	"temp/internal/parallel"
	"temp/internal/stream"
	"temp/internal/tcme"
	"temp/internal/unit"
)

// gemmHalfEff is the per-issue FLOP count at which a PE array reaches
// half of peak (tile-granularity efficiency model: smaller shards
// underutilize the array). 1 GFLOP ≈ a 512×1024×1024 tile.
const gemmHalfEff = 1e9

// streamRoundSync is the fixed per-round cost of one TATP stream
// round beyond serialization: DMA descriptor setup, router
// arbitration and the barrier that keeps sub-tensor relays aligned
// with compute rounds. It is what makes very fine-grained streaming
// (large N) lose throughput (Fig. 9's decline past the sweet spot).
const streamRoundSync = 2 * unit.Microsecond

// idlePowerFrac is the fraction of busy compute power a die still
// draws while stalled on communication (clock-gated PE arrays,
// SRAM retention, NoC). Exposed communication therefore wastes
// energy — the reason TEMP's shorter steps also win on power
// efficiency (Fig. 14).
const idlePowerFrac = 0.35

// Breakdown is the full result of evaluating one training step.
type Breakdown struct {
	Model  string
	Config parallel.Config
	Engine Engine

	// StepTime is the end-to-end latency of one global-batch step.
	StepTime float64
	// ComputeTime is the compute component (per stage, summed over
	// micro-steps).
	ComputeTime float64
	// StreamTime is the exposed TATP streaming time (beyond what
	// overlaps with compute).
	StreamTime float64
	// CollectiveTime is the exposed collective communication.
	CollectiveTime float64
	// P2PTime is inter-stage (pipeline) transfer time.
	P2PTime float64
	// BubbleTime is the pipeline-bubble component.
	BubbleTime float64
	// OptimizerTime is the memory-bound parameter update.
	OptimizerTime float64

	Memory MemoryBreakdown

	EnergyCompute float64
	EnergyComm    float64
	EnergyDRAM    float64

	// ThroughputTokens is tokens/second for the whole system.
	ThroughputTokens float64
	// Power is the average system power in watts.
	Power float64
	// PowerEfficiency is throughput per watt.
	PowerEfficiency float64
	// BWUtilization is the fraction of link·seconds carrying data.
	BWUtilization float64

	// TCME aggregates the optimizer's work when Engine==TCMEEngine.
	TCME tcme.Result
}

// OOM reports whether the configuration exceeds per-die memory.
func (b Breakdown) OOM() bool { return b.Memory.OOM() }

// CommTime returns all exposed communication.
func (b Breakdown) CommTime() float64 {
	return b.StreamTime + b.CollectiveTime + b.P2PTime
}

// String summarises the breakdown.
func (b Breakdown) String() string {
	return fmt.Sprintf("%s %s [%s]: step=%s comp=%s stream=%s coll=%s bubble=%s mem=%s/%s tput=%.1f tok/s eff=%.3f tok/s/W",
		b.Model, b.Config, b.Engine, unit.Seconds(b.StepTime), unit.Seconds(b.ComputeTime),
		unit.Seconds(b.StreamTime), unit.Seconds(b.CollectiveTime), unit.Seconds(b.BubbleTime),
		unit.Bytes(b.Memory.Total()), unit.Bytes(b.Memory.Capacity), b.ThroughputTokens, b.PowerEfficiency)
}

// evalState is the lowering state an evaluation shares with every
// other evaluation of the same (topology, configuration, placement
// family): the TATP stream orchestrations and the per-strategy
// communication orders distilled from the placement. Building it is
// the expensive structural part of an evaluation (placement tiling,
// Hamiltonian ring construction, nearest-neighbor ordering), so
// stateFor memoizes it on the interned topology and the engine's
// whole worker pool shares one instance per key across candidates.
// The placement itself is not retained — the evaluator only consumes
// the distilled orders/orchestrations.
type evalState struct {
	err error

	// orchs holds the stream orchestration of each TATP group
	// (alive-filtered), in group order.
	orchs []*stream.Orchestration
	// orders[s] holds the alive-filtered communication order of every
	// group of strategy s whose surviving size exceeds one, in group
	// order: logical rank order for SMap/GMap, the physical
	// ring/snake/nearest-neighbor order for the TCME engine.
	orders [parallel.NumStrategies][][]mesh.DieID

	// Lazily compiled merged lowering templates (all TATP orchs merged;
	// each strategy × ring-collective kind merged over its groups),
	// shared by every evaluation of this state.
	mu     sync.Mutex
	stream *mesh.PhaseTemplate
	coll   map[collKey]collTemplate
}

// Ring-collective kinds the evaluator lowers through merged templates.
const (
	collAllReduce     = 'A'
	collAllGather     = 'G'
	collReduceScatter = 'R'
)

type collKey struct {
	s    parallel.Strategy
	kind byte
}

// collTemplate is a merged-over-groups lowering: valid (tmpl non-nil)
// only when every group shares one size n, because all-reduce and
// reduce-scatter chunk as bytes/n — unequal survivor groups (fault
// scenarios) take the per-group slow path instead.
type collTemplate struct {
	tmpl *mesh.PhaseTemplate
	n    int
}

// streamTemplate compiles the merged TATP stream structure (step k of
// every orchestration aligned into one phase, payload-tagged exactly
// like collective.Merge) once per state.
func (st *evalState) streamTemplate() *mesh.PhaseTemplate {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.stream == nil {
		seqs := make([][]mesh.Phase, len(st.orchs))
		for i, orch := range st.orchs {
			seqs[i] = orch.Phases(1)
		}
		st.stream = mesh.NewPhaseTemplate(collective.Merge(seqs...))
	}
	return st.stream
}

// collTemplateFor compiles the merged lowering of one (strategy,
// kind) pair once per state. Lowering with per-flow unit bytes keeps
// the template byte-invariant: all-reduce/reduce-scatter of n bytes
// over n dies produces unit chunks exactly.
func (st *evalState) collTemplateFor(t *mesh.Topology, s parallel.Strategy, kind byte) collTemplate {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.coll == nil {
		st.coll = map[collKey]collTemplate{}
	}
	k := collKey{s: s, kind: kind}
	if ct, ok := st.coll[k]; ok {
		return ct
	}
	ct := buildCollTemplate(t, st.orders[s], kind)
	st.coll[k] = ct
	return ct
}

func buildCollTemplate(t *mesh.Topology, orders [][]mesh.DieID, kind byte) collTemplate {
	n := len(orders[0])
	for _, o := range orders {
		if len(o) != n {
			return collTemplate{}
		}
	}
	seqs := make([][]mesh.Phase, len(orders))
	for i, order := range orders {
		switch kind {
		case collAllReduce:
			seqs[i] = collective.RingAllReduce(t, order, float64(n)) // unit chunks
		case collAllGather:
			seqs[i] = collective.RingAllGather(t, order, 1)
		case collReduceScatter:
			seqs[i] = collective.RingReduceScatter(t, order, float64(n))
		}
	}
	return collTemplate{tmpl: mesh.NewPhaseTemplate(collective.Merge(seqs...)), n: n}
}

// lowerRingKind dispatches one per-group lowering on the slow path.
// For all-reduce and reduce-scatter bytes is the per-participant
// payload (the lowering chunks it by the group size); for all-gather
// it is the per-flow shard directly.
func lowerRingKind(t *mesh.Topology, kind byte, order []mesh.DieID, bytes float64) []mesh.Phase {
	switch kind {
	case collAllReduce:
		return collective.RingAllReduce(t, order, bytes)
	case collAllGather:
		return collective.RingAllGather(t, order, bytes)
	case collReduceScatter:
		return collective.RingReduceScatter(t, order, bytes)
	default:
		panic("cost: unknown collective kind")
	}
}

// stateKey keys memoized evalStates on a frozen topology.
type stateKey struct {
	cfg    parallel.Config
	linear bool
	tcme   bool
}

// stateFor returns the memoized evalState for (topo, cfg) under the
// given placement family and ordering flavor. Placement errors are
// memoized too: sweeps re-ask about unplaceable configurations
// constantly.
func stateFor(topo *mesh.Topology, cfg parallel.Config, linear, tcmeOrders bool) (*evalState, error) {
	st := topo.Derived(stateKey{cfg: cfg, linear: linear, tcme: tcmeOrders}, func() any {
		var place *parallel.Placement
		var err error
		if linear {
			place, err = parallel.PlaceLinear(cfg, topo)
		} else {
			place, err = parallel.Place(cfg, topo)
		}
		if err != nil {
			return &evalState{err: err}
		}
		return newEvalState(topo, place, tcmeOrders)
	}).(*evalState)
	return st, st.err
}

// newEvalState lowers a placement's group structure onto the
// topology: stream orchestrations for TATP and communication orders
// for every other strategy.
func newEvalState(topo *mesh.Topology, place *parallel.Placement, tcmeOrders bool) *evalState {
	st := &evalState{}
	for _, g := range place.Groups(parallel.TATP) {
		st.orchs = append(st.orchs, stream.Orchestrate(topo, aliveOnly(topo, g.Dies), g.Rect))
	}
	for _, s := range parallel.Strategies() {
		for _, g := range place.Groups(s) {
			order := groupOrder(topo, g, tcmeOrders)
			order = aliveOnly(topo, order)
			if len(order) <= 1 {
				continue
			}
			st.orders[s] = append(st.orders[s], order)
		}
	}
	return st
}

// evaluator carries the shared lowering state for one evaluation.
type evaluator struct {
	m    model.Config
	w    hw.Wafer
	cfg  parallel.Config
	o    Options
	topo *mesh.Topology
	st   *evalState

	graph model.Graph

	// replay forces every communication phase through the TCME
	// link-load replay regardless of the mapping engine — the
	// "replay" backend's contention-fidelity mode. The analytic tier
	// leaves it false, keeping the historical behaviour bit-identical.
	replay bool

	linkBytes float64 // Σ flow bytes × hops, for energy/utilization
	tcmeAgg   tcme.Result

	// seqBuf and collSeq are reusable lowered-sequence scratch for the
	// stream and collective terms. A nil seqBuf grows on demand (the
	// scalar path); the batch pricer threads a pooled buffer through so
	// steady-state candidates allocate nothing.
	seqBuf  []mesh.LoweredSeq
	collSeq [1]mesh.LoweredSeq
}

// needTCME reports whether phases must pass through the TCME
// link-load optimizer (the TEMP engine, or the replay backend's
// contention fidelity).
func (ev *evaluator) needTCME() bool { return ev.o.Engine == TCMEEngine || ev.replay }

// merge combines concurrent phase sequences. Only the TCME optimizer
// reads flow payloads; when no TCME pass will run, the payload-free
// merge produces the identical flow order without the per-flow string
// retagging.
func (ev *evaluator) merge(seqs ...[]mesh.Phase) []mesh.Phase {
	if ev.needTCME() {
		return collective.Merge(seqs...)
	}
	return collective.MergeFlows(seqs...)
}

// evalLowered times a scaled-template sequence: the TCME path
// materializes real phases for the optimizer to mutate; the analytic
// path evaluates the templates in place, allocation-free.
func (ev *evaluator) evalLowered(seq []mesh.LoweredSeq) float64 {
	if ev.needTCME() {
		return ev.evalPhases(mesh.MaterializeSeq(seq))
	}
	pt := ev.topo.SeqTimeLowered(seq)
	ev.linkBytes += pt.LinkBytes
	return pt.Total()
}

// Evaluate runs the cost model for one model/wafer/config triple.
// The TCME engine explores both placement families (hierarchical
// rectangles and linear runs) and keeps the faster — part of the
// mapping-space exploration GMap lacks (§VIII-A).
func Evaluate(m model.Config, w hw.Wafer, cfg parallel.Config, o Options) (Breakdown, error) {
	return evaluate(m, w, cfg, o, false)
}

// evaluate is the shared Price core; replay selects the contention
// replay fidelity of the "replay" backend.
func evaluate(m model.Config, w hw.Wafer, cfg parallel.Config, o Options, replay bool) (Breakdown, error) {
	cfg = cfg.Normalize()
	topo := mesh.FromWafer(w)
	tcmeOrders := o.Engine == TCMEEngine
	switch o.Engine {
	case SMap:
		st, err := stateFor(topo, cfg, true, tcmeOrders)
		if err != nil {
			return Breakdown{}, err
		}
		return evaluateState(m, w, cfg, o, topo, st, replay)
	case GMap:
		st, err := stateFor(topo, cfg, false, tcmeOrders)
		if err != nil {
			return Breakdown{}, err
		}
		return evaluateState(m, w, cfg, o, topo, st, replay)
	default:
		rect, rectErr := stateFor(topo, cfg, false, tcmeOrders)
		lin, linErr := stateFor(topo, cfg, true, tcmeOrders)
		if rectErr != nil && linErr != nil {
			return Breakdown{}, rectErr
		}
		var best Breakdown
		have := false
		if rectErr == nil {
			b, err := evaluateState(m, w, cfg, o, topo, rect, replay)
			if err == nil {
				best, have = b, true
			}
		}
		if linErr == nil {
			b, err := evaluateState(m, w, cfg, o, topo, lin, replay)
			if err == nil && (!have || b.StepTime < best.StepTime) {
				best, have = b, true
			}
		}
		if !have {
			return Breakdown{}, noViablePlacement(cfg)
		}
		return best, nil
	}
}

// noViablePlacement is the default engine's both-families-failed
// error, shared by the scalar and batched pricers so their messages
// cannot drift.
func noViablePlacement(cfg parallel.Config) error {
	return fmt.Errorf("cost: no viable placement for %s", cfg)
}

// EvaluateOn runs the cost model against an existing topology and
// placement — the entry point the fault-tolerance study uses after
// re-partitioning around failed hardware.
func EvaluateOn(m model.Config, w hw.Wafer, cfg parallel.Config, o Options,
	topo *mesh.Topology, place *parallel.Placement) (Breakdown, error) {
	return evaluateOn(m, w, cfg, o, topo, place, false)
}

// evaluateOn lowers an externally supplied placement (fault studies)
// and prices it; the lowering state is built fresh because the caller
// owns the placement.
func evaluateOn(m model.Config, w hw.Wafer, cfg parallel.Config, o Options,
	topo *mesh.Topology, place *parallel.Placement, replay bool) (Breakdown, error) {
	cfg = cfg.Normalize()
	st := newEvalState(topo, place, o.Engine == TCMEEngine)
	return evaluateState(m, w, cfg, o, topo, st, replay)
}

func evaluateState(m model.Config, w hw.Wafer, cfg parallel.Config, o Options,
	topo *mesh.Topology, st *evalState, replay bool) (Breakdown, error) {
	ev := &evaluator{
		m: m, w: w, cfg: cfg, o: o,
		topo: topo, st: st,
		graph:  model.BlockGraph(m),
		replay: replay,
	}
	return ev.run()
}

// aliveOnly filters dead dies out of a group (fault adaptation keeps
// the survivors streaming).
func aliveOnly(t *mesh.Topology, dies []mesh.DieID) []mesh.DieID {
	out := make([]mesh.DieID, 0, len(dies))
	for _, d := range dies {
		if t.DieAlive(d) {
			out = append(out, d)
		}
	}
	if len(out) == 0 {
		return dies
	}
	return out
}

func (ev *evaluator) run() (Breakdown, error) {
	m, cfg, o := ev.m, ev.cfg, ev.o
	stages := maxInt(cfg.PP, 1)
	layersPerStage := unit.CeilDiv(m.Layers, stages)
	mem := MemoryPerDie(m, ev.w, cfg, o, layersPerStage)

	mb := o.microbatch()
	perRankBatch := maxInt(m.Batch/maxInt(cfg.DP, 1), 1)
	if mb > perRankBatch {
		mb = perRankBatch
	}
	microSteps := maxInt(perRankBatch/mb, 1)

	// --- Per-layer compute (one micro-step, forward). ---
	fwdComp, recompExtra := ev.layerCompute(mb)
	if slow := ev.coreSlowdown(); slow > 1 {
		fwdComp *= slow
		recompExtra *= slow
	}

	// --- Per-layer TATP streams (forward). ---
	streamComm := ev.layerStreamComm(mb, 1, true)

	// --- Per-layer exposed collectives (forward). ---
	collPerLayerFwd := ev.layerCollectives(mb)

	// --- FSDP per-layer weight gather / grad scatter. ---
	fsdpPerLayer := ev.fsdpCollectives()

	// Forward: TATP ops overlap stream with their own compute
	// (Eq. 2: max{Comp, P2P}); the remaining ops expose compute.
	// Backward doubles both compute and stream volume.
	overlap := func(comp, comm float64) float64 {
		if o.DisableStreamOverlap {
			return comp + comm
		}
		return unit.MaxF(comp, comm)
	}
	layerFwd := overlap(fwdComp, streamComm) + collPerLayerFwd + fsdpPerLayer.fwd
	bwdStream := 2 * streamComm
	if ev.replay {
		// Contention replay: backward streams move twice the bytes per
		// sub-tensor (activation grads ride with the streamed operand),
		// and link bandwidth is granularity-dependent — so replay the
		// doubled sub-tensors instead of doubling the forward time.
		// The forward FSDP gather is not re-run here; backward FSDP
		// costs are charged in fsdpPerLayer.bwd.
		bwdStream = ev.layerStreamComm(mb, 2, false)
	}
	layerBwd := overlap(2*fwdComp, bwdStream) + recompExtra + collPerLayerFwd + fsdpPerLayer.bwd
	layerTime := layerFwd + layerBwd

	microTime := float64(layersPerStage) * layerTime

	// --- Pipeline staging across wafers. ---
	var p2pTime, bubbleTime float64
	if stages > 1 {
		hop := ev.interStageBytes(mb)/ev.w.InterWaferBandwidth + ev.w.InterWaferLatency
		p2pTime = 2 * hop * float64(microSteps) // fwd act + bwd grad per micro-step
		bubbleTime = float64(stages-1) * (microTime + 2*hop)
	}

	// --- Data-parallel gradient sync + optimizer (once a step). ---
	// Its link bytes are per-step, not per-layer-per-micro-step, so
	// they are accounted separately from the layer-scope bytes
	// accumulated so far.
	layerLinkBytes := ev.linkBytes
	dpAR := ev.dpAllReduce(layersPerStage)
	stepLinkBytes0 := ev.linkBytes - layerLinkBytes
	ev.linkBytes = layerLinkBytes
	bwdPerMicro := float64(layersPerStage) * layerBwd
	dpExposed := unit.MaxF(0, dpAR-0.5*bwdPerMicro)

	optimBytes := mem.Optimizer
	optimTime := 3 * optimBytes / ev.w.Die.MemBandwidth()
	// ZeRO-1 distributed optimizer: each rank updates its shard and
	// all-gathers the refreshed FP16 weights across the DP group.
	if o.DistributedOptimizer && !cfg.FSDP && cfg.DP > 1 {
		shard := ev.graph.WeightBytes() * float64(layersPerStage) /
			float64(cfg.TP*cfg.TATP*cfg.DP)
		agBefore := ev.linkBytes
		optimTime += ev.groupCollective(parallel.DP, collAllGather, shard)
		stepLinkBytes0 += ev.linkBytes - agBefore
		ev.linkBytes = agBefore
	}

	stepTime := float64(microSteps)*microTime + p2pTime + bubbleTime + dpExposed + optimTime

	// --- Aggregates. ---
	computeTotal := float64(microSteps) * float64(layersPerStage) * (3*fwdComp + recompExtra)
	streamExposed := float64(microSteps) * float64(layersPerStage) *
		(unit.MaxF(0, streamComm-fwdComp) + unit.MaxF(0, bwdStream-2*fwdComp))
	collTotal := float64(microSteps)*float64(layersPerStage)*(2*collPerLayerFwd+fsdpPerLayer.fwd+fsdpPerLayer.bwd) + dpExposed

	b := Breakdown{
		Model:          m.Name,
		Config:         cfg,
		Engine:         o.Engine,
		StepTime:       stepTime,
		ComputeTime:    computeTotal,
		StreamTime:     streamExposed,
		CollectiveTime: collTotal,
		P2PTime:        p2pTime,
		BubbleTime:     bubbleTime,
		OptimizerTime:  optimTime,
		Memory:         mem,
		TCME:           ev.tcmeAgg,
	}

	// --- Energy & power. ---
	dies := float64(ev.topo.Dies()) * float64(o.wafers())
	totalFLOPs := 3 * float64(m.Layers) * ev.graph.ForwardFLOPs() // whole model, whole batch
	if fwdComp > 0 {
		// Recomputation executes extra FLOPs; charge their energy.
		totalFLOPs *= (3*fwdComp + recompExtra) / (3 * fwdComp)
	}
	b.EnergyCompute = totalFLOPs / ev.w.Die.FLOPSPerWatt
	// Idle draw: compute units burn a fraction of busy power while
	// stalled on exposed communication and bubbles.
	busyPower := ev.w.Die.PeakFLOPS / ev.w.Die.FLOPSPerWatt * dies
	if idle := stepTime - computeTotal; idle > 0 {
		b.EnergyCompute += idlePowerFrac * busyPower * idle
	}
	stepLinkBytes := ev.linkBytes*float64(microSteps)*float64(layersPerStage) + stepLinkBytes0
	b.EnergyComm = stepLinkBytes * 8 * ev.w.Link.EnergyPerBit
	dramPerDie := float64(microSteps) * (3*mem.Weights + 6*mem.Activations/float64(maxInt(layersPerStage, 1))) // weights reread + act traffic
	dramPerDie += 3 * optimBytes
	b.EnergyDRAM = dramPerDie * dies * 8 * ev.w.Die.HBMEnergyPerBit

	tokens := float64(m.Tokens())
	b.ThroughputTokens = tokens / stepTime
	b.Power = (b.EnergyCompute + b.EnergyComm + b.EnergyDRAM) / stepTime
	if b.Power > 0 {
		b.PowerEfficiency = b.ThroughputTokens / b.Power
	}
	links := float64(ev.topo.TotalLinks())
	if links > 0 && stepTime > 0 {
		b.BWUtilization = unit.Clamp(stepLinkBytes/ev.w.Link.Bandwidth/(links*stepTime), 0, 1)
	}
	return b, nil
}

// coreSlowdown returns the compute-time multiplier induced by core
// faults: with TEMP's adaptive re-balancing, work is redistributed in
// proportion to surviving capacity (mean loss); without it, the
// slowest die gates every lock-step round (worst loss).
func (ev *evaluator) coreSlowdown() float64 {
	alive := ev.topo.AliveDies()
	if len(alive) == 0 {
		return 1
	}
	min, sum := 1.0, 0.0
	for _, d := range alive {
		f := ev.topo.CoreFraction(d)
		if f < min {
			min = f
		}
		sum += f
	}
	mean := sum / float64(len(alive))
	if ev.o.AdaptiveRebalance {
		if mean <= 0 {
			return math.Inf(1)
		}
		return 1 / mean
	}
	if min <= 0 {
		return math.Inf(1)
	}
	return 1 / min
}

// layerCompute returns the per-die forward compute time of one block
// for a micro-step of mb sequences, and the recomputation surcharge
// applied during backward.
//
// GEMM-class operators divide across every model-parallel dimension.
// Vector operators (layer norms, softmax, GeLU, residuals) divide
// only across the dimensions that actually shard activations: plain
// Megatron TP replicates them on every TP rank — the redundant
// computation Megatron-3's sequence parallelism was built to remove.
// Flash-fused attention ops never spill the score matrix to DRAM, so
// they are costed on vector throughput alone.
func (ev *evaluator) layerCompute(mb int) (fwd, recompExtra float64) {
	cfg := ev.cfg
	die := ev.w.Die
	gemmShard := float64(cfg.TP * cfg.SP * cfg.CP * cfg.TATP)
	frac := float64(mb) / float64(ev.m.Batch) // micro-step share per DP rank
	var attn float64
	for _, op := range ev.graph.Ops {
		var t float64
		if op.Kind.IsGEMM() {
			shard := op.FLOPs * frac / gemmShard
			per := shard
			if cfg.TATP > 1 && op.HasWeight() {
				per = shard / float64(cfg.TATP) // per-round tile
			}
			eff := per / (per + gemmHalfEff)
			if eff < 0.05 {
				eff = 0.05
			}
			t = shard / (die.PeakFLOPS * eff)
		} else {
			vecShard := float64(cfg.SP * cfg.CP * cfg.TATP)
			if op.TPSharded || cfg.MegatronSP {
				vecShard *= float64(cfg.TP)
			}
			shard := op.FLOPs * frac / vecShard
			t = shard / die.VectorFLOPS
			if !op.FlashFused || ev.o.NoFlashAttention {
				bytes := (op.Input.Bytes() + op.Output.Bytes()) * frac / vecShard
				t = unit.MaxF(t, bytes/die.MemBandwidth())
			}
		}
		fwd += t
		if op.FlashFused {
			attn += t
		}
	}
	switch ev.o.Recompute {
	case RecomputeFull:
		recompExtra = fwd
	case RecomputeSelective:
		recompExtra = attn
	}
	return fwd, recompExtra
}

// layerStreamComm returns the TATP streaming time of one block: all
// weighted GEMMs stream their selected operand around each TATP group
// concurrently. scale multiplies the streamed sub-tensor bytes (the
// replay tier prices backward's doubled volume at its true
// granularity); withFSDP merges the per-layer FSDP weight all-gather
// into the streams — it runs concurrently with them and contends for
// the same links, the Fig. 11 scenario TCME untangles.
func (ev *evaluator) layerStreamComm(mb int, scale float64, withFSDP bool) float64 {
	cfg := ev.cfg
	if cfg.TATP <= 1 || len(ev.st.orchs) == 0 {
		return 0
	}
	o := ev.o
	o.Microbatch = mb
	fsdpMerged := withFSDP && cfg.FSDP && cfg.DP > 1
	if !fsdpMerged {
		// Common case: every weighted op streams the same merged
		// orchestration structure at its own sub-tensor size — one
		// template entry per op, no materialization on the analytic
		// path.
		tmpl := ev.st.streamTemplate()
		seq := ev.seqBuf[:0]
		var rounds int
		for _, op := range ev.graph.Ops {
			if !op.HasWeight() {
				continue
			}
			sub, _ := streamSubTensorBytes(op, ev.m, cfg, o)
			seq = append(seq, mesh.LoweredSeq{Tmpl: tmpl, Bytes: sub * scale})
			rounds += cfg.TATP
		}
		ev.seqBuf = seq[:0]
		return ev.evalLowered(seq) + float64(rounds)*streamRoundSync
	}
	// FSDP×TATP hybrid: the per-layer weight all-gather rides merged
	// inside the stream phases (Fig. 11), mixing two byte sizes in one
	// phase — the materialized path handles the non-uniform flows.
	var streamSeq []mesh.Phase
	var rounds int
	for _, op := range ev.graph.Ops {
		if !op.HasWeight() {
			continue
		}
		sub, _ := streamSubTensorBytes(op, ev.m, cfg, o)
		sub *= scale
		var seqs [][]mesh.Phase
		for _, orch := range ev.st.orchs {
			seqs = append(seqs, orch.Phases(sub))
		}
		streamSeq = append(streamSeq, ev.merge(seqs...)...)
		rounds += cfg.TATP
	}
	layerW := ev.graph.WeightBytes() / float64(cfg.TP*cfg.TATP)
	shard := layerW / float64(cfg.DP)
	var agSeqs [][]mesh.Phase
	for _, order := range ev.st.orders[parallel.DP] {
		agSeqs = append(agSeqs, collective.RingAllGather(ev.topo, order, shard))
	}
	if len(agSeqs) > 0 {
		streamSeq = ev.merge(append([][]mesh.Phase{streamSeq}, agSeqs...)...)
	}
	return ev.evalPhases(streamSeq) + float64(rounds)*streamRoundSync
}

// layerCollectives returns the exposed forward collective time of one
// block under the configured strategies: Megatron TP all-reduces (or
// their SP-fused AG+RS form), standalone sequence-parallel gathers
// and context-parallel KV gathers.
func (ev *evaluator) layerCollectives(mb int) float64 {
	cfg := ev.cfg
	h := float64(ev.m.Hidden)
	fp := unit.FP16.Size()
	sAR := float64(ev.m.Seq) / float64(cfg.SP*cfg.CP*cfg.TATP)
	var total float64

	if cfg.TP > 1 {
		// Two partial-sum reductions per block (attention projection
		// and FC2).
		bytes := float64(mb) * sAR * h * fp
		total += 2 * ev.groupCollective(parallel.TP, collAllReduce, bytes)
	}
	if cfg.SP > 1 && !cfg.MegatronSP {
		shard := float64(mb) * sAR * h * fp
		total += ev.groupCollective(parallel.SP, collAllGather, shard/float64(cfg.SP))
		total += ev.groupCollective(parallel.SP, collReduceScatter, shard)
	}
	if cfg.CP > 1 {
		kv := 2 * float64(mb) * sAR * h * fp / float64(cfg.TP)
		total += ev.groupCollective(parallel.CP, collAllGather, kv/float64(cfg.CP))
	}
	return total
}

type fsdpCost struct{ fwd, bwd float64 }

// fsdpCollectives returns the per-layer weight all-gather (forward
// and backward) and gradient reduce-scatter costs of FSDP sharding.
// Under FSDP×TATP hybrids the forward gather already rides inside the
// merged stream phases (layerStreamComm), so only backward costs
// remain here.
func (ev *evaluator) fsdpCollectives() fsdpCost {
	cfg := ev.cfg
	if !cfg.FSDP || cfg.DP <= 1 {
		return fsdpCost{}
	}
	if cfg.TATP > 1 {
		layerW := ev.graph.WeightBytes() / float64(cfg.TP*cfg.TATP)
		rs := ev.groupCollective(parallel.DP, collReduceScatter, layerW)
		ag := ev.groupCollective(parallel.DP, collAllGather, layerW/float64(cfg.DP))
		return fsdpCost{fwd: 0, bwd: ag + rs}
	}
	layerW := ev.graph.WeightBytes() / float64(cfg.TP*cfg.TATP)
	shard := layerW / float64(cfg.DP)
	ag := ev.groupCollective(parallel.DP, collAllGather, shard)
	rs := ev.groupCollective(parallel.DP, collReduceScatter, layerW)
	return fsdpCost{fwd: ag, bwd: ag + rs}
}

// dpAllReduce returns the gradient synchronization time across DP
// groups for one step (non-FSDP data parallelism).
func (ev *evaluator) dpAllReduce(layersPerStage int) float64 {
	cfg := ev.cfg
	if cfg.FSDP || cfg.DP <= 1 {
		return 0
	}
	grads := ev.graph.WeightBytes() * float64(layersPerStage) / float64(cfg.TP*cfg.TATP)
	return ev.groupCollective(parallel.DP, collAllReduce, grads)
}

// groupCollective lowers one ring collective onto every pre-ordered
// group of a strategy, merges the concurrent phases, optionally
// optimizes them with TCME, and returns the wall time. bytes is the
// per-participant payload for all-reduce/reduce-scatter (chunked by
// group size) and the per-flow shard for all-gather. When every group
// shares one size the merged structure comes from the state's
// compiled template; unequal survivor groups (fault scenarios) take
// the per-group lowering path.
func (ev *evaluator) groupCollective(s parallel.Strategy, kind byte, bytes float64) float64 {
	orders := ev.st.orders[s]
	if len(orders) == 0 || bytes <= 0 {
		return 0
	}
	if ct := ev.st.collTemplateFor(ev.topo, s, kind); ct.tmpl != nil {
		perFlow := bytes
		if kind == collAllReduce || kind == collReduceScatter {
			perFlow = bytes / float64(ct.n)
		}
		ev.collSeq[0] = mesh.LoweredSeq{Tmpl: ct.tmpl, Bytes: perFlow}
		// Each ring step is a synchronized phase across the group:
		// charge the same per-phase setup/barrier overhead as stream
		// rounds.
		return ev.evalLowered(ev.collSeq[:]) + float64(ct.tmpl.Phases())*streamRoundSync
	}
	var seqs [][]mesh.Phase
	for _, order := range orders {
		seqs = append(seqs, lowerRingKind(ev.topo, kind, order, bytes))
	}
	merged := ev.merge(seqs...)
	return ev.evalPhases(merged) + float64(len(merged))*streamRoundSync
}

// groupOrder returns the communication order of a group. SMap and
// GMap communicate in logical rank order (NCCL-style rings over rank
// IDs): SMap's scattered groups then wrap across rows multi-hop,
// while GMap's rectangular placement at least keeps ranks nearby but
// still pays an in-rect wrap — the "does not optimize D2D
// communication" deficiency of §VIII-A. Only TEMP's mapping engine
// re-orders communication onto the group's physical Hamiltonian ring
// (or snake path) before TCME's contention optimization runs.
func groupOrder(t *mesh.Topology, g parallel.Group, tcmeOrders bool) []mesh.DieID {
	if !tcmeOrders {
		return g.Dies
	}
	if g.Rect != nil {
		if ring, ok := g.Rect.RingPath(t); ok {
			return ring
		}
		return g.Rect.SnakePath(t)
	}
	return nearestNeighborOrder(t, g.Dies)
}

// nearestNeighborOrder re-sequences a scattered group greedily by hop
// distance so ring collectives traverse short segments — the mapping
// engine's logical-orchestration step for non-contiguous groups.
func nearestNeighborOrder(t *mesh.Topology, dies []mesh.DieID) []mesh.DieID {
	if len(dies) <= 2 {
		return dies
	}
	rest := append([]mesh.DieID(nil), dies[1:]...)
	out := []mesh.DieID{dies[0]}
	for len(rest) > 0 {
		cur := out[len(out)-1]
		bi, bd := 0, 1<<30
		for i, d := range rest {
			if h := t.HopDistance(cur, d); h < bd {
				bi, bd = i, h
			}
		}
		out = append(out, rest[bi])
		rest = append(rest[:bi], rest[bi+1:]...)
	}
	return out
}

// evalPhases times a phase sequence, applying TCME when enabled, and
// accumulates link-byte statistics.
func (ev *evaluator) evalPhases(phases []mesh.Phase) float64 {
	if ev.o.Engine == TCMEEngine || ev.replay {
		opt, agg := tcme.OptimizeAll(ev.topo, phases, ev.o.TCME)
		phases = opt
		ev.tcmeAgg.InitialMaxLoad += agg.InitialMaxLoad
		ev.tcmeAgg.FinalMaxLoad += agg.FinalMaxLoad
		ev.tcmeAgg.Iterations += agg.Iterations
		ev.tcmeAgg.MergedFlows += agg.MergedFlows
		ev.tcmeAgg.ReroutedFlows += agg.ReroutedFlows
	}
	pt := ev.topo.SeqTime(phases)
	ev.linkBytes += pt.LinkBytes
	return pt.Total()
}

// interStageBytes is the activation volume handed to the next
// pipeline stage per micro-step, per die.
func (ev *evaluator) interStageBytes(mb int) float64 {
	h := float64(ev.m.Hidden)
	return float64(mb) * float64(ev.m.Seq) * h * unit.FP16.Size() / float64(ev.cfg.Degree())
}
