package mesh

import (
	"math"
	"testing"

	"temp/internal/hw"
	"temp/internal/unit"
)

func flowBetween(tp *Topology, src, dst DieID, bytes float64, payload string) Flow {
	return Flow{Src: src, Dst: dst, Bytes: bytes, Route: tp.RouteXY(src, dst), Payload: payload}
}

func TestPhaseTimeSingleHop(t *testing.T) {
	tp := grid(2, 4)
	bytes := 64 * unit.MB
	p := Phase{Flows: []Flow{flowBetween(tp, 0, 1, bytes, "w0")}}
	pt := tp.Time(p)
	link := hw.TableID2D()
	wantSer := bytes / link.EffectiveBandwidth(bytes)
	if math.Abs(pt.Serialization-wantSer)/wantSer > 1e-9 {
		t.Errorf("Serialization = %v, want %v", pt.Serialization, wantSer)
	}
	if pt.HopLatency != link.Latency {
		t.Errorf("HopLatency = %v, want one hop", pt.HopLatency)
	}
	if pt.MaxHops != 1 {
		t.Errorf("MaxHops = %d", pt.MaxHops)
	}
}

// TestContentionDoublesLatency reproduces the Fig. 5(b) effect:
// two flows forced through a shared link take >2× the time of the
// contention-free case.
func TestContentionDoublesLatency(t *testing.T) {
	tp := grid(2, 4)
	bytes := 64 * unit.MB
	// Dies 0→2 and 1→3 in the top row share link 1→2 under XY routing.
	d0, d1 := tp.ID(Coord{0, 0}), tp.ID(Coord{0, 1})
	d2, d3 := tp.ID(Coord{0, 2}), tp.ID(Coord{0, 3})
	solo := tp.Time(Phase{Flows: []Flow{flowBetween(tp, d0, d2, bytes, "a")}})
	both := tp.Time(Phase{Flows: []Flow{
		flowBetween(tp, d0, d2, bytes, "a"),
		flowBetween(tp, d1, d3, bytes, "b"),
	}})
	if both.Serialization < 2*solo.Serialization*0.99 {
		t.Errorf("contention serialization %v < 2× solo %v", both.Serialization, solo.Serialization)
	}
	if both.Bottleneck != (Link{d1, d2}) {
		t.Errorf("bottleneck = %v, want %v", both.Bottleneck, Link{d1, d2})
	}
}

func TestPhaseLoads(t *testing.T) {
	tp := grid(1, 4)
	p := Phase{Flows: []Flow{
		flowBetween(tp, 0, 3, 100, "x"),
		flowBetween(tp, 1, 2, 50, "y"),
	}}
	loads := p.Loads()
	if loads[Link{1, 2}] != 150 {
		t.Errorf("shared link load = %v, want 150", loads[Link{1, 2}])
	}
	if loads[Link{0, 1}] != 100 {
		t.Errorf("first link load = %v, want 100", loads[Link{0, 1}])
	}
	l, v := p.MaxLoad()
	if l != (Link{1, 2}) || v != 150 {
		t.Errorf("MaxLoad = %v/%v", l, v)
	}
}

func TestSeqTimeAccumulates(t *testing.T) {
	tp := grid(1, 4)
	p1 := Phase{Flows: []Flow{flowBetween(tp, 0, 1, 10*unit.MB, "a")}}
	p2 := Phase{Flows: []Flow{flowBetween(tp, 1, 2, 10*unit.MB, "b")}}
	seq := tp.SeqTime([]Phase{p1, p2})
	t1, t2 := tp.Time(p1), tp.Time(p2)
	if got, want := seq.Total(), t1.Total()+t2.Total(); math.Abs(got-want) > 1e-12 {
		t.Errorf("SeqTime total = %v, want %v", got, want)
	}
}

func TestUtilizationBalanced(t *testing.T) {
	tp := grid(1, 3)
	// Two equal single-hop flows on disjoint links: perfectly balanced.
	p := Phase{Flows: []Flow{
		flowBetween(tp, 0, 1, 100, "a"),
		flowBetween(tp, 1, 2, 100, "b"),
	}}
	u := tp.Utilization(p)
	if u.Balance != 1.0 {
		t.Errorf("Balance = %v, want 1.0", u.Balance)
	}
	// Skewed loads reduce balance.
	p2 := Phase{Flows: []Flow{
		flowBetween(tp, 0, 1, 300, "a"),
		flowBetween(tp, 1, 2, 100, "b"),
	}}
	u2 := tp.Utilization(p2)
	if u2.Balance >= 1.0 {
		t.Errorf("skewed Balance = %v, want <1", u2.Balance)
	}
}

func TestValidatePhase(t *testing.T) {
	tp := grid(2, 2)
	good := Phase{Flows: []Flow{flowBetween(tp, 0, 3, 10, "ok")}}
	if err := tp.ValidatePhase(good); err != nil {
		t.Fatalf("valid phase rejected: %v", err)
	}
	bad := Phase{Flows: []Flow{{Src: 0, Dst: 3, Bytes: 10, Route: Path{0, 3}, Payload: "diag"}}}
	if err := tp.ValidatePhase(bad); err == nil {
		t.Fatal("diagonal route accepted")
	}
	empty := Phase{Flows: []Flow{{Src: 0, Dst: 1, Bytes: 10, Payload: "noroute"}}}
	if err := tp.ValidatePhase(empty); err == nil {
		t.Fatal("empty route accepted")
	}
	wrongEnds := Phase{Flows: []Flow{{Src: 0, Dst: 1, Bytes: 10, Route: Path{0, 2}, Payload: "ends"}}}
	if err := tp.ValidatePhase(wrongEnds); err == nil {
		t.Fatal("mismatched endpoints accepted")
	}
}

func TestEnergyScalesWithHops(t *testing.T) {
	tp := grid(1, 8)
	oneHop := Phase{Flows: []Flow{flowBetween(tp, 0, 1, 1*unit.MB, "x")}}
	sevenHops := Phase{Flows: []Flow{flowBetween(tp, 0, 7, 1*unit.MB, "x")}}
	e1, e7 := tp.EnergyJoules(oneHop), tp.EnergyJoules(sevenHops)
	if math.Abs(e7/e1-7) > 1e-9 {
		t.Errorf("energy ratio = %v, want 7 (per-hop charging)", e7/e1)
	}
	want := 1 * unit.MB * 8 * hw.TableID2D().EnergyPerBit
	if math.Abs(e1-want)/want > 1e-9 {
		t.Errorf("one-hop energy = %v, want %v", e1, want)
	}
}

func TestMulticastTreeDedupesBytes(t *testing.T) {
	tp := grid(2, 4)
	bytes := 32 * unit.MB
	dsts := []DieID{1, 2, 3}
	// Unicast: three flows 0→1, 0→2, 0→3 share link 0→1 (load 3B).
	uni := Phase{Flows: []Flow{
		flowBetween(tp, 0, 1, bytes, "w"),
		flowBetween(tp, 0, 2, bytes, "w"),
		flowBetween(tp, 0, 3, bytes, "w"),
	}}
	multi := Phase{Flows: MulticastTree(tp, 0, dsts, bytes, "w")}
	if err := tp.ValidatePhase(multi); err != nil {
		t.Fatal(err)
	}
	_, uniMax := uni.MaxLoad()
	_, multiMax := multi.MaxLoad()
	if multiMax >= uniMax {
		t.Errorf("multicast max load %v not below unicast %v", multiMax, uniMax)
	}
	if multiMax != bytes {
		t.Errorf("multicast link load = %v, want one payload %v", multiMax, bytes)
	}
	// Tree must reach all destinations.
	reached := map[DieID]bool{0: true}
	for _, f := range multi.Flows {
		reached[f.Dst] = true
	}
	for _, d := range dsts {
		if !reached[d] {
			t.Errorf("destination %d not covered by tree", d)
		}
	}
}

func TestMulticastTreeEmpty(t *testing.T) {
	tp := grid(2, 2)
	if flows := MulticastTree(tp, 0, nil, 100, "w"); flows != nil {
		t.Errorf("empty destination set should yield no flows, got %v", flows)
	}
}

// TestTailLatencySevenHops reproduces Fig. 5(a): a logical-neighbor
// transfer that physically crosses 7 hops pays ~7× the latency of a
// true 1-hop transfer.
func TestTailLatencySevenHops(t *testing.T) {
	tp := grid(1, 8)
	bytes := 1 * unit.KB // latency-dominated regime
	near := tp.Time(Phase{Flows: []Flow{flowBetween(tp, 0, 1, bytes, "n")}})
	far := tp.Time(Phase{Flows: []Flow{flowBetween(tp, 0, 7, bytes, "f")}})
	if got := far.HopLatency / near.HopLatency; math.Abs(got-7) > 1e-9 {
		t.Errorf("hop latency ratio = %v, want 7", got)
	}
}
