// Command tempsolve runs the dual-level wafer solver (DLWS) for a
// model: the per-operator dual-level search over the hybrid strategy
// space, followed by a full-simulator evaluation of the best uniform
// configuration.
//
//	tempsolve -model gpt3-175b
//	tempsolve -model llama3-70b -no-ga
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"temp/internal/baselines"
	"temp/internal/engine"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
	"temp/internal/solver"
	"temp/internal/unit"
)

func main() {
	var (
		name    = flag.String("model", "gpt3-6.7b", "model name")
		rows    = flag.Int("rows", 4, "wafer die rows")
		cols    = flag.Int("cols", 8, "wafer die columns")
		noGA    = flag.Bool("no-ga", false, "stop after chain dynamic programming")
		seed    = flag.Int64("seed", 7, "genetic-stage seed")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "evaluation worker-pool size")
	)
	flag.Parse()
	engine.SetWorkers(*workers)

	var m model.Config
	found := false
	key := strings.ToLower(strings.NewReplacer(" ", "", "-", "", ".", "").Replace(*name))
	for _, c := range append(model.EvaluationModels(), model.Grok1_341B(), model.Llama3_405B(), model.GPT3_504B()) {
		ck := strings.ToLower(strings.NewReplacer(" ", "", "-", "", ".", "").Replace(c.Name))
		if strings.Contains(ck, key) {
			m, found = c, true
			break
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "tempsolve: unknown model %q\n", *name)
		os.Exit(1)
	}
	w := hw.WaferWithGrid(*rows, *cols)
	g := model.BlockGraph(m)
	space := parallel.EnumerateConfigs(w.Dies(), true, 0)
	cm := &solver.Analytic{W: w, M: m}

	assign, stats := solver.DLS(g, space, cm,
		solver.DLSOptions{Seed: *seed, DisableGA: *noGA, Workers: *workers})
	fmt.Printf("model        %s on %s\n", m, w.Name)
	fmt.Printf("search space %d strategies × %d operators\n", len(space), len(g.Ops))
	fmt.Printf("search time  %s (%d cost-model evaluations, %d GA generations)\n",
		stats.Elapsed, stats.Evaluations, stats.Generations)
	fmt.Printf("chain-DP cost %.3fms, final cost %.3fms\n", stats.DPCost*1e3, stats.FinalCost*1e3)
	fmt.Println("per-operator strategies:")
	for i, op := range g.Ops {
		fmt.Printf("  %-14s %s\n", op.Name, space[assign[i]])
	}
	idx, share := solver.Uniform(assign)
	fmt.Printf("dominant strategy %s (%.0f%% of operators)\n", space[idx], share*100)

	// Cross-check against the full simulator sweep.
	best, err := baselines.Best(baselines.TEMP(), m, w)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tempsolve:", err)
		os.Exit(1)
	}
	fmt.Printf("full-simulator best: %s → step %s, %.1f tokens/s (OOM=%v)\n",
		best.Config, unit.Seconds(best.StepTime), best.ThroughputTokens, best.OOM())
}
