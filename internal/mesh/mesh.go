// Package mesh implements the wafer's 2D-mesh interconnect at flow
// granularity: dies are nodes, adjacent dies are joined by a pair of
// directed links, and communication is expressed as phases of flows
// routed over link paths. The package provides the contention model
// (per-link serialization of flow bytes), several routing policies,
// fault masks for dies and links, and multicast-tree construction —
// the substrate both the TCME optimizer (§VI-B) and the wafer cost
// model (§VII-A) are built on.
package mesh

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"temp/internal/hw"
)

// DieID identifies a die by its row-major index on the wafer grid.
type DieID int

// Coord is a (row, column) grid position.
type Coord struct {
	R, C int
}

// Link is a directed edge between adjacent dies.
type Link struct {
	From, To DieID
}

// String implements fmt.Stringer.
func (l Link) String() string { return fmt.Sprintf("%d→%d", l.From, l.To) }

// Topology is a rows×cols 2D mesh with optional fault masks. The
// zero value is not usable; construct with New (mutable) or FromWafer
// (interned, immutable — see Intern).
type Topology struct {
	rows, cols int
	link       hw.D2D

	dieAlive []bool
	// linkAlive is indexed by canonical link ID (see LinkID).
	linkAlive []bool
	// coreFrac[i] is the fraction of die i's compute cores that are
	// functional (1.0 = healthy); used by the fault-tolerance study.
	coreFrac []float64

	// deadDies/deadLinks count current faults so healthy() is O(1) on
	// the routing hot path.
	deadDies, deadLinks int

	// links is the canonical dense link index: every directed link of
	// the pristine mesh, sorted ascending by (From, To), so that
	// scanning IDs 0..len(links)-1 visits links in exactly the order
	// the contention model's deterministic bottleneck scan requires.
	// slot is the O(1) reverse lookup: slot[die*4+dir] is the ID of
	// die's outgoing link in direction dir (up, left, right, down), or
	// -1 when the mesh has no such link. Both are immutable and shared
	// between a topology and its clones.
	links []Link
	slot  []int32
	// enum is the historical allLinks enumeration order, kept so that
	// Links() (and everything seeded off its iteration order, like
	// fault injection) is unchanged by the dense index.
	enum []Link

	// frozen marks an interned topology: mutating an interned topology
	// would corrupt every sharer, so the Set* methods panic. Frozen
	// topologies are what the derived-structure caches key on.
	frozen bool
	// derived caches immutable structures computed from a frozen
	// topology (lowered collectives, stream orchestrations, placement
	// state). Only frozen topologies populate it: a mutable topology's
	// cache would go stale on the next Set* call.
	derived sync.Map
	// aliveDies caches AliveDies on frozen topologies (immutable fault
	// state), keeping the per-candidate pricing path allocation-free.
	// Clone leaves it unset, so mutable copies always recompute.
	aliveDies atomic.Pointer[[]DieID]
}

// New builds a healthy rows×cols mesh with the given link parameters.
func New(rows, cols int, link hw.D2D) *Topology {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mesh: invalid grid %dx%d", rows, cols))
	}
	t := &Topology{
		rows:     rows,
		cols:     cols,
		link:     link,
		dieAlive: make([]bool, rows*cols),
		coreFrac: make([]float64, rows*cols),
	}
	t.buildLinkIndex()
	t.linkAlive = make([]bool, len(t.links))
	for i := range t.dieAlive {
		t.dieAlive[i] = true
		t.coreFrac[i] = 1.0
	}
	for i := range t.linkAlive {
		t.linkAlive[i] = true
	}
	return t
}

// linkDirs enumerates a die's outgoing directions in ascending
// destination order: up (To=From-cols), left, right, down. With the
// canonical index built From-major over these directions, link IDs
// ascend exactly in (From, To) order.
const numDirs = 4

// buildLinkIndex constructs the canonical sorted link list, the
// reverse-lookup slot table and the historical enumeration order.
func (t *Topology) buildLinkIndex() {
	n := t.rows * t.cols
	t.slot = make([]int32, n*numDirs)
	for i := range t.slot {
		t.slot[i] = -1
	}
	for from := 0; from < n; from++ {
		c := t.CoordOf(DieID(from))
		cand := [numDirs]Coord{
			{c.R - 1, c.C}, // up
			{c.R, c.C - 1}, // left
			{c.R, c.C + 1}, // right
			{c.R + 1, c.C}, // down
		}
		for dir, nc := range cand {
			if !t.InBounds(nc) {
				continue
			}
			t.slot[from*numDirs+dir] = int32(len(t.links))
			t.links = append(t.links, Link{DieID(from), t.ID(nc)})
		}
	}
	t.enum = t.allLinks()
}

// FromWafer returns the interned immutable mesh of a wafer
// configuration: repeated calls with the same grid and link parameters
// share one cached topology (see Intern). Callers that need to mutate
// it (fault injection) must Clone first.
func FromWafer(w hw.Wafer) *Topology { return Shared(w.Rows, w.Cols, w.Link) }

// NumLinks returns the number of directed links of the pristine mesh —
// the size of the canonical link-ID space.
func (t *Topology) NumLinks() int { return len(t.links) }

// LinkByID returns the link with the given canonical ID. IDs ascend in
// (From, To) order, so scanning 0..NumLinks()-1 visits links in the
// deterministic sorted order the bottleneck tie-break depends on.
func (t *Topology) LinkByID(id int) Link { return t.links[id] }

// LinkID returns the canonical dense ID of a directed mesh link, or -1
// when the endpoints are not mesh-adjacent (callers fall back to the
// generic map-based path for such synthetic routes).
func (t *Topology) LinkID(l Link) int {
	from := int(l.From)
	if from < 0 || from >= t.rows*t.cols {
		return -1
	}
	var dir int
	switch d := int(l.To) - from; {
	case d == -t.cols:
		dir = 0
	case d == -1 && t.cols > 1:
		dir = 1
	case d == 1 && t.cols > 1:
		dir = 2
	case d == t.cols:
		dir = 3
	default:
		return -1
	}
	return int(t.slot[from*numDirs+dir])
}

// Rows returns the number of die rows.
func (t *Topology) Rows() int { return t.rows }

// Cols returns the number of die columns.
func (t *Topology) Cols() int { return t.cols }

// Dies returns the total die count (including failed dies).
func (t *Topology) Dies() int { return t.rows * t.cols }

// LinkParams returns the D2D parameters of every mesh link.
func (t *Topology) LinkParams() hw.D2D { return t.link }

// ID converts a coordinate to a die ID.
func (t *Topology) ID(c Coord) DieID { return DieID(c.R*t.cols + c.C) }

// CoordOf converts a die ID to its coordinate.
func (t *Topology) CoordOf(d DieID) Coord {
	return Coord{R: int(d) / t.cols, C: int(d) % t.cols}
}

// InBounds reports whether c lies on the grid.
func (t *Topology) InBounds(c Coord) bool {
	return c.R >= 0 && c.R < t.rows && c.C >= 0 && c.C < t.cols
}

// Adjacent reports whether two dies are mesh neighbors.
func (t *Topology) Adjacent(a, b DieID) bool {
	ca, cb := t.CoordOf(a), t.CoordOf(b)
	dr, dc := ca.R-cb.R, ca.C-cb.C
	if dr < 0 {
		dr = -dr
	}
	if dc < 0 {
		dc = -dc
	}
	return dr+dc == 1
}

// Neighbors returns the alive mesh neighbors of d reachable over
// alive links.
func (t *Topology) Neighbors(d DieID) []DieID {
	c := t.CoordOf(d)
	cand := []Coord{{c.R - 1, c.C}, {c.R + 1, c.C}, {c.R, c.C - 1}, {c.R, c.C + 1}}
	var out []DieID
	for _, nc := range cand {
		if !t.InBounds(nc) {
			continue
		}
		n := t.ID(nc)
		if t.DieAlive(n) && t.LinkAlive(Link{d, n}) {
			out = append(out, n)
		}
	}
	return out
}

// allLinks enumerates every directed link of the pristine mesh.
func (t *Topology) allLinks() []Link {
	var out []Link
	for r := 0; r < t.rows; r++ {
		for c := 0; c < t.cols; c++ {
			a := t.ID(Coord{r, c})
			if c+1 < t.cols {
				b := t.ID(Coord{r, c + 1})
				out = append(out, Link{a, b}, Link{b, a})
			}
			if r+1 < t.rows {
				b := t.ID(Coord{r + 1, c})
				out = append(out, Link{a, b}, Link{b, a})
			}
		}
	}
	return out
}

// Links returns all alive directed links in deterministic order.
func (t *Topology) Links() []Link {
	var out []Link
	for _, l := range t.enum {
		if t.linkAlive[t.LinkID(l)] {
			out = append(out, l)
		}
	}
	return out
}

// TotalLinks returns the number of directed links in the healthy mesh.
func (t *Topology) TotalLinks() int { return len(t.links) }

// DieAlive reports whether die d is functional.
func (t *Topology) DieAlive(d DieID) bool {
	return int(d) >= 0 && int(d) < len(t.dieAlive) && t.dieAlive[d]
}

// mutable panics when the topology is interned: a frozen topology is
// shared by every caller that looked it up, so in-place faults would
// corrupt them all. Clone first.
func (t *Topology) mutable() {
	if t.frozen {
		panic("mesh: mutating an interned topology; Clone it first")
	}
}

// SetDieAlive marks die d alive or failed.
func (t *Topology) SetDieAlive(d DieID, alive bool) {
	t.mutable()
	if t.dieAlive[d] != alive {
		if alive {
			t.deadDies--
		} else {
			t.deadDies++
		}
	}
	t.dieAlive[d] = alive
}

// LinkAlive reports whether directed link l is functional.
func (t *Topology) LinkAlive(l Link) bool {
	id := t.LinkID(l)
	return id >= 0 && t.linkAlive[id]
}

// SetLinkAlive marks the directed link (and by convention its
// reverse) alive or failed; D2D links fail as a bundle.
func (t *Topology) SetLinkAlive(l Link, alive bool) {
	t.mutable()
	t.setLinkAlive(t.LinkID(l), alive)
	t.setLinkAlive(t.LinkID(Link{l.To, l.From}), alive)
}

func (t *Topology) setLinkAlive(id int, alive bool) {
	if id < 0 {
		return
	}
	if t.linkAlive[id] != alive {
		if alive {
			t.deadLinks--
		} else {
			t.deadLinks++
		}
	}
	t.linkAlive[id] = alive
}

// CoreFraction returns the functional-core fraction of die d.
func (t *Topology) CoreFraction(d DieID) float64 { return t.coreFrac[d] }

// SetCoreFraction sets the functional-core fraction of die d.
func (t *Topology) SetCoreFraction(d DieID, f float64) {
	t.mutable()
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	t.coreFrac[d] = f
}

// AliveDies returns the IDs of functional dies in ascending order.
// The slice is cached on frozen topologies and must not be mutated.
func (t *Topology) AliveDies() []DieID {
	if t.frozen {
		if v := t.aliveDies.Load(); v != nil {
			return *v
		}
	}
	out := make([]DieID, 0, len(t.dieAlive)-t.deadDies)
	for i := range t.dieAlive {
		if t.dieAlive[i] {
			out = append(out, DieID(i))
		}
	}
	if t.frozen {
		t.aliveDies.Store(&out)
	}
	return out
}

// HopDistance returns the Manhattan distance between two dies — the
// minimum hop count on a healthy mesh.
func (t *Topology) HopDistance(a, b DieID) int {
	ca, cb := t.CoordOf(a), t.CoordOf(b)
	dr, dc := ca.R-cb.R, ca.C-cb.C
	if dr < 0 {
		dr = -dr
	}
	if dc < 0 {
		dc = -dc
	}
	return dr + dc
}

// Path is a sequence of die IDs from source to destination where
// consecutive entries are mesh neighbors.
type Path []DieID

// Hops returns the number of links traversed.
func (p Path) Hops() int {
	if len(p) == 0 {
		return 0
	}
	return len(p) - 1
}

// Links returns the directed links of the path.
func (p Path) Links() []Link {
	if len(p) < 2 {
		return nil
	}
	out := make([]Link, 0, len(p)-1)
	for i := 0; i+1 < len(p); i++ {
		out = append(out, Link{p[i], p[i+1]})
	}
	return out
}

// Valid reports whether the path is connected over alive links of t.
func (p Path) Valid(t *Topology) bool {
	if len(p) == 0 {
		return false
	}
	for i := 0; i+1 < len(p); i++ {
		if !t.Adjacent(p[i], p[i+1]) || !t.LinkAlive(Link{p[i], p[i+1]}) {
			return false
		}
	}
	return true
}

// RouteXY returns the dimension-ordered X-then-Y route (column first,
// then row) between two dies, ignoring faults. It is the
// contention-agnostic default the paper's phase-1 initialization uses.
func (t *Topology) RouteXY(src, dst DieID) Path {
	cs, cd := t.CoordOf(src), t.CoordOf(dst)
	p := Path{src}
	cur := cs
	for cur.C != cd.C {
		if cur.C < cd.C {
			cur.C++
		} else {
			cur.C--
		}
		p = append(p, t.ID(cur))
	}
	for cur.R != cd.R {
		if cur.R < cd.R {
			cur.R++
		} else {
			cur.R--
		}
		p = append(p, t.ID(cur))
	}
	return p
}

// RouteYX returns the Y-then-X route, the natural detour alternative
// to RouteXY in a 2D mesh.
func (t *Topology) RouteYX(src, dst DieID) Path {
	cs, cd := t.CoordOf(src), t.CoordOf(dst)
	p := Path{src}
	cur := cs
	for cur.R != cd.R {
		if cur.R < cd.R {
			cur.R++
		} else {
			cur.R--
		}
		p = append(p, t.ID(cur))
	}
	for cur.C != cd.C {
		if cur.C < cd.C {
			cur.C++
		} else {
			cur.C--
		}
		p = append(p, t.ID(cur))
	}
	return p
}

// routeScratch pools the Dijkstra working arrays of RouteWeighted so
// the router only allocates its returned path.
type routeScratch struct {
	dist []float64
	prev []DieID
	done []bool
	rev  []DieID
}

var routePool = sync.Pool{New: func() any { return new(routeScratch) }}

func (s *routeScratch) grab(n int) {
	const inf = 1e300
	if cap(s.dist) < n {
		s.dist = make([]float64, n)
		s.prev = make([]DieID, n)
		s.done = make([]bool, n)
	}
	s.dist = s.dist[:n]
	s.prev = s.prev[:n]
	s.done = s.done[:n]
	for i := range s.dist {
		s.dist[i] = inf
		s.prev[i] = -1
		s.done[i] = false
	}
	s.rev = s.rev[:0]
}

// RouteWeighted returns a minimum-cost path from src to dst where the
// cost of traversing link l is 1 + weight(l). Dead links and dies are
// skipped, so it doubles as the fault-aware router. Returns nil when
// dst is unreachable.
func (t *Topology) RouteWeighted(src, dst DieID, weight func(Link) float64) Path {
	if !t.DieAlive(src) || !t.DieAlive(dst) {
		return nil
	}
	if src == dst {
		return Path{src}
	}
	const inf = 1e300
	n := t.Dies()
	s := routePool.Get().(*routeScratch)
	s.grab(n)
	dist, prev, done := s.dist, s.prev, s.done
	dist[src] = 0
	for {
		// Linear scan extract-min: grids are small (≤ a few
		// thousand dies), simplicity wins over a heap.
		best, bestD := DieID(-1), inf
		for i := 0; i < n; i++ {
			if !done[i] && dist[i] < bestD {
				best, bestD = DieID(i), dist[i]
			}
		}
		if best < 0 {
			routePool.Put(s)
			return nil
		}
		if best == dst {
			break
		}
		done[best] = true
		// Neighbor relaxation in the historical Neighbors order (up,
		// down, left, right) — prev ties go to the first relaxer, so
		// the visit order is part of the deterministic contract.
		c := t.CoordOf(best)
		cand := [numDirs]Coord{{c.R - 1, c.C}, {c.R + 1, c.C}, {c.R, c.C - 1}, {c.R, c.C + 1}}
		for _, nc := range cand {
			if !t.InBounds(nc) {
				continue
			}
			nb := t.ID(nc)
			l := Link{best, nb}
			if !t.DieAlive(nb) || !t.LinkAlive(l) {
				continue
			}
			w := 1.0
			if weight != nil {
				w += weight(l)
			}
			if nd := dist[best] + w; nd < dist[nb] {
				dist[nb] = nd
				prev[nb] = best
			}
		}
	}
	rev := s.rev
	for cur := dst; cur >= 0; cur = prev[cur] {
		rev = append(rev, cur)
		if cur == src {
			break
		}
	}
	s.rev = rev
	if rev[len(rev)-1] != src {
		routePool.Put(s)
		return nil
	}
	p := make(Path, len(rev))
	for i := range rev {
		p[i] = rev[len(rev)-1-i]
	}
	routePool.Put(s)
	return p
}

// Route returns the fault-aware shortest path (unit weights).
func (t *Topology) Route(src, dst DieID) Path {
	if t.healthy() {
		return t.RouteXY(src, dst)
	}
	return t.RouteWeighted(src, dst, nil)
}

func (t *Topology) healthy() bool { return t.deadDies == 0 && t.deadLinks == 0 }

// aliveLinks returns the number of functional directed links.
func (t *Topology) aliveLinks() int { return len(t.links) - t.deadLinks }

// Connected reports whether all alive dies form one connected
// component over alive links. The BFS runs over dense slices with
// neighbor coordinates computed inline (no per-die Neighbors slice),
// keeping fault localization down to two bounded allocations.
func (t *Topology) Connected() bool {
	n := t.Dies()
	alive := 0
	first := -1
	for i := 0; i < n; i++ {
		if t.dieAlive[i] {
			alive++
			if first < 0 {
				first = i
			}
		}
	}
	if alive == 0 {
		return false
	}
	seen := make([]bool, n)
	stack := make([]DieID, 0, n)
	seen[first] = true
	stack = append(stack, DieID(first))
	reached := 1
	for len(stack) > 0 {
		d := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c := t.CoordOf(d)
		cand := [4]Coord{{c.R - 1, c.C}, {c.R + 1, c.C}, {c.R, c.C - 1}, {c.R, c.C + 1}}
		for _, nc := range cand {
			if !t.InBounds(nc) {
				continue
			}
			nb := t.ID(nc)
			if seen[nb] || !t.dieAlive[nb] || !t.LinkAlive(Link{d, nb}) {
				continue
			}
			seen[nb] = true
			reached++
			stack = append(stack, nb)
		}
	}
	return reached == alive
}

// Rect is an axis-aligned block of dies [R0,R1]×[C0,C1], inclusive.
type Rect struct {
	R0, C0, R1, C1 int
}

// Dies returns the die IDs of the rectangle in row-major order.
func (r Rect) DiesOn(t *Topology) []DieID {
	var out []DieID
	for row := r.R0; row <= r.R1; row++ {
		for col := r.C0; col <= r.C1; col++ {
			out = append(out, t.ID(Coord{row, col}))
		}
	}
	return out
}

// Height returns the number of rows covered.
func (r Rect) Height() int { return r.R1 - r.R0 + 1 }

// Width returns the number of columns covered.
func (r Rect) Width() int { return r.C1 - r.C0 + 1 }

// Area returns the number of dies covered.
func (r Rect) Area() int { return r.Height() * r.Width() }

// HasRing reports whether the rectangle admits a Hamiltonian cycle of
// mesh links: both sides ≥ 2 and an even area.
func (r Rect) HasRing() bool {
	return r.Height() >= 2 && r.Width() >= 2 && r.Area()%2 == 0
}

// SnakePath returns a Hamiltonian path through the rectangle
// (boustrophedon row order). Every rectangle has one.
func (r Rect) SnakePath(t *Topology) Path {
	var p Path
	for i, row := 0, r.R0; row <= r.R1; i, row = i+1, row+1 {
		if i%2 == 0 {
			for col := r.C0; col <= r.C1; col++ {
				p = append(p, t.ID(Coord{row, col}))
			}
		} else {
			for col := r.C1; col >= r.C0; col-- {
				p = append(p, t.ID(Coord{row, col}))
			}
		}
	}
	return p
}

// RingPath returns a Hamiltonian cycle through the rectangle when one
// exists (HasRing). The returned path lists each die once; the cycle
// closes from the last entry back to the first over a mesh link.
func (r Rect) RingPath(t *Topology) (Path, bool) {
	if !r.HasRing() {
		return nil, false
	}
	// Walk the leftmost column downwards, then snake the remaining
	// columns upwards in 2-row bands back to the start. Classic
	// construction; requires width ≥ 2 and even area.
	var p Path
	if r.Height()%2 == 0 {
		// Down the left edge, snake back up through cols C0+1..C1.
		for row := r.R0; row <= r.R1; row++ {
			p = append(p, t.ID(Coord{row, r.C0}))
		}
		for i, row := 0, r.R1; row >= r.R0; i, row = i+1, row-1 {
			if i%2 == 0 {
				for col := r.C0 + 1; col <= r.C1; col++ {
					p = append(p, t.ID(Coord{row, col}))
				}
			} else {
				for col := r.C1; col >= r.C0+1; col-- {
					p = append(p, t.ID(Coord{row, col}))
				}
			}
		}
	} else {
		// Odd height forces even width: rotate the construction.
		for col := r.C0; col <= r.C1; col++ {
			p = append(p, t.ID(Coord{r.R0, col}))
		}
		for i, col := 0, r.C1; col >= r.C0; i, col = i+1, col-1 {
			if i%2 == 0 {
				for row := r.R0 + 1; row <= r.R1; row++ {
					p = append(p, t.ID(Coord{row, col}))
				}
			} else {
				for row := r.R1; row >= r.R0+1; row-- {
					p = append(p, t.ID(Coord{row, col}))
				}
			}
		}
	}
	return p, true
}

// SortDies sorts a die slice ascending, in place, and returns it.
func SortDies(ds []DieID) []DieID {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds
}
