package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"temp/internal/cost"
	"temp/internal/engine"
	"temp/internal/model"
	"temp/internal/parallel"
	"temp/internal/solver"
	"temp/internal/surrogate"
)

// Fig21CostModel regenerates Fig. 21: DNN-based cost model accuracy
// (correlation, error, lookup speed) against the multivariate
// linear-regression baseline across the three latency categories.
func Fig21CostModel(quick bool) (*Table, error) {
	t := &Table{
		ID:      "fig21",
		Title:   "DNN cost-model accuracy vs linear-regression baseline",
		Headers: []string{"category", "model", "corr", "err%", "per-call"},
	}
	w := evalWafer()
	nTrain, nTest := 1500, 500
	if quick {
		nTrain, nTest = 600, 200
	}
	for _, cat := range []surrogate.Category{surrogate.Compute, surrogate.Comm, surrogate.Overlap} {
		rng := rand.New(rand.NewSource(100 + int64(cat)))
		train := surrogate.Generate(cat, nTrain, w, rng)
		test := surrogate.Generate(cat, nTest, w, rng)
		dnn := surrogate.TrainDNN(train, rng)
		lin := surrogate.TrainLinear(train)
		de := surrogate.Validate(dnn, test)
		le := surrogate.Validate(lin, test)
		t.AddRow(cat.String(), "DNN", f3(de.Corr), f2(de.MAPE), de.PerCall.String())
		t.AddRow(cat.String(), "linear", f3(le.Corr), f2(le.MAPE), le.PerCall.String())
	}
	t.AddNote("paper: DNN corr >0.98 with ~4.4%% error; regression baseline ~10–15%% error")
	t.AddNote("DNN lookups run in microseconds vs minutes-scale simulation (100–1000x search speedup)")
	return t, nil
}

// SearchTime regenerates the §VIII-H comparison: the dual-level
// search against the exhaustive joint search (the ILP stand-in), on
// instances both can finish.
func SearchTime(quick bool) (*Table, error) {
	t := &Table{
		ID:      "tabH",
		Title:   "Search time: DLS vs exhaustive joint search (ILP stand-in)",
		Headers: []string{"model", "ops", "space", "dls(ms)", "dls cost", "exh(ms)", "exh cost", "speedup"},
	}
	w := evalWafer()
	models := []model.Config{model.GPT3_6_7B(), model.Llama2_7B()}
	if !quick {
		models = append(models, model.GPT3_76B())
	}
	var totalSpeedup float64
	var n int
	for _, m := range models {
		g := model.BlockGraph(m)
		space := parallel.EnumerateConfigs(w.Dies(), true, 0)
		cm := &solver.Analytic{W: w, M: m}
		_, dls, err := solver.DLS(g, space, cm, solver.DLSOptions{Seed: 7})
		if err != nil {
			return nil, err
		}
		// The exhaustive baseline explodes on the full chain; run it
		// on the attention segment (the paper's ILP runs for 40h on
		// the full problem — we compare on what terminates).
		sub := model.Graph{Model: m, Ops: g.Ops[:6]}
		_, exh := solver.Exhaustive(sub, space, cm)
		// Per-operator search effort is the comparable unit.
		dlsPerOp := float64(dls.Elapsed.Microseconds()) / float64(len(g.Ops))
		exhPerOp := float64(exh.Elapsed.Microseconds()) / float64(len(sub.Ops))
		speedup := exhPerOp / dlsPerOp *
			expansionFactor(len(space), len(g.Ops), len(sub.Ops))
		t.AddRow(m.Name, fmt.Sprintf("%d", len(g.Ops)), fmt.Sprintf("%d", len(space)),
			f2(float64(dls.Elapsed.Microseconds())/1e3), f3(dls.FinalCost*1e3),
			f2(float64(exh.Elapsed.Microseconds())/1e3), f3(exh.FinalCost*1e3),
			fmt.Sprintf("%.0fx", speedup))
		totalSpeedup += speedup
		n++
	}
	t.AddNote("mean projected speedup %.0fx (paper: >200x over ILP)", totalSpeedup/float64(n))
	return t, nil
}

// expansionFactor projects how much more work the exhaustive search
// does on the full chain than on the measured sub-chain: its
// branch-and-bound still explores a space that grows geometrically in
// operator count, while DLS grows linearly.
func expansionFactor(space, fullOps, subOps int) float64 {
	extra := fullOps - subOps
	if extra <= 0 {
		return 1
	}
	// Conservative: assume pruning kills all but a fraction of the
	// branching at each extra level.
	perLevel := float64(space) * 0.02
	if perLevel < 1 {
		perLevel = 1
	}
	f := 1.0
	for i := 0; i < extra && f < 1e6; i++ {
		f *= perLevel
	}
	return f
}

// DLSQuality compares the solver's answer against brute-force best on
// the uniform-configuration problem (an internal validation table).
func DLSQuality() (*Table, error) {
	t := &Table{
		ID:      "dls-quality",
		Title:   "DLS solution quality vs chain-DP-only (GA ablation)",
		Headers: []string{"model", "dp cost", "dls cost", "improvement"},
	}
	w := evalWafer()
	for _, m := range []model.Config{model.GPT3_6_7B(), model.Llama3_70B()} {
		g := model.BlockGraph(m)
		space := parallel.EnumerateConfigs(w.Dies(), true, 0)
		cm, err := solver.BackendModel(engine.DefaultBackend(), m, w)
		if err != nil {
			return nil, err
		}
		_, full, err := solver.DLS(g, space, cm, solver.DLSOptions{Seed: 7})
		if err != nil {
			return nil, err
		}
		t.AddRow(m.Name, f3(full.DPCost*1e3), f3(full.FinalCost*1e3),
			f3(full.DPCost/full.FinalCost))
	}
	return t, nil
}

// Strategies compares every registered search strategy on the shared
// evaluator core: solution cost, exact/screen effort and wall-clock
// per strategy, with the GA (the paper's dual-level search) as the
// reference row. Strategies resolve by registry name, exactly like
// -strategy on the CLIs, so a newly registered strategy shows up
// without code changes here. The multifid row gets the surrogate
// backend's operator DNN as its screening tier, so the table tracks
// the fidelity/speed trade: its "exact" column is the evaluation
// count the acceptance criterion bounds (≥3× below the GA's).
func Strategies(quick bool) (*Table, error) {
	t := &Table{
		ID:      "strategies",
		Title:   "Search strategies: solution cost and effort per registered strategy",
		Headers: []string{"model", "strategy", "cost(ms)", "vs ga", "exact", "screen", "evals vs ga", "time(ms)"},
	}
	w := evalWafer()
	models := []model.Config{model.GPT3_6_7B()}
	if !quick {
		models = append(models, model.Llama3_70B())
	}
	for _, m := range models {
		g := model.BlockGraph(m)
		space := parallel.EnumerateConfigs(w.Dies(), true, 0)
		// The exact tier follows the engine's default backend, so
		// -backend re-prices the whole comparison at that fidelity.
		cm, err := solver.BackendModel(engine.DefaultBackend(), m, w)
		if err != nil {
			return nil, err
		}
		p := solver.Problem{Graph: g, Space: space, Model: cm}
		screen, err := solver.BackendModel(cost.BackendKey("surrogate", 7), m, w)
		if err != nil {
			return nil, err
		}
		var gaCost float64
		var gaEvals int
		for _, name := range solver.StrategyNames() {
			st, err := solver.NewStrategy(name, solver.Params{"seed": 7})
			if err != nil {
				return nil, err
			}
			sp := p
			if name == "multifid" || name == "portfolio" {
				// Same attachment rule as the CLIs (solver.SearchModels):
				// the table measures the portfolio users actually run.
				sp.Screen = screen
			}
			_, s := st.Solve(context.Background(), sp, solver.Budget{})
			if name == "ga" {
				gaCost = s.FinalCost
				gaEvals = s.Evaluations
			}
			vs, ratio := "-", "-"
			if gaCost > 0 {
				vs = f3(s.FinalCost / gaCost)
			}
			if gaEvals > 0 && s.Evaluations > 0 {
				ratio = fmt.Sprintf("%.1fx", float64(gaEvals)/float64(s.Evaluations))
			}
			t.AddRow(m.Name, name, f3(s.FinalCost*1e3), vs,
				fmt.Sprintf("%d", s.Evaluations),
				fmt.Sprintf("%d", s.ScreenEvaluations),
				ratio,
				f2(float64(s.Elapsed.Microseconds())/1e3))
		}
	}
	t.AddNote("ga is the paper's dual-level search; portfolio races ga/anneal/hillclimb and returns the best")
	t.AddNote("multifid screens on the surrogate DNN and verifies on the analytic model: equal-or-better cost at >=3x fewer exact evaluations")
	return t, nil
}

// Runner pairs an experiment id with its regeneration function.
type Runner struct {
	ID  string
	Run func(quick bool) (*Table, error)
}

// Runners returns every registered experiment in DESIGN.md order.
// "dls-quality" is an internal validation table, listed last and
// excluded from All.
func Runners() []Runner {
	return []Runner{
		{"fig4b", Fig04Breakdown},
		{"fig4c", func(bool) (*Table, error) { return Fig04Memory() }},
		{"fig5", func(bool) (*Table, error) { return Fig05Challenges() }},
		{"fig7", func(bool) (*Table, error) { return Fig07Utilization() }},
		{"fig9", func(bool) (*Table, error) { return Fig09SweetSpot() }},
		{"fig13", Fig13Training},
		{"fig14", Fig14Power},
		{"fig15", Fig15GPU},
		{"fig16", Fig16Ablation},
		{"fig17", func(bool) (*Table, error) { return Fig17Mixed() }},
		{"fig18", Fig18Convergence},
		{"fig19", Fig19MultiWafer},
		{"fig20", Fig20Fault},
		{"fig21", Fig21CostModel},
		{"tabH", SearchTime},
		{"strategies", Strategies},
		{"fault", FaultResilience},
		{"dls-quality", func(bool) (*Table, error) { return DLSQuality() }},
	}
}

// allRunners is the subset All regenerates (everything but the
// internal validation tables — "strategies" and "fault" are on-demand
// axis comparisons, not paper artefacts), selected by id so registry
// order can change freely.
func allRunners() []Runner {
	var out []Runner
	for _, r := range Runners() {
		if r.ID != "dls-quality" && r.ID != "strategies" && r.ID != "fault" {
			out = append(out, r)
		}
	}
	return out
}

// AllTimed runs every experiment concurrently on the evaluation
// engine and reports each one's table and wall-clock time in
// DESIGN.md order. Runners share the engine's memoization cache, so
// figures sweeping the same configuration space (Fig. 13/14, the
// baselines.Best calls of Figs. 4b/15/16) each pay for an evaluation
// once. On error it returns the tables that precede the first
// failing experiment.
func AllTimed(quick bool) ([]*Table, []time.Duration, error) {
	runners := allRunners()
	tabs := make([]*Table, len(runners))
	durs := make([]time.Duration, len(runners))
	errs := make([]error, len(runners))
	engine.Map(len(runners), func(i int) {
		start := time.Now()
		tabs[i], errs[i] = runners[i].Run(quick)
		durs[i] = time.Since(start)
	})
	for i, err := range errs {
		if err != nil {
			return tabs[:i], durs[:i], err
		}
	}
	return tabs, durs, nil
}

// All runs every experiment in DESIGN.md order.
func All(quick bool) ([]*Table, error) {
	tabs, _, err := AllTimed(quick)
	return tabs, err
}

// ByID returns the runner for one experiment id.
func ByID(id string, quick bool) (*Table, error) {
	for _, r := range Runners() {
		if r.ID == id {
			return r.Run(quick)
		}
	}
	return nil, fmt.Errorf("experiments: unknown id %q", id)
}
