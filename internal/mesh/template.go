package mesh

import "sync/atomic"

// PhaseTemplate is an immutable, byte-invariant compiled phase
// sequence: the route structures, payloads and labels of a lowered
// collective depend only on the topology and the ordered die group,
// while every flow's byte count rescales uniformly with the query
// (ring chunks, stream sub-tensors, broadcast payloads). Compiling the
// structure once and materializing per query removes route
// computation — the dominant cost of lowering — from the evaluation
// hot path.
//
// All flows of a template share one backing array, so Materialize is
// exactly two allocations. Templates are safe for concurrent use: the
// returned phases share the template's routes and payload strings,
// which consumers never mutate in place (the TCME optimizer clones
// phases and replaces routes wholesale).
type PhaseTemplate struct {
	phases []Phase
	flows  []Flow
	// prof heads a tiny list of per-topology SoA link-load profiles
	// (almost always exactly one: templates are compiled from one
	// topology's routes and only ever timed on it).
	prof atomic.Pointer[linkProfile]
}

// linkProfile is the structure-of-arrays distillation of one template
// on one topology: for every phase, the touched canonical link IDs in
// ascending order with their traversal counts, plus the per-phase flow
// count, total traversal count and longest route. Because all of a
// template's flows carry one byte value per evaluation, these counts
// are sufficient to reproduce the dense timePhase walk bit-for-bit —
// each link's load is the same value added count times — without
// zeroing per-link scratch or re-deriving link IDs per candidate.
type linkProfile struct {
	topo *Topology
	// ok is false when a route crosses a non-mesh link; such templates
	// fall back to the walking kernels.
	ok bool
	// off[p]..off[p+1] bounds phase p's entries in ids/counts.
	off    []int32
	ids    []int32
	counts []int32
	// flows, travs and hops are per-phase: flow count, total (flow,
	// link) traversals and the longest route's hop count.
	flows []int32
	travs []int32
	hops  []int32
	// next links profiles for other topologies (rare; bounded by the
	// interned-topology count).
	next *linkProfile
}

// profileFor returns the template's SoA profile on t, compiling it on
// first use. Lookup is one atomic load plus a pointer compare, so the
// steady-state evaluation path stays allocation-free.
func (t *Topology) profileFor(tmpl *PhaseTemplate) *linkProfile {
	head := tmpl.prof.Load()
	for p := head; p != nil; p = p.next {
		if p.topo == t {
			return p
		}
	}
	p := t.buildProfile(tmpl)
	p.next = head
	// A lost race leaves the other builder's profile installed; ours
	// is still correct for this call and simply rebuilt next time.
	tmpl.prof.CompareAndSwap(head, p)
	return p
}

// buildProfile counts each phase's per-link traversals through the
// same forEachLink walk the timing kernels use.
func (t *Topology) buildProfile(tmpl *PhaseTemplate) *linkProfile {
	n := len(tmpl.phases)
	p := &linkProfile{
		topo: t, ok: true,
		off:   make([]int32, 1, n+1),
		flows: make([]int32, 0, n),
		travs: make([]int32, 0, n),
		hops:  make([]int32, 0, n),
	}
	s := timePool.Get().(*timeScratch)
	for _, ph := range tmpl.phases {
		s.grab(len(t.links))
		maxHops := 0
		for i := range ph.Flows {
			if h := ph.Flows[i].Route.Hops(); h > maxHops {
				maxHops = h
			}
		}
		travs := int32(0)
		ok := true
		ph.forEachLink(func(i int, l Link) {
			if !ok {
				return
			}
			id := t.LinkID(l)
			if id < 0 {
				ok = false
				return
			}
			s.msgCount[id]++
			travs++
		})
		if !ok {
			p.ok = false
			break
		}
		for id, c := range s.msgCount {
			if c > 0 {
				p.ids = append(p.ids, int32(id))
				p.counts = append(p.counts, c)
			}
		}
		p.off = append(p.off, int32(len(p.ids)))
		p.flows = append(p.flows, int32(len(ph.Flows)))
		p.travs = append(p.travs, travs)
		p.hops = append(p.hops, int32(maxHops))
	}
	timePool.Put(s)
	return p
}

// repAdd sums v added to a zero accumulator n times — the exact float
// chain a dense walk produces for a link traversed n times by equal
// flows. It is NOT n*v in general (0.1 added three times ≠ 0.3·…),
// and the goldens pin the walk's value.
func repAdd(v float64, n int32) float64 {
	var s float64
	for i := int32(0); i < n; i++ {
		s += v
	}
	return s
}

// timePhaseProfiled evaluates phase ph of a profiled template with
// every flow carrying scale bytes, bit-identical to
// timePhase(phase, true, scale): per-link loads are the same repeated
// additions, the bottleneck scan visits the same IDs in the same
// ascending order with the same strictly-greater tie-break, and the
// aggregate fields replicate their walk-order summation chains.
func (t *Topology) timePhaseProfiled(p *linkProfile, ph int, scale float64) PhaseTime {
	var out PhaseTime
	out.TotalBytes = repAdd(scale, p.flows[ph])
	out.LinkBytes = repAdd(scale, p.travs[ph])
	out.MaxHops = int(p.hops[ph])
	lastN := int32(-1)
	var load float64
	for k := p.off[ph]; k < p.off[ph+1]; k++ {
		n := p.counts[k]
		if n != lastN {
			load = repAdd(scale, n)
			lastN = n
		}
		mean := load / float64(n)
		bw := t.link.EffectiveBandwidth(mean)
		if ser := load / bw; ser > out.Serialization {
			out.Serialization = ser
			out.Bottleneck = t.links[p.ids[k]]
			out.BottleneckBytes = load
		}
	}
	out.HopLatency = float64(out.MaxHops) * t.link.Latency
	return out
}

// NewPhaseTemplate compiles phases into a template. The input is
// deep-copied at the phase/flow level; flow Bytes values are dropped
// (they are supplied by Materialize).
func NewPhaseTemplate(phases []Phase) *PhaseTemplate {
	t := &PhaseTemplate{phases: make([]Phase, len(phases))}
	total := 0
	for _, p := range phases {
		total += len(p.Flows)
	}
	t.flows = make([]Flow, 0, total)
	for i, p := range phases {
		start := len(t.flows)
		t.flows = append(t.flows, p.Flows...)
		end := len(t.flows)
		t.phases[i] = Phase{Label: p.Label, Flows: t.flows[start:end:end]}
	}
	for i := range t.flows {
		t.flows[i].Bytes = 0
	}
	return t
}

// Phases returns the number of phases in the template.
func (t *PhaseTemplate) Phases() int { return len(t.phases) }

// Flows returns the total flow count across phases.
func (t *PhaseTemplate) Flows() int { return len(t.flows) }

// LoweredSeq pairs a compiled template with the per-flow byte value
// one evaluation assigns it — a phase sequence that never needs to be
// materialized to be timed.
type LoweredSeq struct {
	Tmpl  *PhaseTemplate
	Bytes float64
}

// SeqTimeLowered evaluates the concatenation of scaled templates
// exactly as SeqTime would evaluate the materialized concatenation —
// same phase order, same per-accumulator float summation order — but
// without materializing anything. This is the zero-allocation
// collective path of the analytic cost model; the TCME path still
// materializes (MaterializeSeq) because the optimizer mutates phases.
//
// Phases run through the template's compiled SoA link profile (see
// linkProfile), so pricing K candidate byte sizes against one template
// costs K bottleneck scans over the touched links instead of K full
// route walks with per-link scratch zeroing. Templates whose routes
// leave the mesh fall back to the walking kernel.
func (t *Topology) SeqTimeLowered(seq []LoweredSeq) PhaseTime {
	var out PhaseTime
	var worst float64
	for _, ls := range seq {
		if ls.Tmpl == nil {
			continue
		}
		prof := t.profileFor(ls.Tmpl)
		for i := range ls.Tmpl.phases {
			var pt PhaseTime
			if prof.ok {
				pt = t.timePhaseProfiled(prof, i, ls.Bytes)
			} else {
				pt = t.timePhase(ls.Tmpl.phases[i], true, ls.Bytes)
			}
			out.Serialization += pt.Serialization
			out.HopLatency += pt.HopLatency
			out.TotalBytes += pt.TotalBytes
			out.LinkBytes += pt.LinkBytes
			if pt.MaxHops > out.MaxHops {
				out.MaxHops = pt.MaxHops
			}
			if pt.Total() > worst {
				worst = pt.Total()
				out.Bottleneck = pt.Bottleneck
				out.BottleneckBytes = pt.BottleneckBytes
			}
		}
	}
	return out
}

// MaterializeSeq concatenates the materialized phases of a scaled
// template sequence, in order.
func MaterializeSeq(seq []LoweredSeq) []Phase {
	var out []Phase
	for _, ls := range seq {
		if ls.Tmpl == nil {
			continue
		}
		out = append(out, ls.Tmpl.Materialize(ls.Bytes)...)
	}
	return out
}

// Materialize returns the template's phase sequence with every flow
// carrying bytes. Phase and flow order match the uncompiled lowering
// exactly, so downstream float accumulation is bit-identical.
func (t *PhaseTemplate) Materialize(bytes float64) []Phase {
	if len(t.phases) == 0 {
		return nil
	}
	flows := make([]Flow, len(t.flows))
	copy(flows, t.flows)
	for i := range flows {
		flows[i].Bytes = bytes
	}
	phases := make([]Phase, len(t.phases))
	off := 0
	for i := range t.phases {
		n := len(t.phases[i].Flows)
		phases[i] = Phase{Label: t.phases[i].Label, Flows: flows[off : off+n : off+n]}
		off += n
	}
	return phases
}
