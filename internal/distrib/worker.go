package distrib

import (
	"bufio"
	"io"
	"net"
	"os"

	"temp/internal/engine"
)

// ServeStdio runs the worker loop over the process's stdin/stdout —
// the transport used by `-worker-mode` subprocesses. The real stdout
// is claimed for the protocol and os.Stdout is repointed at stderr,
// so a stray print inside a handler degrades to log noise instead of
// corrupting the frame stream.
func ServeStdio() error {
	out := os.Stdout
	os.Stdout = os.Stderr
	return Serve(os.Stdin, out)
}

// ConnectAndServe dials a coordinator's -listen address and serves
// shards over the TCP connection (the multi-machine transport).
func ConnectAndServe(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	return Serve(conn, conn)
}

// Serve speaks the worker side of the protocol: hello, then execute
// shards as they arrive, then answer done with lifetime stats and
// return. A read error (coordinator gone) returns the error; the
// caller decides whether that is fatal.
func Serve(r io.Reader, w io.Writer) error {
	br := bufio.NewReaderSize(r, 1<<16)
	bw := bufio.NewWriterSize(w, 1<<16)
	if err := exchangeHello(br, bw, os.Getpid()); err != nil {
		return err
	}
	shards, tasks := 0, 0
	for {
		env, err := readFrame(br)
		if err != nil {
			return err
		}
		switch env.Type {
		case msgShard:
			res := execShard(env.Shard)
			if err := writeFrame(bw, &envelope{Type: msgResult, Result: res}); err != nil {
				return err
			}
			shards++
			tasks += len(env.Shard.Payloads)
		case msgDone:
			s := engine.CountersSnapshot()
			stats := &statsMsg{
				Shards: shards, Tasks: tasks,
				Hits: s.Hits, Misses: s.Misses, DiskHits: s.DiskHits,
				BatchCalls: s.BatchCalls, BatchedJobs: s.BatchedJobs,
			}
			return writeFrame(bw, &envelope{Type: msgStats, Stats: stats})
		}
	}
}

// execShard runs every task in the shard through the kind's handler,
// fanning out across the worker's own engine pool. Handler errors and
// panics (via engine.Guard) become per-task error strings; they never
// take the worker down.
func execShard(sh *shardMsg) *resultMsg {
	res := &resultMsg{
		Seq:      sh.Seq,
		Start:    sh.Start,
		Payloads: make([][]byte, len(sh.Payloads)),
		Errs:     make([]string, len(sh.Payloads)),
	}
	h := lookupKind(sh.Kind)
	engine.Map(len(sh.Payloads), func(i int) {
		res.Payloads[i], res.Errs[i] = execTask(h, sh.Kind, sh.Payloads[i])
	})
	return res
}

func execTask(h Handler, kind string, payload []byte) (out []byte, errMsg string) {
	if h == nil {
		return nil, "distrib: unknown task kind " + kind
	}
	var err error
	if pe := engine.Guard(func() { out, err = h(payload) }); pe != nil {
		return nil, pe.Error()
	}
	if err != nil {
		return nil, err.Error()
	}
	return out, ""
}
