package cost_test

import (
	"reflect"
	"testing"

	"temp/internal/cost"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
)

// batchWafers are the floorplans the batched-vs-scalar equivalence is
// pinned on (the two evaluation grids of the paper).
func batchWafers() []hw.Wafer {
	return []hw.Wafer{hw.EvaluationWafer(), hw.ReferenceWafer()}
}

// batchCandidates builds a K-candidate list from a deterministic
// spread of the full configuration space, deliberately cycling so that
// K > distinct exercises the batch's normalize-and-dedupe path, and
// appending one degenerate config that fails placement so error
// propagation is covered too.
func batchCandidates(dies, k int) []parallel.Config {
	// Degrees are powers of two, so enumerate over the power-of-two
	// floor of the grid (a 6×8 wafer hosts 32-die configurations).
	pow2 := 1
	for pow2*2 <= dies {
		pow2 *= 2
	}
	space := parallel.EnumerateConfigs(pow2, true, 0)
	distinct := 8
	if distinct > len(space) {
		distinct = len(space)
	}
	stride := len(space) / distinct
	if stride == 0 {
		stride = 1
	}
	out := make([]parallel.Config, 0, k)
	for i := 0; len(out) < k; i++ {
		if i%7 == 6 {
			// A TP degree no rectangle or line of this grid can host.
			out = append(out, parallel.Config{DP: 1, TP: dies*2 + 1, TATP: 1})
			continue
		}
		out = append(out, space[(i%distinct)*stride])
	}
	return out
}

// TestPriceBatchMatchesPrice pins the batched kernels to the scalar
// path: for every zoo model on both floorplans, PriceBatch must
// reproduce per-candidate Price bit-identically (full Breakdown
// equality, matching error text) at K ∈ {1, 7, 64} including
// duplicate candidates.
func TestPriceBatchMatchesPrice(t *testing.T) {
	if testing.Short() {
		t.Skip("full zoo sweep is not -short")
	}
	be, err := cost.NewBackend("analytic")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := be.(cost.BatchBackend); !ok {
		t.Fatal("analytic backend does not implement BatchBackend")
	}
	o := cost.TEMPOptions()
	for _, w := range batchWafers() {
		for _, m := range model.Zoo() {
			for _, k := range []int{1, 7, 64} {
				cfgs := batchCandidates(w.Dies(), k)
				got, gotErrs := cost.PriceBatch(be, m, w, cfgs, o)
				if len(got) != k || len(gotErrs) != k {
					t.Fatalf("%s/%s K=%d: batch returned %d/%d results", w.Name, m.Name, k, len(got), len(gotErrs))
				}
				for i, cfg := range cfgs {
					want, wantErr := be.Price(m, w, cfg, o)
					if (gotErrs[i] == nil) != (wantErr == nil) {
						t.Fatalf("%s/%s K=%d cfg %s: batch err %v, scalar err %v",
							w.Name, m.Name, k, cfg, gotErrs[i], wantErr)
					}
					if wantErr != nil {
						if gotErrs[i].Error() != wantErr.Error() {
							t.Fatalf("%s/%s K=%d cfg %s: batch err %q, scalar err %q",
								w.Name, m.Name, k, cfg, gotErrs[i], wantErr)
						}
						continue
					}
					if !reflect.DeepEqual(got[i], want) {
						t.Fatalf("%s/%s K=%d cfg %s: batch breakdown differs from scalar\nbatch:  %+v\nscalar: %+v",
							w.Name, m.Name, k, cfg, got[i], want)
					}
				}
			}
		}
	}
}

// TestPriceBatchMatchesPriceEngines covers the remaining engine
// dispatch arms (SMap, GMap, TCME) and the replay backend on a
// reduced set — the scalar/batch split must agree under every
// placement family, not just the default race.
func TestPriceBatchMatchesPriceEngines(t *testing.T) {
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	cfgs := batchCandidates(w.Dies(), 7)
	for _, tc := range []struct {
		name    string
		backend string
		engine  cost.Engine
	}{
		{"analytic-smap", "analytic", cost.SMap},
		{"analytic-gmap", "analytic", cost.GMap},
		{"analytic-tcme", "analytic", cost.TCMEEngine},
		{"replay-default", "replay", cost.TEMPOptions().Engine},
	} {
		t.Run(tc.name, func(t *testing.T) {
			be, err := cost.NewBackend(tc.backend)
			if err != nil {
				t.Fatal(err)
			}
			o := cost.TEMPOptions()
			o.Engine = tc.engine
			got, gotErrs := cost.PriceBatch(be, m, w, cfgs, o)
			for i, cfg := range cfgs {
				want, wantErr := be.Price(m, w, cfg, o)
				if (gotErrs[i] == nil) != (wantErr == nil) {
					t.Fatalf("cfg %s: batch err %v, scalar err %v", cfg, gotErrs[i], wantErr)
				}
				if wantErr != nil {
					if gotErrs[i].Error() != wantErr.Error() {
						t.Fatalf("cfg %s: batch err %q, scalar err %q", cfg, gotErrs[i], wantErr)
					}
					continue
				}
				if !reflect.DeepEqual(got[i], want) {
					t.Fatalf("cfg %s: batch breakdown differs from scalar\nbatch:  %+v\nscalar: %+v",
						cfg, got[i], want)
				}
			}
		})
	}
}

// TestPriceBatchSteadyStateAllocs pins the batched hot path's
// allocation budget: once the interned topology's derived caches and
// the pooled scratch are warm, pricing a K=64 batch must not allocate
// per candidate — only the constant per-call overhead of the result
// slices and pool bookkeeping remains.
func TestPriceBatchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	ab, err := cost.NewBackend("analytic")
	if err != nil {
		t.Fatal(err)
	}
	be := ab.(cost.BatchBackend)
	o := cost.TEMPOptions()
	o.Engine = cost.GMap
	const k = 64
	cfgs := batchCandidates(w.Dies(), k)
	out := make([]cost.Breakdown, k)
	errs := make([]error, k)
	be.PriceBatch(m, w, cfgs, o, out, errs) // warm caches + pool
	avg := testing.AllocsPerRun(20, func() {
		be.PriceBatch(m, w, cfgs, o, out, errs)
	})
	// Budget: well under one allocation per candidate; the only
	// allowed allocations are constant per batch.
	if avg > 8 {
		t.Errorf("steady-state PriceBatch allocates %.1f objects per %d-candidate batch, budget 8", avg, k)
	}
}
