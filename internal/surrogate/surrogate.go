// Package surrogate implements the DNN-based cost model of §VII-A
// and its verification methodology (§VIII-G, Fig. 21): datasets are
// generated from the wafer simulator across three latency categories
// (single-operator computation, collective/point-to-point
// communication, and computation/communication overlap), an MLP is
// trained per category, and its accuracy and lookup speed are
// compared against a multivariate linear-regression baseline.
package surrogate

import (
	"math"
	"math/rand"
	"time"

	"temp/internal/collective"
	"temp/internal/hw"
	"temp/internal/mesh"
	"temp/internal/nn"
	"temp/internal/unit"
)

// Category selects a latency family (Fig. 21 panels a–c).
type Category int

// Latency categories.
const (
	// Compute covers GEMM, GEMV, softmax and SiLU operator latency.
	Compute Category = iota
	// Comm covers All-Reduce, Reduce-Scatter, All-Gather and P2P.
	Comm
	// Overlap covers GEMM computation overlapped with TATP-style
	// tensor streaming.
	Overlap
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case Compute:
		return "compute"
	case Comm:
		return "communication"
	case Overlap:
		return "overlap"
	default:
		return "category"
	}
}

// Sample pairs a feature vector with a ground-truth latency (ms).
type Sample struct {
	Features []float64
	TargetMS float64
}

// simulator holds the ground-truth machinery.
type simulator struct {
	w    hw.Wafer
	topo *mesh.Topology
}

func newSimulator(w hw.Wafer) *simulator {
	return &simulator{w: w, topo: mesh.FromWafer(w)}
}

const gemmHalfEff = 1e9

// computeTruth prices one operator on a die: PE array with the tile
// efficiency knee for matrix kinds, vector units with a DRAM bound
// for softmax/SiLU.
func (s *simulator) computeTruth(kind int, b, m, n, k float64) float64 {
	die := s.w.Die
	switch kind {
	case 0: // GEMM
		fl := 2 * b * m * n * k
		eff := fl / (fl + gemmHalfEff)
		return fl / (die.PeakFLOPS * eff)
	case 1: // GEMV
		fl := 2 * b * n * k
		bytes := (b*n + n*k + b*k) * 2
		return unit.MaxF(fl/(die.PeakFLOPS*0.25), bytes/die.MemBandwidth())
	case 2: // softmax
		fl := 5 * b * m * n
		bytes := 2 * b * m * n * 2
		return unit.MaxF(fl/die.VectorFLOPS, bytes/die.MemBandwidth())
	default: // SiLU
		fl := 6 * b * m * n
		bytes := 2 * b * m * n * 2
		return unit.MaxF(fl/die.VectorFLOPS, bytes/die.MemBandwidth())
	}
}

// commTruth lowers one collective onto the wafer mesh and times it
// with the flow-level contention model.
func (s *simulator) commTruth(op int, group int, bytes float64) float64 {
	rect := mesh.Rect{R0: 0, C0: 0, R1: 1, C1: group/2 - 1}
	if group == 2 {
		rect = mesh.Rect{R0: 0, C0: 0, R1: 0, C1: 1}
	}
	order, ok := rect.RingPath(s.topo)
	if !ok {
		order = rect.SnakePath(s.topo)
	}
	var phases []mesh.Phase
	switch op {
	case 0:
		phases = collective.RingAllReduce(s.topo, order, bytes)
	case 1:
		phases = collective.RingReduceScatter(s.topo, order, bytes)
	case 2:
		phases = collective.RingAllGather(s.topo, order, bytes/float64(group))
	default:
		phases = collective.P2P(s.topo, order[0], order[len(order)-1], bytes, "p2p")
	}
	return s.topo.SeqTime(phases).Total()
}

// overlapTruth prices a GEMM overlapped with TATP weight streaming
// over n dies (Eq. 2's max term plus per-round sync).
func (s *simulator) overlapTruth(flops, streamBytes float64, n float64) float64 {
	die := s.w.Die
	comp := flops / n
	eff := comp / n / (comp/n + gemmHalfEff)
	if eff < 0.05 {
		eff = 0.05
	}
	compT := comp / (die.PeakFLOPS * eff)
	sub := streamBytes / n
	commT := streamBytes/s.w.Link.EffectiveBandwidth(sub) + n*2*unit.Microsecond
	return unit.MaxF(compT, commT)
}

// Generate builds a dataset of the category by sweeping batch size,
// sequence length and hidden size (the §VIII-G methodology).
func Generate(cat Category, n int, w hw.Wafer, rng *rand.Rand) []Sample {
	sim := newSimulator(w)
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		switch cat {
		case Compute:
			kind := rng.Intn(4)
			b := float64(int(1) << rng.Intn(5))     // 1..16
			m := float64(int(256) << rng.Intn(7))   // 256..16k
			h := float64(1024 * (1 + rng.Intn(16))) // 1k..16k
			k := float64(1024 * (1 + rng.Intn(16))) // 1k..16k
			t := sim.computeTruth(kind, b, m, h, k)
			kindHot := []float64{0, 0, 0, 0}
			kindHot[kind] = 1
			out = append(out, Sample{
				Features: append([]float64{b, m, h, k}, kindHot...),
				TargetMS: t * 1e3,
			})
		case Comm:
			op := rng.Intn(4)
			group := []int{2, 4, 8, 16}[rng.Intn(4)]
			bytes := float64(int(1)<<rng.Intn(10)) * unit.MB // 1MB..512MB
			t := sim.commTruth(op, group, bytes)
			opHot := []float64{0, 0, 0, 0}
			opHot[op] = 1
			out = append(out, Sample{
				Features: append([]float64{float64(group), bytes}, opHot...),
				TargetMS: t * 1e3,
			})
		case Overlap:
			flops := float64(int(1)<<rng.Intn(12)) * 1e10 // 1e10..2e13
			bytes := float64(int(1)<<rng.Intn(9)) * unit.MB
			n := []float64{2, 4, 8, 16, 32}[rng.Intn(5)]
			t := sim.overlapTruth(flops, bytes, n)
			out = append(out, Sample{
				Features: []float64{flops, bytes, n},
				TargetMS: t * 1e3,
			})
		}
	}
	return out
}

// Predictor prices a feature vector in milliseconds.
type Predictor interface {
	Predict(features []float64) float64
}

// DNN is the trained MLP cost model: standardized log features and a
// log-space target, so accuracy is uniform in relative terms across
// the microsecond-to-second latency range.
//
// A DNN is immutable once TrainDNN returns — Predict only reads the
// trained weights and the standardizer statistics — so one trained
// model may serve concurrent Predict calls from any number of
// goroutines. This is the contract solver.CostModel requires of
// surrogate-backed models (the GA prices whole populations in
// parallel). The same holds for Linear.
type DNN struct {
	mlp *nn.MLP
	std *nn.Standardizer
}

func logFeat(f []float64) []float64 {
	out := make([]float64, len(f))
	for i, v := range f {
		out[i] = math.Log1p(v)
	}
	return out
}

// TrainDNN fits the MLP cost model on a dataset.
func TrainDNN(train []Sample, rng *rand.Rand) *DNN {
	xs := make([][]float64, len(train))
	ys := make([][]float64, len(train))
	for i, s := range train {
		xs[i] = logFeat(s.Features)
		ys[i] = []float64{math.Log(s.TargetMS)}
	}
	std := nn.FitStandardizer(xs)
	xs = std.ApplyAll(xs)
	mlp := nn.NewMLP([]int{len(xs[0]), 48, 48, 1}, rng)
	mlp.Fit(xs, ys, 500, 32, nn.AdamConfig{LR: 3e-3}, rng)
	return &DNN{mlp: mlp, std: std}
}

// Predict implements Predictor.
func (d *DNN) Predict(features []float64) float64 {
	x := d.std.Apply(logFeat(features))
	return math.Exp(d.mlp.Predict(x)[0])
}

// Linear is the multivariate-regression baseline of Fig. 21.
type Linear struct {
	lr *nn.LinearRegression
}

// TrainLinear fits the baseline on raw features.
func TrainLinear(train []Sample) *Linear {
	xs := make([][]float64, len(train))
	ys := make([]float64, len(train))
	for i, s := range train {
		xs[i] = s.Features
		ys[i] = s.TargetMS
	}
	return &Linear{lr: nn.FitLinear(xs, ys, 1e-6)}
}

// Predict implements Predictor.
func (l *Linear) Predict(features []float64) float64 {
	return l.lr.Predict(features)
}

// Eval summarises a model's accuracy and lookup speed on a test set.
type Eval struct {
	Corr    float64
	MAPE    float64
	PerCall time.Duration
}

// Validate measures correlation, mean absolute percentage error and
// per-prediction latency.
func Validate(p Predictor, test []Sample) Eval {
	preds := make([]float64, len(test))
	truths := make([]float64, len(test))
	start := time.Now()
	for i, s := range test {
		preds[i] = p.Predict(s.Features)
		truths[i] = s.TargetMS
	}
	elapsed := time.Since(start)
	return Eval{
		Corr:    nn.Pearson(preds, truths),
		MAPE:    nn.MAPE(preds, truths),
		PerCall: elapsed / time.Duration(len(test)),
	}
}
