package solver

import (
	"context"
	"fmt"
	"math"
	"math/rand"
)

// Anneal is simulated annealing over the joint assignment: single-gene
// moves priced through the delta evaluator (at most three cost-model
// terms per move instead of the full chain), Metropolis acceptance,
// and a geometric cooling schedule scaled to the chain-DP seed cost.
// Deterministic per seed; runs serially (the delta evaluation makes
// each move so cheap that fan-out would cost more than it buys).
type Anneal struct {
	// Seed drives the move and acceptance randomness.
	Seed int64
	// Iterations is the move count (default 6000).
	Iterations int
	// T0 is the initial temperature; 0 scales it to 5% of the seed
	// assignment's cost.
	T0 float64
	// Cool is the per-iteration geometric cooling factor; 0 derives
	// the factor that decays T0 by 1e4 over the run.
	Cool float64
}

// newAnneal builds the registered "anneal" strategy from params.
func newAnneal(p Params) (Strategy, error) {
	if err := p.checkKnown("anneal", "iterations", "t0", "cool", "seed"); err != nil {
		return nil, err
	}
	a := &Anneal{
		Seed:       p.seed(),
		Iterations: int(p.value("iterations", 0)),
		T0:         p.value("t0", 0),
		Cool:       p.value("cool", 0),
	}
	if a.Iterations < 0 {
		return nil, fmt.Errorf("solver: anneal iterations %d is negative", a.Iterations)
	}
	if a.T0 < 0 || a.Cool < 0 || a.Cool > 1 {
		return nil, fmt.Errorf("solver: anneal t0 %v / cool %v out of range", a.T0, a.Cool)
	}
	return a, nil
}

// Name implements Strategy.
func (s *Anneal) Name() string { return "anneal" }

// Solve implements Strategy.
func (s *Anneal) Solve(ctx context.Context, p Problem, b Budget) (Assignment, Stats) {
	stats := Stats{Strategy: s.Name()}
	if !p.valid() {
		return nil, stats
	}
	iters := s.Iterations
	if iters == 0 {
		iters = 6000
	}
	ev := p.evaluator()
	r := newRun(b, ev, &stats)

	seed := p.seedAssignment(ev, b)
	inc := ev.incremental(seed)
	curCost := inc.cost()
	stats.DPCost = curCost
	best := append(Assignment(nil), seed...)
	bestCost := curCost

	t := s.T0
	if t == 0 {
		t = 0.05 * math.Max(curCost, 1e-12)
	}
	cool := s.Cool
	if cool == 0 {
		// Decay T0 by 1e4 across the run.
		cool = math.Pow(1e-4, 1/float64(iters))
	}

	rng := rand.New(rand.NewSource(s.Seed))
	n := len(p.Graph.Ops)
	for it := 0; it < iters; it++ {
		if r.stop(ctx) {
			break
		}
		stats.Iterations++
		i := rng.Intn(n)
		c := rng.Intn(len(p.Space))
		if c == inc.assign[i] {
			t *= cool
			continue
		}
		cand := inc.moveCost(i, c)
		d := cand - curCost
		if d < 0 || rng.Float64() < math.Exp(-d/t) {
			inc.apply(i, c)
			curCost = cand
			if curCost < bestCost {
				bestCost = curCost
				best = append(best[:0], inc.assign...)
			}
		}
		t *= cool
		r.checkpoint(it+1, best, bestCost)
	}

	r.finish(bestCost)
	return best, stats
}
