package experiments

import (
	"context"
	"time"

	"temp/internal/distrib"
)

// Distributed experiment execution: each experiment table is one task
// shipped to a worker process. Workers replicate the coordinator's
// process-level overrides (-model/-wafer/-backend, memo dir) via the
// passthrough flags on their command line, so a table computed
// remotely is bit-identical to one computed here.

type tableTask struct {
	ID    string
	Quick bool
}

type tableOut struct {
	Table Table
	Nanos int64
}

func init() {
	distrib.RegisterKind("experiments.table", distrib.HandlerGob(runTableTask))
}

func runTableTask(ctx context.Context, t tableTask) (tableOut, error) {
	if err := ctx.Err(); err != nil {
		return tableOut{}, err
	}
	start := time.Now()
	tab, err := ByID(t.ID, t.Quick)
	if err != nil {
		return tableOut{}, err
	}
	return tableOut{Table: *tab, Nanos: time.Since(start).Nanoseconds()}, nil
}

// AllTimedOn is AllTimed over a fabric: the full-suite tables are
// sharded across worker processes (in-process when f is nil or
// degraded) and merged back into DESIGN.md order. Error semantics
// mirror AllTimed: on failure it returns the tables that precede the
// first failing experiment.
func AllTimedOn(f *distrib.Fabric, quick bool) ([]*Table, []time.Duration, error) {
	runners := allRunners()
	tasks := make([]tableTask, len(runners))
	for i, r := range runners {
		tasks[i] = tableTask{ID: r.ID, Quick: quick}
	}
	outs, errs := distrib.RunTasks[tableTask, tableOut](f, "experiments.table", tasks)
	tabs := make([]*Table, len(runners))
	durs := make([]time.Duration, len(runners))
	for i := range outs {
		if errs[i] != nil {
			continue
		}
		t := outs[i].Table
		tabs[i] = &t
		durs[i] = time.Duration(outs[i].Nanos)
	}
	for i, err := range errs {
		if err != nil {
			return tabs[:i], durs[:i], err
		}
	}
	return tabs, durs, nil
}

// ByIDOn runs one experiment through the fabric (directly when f is
// nil), so -exp also exercises the distributed path.
func ByIDOn(f *distrib.Fabric, id string, quick bool) (*Table, error) {
	if f == nil {
		return ByID(id, quick)
	}
	outs, errs := distrib.RunTasks[tableTask, tableOut](f, "experiments.table", []tableTask{{ID: id, Quick: quick}})
	if errs[0] != nil {
		return nil, errs[0]
	}
	t := outs[0].Table
	return &t, nil
}
