// Package distrib is a coordinator/worker fabric that shards
// engine-shaped workloads (experiment tables, scenario batches, fault
// campaigns, solver races) across worker processes and merges their
// results deterministically.
//
// The wire protocol is deliberately small: length-prefixed frames,
// each carrying one gob-encoded envelope. Every frame is a standalone
// gob stream (a fresh encoder per frame, mirroring the disk memo's
// record framing) so a reader never depends on state from earlier
// frames and a dropped connection never leaves a decoder mid-stream.
//
//	frame : len u32le | gob(envelope)
//
// The coordinator speaks the same protocol over a worker subprocess's
// stdin/stdout or over a TCP connection (multi-machine via -listen /
// -connect). Task payloads are opaque []byte — the kind registry
// (registry.go) maps a kind string to the handler that decodes,
// executes, and re-encodes them, so the fabric itself stays ignorant
// of every workload's shape.
package distrib

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
)

// protoVersion is validated in both directions during the hello
// exchange; bump it whenever the envelope shape changes.
const protoVersion = 1

// maxFrame bounds a frame's length; anything larger is corruption.
const maxFrame = 1 << 30

type msgType uint8

const (
	msgHello msgType = iota + 1
	msgShard
	msgResult
	msgDone
	msgStats
)

// envelope is the single frame shape; exactly one pointer field is
// non-nil, selected by Type.
type envelope struct {
	Type   msgType
	Hello  *helloMsg
	Shard  *shardMsg
	Result *resultMsg
	Stats  *statsMsg
}

// helloMsg is the first frame in each direction.
type helloMsg struct {
	Version int
	PID     int
}

// shardMsg carries a contiguous run of tasks of one kind. Start is
// the global index of the first task, so results are index-addressed
// into the coordinator's pre-sized output slice no matter which
// worker executes the shard or when.
type shardMsg struct {
	Seq      uint64
	Kind     string
	Start    int
	Payloads [][]byte
}

// resultMsg answers one shard: Payloads[i] / Errs[i] correspond to
// the shard's task i (global index Start+i). Errs entries are ""
// on success; handler errors and worker-side panics travel as text.
type resultMsg struct {
	Seq      uint64
	Start    int
	Payloads [][]byte
	Errs     []string
}

// statsMsg is the worker's reply to done: its lifetime counters plus
// its engine cache statistics, aggregated coordinator-side.
type statsMsg struct {
	Shards      int
	Tasks       int
	Hits        int64
	Misses      int64
	DiskHits    int64
	BatchCalls  int64
	BatchedJobs int64
}

// writeFrame encodes env as one standalone gob stream and writes it
// with its length prefix in a single buffered write+flush.
func writeFrame(w *bufio.Writer, env *envelope) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		return fmt.Errorf("distrib: encode frame: %w", err)
	}
	if buf.Len() > maxFrame {
		return fmt.Errorf("distrib: frame too large (%d bytes)", buf.Len())
	}
	var lens [4]byte
	binary.LittleEndian.PutUint32(lens[:], uint32(buf.Len()))
	if _, err := w.Write(lens[:]); err != nil {
		return err
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return err
	}
	return w.Flush()
}

// readFrame reads one length-prefixed envelope.
func readFrame(r *bufio.Reader) (*envelope, error) {
	var lens [4]byte
	if _, err := io.ReadFull(r, lens[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lens[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("distrib: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(buf)).Decode(&env); err != nil {
		return nil, fmt.Errorf("distrib: decode frame: %w", err)
	}
	return &env, nil
}

// exchangeHello sends our hello and validates the peer's.
func exchangeHello(r *bufio.Reader, w *bufio.Writer, pid int) error {
	if err := writeFrame(w, &envelope{Type: msgHello, Hello: &helloMsg{Version: protoVersion, PID: pid}}); err != nil {
		return err
	}
	env, err := readFrame(r)
	if err != nil {
		return err
	}
	if env.Type != msgHello || env.Hello == nil {
		return fmt.Errorf("distrib: expected hello, got message type %d", env.Type)
	}
	if env.Hello.Version != protoVersion {
		return fmt.Errorf("distrib: protocol version mismatch: have %d, peer %d", protoVersion, env.Hello.Version)
	}
	return nil
}
