package collective

import (
	"math"
	"strings"
	"testing"

	"temp/internal/hw"
	"temp/internal/mesh"
	"temp/internal/unit"
)

func topo(r, c int) *mesh.Topology { return mesh.New(r, c, hw.TableID2D()) }

func ringOrder(t *mesh.Topology, rect mesh.Rect) []mesh.DieID {
	p, ok := rect.RingPath(t)
	if !ok {
		panic("rect not ring capable")
	}
	return p
}

func TestRingAllReducePhaseCount(t *testing.T) {
	tp := topo(2, 4)
	order := ringOrder(tp, mesh.Rect{R0: 0, C0: 0, R1: 1, C1: 3})
	phases := RingAllReduce(tp, order, 64*unit.MB)
	if got, want := len(phases), 2*(len(order)-1); got != want {
		t.Fatalf("phases = %d, want %d", got, want)
	}
	for _, ph := range phases {
		if err := tp.ValidatePhase(ph); err != nil {
			t.Fatal(err)
		}
		if len(ph.Flows) != len(order) {
			t.Fatalf("phase %s has %d flows, want %d", ph.Label, len(ph.Flows), len(order))
		}
	}
}

// TestRingAllReduceVolume: ring all-reduce moves 2(N-1)/N × bytes per
// participant — the bandwidth-optimal volume.
func TestRingAllReduceVolume(t *testing.T) {
	tp := topo(2, 4)
	order := ringOrder(tp, mesh.Rect{R0: 0, C0: 0, R1: 1, C1: 3})
	bytes := 64 * unit.MB
	n := float64(len(order))
	var total float64
	for _, ph := range RingAllReduce(tp, order, bytes) {
		for _, f := range ph.Flows {
			total += f.Bytes
		}
	}
	want := 2 * (n - 1) / n * bytes * n // per participant × N participants
	if math.Abs(total-want)/want > 1e-9 {
		t.Errorf("all-reduce volume = %v, want %v", total, want)
	}
}

func TestRingAllReduceOnPhysicalRingIsSingleHop(t *testing.T) {
	tp := topo(2, 4)
	order := ringOrder(tp, mesh.Rect{R0: 0, C0: 0, R1: 1, C1: 3})
	for _, ph := range RingAllReduce(tp, order, unit.MB) {
		for _, f := range ph.Flows {
			if f.Route.Hops() != 1 {
				t.Fatalf("flow %v crosses %d hops on a physical ring", f, f.Route.Hops())
			}
		}
	}
}

// TestRingAllReduceOnChainHasLongWrap: without a physical ring, the
// wrap step is multi-hop — the baseline inefficiency on WSC meshes.
func TestRingAllReduceOnChainHasLongWrap(t *testing.T) {
	tp := topo(1, 8)
	order := mesh.Rect{R0: 0, C0: 0, R1: 0, C1: 7}.DiesOn(tp)
	maxHops := 0
	for _, ph := range RingAllReduce(tp, order, unit.MB) {
		for _, f := range ph.Flows {
			if h := f.Route.Hops(); h > maxHops {
				maxHops = h
			}
		}
	}
	if maxHops != 7 {
		t.Errorf("chain all-reduce max hops = %d, want 7", maxHops)
	}
}

func TestAllGatherAndReduceScatter(t *testing.T) {
	tp := topo(2, 4)
	order := ringOrder(tp, mesh.Rect{R0: 0, C0: 0, R1: 1, C1: 3})
	n := len(order)
	ag := RingAllGather(tp, order, 8*unit.MB)
	if len(ag) != n-1 {
		t.Errorf("all-gather phases = %d, want %d", len(ag), n-1)
	}
	rs := RingReduceScatter(tp, order, 64*unit.MB)
	if len(rs) != n-1 {
		t.Errorf("reduce-scatter phases = %d, want %d", len(rs), n-1)
	}
	// all-gather of shard s has per-step volume N·s; reduce-scatter
	// of b has per-step volume N·b/N = b.
	var agStep, rsStep float64
	for _, f := range ag[0].Flows {
		agStep += f.Bytes
	}
	for _, f := range rs[0].Flows {
		rsStep += f.Bytes
	}
	if agStep != float64(n)*8*unit.MB {
		t.Errorf("all-gather step volume = %v", agStep)
	}
	if rsStep != 64*unit.MB {
		t.Errorf("reduce-scatter step volume = %v", rsStep)
	}
}

func TestDegenerateCollectives(t *testing.T) {
	tp := topo(2, 4)
	single := []mesh.DieID{0}
	if RingAllReduce(tp, single, unit.MB) != nil {
		t.Error("single-member all-reduce should be free")
	}
	if RingAllGather(tp, single, unit.MB) != nil {
		t.Error("single-member all-gather should be free")
	}
	if RingAllReduce(tp, []mesh.DieID{0, 1}, 0) != nil {
		t.Error("zero-byte all-reduce should be free")
	}
	if P2P(tp, 3, 3, unit.MB, "self") != nil {
		t.Error("self P2P should be free")
	}
}

func TestBroadcastUsesTree(t *testing.T) {
	tp := topo(2, 4)
	phases := Broadcast(tp, 0, []mesh.DieID{1, 2, 3, 5}, 16*unit.MB, "w")
	if len(phases) != 1 {
		t.Fatalf("broadcast phases = %d", len(phases))
	}
	if err := tp.ValidatePhase(phases[0]); err != nil {
		t.Fatal(err)
	}
	_, maxLoad := phases[0].MaxLoad()
	if maxLoad != 16*unit.MB {
		t.Errorf("broadcast tree max link load = %v, want one payload", maxLoad)
	}
}

func TestP2PAndChain(t *testing.T) {
	tp := topo(2, 4)
	p := P2P(tp, 0, 7, 4*unit.MB, "x")
	if len(p) != 1 || len(p[0].Flows) != 1 {
		t.Fatalf("P2P = %+v", p)
	}
	if p[0].Flows[0].Route.Hops() != tp.HopDistance(0, 7) {
		t.Error("P2P route not minimal")
	}
	chain := P2PChain(tp, []mesh.DieID{0, 1, 2, 3}, 4*unit.MB, "c")
	if len(chain) != 1 || len(chain[0].Flows) != 3 {
		t.Fatalf("chain = %+v", chain)
	}
}

func TestAllToAllPairCount(t *testing.T) {
	tp := topo(2, 4)
	order := []mesh.DieID{0, 1, 2, 3}
	phases := AllToAll(tp, order, unit.MB)
	if len(phases) != 1 {
		t.Fatalf("alltoall phases = %d", len(phases))
	}
	if got, want := len(phases[0].Flows), 4*3; got != want {
		t.Errorf("alltoall flows = %d, want %d", got, want)
	}
}

func TestTimeAndEnergyPositive(t *testing.T) {
	tp := topo(2, 4)
	order := ringOrder(tp, mesh.Rect{R0: 0, C0: 0, R1: 1, C1: 3})
	phases := RingAllReduce(tp, order, 64*unit.MB)
	if Time(tp, phases) <= 0 {
		t.Error("collective time should be positive")
	}
	if Energy(tp, phases) <= 0 {
		t.Error("collective energy should be positive")
	}
}

// TestAllReduceTimeScalesInverseWithRing: on a physical ring the
// all-reduce time is ~2(N-1)/N × bytes / link-bw — nearly flat in N,
// which is why collectives do not shrink with more dies (the Fig. 9
// O(1) communication term).
func TestAllReduceTimeScalesInverseWithRing(t *testing.T) {
	bytes := 256 * unit.MB
	tp4 := topo(2, 2)
	tp16 := topo(2, 8)
	t4 := Time(tp4, RingAllReduce(tp4, ringOrder(tp4, mesh.Rect{R0: 0, C0: 0, R1: 1, C1: 1}), bytes))
	t16 := Time(tp16, RingAllReduce(tp16, ringOrder(tp16, mesh.Rect{R0: 0, C0: 0, R1: 1, C1: 7}), bytes))
	ratio := t16 / t4
	if ratio < 1.0 || ratio > 3.0 {
		t.Errorf("all-reduce time ratio 16v4 = %.2f, want ~flat (1..3; granularity makes finer chunks pricier)", ratio)
	}
}

func TestMergeAlignsPhases(t *testing.T) {
	tp := topo(2, 4)
	a := RingAllGather(tp, []mesh.DieID{0, 1, 2, 3}, unit.MB)
	b := P2PChain(tp, []mesh.DieID{4, 5, 6, 7}, unit.MB, "p")
	merged := Merge(a, b)
	if len(merged) != len(a) {
		t.Fatalf("merged length = %d, want %d", len(merged), len(a))
	}
	if len(merged[0].Flows) != len(a[0].Flows)+len(b[0].Flows) {
		t.Errorf("merged phase 0 flows = %d", len(merged[0].Flows))
	}
	for _, f := range merged[0].Flows {
		if !strings.HasPrefix(f.Payload, "s0.") && !strings.HasPrefix(f.Payload, "s1.") {
			t.Errorf("merged payload %q missing sequence prefix", f.Payload)
		}
	}
}
