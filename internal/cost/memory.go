package cost

import (
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
	"temp/internal/stream"
	"temp/internal/unit"
)

// MemoryBreakdown is the per-die memory occupancy of one training
// configuration, the quantity Fig. 4(c) and the memory panels of
// Fig. 13 report.
type MemoryBreakdown struct {
	Weights     float64
	Grads       float64
	Optimizer   float64
	Activations float64
	StreamBuf   float64
	Capacity    float64
}

// Total returns the per-die footprint.
func (m MemoryBreakdown) Total() float64 {
	return m.Weights + m.Grads + m.Optimizer + m.Activations + m.StreamBuf
}

// OOM reports whether the footprint exceeds per-die capacity.
func (m MemoryBreakdown) OOM() bool { return m.Total() > m.Capacity }

// localSeq returns the per-die sequence extent: SP, CP and TATP all
// shard the token dimension, and Megatron-3-style SP additionally
// splits the non-TP regions across the TP group. Plain Megatron TP
// leaves the sequence whole on every rank — the activation
// replication of Fig. 4(a).
func localSeq(m model.Config, cfg parallel.Config) float64 {
	cfg = cfg.Normalize()
	div := cfg.SP * cfg.CP * cfg.TATP
	if cfg.MegatronSP {
		div *= cfg.TP
	}
	s := float64(m.Seq) / float64(div)
	if s < 1 {
		s = 1
	}
	return s
}

// MemoryPerDie evaluates the per-die memory footprint for
// layersPerStage transformer blocks resident on each wafer stage.
func MemoryPerDie(m model.Config, w hw.Wafer, cfg parallel.Config, o Options, layersPerStage int) MemoryBreakdown {
	cfg = cfg.Normalize()
	h := float64(m.Hidden)
	sLocal := localSeq(m, cfg)
	mb := float64(o.microbatch())
	fp := unit.FP16.Size()

	stageParams := float64(m.LayerParams()) * float64(layersPerStage)
	// Embedding + unembedding live on the boundary stages; amortize
	// across stages for the per-die estimate.
	stageParams += float64(m.Vocab) * h / float64(maxInt(cfg.PP, 1))

	weightShard := float64(cfg.WeightShardWays())
	weights := stageParams * fp / weightShard

	grads := weights // FP16 gradient per resident weight shard
	optimShard := float64(cfg.TP * cfg.TATP)
	if o.DistributedOptimizer || cfg.FSDP {
		optimShard = float64(cfg.Degree())
	}
	// FP32 master + Adam m + v: 12 bytes per parameter.
	optim := stageParams * 12 / optimShard

	var actPerLayer float64
	a := float64(m.Heads)
	switch o.Recompute {
	case RecomputeNone:
		actPerLayer = mb * sLocal * h * (34 + 5*a*sLocal/h)
	case RecomputeSelective:
		actPerLayer = 34 * mb * sLocal * h
	case RecomputeFull:
		actPerLayer = 2 * mb * sLocal * h
	}
	acts := actPerLayer * float64(layersPerStage)
	if o.Recompute == RecomputeFull {
		// One layer's working set is live while recomputing.
		acts += 34 * mb * sLocal * h
	}

	var buf float64
	if cfg.TATP > 1 {
		// The bidirectional schedule buffers up to N/2+2 sub-tensors
		// of the streamed operand for the layer currently in flight.
		layerW := largestLayerWeightBytes(m) / float64(cfg.TP)
		layerI := mb * sLocal * h * fp * float64(cfg.TATP) // group-level input
		streamed := unit.MinF(layerW, layerI)
		sub := streamed / float64(cfg.TATP)
		peak := float64(cfg.TATP/2 + 2)
		if peak > float64(cfg.TATP) {
			peak = float64(cfg.TATP)
		}
		buf = sub * peak
	}

	return MemoryBreakdown{
		Weights:     weights,
		Grads:       grads,
		Optimizer:   optim,
		Activations: acts,
		StreamBuf:   buf,
		Capacity:    w.Die.MemCapacity(),
	}
}

// largestLayerWeightBytes returns the biggest single weight tensor of
// a block (FC1/FC2 for FFNMult=4 models).
func largestLayerWeightBytes(m model.Config) float64 {
	g := model.BlockGraph(m)
	var max float64
	for _, op := range g.Ops {
		if b := op.Weight.Bytes(); b > max {
			max = b
		}
	}
	return max
}

// streamSubTensorBytes returns the per-round sub-tensor size of a
// TATP group for a given weighted operator, applying the selective
// transfer policy (§V): the smaller of the group-visible weight and
// input operands is streamed.
func streamSubTensorBytes(op model.Op, m model.Config, cfg parallel.Config, o Options) (float64, stream.Operand) {
	cfg = cfg.Normalize()
	n := float64(cfg.TATP)
	mb := float64(o.microbatch())
	// Group-visible operand sizes: weights are pre-sharded by TP;
	// inputs by DP (microbatch), SP and CP.
	wGroup := op.Weight.Bytes() / float64(cfg.TP)
	iGroup := op.Input.Bytes() * (mb / float64(m.Batch)) / float64(cfg.SP*cfg.CP)
	operand := stream.SelectOperand(wGroup, iGroup)
	if o.ForceStreamWeights {
		operand = stream.StreamWeights
	}
	streamed := wGroup
	if operand == stream.StreamInputs {
		streamed = iGroup
	}
	return streamed / n, operand
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
