package distrib

import (
	"bufio"
	"context"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"temp/internal/engine"
)

// ServeStdio runs the worker loop over the process's stdin/stdout —
// the transport used by `-worker-mode` subprocesses. The real stdout
// is claimed for the protocol and os.Stdout is repointed at stderr,
// so a stray print inside a handler degrades to log noise instead of
// corrupting the frame stream.
func ServeStdio() error {
	out := os.Stdout
	os.Stdout = os.Stderr
	return Serve(os.Stdin, out)
}

// ConnectAndServe dials a coordinator's -listen address and serves
// shards over the TCP connection (the multi-machine transport). It
// makes a single attempt; DialAndServe adds the reconnect loop.
func ConnectAndServe(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	return Serve(conn, conn)
}

// RedialOptions configures DialAndServe's reconnect loop.
type RedialOptions struct {
	// Base is the first backoff delay (default 100ms).
	Base time.Duration
	// Max caps the backoff (default 10s).
	Max time.Duration
	// Attempts bounds consecutive failed dials before giving up;
	// 0 means unlimited.
	Attempts int
	// Seed drives the deterministic jitter (default: the PID, so
	// co-scheduled workers spread their redials apart).
	Seed int64
}

// DialAndServe dials the coordinator and serves shards, re-dialing on
// connection loss with exponential backoff plus deterministic jitter.
// A graceful done/stats exchange ends the loop; a dropped or corrupt
// link (the coordinator declared us dead, or chaos ate the stream)
// triggers a redial, and the coordinator re-attaches us to our old
// slot for the next run.
func DialAndServe(addr string, o RedialOptions) error {
	if o.Base <= 0 {
		o.Base = 100 * time.Millisecond
	}
	if o.Max <= 0 {
		o.Max = 10 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = int64(os.Getpid())
	}
	jitter := splitmix64(uint64(o.Seed))
	delay := o.Base
	attempt := 0
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			attempt = 0
			delay = o.Base
			err = Serve(conn, conn)
			conn.Close()
			if err == nil {
				return nil
			}
			fmt.Fprintf(os.Stderr, "distrib: worker link lost (%v); re-dialing %s\n", err, addr)
			continue
		}
		attempt++
		if o.Attempts > 0 && attempt >= o.Attempts {
			return fmt.Errorf("distrib: dial %s: %w (after %d attempts)", addr, err, attempt)
		}
		// Exponential backoff with deterministic jitter: sleep
		// delay/2 plus a seeded fraction of delay/2.
		jitter = splitmix64(jitter)
		frac := float64(jitter>>11) / float64(1<<53)
		time.Sleep(delay/2 + time.Duration(frac*float64(delay/2)))
		if delay *= 2; delay > o.Max {
			delay = o.Max
		}
	}
}

// Serve speaks the worker side of the protocol: hello, then execute
// shards as they arrive, then answer done with lifetime stats and
// return nil. Shards execute asynchronously so the read loop keeps
// answering pings while a long shard runs (the whole point of the
// heartbeat: a busy worker is not a dead worker); cancel frames abort
// a shard's context. A read error (coordinator gone, corrupt stream)
// returns the error; the caller decides whether that is fatal.
func Serve(r io.Reader, w io.Writer) error {
	br := bufio.NewReaderSize(r, 1<<16)
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := exchangeHello(br, bw, os.Getpid(), engine.HasDiskMemo()); err != nil {
		return err
	}
	var sendMu sync.Mutex
	send := func(env *envelope) error {
		sendMu.Lock()
		defer sendMu.Unlock()
		return writeFrame(bw, env)
	}
	var (
		inflight      sync.WaitGroup
		cancelMu      sync.Mutex
		cancels       = map[uint64]context.CancelFunc{}
		shards, tasks atomic.Int64
	)
	for {
		env, err := readFrame(br)
		if err != nil {
			return err
		}
		switch env.Type {
		case msgPing:
			var seq uint64
			if env.Beat != nil {
				seq = env.Beat.Seq
			}
			if err := send(&envelope{Type: msgPong, Beat: &beatMsg{Seq: seq}}); err != nil {
				return err
			}
		case msgMemo:
			if env.Memo != nil {
				importMemo(env.Memo)
			}
		case msgCancel:
			if env.Cancel != nil {
				cancelMu.Lock()
				if c := cancels[env.Cancel.Seq]; c != nil {
					c()
				}
				cancelMu.Unlock()
			}
		case msgShard:
			sh := env.Shard
			if sh == nil {
				continue
			}
			ctx, cancel := context.WithCancel(context.Background())
			cancelMu.Lock()
			cancels[sh.Seq] = cancel
			cancelMu.Unlock()
			inflight.Add(1)
			go func() {
				defer inflight.Done()
				res := execShard(ctx, sh)
				cancelMu.Lock()
				delete(cancels, sh.Seq)
				cancelMu.Unlock()
				cancelled := ctx.Err() != nil
				cancel()
				if cancelled {
					return // cancelled: the coordinator stopped caring
				}
				send(&envelope{Type: msgResult, Result: res})
				shards.Add(1)
				tasks.Add(int64(len(sh.Payloads)))
			}()
		case msgDone:
			inflight.Wait()
			s := engine.CountersSnapshot()
			stats := &statsMsg{
				Shards: int(shards.Load()), Tasks: int(tasks.Load()),
				Hits: s.Hits, Misses: s.Misses, DiskHits: s.DiskHits,
				BatchCalls: s.BatchCalls, BatchedJobs: s.BatchedJobs,
			}
			return send(&envelope{Type: msgStats, Stats: stats})
		}
	}
}

// importMemo verifies and merges a coordinator-shipped memo segment.
// A bad checksum or a corrupt record means starting cold — never a
// wrong price.
func importMemo(m *memoMsg) {
	if crc32.ChecksumIEEE(m.Data) != m.CRC {
		fmt.Fprintln(os.Stderr, "distrib: memo segment checksum mismatch; starting cold")
		return
	}
	n, err := engine.ImportMemoSegment(m.Data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "distrib: memo segment import: %v; starting cold\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "distrib: warm-started from synced memo (%d records, %d bytes)\n", n, len(m.Data))
}

// execShard runs every task in the shard through the kind's handler,
// fanning out across the worker's own engine pool. Handler errors and
// panics (via engine.Guard) become per-task error strings; they never
// take the worker down.
func execShard(ctx context.Context, sh *shardMsg) *resultMsg {
	res := &resultMsg{
		Seq:      sh.Seq,
		Start:    sh.Start,
		Payloads: make([][]byte, len(sh.Payloads)),
		Errs:     make([]string, len(sh.Payloads)),
	}
	h := lookupKind(sh.Kind)
	engine.Map(len(sh.Payloads), func(i int) {
		res.Payloads[i], res.Errs[i] = execTask(ctx, h, sh.Kind, sh.Payloads[i])
	})
	return res
}

func execTask(ctx context.Context, h Handler, kind string, payload []byte) (out []byte, errMsg string) {
	if h == nil {
		return nil, "distrib: unknown task kind " + kind
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var err error
	if pe := engine.Guard(func() { out, err = h(ctx, payload) }); pe != nil {
		return nil, pe.Error()
	}
	if err != nil {
		return nil, err.Error()
	}
	return out, ""
}
