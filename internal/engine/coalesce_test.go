package engine

import (
	"sync"
	"testing"
	"time"
)

// TestCoalescerBitIdentical merges four concurrent overlapping sweeps
// through one coalescer flush and checks every caller gets exactly
// what an uncoalesced pool returns, with the shared-job telemetry
// counting the overlap.
func TestCoalescerBitIdentical(t *testing.T) {
	jobs := testJobs(t)

	// Golden results from a plain pool.
	want := New(4).Sweep(jobs)

	p := New(4)
	// A wide hold window plus an unreachable early-flush bound force
	// every concurrent submission into one timer-driven flush.
	p.coal = NewCoalescer(p, 200*time.Millisecond, 1<<20)

	// Four sweeps over overlapping halves: every pair shares the
	// middle third of the job list.
	n := len(jobs)
	slices := [][2]int{{0, 2 * n / 3}, {n / 3, n}, {0, 2 * n / 3}, {n / 3, n}}
	got := make([][]Result, len(slices))
	var wg sync.WaitGroup
	for i, s := range slices {
		wg.Add(1)
		go func(i int, lo, hi int) {
			defer wg.Done()
			got[i] = p.Sweep(jobs[lo:hi])
		}(i, s[0], s[1])
	}
	wg.Wait()

	for i, s := range slices {
		for k, r := range got[i] {
			w := want[s[0]+k]
			if r.Breakdown.StepTime != w.Breakdown.StepTime ||
				r.Breakdown.ThroughputTokens != w.Breakdown.ThroughputTokens ||
				(r.Err == nil) != (w.Err == nil) {
				t.Fatalf("sweep %d job %d: coalesced result diverged from plain pool", i, k)
			}
		}
	}

	st := p.Cache().Stats()
	if st.CoalesceFlushes == 0 || st.CoalescedJobs == 0 {
		t.Fatalf("coalescer priced nothing: %+v", st)
	}
	if st.CoalesceShared == 0 {
		t.Errorf("overlapping sweeps reported no shared jobs: %+v", st)
	}
	// Each distinct job was priced exactly once despite four
	// overlapping callers.
	if st.Misses != int64(n) {
		t.Errorf("misses = %d, want %d (each job priced once)", st.Misses, n)
	}
}

// TestCoalescerImmediateFlush checks window <= 0 degenerates to the
// plain batched path (flush per submission, identical results).
func TestCoalescerImmediateFlush(t *testing.T) {
	jobs := testJobs(t)
	want := New(4).Sweep(jobs)

	p := New(4)
	p.coal = NewCoalescer(p, 0, 0)
	got := p.Sweep(jobs)
	for i := range jobs {
		if got[i].Breakdown.StepTime != want[i].Breakdown.StepTime {
			t.Fatalf("job %d diverged under immediate flush", i)
		}
	}
	st := p.Cache().Stats()
	if st.CoalesceFlushes != 1 || st.CoalescedJobs != int64(len(jobs)) {
		t.Errorf("immediate flush counters = %+v, want 1 flush covering %d jobs", st, len(jobs))
	}
	if st.CoalesceShared != 0 {
		t.Errorf("single caller reported %d shared jobs", st.CoalesceShared)
	}
}

// TestSetCoalescer checks attach/detach swaps the shared pool without
// losing cache or backend state.
func TestSetCoalescer(t *testing.T) {
	if Coalescing() {
		t.Fatal("shared pool unexpectedly starts with a coalescer")
	}
	before := Default().cache
	co := NewCoalescer(nil, time.Millisecond, 0)
	SetCoalescer(co)
	defer SetCoalescer(nil)
	if !Coalescing() {
		t.Fatal("SetCoalescer did not attach")
	}
	if Default().cache != before {
		t.Error("SetCoalescer rebuilt the cache; warm entries lost")
	}
	SetCoalescer(nil)
	if Coalescing() {
		t.Fatal("SetCoalescer(nil) did not detach")
	}
}
