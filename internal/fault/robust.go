package fault

import (
	"fmt"
	"math/rand"

	"temp/internal/hw"
	"temp/internal/mesh"
	"temp/internal/model"
	"temp/internal/parallel"
	"temp/internal/solver"
)

// RobustModel prices operators as the expected cost over a small
// fault-mask ensemble: a weighted mean of the fault-free model and N
// degraded replay models, one per seeded mask. Selecting it as the
// solver objective trades a small fault-free premium for mappings
// whose streams and collectives still route well when links die —
// graceful degradation as a search objective rather than an
// after-the-fact measurement.
//
// Feasibility (MemoryOK) stays the fault-free model's: a mask changes
// routing, not per-die memory. Safe for concurrent use when the base
// model is (the degraded replay models lock internally).
type RobustModel struct {
	base   solver.CostModel
	masks  []solver.CostModel
	weight float64
}

// NewRobustModel builds the ensemble objective: base is the exact
// fault-free model the search would otherwise use, in describes the
// mask distribution, masks is the ensemble size (default 4) and
// weight ∈ [0,1] is the total probability mass on the faulted side
// (default 0.5, split evenly across masks). Masks are drawn
// deterministically from seed via TrialSeed; masks that disconnect
// the fabric are skipped (they penalize every mapping equally and
// carry no ranking signal).
func NewRobustModel(base solver.CostModel, m model.Config, w hw.Wafer,
	in Injection, masks int, seed int64, weight float64) (*RobustModel, error) {
	if weight < 0 || weight > 1 {
		return nil, fmt.Errorf("fault: robust fault weight %v outside [0,1]", weight)
	}
	if weight == 0 {
		weight = 0.5
	}
	if masks <= 0 {
		masks = 4
	}
	if !in.Active() {
		return nil, fmt.Errorf("fault: robust objective needs an active injection (link or core rate > 0)")
	}
	r := &RobustModel{base: base, weight: weight}
	for attempt := 0; attempt < 4*masks && len(r.masks) < masks; attempt++ {
		topo := mesh.FromWafer(w).Clone()
		in.Apply(topo, rand.New(rand.NewSource(TrialSeed(seed, 0, attempt))))
		topo = topo.Intern()
		if !topo.Connected() {
			continue
		}
		r.masks = append(r.masks, DegradedModel(m, w, topo))
	}
	if len(r.masks) == 0 {
		return nil, fmt.Errorf("fault: robust objective: every sampled mask disconnects the fabric (rates too high)")
	}
	return r, nil
}

// Masks returns the ensemble size actually sampled.
func (r *RobustModel) Masks() int { return len(r.masks) }

// Intra implements solver.CostModel.
func (r *RobustModel) Intra(op model.Op, cfg parallel.Config) float64 {
	v := (1 - r.weight) * r.base.Intra(op, cfg)
	var s float64
	for _, mk := range r.masks {
		s += mk.Intra(op, cfg)
	}
	return v + r.weight*s/float64(len(r.masks))
}

// Inter implements solver.CostModel.
func (r *RobustModel) Inter(prev, next model.Op, pc, nc parallel.Config) float64 {
	v := (1 - r.weight) * r.base.Inter(prev, next, pc, nc)
	var s float64
	for _, mk := range r.masks {
		s += mk.Inter(prev, next, pc, nc)
	}
	return v + r.weight*s/float64(len(r.masks))
}

// MemoryOK implements solver.CostModel.
func (r *RobustModel) MemoryOK(cfg parallel.Config) bool { return r.base.MemoryOK(cfg) }

var _ solver.CostModel = (*RobustModel)(nil)
