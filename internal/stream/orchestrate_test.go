package stream

import (
	"testing"

	"temp/internal/hw"
	"temp/internal/mesh"
	"temp/internal/unit"
)

func topo(r, c int) *mesh.Topology { return mesh.New(r, c, hw.TableID2D()) }

func TestOrchestrateRingOnRect(t *testing.T) {
	tp := topo(4, 8)
	r := mesh.Rect{R0: 0, C0: 0, R1: 1, C1: 3} // 2×4: ring-capable
	o := Orchestrate(tp, r.DiesOn(tp), &r)
	if o.Mode() != Ring {
		t.Fatalf("mode = %v, want ring", o.Mode())
	}
	if !o.ClosesRing {
		t.Error("2×4 rect should close a physical ring")
	}
	if got := o.MaxHopsPerRound(); got != 1 {
		t.Errorf("ring max hops = %d, want 1", got)
	}
	if err := o.Sched.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOrchestrateBidirOnLine(t *testing.T) {
	tp := topo(4, 8)
	r := mesh.Rect{R0: 0, C0: 0, R1: 0, C1: 7} // 1×8 line: no ring
	o := Orchestrate(tp, r.DiesOn(tp), &r)
	if o.Mode() != Bidirectional {
		t.Fatalf("mode = %v, want bidirectional", o.Mode())
	}
	if got := o.MaxHopsPerRound(); got != 1 {
		t.Errorf("bidir max hops = %d, want 1 (TATP's guarantee)", got)
	}
}

func TestOrchestrateOddRect(t *testing.T) {
	tp := topo(4, 8)
	r := mesh.Rect{R0: 0, C0: 0, R1: 2, C1: 2} // 3×3: odd area, no ring
	o := Orchestrate(tp, r.DiesOn(tp), &r)
	if o.Mode() != Bidirectional {
		t.Fatalf("mode = %v, want bidirectional (snake path)", o.Mode())
	}
	if got := o.MaxHopsPerRound(); got != 1 {
		t.Errorf("snake max hops = %d, want 1", got)
	}
}

func TestOrchestrateLShapeChains(t *testing.T) {
	tp := topo(4, 8)
	// L-shaped group: (0,0),(0,1),(0,2),(1,2) — contiguous chain but
	// not a rectangle.
	dies := []mesh.DieID{
		tp.ID(mesh.Coord{R: 0, C: 0}), tp.ID(mesh.Coord{R: 0, C: 1}),
		tp.ID(mesh.Coord{R: 0, C: 2}), tp.ID(mesh.Coord{R: 1, C: 2}),
	}
	o := Orchestrate(tp, dies, nil)
	if o.Mode() != Bidirectional {
		t.Fatalf("L-shape mode = %v, want bidirectional via greedy chain", o.Mode())
	}
	if got := o.MaxHopsPerRound(); got != 1 {
		t.Errorf("L-shape max hops = %d, want 1", got)
	}
}

func TestOrchestrateScatteredFallsBack(t *testing.T) {
	tp := topo(4, 8)
	// Scattered tetris group with no Hamiltonian neighbor chain.
	dies := []mesh.DieID{
		tp.ID(mesh.Coord{R: 0, C: 0}), tp.ID(mesh.Coord{R: 0, C: 2}),
		tp.ID(mesh.Coord{R: 2, C: 4}), tp.ID(mesh.Coord{R: 3, C: 7}),
	}
	o := Orchestrate(tp, dies, nil)
	if o.Mode() != Fallback {
		t.Fatalf("scattered mode = %v, want fallback", o.Mode())
	}
	if got := o.MaxHopsPerRound(); got <= 1 {
		t.Errorf("scattered group max hops = %d, want >1 (tail latency)", got)
	}
}

// TestTailLatencyRatio quantifies the Fig. 5(a)/Fig. 7 effect: a
// non-ring placement of 8 dies pays ~7× the worst-hop distance of
// TATP's orchestrations.
func TestTailLatencyRatio(t *testing.T) {
	tp := topo(1, 8)
	line := mesh.Rect{R0: 0, C0: 0, R1: 0, C1: 7}
	dies := line.DiesOn(tp)
	tatp := Orchestrate(tp, dies, &line)
	if tatp.MaxHopsPerRound() != 1 {
		t.Fatalf("TATP on line: max hops %d", tatp.MaxHopsPerRound())
	}
	// Force the naive fallback on the same line (logical ring with a
	// 7-hop wrap).
	naive := &Orchestration{Sched: RingSchedule(8), Order: dies, topo: tp}
	if got := naive.MaxHopsPerRound(); got != 7 {
		t.Errorf("naive ring on chain max hops = %d, want 7", got)
	}
}

func TestPhasesRoutedAndValid(t *testing.T) {
	tp := topo(4, 8)
	r := mesh.Rect{R0: 0, C0: 0, R1: 1, C1: 3}
	o := Orchestrate(tp, r.DiesOn(tp), &r)
	phases := o.Phases(16 * unit.MB)
	if len(phases) != o.N() {
		t.Fatalf("%d phases, want %d", len(phases), o.N())
	}
	for _, ph := range phases {
		if err := tp.ValidatePhase(ph); err != nil {
			t.Fatal(err)
		}
	}
	// Ring orchestration on a closed rect: every flow single-hop.
	for _, ph := range phases {
		for _, f := range ph.Flows {
			if f.Route.Hops() != 1 {
				t.Fatalf("ring flow %v crosses %d hops", f, f.Route.Hops())
			}
		}
	}
}

func TestStatsRingVsBidir(t *testing.T) {
	tp := topo(2, 8)
	ringRect := mesh.Rect{R0: 0, C0: 0, R1: 1, C1: 7}
	ring := Orchestrate(tp, ringRect.DiesOn(tp), &ringRect)
	if ring.Mode() != Ring {
		t.Fatal("expected ring mode")
	}
	rs := ring.Stats()
	if rs.MaxHops != 1 {
		t.Errorf("ring stats max hops = %d", rs.MaxHops)
	}
	if rs.BytesPerLink != 1 {
		t.Errorf("ring per-link load = %v sub-tensors, want 1", rs.BytesPerLink)
	}

	lineTp := topo(1, 16)
	line := mesh.Rect{R0: 0, C0: 0, R1: 0, C1: 15}
	bid := Orchestrate(lineTp, line.DiesOn(lineTp), &line)
	bs := bid.Stats()
	if bs.MaxHops != 1 {
		t.Errorf("bidir stats max hops = %d", bs.MaxHops)
	}
	// Bidirectional: at most 1 per direction per link per round; the
	// load metric counts per directed link, so still 1.
	if bs.BytesPerLink != 1 {
		t.Errorf("bidir per-link load = %v, want 1", bs.BytesPerLink)
	}
	// The naive ring on the same open chain pays an (N-1)-hop wrap
	// transfer every round, so it moves strictly more sub-tensor·hops
	// than TATP's bidirectional schedule on the identical hardware.
	ring16 := &Orchestration{Sched: RingSchedule(16), Order: line.DiesOn(lineTp), topo: lineTp}
	if bs.TotalSubTensorHops >= ring16.Stats().TotalSubTensorHops {
		t.Errorf("bidir hops %v should undercut naive-ring-on-chain hops %v",
			bs.TotalSubTensorHops, ring16.Stats().TotalSubTensorHops)
	}
}

func TestOrchestrateSingleDie(t *testing.T) {
	tp := topo(2, 2)
	o := Orchestrate(tp, []mesh.DieID{0}, nil)
	if o.N() != 1 {
		t.Fatalf("N = %d", o.N())
	}
	if got := len(o.Phases(100)); got != 1 {
		t.Fatalf("phases = %d", got)
	}
	if len(o.Phases(100)[0].Flows) != 0 {
		t.Error("single-die group should have no flows")
	}
}

func TestGreedyChainEndpointStart(t *testing.T) {
	tp := topo(1, 5)
	dies := []mesh.DieID{2, 0, 4, 1, 3} // shuffled line
	chain, ok := greedyChain(tp, dies)
	if !ok {
		t.Fatal("greedyChain failed on a line")
	}
	for i := 0; i+1 < len(chain); i++ {
		if !tp.Adjacent(chain[i], chain[i+1]) {
			t.Fatalf("chain %v has non-adjacent step", chain)
		}
	}
}
