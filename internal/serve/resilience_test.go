package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"temp/internal/solver"
	"temp/internal/spec"
)

// spinEvals counts spintest iterations globally, so tests can observe
// whether a solve is still burning evaluations after its client went
// away.
var spinEvals atomic.Int64

// spinStrategy is a registered solver strategy that runs until its
// context ends (bounded by a generous safety cap), recording a
// checkpoint early — the knob the cancellation and drain tests need:
// a solve that never finishes on its own but stops promptly when
// cancelled.
type spinStrategy struct{}

func (spinStrategy) Name() string { return "spintest" }

func (spinStrategy) Solve(ctx context.Context, p solver.Problem, b solver.Budget) (solver.Assignment, solver.Stats) {
	a := make(solver.Assignment, len(p.Graph.Ops))
	st := solver.Stats{Strategy: "spintest"}
	for i := 0; i < 20000; i++ {
		select {
		case <-ctx.Done():
			return a, st
		case <-time.After(time.Millisecond):
		}
		spinEvals.Add(1)
		st.Iterations++
		if b.OnCheckpoint != nil && i%10 == 0 {
			b.OnCheckpoint(solver.Checkpoint{
				Iteration:  i,
				Cost:       float64(1000 - i),
				Assignment: append(solver.Assignment(nil), a...),
			})
		}
	}
	return a, st
}

func init() {
	solver.RegisterStrategy("spintest", func(p solver.Params) (solver.Strategy, error) {
		return spinStrategy{}, nil
	})
}

func spinRequest(id string) []byte {
	sc := spec.ScenarioSpec{
		Name:   "spin",
		Model:  spec.ModelRef{Name: "llama2-7b"},
		Wafer:  spec.WaferRef{Name: "wsc-4x8"},
		Solver: &spec.SolverSpec{Strategy: "spintest"},
	}
	body, _ := json.Marshal(spec.RequestSpec{ID: id, Scenario: &sc})
	return body
}

// waitSpinning blocks until spinEvals moves past from, or fails the
// test.
func waitSpinning(t *testing.T, from int64) {
	t.Helper()
	for i := 0; i < 200; i++ {
		if spinEvals.Load() > from {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("spintest solve never started evaluating")
}

// waitSpinStopped blocks until spinEvals holds still across a
// comfortable window, or fails the test.
func waitSpinStopped(t *testing.T) {
	t.Helper()
	for i := 0; i < 100; i++ {
		before := spinEvals.Load()
		time.Sleep(100 * time.Millisecond)
		if spinEvals.Load() == before {
			return
		}
	}
	t.Fatal("solve kept evaluating long after cancellation")
}

// TestClientDisconnectCancelsSolve: a client hanging up mid-solve
// propagates from r.Context() through the scheduler and the solver
// budget checks — the evaluation counters must stop climbing, and the
// server must count one cancelled solve.
func TestClientDisconnectCancelsSolve(t *testing.T) {
	srv := New(Options{MaxConcurrent: 2, MaxQueue: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	base := spinEvals.Load()
	ctx, cancel := context.WithCancel(context.Background())
	clientDone := make(chan error, 1)
	go func() {
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
			ts.URL+"/v1/solve", bytes.NewReader(spinRequest("hangup")))
		req.Header.Set("Content-Type", "application/json")
		resp, err := ts.Client().Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		clientDone <- err
	}()

	waitSpinning(t, base)
	cancel() // client hangs up mid-solve
	if err := <-clientDone; err == nil {
		t.Fatal("client Do returned nil error after context cancellation")
	}
	waitSpinStopped(t)

	// The handler has unwound once the scheduler is idle again.
	idle, idleCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer idleCancel()
	if err := srv.Scheduler().WaitIdle(idle); err != nil {
		t.Fatalf("scheduler never went idle after disconnect: %v", err)
	}
	m := srv.Metrics()
	if m.CanceledSolves != 1 {
		t.Fatalf("canceled_solves = %d, want 1", m.CanceledSolves)
	}
}

// TestServerDrain: draining rejects new work with 503 + Retry-After,
// lets the grace period lapse, persists the straggler's best-so-far
// checkpoint, cancels it, and reports all of it.
func TestServerDrain(t *testing.T) {
	dir := t.TempDir()
	srv := New(Options{MaxConcurrent: 2, MaxQueue: 4, CheckpointDir: dir})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	base := spinEvals.Load()
	status := make(chan int, 1)
	go func() {
		resp, err := ts.Client().Post(ts.URL+"/v1/solve", "application/json",
			bytes.NewReader(spinRequest("drain-spin")))
		if err != nil {
			status <- -1
			return
		}
		resp.Body.Close()
		status <- resp.StatusCode
	}()
	waitSpinning(t, base)

	grace, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	rep := srv.Drain(grace)
	if rep.Inflight != 1 || rep.Canceled != 1 || rep.Completed != 0 {
		t.Fatalf("drain report = %+v, want 1 in-flight, 1 canceled", rep)
	}
	if len(rep.Checkpoints) != 1 {
		t.Fatalf("drain persisted %d checkpoint files, want 1 (errors: %v)", len(rep.Checkpoints), rep.Errors)
	}
	buf, err := os.ReadFile(rep.Checkpoints[0])
	if err != nil {
		t.Fatal(err)
	}
	var cf checkpointFile
	if err := json.Unmarshal(buf, &cf); err != nil {
		t.Fatal(err)
	}
	if cf.RequestID != "drain-spin" || len(cf.Checkpoints) == 0 {
		t.Fatalf("checkpoint file = %+v, want request drain-spin with recorded checkpoints", cf)
	}
	if cp, ok := cf.Checkpoints["spin"]; !ok || cp.Assignment == nil {
		t.Fatalf("scenario checkpoint missing or empty: %+v", cf.Checkpoints)
	}

	// The cancelled client sees the 499 client-gone status.
	select {
	case code := <-status:
		if code != 499 {
			t.Fatalf("cancelled solve returned HTTP %d, want 499", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled solve never returned")
	}

	// New work is refused while draining, with a retry hint.
	resp, err := ts.Client().Post(ts.URL+"/v1/solve", "application/json",
		bytes.NewReader(spinRequest("late")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("solve during drain: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 during drain carries no Retry-After hint")
	}

	m := srv.Metrics()
	if !m.Draining || m.DrainRejected < 1 || m.CanceledSolves < 1 {
		t.Fatalf("metrics = %+v, want draining with rejects and a canceled solve", m)
	}
}

// TestLoadGenRetries503 covers the load generator's bounded
// Retry-After handling: transient 503s are absorbed and reported,
// persistent 503s surface as request errors once the retry budget is
// spent.
func TestLoadGenRetries503(t *testing.T) {
	mix := []spec.RequestSpec{{ID: "m"}}

	newFake := func(fail int64) *httptest.Server {
		var n atomic.Int64
		mux := http.NewServeMux()
		mux.HandleFunc("/v1/solve", func(w http.ResponseWriter, r *http.Request) {
			if n.Add(1) <= fail {
				w.Header().Set("Retry-After", "0")
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprint(w, `{"error":"draining"}`)
				return
			}
			fmt.Fprint(w, `{"id":"m","results":[]}`)
		})
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, `{}`)
		})
		return httptest.NewServer(mux)
	}

	t.Run("transient", func(t *testing.T) {
		ts := newFake(2)
		defer ts.Close()
		rep, err := RunLoad(LoadOptions{URL: ts.URL, Clients: 1, Passes: 1, Mix: mix})
		if err != nil {
			t.Fatal(err)
		}
		p := rep.Passes[0]
		if p.Errors != 0 {
			t.Fatalf("pass had %d errors; retries should have absorbed the 503s", p.Errors)
		}
		if p.Retries503 != 2 {
			t.Fatalf("retries_503 = %d, want 2", p.Retries503)
		}
	})

	t.Run("bounded", func(t *testing.T) {
		ts := newFake(1 << 30)
		defer ts.Close()
		rep, err := RunLoad(LoadOptions{URL: ts.URL, Clients: 1, Passes: 1, Mix: mix, Max503Retries: 1})
		if err != nil {
			t.Fatal(err)
		}
		p := rep.Passes[0]
		if p.Errors != 1 {
			t.Fatalf("pass errors = %d, want 1 once the retry budget is spent", p.Errors)
		}
		if p.Retries503 != 1 {
			t.Fatalf("retries_503 = %d, want exactly the configured budget 1", p.Retries503)
		}
	})
}
