package sim

import (
	"reflect"
	"testing"
)

// TestRunScenarioSpecsOnMatchesDirect: a scenario batch routed through
// the fabric task codec (JSON spec in, gob wire out) on the in-process
// path reproduces RunScenarioSpecsWithStages bit-for-bit.
func TestRunScenarioSpecsOnMatchesDirect(t *testing.T) {
	specs := batchSpecs(t)
	direct := RunScenarioSpecsWithStages(specs, nil, nil)
	dist := RunScenarioSpecsOn(nil, specs, Overrides{})
	if len(dist) != len(direct) {
		t.Fatalf("result count %d, want %d", len(dist), len(direct))
	}
	for i := range direct {
		if direct[i].Err != nil || dist[i].Err != nil {
			t.Fatalf("scenario %s errored: direct %v, distributed %v",
				specs[i].Name, direct[i].Err, dist[i].Err)
		}
		if !reflect.DeepEqual(direct[i], dist[i]) {
			t.Errorf("scenario %s differs through the task codec:\n got %+v\nwant %+v",
				specs[i].Name, dist[i], direct[i])
		}
	}
}

// TestOverridesStages: empty overrides build no stages; a backend
// override builds only the cost stage.
func TestOverridesStages(t *testing.T) {
	sol, cst, err := Overrides{}.Stages()
	if err != nil || sol != nil || cst != nil {
		t.Fatalf("empty overrides: %v %v %v", sol, cst, err)
	}
	sol, cst, err = Overrides{Backend: "analytic"}.Stages()
	if err != nil || sol != nil || cst == nil {
		t.Fatalf("backend override: %v %v %v", sol, cst, err)
	}
	if _, _, err := (Overrides{Strategy: "no-such-strategy"}).Stages(); err == nil {
		t.Fatal("bogus strategy should not build")
	}
}
