package engine

import (
	"errors"
	"fmt"
	"math"
	"os"
	"reflect"
	"sync"
	"testing"

	"temp/internal/cost"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
)

// diskJob fabricates a distinct normalized job.
func diskJob(i int) Job {
	j := Job{
		Model:  model.GPT3_6_7B(),
		Wafer:  hw.EvaluationWafer(),
		Config: parallel.Config{DP: 1, TP: 1, SP: 1, CP: 1, TATP: 1, PP: 1},
		Opts:   cost.TEMPOptions(),
	}
	j.Model.Layers += i
	return j
}

// diskResult fabricates a result with distinctive bit patterns,
// including an infinity (gob must round-trip every float exactly).
func diskResult(i int) Result {
	var b cost.Breakdown
	b.Model = fmt.Sprintf("m-%d", i)
	b.StepTime = 0.1 * float64(i)
	b.ComputeTime = math.Inf(1)
	b.Memory.Weights = 1.0 / float64(i+3)
	b.ThroughputTokens = float64(i) * 1e9
	return Result{Breakdown: b}
}

func sameResult(a, b Result) bool {
	if !reflect.DeepEqual(a.Breakdown, b.Breakdown) {
		return false
	}
	if (a.Err == nil) != (b.Err == nil) {
		return false
	}
	return a.Err == nil || a.Err.Error() == b.Err.Error()
}

// TestDiskMemoRoundTrip: a cold reopen serves every stored result
// bit-identically, including persisted errors.
func TestDiskMemoRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m1, err := OpenDiskMemo(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	want := make([]Result, n)
	for i := 0; i < n; i++ {
		want[i] = diskResult(i)
		if i == 3 {
			want[i] = Result{Err: errors.New("cost: no viable placement for dp1")}
		}
		if err := m1.Store(diskJob(i), want[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Same-handle lookups hit immediately.
	for i := 0; i < n; i++ {
		r, ok := m1.Lookup(diskJob(i))
		if !ok || !sameResult(r, want[i]) {
			t.Fatalf("warm lookup %d: ok=%v r=%+v", i, ok, r)
		}
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := OpenDiskMemo(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if rec, dropped := m2.Recovered(); rec != n || dropped != 0 {
		t.Fatalf("reopen recovered %d records, dropped %d bytes; want %d, 0", rec, dropped, n)
	}
	for i := 0; i < n; i++ {
		r, ok := m2.Lookup(diskJob(i))
		if !ok {
			t.Fatalf("cold lookup %d missing", i)
		}
		if !sameResult(r, want[i]) {
			t.Fatalf("cold lookup %d: got %+v want %+v", i, r, want[i])
		}
	}
	if _, ok := m2.Lookup(diskJob(n + 5)); ok {
		t.Fatal("lookup of never-stored job reported a hit")
	}
}

// TestDiskMemoCorruptTail: a torn or garbage tail drops only the
// records at and past the corruption, and the reopen compacts the
// file so appends resume cleanly.
func TestDiskMemoCorruptTail(t *testing.T) {
	dir := t.TempDir()
	m1, err := OpenDiskMemo(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := m1.Store(diskJob(i), diskResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	m1.Close()
	path := m1.Path()
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(clean, "garbage tail"...), 0o644); err != nil {
		t.Fatal(err)
	}

	m2, err := OpenDiskMemo(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec, dropped := m2.Recovered(); rec != 4 || dropped == 0 {
		t.Fatalf("recovered %d records, dropped %d; want 4 records and a dropped tail", rec, dropped)
	}
	// The compaction must have restored the exact clean prefix, so a
	// post-recovery append is readable by the next open.
	if err := m2.Store(diskJob(9), diskResult(9)); err != nil {
		t.Fatal(err)
	}
	m2.Close()
	m3, err := OpenDiskMemo(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	if rec, dropped := m3.Recovered(); rec != 5 || dropped != 0 {
		t.Fatalf("post-compaction open recovered %d/%d; want 5 records, 0 dropped", rec, dropped)
	}
	for _, i := range []int{0, 1, 2, 3, 9} {
		if r, ok := m3.Lookup(diskJob(i)); !ok || !sameResult(r, diskResult(i)) {
			t.Fatalf("record %d lost after compaction (ok=%v)", i, ok)
		}
	}
}

// TestDiskMemoCorruptHeader: a file from another schema (or plain
// garbage) is ignored wholesale rather than misread.
func TestDiskMemoCorruptHeader(t *testing.T) {
	dir := t.TempDir()
	m1, err := OpenDiskMemo(dir)
	if err != nil {
		t.Fatal(err)
	}
	m1.Store(diskJob(0), diskResult(0))
	m1.Close()
	data, _ := os.ReadFile(m1.Path())
	data[0] ^= 0xff
	os.WriteFile(m1.Path(), data, 0o644)

	m2, err := OpenDiskMemo(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.Len() != 0 {
		t.Fatalf("foreign-header file yielded %d records, want 0", m2.Len())
	}
	if _, dropped := m2.Recovered(); dropped != len(data) {
		t.Errorf("dropped %d bytes, want the whole %d-byte file", dropped, len(data))
	}
}

// TestDiskMemoConcurrentWriters: two handles on one directory (two
// processes in miniature) appending concurrently interleave whole
// records — a cold open recovers every record from both.
func TestDiskMemoConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenDiskMemo(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenDiskMemo(dir)
	if err != nil {
		t.Fatal(err)
	}
	const per = 32
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < per; i++ {
			a.Store(diskJob(i), diskResult(i))
		}
	}()
	go func() {
		defer wg.Done()
		for i := per; i < 2*per; i++ {
			b.Store(diskJob(i), diskResult(i))
		}
	}()
	wg.Wait()
	a.Close()
	b.Close()

	m, err := OpenDiskMemo(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if rec, dropped := m.Recovered(); rec != 2*per || dropped != 0 {
		t.Fatalf("recovered %d records, dropped %d; want %d, 0", rec, dropped, 2*per)
	}
	for i := 0; i < 2*per; i++ {
		if r, ok := m.Lookup(diskJob(i)); !ok || !sameResult(r, diskResult(i)) {
			t.Fatalf("record %d lost in concurrent append (ok=%v)", i, ok)
		}
	}
}

// TestDiskMemoLookupZeroAllocs pins the warm hit path: a lookup on a
// loaded memo must not allocate.
func TestDiskMemoLookupZeroAllocs(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenDiskMemo(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	j := diskJob(1)
	m.Store(j, diskResult(1))
	m.Lookup(j) // warm the key buffer
	avg := testing.AllocsPerRun(100, func() {
		if _, ok := m.Lookup(j); !ok {
			t.Fatal("lookup missed")
		}
	})
	if avg != 0 {
		t.Errorf("disk-memo hit allocates %.1f objects/op, want 0", avg)
	}
}

// TestPoolWarmStartsFromDiskMemo is the end-to-end two-pass contract:
// a second process (fresh pool, fresh in-memory cache) on the same
// memo directory re-prices nothing and reproduces the first pass
// bit-identically.
func TestPoolWarmStartsFromDiskMemo(t *testing.T) {
	dir := t.TempDir()
	jobs := testJobs(t)

	p1 := New(4)
	d1, err := OpenDiskMemo(dir)
	if err != nil {
		t.Fatal(err)
	}
	p1.SetDiskMemo(d1)
	r1 := p1.Sweep(jobs)
	s1 := p1.Cache().Stats()
	if s1.Misses == 0 || s1.DiskHits != 0 {
		t.Fatalf("cold pass: %+v", s1)
	}
	d1.Close()

	p2 := New(4)
	d2, err := OpenDiskMemo(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	p2.SetDiskMemo(d2)
	r2 := p2.Sweep(jobs)
	s2 := p2.Cache().Stats()
	if s2.Misses != 0 {
		t.Errorf("warm pass re-priced %d jobs, want 0 exact evaluations", s2.Misses)
	}
	if s2.DiskHits != s1.Misses {
		t.Errorf("warm pass disk hits %d, want %d (one per cold miss)", s2.DiskHits, s1.Misses)
	}
	for i := range r1 {
		if !sameResult(r1[i], r2[i]) {
			t.Fatalf("job %d: warm result differs from cold\ncold: %+v\nwarm: %+v", i, r1[i], r2[i])
		}
	}

	// Single-job evaluations warm-start too.
	p3 := New(2)
	p3.SetDiskMemo(d2)
	b, err := p3.Evaluate(jobs[0].Model, jobs[0].Wafer, jobs[0].Config, jobs[0].Opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b, r1[0].Breakdown) {
		t.Error("single evaluate from disk differs from cold sweep result")
	}
	if s3 := p3.Cache().Stats(); s3.Misses != 0 || s3.DiskHits != 1 {
		t.Errorf("single evaluate: %+v, want 0 misses / 1 disk hit", s3)
	}
}

// TestDiskMemoAutoCompaction: when concurrent writers leave more dead
// duplicate records than live ones, the next open compacts the file
// and preserves every live record; below the threshold it leaves the
// file alone.
func TestDiskMemoAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	const n = 40 // live records; 3 handles write each => 120 total, 40 live

	// Three concurrent handles on the same dir (all opened before any
	// write, as racing worker processes would), each appending the
	// same n records: a handle dedupes only against its own index plus
	// what was on disk when it opened, so the file accumulates 3n
	// records of which n are live.
	handles := make([]*DiskMemo, 3)
	for h := range handles {
		m, err := OpenDiskMemo(dir)
		if err != nil {
			t.Fatal(err)
		}
		handles[h] = m
	}
	for _, m := range handles {
		for i := 0; i < n; i++ {
			if err := m.Store(diskJob(i), diskResult(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
	}

	before, err := os.Stat(fmt.Sprintf("%s/costmemo.bin", dir))
	if err != nil {
		t.Fatal(err)
	}
	m, err := OpenDiskMemo(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// 120 parsed, 40 live: 2*40 < 120 triggers compaction.
	if got := m.Compacted(); got != 2*n {
		t.Fatalf("Compacted() = %d, want %d", got, 2*n)
	}
	if m.Len() != n {
		t.Fatalf("Len() = %d after compaction, want %d", m.Len(), n)
	}
	rec, dropped := m.Recovered()
	if rec != n || dropped != 0 {
		t.Fatalf("Recovered() = (%d, %d), want (%d, 0)", rec, dropped, n)
	}
	after, err := os.Stat(m.Path())
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink the file: %d -> %d bytes", before.Size(), after.Size())
	}
	// Every live record survived, bit-identical.
	for i := 0; i < n; i++ {
		r, ok := m.Lookup(diskJob(i))
		if !ok {
			t.Fatalf("record %d lost by compaction", i)
		}
		if !sameResult(r, diskResult(i)) {
			t.Fatalf("record %d corrupted by compaction", i)
		}
	}

	// The compacted file is clean: a further reopen parses exactly the
	// live records and compacts nothing.
	m2, err := OpenDiskMemo(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if c := m2.Compacted(); c != 0 {
		t.Fatalf("reopen after compaction compacted %d more records", c)
	}
	if rec, _ := m2.Recovered(); rec != n {
		t.Fatalf("reopen recovered %d records, want %d", rec, n)
	}
}

// TestDiskMemoCompactionThreshold: duplicate ratios at or above 1/2
// live leave the file untouched (strict threshold), and files under
// the minimum record count never compact.
func TestDiskMemoCompactionThreshold(t *testing.T) {
	// Exactly half live (two concurrent handles, same records): 80
	// total, 40 live — 2*40 < 80 is false, so no compaction.
	dir := t.TempDir()
	const n = 40
	ha, err := OpenDiskMemo(dir)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := OpenDiskMemo(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*DiskMemo{ha, hb} {
		for i := 0; i < n; i++ {
			if err := m.Store(diskJob(i), diskResult(i)); err != nil {
				t.Fatal(err)
			}
		}
		m.Close()
	}
	m, err := OpenDiskMemo(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c := m.Compacted(); c != 0 {
		t.Fatalf("compacted %d records at exactly-half live ratio", c)
	}
	if rec, _ := m.Recovered(); rec != 2*n {
		t.Fatalf("recovered %d, want %d", rec, 2*n)
	}
	m.Close()

	// Tiny file, terrible ratio (4 total, 1 live) but under the
	// 64-record floor: no compaction.
	dir2 := t.TempDir()
	tiny := make([]*DiskMemo, 4)
	for h := range tiny {
		if tiny[h], err = OpenDiskMemo(dir2); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range tiny {
		if err := m.Store(diskJob(0), diskResult(0)); err != nil {
			t.Fatal(err)
		}
		m.Close()
	}
	m2, err := OpenDiskMemo(dir2)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if c := m2.Compacted(); c != 0 {
		t.Fatalf("compacted %d records under the minimum-record floor", c)
	}
}
