package stream

import (
	"testing"
)

// TestRingScheduleValid validates the naive ring for a range of
// group sizes.
func TestRingScheduleValid(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 16, 32} {
		s := RingSchedule(n)
		if err := s.Validate(); err != nil {
			t.Errorf("ring N=%d: %v", n, err)
		}
		if s.Mode != Ring {
			t.Errorf("ring N=%d mode = %v", n, s.Mode)
		}
	}
}

// TestBidirectionalScheduleValid validates TATP's schedule — the
// central correctness property of Algorithm 1.
func TestBidirectionalScheduleValid(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 31, 32} {
		s := BidirectionalSchedule(n)
		if err := s.Validate(); err != nil {
			t.Errorf("bidir N=%d: %v", n, err)
		}
	}
}

// TestBidirectionalSingleHop checks every send moves between adjacent
// chain positions — the "all data transfers traverse at most one
// physical hop" guarantee of §V.
func TestBidirectionalSingleHop(t *testing.T) {
	for _, n := range []int{2, 4, 7, 8, 16} {
		s := BidirectionalSchedule(n)
		for t_, sends := range s.Sends {
			for _, snd := range sends {
				d := snd.From - snd.To
				if d != 1 && d != -1 {
					t.Fatalf("N=%d round %d: send %+v is not single-hop", n, t_, snd)
				}
			}
		}
	}
}

// TestRingWrapIsLongOnChain: the ring schedule's wrap send (0→N-1)
// spans the whole chain — the tail-latency defect TATP eliminates.
func TestRingWrapIsLongOnChain(t *testing.T) {
	n := 8
	s := RingSchedule(n)
	foundWrap := false
	for _, sends := range s.Sends {
		for _, snd := range sends {
			if snd.From == 0 && snd.To == n-1 {
				foundWrap = true
			}
		}
	}
	if !foundWrap {
		t.Fatal("ring schedule has no wrap-around send")
	}
}

// TestBidirectionalOnePerRound: each position computes exactly one
// distinct sub-output per round (workload balance, §V).
func TestBidirectionalOnePerRound(t *testing.T) {
	n := 8
	s := BidirectionalSchedule(n)
	for tt := 0; tt < n; tt++ {
		if len(s.Compute[tt]) != n {
			t.Fatalf("round %d has %d computes", tt, len(s.Compute[tt]))
		}
	}
}

// TestBidirectionalMatchesFig8 pins the worked example of Fig. 8(c)
// for N=4: Die 3 (descending) computes O33, O32, O31, O30 in rounds
// 0..3; Die 0 (ascending) computes O00, O01, O02, O03.
func TestBidirectionalMatchesFig8(t *testing.T) {
	s := BidirectionalSchedule(4)
	wantDie0 := []int{0, 1, 2, 3}
	wantDie3 := []int{3, 2, 1, 0}
	for tt := 0; tt < 4; tt++ {
		if s.Compute[tt][0] != wantDie0[tt] {
			t.Errorf("die0 round %d uses W%d, want W%d", tt, s.Compute[tt][0], wantDie0[tt])
		}
		if s.Compute[tt][3] != wantDie3[tt] {
			t.Errorf("die3 round %d uses W%d, want W%d", tt, s.Compute[tt][3], wantDie3[tt])
		}
	}
}

// TestVolumeFactors: both schedules conserve total transfer volume —
// the bidirectional schedule splits each sub-tensor's N-1 hops
// between the two directions instead of duplicating them.
func TestVolumeFactors(t *testing.T) {
	if v := RingSchedule(8).VolumeFactor; v != 1 {
		t.Errorf("ring volume factor = %v", v)
	}
	for _, n := range []int{4, 8, 16, 32} {
		v := BidirectionalSchedule(n).VolumeFactor
		if v != 1 {
			t.Errorf("bidir N=%d volume factor = %v, want exactly 1 (volume conservation)", n, v)
		}
	}
}

// TestPeakBuffer: the ring buffers O(1) sub-tensors; the
// bidirectional schedule buffers ≈N/2+2 on middle dies (the price of
// wrap-free scheduling, documented in DESIGN.md).
func TestPeakBuffer(t *testing.T) {
	for _, n := range []int{4, 8, 16} {
		ring := RingSchedule(n).PeakBuffer
		if ring > 3 {
			t.Errorf("ring N=%d peak buffer = %d, want ≤3", n, ring)
		}
		bidir := BidirectionalSchedule(n).PeakBuffer
		if bidir > n/2+2 {
			t.Errorf("bidir N=%d peak buffer = %d, want ≤N/2+2", n, bidir)
		}
	}
}

// TestMaxSendsPerRound: bidirectional positions send at most one
// sub-tensor per direction per round.
func TestMaxSendsPerRound(t *testing.T) {
	for _, n := range []int{4, 8, 16} {
		if got := BidirectionalSchedule(n).MaxSendsPerRound(); got > 2 {
			t.Errorf("bidir N=%d max sends per round = %d, want ≤2", n, got)
		}
		if got := RingSchedule(n).MaxSendsPerRound(); got > 1 {
			t.Errorf("ring N=%d max sends per round = %d, want ≤1", n, got)
		}
	}
}

// TestPerLinkOnePayloadPerRound: in the bidirectional schedule each
// directed chain link carries at most one sub-tensor per round
// (contention-free streaming).
func TestPerLinkOnePayloadPerRound(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32} {
		s := BidirectionalSchedule(n)
		for tt, sends := range s.Sends {
			link := map[[2]int]int{}
			for _, snd := range sends {
				link[[2]int{snd.From, snd.To}]++
			}
			for l, c := range link {
				if c > 1 {
					t.Fatalf("N=%d round %d: link %v carries %d sub-tensors", n, tt, l, c)
				}
			}
		}
	}
}

func TestSchedulePanicsOnBadN(t *testing.T) {
	for _, f := range []func(){func() { RingSchedule(0) }, func() { BidirectionalSchedule(-1) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("schedule with non-positive N did not panic")
				}
			}()
			f()
		}()
	}
}

func TestValidateCatchesBrokenSchedules(t *testing.T) {
	s := BidirectionalSchedule(4)
	// Corrupt a compute assignment to use a tensor before arrival.
	s.Compute[0][0] = 3
	if err := s.Validate(); err == nil {
		t.Error("corrupted schedule passed validation")
	}
	s2 := BidirectionalSchedule(4)
	// Duplicate a consumption.
	s2.Compute[3][0] = s2.Compute[0][0]
	if err := s2.Validate(); err == nil {
		t.Error("duplicate consumption passed validation")
	}
	s3 := RingSchedule(4)
	s3.Sends[0] = append(s3.Sends[0], Send{From: 2, To: 1, SubT: 0})
	if err := s3.Validate(); err == nil {
		t.Error("forwarding an unheld tensor passed validation")
	}
}

func TestSelectOperand(t *testing.T) {
	if got := SelectOperand(100, 300); got != StreamWeights {
		t.Errorf("larger input should stream weights, got %v", got)
	}
	if got := SelectOperand(300, 100); got != StreamInputs {
		t.Errorf("larger weights should stream inputs, got %v", got)
	}
	if StreamWeights.String() != "weights" || StreamInputs.String() != "inputs" {
		t.Error("Operand strings wrong")
	}
}

func TestModeString(t *testing.T) {
	if Ring.String() != "ring" || Bidirectional.String() != "bidir" || Fallback.String() != "fallback" {
		t.Error("mode strings wrong")
	}
}
