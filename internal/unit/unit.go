// Package unit provides the physical units, scalar types and
// formatting helpers shared by every other package in the TEMP
// reproduction. Times are seconds, data sizes are bytes, rates are
// bytes/second or FLOP/second, and energies are joules, all carried
// as float64 so that analytic cost expressions compose naturally.
package unit

import "fmt"

// Convenient scale constants. Data sizes use binary prefixes to match
// memory-capacity accounting; rates use decimal prefixes to match
// vendor datasheets (a 4 TB/s link moves 4e12 bytes per second).
const (
	KiB float64 = 1024
	MiB float64 = 1024 * KiB
	GiB float64 = 1024 * MiB
	TiB float64 = 1024 * GiB

	KB float64 = 1e3
	MB float64 = 1e6
	GB float64 = 1e9
	TB float64 = 1e12

	GFLOPS float64 = 1e9
	TFLOPS float64 = 1e12
	PFLOPS float64 = 1e15

	Nanosecond  float64 = 1e-9
	Microsecond float64 = 1e-6
	Millisecond float64 = 1e-3

	PicoJoule float64 = 1e-12
)

// DType identifies a tensor element type.
type DType int

const (
	// FP16 is the 2-byte IEEE half used for weights/activations in
	// mixed-precision training (§VIII-A).
	FP16 DType = iota
	// BF16 is the 2-byte bfloat16 format.
	BF16
	// FP32 is the 4-byte single used for optimizer state.
	FP32
	// FP8 is the 1-byte float used in some inference paths.
	FP8
	// INT8 is a 1-byte integer type.
	INT8
)

// Size returns the element size in bytes.
func (d DType) Size() float64 {
	switch d {
	case FP16, BF16:
		return 2
	case FP32:
		return 4
	case FP8, INT8:
		return 1
	default:
		return 4
	}
}

// String implements fmt.Stringer.
func (d DType) String() string {
	switch d {
	case FP16:
		return "fp16"
	case BF16:
		return "bf16"
	case FP32:
		return "fp32"
	case FP8:
		return "fp8"
	case INT8:
		return "int8"
	default:
		return fmt.Sprintf("dtype(%d)", int(d))
	}
}

// Bytes formats a byte count with a binary-prefix unit, e.g. "1.50GiB".
func Bytes(b float64) string {
	switch {
	case b >= TiB:
		return fmt.Sprintf("%.2fTiB", b/TiB)
	case b >= GiB:
		return fmt.Sprintf("%.2fGiB", b/GiB)
	case b >= MiB:
		return fmt.Sprintf("%.2fMiB", b/MiB)
	case b >= KiB:
		return fmt.Sprintf("%.2fKiB", b/KiB)
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}

// Seconds formats a duration given in seconds with an adaptive unit.
func Seconds(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.3fs", s)
	case s >= Millisecond:
		return fmt.Sprintf("%.3fms", s/Millisecond)
	case s >= Microsecond:
		return fmt.Sprintf("%.3fus", s/Microsecond)
	default:
		return fmt.Sprintf("%.1fns", s/Nanosecond)
	}
}

// Flops formats an operation count.
func Flops(f float64) string {
	switch {
	case f >= PFLOPS:
		return fmt.Sprintf("%.2fPFLOP", f/PFLOPS)
	case f >= TFLOPS:
		return fmt.Sprintf("%.2fTFLOP", f/TFLOPS)
	case f >= GFLOPS:
		return fmt.Sprintf("%.2fGFLOP", f/GFLOPS)
	default:
		return fmt.Sprintf("%.0fFLOP", f)
	}
}

// Rate formats a bandwidth in bytes/second.
func Rate(r float64) string {
	switch {
	case r >= TB:
		return fmt.Sprintf("%.2fTB/s", r/TB)
	case r >= GB:
		return fmt.Sprintf("%.2fGB/s", r/GB)
	case r >= MB:
		return fmt.Sprintf("%.2fMB/s", r/MB)
	default:
		return fmt.Sprintf("%.0fB/s", r)
	}
}

// Clamp returns v limited to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// CeilDiv returns ceil(a/b) for positive integers.
func CeilDiv(a, b int) int {
	if b <= 0 {
		panic("unit: CeilDiv by non-positive divisor")
	}
	return (a + b - 1) / b
}

// MaxF returns the larger of two float64s without pulling in math.Max
// call overhead in hot loops.
func MaxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// MinF returns the smaller of two float64s.
func MinF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
