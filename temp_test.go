package temp

import "testing"

// TestPublicAPISurface smoke-tests the exported facade end to end.
func TestPublicAPISurface(t *testing.T) {
	w := EvaluationWafer()
	m := GPT3_6_7B()

	b, err := Evaluate(m, w, ParallelConfig{DP: 4, TATP: 8}, TEMPOptions())
	if err != nil {
		t.Fatal(err)
	}
	if b.StepTime <= 0 || b.ThroughputTokens <= 0 {
		t.Fatalf("degenerate breakdown: %+v", b)
	}

	best, err := BestTEMP(m, w)
	if err != nil {
		t.Fatal(err)
	}
	if !best.Feasible {
		t.Fatal("no feasible TEMP configuration")
	}
	if best.StepTime > b.StepTime*(1+1e-9) {
		t.Errorf("BestTEMP (%v) slower than a manual config (%v)", best.StepTime, b.StepTime)
	}
}

func TestPublicSolver(t *testing.T) {
	w := EvaluationWafer()
	m := GPT3_6_7B()
	g := BlockGraph(m)
	cm := &AnalyticCostModel{W: w, M: m}
	space := TEMPSystem().Configs(w.Dies())
	assign, stats, err := DLS(g, space, cm, DLSOptions{Seed: 1, DisableGA: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != len(g.Ops) {
		t.Fatalf("assignment covers %d ops, want %d", len(assign), len(g.Ops))
	}
	if stats.DPCost <= 0 {
		t.Errorf("DP cost %v", stats.DPCost)
	}
}

func TestPublicExperimentRunner(t *testing.T) {
	tab, err := RunExperiment("fig5", true)
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "fig5" || len(tab.Rows) == 0 {
		t.Fatalf("unexpected table: %+v", tab)
	}
	if _, err := RunExperiment("no-such-id", true); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

func TestPublicFaultSurface(t *testing.T) {
	v, err := FaultNormalizedThroughput(GPT3_6_7B(), EvaluationWafer(),
		ParallelConfig{DP: 4, TATP: 8}, TEMPOptions(),
		FaultInjection{CoreRate: 0.1, CoresPerDie: 64}, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0.5 || v > 1.0 {
		t.Errorf("normalized throughput at 10%% core faults = %v", v)
	}
}
