package distrib

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// Handler executes one task: decode the payload, do the work, encode
// the result. Handlers run inside workers (and in-process when the
// fabric degrades), so they must be deterministic functions of the
// payload plus process-level configuration the coordinator replicated
// to every worker (model/wafer/backend overrides, memo dir, workers).
// ctx ends when the task's shard is cancelled (the coordinator's Run
// context ended, or the shard was requeued elsewhere); handlers
// should stop early and may return ctx.Err().
type Handler func(ctx context.Context, payload []byte) ([]byte, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Handler{}
)

// RegisterKind installs the handler for a task kind. Consuming
// packages register in init(), so any binary that links them (the
// CLIs run themselves as workers) serves their kinds automatically.
func RegisterKind(kind string, h Handler) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[kind]; dup {
		panic(fmt.Sprintf("distrib: duplicate kind %q", kind))
	}
	registry[kind] = h
}

func lookupKind(kind string) Handler {
	regMu.RLock()
	defer regMu.RUnlock()
	return registry[kind]
}

// Kinds returns the registered kind names, sorted.
func Kinds() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// HandlerGob adapts a typed task function into a Handler with gob
// payloads — the default for plain-struct task shapes.
func HandlerGob[I, O any](fn func(context.Context, I) (O, error)) Handler {
	return func(ctx context.Context, payload []byte) ([]byte, error) {
		var in I
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&in); err != nil {
			return nil, fmt.Errorf("distrib: decode task: %w", err)
		}
		out, err := fn(ctx, in)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&out); err != nil {
			return nil, fmt.Errorf("distrib: encode result: %w", err)
		}
		return buf.Bytes(), nil
	}
}

// HandlerJSON is HandlerGob with JSON payloads, for task shapes that
// already have canonical JSON forms (scenario specs with custom
// marshalers that gob cannot see through).
func HandlerJSON[I, O any](fn func(context.Context, I) (O, error)) Handler {
	return func(ctx context.Context, payload []byte) ([]byte, error) {
		var in I
		if err := json.Unmarshal(payload, &in); err != nil {
			return nil, fmt.Errorf("distrib: decode task: %w", err)
		}
		out, err := fn(ctx, in)
		if err != nil {
			return nil, err
		}
		b, err := json.Marshal(&out)
		if err != nil {
			return nil, fmt.Errorf("distrib: encode result: %w", err)
		}
		return b, nil
	}
}

// EncodeGob / DecodeGob are the coordinator-side complements of
// HandlerGob for building task payload slices and reading results.
func EncodeGob[T any](v T) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func DecodeGob[T any](b []byte) (T, error) {
	var v T
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&v)
	return v, err
}

// RunTasks shards typed inputs through the fabric (or in-process when
// f is nil or has no live workers) and decodes the outputs back into
// their input order. errs[i] is non-nil when task i's handler failed.
func RunTasks[I, O any](f *Fabric, kind string, inputs []I) ([]O, []error) {
	return RunTasksCtx[I, O](context.Background(), f, kind, inputs)
}

// RunTasksCtx is RunTasks with cancellation: unfinished tasks report
// ctx.Err() once the context ends.
func RunTasksCtx[I, O any](ctx context.Context, f *Fabric, kind string, inputs []I) ([]O, []error) {
	payloads := make([][]byte, len(inputs))
	outs := make([]O, len(inputs))
	errs := make([]error, len(inputs))
	for i, in := range inputs {
		b, err := EncodeGob(in)
		if err != nil {
			errs[i] = err
			return outs, errs
		}
		payloads[i] = b
	}
	raw, rawErrs := f.RunCtx(ctx, kind, payloads)
	for i := range raw {
		if rawErrs[i] != nil {
			errs[i] = rawErrs[i]
			continue
		}
		v, err := DecodeGob[O](raw[i])
		if err != nil {
			errs[i] = err
			continue
		}
		outs[i] = v
	}
	return outs, errs
}
