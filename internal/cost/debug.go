package cost

import (
	"fmt"

	"temp/internal/hw"
	"temp/internal/mesh"
	"temp/internal/model"
	"temp/internal/parallel"
	"temp/internal/unit"
)

// Debug returns a per-component trace of one evaluation; used by the
// calibration tooling and kept exported for cmd/tempsim -debug.
func Debug(m model.Config, w hw.Wafer, cfg parallel.Config, o Options) string {
	cfg = cfg.Normalize()
	topo := mesh.FromWafer(w)
	var place *parallel.Placement
	var err error
	if o.Engine == SMap {
		place, err = parallel.PlaceLinear(cfg, topo)
	} else {
		place, err = parallel.Place(cfg, topo)
	}
	if err != nil {
		return err.Error()
	}
	ev := &evaluator{m: m, w: w, cfg: cfg, o: o, topo: topo,
		st: newEvalState(topo, place, o.Engine == TCMEEngine), graph: model.BlockGraph(m)}
	mb := o.microbatch()
	fwd, extra := ev.layerCompute(mb)
	st := ev.layerStreamComm(mb, 1, true)
	coll := ev.layerCollectives(mb)
	dp := ev.dpAllReduce(m.Layers)
	return fmt.Sprintf("fwd/layer=%s recomp=%s stream/layer=%s coll/layer=%s dpAR=%s",
		unit.Seconds(fwd), unit.Seconds(extra), unit.Seconds(st), unit.Seconds(coll), unit.Seconds(dp))
}
