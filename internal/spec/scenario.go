package spec

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"temp/internal/baselines"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
)

// strictUnmarshal decodes JSON rejecting unknown fields, so typos
// inside nested inline specs surface as errors exactly like top-level
// ones (custom UnmarshalJSON methods do not inherit the outer
// decoder's DisallowUnknownFields setting).
func strictUnmarshal(b []byte, v any) error {
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// ModelRef names a registered model ("gpt3-175b") or defines one
// inline. In JSON it is either a string or a ModelSpec object.
type ModelRef struct {
	Name string
	Spec *ModelSpec
}

// UnmarshalJSON accepts a registry name or an inline spec.
func (r *ModelRef) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		return json.Unmarshal(b, &r.Name)
	}
	r.Spec = &ModelSpec{}
	return strictUnmarshal(b, r.Spec)
}

// MarshalJSON renders the name form when no inline spec is present.
func (r ModelRef) MarshalJSON() ([]byte, error) {
	if r.Spec != nil {
		return json.Marshal(r.Spec)
	}
	return json.Marshal(r.Name)
}

// resolve builds the model.
func (r ModelRef) resolve() (model.Config, error) {
	if r.Spec != nil {
		return r.Spec.Model()
	}
	if r.Name == "" {
		return model.Config{}, fmt.Errorf("spec: scenario has no model (name or inline spec)")
	}
	return LookupModel(r.Name)
}

// WaferRef names a registered wafer or defines one inline.
type WaferRef struct {
	Name string
	Spec *WaferSpec
}

// UnmarshalJSON accepts a registry name or an inline spec.
func (r *WaferRef) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		return json.Unmarshal(b, &r.Name)
	}
	r.Spec = &WaferSpec{}
	return strictUnmarshal(b, r.Spec)
}

// MarshalJSON renders the name form when no inline spec is present.
func (r WaferRef) MarshalJSON() ([]byte, error) {
	if r.Spec != nil {
		return json.Marshal(r.Spec)
	}
	return json.Marshal(r.Name)
}

// resolve builds the wafer.
func (r WaferRef) resolve() (hw.Wafer, error) {
	if r.Spec != nil {
		return r.Spec.Wafer()
	}
	if r.Name == "" {
		return hw.Wafer{}, fmt.Errorf("spec: scenario has no wafer (name or inline spec)")
	}
	return LookupWafer(r.Name)
}

// SystemRef names a registered system or defines one inline. The
// empty reference resolves to TEMP.
type SystemRef struct {
	Name string
	Spec *SystemSpec
}

// UnmarshalJSON accepts a registry name or an inline spec.
func (r *SystemRef) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		return json.Unmarshal(b, &r.Name)
	}
	r.Spec = &SystemSpec{}
	return strictUnmarshal(b, r.Spec)
}

// MarshalJSON renders the name form when no inline spec is present.
func (r SystemRef) MarshalJSON() ([]byte, error) {
	if r.Spec != nil {
		return json.Marshal(r.Spec)
	}
	return json.Marshal(r.Name)
}

// resolve builds the system.
func (r SystemRef) resolve() (baselines.System, error) {
	if r.Spec != nil {
		return r.Spec.System()
	}
	if r.Name == "" {
		return baselines.TEMP(), nil
	}
	return LookupSystem(r.Name)
}

// ScenarioSpec is one serializable evaluation scenario: a model on a
// wafer under a system, either swept over the system's configuration
// space or pinned to one explicit configuration, optionally across
// multiple wafers and under fault injection.
type ScenarioSpec struct {
	Name   string    `json:"name,omitempty"`
	Model  ModelRef  `json:"model"`
	Wafer  WaferRef  `json:"wafer"`
	System SystemRef `json:"system,omitempty"`
	// Config pins one configuration; nil sweeps the system's space.
	Config *ConfigSpec `json:"config,omitempty"`
	// Wafers > 1 evaluates the §VIII-E multi-wafer assembly.
	Wafers int `json:"wafers,omitempty"`
	// Seq/Batch override the model's sequence length and batch size
	// (the Fig. 17/18 long-sequence studies).
	Seq   int `json:"seq,omitempty"`
	Batch int `json:"batch,omitempty"`
	// Fault adds §VIII-F fault injection on top of the evaluation.
	Fault *FaultSpec `json:"fault,omitempty"`
	// Solver adds a per-operator partition-mapping search stage (the
	// §VII dual-level solver or any registered strategy) on top of
	// the evaluation.
	Solver *SolverSpec `json:"solver,omitempty"`
	// Cost selects the cost backend (fidelity tier) pricing the
	// scenario; nil means the analytic tier.
	Cost *CostSpec `json:"cost,omitempty"`
	// Distrib optionally declares the batch's worker-process fan-out
	// (CLI -distribute overrides it).
	Distrib *DistribSpec `json:"distrib,omitempty"`
}

// Scenario is a resolved, validated ScenarioSpec: concrete domain
// objects ready for sim.RunScenario.
type Scenario struct {
	Name   string
	Model  model.Config
	Wafer  hw.Wafer
	System baselines.System
	// Config is nil when the scenario sweeps the system's space.
	Config *parallel.Config
	Wafers int
	Fault  *FaultSpec
	// Solver is the resolved optional search stage.
	Solver *SolverStage
	// Cost is the resolved cost backend stage; nil means analytic.
	Cost *CostStage
}

// Validate resolves the spec and reports the first problem.
func (s ScenarioSpec) Validate() error {
	_, err := s.Resolve()
	return err
}

// Resolve builds and validates every referenced component.
func (s ScenarioSpec) Resolve() (Scenario, error) {
	m, err := s.Model.resolve()
	if err != nil {
		return Scenario{}, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if s.Seq > 0 {
		m = m.WithSeq(s.Seq, s.Batch)
	} else if s.Batch > 0 {
		m.Batch = s.Batch
	}
	w, err := s.Wafer.resolve()
	if err != nil {
		return Scenario{}, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	sys, err := s.System.resolve()
	if err != nil {
		return Scenario{}, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if err := s.Distrib.validate(s.Name); err != nil {
		return Scenario{}, err
	}
	sc := Scenario{
		Name: s.Name, Model: m, Wafer: w, System: sys,
		Wafers: s.Wafers, Fault: s.Fault,
	}
	if sc.Wafers < 1 {
		sc.Wafers = 1
	}
	dies := w.Dies()
	if s.Config != nil {
		cfg := s.Config.Config()
		if cfg.Degree() != dies {
			return Scenario{}, fmt.Errorf("scenario %q: config %s has degree %d but wafer %s has %d dies",
				s.Name, cfg, cfg.Degree(), w.Name, dies)
		}
		sc.Config = &cfg
	} else if dies&(dies-1) != 0 {
		// The sweep enumerates power-of-two degrees whose product must
		// equal the die count; a non-power-of-two grid has an empty
		// space. Pinning an explicit config is still allowed above.
		return Scenario{}, fmt.Errorf("scenario %q: wafer %s has %d dies (%dx%d), not a power of two; config sweeps need power-of-two grids (or pin an explicit config)",
			s.Name, w.Name, dies, w.Rows, w.Cols)
	}
	if sc.Fault != nil {
		if sc.Fault.LinkRate < 0 || sc.Fault.LinkRate > 1 ||
			sc.Fault.CoreRate < 0 || sc.Fault.CoreRate > 1 {
			return Scenario{}, fmt.Errorf("scenario %q: fault rates must lie in [0,1]", s.Name)
		}
		if sc.Fault.Repair != nil {
			if _, err := sc.Fault.Repair.Options(); err != nil {
				return Scenario{}, fmt.Errorf("scenario %q: %w", s.Name, err)
			}
		}
		if sc.Fault.Campaign != nil {
			if err := sc.Fault.Campaign.Validate(); err != nil {
				return Scenario{}, fmt.Errorf("scenario %q: %w", s.Name, err)
			}
		}
	}
	if s.Cost != nil {
		stage, err := s.Cost.Build()
		if err != nil {
			return Scenario{}, fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		sc.Cost = stage
	}
	if s.Solver != nil {
		if dies&(dies-1) != 0 {
			return Scenario{}, fmt.Errorf("scenario %q: solver stage needs a power-of-two die count, wafer %s has %d",
				s.Name, w.Name, dies)
		}
		stage, err := s.Solver.Build()
		if err != nil {
			return Scenario{}, fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		sc.Solver = stage
	}
	return sc, nil
}

// ParseScenario decodes one scenario spec from JSON, rejecting
// unknown fields so typos surface as errors instead of silently
// evaluating the wrong scenario.
func ParseScenario(data []byte) (ScenarioSpec, error) {
	var s ScenarioSpec
	if err := strictUnmarshal(data, &s); err != nil {
		return ScenarioSpec{}, fmt.Errorf("spec: parsing scenario: %w", err)
	}
	return s, nil
}

// LoadScenario reads one scenario spec from a JSON file. A missing
// name defaults to the file's base name.
func LoadScenario(path string) (ScenarioSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return ScenarioSpec{}, fmt.Errorf("spec: %w", err)
	}
	s, err := ParseScenario(data)
	if err != nil {
		return ScenarioSpec{}, fmt.Errorf("%s: %w", path, err)
	}
	if s.Name == "" {
		s.Name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}
	return s, nil
}

// LoadScenarioDir reads every *.json file in a directory (sorted by
// file name) as a scenario batch.
func LoadScenarioDir(dir string) ([]ScenarioSpec, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	var paths []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("spec: no *.json scenarios in %s", dir)
	}
	out := make([]ScenarioSpec, 0, len(paths))
	for _, p := range paths {
		s, err := LoadScenario(p)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
