// Package baselines encodes the comparison systems of §VIII-A as
// declarative descriptors: three partitioning schemes (Megatron-1,
// Megatron-3/MeSP, FSDP) crossed with two mapping engines (SMap,
// GMap), plus TEMP itself. Each system knows which hybrid parallel
// configurations it may legally choose from, so "the best
// configuration of each baseline" — the footing every figure compares
// on — is a brute-force sweep of that space through the shared cost
// model.
package baselines

import (
	"fmt"
	"math"

	"temp/internal/cost"
	"temp/internal/engine"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
)

// System is one evaluated training system.
type System struct {
	Name string
	// Opts carries the engine and execution conventions.
	Opts cost.Options
	// Configs enumerates the candidate hybrid configurations for a
	// die budget.
	Configs func(dies int) []parallel.Config
}

// megatron1Configs: DP × TP only (the paper's Megatron-1 hierarchy
// minus intra-wafer PP, which §II-A excludes on WSCs).
func megatron1Configs(dies int) []parallel.Config {
	var out []parallel.Config
	for tp := 1; tp <= dies; tp *= 2 {
		if dies%tp != 0 {
			continue
		}
		dp := dies / tp
		if dp&(dp-1) != 0 {
			continue
		}
		out = append(out, parallel.Config{DP: dp, TP: tp})
	}
	return out
}

// mespConfigs: DP × TP × SP with Megatron-3 fused sequence
// parallelism, plus context parallelism for long sequences.
func mespConfigs(dies int) []parallel.Config {
	var out []parallel.Config
	for tp := 1; tp <= dies; tp *= 2 {
		for sp := 1; tp*sp <= dies; sp *= 2 {
			for cp := 1; tp*sp*cp <= dies; cp *= 2 {
				rest := dies / (tp * sp * cp)
				if tp*sp*cp*rest != dies || rest&(rest-1) != 0 {
					continue
				}
				out = append(out, parallel.Config{
					DP: rest, TP: tp, SP: sp, CP: cp, MegatronSP: true,
				})
			}
		}
	}
	return out
}

// fsdpConfigs: fully sharded data parallelism, optionally combined
// with TP for models whose single-layer working set overflows.
func fsdpConfigs(dies int) []parallel.Config {
	var out []parallel.Config
	for tp := 1; tp <= 8 && tp <= dies; tp *= 2 {
		dp := dies / tp
		if dp*tp != dies || dp&(dp-1) != 0 || dp == 1 {
			continue
		}
		out = append(out, parallel.Config{DP: dp, TP: tp, FSDP: true})
	}
	return out
}

// tempConfigs: the full TEMP space — DP, TP, SP, CP and TATP.
func tempConfigs(dies int) []parallel.Config {
	var out []parallel.Config
	for _, c := range parallel.EnumerateConfigs(dies, true, 0) {
		out = append(out, c)
		if c.SP > 1 {
			sc := c
			sc.MegatronSP = false
			out = append(out, sc)
		}
	}
	return out
}

// Megatron1 returns the Megatron-1 system under an engine. Its
// conventions are period-accurate: no flash attention, no selective
// recomputation (full activation stash) and no distributed optimizer
// — which is what produces the replication and OOM behaviour of
// Figs. 4 and 13.
func Megatron1(e cost.Engine) System {
	return System{
		Name: "Mega+" + e.String(),
		Opts: cost.Options{
			Engine:           e,
			Recompute:        cost.RecomputeNone,
			Microbatch:       1,
			NoFlashAttention: true,
		},
		Configs: megatron1Configs,
	}
}

// MeSP returns the Megatron-3 (+SP/CP) system under an engine.
func MeSP(e cost.Engine) System {
	return System{
		Name:    "MeSP+" + e.String(),
		Opts:    cost.Options{Engine: e, Recompute: cost.RecomputeSelective, DistributedOptimizer: true},
		Configs: mespConfigs,
	}
}

// FSDP returns the fully-sharded system under an engine.
func FSDP(e cost.Engine) System {
	return System{
		Name:    "FSDP+" + e.String(),
		Opts:    cost.Options{Engine: e, Recompute: cost.RecomputeFull, DistributedOptimizer: true},
		Configs: fsdpConfigs,
	}
}

// TEMP returns the full TEMP system (TCME engine, TATP enabled).
func TEMP() System {
	return System{
		Name:    "TEMP",
		Opts:    cost.TEMPOptions(),
		Configs: tempConfigs,
	}
}

// Six returns the paper's six baselines in A–F order:
// Mega+SMap, Mega+GMap, MeSP+SMap, MeSP+GMap, FSDP+SMap, FSDP+GMap.
func Six() []System {
	return []System{
		Megatron1(cost.SMap), Megatron1(cost.GMap),
		MeSP(cost.SMap), MeSP(cost.GMap),
		FSDP(cost.SMap), FSDP(cost.GMap),
	}
}

// Result pairs a breakdown with the configuration that produced it.
type Result struct {
	System string
	Config parallel.Config
	cost.Breakdown
	// Feasible is false when every candidate configuration OOMs; the
	// breakdown then describes the lowest-memory attempt.
	Feasible bool
}

// Best sweeps the system's configuration space on the wafer through
// the concurrent evaluation engine (memoized and fanned out across
// workers) and returns the fastest feasible configuration; when
// nothing fits it returns the lowest-memory OOM attempt with
// Feasible=false (the "OOM" bars of Fig. 13).
func Best(s System, m model.Config, w hw.Wafer) (Result, error) {
	dies := w.Dies()
	cfgs := s.Configs(dies)
	if len(cfgs) == 0 {
		return Result{}, fmt.Errorf("baselines: %s has no configurations for %d dies", s.Name, dies)
	}
	jobs := make([]engine.Job, len(cfgs))
	for i, cfg := range cfgs {
		jobs[i] = engine.Job{Model: m, Wafer: w, Config: cfg, Opts: s.Opts}
	}
	results := engine.Sweep(jobs)
	best := Result{System: s.Name}
	bestTime := math.Inf(1)
	var lowMem Result
	lowMemBytes := math.Inf(1)
	evaluated := 0
	for i, r := range results {
		if r.Err != nil {
			continue // unplaceable on this grid
		}
		b, cfg := r.Breakdown, cfgs[i]
		evaluated++
		if !b.OOM() && b.StepTime < bestTime {
			bestTime = b.StepTime
			best = Result{System: s.Name, Config: cfg, Breakdown: b, Feasible: true}
		}
		if b.Memory.Total() < lowMemBytes {
			lowMemBytes = b.Memory.Total()
			lowMem = Result{System: s.Name, Config: cfg, Breakdown: b, Feasible: false}
		}
	}
	if evaluated == 0 {
		return Result{}, fmt.Errorf("baselines: %s has no placeable configurations on %s", s.Name, w.Name)
	}
	if best.Feasible {
		return best, nil
	}
	return lowMem, nil
}

// BestCluster evaluates the MeSP strategy space on a GPU cluster
// (Fig. 15's GPU+MeSP reference). Like Best, a model that fits in no
// configuration returns the lowest-memory attempt with
// Feasible=false — 175B-class models genuinely exceed 32×80 GB.
func BestCluster(m model.Config, c hw.Cluster) (Result, error) {
	opts := cost.Options{Engine: cost.GMap, Recompute: cost.RecomputeSelective, DistributedOptimizer: true}
	var cfgs []parallel.Config
	for _, cfg := range mespConfigs(c.GPUs()) {
		// TP cannot exceed a node on switched clusters.
		if cfg.TP > c.GPUsPerNode {
			continue
		}
		cfgs = append(cfgs, cfg)
	}
	// Cluster evaluations bypass the wafer cache (different cost
	// entry point) but still fan out across the engine's workers.
	type clusterRes struct {
		b   cost.Breakdown
		err error
	}
	results := make([]clusterRes, len(cfgs))
	engine.Map(len(cfgs), func(i int) {
		engine.Do(func() {
			b, err := cost.EvaluateCluster(m, c, cfgs[i], opts)
			results[i] = clusterRes{b, err}
		})
	})
	best := Result{System: "GPU+MeSP"}
	bestTime := math.Inf(1)
	var lowMem Result
	lowMemBytes := math.Inf(1)
	evaluated := 0
	for i, r := range results {
		if r.err != nil {
			continue
		}
		b, cfg := r.b, cfgs[i]
		evaluated++
		if !b.OOM() && b.StepTime < bestTime {
			bestTime = b.StepTime
			best = Result{System: "GPU+MeSP", Config: cfg, Breakdown: b, Feasible: true}
		}
		if b.Memory.Total() < lowMemBytes {
			lowMemBytes = b.Memory.Total()
			lowMem = Result{System: "GPU+MeSP", Config: cfg, Breakdown: b, Feasible: false}
		}
	}
	if evaluated == 0 {
		return Result{}, fmt.Errorf("baselines: no placeable GPU configuration for %s", m.Name)
	}
	if best.Feasible {
		return best, nil
	}
	return lowMem, nil
}
