package spec

import "fmt"

// DistribSpec is the optional "distrib" block of a scenario spec: it
// declares how a batch containing the scenario should be spread
// across worker processes. The CLIs honor it when -distribute is not
// given (an explicit flag always wins), so a checked-in scenario dir
// can carry its own fan-out policy.
type DistribSpec struct {
	// Workers is the worker-process count (0 = run in-process).
	Workers int `json:"workers"`
	// ShardSize caps tasks per shard (0 = automatic).
	ShardSize int `json:"shard_size,omitempty"`
	// Retries bounds per-shard requeues after a worker failure
	// (0 = the fabric default).
	Retries int `json:"retries,omitempty"`
	// HeartbeatMS is the liveness ping cadence in milliseconds
	// (0 = the fabric default, 500ms).
	HeartbeatMS int `json:"heartbeat_ms,omitempty"`
	// MissedBeats is how many consecutive missed heartbeats declare a
	// worker dead (0 = the fabric default, 3).
	MissedBeats int `json:"missed_beats,omitempty"`
	// SyncMemo ships the coordinator's warm disk-memo to attaching
	// workers that lack one (shared-nothing deployments).
	SyncMemo bool `json:"sync_memo,omitempty"`
}

func (d *DistribSpec) validate(name string) error {
	if d == nil {
		return nil
	}
	if d.Workers < 0 {
		return fmt.Errorf("scenario %q: distrib workers %d is negative", name, d.Workers)
	}
	if d.ShardSize < 0 {
		return fmt.Errorf("scenario %q: distrib shard_size %d is negative", name, d.ShardSize)
	}
	if d.Retries < 0 {
		return fmt.Errorf("scenario %q: distrib retries %d is negative", name, d.Retries)
	}
	if d.HeartbeatMS < 0 {
		return fmt.Errorf("scenario %q: distrib heartbeat_ms %d is negative", name, d.HeartbeatMS)
	}
	if d.MissedBeats < 0 {
		return fmt.Errorf("scenario %q: distrib missed_beats %d is negative", name, d.MissedBeats)
	}
	return nil
}
