// multiwafer scales a 175B-class model across two wafers with
// pipeline parallelism (§VIII-E): TEMP holds the pipeline degree at
// one stage per wafer and uses TATP inside each stage, cutting the
// pipeline bubbles the PP-heavy baselines suffer.
package main

import (
	"fmt"
	"log"

	"temp"
)

func main() {
	w := temp.EvaluationWafer()
	m := temp.GPT3_175B()
	wafers := 2

	systems := []temp.System{
		temp.Megatron1(temp.SMap),
		temp.MeSP(temp.GMap),
		temp.FSDP(temp.GMap),
		temp.TEMPSystem(),
	}
	fmt.Printf("%s across %d wafers (%d dies total)\n\n", m.Name, wafers, wafers*w.Dies())
	fmt.Printf("%-11s %-34s %-9s %-8s %s\n", "system", "config", "step(s)", "bubble%", "tput tok/s")
	var tempStep float64
	for _, s := range systems {
		r, err := temp.MultiWafer(s, m, w, wafers)
		if err != nil {
			log.Printf("%s: %v", s.Name, err)
			continue
		}
		fmt.Printf("%-11s %-34s %-9.3f %-8.1f %.0f\n",
			r.System, r.Config.String(), r.StepTime,
			r.BubbleTime/r.StepTime*100, r.ThroughputTokens)
		if r.System == "TEMP" {
			tempStep = r.StepTime
		}
	}
	if tempStep > 0 {
		fmt.Println("\nTEMP's lower pipeline degree trades bubbles for TATP's overlapped streaming.")
	}
}
