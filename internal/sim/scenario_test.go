package sim

import (
	"reflect"
	"testing"

	"temp/internal/engine"
	"temp/internal/model"
	"temp/internal/parallel"
	"temp/internal/solver"
	"temp/internal/spec"
)

// batchSpecs builds a mixed scenario batch: registry-named sweep,
// fully-inline off-paper wafer+model, explicit pinned configuration,
// multi-wafer, and fault injection.
func batchSpecs(t *testing.T) []spec.ScenarioSpec {
	t.Helper()
	raw := []string{
		`{"name":"paper-sweep","model":"gpt3-6.7b","wafer":"wsc-4x8","system":"MeSP+GMap"}`,
		`{"name":"off-paper","model":{"name":"TinyNet","heads":16,"hidden":2048,"layers":12,"batch":64},
		  "wafer":{"name":"wsc-2x8","rows":2,"cols":8,"die":{"hbm_bytes":48e9}},
		  "system":{"scheme":"temp","envelope":{"max_tatp":8}}}`,
		`{"name":"pinned","model":"llama2-7b","wafer":"wsc-4x8","config":{"dp":4,"tatp":8}}`,
		`{"name":"multi-wafer","model":"gpt3-175b","wafer":"wsc-4x8","system":"TEMP","wafers":2}`,
		`{"name":"faulted","model":"gpt3-6.7b","wafer":"wsc-4x8","config":{"dp":4,"tatp":8},
		  "fault":{"link_rate":0.1,"trials":4,"seed":7}}`,
	}
	out := make([]spec.ScenarioSpec, len(raw))
	for i, r := range raw {
		s, err := spec.ParseScenario([]byte(r))
		if err != nil {
			t.Fatal(err)
		}
		out[i] = s
	}
	return out
}

// TestRunScenariosDeterministic: the same batch evaluated serially and
// with a parallel worker pool yields identical results in input order.
func TestRunScenariosDeterministic(t *testing.T) {
	specs := batchSpecs(t)
	prev := engine.Workers()
	defer engine.SetWorkers(prev)

	engine.SetWorkers(1)
	serial := RunScenarioSpecs(specs)
	engine.SetWorkers(8)
	parallel8 := RunScenarioSpecs(specs)

	if len(serial) != len(specs) || len(parallel8) != len(specs) {
		t.Fatalf("result count: serial %d, parallel %d, want %d", len(serial), len(parallel8), len(specs))
	}
	for i := range serial {
		if serial[i].Err != nil {
			t.Fatalf("scenario %s failed: %v", specs[i].Name, serial[i].Err)
		}
		if serial[i].Name != specs[i].Name {
			t.Errorf("result %d out of input order: %s vs %s", i, serial[i].Name, specs[i].Name)
		}
		if !reflect.DeepEqual(serial[i], parallel8[i]) {
			t.Errorf("scenario %s differs between -workers 1 and -workers 8:\n  %+v\n  %+v",
				specs[i].Name, serial[i], parallel8[i])
		}
	}
}

// TestOffPaperScenarioEndToEnd: a wafer grid, model shape and system
// not present in the paper runs end-to-end and produces a cost
// breakdown (the scenario-layer acceptance path).
func TestOffPaperScenarioEndToEnd(t *testing.T) {
	ss, err := spec.ParseScenario([]byte(`{
		"name": "novel",
		"model": {"name":"MidNet 13B","heads":40,"hidden":5120,"layers":40,"batch":64,"seq":4096},
		"wafer": {"name":"wsc-8x8-fat","rows":8,"cols":8,
			"die":{"hbm_bytes":96e9,"peak_flops":2.0e15},
			"link":{"bandwidth":5e12}},
		"system": {"scheme":"fsdp","engine":"gmap"}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := ss.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r.StepTime <= 0 || r.Memory.Total() <= 0 {
		t.Fatalf("degenerate breakdown: step %v, mem %v", r.StepTime, r.Memory.Total())
	}
	if !r.Feasible {
		t.Error("13B-class model should fit an 8x8 wafer with 96GB HBM dies under FSDP")
	}
	if r.System != "FSDP+GMap" {
		t.Errorf("system = %s, want FSDP+GMap", r.System)
	}
}

// TestScenarioFaultStage: the fault stage reports a normalized
// throughput in (0, 1]; a zero-rate injection is skipped.
func TestScenarioFaultStage(t *testing.T) {
	ss, err := spec.ParseScenario([]byte(`{
		"name":"f","model":"gpt3-6.7b","wafer":"wsc-4x8",
		"config":{"dp":4,"tatp":8},
		"fault":{"core_rate":0.05,"cores_per_die":64,"trials":4,"seed":11}}`))
	if err != nil {
		t.Fatal(err)
	}
	rs := RunScenarioSpecs([]spec.ScenarioSpec{ss})
	if rs[0].Err != nil {
		t.Fatal(rs[0].Err)
	}
	if !rs[0].Faulted {
		t.Fatal("fault stage did not run")
	}
	if rs[0].FaultNormTput <= 0 || rs[0].FaultNormTput > 1.0001 {
		t.Errorf("normalized throughput = %v, want (0,1]", rs[0].FaultNormTput)
	}
}

// TestScenarioSolverStage runs a scenario whose spec declares a
// solver stage: the outcome must carry the strategy's search result,
// deterministically across worker counts (modulo wall-clock).
func TestScenarioSolverStage(t *testing.T) {
	raw := `{"name":"solved","model":"gpt3-6.7b","wafer":"wsc-4x8",
	  "solver":{"strategy":"portfolio","seed":7,"budget":{"checkpoint":10}}}`
	ss, err := spec.ParseScenario([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	prev := engine.Workers()
	defer engine.SetWorkers(prev)

	engine.SetWorkers(1)
	serial := RunScenarioSpecs([]spec.ScenarioSpec{ss})[0]
	engine.SetWorkers(8)
	parallel8 := RunScenarioSpecs([]spec.ScenarioSpec{ss})[0]

	for _, r := range []ScenarioResult{serial, parallel8} {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Solver == nil {
			t.Fatal("no solver outcome")
		}
		if r.Solver.Strategy != "portfolio" || r.Solver.Winner == "" {
			t.Errorf("outcome strategy %q winner %q", r.Solver.Strategy, r.Solver.Winner)
		}
		if r.Solver.FinalCost <= 0 || r.Solver.FinalCost > r.Solver.DPCost*(1+1e-9) {
			t.Errorf("degenerate solver costs: dp %v final %v", r.Solver.DPCost, r.Solver.FinalCost)
		}
		if len(r.Solver.Assignment) == 0 || r.Solver.Share <= 0 {
			t.Errorf("missing assignment/dominant share: %+v", r.Solver)
		}
	}
	if serial.Solver.FinalCost != parallel8.Solver.FinalCost ||
		serial.Solver.Winner != parallel8.Solver.Winner ||
		!reflect.DeepEqual(serial.Solver.Assignment, parallel8.Solver.Assignment) {
		t.Errorf("solver stage differs across worker counts:\n  %+v\n  %+v",
			serial.Solver, parallel8.Solver)
	}

	// The override hook replaces the declared stage.
	stage, err := (&spec.SolverSpec{Strategy: "dp"}).Build()
	if err != nil {
		t.Fatal(err)
	}
	over := RunScenarioSpecsWithSolver([]spec.ScenarioSpec{ss}, stage)[0]
	if over.Err != nil {
		t.Fatal(over.Err)
	}
	if over.Solver == nil || over.Solver.Strategy != "dp" {
		t.Fatalf("override not applied: %+v", over.Solver)
	}
}

// TestScenarioCostStage: a scenario's cost stage retargets evaluation
// at the chosen fidelity tier — the replay tier prices a streaming
// config differently from (and no worse than) the analytic default —
// and the solver stage searches on the stage's operator model. The
// multifid stage reports both exact and screen effort with an
// exact-verified winner.
func TestScenarioCostStage(t *testing.T) {
	pinned := `{"name":"pinned","model":"gpt3-6.7b","wafer":"wsc-4x8","config":{"dp":2,"tp":2,"tatp":8}}`
	ss, err := spec.ParseScenario([]byte(pinned))
	if err != nil {
		t.Fatal(err)
	}
	base := RunScenarioSpecs([]spec.ScenarioSpec{ss})[0]
	if base.Err != nil {
		t.Fatal(base.Err)
	}

	withReplay := ss
	withReplay.Cost = &spec.CostSpec{Backend: "replay"}
	rp := RunScenarioSpecs([]spec.ScenarioSpec{withReplay})[0]
	if rp.Err != nil {
		t.Fatal(rp.Err)
	}
	if rp.Result.StepTime == base.Result.StepTime {
		t.Errorf("replay stage priced identically to analytic (%v)", rp.Result.StepTime)
	}
	if rp.Result.StepTime > base.Result.StepTime*(1+1e-9) {
		t.Errorf("replay stage %v worse than analytic %v", rp.Result.StepTime, base.Result.StepTime)
	}

	// CLI-style override: same effect without touching the spec.
	stage, err := spec.CostOverride("replay", 0)
	if err != nil {
		t.Fatal(err)
	}
	over := RunScenarioSpecsWithStages([]spec.ScenarioSpec{ss}, nil, stage)[0]
	if over.Err != nil {
		t.Fatal(over.Err)
	}
	if over.Result.StepTime != rp.Result.StepTime {
		t.Errorf("cost override %v ≠ spec-declared stage %v", over.Result.StepTime, rp.Result.StepTime)
	}

	mf := ss
	mf.Cost = &spec.CostSpec{Backend: "surrogate", Seed: 42}
	mf.Solver = &spec.SolverSpec{Strategy: "multifid", Seed: 7}
	r := RunScenarioSpecs([]spec.ScenarioSpec{mf})[0]
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Solver == nil || r.Solver.Strategy != "multifid" {
		t.Fatalf("solver stage missing: %+v", r.Solver)
	}
	if r.Solver.Backend != "surrogate@seed=42" {
		t.Errorf("solver backend %q", r.Solver.Backend)
	}
	if r.Solver.ScreenEvaluations == 0 || r.Solver.Evaluations == 0 {
		t.Errorf("effort split missing: exact=%d screen=%d", r.Solver.Evaluations, r.Solver.ScreenEvaluations)
	}
	// A surrogate cost stage supplies multifid's screen, never its
	// verify tier: the reported cost must be the analytic price of
	// the returned assignment, not a DNN estimate.
	sc, err := mf.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	exact := &solver.Analytic{W: sc.Wafer, M: sc.Model}
	g := model.BlockGraph(sc.Model)
	space := parallel.EnumerateConfigs(sc.Wafer.Dies(), true, 0)
	var reprice float64
	for i, cfgIdx := range r.Solver.Assignment {
		pen := 0.0
		if !exact.MemoryOK(space[cfgIdx]) {
			pen = 1e6
		}
		// Summed in the evaluator's order (intra+penalty as one term,
		// then inter) so equality is exact, not approximate.
		reprice += exact.Intra(g.Ops[i], space[cfgIdx]) + pen
		if i > 0 {
			reprice += exact.Inter(g.Ops[i-1], g.Ops[i], space[r.Solver.Assignment[i-1]], space[cfgIdx])
		}
	}
	if reprice != r.Solver.FinalCost {
		t.Errorf("multifid reported %v but the analytic re-price is %v — winner was surrogate-verified", r.Solver.FinalCost, reprice)
	}
}
