package engine

import (
	"testing"

	"temp/internal/cost"
)

// TestSweepBatchesMisses: the miss path of a sweep routes through the
// batched pricing kernels, and repeat sweeps batch nothing.
func TestSweepBatchesMisses(t *testing.T) {
	jobs := testJobs(t)
	p := New(4)
	p.Sweep(jobs)
	s1 := p.Cache().Stats()
	if s1.BatchCalls == 0 {
		t.Fatalf("cold sweep used no batched pricing calls: %+v", s1)
	}
	if s1.BatchedJobs != s1.Misses {
		t.Errorf("batched %d jobs but recorded %d misses", s1.BatchedJobs, s1.Misses)
	}
	p.Sweep(jobs)
	s2 := p.Cache().Stats()
	if s2.BatchCalls != s1.BatchCalls || s2.BatchedJobs != s1.BatchedJobs {
		t.Errorf("warm sweep batched more work: %+v → %+v", s1, s2)
	}
}

// TestSweepDuplicateJobs: duplicate jobs in one sweep share one
// pricing and count one miss plus hits, same as sequential Evaluate
// calls would.
func TestSweepDuplicateJobs(t *testing.T) {
	jobs := testJobs(t)[:4]
	dup := append(append([]Job(nil), jobs...), jobs...)
	p := New(4)
	res := p.Sweep(dup)
	s := p.Cache().Stats()
	if s.Misses != int64(len(jobs)) {
		t.Errorf("%d misses for %d distinct jobs", s.Misses, len(jobs))
	}
	if s.Hits != int64(len(jobs)) {
		t.Errorf("%d hits for %d duplicate jobs", s.Hits, len(jobs))
	}
	for i := range jobs {
		a, b := res[i], res[i+len(jobs)]
		if !sameResult(a, b) {
			t.Errorf("job %d: duplicate results differ", i)
		}
	}
}

// TestSweepMixedBackends: one sweep over several tiers groups misses
// per backend family and each job gets its own tier's result.
func TestSweepMixedBackends(t *testing.T) {
	base := testJobs(t)[:3]
	var jobs []Job
	for _, be := range []string{"", "analytic", "replay"} {
		for _, j := range base {
			j.Backend = be
			jobs = append(jobs, j)
		}
	}
	p := New(4)
	res := p.Sweep(jobs)
	for i, j := range jobs {
		be, err := cost.NewBackend(j.Backend)
		if err != nil {
			t.Fatal(err)
		}
		want, wantErr := be.Price(j.Model, j.Wafer, j.Config.Normalize(), j.Opts)
		if (res[i].Err == nil) != (wantErr == nil) {
			t.Fatalf("job %d (%q): err %v want %v", i, j.Backend, res[i].Err, wantErr)
		}
		if wantErr == nil && res[i].Breakdown.StepTime != want.StepTime {
			t.Errorf("job %d (%q): sweep diverged from direct backend pricing", i, j.Backend)
		}
	}
	// "" and "analytic" canonicalize to one family; replay is its own.
	if s := p.Cache().Stats(); s.Misses != int64(2*len(base)) {
		t.Errorf("%d misses, want %d (two distinct tiers)", s.Misses, 2*len(base))
	}
}

// TestSetWorkersReshards: a worker bound that outgrows the cache's
// stripe count reshards the shared cache, keeping every entry and
// counter.
func TestSetWorkersReshards(t *testing.T) {
	old := Workers()
	defer SetWorkers(old)

	// A job distinct from anything other tests evaluate on the shared
	// pool, so the delta accounting below is exact.
	j := testJobs(t)[0]
	j.Model.Name = "reshard-probe"
	if _, err := EvaluateJob(j); err != nil {
		t.Fatal(err)
	}
	before := Default().Cache().Stats()
	shardsBefore := Default().Cache().memo.Shards()

	SetWorkers(8 * shardCount) // forces shardsFor > current stripes
	after := Default().Cache().Stats()
	shardsAfter := Default().Cache().memo.Shards()
	if shardsAfter <= shardsBefore {
		t.Fatalf("SetWorkers(%d) kept %d shards", 8*shardCount, shardsAfter)
	}
	if want := shardsFor(8 * shardCount); shardsAfter != want {
		t.Errorf("resharded to %d stripes, want %d", shardsAfter, want)
	}
	if after.Entries != before.Entries || after.Hits != before.Hits || after.Misses != before.Misses {
		t.Errorf("reshard dropped state: %+v → %+v", before, after)
	}

	// The migrated entry still serves hits, not re-pricing.
	if _, err := EvaluateJob(j); err != nil {
		t.Fatal(err)
	}
	final := Default().Cache().Stats()
	if final.Misses != after.Misses {
		t.Errorf("migrated entry re-priced: misses %d → %d", after.Misses, final.Misses)
	}
	if final.Hits != after.Hits+1 {
		t.Errorf("migrated entry did not hit: hits %d → %d", after.Hits, final.Hits)
	}
}

// TestShardsFor pins the stripe-count policy.
func TestShardsFor(t *testing.T) {
	for _, tc := range []struct{ workers, want int }{
		{1, shardCount}, {16, shardCount}, {17, 128}, {32, 128}, {64, 256}, {1000, 4096},
	} {
		if got := shardsFor(tc.workers); got != tc.want {
			t.Errorf("shardsFor(%d) = %d, want %d", tc.workers, got, tc.want)
		}
	}
}
