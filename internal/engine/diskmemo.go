package engine

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"temp/internal/cost"
)

// Disk-memo file format. The file is a header followed by
// self-delimiting records, so concurrent appenders (O_APPEND) and
// torn tails degrade gracefully: a reader keeps every record up to
// the first frame that fails its length or checksum validation and
// ignores the rest.
//
//	header : "TEMPMEMO" magic + 1 schema-version byte
//	record : keyLen u32le | valLen u32le | crc32(key‖val) u32le | key | val
//
// Keys are the canonical binary job encoding (appendJobKey); values
// are one self-contained gob stream per record (a fresh encoder each
// time, so records decode independently of their predecessors). The
// schema version covers both sides: bump it whenever Job's key
// encoding or the stored record shape changes, and old files are
// simply ignored instead of misread.
const (
	diskMemoMagic   = "TEMPMEMO"
	diskMemoVersion = 1
	// diskMemoMaxFrame bounds a frame's key/value lengths; anything
	// larger is corruption, not data.
	diskMemoMaxFrame = 1 << 28
)

// diskMemoFile is the memo's file name inside its directory.
const diskMemoFile = "costmemo.bin"

// Auto-compaction policy. Concurrent appenders (distributed workers
// sharing one memo dir) can legitimately write the same job twice —
// each process only dedupes against its own index plus whatever was
// on disk when it opened. Last-write-wins on load keeps the index
// correct, but the dead bytes accumulate across runs. When an open
// finds that fewer than half the parsed records are live (and the
// file is big enough for the rewrite to matter), it rewrites the file
// from the index so long-lived memo dirs stay bounded by their live
// content.
const compactMinRecords = 64

// diskRecord is the stored shape of one Result. Errors are persisted
// as text — the cost model's errors are deterministic descriptions
// ("no viable placement", OOM), so a warm run reconstructs the same
// failures without re-pricing anything.
type diskRecord struct {
	Breakdown cost.Breakdown
	ErrMsg    string
	HasErr    bool
}

// DiskMemo is a persistent, content-keyed result store layered under
// the engine's in-memory memo: read fully on open, appended on every
// miss, compacted (atomic tmp+rename) when opening finds a corrupt
// tail. One process appends through one handle; cross-process
// appenders are safe because each record is written with a single
// O_APPEND write and readers validate frames.
type DiskMemo struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	index map[string]Result

	keyBuf []byte
	valBuf bytes.Buffer

	loaded    int // records recovered on open (including duplicates)
	dropped   int // trailing bytes discarded on open
	compacted int // duplicate records discarded by auto-compaction on open
}

// OpenDiskMemo opens (creating if needed) the persistent memo in dir.
// All valid records are loaded into the in-memory index; a corrupt or
// truncated tail is dropped and the file compacted to its valid
// prefix before appending resumes.
func OpenDiskMemo(dir string) (*DiskMemo, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: disk memo dir: %w", err)
	}
	path := filepath.Join(dir, diskMemoFile)
	m := &DiskMemo{path: path, index: map[string]Result{}}

	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("engine: disk memo read: %w", err)
	}
	validLen := m.load(data)
	if validLen < len(data) {
		m.dropped = len(data) - validLen
	}
	switch {
	case m.loaded >= compactMinRecords && 2*len(m.index) < m.loaded:
		// Size-triggered auto-compaction: under half the records are
		// live (duplicates from concurrent writers), so rewrite the
		// file from the index. This also sheds any corrupt tail.
		m.compacted = m.loaded - len(m.index)
		if err := m.compactFromIndex(); err != nil {
			return nil, err
		}
		m.loaded = len(m.index)
	case validLen < len(data):
		// Corrupt or foreign tail (or a whole file from another schema
		// version): atomically rewrite the valid prefix so appends
		// never land after garbage.
		if err := m.compact(data[:validLen]); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("engine: disk memo open: %w", err)
	}
	m.f = f
	if len(data) == 0 {
		if err := m.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return m, nil
}

// load parses data into the index and returns the length of the valid
// prefix (header plus every whole, checksummed, decodable record).
func (m *DiskMemo) load(data []byte) int {
	if len(data) == 0 {
		return 0
	}
	hdr := len(diskMemoMagic) + 1
	if len(data) < hdr || string(data[:len(diskMemoMagic)]) != diskMemoMagic ||
		data[len(diskMemoMagic)] != diskMemoVersion {
		return 0
	}
	off := hdr
	for off+12 <= len(data) {
		// Two processes racing to create the file may both write the
		// header; a duplicate header at a record boundary is benign.
		if bytes.HasPrefix(data[off:], headerBytes()) {
			off += hdr
			continue
		}
		keyLen := binary.LittleEndian.Uint32(data[off:])
		valLen := binary.LittleEndian.Uint32(data[off+4:])
		crc := binary.LittleEndian.Uint32(data[off+8:])
		if keyLen == 0 || keyLen > diskMemoMaxFrame || valLen > diskMemoMaxFrame {
			break
		}
		end := off + 12 + int(keyLen) + int(valLen)
		if end < off || end > len(data) {
			break
		}
		body := data[off+12 : end]
		if crc32.ChecksumIEEE(body) != crc {
			break
		}
		var rec diskRecord
		if err := gob.NewDecoder(bytes.NewReader(body[keyLen:])).Decode(&rec); err != nil {
			break
		}
		r := Result{Breakdown: rec.Breakdown}
		if rec.HasErr {
			r.Err = errors.New(rec.ErrMsg)
		}
		m.index[string(body[:keyLen])] = r
		m.loaded++
		off = end
	}
	return off
}

// compact atomically replaces the file with the given valid prefix.
func (m *DiskMemo) compact(valid []byte) error {
	tmp := m.path + ".tmp"
	if len(valid) == 0 {
		valid = headerBytes()
	}
	if err := os.WriteFile(tmp, valid, 0o644); err != nil {
		return fmt.Errorf("engine: disk memo compact: %w", err)
	}
	if err := os.Rename(tmp, m.path); err != nil {
		return fmt.Errorf("engine: disk memo compact: %w", err)
	}
	return nil
}

// compactFromIndex atomically rewrites the file with exactly the live
// records (one frame per index entry, file order unspecified).
func (m *DiskMemo) compactFromIndex() error {
	buf, err := m.segmentLocked()
	if err != nil {
		return err
	}
	return m.compact(buf)
}

// segmentLocked serializes the live index in the on-disk format
// (header plus one record frame per entry). Callers hold m.mu.
func (m *DiskMemo) segmentLocked() ([]byte, error) {
	buf := headerBytes()
	var val bytes.Buffer
	for key, r := range m.index {
		rec := diskRecord{Breakdown: r.Breakdown}
		if r.Err != nil {
			rec.HasErr = true
			rec.ErrMsg = r.Err.Error()
		}
		val.Reset()
		if err := gob.NewEncoder(&val).Encode(rec); err != nil {
			return nil, fmt.Errorf("engine: disk memo segment encode: %w", err)
		}
		buf = appendRecordFrame(buf, key, val.Bytes())
	}
	return buf, nil
}

// Segment serializes the memo's live records in the on-disk format,
// for shipping warm state to shared-nothing workers over the fabric
// (distrib memo sync). The segment round-trips through ImportSegment.
func (m *DiskMemo) Segment() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.segmentLocked()
}

// ImportSegment merges a serialized segment's records into the index
// without persisting them (synced state belongs to the coordinator's
// memo, not the worker's). Unlike load, the whole segment must parse:
// any invalid record rejects the import, since a shipped segment has
// no torn-tail excuse. Returns how many records were merged (existing
// keys keep their local value).
func (m *DiskMemo) ImportSegment(data []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	probe := &DiskMemo{index: map[string]Result{}}
	if n := probe.load(data); n != len(data) {
		return 0, fmt.Errorf("engine: memo segment corrupt at byte %d of %d", n, len(data))
	}
	added := 0
	for key, r := range probe.index {
		if _, ok := m.index[key]; !ok {
			m.index[key] = r
			added++
		}
	}
	return added, nil
}

// NewMemoryMemo returns a memo with no backing file: lookups and
// stores work against the in-memory index only. It is the landing
// spot for synced segments on workers that have no memo directory.
func NewMemoryMemo() *DiskMemo {
	return &DiskMemo{index: map[string]Result{}}
}

// appendRecordFrame appends one self-delimiting record frame
// (lengths, checksum, key, value) to buf.
func appendRecordFrame(buf []byte, key string, val []byte) []byte {
	var lens [12]byte
	binary.LittleEndian.PutUint32(lens[0:], uint32(len(key)))
	binary.LittleEndian.PutUint32(lens[4:], uint32(len(val)))
	crc := crc32.ChecksumIEEE([]byte(key))
	crc = crc32.Update(crc, crc32.IEEETable, val)
	binary.LittleEndian.PutUint32(lens[8:], crc)
	buf = append(buf, lens[:]...)
	buf = append(buf, key...)
	buf = append(buf, val...)
	return buf
}

func headerBytes() []byte {
	return append([]byte(diskMemoMagic), diskMemoVersion)
}

func (m *DiskMemo) writeHeader() error {
	if _, err := m.f.Write(headerBytes()); err != nil {
		return fmt.Errorf("engine: disk memo header: %w", err)
	}
	return nil
}

// Lookup returns the persisted result for a normalized job. The hit
// path does not allocate: the key is encoded into a retained buffer
// and looked up with a non-escaping string conversion.
func (m *DiskMemo) Lookup(j Job) (Result, bool) {
	m.mu.Lock()
	m.keyBuf = appendJobKey(m.keyBuf[:0], j)
	r, ok := m.index[string(m.keyBuf)]
	m.mu.Unlock()
	return r, ok
}

// Store persists one freshly priced result, making it visible to
// Lookup immediately and to every later process on this directory.
// Each record is one O_APPEND write, so concurrent writers interleave
// whole records. Write errors are reported but leave the in-memory
// index updated — a failing disk degrades to a session cache.
func (m *DiskMemo) Store(j Job, r Result) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.keyBuf = appendJobKey(m.keyBuf[:0], j)
	if _, ok := m.index[string(m.keyBuf)]; ok {
		return nil
	}
	key := string(m.keyBuf)
	m.index[key] = r
	if m.f == nil {
		return nil
	}

	rec := diskRecord{Breakdown: r.Breakdown}
	if r.Err != nil {
		rec.HasErr = true
		rec.ErrMsg = r.Err.Error()
	}
	m.valBuf.Reset()
	if err := gob.NewEncoder(&m.valBuf).Encode(rec); err != nil {
		return fmt.Errorf("engine: disk memo encode: %w", err)
	}
	val := m.valBuf.Bytes()

	frame := appendRecordFrame(make([]byte, 0, 12+len(key)+len(val)), key, val)
	if _, err := m.f.Write(frame); err != nil {
		return fmt.Errorf("engine: disk memo append: %w", err)
	}
	return nil
}

// Len returns the number of indexed records.
func (m *DiskMemo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.index)
}

// Recovered reports how many records the open loaded and how many
// trailing bytes it had to drop as corrupt.
func (m *DiskMemo) Recovered() (records, droppedBytes int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.loaded, m.dropped
}

// Compacted reports how many duplicate records the open's
// auto-compaction discarded (0 when no compaction ran).
func (m *DiskMemo) Compacted() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.compacted
}

// Path returns the backing file's path.
func (m *DiskMemo) Path() string { return m.path }

// Close releases the file handle. Lookup and Store on a closed memo
// still serve the in-memory index (stores stop persisting).
func (m *DiskMemo) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.f == nil {
		return nil
	}
	err := m.f.Close()
	m.f = nil
	return err
}
