// Command tempsim evaluates one training configuration on the wafer
// simulator and prints the latency/memory/power breakdown.
//
//	tempsim -model gpt3-6.7b -dp 4 -tatp 8
//	tempsim -model llama3-70b -engine smap -tp 8 -dp 4 -recompute none
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"temp/internal/cost"
	"temp/internal/engine"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
	"temp/internal/unit"
)

func modelByName(name string) (model.Config, bool) {
	all := append(model.EvaluationModels(),
		model.Grok1_341B(), model.Llama3_405B(), model.GPT3_504B(),
		model.DeepSeek7B(), model.Bloom176B(), model.Llama2_30B(), model.Llama2_70B())
	key := strings.ToLower(strings.NewReplacer(" ", "", "-", "", "_", "", ".", "").Replace(name))
	for _, m := range all {
		mk := strings.ToLower(strings.NewReplacer(" ", "", "-", "", "_", "", ".", "").Replace(m.Name))
		if mk == key || strings.Contains(mk, key) {
			return m, true
		}
	}
	return model.Config{}, false
}

func main() {
	var (
		name    = flag.String("model", "gpt3-6.7b", "model name (see Table II)")
		rows    = flag.Int("rows", 4, "wafer die rows")
		cols    = flag.Int("cols", 8, "wafer die columns")
		dp      = flag.Int("dp", 1, "data parallel degree")
		tp      = flag.Int("tp", 1, "tensor parallel degree")
		sp      = flag.Int("sp", 1, "sequence parallel degree")
		cp      = flag.Int("cp", 1, "context parallel degree")
		tatp    = flag.Int("tatp", 1, "TATP stream parallel degree")
		pp      = flag.Int("pp", 1, "pipeline degree across wafers")
		wafers  = flag.Int("wafers", 1, "wafer count")
		mapper  = flag.String("engine", "tcme", "mapping engine: smap|gmap|tcme")
		rec     = flag.String("recompute", "selective", "recompute: none|selective|full")
		fsdp    = flag.Bool("fsdp", false, "fully sharded data parallelism")
		mesp    = flag.Bool("megatron-sp", false, "Megatron-3 fused sequence parallelism")
		mb      = flag.Int("microbatch", 0, "sequences per rank per micro-step")
		debugTr = flag.Bool("debug", false, "print the calibration trace")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "evaluation worker-pool size")
	)
	flag.Parse()
	engine.SetWorkers(*workers)

	m, ok := modelByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "tempsim: unknown model %q\n", *name)
		os.Exit(1)
	}
	w := hw.WaferWithGrid(*rows, *cols)
	cfg := parallel.Config{DP: *dp, TP: *tp, SP: *sp, CP: *cp, TATP: *tatp, PP: *pp,
		FSDP: *fsdp, MegatronSP: *mesp}
	o := cost.Options{Microbatch: *mb, Wafers: *wafers, DistributedOptimizer: true}
	switch strings.ToLower(*mapper) {
	case "smap":
		o.Engine = cost.SMap
	case "gmap":
		o.Engine = cost.GMap
	default:
		o.Engine = cost.TCMEEngine
	}
	switch strings.ToLower(*rec) {
	case "none":
		o.Recompute = cost.RecomputeNone
	case "full":
		o.Recompute = cost.RecomputeFull
	default:
		o.Recompute = cost.RecomputeSelective
	}

	b, err := engine.Evaluate(m, w, cfg, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tempsim:", err)
		os.Exit(1)
	}
	fmt.Printf("model      %s on %s (%d dies, %d wafer(s))\n", m, w.Name, w.Dies(), *wafers)
	fmt.Printf("config     %s engine=%s recompute=%s\n", cfg, o.Engine, o.Recompute)
	fmt.Printf("step       %s\n", unit.Seconds(b.StepTime))
	fmt.Printf("  compute  %s\n", unit.Seconds(b.ComputeTime))
	fmt.Printf("  stream   %s (exposed)\n", unit.Seconds(b.StreamTime))
	fmt.Printf("  coll     %s\n", unit.Seconds(b.CollectiveTime))
	fmt.Printf("  bubble   %s\n", unit.Seconds(b.BubbleTime))
	fmt.Printf("memory     %s / %s per die (OOM=%v)\n",
		unit.Bytes(b.Memory.Total()), unit.Bytes(b.Memory.Capacity), b.OOM())
	fmt.Printf("  weights=%s grads=%s optim=%s acts=%s stream=%s\n",
		unit.Bytes(b.Memory.Weights), unit.Bytes(b.Memory.Grads),
		unit.Bytes(b.Memory.Optimizer), unit.Bytes(b.Memory.Activations),
		unit.Bytes(b.Memory.StreamBuf))
	fmt.Printf("throughput %.1f tokens/s, power %.0f W, %.3f tokens/s/W, BW util %.1f%%\n",
		b.ThroughputTokens, b.Power, b.PowerEfficiency, b.BWUtilization*100)
	if *debugTr {
		fmt.Println("trace     ", cost.Debug(m, w, cfg, o))
	}
}
