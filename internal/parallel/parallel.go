// Package parallel defines hybrid parallel configurations and their
// spatial layout on the wafer die grid — the coordinate-based unified
// parallelism representation of §VI-A (Fig. 10). A configuration
// assigns a degree to every strategy (DP, TP, SP, CP, TATP, with PP
// reserved for inter-wafer staging), and a Placement maps the
// resulting logical coordinates onto physical dies such that the
// innermost strategy groups occupy contiguous rectangles — the
// property TATP's topology-aware orchestration depends on (§V).
package parallel

import (
	"fmt"
	"sort"

	"temp/internal/mesh"
)

// Strategy enumerates the parallel dimensions TEMP composes.
type Strategy int

// Strategies, ordered innermost (most locality-sensitive) first.
const (
	TATP Strategy = iota
	TP
	SP
	CP
	DP
	numStrategies
)

// NumStrategies is the number of intra-wafer strategies — the size of
// a per-strategy lookup array indexed by Strategy.
const NumStrategies = int(numStrategies)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case TATP:
		return "TATP"
	case TP:
		return "TP"
	case SP:
		return "SP"
	case CP:
		return "CP"
	case DP:
		return "DP"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Strategies lists all intra-wafer strategies innermost-first.
func Strategies() []Strategy { return []Strategy{TATP, TP, SP, CP, DP} }

// Config is a hybrid parallel configuration. Every degree is ≥ 1;
// the product of intra-wafer degrees must equal the number of dies a
// placement covers. PP is the pipeline degree across wafers.
type Config struct {
	DP, TP, SP, CP, TATP int
	// PP is pipeline parallelism across wafers (§VIII-E); 1 for
	// single-wafer runs.
	PP int
	// FSDP marks DP as fully-sharded data parallelism: weights and
	// optimizer state are sharded across the DP group and gathered
	// on demand, trading memory for all-gather traffic.
	FSDP bool
	// MegatronSP marks Megatron-3-style sequence parallelism where
	// the SP degree is fused with TP (activations sequence-split in
	// non-TP regions, all-gather/reduce-scatter around TP blocks).
	MegatronSP bool
}

// Normalize returns a copy with zero degrees promoted to 1.
func (c Config) Normalize() Config {
	if c.DP < 1 {
		c.DP = 1
	}
	if c.TP < 1 {
		c.TP = 1
	}
	if c.SP < 1 {
		c.SP = 1
	}
	if c.CP < 1 {
		c.CP = 1
	}
	if c.TATP < 1 {
		c.TATP = 1
	}
	if c.PP < 1 {
		c.PP = 1
	}
	return c
}

// Degree returns the intra-wafer degree product.
func (c Config) Degree() int {
	c = c.Normalize()
	return c.DP * c.TP * c.SP * c.CP * c.TATP
}

// DegreeOf returns the degree of one strategy.
func (c Config) DegreeOf(s Strategy) int {
	c = c.Normalize()
	switch s {
	case DP:
		return c.DP
	case TP:
		return c.TP
	case SP:
		return c.SP
	case CP:
		return c.CP
	case TATP:
		return c.TATP
	default:
		return 1
	}
}

// String renders the (DP, TP, SP, TATP) tuple notation of Fig. 18,
// extended with CP/PP when present.
func (c Config) String() string {
	c = c.Normalize()
	s := fmt.Sprintf("(DP=%d,TP=%d,SP=%d,TATP=%d", c.DP, c.TP, c.SP, c.TATP)
	if c.CP > 1 {
		s += fmt.Sprintf(",CP=%d", c.CP)
	}
	if c.PP > 1 {
		s += fmt.Sprintf(",PP=%d", c.PP)
	}
	if c.FSDP {
		s += ",FSDP"
	}
	return s + ")"
}

// Validate checks the configuration against a die budget.
func (c Config) Validate(dies int) error {
	n := c.Normalize()
	if d := n.Degree(); d != dies {
		return fmt.Errorf("parallel: degree product %d ≠ %d dies", d, dies)
	}
	return nil
}

// WeightShardWays returns how many ways weight tensors are sharded
// across the wafer: TP and TATP split weights; FSDP additionally
// shards storage across the DP group.
func (c Config) WeightShardWays() int {
	c = c.Normalize()
	w := c.TP * c.TATP
	if c.FSDP {
		w *= c.DP
	}
	return w
}

// WeightReplicas returns how many dies hold each weight shard:
// everything that is not a weight-sharding dimension replicates it.
func (c Config) WeightReplicas() int {
	c = c.Normalize()
	r := c.SP * c.CP
	if !c.FSDP {
		r *= c.DP
	}
	return r
}

// ActShardWays returns how many ways activations are sharded: DP
// splits batch, SP/CP split sequence, TATP stream-splits sequence.
// Megatron-style TP without SP leaves activations whole on every TP
// rank.
func (c Config) ActShardWays() int {
	c = c.Normalize()
	w := c.DP * c.SP * c.CP * c.TATP
	if c.MegatronSP {
		// Megatron-3 SP additionally sequence-splits the non-TP
		// regions across the TP group.
		w *= c.TP
	}
	return w
}

// ActReplicas returns how many dies hold each activation shard.
func (c Config) ActReplicas() int {
	c = c.Normalize()
	if c.MegatronSP {
		return 1
	}
	return c.TP
}

// OptimStateShardWays returns the sharding of FP32 optimizer state:
// same as weights (ZeRO-style DP sharding applies under FSDP only).
func (c Config) OptimStateShardWays() int { return c.WeightShardWays() }

// Group is one communication group of a strategy: the dies that
// exchange data for it, listed in logical ring/chain order.
type Group struct {
	Strategy Strategy
	// Dies in logical order (ring order when Contig is a
	// ring-capable rectangle).
	Dies []mesh.DieID
	// Rect is the bounding rectangle when the group is a contiguous
	// block; nil otherwise.
	Rect *mesh.Rect
}

// Size returns the group cardinality.
func (g Group) Size() int { return len(g.Dies) }

// Contiguous reports whether the group occupies a full rectangle.
func (g Group) Contiguous() bool { return g.Rect != nil }

// Placement maps logical parallel coordinates to physical dies.
type Placement struct {
	Cfg  Config
	Topo *mesh.Topology

	// factors[s] is the (rows, cols) tile factor chosen for s.
	factors [numStrategies][2]int
	// strides[s] is the physical (row, col) stride of one step
	// along s's logical axis block.
	blockH, blockW [numStrategies]int

	// linear marks the SMap-style row-major linear assignment that
	// ignores the 2D structure of the wafer.
	linear bool

	groups map[Strategy][]Group
}

// Groups returns the communication groups of strategy s.
func (p *Placement) Groups(s Strategy) []Group { return p.groups[s] }

// AllGroups returns every group of every active (>1 degree) strategy.
func (p *Placement) AllGroups() []Group {
	var out []Group
	for _, s := range Strategies() {
		if p.Cfg.DegreeOf(s) > 1 {
			out = append(out, p.groups[s]...)
		}
	}
	return out
}

// DieAt returns the physical die at the given logical coordinates
// (index per strategy).
func (p *Placement) DieAt(coord map[Strategy]int) mesh.DieID {
	if p.linear {
		// SMap layout: flatten logical coordinates in fixed
		// outermost-first priority (DP slowest, TATP fastest) onto
		// row-major die IDs, with no awareness of the grid's second
		// dimension.
		idx := 0
		for _, s := range []Strategy{DP, CP, SP, TP, TATP} {
			idx = idx*p.Cfg.DegreeOf(s) + coord[s]
		}
		return mesh.DieID(idx)
	}
	r, c := 0, 0
	for _, s := range Strategies() {
		i := coord[s]
		fh, fw := p.factors[s][0], p.factors[s][1]
		if fh*fw == 0 {
			continue
		}
		ih, iw := i/fw, i%fw
		r += ih * p.blockH[s]
		c += iw * p.blockW[s]
	}
	return p.Topo.ID(mesh.Coord{R: r, C: c})
}

// chooseFactor picks (fh, fw) with fh·fw = d, fh dividing maxH and fw
// dividing maxW. For ring-seeking strategies it prefers ring-capable
// rectangles (both sides ≥ 2, even area), then chains, then the most
// compact remaining option. Returns ok=false when d does not fit.
func chooseFactor(d, maxH, maxW int, preferRing bool) (fh, fw int, ok bool) {
	type cand struct {
		h, w  int
		score int
	}
	var cands []cand
	for h := 1; h <= d; h++ {
		if d%h != 0 {
			continue
		}
		w := d / h
		if h > maxH || w > maxW {
			continue
		}
		if maxH%h != 0 || maxW%w != 0 {
			continue
		}
		score := 0
		r := mesh.Rect{R0: 0, C0: 0, R1: h - 1, C1: w - 1}
		if preferRing {
			if r.HasRing() {
				score -= 1000
			}
			// Among ring candidates prefer the flattest (2×k keeps
			// every hop short and leaves room for outer strategies).
			score += h * 10
		}
		// Compactness: prefer balanced blocks for collectives.
		if !preferRing {
			score += (h - w) * (h - w)
		}
		cands = append(cands, cand{h, w, score})
	}
	if len(cands) == 0 {
		return 0, 0, false
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score < cands[j].score
		}
		if cands[i].h != cands[j].h {
			return cands[i].h < cands[j].h
		}
		return cands[i].w < cands[j].w
	})
	return cands[0].h, cands[0].w, true
}

// Place computes a placement of cfg on the topology. The intra-wafer
// degree product must equal the die count. Strategies are laid out
// innermost-first (TATP → TP → SP → CP → DP) so the TATP groups land
// on contiguous, ring-capable rectangles whenever one exists.
func Place(cfg Config, topo *mesh.Topology) (*Placement, error) {
	cfg = cfg.Normalize()
	if err := cfg.Validate(topo.Dies()); err != nil {
		return nil, err
	}
	p := &Placement{Cfg: cfg, Topo: topo, groups: make(map[Strategy][]Group)}
	bh, bw := 1, 1 // dies covered by the current block
	remH, remW := topo.Rows(), topo.Cols()
	for _, s := range Strategies() {
		d := cfg.DegreeOf(s)
		p.blockH[s], p.blockW[s] = bh, bw
		if d == 1 {
			p.factors[s] = [2]int{1, 1}
			continue
		}
		fh, fw, ok := chooseFactor(d, remH, remW, s == TATP)
		if !ok {
			return nil, fmt.Errorf("parallel: cannot tile %s degree %d into remaining %dx%d blocks (%s)",
				s, d, remH, remW, cfg)
		}
		p.factors[s] = [2]int{fh, fw}
		bh *= fh
		bw *= fw
		remH /= fh
		remW /= fw
	}
	p.buildGroups()
	return p, nil
}

// PlaceLinear computes the SMap-style placement: logical coordinates
// are flattened in a fixed priority order (TATP varying fastest) onto
// row-major die indices, exactly the "sequential mapper with a fixed
// parallel strategy order" baseline of §VIII-A. Inner groups become
// horizontal runs that wrap across row boundaries into non-contiguous
// tetris shapes — the tail-latency failure mode of Fig. 7(a).
func PlaceLinear(cfg Config, topo *mesh.Topology) (*Placement, error) {
	cfg = cfg.Normalize()
	if err := cfg.Validate(topo.Dies()); err != nil {
		return nil, err
	}
	p := &Placement{Cfg: cfg, Topo: topo, linear: true, groups: make(map[Strategy][]Group)}
	p.buildGroups()
	return p, nil
}

// buildGroups enumerates the communication groups of each strategy.
func (p *Placement) buildGroups() {
	cfg := p.Cfg
	strategies := Strategies()
	// Enumerate all logical coordinates once.
	var rec func(level int, coord map[Strategy]int)
	total := cfg.Degree()
	dieOf := make(map[string]mesh.DieID, total)
	key := func(coord map[Strategy]int) string {
		return fmt.Sprintf("%d.%d.%d.%d.%d",
			coord[TATP], coord[TP], coord[SP], coord[CP], coord[DP])
	}
	rec = func(level int, coord map[Strategy]int) {
		if level == len(strategies) {
			dieOf[key(coord)] = p.DieAt(coord)
			return
		}
		s := strategies[level]
		for i := 0; i < cfg.DegreeOf(s); i++ {
			coord[s] = i
			rec(level+1, coord)
		}
		coord[s] = 0
	}
	rec(0, map[Strategy]int{})

	for _, s := range strategies {
		d := cfg.DegreeOf(s)
		if d <= 1 {
			continue
		}
		others := make([]Strategy, 0, len(strategies)-1)
		for _, o := range strategies {
			if o != s {
				others = append(others, o)
			}
		}
		var groups []Group
		var walk func(level int, coord map[Strategy]int)
		walk = func(level int, coord map[Strategy]int) {
			if level == len(others) {
				g := Group{Strategy: s}
				for i := 0; i < d; i++ {
					coord[s] = i
					g.Dies = append(g.Dies, dieOf[key(coord)])
				}
				coord[s] = 0
				g.Rect = boundingRectIfFull(p.Topo, g.Dies)
				groups = append(groups, g)
				return
			}
			o := others[level]
			for i := 0; i < cfg.DegreeOf(o); i++ {
				coord[o] = i
				walk(level+1, coord)
			}
			coord[o] = 0
		}
		walk(0, map[Strategy]int{})
		p.groups[s] = groups
	}
}

// boundingRectIfFull returns the bounding rectangle of the dies when
// they exactly fill it, else nil.
func boundingRectIfFull(t *mesh.Topology, dies []mesh.DieID) *mesh.Rect {
	if len(dies) == 0 {
		return nil
	}
	r := mesh.Rect{R0: 1 << 30, C0: 1 << 30, R1: -1, C1: -1}
	seen := make(map[mesh.DieID]bool, len(dies))
	for _, d := range dies {
		if seen[d] {
			return nil
		}
		seen[d] = true
		c := t.CoordOf(d)
		if c.R < r.R0 {
			r.R0 = c.R
		}
		if c.R > r.R1 {
			r.R1 = c.R
		}
		if c.C < r.C0 {
			r.C0 = c.C
		}
		if c.C > r.C1 {
			r.C1 = c.C
		}
	}
	if r.Area() != len(dies) {
		return nil
	}
	return &r
}

// EnumerateConfigs lists every hybrid configuration whose intra-wafer
// degree product equals dies, with degrees restricted to powers of
// two (the paper's search space, Fig. 17/18) and optional strategy
// caps. maxTATP of 0 means unbounded.
func EnumerateConfigs(dies int, allowTATP bool, maxTATP int) []Config {
	var out []Config
	for dp := 1; dp <= dies; dp *= 2 {
		if dies%dp != 0 {
			continue
		}
		for tp := 1; dp*tp <= dies; tp *= 2 {
			if dies%(dp*tp) != 0 {
				continue
			}
			for sp := 1; dp*tp*sp <= dies; sp *= 2 {
				if dies%(dp*tp*sp) != 0 {
					continue
				}
				tatp := dies / (dp * tp * sp)
				if tatp&(tatp-1) != 0 {
					continue // keep power-of-two degrees
				}
				if !allowTATP && tatp > 1 {
					continue
				}
				if maxTATP > 0 && tatp > maxTATP {
					continue
				}
				out = append(out, Config{DP: dp, TP: tp, SP: sp, TATP: tatp, CP: 1, PP: 1})
			}
		}
	}
	return out
}
