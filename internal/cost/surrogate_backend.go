package cost

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"

	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
	"temp/internal/surrogate"
	"temp/internal/unit"
)

// surrogateBackend is the cheap screening tier of §VII-A: per
// (model, wafer) pair it trains — once, deterministically from its
// seed — a pair of MLPs that mimic the analytic operator model, then
// serves predictions from the frozen weights. Lookups avoid the
// closed-form lowering entirely, and the trained predictors are safe
// for concurrent use (read-only weights), so search strategies can
// hammer them from every worker.
type surrogateBackend struct {
	seed int64

	mu      sync.Mutex
	entries map[string]*surrogateEntry
}

// surrogateEntry trains one (model, wafer) pair exactly once; the
// per-entry Once keeps seconds-long training off the backend-wide
// lock so concurrent Price calls for other (or already-trained)
// pairs never serialize behind it. Training errors are cached too,
// so an unplaceable pair fails fast on every call.
type surrogateEntry struct {
	once sync.Once
	op   *surrogateOperator
	err  error
}

// newSurrogateBackend builds an untrained backend; training happens
// lazily per (model, wafer) key on first use.
func newSurrogateBackend(seed int64) *surrogateBackend {
	return &surrogateBackend{seed: seed, entries: map[string]*surrogateEntry{}}
}

// Name implements Backend.
func (s *surrogateBackend) Name() string { return "surrogate" }

// Seed returns the training seed (for spec round-trips and logs).
func (s *surrogateBackend) Seed() int64 { return s.seed }

// operatorFor returns the trained predictor for one model/wafer pair,
// training it on first use.
func (s *surrogateBackend) operatorFor(m model.Config, w hw.Wafer) (*surrogateOperator, error) {
	key := m.Name + "|" + w.Name
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok {
		e = &surrogateEntry{}
		s.entries[key] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		e.op, e.err = trainSurrogateOperator(m, w, s.seed)
	})
	return e.op, e.err
}

// Operator implements Backend.
func (s *surrogateBackend) Operator(m model.Config, w hw.Wafer) (OperatorModel, error) {
	return s.operatorFor(m, w)
}

// Price implements Backend: a screening-fidelity step estimate
// assembled from per-operator predictions. Memory is the exact
// closed-form footprint (so OOM verdicts match the analytic tier);
// the fine-grained latency split (stream/collective exposure) is not
// modelled at this tier and reads as compute.
func (s *surrogateBackend) Price(m model.Config, w hw.Wafer, cfg parallel.Config, o Options) (Breakdown, error) {
	so, err := s.operatorFor(m, w)
	if err != nil {
		return Breakdown{}, err
	}
	return so.price(cfg, o)
}

// surrogateRNG derives the deterministic training stream for one
// (model, wafer, seed) triple.
func surrogateRNG(m model.Config, w hw.Wafer, seed int64) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(m.Name))
	h.Write([]byte{'|'})
	h.Write([]byte(w.Name))
	return rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
}

// surrogateOperator is the trained per-operator predictor pair. After
// training it is immutable, hence safe for concurrent use.
type surrogateOperator struct {
	teacher OperatorAnalytic
	graph   model.Graph
	intra   *surrogate.OpDNN
	inter   *surrogate.OpDNN
}

// surrogate training sizes: enough samples/epochs for ~1% relative
// error against the smooth closed-form teacher while keeping a full
// model-zoo training sweep in seconds.
const (
	surrIntraSamples = 1024
	surrInterSamples = 640
	surrHidden       = 24
	surrEpochs       = 160
)

// trainSurrogateOperator fits the intra and inter predictors against
// the analytic teacher over the wafer's strategy space.
func trainSurrogateOperator(m model.Config, w hw.Wafer, seed int64) (*surrogateOperator, error) {
	base := parallel.EnumerateConfigs(w.Dies(), true, 0)
	if len(base) == 0 {
		return nil, fmt.Errorf("cost: surrogate backend needs a power-of-two strategy space; wafer %s has %d dies",
			w.Name, w.Dies())
	}
	// EnumerateConfigs leaves MegatronSP/FSDP unset; system sweeps
	// (MeSP, FSDP baselines) price flagged variants, so cover both
	// flags in training or the DNN would extrapolate on features it
	// never saw.
	pool := append([]parallel.Config(nil), base...)
	for _, c := range base {
		if c.SP > 1 {
			v := c
			v.MegatronSP = true
			pool = append(pool, v)
		}
		if c.DP > 1 {
			v := c
			v.FSDP = true
			pool = append(pool, v)
		}
	}
	so := &surrogateOperator{
		teacher: OperatorAnalytic{W: w, M: m},
		graph:   model.BlockGraph(m),
	}
	rng := surrogateRNG(m, w, seed)
	ops := so.graph.Ops

	intra := make([]surrogate.Sample, 0, surrIntraSamples)
	for i := 0; i < surrIntraSamples; i++ {
		op := ops[rng.Intn(len(ops))]
		cfg := pool[rng.Intn(len(pool))]
		intra = append(intra, surrogate.Sample{
			Features: surrogate.IntraFeatures(op, cfg),
			TargetMS: so.teacher.Intra(op, cfg) * 1e3,
		})
	}
	so.intra = surrogate.TrainOpDNN(intra, surrHidden, surrEpochs, rng)

	inter := make([]surrogate.Sample, 0, surrInterSamples)
	// Degenerate spaces (e.g. a single-config pool) may reshard zero
	// bytes on every transition; bound the rejection sampling so
	// training always terminates.
	for tries := 0; len(inter) < surrInterSamples && tries < 50*surrInterSamples; tries++ {
		i := 1 + rng.Intn(len(ops)-1)
		pc := pool[rng.Intn(len(pool))]
		nc := pool[rng.Intn(len(pool))]
		bytes := so.teacher.ReshardBytes(ops[i-1], pc, nc)
		if bytes <= 0 {
			continue // structural zeros are served exactly, not learned
		}
		inter = append(inter, surrogate.Sample{
			Features: surrogate.InterFeatures(bytes),
			TargetMS: so.teacher.Inter(ops[i-1], ops[i], pc, nc) * 1e3,
		})
	}
	if len(inter) > 0 {
		so.inter = surrogate.TrainOpDNN(inter, 12, surrEpochs, rng)
	}
	return so, nil
}

// Intra implements OperatorModel (seconds).
func (so *surrogateOperator) Intra(op model.Op, cfg parallel.Config) float64 {
	return so.intra.Predict(surrogate.IntraFeatures(op, cfg)) / 1e3
}

// Inter implements OperatorModel. The structural layout math is
// exact (zero-byte reshards cost exactly zero); only the link-time
// curve comes from the predictor. A space whose transitions never
// reshard trains no predictor and serves the teacher's closed form
// (there is nothing cheaper to learn).
func (so *surrogateOperator) Inter(prev, next model.Op, pc, nc parallel.Config) float64 {
	bytes := so.teacher.ReshardBytes(prev, pc, nc)
	if bytes <= 0 {
		return 0
	}
	if so.inter == nil {
		return so.teacher.Inter(prev, next, pc, nc)
	}
	return so.inter.Predict(surrogate.InterFeatures(bytes)) / 1e3
}

// MemoryOK implements OperatorModel: feasibility is closed-form and
// cheap at every tier, so the screening tier never mispredicts OOM.
func (so *surrogateOperator) MemoryOK(cfg parallel.Config) bool {
	return so.teacher.MemoryOK(cfg)
}

// price assembles a screening-fidelity Breakdown: per-operator
// predictions aggregated with the full model's step structure
// (micro-stepping, pipeline bubbles, optimizer), exact memory.
func (so *surrogateOperator) price(cfg parallel.Config, o Options) (Breakdown, error) {
	m, w := so.teacher.M, so.teacher.W
	cfg = cfg.Normalize()
	stages := maxInt(cfg.PP, 1)
	layersPerStage := unit.CeilDiv(m.Layers, stages)
	mem := MemoryPerDie(m, w, cfg, o, layersPerStage)

	mb := o.microbatch()
	perRankBatch := maxInt(m.Batch/maxInt(cfg.DP, 1), 1)
	if mb > perRankBatch {
		mb = perRankBatch
	}
	microSteps := maxInt(perRankBatch/mb, 1)

	var layerFwd float64
	for _, op := range so.graph.Ops {
		layerFwd += so.Intra(op, cfg)
	}
	// Backward doubles compute and stream volume (the full model's 2×
	// terms); fwd + bwd ≈ 3× the forward intra total.
	microTime := float64(layersPerStage) * 3 * layerFwd

	var p2pTime, bubbleTime float64
	if stages > 1 {
		h := float64(m.Hidden)
		bytes := float64(mb) * float64(m.Seq) * h * unit.FP16.Size() / float64(cfg.Degree())
		hop := bytes/w.InterWaferBandwidth + w.InterWaferLatency
		p2pTime = 2 * hop * float64(microSteps)
		bubbleTime = float64(stages-1) * (microTime + 2*hop)
	}
	optimTime := 3 * mem.Optimizer / w.Die.MemBandwidth()
	stepTime := float64(microSteps)*microTime + p2pTime + bubbleTime + optimTime

	b := Breakdown{
		Model:         m.Name,
		Config:        cfg,
		Engine:        o.Engine,
		StepTime:      stepTime,
		ComputeTime:   float64(microSteps) * microTime,
		P2PTime:       p2pTime,
		BubbleTime:    bubbleTime,
		OptimizerTime: optimTime,
		Memory:        mem,
	}
	if stepTime > 0 {
		b.ThroughputTokens = float64(m.Tokens()) / stepTime
	}
	return b, nil
}

var _ OperatorModel = (*surrogateOperator)(nil)
var _ Backend = (*surrogateBackend)(nil)
