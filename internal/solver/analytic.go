// Package solver implements the Dual-Level Wafer Solver (§VII): a
// wafer-customized per-operator cost model, the dual-level search
// algorithm (residual-cut graph partitioning + recursive chain
// dynamic programming + genetic refinement, Fig. 12(b)), and an
// exhaustive joint-search baseline standing in for the ILP solvers
// the paper compares search time against (§VIII-H).
package solver

import (
	"strings"

	"temp/internal/cost"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
)

// CostModel prices operators under candidate strategies. It is
// structurally identical to cost.OperatorModel, so every registered
// cost backend's per-operator fast path (analytic, replay, surrogate)
// plugs in directly via cost.NewBackend(...).Operator(m, w).
//
// Implementations must be safe for concurrent use: strategies price
// whole GA populations across Budget.Workers goroutines (GOMAXPROCS
// by default), so Intra/Inter/MemoryOK may be called from several
// goroutines at once. Stateless or read-only models qualify as-is:
// Analytic is a read-only struct, the replay tier only mutates an
// internally-locked placement cache, and trained surrogates serve
// predictions from frozen weights. A model that mutates shared state
// must either synchronize internally or be run with Workers: 1.
type CostModel interface {
	// Intra returns T_intra(op) of Eq. (2): compute overlapped with
	// streaming plus exposed collectives, under the strategy.
	Intra(op model.Op, cfg parallel.Config) float64
	// Inter returns T_inter(op1, op2) of Eq. (3): the resharding
	// P2P cost between consecutive operators under their strategies.
	Inter(prev, next model.Op, pc, nc parallel.Config) float64
	// MemoryOK reports whether the strategy fits per-die memory for
	// the whole model (a global, non-chain constraint the genetic
	// level enforces).
	MemoryOK(cfg parallel.Config) bool
}

// Analytic is the closed-form wafer cost model of §VII-A, now owned
// by the cost package as the analytic backend's operator fast path.
// The alias preserves the historical solver surface (&solver.Analytic
// {W: w, M: m}) bit-identically.
type Analytic = cost.OperatorAnalytic

var _ CostModel = (*Analytic)(nil)

// BackendModel resolves a registered cost backend's per-operator
// model by key ("analytic", "replay", "surrogate@seed=7") — the
// bridge the CLIs and scenario runner use to search at a chosen
// fidelity tier.
func BackendModel(key string, m model.Config, w hw.Wafer) (CostModel, error) {
	be, err := cost.NewBackend(key)
	if err != nil {
		return nil, err
	}
	return be.Operator(m, w)
}

// SearchModels resolves the (exact, screen) cost-model pair for one
// search — the single rule the scenario runner and the CLIs share:
//
//   - exact comes from the backend key ("" = analytic);
//   - screen is the surrogate tier, attached only for the strategies
//     that use one ("multifid", and "portfolio" which races a
//     multifid when a screen is present) and nil otherwise;
//   - a surrogate backend key combined with a screening strategy
//     supplies the screen (keeping its seed) and degrades the exact
//     tier to analytic — a screened search must never verify its
//     winner on the surrogate it screened with.
func SearchModels(strategy, backendKey string, m model.Config, w hw.Wafer, screenSeed int64) (exact, screen CostModel, err error) {
	screens := strategy == "multifid" || strategy == "portfolio"
	exactKey := backendKey
	screenKey := cost.BackendKey("surrogate", screenSeed)
	canon := cost.CanonicalBackendKey(backendKey)
	if screens && (canon == "surrogate" || strings.HasPrefix(canon, "surrogate@")) {
		exactKey = ""
		screenKey = canon
	}
	if exact, err = BackendModel(exactKey, m, w); err != nil {
		return nil, nil, err
	}
	if !screens {
		return exact, nil, nil
	}
	if screen, err = BackendModel(screenKey, m, w); err != nil {
		return nil, nil, err
	}
	return exact, screen, nil
}
