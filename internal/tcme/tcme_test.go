package tcme

import (
	"strings"
	"testing"

	"temp/internal/collective"
	"temp/internal/hw"
	"temp/internal/mesh"
	"temp/internal/unit"
)

func topo(r, c int) *mesh.Topology { return mesh.New(r, c, hw.TableID2D()) }

func flow(t *mesh.Topology, src, dst mesh.DieID, bytes float64, payload string) mesh.Flow {
	return mesh.Flow{Src: src, Dst: dst, Bytes: bytes, Route: t.RouteXY(src, dst), Payload: payload}
}

// TestRerouteResolvesFig5Contention reproduces the Fig. 5(b) setup:
// two flows (0→2 and 1→3 in the top row) collide on link 1→2 under XY
// routing; the optimizer must find a detour and halve the bottleneck.
func TestRerouteResolvesFig5Contention(t *testing.T) {
	tp := topo(2, 4)
	d0, d1 := tp.ID(mesh.Coord{R: 0, C: 0}), tp.ID(mesh.Coord{R: 0, C: 1})
	d2, d3 := tp.ID(mesh.Coord{R: 0, C: 2}), tp.ID(mesh.Coord{R: 0, C: 3})
	p := mesh.Phase{Flows: []mesh.Flow{
		flow(tp, d0, d2, 64*unit.MB, "data1"),
		flow(tp, d1, d3, 64*unit.MB, "data2"),
	}}
	res := Optimize(tp, p, Options{})
	if res.FinalMaxLoad >= res.InitialMaxLoad {
		t.Fatalf("no improvement: %v", res)
	}
	if res.Improvement() < 1.9 {
		t.Errorf("improvement = %.2fx, want ~2x (Fig. 5(b))", res.Improvement())
	}
	if err := tp.ValidatePhase(res.Phase); err != nil {
		t.Fatal(err)
	}
	if res.ReroutedFlows == 0 {
		t.Error("expected at least one reroute")
	}
}

// TestMergeCollapsesReplicatedUnicasts: three unicasts of the same
// payload from one source merge into a multicast tree.
func TestMergeCollapsesReplicatedUnicasts(t *testing.T) {
	tp := topo(1, 4)
	p := mesh.Phase{Flows: []mesh.Flow{
		flow(tp, 0, 1, 32*unit.MB, "w0"),
		flow(tp, 0, 2, 32*unit.MB, "w0"),
		flow(tp, 0, 3, 32*unit.MB, "w0"),
	}}
	res := Optimize(tp, p, Options{})
	if res.MergedFlows < 2 {
		t.Fatalf("merged %d flows, want ≥2: %v", res.MergedFlows, res)
	}
	if res.FinalMaxLoad != 32*unit.MB {
		t.Errorf("final max load = %v, want single payload %v", res.FinalMaxLoad, 32*unit.MB)
	}
	if res.Improvement() < 2.9 {
		t.Errorf("improvement = %.2fx, want ~3x", res.Improvement())
	}
}

func TestMergeSkipsDifferentSizes(t *testing.T) {
	tp := topo(1, 4)
	p := mesh.Phase{Flows: []mesh.Flow{
		flow(tp, 0, 2, 32*unit.MB, "w0"),
		flow(tp, 0, 3, 16*unit.MB, "w0"), // same tag, different size ⇒ not the same datum
	}}
	res := Optimize(tp, p, Options{DisableReroute: true})
	if res.MergedFlows != 0 {
		t.Errorf("merged %d mismatched flows", res.MergedFlows)
	}
}

func TestAblationFlags(t *testing.T) {
	tp := topo(2, 4)
	mk := func() mesh.Phase {
		return mesh.Phase{Flows: []mesh.Flow{
			flow(tp, 0, 2, 64*unit.MB, "a"),
			flow(tp, 1, 3, 64*unit.MB, "b"),
			flow(tp, 0, 6, 64*unit.MB, "rep"),
			flow(tp, 0, 2, 64*unit.MB, "rep"),
		}}
	}
	full := Optimize(tp, mk(), Options{})
	noMerge := Optimize(tp, mk(), Options{DisableMerge: true})
	noReroute := Optimize(tp, mk(), Options{DisableReroute: true})
	if noMerge.MergedFlows != 0 {
		t.Error("merge ran despite DisableMerge")
	}
	if noReroute.ReroutedFlows != 0 {
		t.Error("reroute ran despite DisableReroute")
	}
	if full.FinalMaxLoad > noMerge.FinalMaxLoad || full.FinalMaxLoad > noReroute.FinalMaxLoad {
		t.Errorf("full optimizer (%v) worse than ablated (%v / %v)",
			full.FinalMaxLoad, noMerge.FinalMaxLoad, noReroute.FinalMaxLoad)
	}
}

func TestOptimizeNeverWorsens(t *testing.T) {
	tp := topo(4, 4)
	// A busy mixed phase: FSDP-style gathers + chained P2P.
	seqs := collective.Merge(
		collective.RingAllGather(tp, []mesh.DieID{0, 1, 5, 4}, 16*unit.MB),
		collective.P2PChain(tp, []mesh.DieID{2, 0, 8, 10}, 16*unit.MB, "tatp"),
		collective.P2PChain(tp, []mesh.DieID{3, 1, 9, 11}, 16*unit.MB, "tatp2"),
	)
	for _, ph := range seqs {
		res := Optimize(tp, ph, Options{})
		if res.FinalMaxLoad > res.InitialMaxLoad*(1+1e-9) {
			t.Fatalf("optimizer worsened phase: %v", res)
		}
		if err := tp.ValidatePhase(res.Phase); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFig11Scenario reproduces the paper's 4×4 worked example: FSDP
// all-gather groups of four adjacent dies overlapping TATP P2P chains
// that cross them. TCME must cut the bottleneck load.
func TestFig11Scenario(t *testing.T) {
	tp := topo(4, 4)
	id := func(r, c int) mesh.DieID { return tp.ID(mesh.Coord{R: r, C: c}) }
	bytes := 32 * unit.MB
	fsdpGroups := [][]mesh.DieID{
		{id(0, 1), id(0, 0), id(1, 0), id(1, 1)},
		{id(0, 3), id(0, 2), id(1, 2), id(1, 3)},
		{id(2, 1), id(2, 0), id(3, 0), id(3, 1)},
		{id(2, 3), id(2, 2), id(3, 2), id(3, 3)},
	}
	tatpChains := [][]mesh.DieID{
		{id(0, 2), id(0, 0), id(2, 0), id(2, 2)},
		{id(0, 3), id(0, 1), id(2, 1), id(2, 3)},
		{id(1, 2), id(1, 0), id(3, 0), id(3, 2)},
		{id(1, 3), id(1, 1), id(3, 1), id(3, 3)},
	}
	var seqs [][]mesh.Phase
	for _, g := range fsdpGroups {
		seqs = append(seqs, collective.RingAllGather(tp, g, bytes))
	}
	for i, c := range tatpChains {
		seqs = append(seqs, collective.P2PChain(tp, c, bytes, "tatp"+string(rune('a'+i))))
	}
	merged := collective.Merge(seqs...)
	var before, after float64
	for _, ph := range merged {
		res := Optimize(tp, ph, Options{})
		before += res.InitialMaxLoad
		after += res.FinalMaxLoad
	}
	if after >= before {
		t.Fatalf("TCME failed to improve Fig. 11 scenario: %v → %v", before, after)
	}
	if imp := before / after; imp < 1.2 {
		t.Errorf("improvement %.2fx, want ≥1.2x", imp)
	}
}

func TestOptimizeEmptyPhase(t *testing.T) {
	tp := topo(2, 2)
	res := Optimize(tp, mesh.Phase{}, Options{})
	if res.InitialMaxLoad != 0 || res.FinalMaxLoad != 0 {
		t.Errorf("empty phase loads = %v/%v", res.InitialMaxLoad, res.FinalMaxLoad)
	}
}

func TestOptimizeAllAggregates(t *testing.T) {
	tp := topo(2, 4)
	phases := []mesh.Phase{
		{Flows: []mesh.Flow{flow(tp, 0, 2, unit.MB, "a"), flow(tp, 1, 3, unit.MB, "b")}},
		{Flows: []mesh.Flow{flow(tp, 4, 6, unit.MB, "c"), flow(tp, 5, 7, unit.MB, "d")}},
	}
	out, agg := OptimizeAll(tp, phases, Options{})
	if len(out) != 2 {
		t.Fatalf("OptimizeAll returned %d phases", len(out))
	}
	if agg.FinalMaxLoad > agg.InitialMaxLoad {
		t.Error("aggregate got worse")
	}
}

func TestResultString(t *testing.T) {
	r := Result{InitialMaxLoad: 10, FinalMaxLoad: 5, Iterations: 2, MergedFlows: 1, ReroutedFlows: 3}
	s := r.String()
	if !strings.Contains(s, "2.00x") {
		t.Errorf("Result.String() = %q, want improvement factor", s)
	}
	if r.Improvement() != 2 {
		t.Errorf("Improvement = %v", r.Improvement())
	}
}

func TestImprovementZeroFinal(t *testing.T) {
	r := Result{InitialMaxLoad: 0, FinalMaxLoad: 0}
	if r.Improvement() != 1 {
		t.Errorf("degenerate improvement = %v, want 1", r.Improvement())
	}
}
