package engine

import (
	"errors"
	"strings"
	"testing"
)

// TestForEachPanicPropagates: a panic in one worker goroutine
// surfaces to the caller as a *PanicError (previously it crashed the
// process with no caller context).
func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				pe, ok := r.(*PanicError)
				if !ok {
					t.Fatalf("workers=%d: recovered %T, want *PanicError", workers, r)
				}
				if !strings.Contains(pe.Error(), "boom-42") {
					t.Fatalf("workers=%d: panic value lost: %v", workers, pe)
				}
				if len(pe.Stack) == 0 {
					t.Fatalf("workers=%d: original stack lost", workers)
				}
			}()
			ForEach(workers, 64, func(i int) {
				if i == 42 {
					panic("boom-42")
				}
			})
		}()
	}
}

// TestForEachPanicDoesNotHang: after a panic the remaining workers
// drain promptly and every non-panicking item before the stop flag is
// observed exactly once or not at all — no deadlock, no double-run.
func TestForEachPanicDoesNotHang(t *testing.T) {
	ran := make([]int32, 1024)
	func() {
		defer func() { recover() }()
		ForEach(4, len(ran), func(i int) {
			ran[i]++
			if i == 100 {
				panic(errors.New("stop"))
			}
		})
	}()
	for i, c := range ran {
		if c > 1 {
			t.Fatalf("item %d ran %d times", i, c)
		}
	}
}

// TestPoolMapPanic: the pool's Map path shares ForEach's propagation.
func TestPoolMapPanic(t *testing.T) {
	p := New(4)
	defer func() {
		if _, ok := recover().(*PanicError); !ok {
			t.Fatal("Pool.Map did not surface the worker panic")
		}
	}()
	p.Map(32, func(i int) {
		if i == 7 {
			panic("pool boom")
		}
	})
}

// TestPanicErrorUnwrap: error panic values stay matchable through
// errors.Is.
func TestPanicErrorUnwrap(t *testing.T) {
	sentinel := errors.New("sentinel")
	pe := Guard(func() { panic(sentinel) })
	if pe == nil {
		t.Fatal("Guard missed the panic")
	}
	if !errors.Is(pe, sentinel) {
		t.Fatal("PanicError does not unwrap to the panicked error")
	}
	if Guard(func() {}) != nil {
		t.Fatal("Guard reported a panic for a clean function")
	}
}

// TestForEachSerialPanic: the workers<=1 path propagates the raw
// panic value unchanged (natural unwinding, zero overhead).
func TestForEachSerialPanic(t *testing.T) {
	defer func() {
		if r := recover(); r != "serial" {
			t.Fatalf("recovered %v, want raw value", r)
		}
	}()
	ForEach(1, 4, func(i int) { panic("serial") })
}
