package distrib

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"net"
	"os"
	"reflect"
	"syscall"
	"testing"
	"time"

	"temp/internal/cost"
	"temp/internal/engine"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
)

// memoProbeKind reports how many warm memo records the executing
// process holds — run through the fabric, it observes the worker
// subprocess's post-sync state.
const memoProbeKind = "distrib.test.memoprobe"

type memoProbeIn struct{ X int }

type memoProbeOut struct{ Records int }

func init() {
	RegisterKind(memoProbeKind, HandlerGob(func(ctx context.Context, in memoProbeIn) (memoProbeOut, error) {
		_, n := engine.MemoSegment()
		return memoProbeOut{Records: n}, nil
	}))
}

func workerCommand() ([]string, []string) {
	return []string{os.Args[0], "-test.run=^TestWorkerProcess$"},
		[]string{"TEMP_DISTRIB_WORKER=1"}
}

// TestHeartbeatDetectsStalledWorker SIGSTOPs a worker mid-sweep — the
// process is alive but wedged, so its pipes never close and TCP-style
// keepalive would never fire. The heartbeat detector must declare it
// dead after MissedBeats silent intervals and requeue its in-flight
// shard onto the surviving worker, keeping the merged result
// bit-identical to the in-process golden.
func TestHeartbeatDetectsStalledWorker(t *testing.T) {
	inputs := squares(30, 20)
	golden, goldenErrs := RunTasks[squareIn, squareOut](nil, testKind, inputs)
	checkSquares(t, golden, goldenErrs)

	cmd, env := workerCommand()
	hb := 50 * time.Millisecond
	f, err := New(Options{
		Workers: 2, ShardSize: 2,
		Heartbeat: hb, MissedBeats: 3,
		Command: cmd, Env: env,
	})
	if err != nil {
		t.Fatalf("fabric: %v", err)
	}
	t.Cleanup(func() { f.Shutdown() })

	var stalledAt time.Time
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(60 * time.Millisecond)
		f.mu.Lock()
		pid := f.workers[0].pid
		f.mu.Unlock()
		stalledAt = time.Now()
		if err := syscall.Kill(pid, syscall.SIGSTOP); err != nil {
			t.Errorf("SIGSTOP worker 0 (pid %d): %v", pid, err)
		}
	}()
	outs, errs := RunTasks[squareIn, squareOut](f, testKind, inputs)
	finished := time.Now()
	<-done
	checkSquares(t, outs, errs)
	if !reflect.DeepEqual(outs, golden) {
		t.Fatal("merged result after stall differs from the in-process golden")
	}
	// Detection fires at MissedBeats*hb; well before that bound times
	// ten, the whole remaining sweep must have finished on the
	// survivor. (TCP keepalive, for scale, defaults to two hours.)
	if d := finished.Sub(stalledAt); d > 10*3*hb+time.Second {
		t.Fatalf("run took %s after the stall; heartbeat detection did not rescue it", d)
	}

	fs := f.Shutdown()
	if fs.HeartbeatDead != 1 {
		t.Fatalf("heartbeat deaths = %d, want 1", fs.HeartbeatDead)
	}
	if fs.Requeued < 1 {
		t.Fatalf("requeued = %d, want >= 1", fs.Requeued)
	}
	died, missed := 0, int64(0)
	for _, w := range fs.Workers {
		if w.Died {
			died++
			missed = w.MissedBeats
		}
	}
	if died != 1 {
		t.Fatalf("died workers = %d, want 1", died)
	}
	if missed < 3 {
		t.Fatalf("dead worker recorded %d missed beats, want >= 3", missed)
	}
}

// evilWriter is one corrupt-frame scenario: given the raw conn (and
// its buffered writer), emit a malformed response to the shard it
// just received.
type evilWriter func(t *testing.T, conn net.Conn, bw *bufio.Writer, sh *shardMsg)

// TestGarbledFramesMarkWorkerDead is the fuzz-style table test: a
// fake TCP worker answers its first shard with garbage — a garbled
// length prefix, an oversize length, a corrupt payload, a truncated
// frame, a protocol-violating message, a shape-mismatched result.
// Every case must mark the worker dead and requeue the shard (the run
// finishes in-process, bit-identical); none may panic or hang.
func TestGarbledFramesMarkWorkerDead(t *testing.T) {
	rawFrame := func(payloadLen, sum uint32, payload []byte) []byte {
		b := make([]byte, frameHeaderSize+len(payload))
		binary.LittleEndian.PutUint32(b[0:4], payloadLen)
		binary.LittleEndian.PutUint32(b[4:8], sum)
		copy(b[frameHeaderSize:], payload)
		return b
	}
	cases := []struct {
		name string
		evil evilWriter
	}{
		{"zero-length-prefix", func(t *testing.T, conn net.Conn, bw *bufio.Writer, sh *shardMsg) {
			conn.Write(rawFrame(0, 0, nil))
		}},
		{"oversize-length-prefix", func(t *testing.T, conn net.Conn, bw *bufio.Writer, sh *shardMsg) {
			conn.Write(rawFrame(maxFrame+1, 0, []byte("x")))
		}},
		{"checksum-mismatch", func(t *testing.T, conn net.Conn, bw *bufio.Writer, sh *shardMsg) {
			payload := []byte("not a gob stream")
			conn.Write(rawFrame(uint32(len(payload)), crc32.ChecksumIEEE(payload)+1, payload))
		}},
		{"truncated-frame", func(t *testing.T, conn net.Conn, bw *bufio.Writer, sh *shardMsg) {
			payload := []byte("cut off mid-frame")
			frame := rawFrame(uint32(len(payload)+64), crc32.ChecksumIEEE(payload), payload)
			conn.Write(frame) // header promises 64 more bytes that never come
		}},
		{"protocol-violation", func(t *testing.T, conn net.Conn, bw *bufio.Writer, sh *shardMsg) {
			// A well-formed frame of a type the coordinator never
			// expects mid-run.
			writeFrame(bw, &envelope{Type: msgHello, Hello: &helloMsg{Version: protoVersion}})
		}},
		{"result-shape-mismatch", func(t *testing.T, conn net.Conn, bw *bufio.Writer, sh *shardMsg) {
			writeFrame(bw, &envelope{Type: msgResult, Result: &resultMsg{Seq: sh.Seq, Start: sh.Start}})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Reserve a port, release it, let the fake worker
			// retry-dial while the fabric binds.
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			addr := ln.Addr().String()
			ln.Close()

			go func() {
				var conn net.Conn
				var err error
				for i := 0; i < 100; i++ {
					if conn, err = net.Dial("tcp", addr); err == nil {
						break
					}
					time.Sleep(10 * time.Millisecond)
				}
				if err != nil {
					t.Errorf("fake worker dial: %v", err)
					return
				}
				defer conn.Close()
				br := bufio.NewReader(conn)
				bw := bufio.NewWriter(conn)
				if _, err := exchangeHello(br, bw, os.Getpid(), true); err != nil {
					t.Errorf("fake worker hello: %v", err)
					return
				}
				for {
					env, err := readFrame(br)
					if err != nil {
						return // coordinator tore the link down
					}
					if env.Type == msgShard && env.Shard != nil {
						tc.evil(t, conn, bw, env.Shard)
						return
					}
				}
			}()

			f, err := New(Options{Workers: 1, Listen: addr, ShardSize: 2})
			if err != nil {
				t.Fatalf("fabric: %v", err)
			}
			outs, errs := RunTasks[squareIn, squareOut](f, testKind, squares(6, 0))
			checkSquares(t, outs, errs)
			fs := f.Shutdown()
			died := 0
			for _, w := range fs.Workers {
				if w.Died {
					died++
				}
			}
			if died != 1 {
				t.Fatalf("died workers = %d, want 1", died)
			}
			if fs.InProcessTasks != 6 {
				t.Fatalf("inprocess tasks = %d, want all 6 after the worker died", fs.InProcessTasks)
			}
		})
	}
}

// TestChaosCampaignBitIdentical runs seeded chaos campaigns — corrupt,
// stall, and kill each at 10% per frame, both directions, across 4
// workers — and requires the merged result to stay bit-identical to
// the in-process golden under every seed. Requeue, retry bounds,
// heartbeat death, and in-process fallback carry correctness; chaos
// only decides how hard they are exercised.
func TestChaosCampaignBitIdentical(t *testing.T) {
	inputs := squares(48, 1)
	golden, goldenErrs := RunTasks[squareIn, squareOut](nil, testKind, inputs)
	checkSquares(t, golden, goldenErrs)

	cmd, env := workerCommand()
	for _, seed := range []int64{1, 2, 3} {
		f, err := New(Options{
			Workers: 4, ShardSize: 2, Retries: 3,
			Heartbeat: 40 * time.Millisecond, MissedBeats: 3,
			ShardTimeout:  2 * time.Second,
			AttachTimeout: time.Second,
			Chaos: &ChaosConfig{
				Seed:        seed,
				CorruptRate: 0.1, StallRate: 0.1, KillRate: 0.1,
				Stall: 120 * time.Millisecond,
			},
			Command: cmd, Env: env,
		})
		// Chaos may eat a hello: a partially attached fabric is the
		// expected degraded mode, not a failure.
		_ = err
		outs, errs := RunTasks[squareIn, squareOut](f, testKind, inputs)
		for i := range errs {
			if errs[i] != nil {
				t.Fatalf("seed %d: task %d surfaced a transport error: %v", seed, i, errs[i])
			}
		}
		if !reflect.DeepEqual(outs, golden) {
			t.Fatalf("seed %d: merged result under chaos differs from the in-process golden", seed)
		}
		f.Shutdown()
	}
}

// TestDrainFinishesInFlight: Drain blocks until the running sweep
// completes, and afterwards the fabric (still valid) executes new
// runs in-process.
func TestDrainFinishesInFlight(t *testing.T) {
	f := newTestFabric(t, 2, 1)
	inputs := squares(12, 30)

	type runOut struct {
		outs []squareOut
		errs []error
	}
	got := make(chan runOut, 1)
	go func() {
		outs, errs := RunTasks[squareIn, squareOut](f, testKind, inputs)
		got <- runOut{outs, errs}
	}()
	time.Sleep(50 * time.Millisecond)
	f.Drain()
	if !f.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
	// Drain returning means the run's shards are all merged; give the
	// caller goroutine a brief grace window to decode and hand back.
	select {
	case r := <-got:
		checkSquares(t, r.outs, r.errs)
	case <-time.After(500 * time.Millisecond):
		t.Fatal("Drain returned while the run was still in flight")
	}
	if !f.Snapshot().Draining {
		t.Fatal("Snapshot does not report draining")
	}

	// Post-drain runs complete in-process.
	before := f.Snapshot().InProcessTasks
	outs, errs := RunTasks[squareIn, squareOut](f, testKind, squares(8, 0))
	checkSquares(t, outs, errs)
	if after := f.Snapshot().InProcessTasks; after-before != 8 {
		t.Fatalf("post-drain run executed %d tasks in-process, want all 8", after-before)
	}
}

// TestRunCtxCancelAbandonsShards: cancelling the Run context returns
// promptly, stamps unfinished tasks with ctx.Err(), and leaves the
// fabric shut-downable.
func TestRunCtxCancelAbandonsShards(t *testing.T) {
	f := newTestFabric(t, 2, 2)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(60 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, errs := RunTasksCtx[squareIn, squareOut](ctx, f, testKind, squares(24, 150))
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("cancelled run still took %s", d)
	}
	cancelled := 0
	for _, err := range errs {
		if errors.Is(err, context.Canceled) {
			cancelled++
		} else if err != nil {
			t.Fatalf("unexpected task error: %v", err)
		}
	}
	if cancelled == 0 {
		t.Fatal("no task reported ctx.Err() after cancellation")
	}
}

// TestMemoSyncWarmStartsWorker: with SyncMemo on, a worker that
// reports no memo of its own receives the coordinator's warm segment
// at attach and serves probes against it.
func TestMemoSyncWarmStartsWorker(t *testing.T) {
	memo := engine.NewMemoryMemo()
	job := engine.Job{
		Model:  model.GPT3_6_7B(),
		Wafer:  hw.EvaluationWafer(),
		Config: parallel.Config{DP: 1, TP: 1, SP: 1, CP: 1, TATP: 1, PP: 1},
		Opts:   cost.TEMPOptions(),
	}
	const records = 5
	for i := 0; i < records; i++ {
		j := job
		j.Model.Layers += i
		var b cost.Breakdown
		b.StepTime = float64(i) + 0.5
		if err := memo.Store(j, engine.Result{Breakdown: b}); err != nil {
			t.Fatal(err)
		}
	}
	engine.Default().SetDiskMemo(memo)
	t.Cleanup(func() { engine.Default().SetDiskMemo(nil) })

	cmd, env := workerCommand()
	f, err := New(Options{Workers: 1, SyncMemo: true, Command: cmd, Env: env})
	if err != nil {
		t.Fatalf("fabric: %v", err)
	}
	outs, errs := RunTasks[memoProbeIn, memoProbeOut](f, memoProbeKind, []memoProbeIn{{X: 1}})
	if errs[0] != nil {
		t.Fatalf("probe: %v", errs[0])
	}
	if outs[0].Records != records {
		t.Fatalf("worker reports %d warm memo records, want %d", outs[0].Records, records)
	}
	fs := f.Shutdown()
	if fs.InProcessTasks != 0 {
		t.Fatalf("probe ran in-process (%d tasks), not on the worker", fs.InProcessTasks)
	}
	if fs.Workers[0].MemoSyncBytes == 0 {
		t.Fatal("worker stats record no synced memo bytes")
	}
}
