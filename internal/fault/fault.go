// Package fault implements the systematic fault-tolerance mechanism
// of §VIII-F (Fig. 20): random link and core fault injection, fault
// localization, adaptive tensor re-partitioning (capacity-weighted
// work re-balancing), and communication re-routing around dead
// hardware — all at the framework level rather than relying on
// hardware redundancy.
package fault

import (
	"fmt"
	"math/rand"

	"temp/internal/cost"
	"temp/internal/hw"
	"temp/internal/mesh"
	"temp/internal/model"
	"temp/internal/parallel"
)

// Injection describes a fault scenario.
type Injection struct {
	// LinkRate is the fraction of D2D link bundles that fail.
	LinkRate float64
	// CoreRate is the per-core failure probability inside each die;
	// a die's surviving capacity is its fraction of healthy cores.
	CoreRate float64
	// CoresPerDie sizes the per-die core array (Fig. 3: 8×8).
	CoresPerDie int
}

// Active reports whether the injection perturbs anything; inactive
// injections let scenario runners skip the fault stage entirely.
func (in Injection) Active() bool {
	return in.LinkRate > 0 || in.CoreRate > 0
}

// Apply injects faults into a topology using the given source of
// randomness. Link bundles (both directions) fail together.
//
// Bundles are visited over the dense canonical link index: IDs ascend
// in (From, To) order, so keeping only l.From < l.To walks each bundle
// exactly once — the canonical order gives dedup for free, with no
// per-trial map. The visit order matches the historical first-
// occurrence order of Links(), so seeded masks are unchanged.
func (in Injection) Apply(t *mesh.Topology, rng *rand.Rand) {
	if in.LinkRate > 0 {
		for id := 0; id < t.NumLinks(); id++ {
			l := t.LinkByID(id)
			if l.From > l.To {
				continue
			}
			if rng.Float64() < in.LinkRate {
				t.SetLinkAlive(l, false)
			}
		}
	}
	if in.CoreRate > 0 {
		cores := in.CoresPerDie
		if cores <= 0 {
			cores = 64
		}
		for d := 0; d < t.Dies(); d++ {
			dead := 0
			for c := 0; c < cores; c++ {
				if rng.Float64() < in.CoreRate {
					dead++
				}
			}
			frac := 1 - float64(dead)/float64(cores)
			t.SetCoreFraction(mesh.DieID(d), frac)
			if frac <= 0 {
				t.SetDieAlive(mesh.DieID(d), false)
			}
		}
	}
}

// Report describes the localization step: what failed and whether
// the surviving fabric can still run the configuration.
type Report struct {
	DeadLinks int
	DeadDies  int
	// MeanCapacity is the average surviving core fraction.
	MeanCapacity float64
	// Connected reports whether the alive dies form one component.
	Connected bool
}

// Localize scans a topology for faults (step 1 of Fig. 20(a)). The
// dense link index spans the pristine mesh regardless of the fault
// mask, so dead bundles are counted with a plain walk over canonical
// IDs — no dedup map and no pristine-mesh rebuild.
func Localize(t *mesh.Topology) Report {
	r := Report{Connected: t.Connected()}
	for d := 0; d < t.Dies(); d++ {
		id := mesh.DieID(d)
		if !t.DieAlive(id) {
			r.DeadDies++
		} else {
			r.MeanCapacity += t.CoreFraction(id)
		}
	}
	alive := t.Dies() - r.DeadDies
	if alive > 0 {
		r.MeanCapacity /= float64(alive)
	}
	for id := 0; id < t.NumLinks(); id++ {
		l := t.LinkByID(id)
		if l.From > l.To {
			continue
		}
		if !t.LinkAlive(l) {
			r.DeadLinks++
		}
	}
	return r
}

// Outcome is the result of one faulted evaluation.
type Outcome struct {
	Report     Report
	Breakdown  cost.Breakdown
	Functional bool
}

// Evaluate runs the cost model on a faulted topology with TEMP's
// three-step tolerance: localization, adaptive re-partitioning
// (capacity-weighted re-balance via AdaptiveRebalance), and re-routing
// (the mesh router avoids dead links). A disconnected fabric, or one
// whose placement can no longer route, is reported non-functional.
func Evaluate(m model.Config, w hw.Wafer, cfg parallel.Config, o cost.Options, in Injection, rng *rand.Rand) Outcome {
	return EvaluateWith("", m, w, cfg, o, in, rng)
}

// EvaluateWith is Evaluate at a named cost-backend fidelity: the
// degraded topology is priced through the backend's placement-aware
// path (tiers without one, like the surrogate, fall back to the
// analytic model — see cost.EvaluateOnWith).
func EvaluateWith(backend string, m model.Config, w hw.Wafer, cfg parallel.Config, o cost.Options, in Injection, rng *rand.Rand) Outcome {
	// FromWafer returns the interned immutable mesh; injection needs a
	// private mutable copy. Once the fault mask is final the degraded
	// topology is interned too, so repeated trials (and the evaluator's
	// per-topology lowering caches) share one frozen instance per mask.
	topo := mesh.FromWafer(w).Clone()
	in.Apply(topo, rng)
	topo = topo.Intern()
	rep := Localize(topo)
	// Report.Connected is t.Connected(): one explicit functional check.
	if !rep.Connected {
		return Outcome{Report: rep}
	}
	b, ok := priceDegraded(backend, m, w, cfg, o, topo)
	if !ok {
		return Outcome{Report: rep}
	}
	return Outcome{Report: rep, Breakdown: b, Functional: true}
}

// priceDegraded places cfg on an already-degraded (and connected)
// topology and prices it at the backend tier with TEMP's adaptive
// re-partitioning enabled. ok is false when the configuration cannot
// be placed or priced on the surviving fabric — the shared functional
// check behind Evaluate, the repair solver, the campaign harness and
// the worst-case mask search.
func priceDegraded(backend string, m model.Config, w hw.Wafer, cfg parallel.Config, o cost.Options,
	topo *mesh.Topology) (cost.Breakdown, bool) {
	o.AdaptiveRebalance = true
	var place *parallel.Placement
	var err error
	if o.Engine == cost.SMap {
		place, err = parallel.PlaceLinear(cfg, topo)
	} else {
		place, err = parallel.Place(cfg, topo)
	}
	if err != nil {
		return cost.Breakdown{}, false
	}
	b, err := cost.EvaluateOnWith(backend, m, w, cfg, o, topo, place)
	if err != nil {
		return cost.Breakdown{}, false
	}
	return b, true
}

// NormalizedThroughput runs trials at a fault rate and returns mean
// throughput relative to the fault-free baseline — the y-axis of
// Fig. 20(b)/(c). Non-functional trials contribute zero. A
// non-positive trial count is a validation error (returned as 0 plus
// the error, never NaN).
func NormalizedThroughput(m model.Config, w hw.Wafer, cfg parallel.Config, o cost.Options,
	in Injection, trials int, seed int64) (float64, error) {
	return NormalizedThroughputWith("", m, w, cfg, o, in, trials, seed)
}

// NormalizedThroughputWith is NormalizedThroughput at a named
// cost-backend fidelity; baseline and faulted trials price through
// the same tier, so the normalization stays consistent.
func NormalizedThroughputWith(backend string, m model.Config, w hw.Wafer, cfg parallel.Config, o cost.Options,
	in Injection, trials int, seed int64) (float64, error) {
	if trials <= 0 {
		return 0, fmt.Errorf("fault: trial count %d is not positive", trials)
	}
	base, err := cost.EvaluateWith(backend, m, w, cfg, o)
	if err != nil {
		return 0, err
	}
	if base.ThroughputTokens <= 0 {
		return 0, nil
	}
	rng := rand.New(rand.NewSource(seed))
	var sum float64
	for i := 0; i < trials; i++ {
		out := EvaluateWith(backend, m, w, cfg, o, in, rng)
		if out.Functional {
			sum += out.Breakdown.ThroughputTokens / base.ThroughputTokens
		}
	}
	return sum / float64(trials), nil
}
