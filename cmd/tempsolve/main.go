// Command tempsolve runs the partition-mapping search for a model:
// any registered search strategy (the paper's dual-level GA, simulated
// annealing, random-restart hill-climb, chain-DP only, or a portfolio
// racing them) over the hybrid strategy space, followed by a
// full-simulator evaluation of the best uniform configuration. Models
// and wafers resolve through the scenario registry; -scenario solves
// the model/wafer pair a JSON scenario defines (honouring its solver
// stage unless -strategy overrides it).
//
//	tempsolve -model gpt3-175b
//	tempsolve -model llama3-70b -strategy portfolio
//	tempsolve -model llama3-70b -strategy anneal -budget 20000,30s
//	tempsolve -model llama3-70b -no-ga
//	tempsolve -scenario examples/custom_scenario/scenario.json
//	tempsolve -scenarios scenarios/
//	tempsolve -list-strategies
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"temp/internal/baselines"
	"temp/internal/cost"
	"temp/internal/distrib"
	"temp/internal/engine"
	"temp/internal/fault"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
	"temp/internal/solver"
	"temp/internal/spec"
	"temp/internal/unit"
)

// resilience carries the -repair/-fault-campaign post-solve stages:
// both act on the solved dominant configuration, repair warm-starting
// its search from that mapping.
type resilience struct {
	repair       bool
	campaignPath string
	in           fault.Injection
	faultSeed    int64
	seed         int64
	workers      int
}

// run applies the stages to the solved mapping.
func (rz resilience) run(m model.Config, w hw.Wafer, cfg parallel.Config, o cost.Options, backendKey string) error {
	if rz.repair {
		rec, err := fault.RepairInjected(m, w, cfg, o, rz.in, rz.faultSeed, fault.RepairOptions{
			Backend: backendKey, Seed: rz.seed,
			Budget: solver.Budget{Workers: rz.workers},
		})
		if err != nil {
			return err
		}
		fmt.Printf("repair       link=%.0f%% core=%.0f%% seed=%d: %d dead links, %d dead dies\n",
			rz.in.LinkRate*100, rz.in.CoreRate*100, rz.faultSeed,
			rec.Report.DeadLinks, rec.Report.DeadDies)
		fmt.Printf("             re-price %.3f -> repaired %.3f on %s (%s, %d evals, %s)\n",
			rec.RepriceNorm, rec.RepairedNorm, rec.RepairedConfig,
			rec.Strategy, rec.WarmEvals, rec.WarmElapsed)
	}
	if rz.campaignPath != "" {
		cr, err := fault.Campaign{
			Model: m, Wafer: w, Config: cfg, Opts: o,
			Backend: backendKey, Workers: rz.workers,
		}.Run()
		if err != nil {
			return err
		}
		fmt.Printf("campaign     %d cells x %d trials -> %s\n",
			len(cr.Cells), cr.Trials, rz.campaignPath)
		buf, err := json.MarshalIndent(cr, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(rz.campaignPath, append(buf, '\n'), 0o644)
	}
	return nil
}

// solve runs the search strategy plus full-simulator cross-check for
// one model/wafer pair. backendKey selects the cost backend whose
// operator model prices the search exactly ("" = analytic); the
// multifid strategy (and the portfolio, which races it) additionally
// screens on the surrogate tier seeded with screenSeed.
func solve(ctx context.Context, m model.Config, w hw.Wafer, st solver.Strategy, b solver.Budget, backendKey string, screenSeed int64, o cost.Options, rz resilience, fab *distrib.Fabric, raceSeed int64) error {
	g := model.BlockGraph(m)
	space := parallel.EnumerateConfigs(w.Dies(), true, 0)
	if len(space) == 0 {
		return fmt.Errorf("no power-of-two strategy space for %d dies on %s", w.Dies(), w.Name)
	}
	cm, screen, err := solver.SearchModels(st.Name(), backendKey, m, w, screenSeed)
	if err != nil {
		return err
	}
	p := solver.Problem{Graph: g, Space: space, Model: cm, Screen: screen}

	var assign solver.Assignment
	var stats solver.Stats
	if fab != nil && st.Name() == "portfolio" {
		// Distributed racing: one racer per worker process, winner
		// selection identical to the in-process portfolio.
		assign, stats, err = solver.DistributedRace(ctx, fab, m, w, backendKey, raceSeed, screenSeed, b)
		if err != nil {
			return err
		}
	} else {
		if fab != nil {
			fmt.Fprintln(os.Stderr, "tempsolve: -distribute races the portfolio; strategy", st.Name(), "runs in-process")
		}
		assign, stats = st.Solve(ctx, p, b)
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "tempsolve: interrupted — reporting best-so-far mapping")
	}
	fmt.Printf("model        %s on %s\n", m, w.Name)
	backendName := "analytic"
	if backendKey != "" {
		backendName = backendKey
	}
	fmt.Printf("backend      %s\n", backendName)
	fmt.Printf("strategy     %s", stats.Strategy)
	if stats.Winner != "" {
		fmt.Printf(" (winner %s of %d racers)", stats.Winner, len(stats.Sub))
	}
	fmt.Println()
	fmt.Printf("search space %d strategies × %d operators\n", len(space), len(g.Ops))
	fmt.Printf("search time  %s (%d exact cost-model evaluations", stats.Elapsed, stats.Evaluations)
	if stats.ScreenEvaluations > 0 {
		fmt.Printf(", %d surrogate screen evaluations", stats.ScreenEvaluations)
	}
	switch {
	case stats.Generations > 0:
		fmt.Printf(", %d GA generations", stats.Generations)
	case stats.Restarts > 0:
		fmt.Printf(", %d moves over %d restarts", stats.Iterations, stats.Restarts)
	case stats.Iterations > 0:
		fmt.Printf(", %d moves", stats.Iterations)
	}
	fmt.Println(")")
	if len(stats.Checkpoints) > 0 {
		last := stats.Checkpoints[len(stats.Checkpoints)-1]
		fmt.Printf("checkpoints  %d (last: iter %d, cost %.3fms)\n",
			len(stats.Checkpoints), last.Iteration, last.Cost*1e3)
	}
	fmt.Printf("seed cost %.3fms, final cost %.3fms\n", stats.DPCost*1e3, stats.FinalCost*1e3)
	fmt.Println("per-operator strategies:")
	for i, op := range g.Ops {
		fmt.Printf("  %-14s %s\n", op.Name, space[assign[i]])
	}
	idx, share := solver.Uniform(assign)
	fmt.Printf("dominant strategy %s (%.0f%% of operators)\n", space[idx], share*100)

	// Cross-check against the full simulator sweep.
	best, err := baselines.Best(baselines.TEMP(), m, w)
	if err != nil {
		return err
	}
	fmt.Printf("full-simulator best: %s → step %s, %.1f tokens/s (OOM=%v)\n",
		best.Config, unit.Seconds(best.StepTime), best.ThroughputTokens, best.OOM())
	// The resilience stages act on the mapping a user would deploy —
	// the full-simulator best — so the recovery norms are relative to
	// the deployed baseline.
	return rz.run(m, w, best.Config, o, backendKey)
}

// solveScenario resolves a scenario spec and solves its model/wafer.
// The scenario's own solver stage applies unless the CLI overrides
// the strategy.
func solveScenario(ctx context.Context, ss spec.ScenarioSpec, st solver.Strategy, b solver.Budget, override bool, costStage *spec.CostStage, screenSeed int64, rz resilience, fab *distrib.Fabric, raceSeed int64) error {
	sc, err := ss.Resolve()
	if err != nil {
		return err
	}
	if costStage != nil {
		sc.Cost = costStage
	}
	if !override && sc.Solver != nil {
		st = sc.Solver.Strategy
		workers := b.Workers
		b = sc.Solver.Budget
		if b.Workers == 0 {
			b.Workers = workers
		}
		if sc.Solver.Seed != 0 {
			screenSeed = sc.Solver.Seed
		}
	}
	fmt.Printf("scenario     %s\n", sc.Name)
	backendKey := ""
	if sc.Cost != nil {
		backendKey = sc.Cost.Key
	}
	// Cost-stage surrogate seed wins; otherwise the CLI/stage seed,
	// matching the direct model/wafer path.
	if s := sc.Cost.SurrogateSeed(); s != 0 {
		screenSeed = s
	}
	return solve(ctx, sc.Model, sc.Wafer, st, b, backendKey, screenSeed, sc.System.Opts, rz, fab, raceSeed)
}

func main() {
	var (
		name      = flag.String("model", "gpt3-6.7b", "registered model name (-list-models)")
		waferName = flag.String("wafer", "", "registered wafer name (-list-wafers); overrides -rows/-cols")
		rows      = flag.Int("rows", 4, "wafer die rows")
		cols      = flag.Int("cols", 8, "wafer die columns")
		strategy  = flag.String("strategy", "ga", "search strategy (-list-strategies)")
		backend   = flag.String("backend", "", "cost backend whose operator model prices the search (-list-backends)")
		budget    = flag.String("budget", "", "search budget: eval count, duration, or both (\"20000,30s\")")
		noGA      = flag.Bool("no-ga", false, "stop after chain dynamic programming (alias for -strategy dp)")
		seed      = flag.Int64("seed", 7, "search randomness seed")
		repair    = flag.Bool("repair", false, "after solving, inject a seeded fault mask and repair from the solved mapping")
		faultLink = flag.Float64("fault-link", 0.15, "-repair link-fault rate")
		faultCore = flag.Float64("fault-core", 0, "-repair core-fault rate")
		faultSeed = flag.Int64("fault-seed", 3, "-repair fault-mask seed")
		campaign  = flag.String("fault-campaign", "", "run a fault campaign on the solved mapping and write survivability JSON to this file")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "evaluation worker-pool size")
		scenario  = flag.String("scenario", "", "solve the model/wafer of one scenario JSON file")
		scenarios = flag.String("scenarios", "", "solve every *.json scenario in a directory")
		listM     = flag.Bool("list-models", false, "list registered model names")
		listW     = flag.Bool("list-wafers", false, "list registered wafer names")
		listS     = flag.Bool("list-strategies", false, "list registered search strategies")
		listB     = flag.Bool("list-backends", false, "list registered cost backends")
		memoDir   = flag.String("memo-dir", os.Getenv("TEMPMEMO"),
			"persist priced results in this directory and warm-start from them (default $TEMPMEMO)")
		distribute = flag.Int("distribute", 0, "race portfolio strategies across N worker subprocesses")
		workerMode = flag.Bool("worker-mode", false, "internal: serve shards from a coordinator over stdio")
	)
	flag.Parse()
	engine.SetWorkers(*workers)

	// First SIGINT/SIGTERM cancels the solve gracefully — the solver
	// returns its best-so-far at the next budget check and distributed
	// shards are cancelled; a second signal kills the process (stop()
	// restores default handling after the first delivery).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "tempsolve:", err)
		os.Exit(1)
	}
	if *memoDir != "" {
		dm, err := engine.AttachDiskMemo(*memoDir)
		if err != nil {
			fail(err)
		}
		defer dm.Close()
	}
	if *workerMode {
		if err := distrib.ServeStdio(); err != nil {
			fail(err)
		}
		return
	}

	switch {
	case *listB:
		for _, n := range cost.BackendNames() {
			fmt.Println(n)
		}
		return
	case *listM:
		for _, n := range spec.Models.Names() {
			fmt.Println(n)
		}
		return
	case *listW:
		for _, n := range spec.Wafers.Names() {
			fmt.Println(n)
		}
		return
	case *listS:
		for _, n := range solver.StrategyNames() {
			fmt.Println(n)
		}
		return
	}

	strategyName := *strategy
	overridden := *noGA
	strategySet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "strategy" || f.Name == "budget" {
			overridden = true
		}
		if f.Name == "strategy" {
			strategySet = true
		}
	})
	if *noGA {
		if strategySet && strategyName != "dp" {
			fail(fmt.Errorf("-no-ga conflicts with -strategy %s (it is an alias for -strategy dp)", strategyName))
		}
		strategyName = "dp"
	}
	st, err := solver.NewStrategy(strategyName, solver.Params{"seed": float64(*seed)})
	if err != nil {
		fail(err)
	}
	b, err := spec.ParseBudget(*budget)
	if err != nil {
		fail(err)
	}
	b.Workers = *workers
	costStage, err := spec.CostOverride(*backend, *seed)
	if err != nil {
		fail(err)
	}
	backendKey := ""
	if costStage != nil {
		backendKey = costStage.Key
	}
	var fab *distrib.Fabric
	if *distribute > 0 {
		exe, err := os.Executable()
		if err != nil {
			fail(err)
		}
		cmdline := []string{exe, "-worker-mode", "-workers", fmt.Sprint(*workers)}
		if *memoDir != "" {
			cmdline = append(cmdline, "-memo-dir", *memoDir)
		}
		if fab, err = distrib.New(distrib.Options{Workers: *distribute, Command: cmdline}); err != nil {
			fmt.Fprintln(os.Stderr, "tempsolve: distrib:", err)
		}
		defer fab.Shutdown()
	}
	rz := resilience{
		repair:       *repair,
		campaignPath: *campaign,
		in:           fault.Injection{LinkRate: *faultLink, CoreRate: *faultCore, CoresPerDie: 64},
		faultSeed:    *faultSeed,
		seed:         *seed,
		workers:      *workers,
	}

	switch {
	case *scenario != "":
		ss, err := spec.LoadScenario(*scenario)
		if err == nil {
			err = solveScenario(ctx, ss, st, b, overridden, costStage, *seed, rz, fab, *seed)
		}
		if err != nil {
			fail(err)
		}
		return
	case *scenarios != "":
		sss, err := spec.LoadScenarioDir(*scenarios)
		if err != nil {
			fail(err)
		}
		for i, ss := range sss {
			if i > 0 {
				fmt.Println()
			}
			if err := solveScenario(ctx, ss, st, b, overridden, costStage, *seed, rz, fab, *seed); err != nil {
				fail(err)
			}
		}
		return
	}

	m, err := spec.LookupModel(*name)
	if err != nil {
		fail(err)
	}
	var w hw.Wafer
	if *waferName != "" {
		if w, err = spec.LookupWafer(*waferName); err != nil {
			fail(err)
		}
	} else {
		w = hw.WaferWithGrid(*rows, *cols)
	}
	if err := solve(ctx, m, w, st, b, backendKey, *seed, baselines.TEMP().Opts, rz, fab, *seed); err != nil {
		fail(err)
	}
}
