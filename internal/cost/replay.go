package cost

import (
	"fmt"
	"sync"

	"temp/internal/collective"
	"temp/internal/hw"
	"temp/internal/mesh"
	"temp/internal/model"
	"temp/internal/parallel"
	"temp/internal/stream"
	"temp/internal/tcme"
	"temp/internal/unit"
)

// replayBackend is the contention-fidelity tier: instead of the
// closed-form collective and stream terms of the analytic operator
// model, every communication phase is lowered onto the wafer mesh and
// link-load replayed through the TCME optimizer.
//
//   - Price runs the full evaluator with the replay flag set, so even
//     SMap/GMap scenarios get their phases contention-replayed — a
//     "what if only communication scheduling improved" study the
//     monolithic entry point could not express.
//   - Operator returns OperatorReplay, which places each candidate
//     configuration on the mesh and replays its TATP streams and TP
//     ring collectives flow by flow.
type replayBackend struct{}

// Name implements Backend.
func (*replayBackend) Name() string { return "replay" }

// Price implements Backend.
func (*replayBackend) Price(m model.Config, w hw.Wafer, cfg parallel.Config, o Options) (Breakdown, error) {
	return evaluate(m, w, cfg, o, true)
}

// Operator implements Backend.
func (*replayBackend) Operator(m model.Config, w hw.Wafer) (OperatorModel, error) {
	return NewOperatorReplay(m, w), nil
}

// PriceOn implements PlacementBackend: fault studies replay degraded
// topologies at the same contention fidelity as healthy ones.
func (*replayBackend) PriceOn(m model.Config, w hw.Wafer, cfg parallel.Config, o Options,
	topo *mesh.Topology, place *parallel.Placement) (Breakdown, error) {
	return evaluateOn(m, w, cfg, o, topo, place, true)
}

// replayPlacement carries the per-configuration lowering state the
// replay operator model reuses across calls: the placement, the TATP
// stream orchestrations and the TP group communication orders — plus
// the delta caches of the replayed terms themselves. A configuration's
// TP collective time depends on nothing but the configuration (the
// all-reduce payload is per-op-invariant), and its stream time depends
// only on the streamed sub-tensor size, so a solver mutating one
// assignment gene re-prices at most one fresh (cfg, sub) pair instead
// of replaying every phase sequence again.
type replayPlacement struct {
	place *parallel.Placement
	orchs []*stream.Orchestration
	tp    [][]mesh.DieID
	err   error

	// mu guards the replayed-term caches below. Holding it across the
	// replay itself also collapses concurrent duplicate work on one
	// configuration into a single computation.
	mu sync.Mutex
	// coll is the cached TP collective term (collOK marks it set).
	coll   float64
	collOK bool
	// streamT caches the exposed TATP stream term per streamed
	// sub-tensor byte size.
	streamT map[float64]float64
}

// OperatorReplay is the replay backend's per-operator model: the
// compute and memory terms match the analytic tier (they are not
// communication), but the TATP stream and TP collective terms are
// lowered onto an actual placement of the configuration and link-load
// replayed through the TCME optimizer — capturing the inter-group
// contention and multi-hop wrap costs the closed-form ring formulas
// average away.
//
// Per-configuration lowering state is built once and cached; the
// model is safe for concurrent use.
type OperatorReplay struct {
	analytic OperatorAnalytic
	topo     *mesh.Topology

	mu    sync.Mutex
	cache map[parallel.Config]*replayPlacement
}

// NewOperatorReplay builds the replay operator model for one
// model/wafer pair. The topology is the interned shared instance, so
// the replay tier's stream orchestrations and ring lowerings hit the
// same compiled-template caches the analytic evaluator populates.
func NewOperatorReplay(m model.Config, w hw.Wafer) *OperatorReplay {
	return NewOperatorReplayOn(m, w, mesh.FromWafer(w))
}

// NewOperatorReplayOn is NewOperatorReplay pinned to an explicit
// topology — typically a fault-degraded mesh, so searches can rank
// candidate configurations by how well their streams and collectives
// route around dead links (the repair solver's degraded cost model).
// Intern the topology first: frozen instances share the compiled
// lowering caches across every model built on the same fault mask.
func NewOperatorReplayOn(m model.Config, w hw.Wafer, topo *mesh.Topology) *OperatorReplay {
	return &OperatorReplay{
		analytic: OperatorAnalytic{W: w, M: m},
		topo:     topo,
		cache:    map[parallel.Config]*replayPlacement{},
	}
}

// placement returns the cached lowering state for a configuration.
func (r *OperatorReplay) placement(cfg parallel.Config) *replayPlacement {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.cache[cfg]; ok {
		return p
	}
	p := &replayPlacement{}
	place, err := parallel.Place(cfg, r.topo)
	if err != nil {
		if place, err = parallel.PlaceLinear(cfg, r.topo); err != nil {
			p.err = fmt.Errorf("cost: replay cannot place %s: %w", cfg, err)
			r.cache[cfg] = p
			return p
		}
	}
	p.place = place
	for _, g := range place.Groups(parallel.TATP) {
		p.orchs = append(p.orchs, stream.Orchestrate(r.topo, g.Dies, g.Rect))
	}
	for _, g := range place.Groups(parallel.TP) {
		order := g.Dies
		if g.Rect != nil {
			if ring, ok := g.Rect.RingPath(r.topo); ok {
				order = ring
			} else {
				order = g.Rect.SnakePath(r.topo)
			}
		}
		if len(order) > 1 {
			p.tp = append(p.tp, order)
		}
	}
	r.cache[cfg] = p
	return p
}

// replayPhases times a phase sequence through the TCME link-load
// replay.
func (r *OperatorReplay) replayPhases(phases []mesh.Phase) float64 {
	if len(phases) == 0 {
		return 0
	}
	opt, _ := tcme.OptimizeAll(r.topo, phases, tcme.Options{})
	return r.topo.SeqTime(opt).Total()
}

// Intra implements OperatorModel.
func (r *OperatorReplay) Intra(op model.Op, cfg parallel.Config) float64 {
	cfg = cfg.Normalize()
	a := &r.analytic
	pl := r.placement(cfg)
	if pl.err != nil {
		// Unplaceable on this grid: fall back to the closed-form terms
		// so the search still prices the candidate deterministically.
		return a.Intra(op, cfg)
	}

	// Compute is priced exactly as the analytic tier — the fidelity
	// axis is communication.
	comp := a.computeTerm(op, cfg)

	var streamT float64
	if cfg.TATP > 1 && op.HasWeight() && len(pl.orchs) > 0 {
		_, sub := a.streamedBytes(op, cfg)
		streamT = pl.streamTerm(r, cfg, sub)
	}

	var coll float64
	if cfg.TP > 1 && op.HasWeight() && len(pl.tp) > 0 {
		coll = pl.collTerm(r, cfg)
	}
	return unit.MaxF(comp, streamT) + coll
}

// streamTerm returns the replayed exposed-stream term of the
// placement's configuration for one streamed sub-tensor size, caching
// it: the phase sequence depends only on (placement, sub), so every
// operator with the same streamed slice shares one replay.
func (pl *replayPlacement) streamTerm(r *OperatorReplay, cfg parallel.Config, sub float64) float64 {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if t, ok := pl.streamT[sub]; ok {
		return t
	}
	var seqs [][]mesh.Phase
	for _, orch := range pl.orchs {
		seqs = append(seqs, orch.Phases(sub))
	}
	t := r.replayPhases(collective.Merge(seqs...)) +
		float64(cfg.TATP)*streamRoundSync
	if pl.streamT == nil {
		pl.streamT = map[float64]float64{}
	}
	pl.streamT[sub] = t
	return t
}

// collTerm returns the replayed TP collective term, computed once per
// placement: the all-reduce payload is a function of the configuration
// alone, so every weighted operator shares one replay.
func (pl *replayPlacement) collTerm(r *OperatorReplay, cfg parallel.Config) float64 {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.collOK {
		return pl.coll
	}
	arBytes := r.analytic.arBytes(cfg)
	var seqs [][]mesh.Phase
	for _, order := range pl.tp {
		seqs = append(seqs, collective.RingAllReduce(r.topo, order, arBytes))
	}
	merged := collective.Merge(seqs...)
	// Same 0.5 amortization (one AR per two weighted ops) and the
	// same per-phase sync charge as the full evaluator.
	pl.coll = 0.5 * (r.replayPhases(merged) + float64(len(merged))*streamRoundSync)
	pl.collOK = true
	return pl.coll
}

// Inter implements OperatorModel: the structural resharding bytes are
// exact; the transfer is replayed as a routed single-hop exchange
// (adding the hop latency the closed form drops).
func (r *OperatorReplay) Inter(prev, next model.Op, pc, nc parallel.Config) float64 {
	bytes := r.analytic.ReshardBytes(prev, pc, nc)
	if bytes <= 0 {
		return 0
	}
	return bytes/r.analytic.W.Link.EffectiveBandwidth(bytes) + r.analytic.W.Link.Latency
}

// MemoryOK implements OperatorModel (memory is closed-form at every
// tier).
func (r *OperatorReplay) MemoryOK(cfg parallel.Config) bool {
	return r.analytic.MemoryOK(cfg)
}

var _ OperatorModel = (*OperatorReplay)(nil)
