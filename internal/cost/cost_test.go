package cost

import (
	"testing"

	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
)

func temp825() (model.Config, hw.Wafer) {
	return model.GPT3_6_7B(), hw.EvaluationWafer()
}

func mustEval(t *testing.T, m model.Config, w hw.Wafer, cfg parallel.Config, o Options) Breakdown {
	t.Helper()
	b, err := Evaluate(m, w, cfg, o)
	if err != nil {
		t.Fatalf("Evaluate(%s, %s): %v", m.Name, cfg, err)
	}
	return b
}

func megaOpts(e Engine) Options {
	return Options{Engine: e, Recompute: RecomputeNone, Microbatch: 1, NoFlashAttention: true}
}

func mespOpts(e Engine) Options {
	return Options{Engine: e, Recompute: RecomputeSelective, DistributedOptimizer: true}
}

func fsdpOpts(e Engine) Options {
	return Options{Engine: e, Recompute: RecomputeFull, DistributedOptimizer: true}
}

func TestEvaluateBasicSanity(t *testing.T) {
	m, w := temp825()
	b := mustEval(t, m, w, parallel.Config{DP: 4, TATP: 8}, TEMPOptions())
	if b.StepTime <= 0 || b.ComputeTime <= 0 {
		t.Fatalf("non-positive times: %+v", b)
	}
	if b.StepTime < b.ComputeTime {
		t.Errorf("step %v < compute %v", b.StepTime, b.ComputeTime)
	}
	if b.ThroughputTokens <= 0 || b.Power <= 0 || b.PowerEfficiency <= 0 {
		t.Errorf("non-positive throughput/power: %+v", b)
	}
	if b.Memory.Total() <= 0 {
		t.Error("non-positive memory")
	}
	if b.BWUtilization < 0 || b.BWUtilization > 1 {
		t.Errorf("BW utilization out of range: %v", b.BWUtilization)
	}
}

// TestTEMPBeatsAllBaselines is the headline Fig. 13 shape: TEMP's
// best configuration outperforms every baseline on GPT-3 6.7B.
func TestTEMPBeatsAllBaselines(t *testing.T) {
	m, w := temp825()
	temp := mustEval(t, m, w, parallel.Config{DP: 4, TATP: 8}, TEMPOptions())
	baselines := []struct {
		name string
		cfg  parallel.Config
		o    Options
		band float64
	}{
		// Megatron-1's period-accurate conventions (no flash, full
		// activation stash) make it the big loser of Fig. 13.
		{"Mega+SMap", parallel.Config{DP: 16, TP: 2}, megaOpts(SMap), 6},
		{"Mega+GMap", parallel.Config{DP: 16, TP: 2}, megaOpts(GMap), 6},
		{"MeSP+SMap", parallel.Config{DP: 2, TP: 8, SP: 2, MegatronSP: true}, mespOpts(SMap), 3},
		{"MeSP+GMap", parallel.Config{DP: 2, TP: 8, SP: 2, MegatronSP: true}, mespOpts(GMap), 3},
		{"FSDP+SMap", parallel.Config{DP: 32, FSDP: true}, fsdpOpts(SMap), 3},
		{"FSDP+GMap", parallel.Config{DP: 32, FSDP: true}, fsdpOpts(GMap), 3},
	}
	for _, bl := range baselines {
		b := mustEval(t, m, w, bl.cfg, bl.o)
		if b.StepTime <= temp.StepTime {
			t.Errorf("%s (%v) not slower than TEMP (%v)", bl.name, b.StepTime, temp.StepTime)
		}
		if speedup := b.StepTime / temp.StepTime; speedup > bl.band {
			t.Errorf("%s speedup %.2fx implausibly large (band ≤%.0fx)", bl.name, speedup, bl.band)
		}
	}
}

// TestSMapSlowerThanGMap: the sequential mapper's rank-order
// communication pays multi-hop wraps that the topology-aware mapper
// avoids.
func TestSMapSlowerThanGMap(t *testing.T) {
	m, w := temp825()
	cfg := parallel.Config{DP: 4, TP: 8}
	sm := mustEval(t, m, w, cfg, megaOpts(SMap))
	gm := mustEval(t, m, w, cfg, megaOpts(GMap))
	if sm.CollectiveTime <= gm.CollectiveTime {
		t.Errorf("SMap collectives %v not worse than GMap %v", sm.CollectiveTime, gm.CollectiveTime)
	}
	if sm.StepTime <= gm.StepTime {
		t.Errorf("SMap step %v not worse than GMap %v", sm.StepTime, gm.StepTime)
	}
}

// TestTCMENotWorseThanGMap: the optimizer must never lose to the
// contention-agnostic engine on identical configurations.
func TestTCMENotWorseThanGMap(t *testing.T) {
	m, w := temp825()
	for _, cfg := range []parallel.Config{
		{DP: 4, TATP: 8},
		{DP: 2, TP: 2, TATP: 8},
		{DP: 8, TP: 4},
	} {
		o := TEMPOptions()
		g := o
		g.Engine = GMap
		tc := mustEval(t, m, w, cfg, o)
		gm := mustEval(t, m, w, cfg, g)
		if tc.StepTime > gm.StepTime*(1+1e-9) {
			t.Errorf("%s: TCME %v slower than GMap %v", cfg, tc.StepTime, gm.StepTime)
		}
	}
}

// TestMegatronOOMOnLargeModels reproduces the Fig. 13 OOM pattern:
// replication-heavy Megatron-1 cannot hold the ≥70B models while
// TEMP's stream partitioning can.
func TestMegatronOOMOnLargeModels(t *testing.T) {
	w := hw.EvaluationWafer()
	for _, m := range []model.Config{model.Llama3_70B(), model.GPT3_175B(), model.OPT_175B()} {
		mega := mustEval(t, m, w, parallel.Config{DP: 4, TP: 8}, megaOpts(SMap))
		if !mega.OOM() {
			t.Errorf("%s under Megatron-1 should OOM (mem=%.0fGB cap=%.0fGB)",
				m.Name, mega.Memory.Total()/1e9, mega.Memory.Capacity/1e9)
		}
		temp := mustEval(t, m, w, parallel.Config{TP: 2, SP: 1, TATP: 16}, TEMPOptions())
		if temp.OOM() {
			t.Errorf("%s under TEMP should fit (mem=%.0fGB cap=%.0fGB)",
				m.Name, temp.Memory.Total()/1e9, temp.Memory.Capacity/1e9)
		}
	}
}

// TestTEMPMemoryBelowBaselines: TEMP's peak memory lands below the
// replication-based baselines (Fig. 13 memory panel: 49–82%).
func TestTEMPMemoryBelowBaselines(t *testing.T) {
	m, w := temp825()
	temp := mustEval(t, m, w, parallel.Config{DP: 4, TATP: 8}, TEMPOptions())
	mega := mustEval(t, m, w, parallel.Config{DP: 4, TP: 8}, megaOpts(GMap))
	if temp.Memory.Total() >= mega.Memory.Total() {
		t.Errorf("TEMP memory %.1fGB not below Megatron %.1fGB",
			temp.Memory.Total()/1e9, mega.Memory.Total()/1e9)
	}
}

// TestActivationReplicationDrivesMegatronMemory: the Fig. 4(a)/(c)
// mechanism — Megatron's TP leaves activations whole on every rank,
// MeSP's fused SP shards them.
func TestActivationReplicationDrivesMegatronMemory(t *testing.T) {
	m, w := temp825()
	mega := MemoryPerDie(m, w, (parallel.Config{DP: 4, TP: 8}).Normalize(), megaOpts(GMap), m.Layers)
	mesp := MemoryPerDie(m, w, (parallel.Config{DP: 4, TP: 4, SP: 2, MegatronSP: true}).Normalize(), mespOpts(GMap), m.Layers)
	if mega.Activations <= mesp.Activations {
		t.Errorf("Megatron activations %.1fGB not above MeSP %.1fGB",
			mega.Activations/1e9, mesp.Activations/1e9)
	}
	if r := mega.Activations / mesp.Activations; r < 4 {
		t.Errorf("activation replication ratio = %.1f, want ≥4 (TP·SP sharding gap)", r)
	}
}

// TestSweetSpotFig9: with canonical weight streaming, throughput
// peaks at a TATP degree of 8–16 and declines beyond (Fig. 9).
func TestSweetSpotFig9(t *testing.T) {
	mm := model.GPT3_175B()
	mm.Layers = 1
	o := TEMPOptions()
	o.ForceStreamWeights = true
	tput := map[int]float64{}
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		rows, cols := 2, n/2
		if n == 2 {
			rows, cols = 1, 2
		}
		b := mustEval(t, mm, hw.WaferWithGrid(rows, cols), parallel.Config{TATP: n}, o)
		tput[n] = b.ThroughputTokens
	}
	best := 2
	for _, n := range []int{4, 8, 16, 32, 64} {
		if tput[n] > tput[best] {
			best = n
		}
	}
	if best != 8 && best != 16 {
		t.Errorf("throughput sweet spot at N=%d, want 8–16 (Fig. 9); series=%v", best, tput)
	}
	if tput[64] >= tput[best] {
		t.Error("throughput should decline past the sweet spot")
	}
}

// TestStreamOverlapAblation: disabling compute/communication overlap
// must not speed anything up.
func TestStreamOverlapAblation(t *testing.T) {
	m, w := temp825()
	cfg := parallel.Config{DP: 2, TATP: 16}
	on := mustEval(t, m, w, cfg, TEMPOptions())
	off := TEMPOptions()
	off.DisableStreamOverlap = true
	noOv := mustEval(t, m, w, cfg, off)
	if noOv.StepTime <= on.StepTime {
		t.Errorf("overlap-off step %v not slower than overlap-on %v", noOv.StepTime, on.StepTime)
	}
}

// TestSelectiveTransferPolicy: long sequences stream weights, short
// sequences with small microbatches stream activations (§V policy).
func TestSelectiveTransferPolicy(t *testing.T) {
	long := model.Llama2_7B().WithSeq(16384, 32)
	cfg := (parallel.Config{TATP: 32}).Normalize()
	g := model.BlockGraph(long)
	var fc1 model.Op
	for _, op := range g.Ops {
		if op.Name == "fc1" {
			fc1 = op
		}
	}
	o := TEMPOptions()
	o.Microbatch = 8
	_, operand := streamSubTensorBytes(fc1, long, cfg, o)
	if operand.String() != "weights" {
		t.Errorf("long-sequence policy streams %v, want weights", operand)
	}
	short := model.GPT3_6_7B()
	gs := model.BlockGraph(short)
	for _, op := range gs.Ops {
		if op.Name == "fc1" {
			fc1 = op
		}
	}
	o.Microbatch = 1
	_, operand = streamSubTensorBytes(fc1, short, cfg, o)
	if operand.String() != "inputs" {
		t.Errorf("short-sequence policy streams %v, want inputs", operand)
	}
	// ForceStreamWeights overrides.
	o.ForceStreamWeights = true
	_, operand = streamSubTensorBytes(fc1, short, cfg, o)
	if operand.String() != "weights" {
		t.Errorf("ForceStreamWeights ignored: %v", operand)
	}
}

// TestFSDPRecomputeEnergy: full recomputation costs extra compute
// energy, reflected in power efficiency.
func TestFSDPRecomputeEnergy(t *testing.T) {
	m, w := temp825()
	fsdp := mustEval(t, m, w, parallel.Config{DP: 32, FSDP: true}, fsdpOpts(GMap))
	temp := mustEval(t, m, w, parallel.Config{DP: 4, TATP: 8}, TEMPOptions())
	if fsdp.PowerEfficiency >= temp.PowerEfficiency {
		t.Errorf("FSDP power efficiency %.1f not below TEMP %.1f",
			fsdp.PowerEfficiency, temp.PowerEfficiency)
	}
}

// TestPipelineBubbles: multi-wafer PP introduces bubbles; more
// microbatches amortize them (§VIII-E).
func TestPipelineBubbles(t *testing.T) {
	m := model.GPT3_175B()
	w := hw.EvaluationWafer()
	o := TEMPOptions()
	o.Wafers = 2
	cfg := parallel.Config{TP: 2, TATP: 16, PP: 2}
	b := mustEval(t, m, w, cfg, o)
	if b.BubbleTime <= 0 {
		t.Fatal("PP=2 should produce bubble time")
	}
	single := mustEval(t, m, w, parallel.Config{TP: 2, TATP: 16}, TEMPOptions())
	if single.BubbleTime != 0 {
		t.Error("single wafer should have no bubbles")
	}
	// Bubble fraction must shrink with smaller microbatches (more
	// accumulation steps).
	o2 := o
	o2.Microbatch = 1
	b2 := mustEval(t, m, w, cfg, o2)
	f1 := b.BubbleTime / b.StepTime
	f2 := b2.BubbleTime / b2.StepTime
	if f2 >= f1 {
		t.Errorf("bubble fraction should shrink with more microbatches: %v → %v", f1, f2)
	}
}

// TestGPUClusterComparison reproduces Fig. 15's ordering:
// Wafer+TEMP < GPU+MeSP < Wafer+MeSP in training latency.
func TestGPUClusterComparison(t *testing.T) {
	m := model.GPT3_6_7B()
	w := hw.ComparisonWafer32()
	c := hw.A100Cluster()
	gpu, err := EvaluateCluster(m, c, parallel.Config{DP: 4, TP: 8, MegatronSP: true}, mespOpts(GMap))
	if err != nil {
		t.Fatal(err)
	}
	waferMeSP := mustEval(t, m, w, parallel.Config{DP: 4, TP: 8, MegatronSP: true}, mespOpts(GMap))
	waferTEMP := mustEval(t, m, w, parallel.Config{DP: 4, TATP: 8}, TEMPOptions())
	if !(waferTEMP.StepTime < gpu.StepTime) {
		t.Errorf("Wafer+TEMP (%v) should beat GPU+MeSP (%v)", waferTEMP.StepTime, gpu.StepTime)
	}
	if !(gpu.StepTime < waferMeSP.StepTime) {
		t.Errorf("GPU+MeSP (%v) should beat Wafer+MeSP (%v) — hybrid parallelism mismatched to mesh",
			gpu.StepTime, waferMeSP.StepTime)
	}
}

// TestMemoryConservation: per-die memory scales down as sharding
// dimensions grow.
func TestMemoryConservation(t *testing.T) {
	m, w := temp825()
	m8 := MemoryPerDie(m, w, (parallel.Config{DP: 4, TATP: 8}).Normalize(), TEMPOptions(), m.Layers)
	m16 := MemoryPerDie(m, w, (parallel.Config{DP: 2, TATP: 16}).Normalize(), TEMPOptions(), m.Layers)
	if m16.Weights >= m8.Weights {
		t.Errorf("weights per die should shrink with TATP: %v vs %v", m16.Weights, m8.Weights)
	}
}

// TestEngineString covers the enum stringers.
func TestEngineString(t *testing.T) {
	if SMap.String() != "SMap" || GMap.String() != "GMap" || TCMEEngine.String() != "TCME" {
		t.Error("engine strings wrong")
	}
	if RecomputeNone.String() != "none" || RecomputeSelective.String() != "selective" || RecomputeFull.String() != "full" {
		t.Error("recompute strings wrong")
	}
}

// TestEvaluateRejectsBadConfig: degree mismatches surface as errors.
func TestEvaluateRejectsBadConfig(t *testing.T) {
	m, w := temp825()
	if _, err := Evaluate(m, w, parallel.Config{DP: 3}, TEMPOptions()); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestDebugTrace smoke-tests the calibration trace.
func TestDebugTrace(t *testing.T) {
	m, w := temp825()
	s := Debug(m, w, parallel.Config{DP: 4, TATP: 8}, TEMPOptions())
	if len(s) == 0 {
		t.Fatal("empty debug trace")
	}
}
