package engine

import (
	"fmt"
	"runtime/debug"
)

// PanicError wraps a panic recovered from a worker goroutine so the
// failure can cross goroutine (and, via distrib, process) boundaries
// without losing the original value or stack. ForEach re-panics with
// a *PanicError from the calling goroutine; distrib converts it into
// a task error string shipped back to the coordinator.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: worker panic: %v\n%s", e.Value, e.Stack)
}

// Unwrap exposes the panic value when it was itself an error, so
// errors.Is/As keep working through the wrapper.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

func newPanicError(v any) *PanicError {
	return &PanicError{Value: v, Stack: debug.Stack()}
}

// Guard runs f and converts a panic into a *PanicError instead of
// unwinding the caller. It is the panic-surfacing primitive shared by
// ForEach's parallel path and distrib's shard execution.
func Guard(f func()) (pe *PanicError) {
	defer func() {
		if r := recover(); r != nil {
			pe = newPanicError(r)
		}
	}()
	f()
	return nil
}
