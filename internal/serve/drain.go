package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"time"

	"temp/internal/solver"
)

// drainUnwind bounds the post-cancellation wait for handler goroutines
// to notice their dead contexts and release scheduler slots.
const drainUnwind = 5 * time.Second

// DrainReport summarizes one graceful shutdown: how many in-flight
// solves finished on their own, how many had to be cancelled when the
// grace period lapsed, and which checkpoint files were persisted for
// the cancelled ones.
type DrainReport struct {
	// Inflight is the solve count when the drain began.
	Inflight int `json:"inflight"`
	// Completed finished within the grace period; Canceled were cut
	// short when it lapsed.
	Completed int `json:"completed"`
	Canceled  int `json:"canceled"`
	// Checkpoints lists the best-so-far checkpoint files written for
	// cancelled solves (empty without Options.CheckpointDir).
	Checkpoints []string `json:"checkpoints,omitempty"`
	// Errors records checkpoint-persistence failures; the drain itself
	// still completes.
	Errors []string `json:"errors,omitempty"`
}

// Draining reports whether the server is refusing new solves.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully quiesces the server: new solve requests get 503 +
// Retry-After immediately, in-flight solves run until ctx ends (pass
// a deadline context for a bounded grace period), and any solve still
// running at that point has its best-so-far checkpoints persisted to
// Options.CheckpointDir before being cancelled. Drain returns once
// the scheduler is idle (or shortly after forced cancellation).
// It is idempotent; concurrent calls race harmlessly on the same
// atomic and inflight registry.
func (s *Server) Drain(ctx context.Context) DrainReport {
	s.draining.Store(true)

	s.inflightMu.Lock()
	rep := DrainReport{Inflight: len(s.inflight)}
	s.inflightMu.Unlock()

	if s.sched.WaitIdle(ctx) == nil {
		rep.Completed = rep.Inflight
		return rep
	}

	// Grace period lapsed: persist what the stragglers found so far,
	// then cancel them.
	s.inflightMu.Lock()
	rem := make([]*inflightSolve, 0, len(s.inflight))
	for _, in := range s.inflight {
		rem = append(rem, in)
	}
	s.inflightMu.Unlock()
	sort.Slice(rem, func(i, j int) bool { return rem[i].id < rem[j].id })

	for _, in := range rem {
		if path, err := s.persistCheckpoints(in); err != nil {
			rep.Errors = append(rep.Errors, err.Error())
		} else if path != "" {
			rep.Checkpoints = append(rep.Checkpoints, path)
		}
		in.cancel()
		rep.Canceled++
	}
	rep.Completed = rep.Inflight - rep.Canceled

	// Give the cancelled handlers a moment to unwind; solver budget
	// checks notice the context within iterations, so this is short.
	unwind, cancel := context.WithTimeout(context.Background(), drainUnwind)
	defer cancel()
	s.sched.WaitIdle(unwind)
	return rep
}

// checkpointFile is the persisted drain artifact: the cancelled
// request's identity plus its latest best-so-far checkpoint per
// scenario, enough to resume or audit the interrupted solve.
type checkpointFile struct {
	RequestID   string                       `json:"request_id"`
	Tenant      string                       `json:"tenant,omitempty"`
	Checkpoints map[string]solver.Checkpoint `json:"checkpoints"`
}

// persistCheckpoints writes one cancelled solve's checkpoints to
// CheckpointDir; returns "" when capture is off or nothing was
// recorded yet.
func (s *Server) persistCheckpoints(in *inflightSolve) (string, error) {
	dir := s.opts.CheckpointDir
	if dir == "" {
		return "", nil
	}
	cps := in.snapshot()
	if len(cps) == 0 {
		return "", nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("serve: checkpoint dir: %w", err)
	}
	name := in.reqID
	if name == "" {
		name = fmt.Sprintf("solve-%d", in.id)
	}
	path := filepath.Join(dir, sanitizeName(name)+".checkpoint.json")
	buf, err := json.MarshalIndent(checkpointFile{
		RequestID: in.reqID, Tenant: in.tenant, Checkpoints: cps,
	}, "", "  ")
	if err != nil {
		return "", fmt.Errorf("serve: encode checkpoints for %s: %w", name, err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return "", fmt.Errorf("serve: persist checkpoints: %w", err)
	}
	return path, nil
}

// sanitizeName keeps request IDs filesystem-safe.
func sanitizeName(s string) string {
	out := []rune(s)
	for i, r := range out {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}
