package solver

import (
	"math"
	"sync/atomic"

	"temp/internal/engine"
	"temp/internal/model"
	"temp/internal/parallel"
)

// evalShards shards the memo maps so parallel workers do not
// serialize on one lock.
const evalShards = 16

// evaluator wraps a CostModel to count evaluations and memoize. It is
// the shared pricing core every search strategy runs on: the memo
// maps are the engine's sharded Memo helper and the counter is
// atomic, so parallel workers share one memo. The count is the number
// of distinct keys evaluated, which is identical in serial and
// parallel runs.
type evaluator struct {
	cm    CostModel
	ops   []model.Op
	space []parallel.Config
	n     atomic.Int64

	intra *engine.Memo[[2]int, float64]
	inter *engine.Memo[[3]int, float64]
	mem   *engine.Memo[int, float64]
}

func newEvaluator(cm CostModel, ops []model.Op, space []parallel.Config) *evaluator {
	return &evaluator{
		cm: cm, ops: ops, space: space,
		intra: engine.NewMemo[[2]int, float64](evalShards, func(k [2]int) uint64 {
			return uint64(k[0]*31 + k[1])
		}),
		inter: engine.NewMemo[[3]int, float64](evalShards, func(k [3]int) uint64 {
			return uint64(k[0]*31 + k[1]*7 + k[2])
		}),
		mem: engine.NewMemo[int, float64](evalShards, func(k int) uint64 {
			return uint64(k)
		}),
	}
}

func (e *evaluator) intraCost(op, cfg int) float64 {
	v, fresh := e.intra.Get([2]int{op, cfg}, func() float64 {
		return e.cm.Intra(e.ops[op], e.space[cfg])
	})
	if fresh {
		e.n.Add(1)
	}
	return v
}

func (e *evaluator) interCost(op int, a, b int) float64 {
	if op == 0 {
		return 0
	}
	v, fresh := e.inter.Get([3]int{op, a, b}, func() float64 {
		return e.cm.Inter(e.ops[op-1], e.ops[op], e.space[a], e.space[b])
	})
	if fresh {
		e.n.Add(1)
	}
	return v
}

func (e *evaluator) memoryOK(cfg int) bool {
	v, fresh := e.mem.Get(cfg, func() float64 {
		if e.cm.MemoryOK(e.space[cfg]) {
			return 1
		}
		return 0
	})
	if fresh {
		e.n.Add(1)
	}
	return v == 1
}

// oomPenalty dominates any latency; an assignment with an
// out-of-memory gene can never beat a feasible one.
const oomPenalty = 1e6

func (e *evaluator) penalty(cfg int) float64 {
	if e.memoryOK(cfg) {
		return 0
	}
	return oomPenalty
}

// assignmentCost totals the chain objective of Eq. (4) plus an OOM
// penalty for strategies that exceed per-die memory.
func (e *evaluator) assignmentCost(a Assignment) float64 {
	var total float64
	for i, cfg := range a {
		total += e.intraCost(i, cfg) + e.penalty(cfg)
		if i > 0 {
			total += e.interCost(i, a[i-1], cfg)
		}
	}
	return total
}

// seedDP runs the level-1 chain dynamic program per residual-free
// segment (§VII-B) and returns the joint DP assignment — the seed
// every local-search strategy starts from.
func (e *evaluator) seedDP(g model.Graph) Assignment {
	assign := make(Assignment, len(g.Ops))
	offset := 0
	for _, seg := range g.Segments() {
		segAssign := chainDP(e, offset, len(seg))
		copy(assign[offset:], segAssign)
		offset += len(seg)
	}
	return assign
}

// chainDP solves the per-operator assignment of a chain segment
// [offset, offset+n) optimally in O(n·|S|²).
func chainDP(ev *evaluator, offset, n int) Assignment {
	s := len(ev.space)
	cost := make([][]float64, n)
	from := make([][]int, n)
	for i := range cost {
		cost[i] = make([]float64, s)
		from[i] = make([]int, s)
	}
	for c := 0; c < s; c++ {
		cost[0][c] = ev.intraCost(offset, c) + ev.penalty(c)
	}
	for i := 1; i < n; i++ {
		for c := 0; c < s; c++ {
			best := math.Inf(1)
			bestFrom := 0
			for p := 0; p < s; p++ {
				v := cost[i-1][p] + ev.interCost(offset+i, p, c)
				if v < best {
					best = v
					bestFrom = p
				}
			}
			cost[i][c] = best + ev.intraCost(offset+i, c) + ev.penalty(c)
			from[i][c] = bestFrom
		}
	}
	// Trace back from the cheapest terminal state.
	bestC := 0
	for c := 1; c < s; c++ {
		if cost[n-1][c] < cost[n-1][bestC] {
			bestC = c
		}
	}
	out := make(Assignment, n)
	out[n-1] = bestC
	for i := n - 1; i > 0; i-- {
		out[i-1] = from[i][out[i]]
	}
	return out
}

// incremental is the delta-cost view of one working assignment: it
// caches the per-position intra+penalty and inter terms, so pricing a
// one-gene move recomputes only the (at most three) affected
// cost-model terms instead of the full chain. Totals are summed in
// exactly assignmentCost's left-to-right order over the same memoized
// term values, so they equal a full recomputation bit-for-bit.
type incremental struct {
	ev     *evaluator
	assign Assignment
	// intraPen[i] is intraCost(i, assign[i]) + penalty(assign[i]),
	// added as one expression like assignmentCost does.
	intraPen []float64
	// inter[i] couples op i-1 → i; inter[0] is always zero.
	inter []float64
}

// incremental snapshots a starting assignment (copied, not aliased).
func (e *evaluator) incremental(a Assignment) *incremental {
	inc := &incremental{
		ev:       e,
		assign:   append(Assignment(nil), a...),
		intraPen: make([]float64, len(a)),
		inter:    make([]float64, len(a)),
	}
	for i, cfg := range inc.assign {
		inc.intraPen[i] = e.intraCost(i, cfg) + e.penalty(cfg)
		if i > 0 {
			inc.inter[i] = e.interCost(i, inc.assign[i-1], cfg)
		}
	}
	return inc
}

// cost totals the cached terms; bit-identical to
// assignmentCost(inc.assign).
func (inc *incremental) cost() float64 {
	var total float64
	for i := range inc.assign {
		total += inc.intraPen[i]
		if i > 0 {
			total += inc.inter[i]
		}
	}
	return total
}

// moveCost prices the assignment with gene i set to cfg without
// applying the move. Only the affected terms hit the cost model; the
// rest come from the cache.
func (inc *incremental) moveCost(i, cfg int) float64 {
	ip := inc.ev.intraCost(i, cfg) + inc.ev.penalty(cfg)
	var inPrev, inNext float64
	if i > 0 {
		inPrev = inc.ev.interCost(i, inc.assign[i-1], cfg)
	}
	if i+1 < len(inc.assign) {
		inNext = inc.ev.interCost(i+1, cfg, inc.assign[i+1])
	}
	var total float64
	for j := range inc.assign {
		t := inc.intraPen[j]
		if j == i {
			t = ip
		}
		total += t
		if j > 0 {
			e := inc.inter[j]
			switch j {
			case i:
				e = inPrev
			case i + 1:
				e = inNext
			}
			total += e
		}
	}
	return total
}

// apply commits the move, refreshing the affected cached terms.
func (inc *incremental) apply(i, cfg int) {
	inc.assign[i] = cfg
	inc.intraPen[i] = inc.ev.intraCost(i, cfg) + inc.ev.penalty(cfg)
	if i > 0 {
		inc.inter[i] = inc.ev.interCost(i, inc.assign[i-1], cfg)
	}
	if i+1 < len(inc.assign) {
		inc.inter[i+1] = inc.ev.interCost(i+1, cfg, inc.assign[i+1])
	}
}
