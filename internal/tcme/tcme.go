// Package tcme implements the Traffic-Conscious Mapping Engine's
// communication optimizer (§VI-B, Fig. 11): given a phase of
// concurrent flows produced by hybrid parallel strategies, it
// iteratively (1) identifies the most congested link, (2) collects
// the flows crossing it, (3) merges redundant same-payload flows into
// multicast trees, (4) reroutes the rest over idle links via
// load-weighted shortest paths, and (5) re-evaluates until the
// bottleneck load stops improving or an iteration cap is reached.
package tcme

import (
	"fmt"
	"sort"
	"sync"

	"temp/internal/mesh"
)

// denseState is the optimizer's per-Optimize scratch over the
// topology's canonical link index: flat load/count accumulators and a
// hot-link bitmap replace the per-call map allocations of the
// historical implementation. Decisions are bit-identical — the dense
// bottleneck scan walks link IDs in exactly the sorted (From, To)
// order the map version sorted into, and per-accumulator float
// summation order (flow order, then route order) is unchanged. Phases
// with off-mesh routes (synthetic tests) fall back to the map path.
type denseState struct {
	t       *mesh.Topology
	loads   []float64
	cnt     []int32
	touched []int32
	hot     []bool
}

var densePool = sync.Pool{New: func() any { return new(denseState) }}

// newDense returns pooled scratch for t, or nil when any route of p
// steps between non-adjacent dies (the map fallback handles those).
func newDense(t *mesh.Topology, p mesh.Phase) *denseState {
	for _, f := range p.Flows {
		for j := 0; j+1 < len(f.Route); j++ {
			if t.LinkID(mesh.Link{From: f.Route[j], To: f.Route[j+1]}) < 0 {
				return nil
			}
		}
	}
	d := densePool.Get().(*denseState)
	d.t = t
	n := t.NumLinks()
	if cap(d.loads) < n {
		d.loads = make([]float64, n)
		d.cnt = make([]int32, n)
		d.hot = make([]bool, n)
	}
	d.loads = d.loads[:n]
	d.cnt = d.cnt[:n]
	d.hot = d.hot[:n]
	d.touched = d.touched[:0]
	return d
}

func (d *denseState) release() {
	if d != nil {
		d.reset()
		densePool.Put(d)
	}
}

// reset clears only the touched entries.
func (d *denseState) reset() {
	for _, id := range d.touched {
		d.loads[id] = 0
		d.cnt[id] = 0
	}
	d.touched = d.touched[:0]
}

// accumulate recomputes the per-link loads of p. The optimizer's own
// moves only ever produce mesh-adjacent routes, so the IDs stay valid
// throughout an Optimize run.
func (d *denseState) accumulate(p mesh.Phase) {
	d.reset()
	for i := range p.Flows {
		f := &p.Flows[i]
		for j := 0; j+1 < len(f.Route); j++ {
			id := d.t.LinkID(mesh.Link{From: f.Route[j], To: f.Route[j+1]})
			if d.cnt[id] == 0 {
				d.touched = append(d.touched, int32(id))
			}
			d.cnt[id]++
			d.loads[id] += f.Bytes
		}
	}
}

// maxLoad mirrors Phase.MaxLoad: the most loaded link, ties broken by
// ascending (From, To) — which is ascending link ID.
func (d *denseState) maxLoad(p mesh.Phase) (mesh.Link, float64) {
	d.accumulate(p)
	var (
		best     mesh.Link
		bestLoad float64
		found    bool
	)
	for id := range d.loads {
		if d.cnt[id] == 0 {
			continue
		}
		if !found || d.loads[id] > bestLoad {
			best, bestLoad, found = d.t.LinkByID(id), d.loads[id], true
		}
	}
	return best, bestLoad
}

// potential mirrors phasePotential on the dense accumulators.
func (d *denseState) potential(p mesh.Phase) potential {
	d.accumulate(p)
	var pot potential
	for _, id := range d.touched {
		if d.loads[id] > pot.max {
			pot.max = d.loads[id]
		}
	}
	if pot.max == 0 {
		return pot
	}
	thresh := pot.max * (1 - 1e-9)
	for _, id := range d.touched {
		if d.loads[id] >= thresh {
			pot.count++
		}
	}
	return pot
}

// Options tunes the optimizer; the zero value enables everything with
// the default iteration cap.
type Options struct {
	// MaxIter caps the optimization loop; 0 means DefaultMaxIter.
	MaxIter int
	// DisableMerge turns off multicast merging (ablation).
	DisableMerge bool
	// DisableReroute turns off congestion-aware rerouting (ablation).
	DisableReroute bool
}

// DefaultMaxIter is the MAX_ITER bound of the paper's Fig. 11(d)
// pseudo-code.
const DefaultMaxIter = 16

// Result reports one optimized phase and what the optimizer did.
type Result struct {
	Phase          mesh.Phase
	InitialMaxLoad float64
	FinalMaxLoad   float64
	Iterations     int
	MergedFlows    int
	ReroutedFlows  int
}

// Improvement returns the bottleneck-load reduction factor (≥ 1).
func (r Result) Improvement() float64 {
	if r.FinalMaxLoad <= 0 {
		return 1
	}
	return r.InitialMaxLoad / r.FinalMaxLoad
}

// Optimize runs the five-phase workflow on one communication phase.
// Following the Fig. 11(d) pseudo-code, the loop continues through
// load plateaus (a move that relieves the current bottleneck link
// without lowering the global max still makes progress — another link
// merely becomes the next bottleneck) until no move applies or
// MAX_ITER is hit.
func Optimize(t *mesh.Topology, p mesh.Phase, opts Options) Result {
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = DefaultMaxIter
	}
	cur := clonePhase(p)
	res := Result{}
	d := newDense(t, cur)
	maxLoad := func() (mesh.Link, float64) {
		if d != nil {
			return d.maxLoad(cur)
		}
		return cur.MaxLoad()
	}
	_, res.InitialMaxLoad = maxLoad()

	for iter := 0; iter < maxIter; iter++ {
		mcl, load := maxLoad()
		if load <= 0 {
			break
		}
		res.Iterations++
		moves := 0
		hot := hotFlowIdx(cur, mcl)

		if !opts.DisableMerge {
			merged := mergeDuplicates(t, &cur, hot)
			res.MergedFlows += merged
			moves += merged
			if merged > 0 {
				mcl, _ = maxLoad()
				hot = hotFlowIdx(cur, mcl)
			}
		}
		if !opts.DisableReroute {
			rev := reverseGroups(t, &cur, d)
			res.ReroutedFlows += rev
			moves += rev
			if rev > 0 {
				mcl, _ = maxLoad()
				hot = hotFlowIdx(cur, mcl)
			}
			rr := reroute(t, &cur, hot, d)
			res.ReroutedFlows += rr
			moves += rr
		}
		if moves == 0 {
			break
		}
	}
	res.Phase = cur
	_, res.FinalMaxLoad = maxLoad()
	d.release()
	return res
}

// OptimizeAll applies Optimize to every phase of a sequence,
// accumulating statistics.
func OptimizeAll(t *mesh.Topology, phases []mesh.Phase, opts Options) ([]mesh.Phase, Result) {
	out := make([]mesh.Phase, len(phases))
	var agg Result
	for i, p := range phases {
		r := Optimize(t, p, opts)
		out[i] = r.Phase
		agg.InitialMaxLoad += r.InitialMaxLoad
		agg.FinalMaxLoad += r.FinalMaxLoad
		agg.Iterations += r.Iterations
		agg.MergedFlows += r.MergedFlows
		agg.ReroutedFlows += r.ReroutedFlows
	}
	return out, agg
}

func clonePhase(p mesh.Phase) mesh.Phase {
	out := mesh.Phase{Label: p.Label, Flows: make([]mesh.Flow, len(p.Flows))}
	copy(out.Flows, p.Flows)
	return out
}

// hotFlowIdx returns the indices of flows crossing the given link,
// largest first (deterministic).
func hotFlowIdx(p mesh.Phase, l mesh.Link) []int {
	var idx []int
	for i := range p.Flows {
		r := p.Flows[i].Route
		for j := 0; j+1 < len(r); j++ {
			if (mesh.Link{From: r[j], To: r[j+1]}) == l {
				idx = append(idx, i)
				break
			}
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		fa, fb := p.Flows[idx[a]], p.Flows[idx[b]]
		if fa.Bytes != fb.Bytes {
			return fa.Bytes > fb.Bytes
		}
		return idx[a] < idx[b]
	})
	return idx
}

// mergeDuplicates finds groups of hot flows that carry the same
// payload from the same source to different destinations and replaces
// each group (across the whole phase) with a multicast tree. Returns
// the number of unicast flows eliminated.
func mergeDuplicates(t *mesh.Topology, p *mesh.Phase, hot []int) int {
	type key struct {
		src     mesh.DieID
		payload string
	}
	groups := map[key][]int{}
	for _, i := range hot {
		f := p.Flows[i]
		if f.Payload == "" {
			continue
		}
		k := key{f.Src, f.Payload}
		groups[k] = append(groups[k], i)
	}
	// Extend each group with same-key flows elsewhere in the phase.
	for i, f := range p.Flows {
		if f.Payload == "" {
			continue
		}
		k := key{f.Src, f.Payload}
		if g, ok := groups[k]; ok && !contains(g, i) {
			groups[k] = append(groups[k], i)
		}
	}
	keys := make([]key, 0, len(groups))
	for k, g := range groups {
		if len(g) > 1 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].src != keys[b].src {
			return keys[a].src < keys[b].src
		}
		return keys[a].payload < keys[b].payload
	})
	if len(keys) == 0 {
		return 0
	}
	removed := map[int]bool{}
	var added []mesh.Flow
	merged := 0
	for _, k := range keys {
		g := groups[k]
		var dsts []mesh.DieID
		bytes := p.Flows[g[0]].Bytes
		uniform := true
		for _, i := range g {
			if p.Flows[i].Bytes != bytes {
				uniform = false
				break
			}
			dsts = append(dsts, p.Flows[i].Dst)
		}
		if !uniform {
			continue // different sizes ⇒ not the same datum
		}
		tree := mesh.MulticastTree(t, k.src, dsts, bytes, k.payload)
		if len(tree) == 0 {
			continue
		}
		for _, i := range g {
			removed[i] = true
		}
		added = append(added, tree...)
		merged += len(g) - 1
	}
	if merged == 0 {
		return 0
	}
	var flows []mesh.Flow
	for i, f := range p.Flows {
		if !removed[i] {
			flows = append(flows, f)
		}
	}
	p.Flows = append(flows, added...)
	return merged
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// potential is the lexicographic objective the optimizer drives
// down: first the bottleneck load, then the number of links sitting
// at (within a small tolerance of) that load. Requiring every
// accepted move to strictly decrease it makes the loop monotone —
// no oscillation between symmetric equal-cost routings.
type potential struct {
	max   float64
	count int
}

func phasePotential(p mesh.Phase) potential {
	loads := p.Loads()
	var pot potential
	for _, v := range loads {
		if v > pot.max {
			pot.max = v
		}
	}
	if pot.max == 0 {
		return pot
	}
	thresh := pot.max * (1 - 1e-9)
	for _, v := range loads {
		if v >= thresh {
			pot.count++
		}
	}
	return pot
}

// less reports whether a is strictly better (lower) than b.
func (a potential) less(b potential) bool {
	if a.max < b.max*(1-1e-12) {
		return true
	}
	if a.max > b.max*(1+1e-12) {
		return false
	}
	return a.count < b.count
}

// groupKey extracts the collective-instance tag from a payload: the
// prefix up to the first '.' (collective.Merge prepends "s<i>." per
// concurrent sequence). Flows sharing a key belong to one logical
// ring step or chain whose orientation can be flipped as a unit.
func groupKey(payload string) string {
	for i := 0; i < len(payload); i++ {
		if payload[i] == '.' {
			return payload[:i]
		}
	}
	return payload
}

// reverseGroups implements the pattern-level reroute of Fig. 11: when
// a ring step or P2P chain collides with another group on a
// bottleneck-level link, flipping the whole pattern's orientation
// (D3→D2→… becomes D2→D3→…) moves it onto the opposite-direction
// links. Candidate groups are those crossing any link at the current
// maximum load (symmetric scenarios have several co-equal bottleneck
// links and the profitable flip may sit on any of them). A flip is
// accepted when it strictly decreases the phase potential. Returns
// the number of flipped flows.
func reverseGroups(t *mesh.Topology, p *mesh.Phase, d *denseState) int {
	var cur potential
	if d != nil {
		cur = d.potential(*p)
	} else {
		cur = phasePotential(*p)
	}
	if cur.max <= 0 {
		return 0
	}
	thresh := cur.max * (1 - 1e-9)
	// Mark bottleneck-level links: the dense path uses the hot bitmap,
	// the fallback a link set.
	var hotLinks map[mesh.Link]bool
	if d != nil {
		// d.loads still holds p's accumulation from potential above.
		for _, id := range d.touched {
			if d.loads[id] >= thresh {
				d.hot[id] = true
			}
		}
	} else {
		loads := p.Loads()
		hotLinks = map[mesh.Link]bool{}
		for l, v := range loads {
			if v >= thresh {
				hotLinks[l] = true
			}
		}
	}
	crossesHot := func(r mesh.Path) bool {
		for j := 0; j+1 < len(r); j++ {
			l := mesh.Link{From: r[j], To: r[j+1]}
			if d != nil {
				if d.hot[t.LinkID(l)] {
					return true
				}
			} else if hotLinks[l] {
				return true
			}
		}
		return false
	}
	// Collect groups crossing any hot link.
	groupOf := map[string][]int{}
	for i, f := range p.Flows {
		k := groupKey(f.Payload)
		if k == "" {
			continue
		}
		groupOf[k] = append(groupOf[k], i)
	}
	var keys []string
	for k, idx := range groupOf {
		crosses := false
		for _, i := range idx {
			if crossesHot(p.Flows[i].Route) {
				crosses = true
				break
			}
		}
		if crosses && len(idx) > 0 {
			keys = append(keys, k)
		}
	}
	if d != nil {
		// Clear the bitmap before candidate evaluation re-accumulates
		// (and re-populates touched with) candidate state.
		for _, id := range d.touched {
			d.hot[id] = false
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		idx := groupOf[k]
		candidate := clonePhase(*p)
		ok := true
		for _, i := range idx {
			f := candidate.Flows[i]
			rev := make(mesh.Path, len(f.Route))
			for j := range f.Route {
				rev[j] = f.Route[len(f.Route)-1-j]
			}
			if !rev.Valid(t) {
				ok = false
				break
			}
			candidate.Flows[i] = mesh.Flow{
				Src: f.Dst, Dst: f.Src, Bytes: f.Bytes, Route: rev, Payload: f.Payload,
			}
		}
		if !ok {
			continue
		}
		var pot potential
		if d != nil {
			pot = d.potential(candidate)
		} else {
			pot = phasePotential(candidate)
		}
		if pot.less(cur) {
			*p = candidate
			// One flip per iteration: re-evaluate from the new
			// bottleneck next round.
			return len(idx)
		}
	}
	return 0
}

// reroute tries to move hot flows onto less-loaded paths (the
// CanReroute step of Fig. 11(d)). A reroute is accepted only when it
// strictly decreases the phase potential, which keeps the loop
// monotone. Returns the number of accepted reroutes.
func reroute(t *mesh.Topology, p *mesh.Phase, hot []int, d *denseState) int {
	count := 0
	for _, i := range hot {
		f := p.Flows[i]
		if f.Src == f.Dst || f.Route.Hops() == 0 {
			continue
		}
		if d != nil {
			cur := d.potential(*p)
			// Remove this flow's own contribution so the weight
			// reflects the load it would join.
			for j := 0; j+1 < len(f.Route); j++ {
				d.loads[t.LinkID(mesh.Link{From: f.Route[j], To: f.Route[j+1]})] -= f.Bytes
			}
			var norm float64
			for _, id := range d.touched {
				if d.loads[id] > norm {
					norm = d.loads[id]
				}
			}
			if norm <= 0 {
				norm = 1
			}
			alt := t.RouteWeighted(f.Src, f.Dst, func(l mesh.Link) float64 {
				return 4 * d.loads[t.LinkID(l)] / norm
			})
			if alt == nil || samePath(alt, f.Route) {
				continue
			}
			old := f.Route
			p.Flows[i].Route = alt
			if d.potential(*p).less(cur) {
				count++
			} else {
				p.Flows[i].Route = old
			}
			continue
		}
		cur := phasePotential(*p)
		loads := p.Loads()
		// Remove this flow's own contribution so the weight reflects
		// the load it would join.
		for _, l := range f.Route.Links() {
			loads[l] -= f.Bytes
		}
		var norm float64
		for _, v := range loads {
			if v > norm {
				norm = v
			}
		}
		if norm <= 0 {
			norm = 1
		}
		alt := t.RouteWeighted(f.Src, f.Dst, func(l mesh.Link) float64 {
			return 4 * loads[l] / norm
		})
		if alt == nil || samePath(alt, f.Route) {
			continue
		}
		old := f.Route
		p.Flows[i].Route = alt
		if phasePotential(*p).less(cur) {
			count++
		} else {
			p.Flows[i].Route = old
		}
	}
	return count
}

// worstAlong is retained for diagnostics: the highest link load a
// flow of the given size would see along a route.
func worstAlong(loads mesh.LinkLoads, route mesh.Path, bytes float64) float64 {
	var worst float64
	for _, l := range route.Links() {
		if v := loads[l] + bytes; v > worst {
			worst = v
		}
	}
	return worst
}

func samePath(a, b mesh.Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// String summarises a result for logs.
func (r Result) String() string {
	return fmt.Sprintf("tcme{max %.3g→%.3g (%.2fx), %d iters, %d merged, %d rerouted}",
		r.InitialMaxLoad, r.FinalMaxLoad, r.Improvement(), r.Iterations, r.MergedFlows, r.ReroutedFlows)
}
