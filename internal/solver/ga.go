package solver

import (
	"context"
	"math/rand"

	"temp/internal/engine"
)

// GA is the paper's dual-level search (Fig. 12(b)) as a pluggable
// strategy: chain dynamic programming seeds the population, then a
// genetic stage (tournament selection, one-point crossover, per-gene
// mutation, elitism) refines the joint assignment under the global
// memory constraint. Each generation's population is priced in
// parallel across Budget.Workers goroutines through the shared memo;
// for a fixed seed the returned assignment and cost are bit-identical
// at any worker count — and bit-identical to the pre-framework
// solver.DLS for the same options.
type GA struct {
	// Population and Generations size the genetic stage; zero values
	// take defaults (32, 40).
	Population, Generations int
	// MutationRate per gene (default 0.15).
	MutationRate float64
	// Seed drives the GA's randomness.
	Seed int64
	// dpOnly stops after dynamic programming (the DLS -no-ga
	// ablation; exposed as the registered "dp" strategy).
	dpOnly bool
}

// newGA builds the registered "ga" strategy from params.
func newGA(p Params) (Strategy, error) {
	if err := p.checkKnown("ga", "population", "generations", "mutation", "seed"); err != nil {
		return nil, err
	}
	g := &GA{
		Population:   int(p.value("population", 0)),
		Generations:  int(p.value("generations", 0)),
		MutationRate: p.value("mutation", 0),
		Seed:         p.seed(),
	}
	if err := (DLSOptions{Population: g.Population, Generations: g.Generations,
		MutationRate: g.MutationRate}).Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Name implements Strategy.
func (s *GA) Name() string {
	if s.dpOnly {
		return "dp"
	}
	return "ga"
}

// Solve implements Strategy. The search trajectory is exactly the
// pre-framework DLS: the budget and checkpoint hooks only observe it
// (they never touch the RNG stream), so an unlimited budget
// reproduces the historical assignments bit-identically per seed.
func (s *GA) Solve(ctx context.Context, p Problem, b Budget) (Assignment, Stats) {
	stats := Stats{Strategy: s.Name()}
	if !p.valid() {
		return nil, stats
	}
	population := s.Population
	if population == 0 {
		population = 32
	}
	generations := s.Generations
	if generations == 0 {
		generations = 40
	}
	mutation := s.MutationRate
	if mutation == 0 {
		mutation = 0.15
	}

	ev := p.evaluator()
	r := newRun(b, ev, &stats)

	// Level 1: dynamic programming per residual-free segment. The
	// segment boundaries cut the O(N²) joint space into independent
	// chains (§VII-B); transitions across boundaries are still
	// charged via interCost when totalling.
	assign := p.seedAssignment(ev, b)
	dpCost := ev.assignmentCost(assign)
	stats.DPCost = dpCost
	best := append(Assignment(nil), assign...)
	bestCost := dpCost

	// Level 2: genetic refinement (crossover, mutation, elitism) on
	// the joint genome, seeded with the DP solution. Only the cost
	// evaluation fans out; selection and variation stay serial so
	// the RNG stream matches the single-threaded search exactly.
	if !s.dpOnly {
		rng := rand.New(rand.NewSource(s.Seed))
		pop := make([]Assignment, population)
		costs := make([]float64, population)
		pop[0] = append(Assignment(nil), assign...)
		for i := 1; i < population; i++ {
			ind := append(Assignment(nil), assign...)
			// Diversify: re-roll a few genes.
			for j := range ind {
				if rng.Float64() < 0.3 {
					ind[j] = rng.Intn(len(p.Space))
				}
			}
			pop[i] = ind
		}
		evalPop := func() {
			engine.ForEach(b.Workers, len(pop), func(i int) {
				costs[i] = ev.assignmentCost(pop[i])
			})
		}
		evalPop()
		for gen := 0; gen < generations; gen++ {
			if r.stop(ctx) {
				break
			}
			stats.Generations++
			next := make([]Assignment, 0, population)
			// Elitism: carry the best individual forward.
			eliteIdx := 0
			for i := range costs {
				if costs[i] < costs[eliteIdx] {
					eliteIdx = i
				}
			}
			next = append(next, append(Assignment(nil), pop[eliteIdx]...))
			for len(next) < population {
				a := tournament(rng, pop, costs)
				b := tournament(rng, pop, costs)
				child := crossover(rng, a, b)
				mutate(rng, child, len(p.Space), mutation)
				next = append(next, child)
			}
			pop = next
			evalPop()
			for i := range pop {
				if costs[i] < bestCost {
					bestCost = costs[i]
					best = append(Assignment(nil), pop[i]...)
				}
			}
			r.checkpoint(gen+1, best, bestCost)
		}
	}

	r.finish(bestCost)
	return best, stats
}

// newDP builds the registered "dp" strategy: chain dynamic
// programming only, no genetic refinement (the DisableGA ablation).
func newDP(p Params) (Strategy, error) {
	if err := p.checkKnown("dp", "seed"); err != nil {
		return nil, err
	}
	return &GA{Seed: p.seed(), dpOnly: true}, nil
}

func tournament(rng *rand.Rand, pop []Assignment, costs []float64) Assignment {
	a, b := rng.Intn(len(pop)), rng.Intn(len(pop))
	if costs[a] <= costs[b] {
		return pop[a]
	}
	return pop[b]
}

func crossover(rng *rand.Rand, a, b Assignment) Assignment {
	child := make(Assignment, len(a))
	cut := rng.Intn(len(a))
	copy(child, a[:cut])
	copy(child[cut:], b[cut:])
	return child
}

func mutate(rng *rand.Rand, a Assignment, space int, rate float64) {
	for i := range a {
		if rng.Float64() < rate {
			a[i] = rng.Intn(space)
		}
	}
}
