// Command tempsolve runs the dual-level wafer solver (DLWS) for a
// model: the per-operator dual-level search over the hybrid strategy
// space, followed by a full-simulator evaluation of the best uniform
// configuration. Models and wafers resolve through the scenario
// registry; -scenario solves the model/wafer pair a JSON scenario
// defines.
//
//	tempsolve -model gpt3-175b
//	tempsolve -model llama3-70b -no-ga
//	tempsolve -scenario examples/custom_scenario/scenario.json
//	tempsolve -scenarios scenarios/
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"temp/internal/baselines"
	"temp/internal/engine"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
	"temp/internal/solver"
	"temp/internal/spec"
	"temp/internal/unit"
)

// solve runs the dual-level search plus full-simulator cross-check
// for one model/wafer pair.
func solve(m model.Config, w hw.Wafer, seed int64, noGA bool, workers int) error {
	g := model.BlockGraph(m)
	space := parallel.EnumerateConfigs(w.Dies(), true, 0)
	if len(space) == 0 {
		return fmt.Errorf("no power-of-two strategy space for %d dies on %s", w.Dies(), w.Name)
	}
	cm := &solver.Analytic{W: w, M: m}

	assign, stats := solver.DLS(g, space, cm,
		solver.DLSOptions{Seed: seed, DisableGA: noGA, Workers: workers})
	fmt.Printf("model        %s on %s\n", m, w.Name)
	fmt.Printf("search space %d strategies × %d operators\n", len(space), len(g.Ops))
	fmt.Printf("search time  %s (%d cost-model evaluations, %d GA generations)\n",
		stats.Elapsed, stats.Evaluations, stats.Generations)
	fmt.Printf("chain-DP cost %.3fms, final cost %.3fms\n", stats.DPCost*1e3, stats.FinalCost*1e3)
	fmt.Println("per-operator strategies:")
	for i, op := range g.Ops {
		fmt.Printf("  %-14s %s\n", op.Name, space[assign[i]])
	}
	idx, share := solver.Uniform(assign)
	fmt.Printf("dominant strategy %s (%.0f%% of operators)\n", space[idx], share*100)

	// Cross-check against the full simulator sweep.
	best, err := baselines.Best(baselines.TEMP(), m, w)
	if err != nil {
		return err
	}
	fmt.Printf("full-simulator best: %s → step %s, %.1f tokens/s (OOM=%v)\n",
		best.Config, unit.Seconds(best.StepTime), best.ThroughputTokens, best.OOM())
	return nil
}

// solveScenario resolves a scenario spec and solves its model/wafer.
func solveScenario(ss spec.ScenarioSpec, seed int64, noGA bool, workers int) error {
	sc, err := ss.Resolve()
	if err != nil {
		return err
	}
	fmt.Printf("scenario     %s\n", sc.Name)
	return solve(sc.Model, sc.Wafer, seed, noGA, workers)
}

func main() {
	var (
		name      = flag.String("model", "gpt3-6.7b", "registered model name (-list-models)")
		waferName = flag.String("wafer", "", "registered wafer name (-list-wafers); overrides -rows/-cols")
		rows      = flag.Int("rows", 4, "wafer die rows")
		cols      = flag.Int("cols", 8, "wafer die columns")
		noGA      = flag.Bool("no-ga", false, "stop after chain dynamic programming")
		seed      = flag.Int64("seed", 7, "genetic-stage seed")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "evaluation worker-pool size")
		scenario  = flag.String("scenario", "", "solve the model/wafer of one scenario JSON file")
		scenarios = flag.String("scenarios", "", "solve every *.json scenario in a directory")
		listM     = flag.Bool("list-models", false, "list registered model names")
		listW     = flag.Bool("list-wafers", false, "list registered wafer names")
	)
	flag.Parse()
	engine.SetWorkers(*workers)

	switch {
	case *listM:
		for _, n := range spec.Models.Names() {
			fmt.Println(n)
		}
		return
	case *listW:
		for _, n := range spec.Wafers.Names() {
			fmt.Println(n)
		}
		return
	case *scenario != "":
		ss, err := spec.LoadScenario(*scenario)
		if err == nil {
			err = solveScenario(ss, *seed, *noGA, *workers)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tempsolve:", err)
			os.Exit(1)
		}
		return
	case *scenarios != "":
		sss, err := spec.LoadScenarioDir(*scenarios)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tempsolve:", err)
			os.Exit(1)
		}
		for i, ss := range sss {
			if i > 0 {
				fmt.Println()
			}
			if err := solveScenario(ss, *seed, *noGA, *workers); err != nil {
				fmt.Fprintln(os.Stderr, "tempsolve:", err)
				os.Exit(1)
			}
		}
		return
	}

	m, err := spec.LookupModel(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tempsolve:", err)
		os.Exit(1)
	}
	var w hw.Wafer
	if *waferName != "" {
		if w, err = spec.LookupWafer(*waferName); err != nil {
			fmt.Fprintln(os.Stderr, "tempsolve:", err)
			os.Exit(1)
		}
	} else {
		w = hw.WaferWithGrid(*rows, *cols)
	}
	if err := solve(m, w, *seed, *noGA, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "tempsolve:", err)
		os.Exit(1)
	}
}
