package cost

import (
	"testing"

	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
)

func TestBackendRegistry(t *testing.T) {
	names := BackendNames()
	want := map[string]bool{"analytic": false, "replay": false, "surrogate": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, ok := range want {
		if !ok {
			t.Errorf("backend %q not registered (have %v)", n, names)
		}
	}
	if _, err := NewBackend("no-such-tier"); err == nil {
		t.Error("unknown backend accepted")
	}
	if _, err := NewBackend("surrogate@seed=x"); err == nil {
		t.Error("malformed seed accepted")
	}
	if _, err := NewBackend("surrogate@population=3"); err == nil {
		t.Error("unknown key parameter accepted")
	}
	// Case-insensitive resolution, cached instances.
	a1, err := NewBackend("Replay")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewBackend("replay")
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("backend instances are not cached per key")
	}
}

func TestCanonicalBackendKey(t *testing.T) {
	cases := map[string]string{
		"":                 "",
		"analytic":         "",
		"Analytic":         "",
		"analytic@seed=9":  "",
		"replay":           "replay",
		" Replay ":         "replay",
		"surrogate":        "surrogate@seed=1",
		"surrogate@seed=7": "surrogate@seed=7",
	}
	for in, want := range cases {
		if got := CanonicalBackendKey(in); got != want {
			t.Errorf("CanonicalBackendKey(%q) = %q, want %q", in, got, want)
		}
	}
	if got := BackendKey("surrogate", 7); got != "surrogate@seed=7" {
		t.Errorf("BackendKey = %q", got)
	}
	if got := BackendKey("analytic", 7); got != "" {
		t.Errorf("BackendKey(analytic) = %q, want empty", got)
	}
}

// TestReplayBackendDiffers: the replay tier must price streaming
// configurations differently from the analytic tier — backward TATP
// streams are replayed at their true doubled sub-tensor granularity
// instead of the closed-form 2× forward-time scaling — and never
// worse (bigger sub-tensors see better effective bandwidth, and the
// forced TCME replay only relieves congestion). A stream-free
// configuration has nothing to replay and must price identically.
func TestReplayBackendDiffers(t *testing.T) {
	w := hw.EvaluationWafer()
	m := model.GPT3_6_7B()
	be, err := NewBackend("replay")
	if err != nil {
		t.Fatal(err)
	}

	tatp := parallel.Config{DP: 2, TP: 2, TATP: 8}
	for _, o := range []Options{
		TEMPOptions(),
		{Engine: SMap, Recompute: RecomputeSelective, DistributedOptimizer: true},
	} {
		a, err := Evaluate(m, w, tatp, o)
		if err != nil {
			t.Fatal(err)
		}
		r, err := be.Price(m, w, tatp, o)
		if err != nil {
			t.Fatal(err)
		}
		if r.StepTime == a.StepTime {
			t.Errorf("engine %s: replay step %v identical to analytic — backward-stream replay had no effect", o.Engine, r.StepTime)
		}
		if r.StepTime > a.StepTime*(1+1e-9) {
			t.Errorf("engine %s: replay step %v worse than analytic %v", o.Engine, r.StepTime, a.StepTime)
		}
	}

	noStream := parallel.Config{DP: 4, TP: 8}
	o := TEMPOptions()
	a, err := Evaluate(m, w, noStream, o)
	if err != nil {
		t.Fatal(err)
	}
	r, err := be.Price(m, w, noStream, o)
	if err != nil {
		t.Fatal(err)
	}
	if r.StepTime != a.StepTime {
		t.Errorf("stream-free config: replay %v ≠ analytic %v (nothing to replay)", r.StepTime, a.StepTime)
	}
}

// TestReplayOperatorModel: the replay operator model replays real
// placements; compute-only and memory terms must agree with the
// analytic tier while communication terms may legitimately differ.
func TestReplayOperatorModel(t *testing.T) {
	w := hw.EvaluationWafer()
	m := model.GPT3_6_7B()
	be, err := NewBackend("replay")
	if err != nil {
		t.Fatal(err)
	}
	om, err := be.Operator(m, w)
	if err != nil {
		t.Fatal(err)
	}
	an := &OperatorAnalytic{W: w, M: m}
	g := model.BlockGraph(m)
	space := parallel.EnumerateConfigs(w.Dies(), true, 0)
	if len(space) == 0 {
		t.Fatal("empty space")
	}
	var commCfg *parallel.Config
	for i := range space {
		if space[i].TATP > 1 || space[i].TP > 1 {
			commCfg = &space[i]
			break
		}
	}
	if commCfg == nil {
		t.Fatal("no communicating config in space")
	}
	for _, op := range g.Ops {
		rt := om.Intra(op, *commCfg)
		if rt <= 0 {
			t.Errorf("op %s: non-positive replay intra %v", op.Name, rt)
		}
		// Determinism: the cached placement must serve identical times.
		if rt2 := om.Intra(op, *commCfg); rt2 != rt {
			t.Errorf("op %s: replay intra not deterministic: %v vs %v", op.Name, rt, rt2)
		}
		if om.MemoryOK(*commCfg) != an.MemoryOK(*commCfg) {
			t.Errorf("op %s: replay memory verdict diverged from analytic", op.Name)
		}
	}
	if om.Inter(g.Ops[0], g.Ops[1], *commCfg, *commCfg) != 0 {
		t.Error("identical layouts must reshard for free at every tier")
	}
}

// TestSurrogateBackendDeterminism is the reproducibility criterion:
// two independently-trained surrogate backends with the same seed
// must produce bit-identical prices and operator predictions (same
// spec → same Breakdown), and a different seed must actually change
// the trained weights.
func TestSurrogateBackendDeterminism(t *testing.T) {
	w := hw.EvaluationWafer()
	m := model.GPT3_6_7B()
	cfg := parallel.Config{DP: 2, TP: 4, TATP: 4}
	opts := TEMPOptions()

	s1 := newSurrogateBackend(42)
	s2 := newSurrogateBackend(42)
	b1, err := s1.Price(m, w, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := s2.Price(m, w, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if b1.StepTime != b2.StepTime || b1.ComputeTime != b2.ComputeTime {
		t.Errorf("same seed, different prices: %v vs %v", b1.StepTime, b2.StepTime)
	}
	om1, err := s1.Operator(m, w)
	if err != nil {
		t.Fatal(err)
	}
	om2, err := s2.Operator(m, w)
	if err != nil {
		t.Fatal(err)
	}
	g := model.BlockGraph(m)
	for _, op := range g.Ops {
		if v1, v2 := om1.Intra(op, cfg), om2.Intra(op, cfg); v1 != v2 {
			t.Fatalf("op %s: same seed, different predictions: %v vs %v", op.Name, v1, v2)
		}
	}

	s3 := newSurrogateBackend(43)
	b3, err := s3.Price(m, w, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if b3.StepTime == b1.StepTime {
		t.Error("different seeds produced identical prices — seed not plumbed into training")
	}
	// Feasibility is exact at the surrogate tier.
	an := &OperatorAnalytic{W: w, M: m}
	if om1.MemoryOK(cfg) != an.MemoryOK(cfg) {
		t.Error("surrogate memory verdict diverged from analytic")
	}
}

// TestSurrogateAccuracy: the screening tier must track the analytic
// teacher closely enough to rank candidates (≤10% mean relative
// error over the searched space).
func TestSurrogateAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("training sweep is not -short")
	}
	w := hw.EvaluationWafer()
	m := model.GPT3_6_7B()
	be := newSurrogateBackend(7)
	omI, err := be.Operator(m, w)
	if err != nil {
		t.Fatal(err)
	}
	om := omI.(*surrogateOperator)
	an := &OperatorAnalytic{W: w, M: m}
	g := model.BlockGraph(m)
	space := parallel.EnumerateConfigs(w.Dies(), true, 0)
	var sum float64
	var n int
	for ci, cfg := range space {
		op := g.Ops[ci%len(g.Ops)]
		truth := an.Intra(op, cfg)
		pred := om.Intra(op, cfg)
		if truth <= 0 {
			continue
		}
		rel := (pred - truth) / truth
		if rel < 0 {
			rel = -rel
		}
		sum += rel
		n++
	}
	if n == 0 {
		t.Fatal("no samples")
	}
	if mape := sum / float64(n); mape > 0.10 {
		t.Errorf("surrogate mean relative error %.1f%% > 10%%", mape*100)
	}
}
