package solver

import "temp/internal/engine"

// soaPop is the GA population in structure-of-arrays form: one flat
// genes buffer plus, per position, the memoized cost terms the chain
// objective sums — intraCost+penalty per gene and the coupling inter
// term per adjacent pair. Children inherit their parents' term values
// through crossover, so a generation re-prices only the terms its
// variation actually invalidated: the crossover boundary's inter term
// and the ≤3 terms around each mutated gene. Everything else is a
// plain float read instead of a memo lookup, and the genuinely new
// (position, config) keys — collected serially, deduplicated, then
// priced in parallel — are exactly the keys a full per-individual
// walk would have priced, so the evaluation count and every cost are
// bit-identical to the pre-delta GA at any worker count.
//
// All buffers are allocated once and ping-ponged between generations;
// the steady-state generation loop does not allocate.
type soaPop struct {
	ev  *evaluator
	n   int // genes per individual
	pop int // individuals

	// Current generation (indexed [i*n+j]) and its per-row costs.
	genes    []int
	intraPen []float64
	inter    []float64 // inter[i*n] unused (always 0)
	costs    []float64

	// Next generation being bred, with per-position dirty marks.
	nextGenes    []int
	nextIntraPen []float64
	nextInter    []float64
	dirtyIntra   []bool
	dirtyInter   []bool

	// Deduplicated missing-key lists of one pricing round.
	missIntra [][2]int
	missInter [][3]int
	missMem   []int
	seenIntra map[[2]int]bool
	seenInter map[[3]int]bool
	seenMem   map[int]bool
}

func newSoaPop(ev *evaluator, pop, n int) *soaPop {
	return &soaPop{
		ev: ev, n: n, pop: pop,
		genes:        make([]int, pop*n),
		intraPen:     make([]float64, pop*n),
		inter:        make([]float64, pop*n),
		costs:        make([]float64, pop),
		nextGenes:    make([]int, pop*n),
		nextIntraPen: make([]float64, pop*n),
		nextInter:    make([]float64, pop*n),
		dirtyIntra:   make([]bool, pop*n),
		dirtyInter:   make([]bool, pop*n),
		seenIntra:    map[[2]int]bool{},
		seenInter:    map[[3]int]bool{},
		seenMem:      map[int]bool{},
	}
}

// row returns the genes of individual i in the current generation.
func (s *soaPop) row(i int) []int { return s.genes[i*s.n : (i+1)*s.n] }

// markAllDirty marks every term of the next buffers for repricing —
// the initial population, whose terms have no parents to inherit
// from.
func (s *soaPop) markAllDirty() {
	for k := range s.dirtyIntra {
		s.dirtyIntra[k] = true
		s.dirtyInter[k] = true
	}
}

// swap promotes the next buffers to current.
func (s *soaPop) swap() {
	s.genes, s.nextGenes = s.nextGenes, s.genes
	s.intraPen, s.nextIntraPen = s.nextIntraPen, s.intraPen
	s.inter, s.nextInter = s.nextInter, s.inter
}

// price promotes the bred next generation and refreshes its costs:
// missing cost-model keys under dirty terms are collected serially
// (deterministic dedup), priced in parallel across workers, then every
// dirty term is refreshed from the memo and each row re-summed in
// assignmentCost's exact left-to-right order.
func (s *soaPop) price(workers int) {
	s.swap()

	// Collect the distinct missing keys under dirty terms. Peek never
	// computes, so this pass is cheap and adds no evaluations.
	s.missIntra = s.missIntra[:0]
	s.missInter = s.missInter[:0]
	s.missMem = s.missMem[:0]
	clear(s.seenIntra)
	clear(s.seenInter)
	clear(s.seenMem)
	for i := 0; i < s.pop; i++ {
		base := i * s.n
		for j := 0; j < s.n; j++ {
			if s.dirtyIntra[base+j] {
				cfg := s.genes[base+j]
				ik := [2]int{j, cfg}
				if !s.seenIntra[ik] {
					if _, ok := s.ev.intra.Peek(ik); !ok {
						s.missIntra = append(s.missIntra, ik)
					}
					s.seenIntra[ik] = true
				}
				if !s.seenMem[cfg] {
					if _, ok := s.ev.mem.Peek(cfg); !ok {
						s.missMem = append(s.missMem, cfg)
					}
					s.seenMem[cfg] = true
				}
			}
			if j > 0 && s.dirtyInter[base+j] {
				nk := [3]int{j, s.genes[base+j-1], s.genes[base+j]}
				if !s.seenInter[nk] {
					if _, ok := s.ev.inter.Peek(nk); !ok {
						s.missInter = append(s.missInter, nk)
					}
					s.seenInter[nk] = true
				}
			}
		}
	}

	// Price the fresh keys in parallel. Keys are distinct, so each
	// memo Get is fresh exactly once and the evaluation count equals
	// the serial count.
	ni, nn := len(s.missIntra), len(s.missInter)
	engine.ForEach(workers, ni+nn+len(s.missMem), func(k int) {
		switch {
		case k < ni:
			s.ev.intraCost(s.missIntra[k][0], s.missIntra[k][1])
		case k < ni+nn:
			nk := s.missInter[k-ni]
			s.ev.interCost(nk[0], nk[1], nk[2])
		default:
			s.ev.memoryOK(s.missMem[k-ni-nn])
		}
	})

	// Refresh dirty terms and re-sum each row in assignmentCost's
	// order; rows are independent. Every key under a dirty term was
	// either already memoized or priced by the ForEach above, so Peek
	// always hits — this stage is pure map reads, no closures, no
	// allocations.
	engine.ForEach(workers, s.pop, func(i int) {
		base := i * s.n
		var total float64
		for j := 0; j < s.n; j++ {
			if s.dirtyIntra[base+j] {
				cfg := s.genes[base+j]
				iv, _ := s.ev.intra.Peek([2]int{j, cfg})
				mv, _ := s.ev.mem.Peek(cfg)
				pen := 0.0
				if mv != 1 {
					pen = oomPenalty
				}
				s.intraPen[base+j] = iv + pen
				s.dirtyIntra[base+j] = false
			}
			total += s.intraPen[base+j]
			if j > 0 {
				if s.dirtyInter[base+j] {
					nv, _ := s.ev.inter.Peek([3]int{j, s.genes[base+j-1], s.genes[base+j]})
					s.inter[base+j] = nv
					s.dirtyInter[base+j] = false
				}
				total += s.inter[base+j]
			}
		}
		s.costs[i] = total
	})
}

// breedInto copies parent terms into next row i: genes and terms
// [0,cut) from current row a, [cut,n) from current row b, with the
// coupling term across the cut marked dirty (unknown pair) — the SoA
// form of one-point crossover.
func (s *soaPop) breedInto(i, a, b, cut int) {
	dst, sa, sb := i*s.n, a*s.n, b*s.n
	copy(s.nextGenes[dst:dst+cut], s.genes[sa:sa+cut])
	copy(s.nextGenes[dst+cut:dst+s.n], s.genes[sb+cut:sb+s.n])
	copy(s.nextIntraPen[dst:dst+cut], s.intraPen[sa:sa+cut])
	copy(s.nextIntraPen[dst+cut:dst+s.n], s.intraPen[sb+cut:sb+s.n])
	copy(s.nextInter[dst:dst+cut], s.inter[sa:sa+cut])
	copy(s.nextInter[dst+cut:dst+s.n], s.inter[sb+cut:sb+s.n])
	for j := 0; j < s.n; j++ {
		s.dirtyIntra[dst+j] = false
		s.dirtyInter[dst+j] = false
	}
	if cut > 0 {
		s.dirtyInter[dst+cut] = true
	}
}

// mutateGene applies one mutation to next row i, invalidating the
// gene's own term and both coupling terms.
func (s *soaPop) mutateGene(i, j, cfg int) {
	base := i * s.n
	s.nextGenes[base+j] = cfg
	s.dirtyIntra[base+j] = true
	if j > 0 {
		s.dirtyInter[base+j] = true
	}
	if j+1 < s.n {
		s.dirtyInter[base+j+1] = true
	}
}
