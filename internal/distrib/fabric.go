package distrib

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"

	"temp/internal/engine"
)

// Options configures a Fabric.
type Options struct {
	// Workers is how many worker processes to attach. With Command
	// set they are spawned; with Listen set they are accepted over
	// TCP. Zero workers (or every spawn failing) leaves a degraded
	// fabric that executes everything in-process.
	Workers int
	// Command is the worker subprocess argv (the binary re-invoking
	// itself with -worker-mode plus passthrough flags).
	Command []string
	// Env is appended to the subprocess environment.
	Env []string
	// Listen, when non-empty, accepts workers on this TCP address
	// instead of spawning subprocesses. A worker that reconnects
	// after its link died re-attaches to its old slot between Runs.
	Listen string
	// ShardSize caps tasks per shard; 0 picks one automatically so
	// every worker sees several shards (stealing needs slack).
	ShardSize int
	// Retries bounds how many times a shard is requeued after a
	// worker failure before the coordinator runs it in-process.
	// Zero means the default (2).
	Retries int
	// Stderr receives spawned workers' stderr (default os.Stderr).
	Stderr io.Writer
	// Heartbeat is the liveness probe interval: the coordinator pings
	// each worker this often, and an interval with no inbound frame
	// at all counts as a missed beat. 0 means the default (500ms);
	// negative disables heartbeats.
	Heartbeat time.Duration
	// MissedBeats is how many consecutive silent intervals declare a
	// worker dead (its in-flight shards requeue immediately, long
	// before TCP keepalive would give up on a stalled peer). Zero
	// means the default (3).
	MissedBeats int
	// ShardTimeout bounds one shard round-trip; past it the shard
	// requeues even if the worker still answers pings (covers a
	// dropped result frame on a lossy link). 0 disables.
	ShardTimeout time.Duration
	// SyncMemo ships the coordinator's warm DiskMemo as a CRC-checked
	// segment to workers that report no memo of their own
	// (shared-nothing TCP workers without the memo directory), so
	// they start warm without a shared mount.
	SyncMemo bool
	// AttachTimeout bounds the hello/memo exchange when attaching a
	// worker; a link that swallows the hello fails attachment instead
	// of hanging New. 0 means the default (10s).
	AttachTimeout time.Duration
	// Chaos, when non-nil, wraps every worker transport in the
	// deterministic fault injector (tests, tempbench -chaos).
	Chaos *ChaosConfig
}

const (
	defaultRetries       = 2
	defaultHeartbeat     = 500 * time.Millisecond
	defaultMissedBeats   = 3
	defaultAttachTimeout = 10 * time.Second
)

// WorkerStats is one worker's contribution, reported in -json and
// /metrics. Engine cache counters arrive at Shutdown (the done/stats
// exchange); the liveness fields are current at every Snapshot.
type WorkerStats struct {
	ID          int     `json:"worker"`
	PID         int     `json:"pid,omitempty"`
	Shards      int     `json:"shards"`
	Tasks       int     `json:"tasks"`
	Stolen      int     `json:"shards_stolen"`
	Requeued    int     `json:"shards_requeued"`
	BusyNS      int64   `json:"busy_ns"`
	StealWaitNS int64   `json:"steal_wait_ns"`
	TasksPerSec float64 `json:"tasks_per_sec"`
	Died        bool    `json:"died,omitempty"`
	// LastBeatMS is how long ago the last inbound frame (pong,
	// result, stats) arrived, in milliseconds; -1 before any frame.
	LastBeatMS int64 `json:"last_heartbeat_ms"`
	// MissedBeats counts heartbeat intervals that passed with no
	// inbound frame, cumulatively.
	MissedBeats int64 `json:"missed_beats"`
	// Reconnects counts how many times this TCP slot re-attached
	// after its link died.
	Reconnects int `json:"reconnects,omitempty"`
	// MemoSyncBytes is the size of the warm memo segment shipped to
	// this worker at attach (0 when none was needed).
	MemoSyncBytes int   `json:"memo_sync_bytes,omitempty"`
	Hits          int64 `json:"cache_hits"`
	Misses        int64 `json:"cache_misses"`
	DiskHits      int64 `json:"cache_disk_hits"`
	BatchCalls    int64 `json:"batch_calls"`
	BatchedJobs   int64 `json:"batched_jobs"`
}

// Stats aggregates a fabric's lifetime counters.
type Stats struct {
	Spawned        int  `json:"workers_spawned"`
	Shards         int  `json:"shards"`
	Tasks          int  `json:"tasks"`
	Stolen         int  `json:"shards_stolen"`
	Requeued       int  `json:"shards_requeued"`
	InProcessTasks int  `json:"inprocess_tasks"`
	Reconnects     int  `json:"reconnects,omitempty"`
	HeartbeatDead  int  `json:"heartbeat_deaths,omitempty"`
	Draining       bool `json:"draining,omitempty"`
	// Workers carries per-worker stats: liveness fields are live at
	// every Snapshot; engine counters fill in at Shutdown. Retired
	// slots (TCP links replaced after re-attach) are included.
	Workers []WorkerStats `json:"per_worker,omitempty"`
}

// EngineTotals sums the workers' engine cache counters, for merging
// into the coordinator's own engine.Stats.
func (s Stats) EngineTotals() engine.Stats {
	var t engine.Stats
	for _, w := range s.Workers {
		t.Hits += w.Hits
		t.Misses += w.Misses
		t.DiskHits += w.DiskHits
		t.BatchCalls += w.BatchCalls
		t.BatchedJobs += w.BatchedJobs
	}
	return t
}

// worker is the coordinator's view of one attached worker. A reader
// goroutine owns the inbound stream and dispatches results to waiting
// drives through the pending map; a heartbeat goroutine watches for
// silent intervals. All sends share sendMu so frames never interleave.
type worker struct {
	id   int
	pid  int
	cmd  *exec.Cmd
	conn io.Closer
	in   *bufio.Writer
	out  *bufio.Reader

	sendMu    sync.Mutex
	closeOnce sync.Once
	closeFn   func() // tear down the transport (and kill the process)
	waitOnce  sync.Once
	waitFn    func() // reap the subprocess

	alive       atomic.Bool
	lastBeat    atomic.Int64 // UnixNano of the last inbound frame
	missedRun   atomic.Int32 // consecutive silent heartbeat intervals
	pingPending atomic.Bool
	stop        chan struct{} // closed on death/shutdown
	stopOnce    sync.Once

	pendMu  sync.Mutex
	pending map[uint64]chan *resultMsg
	statsCh chan *statsMsg

	mu    sync.Mutex
	stats WorkerStats
}

// send writes one frame under the send mutex.
func (w *worker) send(env *envelope) error {
	w.sendMu.Lock()
	defer w.sendMu.Unlock()
	return writeFrame(w.in, env)
}

// register claims the result channel for a shard seq; it fails once
// the worker is dead so drives never wait on a corpse.
func (w *worker) register(seq uint64) (chan *resultMsg, error) {
	w.pendMu.Lock()
	defer w.pendMu.Unlock()
	if w.pending == nil {
		return nil, fmt.Errorf("distrib: worker %d is dead", w.id)
	}
	ch := make(chan *resultMsg, 1)
	w.pending[seq] = ch
	return ch, nil
}

func (w *worker) unregister(seq uint64) {
	w.pendMu.Lock()
	delete(w.pending, seq)
	w.pendMu.Unlock()
}

// deliver routes an inbound result to its waiting drive; results for
// unregistered seqs (cancelled, timed out, requeued) are dropped.
func (w *worker) deliver(res *resultMsg) {
	w.pendMu.Lock()
	ch := w.pending[res.Seq]
	delete(w.pending, res.Seq)
	w.pendMu.Unlock()
	if ch != nil {
		ch <- res
	}
}

// failPending closes every waiter's channel (a closed channel tells
// the drive its shard died in flight) and refuses new registrations.
func (w *worker) failPending() {
	w.pendMu.Lock()
	for seq, ch := range w.pending {
		delete(w.pending, seq)
		close(ch)
	}
	w.pending = nil
	w.pendMu.Unlock()
}

func (w *worker) halt() {
	w.stopOnce.Do(func() { close(w.stop) })
}

// liveStats returns the worker's current stats with liveness stamped.
func (w *worker) liveStats() WorkerStats {
	w.mu.Lock()
	st := w.stats
	w.mu.Unlock()
	if lb := w.lastBeat.Load(); lb > 0 {
		st.LastBeatMS = time.Since(time.Unix(0, lb)).Milliseconds()
	} else {
		st.LastBeatMS = -1
	}
	return st
}

// shard is one dispatchable unit: tasks [start, start+len(payloads))
// of the current Run.
type shard struct {
	seq      uint64
	kind     string
	start    int
	payloads [][]byte
	retries  int
}

// Fabric is the coordinator. A nil *Fabric is valid and executes
// everything in-process, so call sites thread one pointer through
// without branching on "distributed or not".
type Fabric struct {
	opts Options
	ln   net.Listener
	seq  atomic.Uint64

	draining atomic.Bool
	runWG    sync.WaitGroup

	mu         sync.Mutex
	workers    []*worker
	retired    []WorkerStats
	stolen     int
	requeued   int
	shards     int
	tasks      int
	inproc     int
	reconnects int
	hbDead     int
	closed     bool
	finalStats Stats
}

// New builds a fabric per opts. Spawn or accept failures are not
// fatal: the fabric runs with however many workers came up (possibly
// zero → in-process). The error reports the first attach failure for
// logging; the fabric is still usable.
func New(opts Options) (*Fabric, error) {
	if opts.Retries == 0 {
		opts.Retries = defaultRetries
	}
	if opts.Stderr == nil {
		opts.Stderr = os.Stderr
	}
	if opts.Heartbeat == 0 {
		opts.Heartbeat = defaultHeartbeat
	}
	if opts.MissedBeats <= 0 {
		opts.MissedBeats = defaultMissedBeats
	}
	if opts.AttachTimeout <= 0 {
		opts.AttachTimeout = defaultAttachTimeout
	}
	f := &Fabric{opts: opts}
	var firstErr error
	if opts.Listen != "" {
		ln, err := net.Listen("tcp", opts.Listen)
		if err != nil {
			return f, fmt.Errorf("distrib: listen %s: %w", opts.Listen, err)
		}
		f.ln = ln
		for i := 0; i < opts.Workers; i++ {
			w, err := f.acceptWorker(i)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			f.workers = append(f.workers, w)
		}
		// Keep accepting: a worker whose link died can redial and
		// re-attach to its old slot (it joins the next Run).
		go f.acceptLoop()
		return f, firstErr
	}
	if len(opts.Command) == 0 {
		return f, nil
	}
	for i := 0; i < opts.Workers; i++ {
		w, err := f.spawnWorker(i)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		f.workers = append(f.workers, w)
	}
	return f, firstErr
}

// Addr returns the listener's address ("" when not listening), so a
// port-0 listen can tell workers where to connect.
func (f *Fabric) Addr() string {
	if f == nil || f.ln == nil {
		return ""
	}
	return f.ln.Addr().String()
}

// Live reports how many workers are currently attached and healthy.
func (f *Fabric) Live() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, w := range f.workers {
		if w.alive.Load() {
			n++
		}
	}
	return n
}

// Draining reports whether Drain has been called.
func (f *Fabric) Draining() bool {
	return f != nil && f.draining.Load()
}

// Drain stops dealing new shards to workers and blocks until every
// in-flight Run completes (queued shards finish in-process, shards
// already on workers run to completion). The fabric stays valid —
// Shutdown still folds worker counters afterwards — but subsequent
// Runs execute in-process.
func (f *Fabric) Drain() {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.draining.Store(true)
	f.mu.Unlock()
	f.runWG.Wait()
}

func (f *Fabric) spawnWorker(id int) (*worker, error) {
	cmd := exec.Command(f.opts.Command[0], f.opts.Command[1:]...)
	cmd.Env = append(os.Environ(), f.opts.Env...)
	cmd.Stderr = f.opts.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("distrib: worker %d stdin: %w", id, err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("distrib: worker %d stdout: %w", id, err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("distrib: worker %d start: %w", id, err)
	}
	w := &worker{
		id: id, cmd: cmd,
		stop:    make(chan struct{}),
		pending: map[uint64]chan *resultMsg{},
		statsCh: make(chan *statsMsg, 1),
	}
	var wtr io.Writer = stdin
	var rdr io.Reader = stdout
	if f.opts.Chaos != nil {
		kill := func() { cmd.Process.Kill() }
		wtr = &chaosWriter{w: stdin, st: newChaosStream(f.opts.Chaos, id, 0, w.stop, kill)}
		rdr = chaosReadProxy(stdout, newChaosStream(f.opts.Chaos, id, 1, w.stop, kill))
	}
	w.in = bufio.NewWriterSize(wtr, 1<<16)
	w.out = bufio.NewReaderSize(rdr, 1<<16)
	w.closeFn = func() {
		stdin.Close()
		cmd.Process.Kill()
	}
	w.waitFn = func() { cmd.Wait() }
	if err := f.attach(w); err != nil {
		w.halt()
		w.closeOnce.Do(w.closeFn)
		w.waitOnce.Do(w.waitFn)
		return nil, err
	}
	return w, nil
}

func (f *Fabric) acceptWorker(id int) (*worker, error) {
	conn, err := f.ln.Accept()
	if err != nil {
		return nil, fmt.Errorf("distrib: accept worker %d: %w", id, err)
	}
	return f.newConnWorker(id, conn)
}

// newConnWorker wraps an accepted TCP connection into a worker.
func (f *Fabric) newConnWorker(id int, conn net.Conn) (*worker, error) {
	w := &worker{
		id: id, conn: conn,
		stop:    make(chan struct{}),
		pending: map[uint64]chan *resultMsg{},
		statsCh: make(chan *statsMsg, 1),
	}
	var wtr io.Writer = conn
	var rdr io.Reader = conn
	if f.opts.Chaos != nil {
		kill := func() { conn.Close() }
		wtr = &chaosWriter{w: conn, st: newChaosStream(f.opts.Chaos, id, 0, w.stop, kill)}
		rdr = chaosReadProxy(conn, newChaosStream(f.opts.Chaos, id, 1, w.stop, kill))
	}
	w.in = bufio.NewWriterSize(wtr, 1<<16)
	w.out = bufio.NewReaderSize(rdr, 1<<16)
	w.closeFn = func() { conn.Close() }
	w.waitFn = func() {}
	if err := f.attach(w); err != nil {
		w.halt()
		w.closeOnce.Do(w.closeFn)
		return nil, err
	}
	return w, nil
}

// acceptLoop re-attaches redialing TCP workers to dead slots. The
// replacement joins the next Run (never one already in flight); the
// old slot's stats retire into the final tally.
func (f *Fabric) acceptLoop() {
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			return
		}
		f.mu.Lock()
		slot := -1
		if !f.closed {
			for i, w := range f.workers {
				if !w.alive.Load() && w.cmd == nil {
					slot = i
					break
				}
			}
		}
		closed := f.closed
		f.mu.Unlock()
		if closed {
			conn.Close()
			return
		}
		if slot < 0 {
			conn.Close()
			continue
		}
		w, err := f.newConnWorker(slot, conn)
		if err != nil {
			conn.Close()
			continue
		}
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			w.halt()
			w.closeOnce.Do(w.closeFn)
			return
		}
		old := f.workers[slot]
		f.retired = append(f.retired, old.liveStats())
		w.mu.Lock()
		w.stats.Reconnects = old.liveStats().Reconnects + 1
		w.mu.Unlock()
		f.reconnects++
		f.workers[slot] = w
		f.mu.Unlock()
	}
}

// attach completes the hello exchange, ships the warm memo when asked,
// and starts the worker's reader and heartbeat goroutines. The
// exchange runs under AttachTimeout so a link that eats frames (a
// wedged peer, injected chaos on the hello itself) fails attachment
// instead of hanging New; the exchange goroutine unwinds when the
// caller tears the transport down.
func (f *Fabric) attach(w *worker) error {
	type helloRes struct {
		peer *helloMsg
		err  error
	}
	ch := make(chan helloRes, 1)
	go func() {
		peer, err := exchangeHello(w.out, w.in, os.Getpid(), engine.HasDiskMemo())
		if err == nil && f.opts.SyncMemo && peer != nil && !peer.HasMemo {
			if seg, n := engine.MemoSegment(); n > 0 {
				msg := &memoMsg{Records: n, Data: seg, CRC: crc32.ChecksumIEEE(seg)}
				if serr := w.send(&envelope{Type: msgMemo, Memo: msg}); serr != nil {
					err = fmt.Errorf("memo sync: %w", serr)
				} else {
					w.mu.Lock()
					w.stats.MemoSyncBytes = len(seg)
					w.mu.Unlock()
				}
			}
		}
		ch <- helloRes{peer, err}
	}()
	var peer *helloMsg
	select {
	case r := <-ch:
		if r.err != nil {
			return fmt.Errorf("distrib: worker %d hello: %w", w.id, r.err)
		}
		peer = r.peer
	case <-time.After(f.opts.AttachTimeout):
		return fmt.Errorf("distrib: worker %d hello timed out after %s", w.id, f.opts.AttachTimeout)
	}
	w.alive.Store(true)
	w.lastBeat.Store(time.Now().UnixNano())
	w.mu.Lock()
	w.stats.ID = w.id
	if w.cmd != nil {
		w.stats.PID = w.cmd.Process.Pid
		w.pid = w.cmd.Process.Pid
	} else if peer != nil {
		w.stats.PID = peer.PID
		w.pid = peer.PID
	}
	w.mu.Unlock()
	go f.readLoop(w)
	go f.heartbeatLoop(w)
	return nil
}

// readLoop owns a worker's inbound stream: every frame proves the
// worker alive; results route to their waiting drives; a read error
// (EOF, corrupt frame, chaos) declares the worker dead.
func (f *Fabric) readLoop(w *worker) {
	for {
		env, err := readFrame(w.out)
		if err != nil {
			f.declareDead(w, false)
			return
		}
		w.lastBeat.Store(time.Now().UnixNano())
		w.missedRun.Store(0)
		switch env.Type {
		case msgResult:
			if env.Result != nil {
				w.deliver(env.Result)
			}
		case msgPong:
			// Any frame already stamped liveness above.
		case msgStats:
			if env.Stats != nil {
				select {
				case w.statsCh <- env.Stats:
				default:
				}
			}
		default:
			// A decodable frame of the wrong type is a protocol
			// violation — treat it like corruption.
			f.declareDead(w, false)
			return
		}
	}
}

// heartbeatLoop watches for silent intervals. Detection is read-side
// only — an interval with no inbound frame is a missed beat — so a
// wedged transport (blocked writes, stalled reads) cannot hide a hung
// worker. Pings are sent asynchronously behind a single-flight guard;
// a blocked ping never stalls detection.
func (f *Fabric) heartbeatLoop(w *worker) {
	hb := f.opts.Heartbeat
	if hb <= 0 {
		return
	}
	ticker := time.NewTicker(hb)
	defer ticker.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-ticker.C:
		}
		if !w.alive.Load() {
			return
		}
		if time.Since(time.Unix(0, w.lastBeat.Load())) > hb {
			missed := w.missedRun.Add(1)
			w.mu.Lock()
			w.stats.MissedBeats++
			w.mu.Unlock()
			if int(missed) >= f.opts.MissedBeats {
				f.declareDead(w, true)
				return
			}
		}
		if w.pingPending.CompareAndSwap(false, true) {
			go func(seq uint64) {
				w.send(&envelope{Type: msgPing, Beat: &beatMsg{Seq: seq}})
				w.pingPending.Store(false)
			}(f.seq.Add(1))
		}
	}
}

// declareDead marks a worker dead exactly once: release its waiters
// (their shards requeue), stop its goroutines, and tear the transport
// down so blocked reads unwind.
func (f *Fabric) declareDead(w *worker, heartbeat bool) {
	if !w.alive.CompareAndSwap(true, false) {
		w.halt()
		w.closeOnce.Do(w.closeFn)
		return
	}
	w.mu.Lock()
	w.stats.Died = true
	w.mu.Unlock()
	if heartbeat {
		f.mu.Lock()
		f.hbDead++
		f.mu.Unlock()
	}
	w.halt()
	w.failPending()
	w.closeOnce.Do(w.closeFn)
}

// Run shards payloads of one kind across the live workers and merges
// results into input order. Every task result lands in its global
// index slot, so the output is bit-identical at any worker count —
// including zero, where everything runs in-process through the same
// registered handler. errs[i] reports task i's handler failure (or
// panic, as text); transport failures never surface here, they
// requeue the shard.
func (f *Fabric) Run(kind string, payloads [][]byte) ([][]byte, []error) {
	return f.RunCtx(context.Background(), kind, payloads)
}

// RunCtx is Run with cancellation: when ctx ends, in-flight shards
// are abandoned (workers get best-effort cancel frames) and every
// unfinished task's err is ctx.Err().
func (f *Fabric) RunCtx(ctx context.Context, kind string, payloads [][]byte) ([][]byte, []error) {
	out := make([][]byte, len(payloads))
	errs := make([]error, len(payloads))
	if len(payloads) == 0 {
		return out, errs
	}
	if f != nil {
		// Register under the fabric lock so a run either lands inside
		// Drain's wait or observes draining and stays in-process —
		// never a bare runWG.Add racing the Wait.
		f.mu.Lock()
		if f.draining.Load() {
			f.mu.Unlock()
			f.runLocal(ctx, kind, payloads, 0, out, errs)
			return out, errs
		}
		f.runWG.Add(1)
		f.mu.Unlock()
		defer f.runWG.Done()
	}
	live := f.liveWorkers()
	if len(live) == 0 || f.Draining() {
		f.runLocal(ctx, kind, payloads, 0, out, errs)
		return out, errs
	}

	shards := f.buildShards(kind, payloads, len(live))
	// Deques are indexed by worker ID, and IDs can be sparse when
	// some workers failed to attach — size by the highest live ID.
	slots := 0
	for _, w := range live {
		if w.id+1 > slots {
			slots = w.id + 1
		}
	}
	q := newQueues(slots, shards)
	var wg sync.WaitGroup
	for _, w := range live {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			f.drive(ctx, w, q, out, errs)
		}(w)
	}
	wg.Wait()
	// Anything still queued means every worker died mid-run, the
	// fabric is draining, or ctx was cancelled: finish in-process so
	// Run always completes with full results (or full ctx errors).
	left := q.drain()
	if ctx.Err() != nil {
		for _, sh := range left {
			for i := range sh.payloads {
				errs[sh.start+i] = ctx.Err()
			}
		}
	} else {
		for _, sh := range left {
			f.runLocal(ctx, sh.kind, sh.payloads, sh.start, out, errs)
		}
	}
	f.mu.Lock()
	f.shards += len(shards)
	f.tasks += len(payloads)
	f.mu.Unlock()
	return out, errs
}

// runLocal executes tasks in-process through the registered handler,
// writing into the global slots starting at base.
func (f *Fabric) runLocal(ctx context.Context, kind string, payloads [][]byte, base int, out [][]byte, errs []error) {
	h := lookupKind(kind)
	engine.Map(len(payloads), func(i int) {
		if ctx != nil && ctx.Err() != nil {
			errs[base+i] = ctx.Err()
			return
		}
		b, msg := execTask(ctx, h, kind, payloads[i])
		out[base+i] = b
		if msg != "" {
			errs[base+i] = errors.New(msg)
		}
	})
	if f != nil {
		f.mu.Lock()
		f.inproc += len(payloads)
		f.mu.Unlock()
	}
}

func (f *Fabric) liveWorkers() []*worker {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var live []*worker
	for _, w := range f.workers {
		if w.alive.Load() {
			live = append(live, w)
		}
	}
	return live
}

// buildShards slices payloads into contiguous shards. The automatic
// shard size aims at ~4 shards per worker so stealing has slack,
// clamped to [1, 64] (matching the engine's sweep chunk cap).
func (f *Fabric) buildShards(kind string, payloads [][]byte, liveWorkers int) []*shard {
	size := f.opts.ShardSize
	if size <= 0 {
		size = (len(payloads) + liveWorkers*4 - 1) / (liveWorkers * 4)
		if size < 1 {
			size = 1
		}
		if size > 64 {
			size = 64
		}
	}
	var shards []*shard
	for start := 0; start < len(payloads); start += size {
		end := start + size
		if end > len(payloads) {
			end = len(payloads)
		}
		shards = append(shards, &shard{
			seq:      f.seq.Add(1),
			kind:     kind,
			start:    start,
			payloads: payloads[start:end],
		})
	}
	return shards
}

// queues is the per-worker shard deques plus the shared lock. Shards
// are dealt round-robin; an idle worker first pops from the front of
// its own deque, then steals from the back of the longest one.
type queues struct {
	mu sync.Mutex
	q  [][]*shard
}

func newQueues(workers int, shards []*shard) *queues {
	qs := &queues{q: make([][]*shard, workers)}
	for i, sh := range shards {
		w := i % workers
		qs.q[w] = append(qs.q[w], sh)
	}
	return qs
}

// next pops the next shard for worker id, stealing when its own deque
// is empty. The second return reports a steal.
func (qs *queues) next(id int) (*shard, bool) {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	if own := qs.q[id]; len(own) > 0 {
		sh := own[0]
		qs.q[id] = own[1:]
		return sh, false
	}
	victim, best := -1, 0
	for i, q := range qs.q {
		if i != id && len(q) > best {
			victim, best = i, len(q)
		}
	}
	if victim < 0 {
		return nil, false
	}
	q := qs.q[victim]
	sh := q[len(q)-1]
	qs.q[victim] = q[:len(q)-1]
	return sh, true
}

// requeue pushes a failed shard onto the front of worker id's deque
// (or any non-empty-capable deque — fronts keep retry order tight).
func (qs *queues) requeue(sh *shard, exclude int) {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	id := 0
	if id == exclude && len(qs.q) > 1 {
		id = 1
	}
	qs.q[id] = append([]*shard{sh}, qs.q[id]...)
}

// drain empties every deque, returning the leftovers.
func (qs *queues) drain() []*shard {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	var left []*shard
	for i, q := range qs.q {
		left = append(left, q...)
		qs.q[i] = nil
	}
	return left
}

// drive is one worker's dispatcher loop: pop (or steal) a shard, send
// it, wait for the result, merge. A transport failure or heartbeat
// death requeues the in-flight shard with a bounded retry; past the
// bound the shard runs in-process immediately, so one persistently
// failing shard cannot live-lock the run. A draining fabric stops
// dealing; the Run tail finishes leftovers in-process.
func (f *Fabric) drive(ctx context.Context, w *worker, qs *queues, out [][]byte, errs []error) {
	for {
		if ctx.Err() != nil || f.draining.Load() {
			return
		}
		idleStart := time.Now()
		sh, stolen := qs.next(w.id)
		if sh == nil {
			return
		}
		if stolen {
			w.mu.Lock()
			w.stats.Stolen++
			w.stats.StealWaitNS += time.Since(idleStart).Nanoseconds()
			w.mu.Unlock()
			f.mu.Lock()
			f.stolen++
			f.mu.Unlock()
		}
		busyStart := time.Now()
		res, err := f.roundTrip(ctx, w, sh)
		if err != nil {
			if ctx.Err() != nil {
				qs.requeue(sh, w.id)
				return
			}
			f.declareDead(w, false)
			w.mu.Lock()
			w.stats.Requeued++
			w.mu.Unlock()
			if sh.retries < f.opts.Retries {
				sh.retries++
				f.mu.Lock()
				f.requeued++
				f.mu.Unlock()
				qs.requeue(sh, w.id)
			} else {
				f.runLocal(ctx, sh.kind, sh.payloads, sh.start, out, errs)
			}
			return
		}
		for i := range res.Payloads {
			g := sh.start + i
			out[g] = res.Payloads[i]
			if res.Errs[i] != "" {
				errs[g] = errors.New(res.Errs[i])
			}
		}
		w.mu.Lock()
		w.stats.Shards++
		w.stats.Tasks += len(sh.payloads)
		w.stats.BusyNS += time.Since(busyStart).Nanoseconds()
		w.mu.Unlock()
	}
}

// roundTrip sends one shard and waits for its result, the worker's
// death (closed channel), cancellation, or the shard timeout.
func (f *Fabric) roundTrip(ctx context.Context, w *worker, sh *shard) (*resultMsg, error) {
	ch, err := w.register(sh.seq)
	if err != nil {
		return nil, err
	}
	msg := &shardMsg{Seq: sh.seq, Kind: sh.kind, Start: sh.start, Payloads: sh.payloads}
	if err := w.send(&envelope{Type: msgShard, Shard: msg}); err != nil {
		w.unregister(sh.seq)
		return nil, err
	}
	var timeout <-chan time.Time
	if f.opts.ShardTimeout > 0 {
		tm := time.NewTimer(f.opts.ShardTimeout)
		defer tm.Stop()
		timeout = tm.C
	}
	select {
	case res, ok := <-ch:
		if !ok {
			return nil, fmt.Errorf("distrib: worker %d died with shard %d in flight", w.id, sh.seq)
		}
		if res.Seq != sh.seq || len(res.Payloads) != len(sh.payloads) || len(res.Errs) != len(sh.payloads) {
			return nil, fmt.Errorf("distrib: worker %d: result shape mismatch for shard %d", w.id, sh.seq)
		}
		return res, nil
	case <-ctx.Done():
		w.unregister(sh.seq)
		go w.send(&envelope{Type: msgCancel, Cancel: &cancelMsg{Seq: sh.seq}})
		return nil, ctx.Err()
	case <-timeout:
		w.unregister(sh.seq)
		return nil, fmt.Errorf("distrib: worker %d shard %d timed out after %s", w.id, sh.seq, f.opts.ShardTimeout)
	}
}

// kill forcibly terminates worker i's process — the crash-injection
// hook for tests.
func (f *Fabric) kill(i int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if i < 0 || i >= len(f.workers) || f.workers[i].cmd == nil {
		return fmt.Errorf("distrib: no process for worker %d", i)
	}
	return f.workers[i].cmd.Process.Kill()
}

// Snapshot returns the fabric's counters without disturbing it — the
// live-telemetry accessor for the serving daemon's /metrics endpoint
// and tempbench's -json distrib block. Per-worker liveness
// (last_heartbeat_ms, missed_beats, reconnects, requeues) is current;
// per-worker engine counters only fill in at Shutdown, when workers
// report their final tallies over the done exchange.
func (f *Fabric) Snapshot() Stats {
	if f == nil {
		return Stats{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return f.finalStats
	}
	s := Stats{
		Spawned:        len(f.workers),
		Shards:         f.shards,
		Tasks:          f.tasks,
		Stolen:         f.stolen,
		Requeued:       f.requeued,
		InProcessTasks: f.inproc,
		Reconnects:     f.reconnects,
		HeartbeatDead:  f.hbDead,
		Draining:       f.draining.Load(),
	}
	for _, w := range f.workers {
		s.Workers = append(s.Workers, w.liveStats())
	}
	s.Workers = append(s.Workers, f.retired...)
	return s
}

// Shutdown ends every worker (done → collect stats → wait), closes
// the listener, and returns the aggregated stats. Idempotent; Run
// must not be called afterwards.
func (f *Fabric) Shutdown() Stats {
	if f == nil {
		return Stats{}
	}
	f.mu.Lock()
	if f.closed {
		s := f.finalStats
		f.mu.Unlock()
		return s
	}
	f.closed = true
	workers := append([]*worker(nil), f.workers...)
	f.mu.Unlock()
	if f.ln != nil {
		f.ln.Close()
	}

	for _, w := range workers {
		// CAS first so a graceful exit's EOF is not misread by the
		// readLoop as a death.
		if w.alive.CompareAndSwap(true, false) {
			if err := w.send(&envelope{Type: msgDone}); err == nil {
				select {
				case st := <-w.statsCh:
					w.mu.Lock()
					w.stats.Hits, w.stats.Misses, w.stats.DiskHits = st.Hits, st.Misses, st.DiskHits
					w.stats.BatchCalls, w.stats.BatchedJobs = st.BatchCalls, st.BatchedJobs
					w.mu.Unlock()
				case <-time.After(10 * time.Second):
				}
			}
		}
		w.halt()
		w.closeOnce.Do(w.closeFn)
		w.waitOnce.Do(w.waitFn)
		w.mu.Lock()
		if w.stats.BusyNS > 0 {
			w.stats.TasksPerSec = float64(w.stats.Tasks) / (float64(w.stats.BusyNS) / 1e9)
		}
		w.mu.Unlock()
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s := Stats{
		Spawned:        len(f.workers),
		Shards:         f.shards,
		Tasks:          f.tasks,
		Stolen:         f.stolen,
		Requeued:       f.requeued,
		InProcessTasks: f.inproc,
		Reconnects:     f.reconnects,
		HeartbeatDead:  f.hbDead,
		Draining:       f.draining.Load(),
	}
	for _, w := range workers {
		s.Workers = append(s.Workers, w.liveStats())
	}
	s.Workers = append(s.Workers, f.retired...)
	f.finalStats = s
	return s
}
