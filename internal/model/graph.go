package model

import (
	"fmt"
	"sync"

	"temp/internal/tensor"
	"temp/internal/unit"
)

// OpKind classifies a transformer operator (Fig. 12(a)).
type OpKind int

// Operator kinds. GEMM-class ops run on PE arrays; the rest run on
// vector units (§II-B core-level configuration).
const (
	GEMM OpKind = iota
	AttentionScore
	Softmax
	AttentionContext
	GeLU
	LayerNorm
	Residual
	Embedding
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case GEMM:
		return "gemm"
	case AttentionScore:
		return "attn-score"
	case Softmax:
		return "softmax"
	case AttentionContext:
		return "attn-context"
	case GeLU:
		return "gelu"
	case LayerNorm:
		return "layernorm"
	case Residual:
		return "residual"
	case Embedding:
		return "embedding"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// IsGEMM reports whether the op runs on the PE array.
func (k OpKind) IsGEMM() bool {
	return k == GEMM || k == AttentionScore || k == AttentionContext
}

// Op is one node of the transformer compute graph. Shapes follow the
// Eq. (1) convention: Input [B,M,N], Weight [N,K], Output [B,M,K].
// Attention ops reinterpret M as sequence and K as sequence or head
// dimension as appropriate; what the cost model needs is accurate
// FLOPs and byte counts, which are precomputed here.
type Op struct {
	// ID is the position in the block, 1-based, matching the
	// numbering of Fig. 12(a).
	ID   int
	Name string
	Kind OpKind

	Input  tensor.Shape
	Weight tensor.Shape
	Output tensor.Shape

	// FLOPs is the forward operation count.
	FLOPs float64
	// ResidualSpan marks ops inside a residual bypass: the DLWS
	// graph partition may only cut the chain at ops where this is
	// false (§VII-B divide-and-conquer step).
	ResidualSpan bool
	// FlashFused marks the attention ops fused by FlashAttention /
	// online softmax (ops 4–7 of Fig. 12(a)).
	FlashFused bool
	// TPSharded marks ops inside the tensor-parallel regions
	// (attention and MLP blocks): their work divides across the TP
	// group. Layer norms and residual adds sit outside and are
	// replicated on every TP rank unless sequence parallelism is
	// fused in — the redundancy Megatron-3 removes.
	TPSharded bool
}

// HasWeight reports whether the op carries trainable parameters.
func (o Op) HasWeight() bool { return o.Weight.Elems() > 0 }

// IOBytes returns the forward dataflow bytes (input + weight +
// output), the quantity DRAM traffic scales with.
func (o Op) IOBytes() float64 {
	return o.Input.Bytes() + o.Weight.Bytes() + o.Output.Bytes()
}

// Graph is the operator chain of one transformer block, executed
// Layers times per training step.
type Graph struct {
	Model Config
	Ops   []Op
}

// graphCache memoizes BlockGraph per configuration: the graph is a
// pure function of the (comparable) Config, it sits on the cost
// model's hot path, and callers treat the returned Ops as read-only.
var graphCache sync.Map // Config → Graph

// BlockGraph returns the 13-operator transformer block of Fig. 12(a).
// The result is memoized and shared — callers must not modify Ops:
//
//	 1 LayerNorm
//	 2 QKV projection (GEMM)
//	 3 (per-head split handled by parallel layout)
//	 4 Q·Kᵀ        ┐
//	 5 online softmax │ flash-fused attention
//	 6 Score·V     ┘
//	 7 attention projection (GEMM)
//	 8 residual add
//	 9 LayerNorm
//	10 FC1 (GEMM)
//	11 GeLU
//	12 FC2 (GEMM)
//	13 residual add
func BlockGraph(c Config) Graph {
	if g, ok := graphCache.Load(c); ok {
		return g.(Graph)
	}
	g, _ := graphCache.LoadOrStore(c, buildBlockGraph(c))
	return g.(Graph)
}

// buildBlockGraph constructs the operator chain.
func buildBlockGraph(c Config) Graph {
	b, m, h := int64(c.Batch), int64(c.Seq), int64(c.Hidden)
	f := int64(c.Intermediate())
	a := int64(c.Heads)
	d := int64(c.HeadDim())
	fp := unit.FP16

	act := func(name string, hid int64) tensor.Shape { return tensor.Activation(name, b, m, hid, fp) }
	_ = d

	ops := []Op{
		{
			ID: 1, Name: "ln1", Kind: LayerNorm,
			Input: act("x", h), Output: act("ln1.out", h),
			FLOPs: 5 * float64(b*m*h),
		},
		{
			ID: 2, Name: "qkv", Kind: GEMM,
			Input:     act("ln1.out", h),
			Weight:    tensor.Weight("Wqkv", h, 3*h, fp),
			Output:    act("qkv.out", 3*h),
			FLOPs:     2 * float64(b*m*h*3*h),
			TPSharded: true,
		},
		{
			ID: 4, Name: "attn.score", Kind: AttentionScore,
			Input:        act("q", h),
			Output:       tensor.NewShape("scores", b*a, m, m, 0, fp),
			FLOPs:        2 * float64(b*m*m*h),
			ResidualSpan: true, FlashFused: true,
			TPSharded: true,
		},
		{
			ID: 5, Name: "attn.softmax", Kind: Softmax,
			Input:        tensor.NewShape("scores", b*a, m, m, 0, fp),
			Output:       tensor.NewShape("probs", b*a, m, m, 0, fp),
			FLOPs:        5 * float64(b*a*m*m),
			ResidualSpan: true, FlashFused: true,
			TPSharded: true,
		},
		{
			ID: 6, Name: "attn.context", Kind: AttentionContext,
			Input:        tensor.NewShape("probs", b*a, m, m, 0, fp),
			Output:       act("ctx", h),
			FLOPs:        2 * float64(b*m*m*h),
			ResidualSpan: true, FlashFused: true,
			TPSharded: true,
		},
		{
			ID: 7, Name: "attn.proj", Kind: GEMM,
			Input:        act("ctx", h),
			Weight:       tensor.Weight("Wproj", h, h, fp),
			Output:       act("proj.out", h),
			FLOPs:        2 * float64(b*m*h*h),
			ResidualSpan: true,
			TPSharded:    true,
		},
		{
			ID: 8, Name: "residual1", Kind: Residual,
			Input: act("proj.out", h), Output: act("res1.out", h),
			FLOPs: float64(b * m * h),
		},
		{
			ID: 9, Name: "ln2", Kind: LayerNorm,
			Input: act("res1.out", h), Output: act("ln2.out", h),
			FLOPs: 5 * float64(b*m*h),
		},
		{
			ID: 10, Name: "fc1", Kind: GEMM,
			Input:        act("ln2.out", h),
			Weight:       tensor.Weight("Wfc1", h, f, fp),
			Output:       act("fc1.out", f),
			FLOPs:        2 * float64(b*m*h*f),
			ResidualSpan: true,
			TPSharded:    true,
		},
		{
			ID: 11, Name: "gelu", Kind: GeLU,
			Input: act("fc1.out", f), Output: act("gelu.out", f),
			FLOPs:        8 * float64(b*m*f),
			ResidualSpan: true,
			TPSharded:    true,
		},
		{
			ID: 12, Name: "fc2", Kind: GEMM,
			Input:        act("gelu.out", f),
			Weight:       tensor.Weight("Wfc2", f, h, fp),
			Output:       act("fc2.out", h),
			FLOPs:        2 * float64(b*m*f*h),
			ResidualSpan: true,
			TPSharded:    true,
		},
		{
			ID: 13, Name: "residual2", Kind: Residual,
			Input: act("fc2.out", h), Output: act("block.out", h),
			FLOPs: float64(b * m * h),
		},
	}
	return Graph{Model: c, Ops: ops}
}

// ForwardFLOPs sums the forward FLOPs of the block.
func (g Graph) ForwardFLOPs() float64 {
	var s float64
	for _, o := range g.Ops {
		s += o.FLOPs
	}
	return s
}

// WeightBytes sums the parameter bytes of the block.
func (g Graph) WeightBytes() float64 {
	var s float64
	for _, o := range g.Ops {
		s += o.Weight.Bytes()
	}
	return s
}

// CutPoints returns the op indices (into Ops) before which the chain
// may be partitioned: positions not inside a residual span. Index 0
// and len(Ops) are implicit boundaries.
func (g Graph) CutPoints() []int {
	var cuts []int
	for i := 1; i < len(g.Ops); i++ {
		if !g.Ops[i].ResidualSpan && !g.Ops[i-1].ResidualSpan {
			cuts = append(cuts, i)
		}
	}
	return cuts
}

// Segments splits the chain at CutPoints into residual-free
// sub-graphs, the k sub-graphs of the DLS algorithm (Fig. 12(b)).
func (g Graph) Segments() [][]Op {
	cuts := g.CutPoints()
	bounds := append([]int{0}, cuts...)
	bounds = append(bounds, len(g.Ops))
	var segs [][]Op
	for i := 0; i+1 < len(bounds); i++ {
		if bounds[i+1] > bounds[i] {
			segs = append(segs, g.Ops[bounds[i]:bounds[i+1]])
		}
	}
	return segs
}
