package fault

import (
	"encoding/json"
	"flag"
	"os"
	"reflect"
	"testing"

	"temp/internal/cost"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testCampaign is the pinned campaign the invariance and golden tests
// share: one paper model on the evaluation wafer, a small grid.
func testCampaign() Campaign {
	return Campaign{
		Model:     model.GPT3_6_7B(),
		Wafer:     hw.EvaluationWafer(),
		Config:    parallel.Config{DP: 4, TATP: 8},
		Opts:      cost.TEMPOptions(),
		LinkRates: []float64{0, 0.1, 0.2},
		CoreRates: []float64{0, 0.1},
		Trials:    4,
		Seed:      42,
	}
}

// TestCampaignWorkerInvariance pins the determinism contract: the
// campaign is bit-identical at any worker count (per-trial seeded
// RNGs, index-addressed result slots).
func TestCampaignWorkerInvariance(t *testing.T) {
	var ref CampaignResult
	for i, workers := range []int{1, 4, 16} {
		c := testCampaign()
		c.Workers = workers
		got, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = got
			continue
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("workers=%d campaign diverges from workers=1:\n got %+v\nwant %+v", workers, got, ref)
		}
	}
}

// TestCampaignGolden pins the survivability curve of the test campaign
// against testdata/campaign_golden.json (regenerate with -update).
func TestCampaignGolden(t *testing.T) {
	got, err := testCampaign().Run()
	if err != nil {
		t.Fatal(err)
	}
	const path = "testdata/campaign_golden.json"
	if *update {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	var want CampaignResult
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("campaign diverged from golden curve:\n got %+v\nwant %+v\n(run with -update if the change is intended)", got, want)
	}
}

func TestCampaignRejectsBadRate(t *testing.T) {
	c := testCampaign()
	c.LinkRates = []float64{1.5}
	if _, err := c.Run(); err == nil {
		t.Error("link rate 1.5 accepted")
	}
	c = testCampaign()
	c.CoreRates = []float64{-0.1}
	if _, err := c.Run(); err == nil {
		t.Error("core rate -0.1 accepted")
	}
}

func TestNormalizedThroughputRejectsNonPositiveTrials(t *testing.T) {
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	cfg := parallel.Config{DP: 4, TATP: 8}
	for _, trials := range []int{0, -3} {
		v, err := NormalizedThroughput(m, w, cfg, cost.TEMPOptions(),
			Injection{LinkRate: 0.1}, trials, 1)
		if err == nil {
			t.Errorf("trials=%d accepted", trials)
		}
		if v != 0 {
			t.Errorf("trials=%d returned %v, want 0", trials, v)
		}
	}
}

// TestTrialSeedDecorrelated spot-checks that trial seeds differ across
// cells and trials (the campaign's per-trial RNG independence).
func TestTrialSeedDecorrelated(t *testing.T) {
	seen := map[int64]bool{}
	for cell := 0; cell < 8; cell++ {
		for trial := 0; trial < 8; trial++ {
			s := TrialSeed(42, cell, trial)
			if s < 0 {
				t.Fatalf("negative trial seed %d", s)
			}
			if seen[s] {
				t.Fatalf("duplicate trial seed %d at cell %d trial %d", s, cell, trial)
			}
			seen[s] = true
		}
	}
}
