package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentIDs runs each registered experiment in quick mode
// and checks it emits rows — the smoke test that keeps the harness
// regenerating every artefact of the per-experiment index.
func TestAllExperimentIDs(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness run")
	}
	ids := []string{"fig4b", "fig4c", "fig5", "fig7", "fig9", "fig13", "fig14",
		"fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "tabH", "dls-quality"}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			tab, err := ByID(id, true)
			if err != nil {
				t.Fatal(err)
			}
			if tab.ID != id {
				t.Errorf("table id = %q, want %q", tab.ID, id)
			}
			if len(tab.Rows) == 0 {
				t.Error("no rows produced")
			}
			if len(tab.Headers) == 0 {
				t.Error("no headers")
			}
			s := tab.String()
			if !strings.Contains(s, tab.Title) {
				t.Error("rendered table missing title")
			}
		})
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("bogus", true); err == nil {
		t.Error("unknown id accepted")
	}
}

// TestFig9SweetSpotNote checks the headline claim is carried in the
// regenerated artefact.
func TestFig9SweetSpotNote(t *testing.T) {
	tab, err := Fig09SweetSpot()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range tab.Notes {
		if strings.Contains(n, "sweet spot at N=8") || strings.Contains(n, "sweet spot at N=16") {
			found = true
		}
	}
	if !found {
		t.Errorf("sweet spot note missing or out of band: %v", tab.Notes)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Headers: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddNote("note %d", 7)
	s := tab.String()
	for _, want := range []string{"== x — demo ==", "a  bb", "1  2", "* note 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}
