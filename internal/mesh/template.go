package mesh

// PhaseTemplate is an immutable, byte-invariant compiled phase
// sequence: the route structures, payloads and labels of a lowered
// collective depend only on the topology and the ordered die group,
// while every flow's byte count rescales uniformly with the query
// (ring chunks, stream sub-tensors, broadcast payloads). Compiling the
// structure once and materializing per query removes route
// computation — the dominant cost of lowering — from the evaluation
// hot path.
//
// All flows of a template share one backing array, so Materialize is
// exactly two allocations. Templates are safe for concurrent use: the
// returned phases share the template's routes and payload strings,
// which consumers never mutate in place (the TCME optimizer clones
// phases and replaces routes wholesale).
type PhaseTemplate struct {
	phases []Phase
	flows  []Flow
}

// NewPhaseTemplate compiles phases into a template. The input is
// deep-copied at the phase/flow level; flow Bytes values are dropped
// (they are supplied by Materialize).
func NewPhaseTemplate(phases []Phase) *PhaseTemplate {
	t := &PhaseTemplate{phases: make([]Phase, len(phases))}
	total := 0
	for _, p := range phases {
		total += len(p.Flows)
	}
	t.flows = make([]Flow, 0, total)
	for i, p := range phases {
		start := len(t.flows)
		t.flows = append(t.flows, p.Flows...)
		end := len(t.flows)
		t.phases[i] = Phase{Label: p.Label, Flows: t.flows[start:end:end]}
	}
	for i := range t.flows {
		t.flows[i].Bytes = 0
	}
	return t
}

// Phases returns the number of phases in the template.
func (t *PhaseTemplate) Phases() int { return len(t.phases) }

// Flows returns the total flow count across phases.
func (t *PhaseTemplate) Flows() int { return len(t.flows) }

// LoweredSeq pairs a compiled template with the per-flow byte value
// one evaluation assigns it — a phase sequence that never needs to be
// materialized to be timed.
type LoweredSeq struct {
	Tmpl  *PhaseTemplate
	Bytes float64
}

// SeqTimeLowered evaluates the concatenation of scaled templates
// exactly as SeqTime would evaluate the materialized concatenation —
// same phase order, same per-accumulator float summation order — but
// without materializing anything. This is the zero-allocation
// collective path of the analytic cost model; the TCME path still
// materializes (MaterializeSeq) because the optimizer mutates phases.
func (t *Topology) SeqTimeLowered(seq []LoweredSeq) PhaseTime {
	var out PhaseTime
	var worst float64
	for _, ls := range seq {
		if ls.Tmpl == nil {
			continue
		}
		for i := range ls.Tmpl.phases {
			pt := t.timePhase(ls.Tmpl.phases[i], true, ls.Bytes)
			out.Serialization += pt.Serialization
			out.HopLatency += pt.HopLatency
			out.TotalBytes += pt.TotalBytes
			out.LinkBytes += pt.LinkBytes
			if pt.MaxHops > out.MaxHops {
				out.MaxHops = pt.MaxHops
			}
			if pt.Total() > worst {
				worst = pt.Total()
				out.Bottleneck = pt.Bottleneck
				out.BottleneckBytes = pt.BottleneckBytes
			}
		}
	}
	return out
}

// MaterializeSeq concatenates the materialized phases of a scaled
// template sequence, in order.
func MaterializeSeq(seq []LoweredSeq) []Phase {
	var out []Phase
	for _, ls := range seq {
		if ls.Tmpl == nil {
			continue
		}
		out = append(out, ls.Tmpl.Materialize(ls.Bytes)...)
	}
	return out
}

// Materialize returns the template's phase sequence with every flow
// carrying bytes. Phase and flow order match the uncompiled lowering
// exactly, so downstream float accumulation is bit-identical.
func (t *PhaseTemplate) Materialize(bytes float64) []Phase {
	if len(t.phases) == 0 {
		return nil
	}
	flows := make([]Flow, len(t.flows))
	copy(flows, t.flows)
	for i := range flows {
		flows[i].Bytes = bytes
	}
	phases := make([]Phase, len(t.phases))
	off := 0
	for i := range t.phases {
		n := len(t.phases[i].Flows)
		phases[i] = Phase{Label: t.phases[i].Label, Flows: flows[off : off+n : off+n]}
		off += n
	}
	return phases
}
