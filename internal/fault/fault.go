// Package fault implements the systematic fault-tolerance mechanism
// of §VIII-F (Fig. 20): random link and core fault injection, fault
// localization, adaptive tensor re-partitioning (capacity-weighted
// work re-balancing), and communication re-routing around dead
// hardware — all at the framework level rather than relying on
// hardware redundancy.
package fault

import (
	"math/rand"

	"temp/internal/cost"
	"temp/internal/hw"
	"temp/internal/mesh"
	"temp/internal/model"
	"temp/internal/parallel"
)

// Injection describes a fault scenario.
type Injection struct {
	// LinkRate is the fraction of D2D link bundles that fail.
	LinkRate float64
	// CoreRate is the per-core failure probability inside each die;
	// a die's surviving capacity is its fraction of healthy cores.
	CoreRate float64
	// CoresPerDie sizes the per-die core array (Fig. 3: 8×8).
	CoresPerDie int
}

// Active reports whether the injection perturbs anything; inactive
// injections let scenario runners skip the fault stage entirely.
func (in Injection) Active() bool {
	return in.LinkRate > 0 || in.CoreRate > 0
}

// Apply injects faults into a topology using the given source of
// randomness. Link bundles (both directions) fail together.
func (in Injection) Apply(t *mesh.Topology, rng *rand.Rand) {
	if in.LinkRate > 0 {
		seen := map[mesh.Link]bool{}
		for _, l := range t.Links() {
			key := l
			if l.To < l.From {
				key = mesh.Link{From: l.To, To: l.From}
			}
			if seen[key] {
				continue
			}
			seen[key] = true
			if rng.Float64() < in.LinkRate {
				t.SetLinkAlive(key, false)
			}
		}
	}
	if in.CoreRate > 0 {
		cores := in.CoresPerDie
		if cores <= 0 {
			cores = 64
		}
		for d := 0; d < t.Dies(); d++ {
			dead := 0
			for c := 0; c < cores; c++ {
				if rng.Float64() < in.CoreRate {
					dead++
				}
			}
			frac := 1 - float64(dead)/float64(cores)
			t.SetCoreFraction(mesh.DieID(d), frac)
			if frac <= 0 {
				t.SetDieAlive(mesh.DieID(d), false)
			}
		}
	}
}

// Report describes the localization step: what failed and whether
// the surviving fabric can still run the configuration.
type Report struct {
	DeadLinks int
	DeadDies  int
	// MeanCapacity is the average surviving core fraction.
	MeanCapacity float64
	// Connected reports whether the alive dies form one component.
	Connected bool
}

// Localize scans a topology for faults (step 1 of Fig. 20(a)).
func Localize(t *mesh.Topology) Report {
	r := Report{Connected: t.Connected()}
	seen := map[mesh.Link]bool{}
	total := 0
	for d := 0; d < t.Dies(); d++ {
		id := mesh.DieID(d)
		if !t.DieAlive(id) {
			r.DeadDies++
		} else {
			r.MeanCapacity += t.CoreFraction(id)
		}
	}
	alive := t.Dies() - r.DeadDies
	if alive > 0 {
		r.MeanCapacity /= float64(alive)
	}
	// Count dead bundles against the pristine mesh.
	pristine := mesh.Shared(t.Rows(), t.Cols(), t.LinkParams())
	for _, l := range pristine.Links() {
		key := l
		if l.To < l.From {
			key = mesh.Link{From: l.To, To: l.From}
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		total++
		if !t.LinkAlive(key) {
			r.DeadLinks++
		}
	}
	return r
}

// Outcome is the result of one faulted evaluation.
type Outcome struct {
	Report     Report
	Breakdown  cost.Breakdown
	Functional bool
}

// Evaluate runs the cost model on a faulted topology with TEMP's
// three-step tolerance: localization, adaptive re-partitioning
// (capacity-weighted re-balance via AdaptiveRebalance), and re-routing
// (the mesh router avoids dead links). A disconnected fabric, or one
// whose placement can no longer route, is reported non-functional.
func Evaluate(m model.Config, w hw.Wafer, cfg parallel.Config, o cost.Options, in Injection, rng *rand.Rand) Outcome {
	return EvaluateWith("", m, w, cfg, o, in, rng)
}

// EvaluateWith is Evaluate at a named cost-backend fidelity: the
// degraded topology is priced through the backend's placement-aware
// path (tiers without one, like the surrogate, fall back to the
// analytic model — see cost.EvaluateOnWith).
func EvaluateWith(backend string, m model.Config, w hw.Wafer, cfg parallel.Config, o cost.Options, in Injection, rng *rand.Rand) Outcome {
	// FromWafer returns the interned immutable mesh; injection needs a
	// private mutable copy. Once the fault mask is final the degraded
	// topology is interned too, so repeated trials (and the evaluator's
	// per-topology lowering caches) share one frozen instance per mask.
	topo := mesh.FromWafer(w).Clone()
	in.Apply(topo, rng)
	topo = topo.Intern()
	rep := Localize(topo)
	if !rep.Connected || rep.DeadDies > 0 && !topo.Connected() {
		return Outcome{Report: rep}
	}
	o.AdaptiveRebalance = true
	var place *parallel.Placement
	var err error
	if o.Engine == cost.SMap {
		place, err = parallel.PlaceLinear(cfg, topo)
	} else {
		place, err = parallel.Place(cfg, topo)
	}
	if err != nil {
		return Outcome{Report: rep}
	}
	b, err := cost.EvaluateOnWith(backend, m, w, cfg, o, topo, place)
	if err != nil {
		return Outcome{Report: rep}
	}
	return Outcome{Report: rep, Breakdown: b, Functional: true}
}

// NormalizedThroughput runs trials at a fault rate and returns mean
// throughput relative to the fault-free baseline — the y-axis of
// Fig. 20(b)/(c). Non-functional trials contribute zero.
func NormalizedThroughput(m model.Config, w hw.Wafer, cfg parallel.Config, o cost.Options,
	in Injection, trials int, seed int64) float64 {
	return NormalizedThroughputWith("", m, w, cfg, o, in, trials, seed)
}

// NormalizedThroughputWith is NormalizedThroughput at a named
// cost-backend fidelity; baseline and faulted trials price through
// the same tier, so the normalization stays consistent.
func NormalizedThroughputWith(backend string, m model.Config, w hw.Wafer, cfg parallel.Config, o cost.Options,
	in Injection, trials int, seed int64) float64 {
	base, err := cost.EvaluateWith(backend, m, w, cfg, o)
	if err != nil || base.ThroughputTokens <= 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	var sum float64
	for i := 0; i < trials; i++ {
		out := EvaluateWith(backend, m, w, cfg, o, in, rng)
		if out.Functional {
			sum += out.Breakdown.ThroughputTokens / base.ThroughputTokens
		}
	}
	return sum / float64(trials)
}
