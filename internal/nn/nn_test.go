package nn

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func TestDenseForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(3, 2, false, rng)
	out := d.Forward([]float64{1, 2, 3})
	if len(out) != 2 {
		t.Fatalf("output len = %d", len(out))
	}
}

func TestDenseForwardPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched input did not panic")
		}
	}()
	rng := rand.New(rand.NewSource(1))
	NewDense(3, 2, false, rng).Forward([]float64{1})
}

func TestReLUZeroesNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(1, 1, true, rng)
	d.W[0] = 1
	d.B[0] = 0
	if out := d.Forward([]float64{-5})[0]; out != 0 {
		t.Errorf("ReLU(-5) = %v", out)
	}
	if out := d.Forward([]float64{5})[0]; out != 5 {
		t.Errorf("ReLU(5) = %v", out)
	}
}

// TestMLPLearnsLinearFunction: the MLP must fit y = 2x₀ - 3x₁ + 1.
func TestMLPLearnsLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var xs, ys [][]float64
	for i := 0; i < 256; i++ {
		x := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		xs = append(xs, x)
		ys = append(ys, []float64{2*x[0] - 3*x[1] + 1})
	}
	m := NewMLP([]int{2, 16, 1}, rng)
	loss := m.Fit(xs, ys, 200, 32, AdamConfig{LR: 1e-2}, rng)
	if loss > 1e-3 {
		t.Errorf("final loss = %v, want <1e-3", loss)
	}
	pred := m.Predict([]float64{0.5, -0.5})[0]
	want := 2*0.5 + 3*0.5 + 1
	if math.Abs(pred-want) > 0.1 {
		t.Errorf("Predict = %v, want %v", pred, want)
	}
}

// TestMLPLearnsNonlinear: fit y = x² on [-1,1] — requires the hidden
// ReLU layer to do real work.
func TestMLPLearnsNonlinear(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var xs, ys [][]float64
	for i := 0; i < 512; i++ {
		x := rng.Float64()*2 - 1
		xs = append(xs, []float64{x})
		ys = append(ys, []float64{x * x})
	}
	m := NewMLP([]int{1, 32, 32, 1}, rng)
	loss := m.Fit(xs, ys, 300, 64, AdamConfig{LR: 3e-3}, rng)
	if loss > 5e-3 {
		t.Errorf("final loss = %v, want <5e-3", loss)
	}
}

func TestGradientCheck(t *testing.T) {
	// Numerical vs analytic gradient on a tiny network.
	rng := rand.New(rand.NewSource(3))
	m := NewMLP([]int{2, 3, 1}, rng)
	x := []float64{0.3, -0.7}
	y := []float64{0.5}
	lossAt := func() float64 {
		out := m.Predict(x)
		d := out[0] - y[0]
		return d * d
	}
	// Analytic gradient of the first layer's first weight.
	gW := make([][]float64, len(m.Layers))
	gB := make([][]float64, len(m.Layers))
	for i, l := range m.Layers {
		gW[i] = make([]float64, len(l.W))
		gB[i] = make([]float64, len(l.B))
	}
	out := m.forward(x) // training pass: records the scratch Backward reads
	dOut := []float64{2 * (out[0] - y[0])}
	grad := dOut
	for li := len(m.Layers) - 1; li >= 0; li-- {
		grad = m.Layers[li].Backward(grad, gW[li], gB[li])
	}
	const eps = 1e-6
	for li, l := range m.Layers {
		for wi := 0; wi < len(l.W); wi += 3 {
			orig := l.W[wi]
			l.W[wi] = orig + eps
			up := lossAt()
			l.W[wi] = orig - eps
			down := lossAt()
			l.W[wi] = orig
			num := (up - down) / (2 * eps)
			if math.Abs(num-gW[li][wi]) > 1e-4*(1+math.Abs(num)) {
				t.Errorf("layer %d w[%d]: numeric %v vs analytic %v", li, wi, num, gW[li][wi])
			}
		}
	}
}

func TestStandardizer(t *testing.T) {
	xs := [][]float64{{1, 10}, {3, 30}, {5, 50}}
	s := FitStandardizer(xs)
	if math.Abs(s.Mean[0]-3) > 1e-12 || math.Abs(s.Mean[1]-30) > 1e-12 {
		t.Errorf("means = %v", s.Mean)
	}
	norm := s.ApplyAll(xs)
	var m0 float64
	for _, x := range norm {
		m0 += x[0]
	}
	if math.Abs(m0) > 1e-9 {
		t.Errorf("standardized mean = %v, want 0", m0/3)
	}
	// Constant features don't blow up.
	cs := FitStandardizer([][]float64{{5}, {5}, {5}})
	if v := cs.Apply([]float64{5})[0]; v != 0 {
		t.Errorf("constant feature standardized to %v", v)
	}
}

func TestLinearRegressionExactFit(t *testing.T) {
	// y = 4x₀ - 2x₁ + 7 fits exactly.
	xs := [][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 3}}
	var ys []float64
	for _, x := range xs {
		ys = append(ys, 4*x[0]-2*x[1]+7)
	}
	lr := FitLinear(xs, ys, 1e-9)
	for i, x := range xs {
		if got := lr.Predict(x); math.Abs(got-ys[i]) > 1e-6 {
			t.Errorf("Predict(%v) = %v, want %v", x, got, ys[i])
		}
	}
}

func TestLinearRegressionUnderfitsQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 200; i++ {
		x := rng.Float64()*4 - 2
		xs = append(xs, []float64{x})
		ys = append(ys, x*x)
	}
	lr := FitLinear(xs, ys, 1e-6)
	var preds []float64
	for _, x := range xs {
		preds = append(preds, lr.Predict(x))
	}
	if mape := MAPE(preds, ys); mape < 10 {
		t.Errorf("linear fit of quadratic MAPE = %.1f%%, expected poor (≥10%%)", mape)
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if r := Pearson(a, a); math.Abs(r-1) > 1e-12 {
		t.Errorf("self correlation = %v", r)
	}
	b := []float64{4, 3, 2, 1}
	if r := Pearson(a, b); math.Abs(r+1) > 1e-12 {
		t.Errorf("anti correlation = %v", r)
	}
	c := []float64{5, 5, 5, 5}
	if r := Pearson(a, c); r != 0 {
		t.Errorf("constant series correlation = %v", r)
	}
}

func TestMAPE(t *testing.T) {
	pred := []float64{110, 90}
	truth := []float64{100, 100}
	if got := MAPE(pred, truth); math.Abs(got-10) > 1e-12 {
		t.Errorf("MAPE = %v, want 10", got)
	}
	// Zero truths are skipped.
	if got := MAPE([]float64{1, 110}, []float64{0, 100}); math.Abs(got-10) > 1e-12 {
		t.Errorf("MAPE with zero truth = %v, want 10", got)
	}
}

func TestFitPanicsOnEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP([]int{1, 1}, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("Fit on empty dataset did not panic")
		}
	}()
	m.Fit(nil, nil, 1, 1, AdamConfig{}, rng)
}

// TestPredictMatchesTrainingForward pins the read-only inference path
// to the training forward pass bit-for-bit.
func TestPredictMatchesTrainingForward(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP([]int{4, 8, 8, 1}, rng)
	for i := 0; i < 20; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if got, want := m.Predict(x)[0], m.forward(x)[0]; got != want {
			t.Fatalf("Predict %v ≠ training forward %v", got, want)
		}
	}
}

// TestPredictIsReadOnly hammers one trained MLP from many goroutines;
// with the read-only inference path this is race-free (the CI -race
// run enforces it) and every goroutine sees the serial predictions.
func TestPredictIsReadOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewMLP([]int{3, 16, 16, 1}, rng)
	xs := make([][]float64, 64)
	want := make([]float64, len(xs))
	for i := range xs {
		xs[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		want[i] = m.Predict(xs[i])[0]
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for rep := 0; rep < 50; rep++ {
				for i, x := range xs {
					if got := m.Predict(x)[0]; got != want[i] {
						done <- fmt.Errorf("concurrent Predict %v ≠ serial %v", got, want[i])
						return
					}
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
