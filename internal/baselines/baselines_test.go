package baselines

import (
	"testing"

	"temp/internal/cost"
	"temp/internal/hw"
	"temp/internal/model"
)

func TestSixNamesAndOrder(t *testing.T) {
	want := []string{"Mega+SMap", "Mega+GMap", "MeSP+SMap", "MeSP+GMap", "FSDP+SMap", "FSDP+GMap"}
	six := Six()
	if len(six) != len(want) {
		t.Fatalf("Six() = %d systems", len(six))
	}
	for i, s := range six {
		if s.Name != want[i] {
			t.Errorf("system %d = %s, want %s", i, s.Name, want[i])
		}
	}
}

func TestConfigSpacesValid(t *testing.T) {
	for _, s := range append(Six(), TEMP()) {
		cfgs := s.Configs(32)
		if len(cfgs) == 0 {
			t.Errorf("%s: empty configuration space", s.Name)
		}
		for _, c := range cfgs {
			if c.Degree() != 32 {
				t.Errorf("%s: config %s degree %d ≠ 32", s.Name, c, c.Degree())
			}
		}
	}
}

func TestMegatron1HasNoTATPOrSP(t *testing.T) {
	for _, c := range Megatron1(cost.SMap).Configs(32) {
		n := c.Normalize()
		if n.TATP > 1 || n.SP > 1 || n.CP > 1 || n.FSDP {
			t.Errorf("Megatron-1 config %s uses strategies it predates", c)
		}
	}
	o := Megatron1(cost.SMap).Opts
	if !o.NoFlashAttention || o.Recompute != cost.RecomputeNone || o.DistributedOptimizer {
		t.Error("Megatron-1 conventions should be period-accurate (no flash, full stash, no ZeRO)")
	}
}

func TestMeSPFlagsMegatronSP(t *testing.T) {
	for _, c := range MeSP(cost.GMap).Configs(32) {
		if !c.MegatronSP {
			t.Errorf("MeSP config %s missing fused-SP flag", c)
		}
		if c.TATP > 1 {
			t.Errorf("MeSP config %s uses TATP", c)
		}
	}
}

func TestFSDPConfigsSharded(t *testing.T) {
	for _, c := range FSDP(cost.SMap).Configs(32) {
		if !c.FSDP || c.Normalize().DP < 2 {
			t.Errorf("FSDP config %s not sharded", c)
		}
	}
}

func TestTEMPSpaceIncludesTATP(t *testing.T) {
	hasTATP := false
	for _, c := range TEMP().Configs(32) {
		if c.Normalize().TATP >= 8 {
			hasTATP = true
		}
	}
	if !hasTATP {
		t.Error("TEMP space has no TATP≥8 configuration")
	}
	if TEMP().Opts.Engine != cost.TCMEEngine {
		t.Error("TEMP must use the TCME engine")
	}
}

func TestBestPicksFeasibleMinimum(t *testing.T) {
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	r, err := Best(TEMP(), m, w)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible {
		t.Fatal("TEMP should have a feasible config for 6.7B")
	}
	if r.OOM() {
		t.Error("feasible result flagged OOM")
	}
	// The chosen config must be at least as fast as an arbitrary
	// member of the space.
	other, err := cost.Evaluate(m, w, TEMP().Configs(32)[0], TEMP().Opts)
	if err == nil && !other.OOM() && other.StepTime < r.StepTime {
		t.Errorf("Best returned %v but %s achieves %v", r.StepTime, TEMP().Configs(32)[0], other.StepTime)
	}
}

func TestBestReportsOOMWhenNothingFits(t *testing.T) {
	// Megatron-1 cannot hold GPT-3 175B on the wafer at any config.
	r, err := Best(Megatron1(cost.SMap), model.GPT3_175B(), hw.EvaluationWafer())
	if err != nil {
		t.Fatal(err)
	}
	if r.Feasible {
		t.Errorf("Megatron-1 on 175B reported feasible config %s (mem %.0fGB)",
			r.Config, r.Memory.Total()/1e9)
	}
	if !r.OOM() {
		t.Error("infeasible result should carry an OOM breakdown")
	}
}

// TestPaperOrderingHolds is the Fig. 13 acceptance test: on each
// evaluated model, TEMP is at least as fast as every baseline, and
// the Megatron variants are the slowest feasible systems.
func TestPaperOrderingHolds(t *testing.T) {
	w := hw.EvaluationWafer()
	for _, m := range []model.Config{model.GPT3_6_7B(), model.Llama3_70B()} {
		temp, err := Best(TEMP(), m, w)
		if err != nil || !temp.Feasible {
			t.Fatalf("TEMP infeasible on %s: %v", m.Name, err)
		}
		for _, s := range Six() {
			r, err := Best(s, m, w)
			if err != nil {
				t.Fatalf("%s on %s: %v", s.Name, m.Name, err)
			}
			if !r.Feasible {
				continue // OOM columns are expected for Mega on 70B
			}
			if r.StepTime < temp.StepTime*(1-1e-9) {
				t.Errorf("%s on %s (%v) beats TEMP (%v)", s.Name, m.Name, r.StepTime, temp.StepTime)
			}
		}
	}
}

func TestBestCluster(t *testing.T) {
	r, err := BestCluster(model.GPT3_6_7B(), hw.A100Cluster())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible || r.StepTime <= 0 {
		t.Fatalf("cluster result invalid: %+v", r)
	}
	if r.Config.TP > 8 {
		t.Errorf("cluster TP %d exceeds node size", r.Config.TP)
	}
}

func TestFromSchemeMatchesConstructors(t *testing.T) {
	cases := []struct {
		scheme string
		engine cost.Engine
		want   System
	}{
		{"megatron1", cost.SMap, Megatron1(cost.SMap)},
		{"mesp", cost.GMap, MeSP(cost.GMap)},
		{"fsdp", cost.GMap, FSDP(cost.GMap)},
		{"temp", cost.TCMEEngine, TEMP()},
	}
	for _, tc := range cases {
		got, err := FromScheme(tc.scheme, tc.engine, Envelope{})
		if err != nil {
			t.Fatalf("%s: %v", tc.scheme, err)
		}
		if got.Name != tc.want.Name || got.Opts != tc.want.Opts || got.Scheme != tc.want.Scheme {
			t.Errorf("%s: FromScheme = %+v, want %+v", tc.scheme, got, tc.want)
		}
	}
	if _, err := FromScheme("zero-infinity", cost.GMap, Envelope{}); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestEnvelopeCapsBest(t *testing.T) {
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	sys := TEMP()
	sys.Envelope = Envelope{MaxTATP: 1}
	r, err := Best(sys, m, w)
	if err != nil {
		t.Fatal(err)
	}
	if r.Config.Normalize().TATP != 1 {
		t.Errorf("envelope MaxTATP=1 violated: best config %s", r.Config)
	}
}
