package cost

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"temp/internal/hw"
	"temp/internal/mesh"
	"temp/internal/model"
	"temp/internal/parallel"
)

// Backend is one fidelity tier of the cost model. Every tier prices
// the same two shapes: a whole training step (Price, the Evaluate
// shape every sweep and scenario consumes) and single operators
// (Operator, the fast path the solver's search strategies hammer).
//
// Three tiers ship registered:
//
//   - "analytic": the closed-form wafer model — bit-identical to the
//     historical cost.Evaluate (pinned by testdata/analytic_golden.json).
//   - "replay": contention fidelity — every communication phase is
//     lowered onto the mesh and link-load replayed through the TCME
//     optimizer instead of using closed-form collective terms.
//   - "surrogate": a deterministically-seeded, train-once DNN priced
//     per operator — the cheap screening tier of §VII-A / Fig. 21.
//
// Backends must be safe for concurrent use: the evaluation engine
// calls Price from its worker pool and the solver calls operator
// models from parallel population pricing.
type Backend interface {
	// Name returns the backend's registered name.
	Name() string
	// Price evaluates one full training step at this tier's fidelity.
	Price(m model.Config, w hw.Wafer, cfg parallel.Config, o Options) (Breakdown, error)
	// Operator returns the per-operator fast path for (model, wafer),
	// satisfying solver.CostModel.
	Operator(m model.Config, w hw.Wafer) (OperatorModel, error)
}

// PlacementBackend is the optional interface of tiers that can price
// against an existing (possibly fault-degraded) topology and
// placement — the entry point the fault-tolerance study uses after
// re-partitioning around failed hardware. The analytic and replay
// tiers implement it; the surrogate tier has no degraded-topology
// model and does not.
type PlacementBackend interface {
	PriceOn(m model.Config, w hw.Wafer, cfg parallel.Config, o Options,
		topo *mesh.Topology, place *parallel.Placement) (Breakdown, error)
}

// EvaluateWith prices one full step at a backend's fidelity,
// resolving the key through the registry. Tiers without a
// placement-aware path (the surrogate screening tier) fall back to
// the analytic model, so fault studies normalize against a
// consistent tier.
func EvaluateWith(key string, m model.Config, w hw.Wafer, cfg parallel.Config, o Options) (Breakdown, error) {
	be, err := NewBackend(key)
	if err != nil {
		return Breakdown{}, err
	}
	if _, ok := be.(PlacementBackend); ok {
		return be.Price(m, w, cfg, o)
	}
	return Evaluate(m, w, cfg, o)
}

// EvaluateOnWith is EvaluateOn at a backend's fidelity, with the same
// analytic fallback for tiers that cannot price a degraded topology.
func EvaluateOnWith(key string, m model.Config, w hw.Wafer, cfg parallel.Config, o Options,
	topo *mesh.Topology, place *parallel.Placement) (Breakdown, error) {
	be, err := NewBackend(key)
	if err != nil {
		return Breakdown{}, err
	}
	if pb, ok := be.(PlacementBackend); ok {
		return pb.PriceOn(m, w, cfg, o, topo, place)
	}
	return EvaluateOn(m, w, cfg, o, topo, place)
}

// BackendFactory builds a backend instance. The seed drives any
// training randomness (the surrogate tier); deterministic tiers
// ignore it.
type BackendFactory func(seed int64) (Backend, error)

// DefaultSurrogateSeed seeds surrogate training when a spec or key
// names the backend without an explicit seed.
const DefaultSurrogateSeed = 1

// backendRegistry is the name-keyed tier catalogue the spec layer,
// the engine and the CLIs resolve against. Instances are cached per
// canonical key so train-once backends really train once per process.
var backendRegistry = struct {
	mu        sync.RWMutex
	order     []string
	factory   map[string]BackendFactory
	instances map[string]Backend
}{factory: map[string]BackendFactory{}, instances: map[string]Backend{}}

// RegisterBackend adds a named backend factory. Names are
// case-insensitive; re-registering a name replaces the previous
// factory (and drops its cached instances).
func RegisterBackend(name string, f BackendFactory) {
	key := strings.ToLower(strings.TrimSpace(name))
	backendRegistry.mu.Lock()
	defer backendRegistry.mu.Unlock()
	if _, exists := backendRegistry.factory[key]; !exists {
		backendRegistry.order = append(backendRegistry.order, key)
	} else {
		for k := range backendRegistry.instances {
			cached := strings.SplitN(k, "@", 2)[0]
			if cached == "" {
				cached = "analytic" // the analytic tier caches under the canonical "" key
			}
			if cached == key {
				delete(backendRegistry.instances, k)
			}
		}
	}
	backendRegistry.factory[key] = f
}

// BackendNames lists registered backends in registration order.
func BackendNames() []string {
	backendRegistry.mu.RLock()
	defer backendRegistry.mu.RUnlock()
	out := make([]string, len(backendRegistry.order))
	copy(out, backendRegistry.order)
	return out
}

// BackendKey builds the canonical backend key threaded through
// engine.Job, spec.CostSpec and the CLIs: the plain name for
// seed-free tiers, "name@seed=N" otherwise. The analytic tier
// canonicalizes to "" (the zero Job evaluates analytically).
func BackendKey(name string, seed int64) string {
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" || name == "analytic" {
		return ""
	}
	if seed == 0 {
		return name
	}
	return fmt.Sprintf("%s@seed=%d", name, seed)
}

// parseBackendKey splits a canonical key into name and seed.
func parseBackendKey(key string) (name string, seed int64, err error) {
	name = strings.ToLower(strings.TrimSpace(key))
	if at := strings.IndexByte(name, '@'); at >= 0 {
		spec := name[at+1:]
		name = name[:at]
		const pfx = "seed="
		if !strings.HasPrefix(spec, pfx) {
			return "", 0, fmt.Errorf("cost: backend key %q: want name or name@seed=N", key)
		}
		seed, err = strconv.ParseInt(spec[len(pfx):], 10, 64)
		if err != nil {
			return "", 0, fmt.Errorf("cost: backend key %q: bad seed: %v", key, err)
		}
	}
	if name == "" {
		name = "analytic"
	}
	return name, seed, nil
}

// CanonicalBackendKey normalizes a backend key for cache-key use:
// names are lower-cased, "analytic" collapses to "", and the
// surrogate tier's implicit default seed is made explicit (so
// "surrogate" and "surrogate@seed=1" share one cache entry). An
// unparsable key is returned trimmed; NewBackend will report it.
func CanonicalBackendKey(key string) string {
	name, seed, err := parseBackendKey(key)
	if err != nil {
		return strings.ToLower(strings.TrimSpace(key))
	}
	switch name {
	case "surrogate":
		if seed == 0 {
			seed = DefaultSurrogateSeed
		}
	case "analytic", "replay", "":
		// The built-in deterministic tiers ignore seeds; drop them so
		// spellings like "replay@seed=7" share the bare key's cache
		// entries. Custom registered tiers keep their seed — their
		// factories may be seeded.
		seed = 0
	}
	return BackendKey(name, seed)
}

// NewBackend resolves a backend key ("replay", "surrogate@seed=7", ""
// for analytic) to a cached instance. Instances are shared: the
// surrogate tier's trained predictors survive across calls with the
// same key.
func NewBackend(key string) (Backend, error) {
	canon := CanonicalBackendKey(key)
	name, seed, err := parseBackendKey(canon)
	if err != nil {
		return nil, err
	}
	backendRegistry.mu.RLock()
	inst, ok := backendRegistry.instances[canon]
	backendRegistry.mu.RUnlock()
	if ok {
		return inst, nil
	}
	backendRegistry.mu.Lock()
	defer backendRegistry.mu.Unlock()
	if inst, ok := backendRegistry.instances[canon]; ok {
		return inst, nil
	}
	f, ok := backendRegistry.factory[name]
	if !ok {
		return nil, fmt.Errorf("cost: unknown backend %q (have %s)",
			name, strings.Join(backendRegistry.order, ", "))
	}
	b, err := f(seed)
	if err != nil {
		return nil, err
	}
	backendRegistry.instances[canon] = b
	return b, nil
}

// analyticBackend is the historical monolithic model as a tier: Price
// is exactly Evaluate and Operator is the closed-form per-op model.
type analyticBackend struct{}

// Name implements Backend.
func (analyticBackend) Name() string { return "analytic" }

// Price implements Backend.
func (analyticBackend) Price(m model.Config, w hw.Wafer, cfg parallel.Config, o Options) (Breakdown, error) {
	return Evaluate(m, w, cfg, o)
}

// Operator implements Backend.
func (analyticBackend) Operator(m model.Config, w hw.Wafer) (OperatorModel, error) {
	return &OperatorAnalytic{W: w, M: m}, nil
}

// PriceOn implements PlacementBackend.
func (analyticBackend) PriceOn(m model.Config, w hw.Wafer, cfg parallel.Config, o Options,
	topo *mesh.Topology, place *parallel.Placement) (Breakdown, error) {
	return evaluateOn(m, w, cfg, o, topo, place, false)
}

func init() {
	RegisterBackend("analytic", func(int64) (Backend, error) { return analyticBackend{}, nil })
	RegisterBackend("replay", func(int64) (Backend, error) { return &replayBackend{}, nil })
	RegisterBackend("surrogate", func(seed int64) (Backend, error) {
		if seed == 0 {
			seed = DefaultSurrogateSeed
		}
		return newSurrogateBackend(seed), nil
	})
}
