package solver

import (
	"math/rand"
	"testing"

	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
)

// TestDeltaCostMatchesFullRecomputation drives the incremental
// evaluator through randomized single-gene moves and asserts every
// priced move equals a full assignmentCost recomputation with EXACT
// float equality — the delta path reuses the same memoized terms and
// sums them in the same order, so there is no tolerance to hide
// behind.
func TestDeltaCostMatchesFullRecomputation(t *testing.T) {
	for _, m := range []model.Config{model.GPT3_6_7B(), model.GPT3_175B()} {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			w := hw.EvaluationWafer()
			g := model.BlockGraph(m)
			space := parallel.EnumerateConfigs(w.Dies(), true, 0)
			ev := newEvaluator(&Analytic{W: w, M: m}, g.Ops, space)

			rng := rand.New(rand.NewSource(13))
			start := make(Assignment, len(g.Ops))
			for i := range start {
				start[i] = rng.Intn(len(space))
			}
			inc := ev.incremental(start)
			if got, want := inc.cost(), ev.assignmentCost(start); got != want {
				t.Fatalf("initial incremental cost %v ≠ assignmentCost %v", got, want)
			}

			scratch := append(Assignment(nil), start...)
			for move := 0; move < 500; move++ {
				i := rng.Intn(len(scratch))
				c := rng.Intn(len(space))
				// Price the move without applying it.
				got := inc.moveCost(i, c)
				old := scratch[i]
				scratch[i] = c
				want := ev.assignmentCost(scratch)
				if got != want {
					t.Fatalf("move %d (op %d → cfg %d): delta cost %v ≠ full recomputation %v",
						move, i, c, got, want)
				}
				// Apply every other move so the walk visits varied
				// assignments; revert the rest.
				if move%2 == 0 {
					inc.apply(i, c)
					if inc.cost() != want {
						t.Fatalf("move %d: applied cost %v ≠ full recomputation %v", move, inc.cost(), want)
					}
				} else {
					scratch[i] = old
				}
			}
			// After the walk the cached view must still agree.
			if got, want := inc.cost(), ev.assignmentCost(inc.assign); got != want {
				t.Fatalf("final incremental cost %v ≠ assignmentCost %v", got, want)
			}
		})
	}
}

// TestDLSOptionsValidate is the table-driven guard that invalid
// options error instead of being silently clamped.
func TestDLSOptionsValidate(t *testing.T) {
	cases := []struct {
		name    string
		opts    DLSOptions
		wantErr bool
	}{
		{"zero-defaults", DLSOptions{}, false},
		{"explicit", DLSOptions{Population: 16, Generations: 10, MutationRate: 0.2}, false},
		{"workers", DLSOptions{Workers: 8}, false},
		{"mutation-one", DLSOptions{MutationRate: 1}, false},
		{"negative-population", DLSOptions{Population: -1}, true},
		{"negative-generations", DLSOptions{Generations: -5}, true},
		{"negative-mutation", DLSOptions{MutationRate: -0.1}, true},
		{"mutation-above-one", DLSOptions{MutationRate: 1.01}, true},
		{"negative-workers", DLSOptions{Workers: -2}, true},
	}
	g, space, cm := setup()
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate()
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate() = %v, wantErr %v", err, tc.wantErr)
			}
			// DLS must surface the same verdict.
			_, _, err = DLS(g, space, cm, tc.opts)
			if (err != nil) != tc.wantErr {
				t.Fatalf("DLS error = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}
