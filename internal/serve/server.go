package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"temp/internal/distrib"
	"temp/internal/sim"
	"temp/internal/solver"
	"temp/internal/spec"
)

// Options configures a Server.
type Options struct {
	// MaxConcurrent bounds simultaneously running solves (default:
	// engine worker count is a good choice — the caller decides).
	MaxConcurrent int
	// MaxQueue bounds solves waiting for a slot; a request beyond
	// MaxConcurrent+MaxQueue gets 503 + Retry-After.
	MaxQueue int
	// Fabric, when non-nil, fans multi-scenario non-streamed requests
	// out over the distributed worker fabric.
	Fabric *distrib.Fabric
	// MaxBody bounds request-body size (default 4 MiB).
	MaxBody int64
	// CheckpointDir, when set, enables best-so-far checkpoint capture
	// on every solve: the latest per-scenario solver checkpoint is
	// held in memory and persisted here (one <request-id>.checkpoint.json
	// per solve cancelled mid-flight) when the server drains.
	CheckpointDir string
}

// Server is the mapping service: an http.Handler exposing
// POST /v1/solve, GET /metrics and GET /healthz over one shared
// evaluation engine.
type Server struct {
	opts  Options
	sched *Scheduler
	mux   *http.ServeMux
	start time.Time
	seq   atomic.Int64

	// reqTotal/reqErrors count HTTP-level outcomes for /metrics.
	reqTotal  atomic.Int64
	reqErrors atomic.Int64
	streamed  atomic.Int64
	// startEngine baselines the engine counters at construction so
	// /metrics can report this server's own traffic even when the
	// process ran other work first (tests, warmup).
	startEngine startCounters

	// draining flips when Drain begins: new solves get 503 +
	// Retry-After while in-flight ones run to completion (or are
	// cancelled when the grace period lapses).
	draining      atomic.Bool
	drainRejected atomic.Int64
	// canceledSolves counts solves cut short by client disconnect or
	// drain-grace expiry.
	canceledSolves atomic.Int64

	// inflight tracks running solves so Drain can cancel stragglers
	// and persist their best-so-far checkpoints.
	inflightMu sync.Mutex
	inflight   map[int64]*inflightSolve
}

// inflightSolve is one running solve's drain handle: its cancel
// function plus the latest checkpoint per scenario (recorded only
// when Options.CheckpointDir is set).
type inflightSolve struct {
	id     int64
	reqID  string
	tenant string
	cancel context.CancelFunc

	mu  sync.Mutex
	cps map[string]solver.Checkpoint
}

// record stores the newest checkpoint for a scenario.
func (in *inflightSolve) record(scenario string, cp solver.Checkpoint) {
	in.mu.Lock()
	in.cps[scenario] = cp
	in.mu.Unlock()
}

// snapshot copies the recorded checkpoints.
func (in *inflightSolve) snapshot() map[string]solver.Checkpoint {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]solver.Checkpoint, len(in.cps))
	for k, v := range in.cps {
		out[k] = v
	}
	return out
}

type startCounters struct {
	hits, misses, diskHits int64
}

// New builds a Server over the shared engine.
func New(opts Options) *Server {
	if opts.MaxConcurrent < 1 {
		opts.MaxConcurrent = 1
	}
	if opts.MaxBody <= 0 {
		opts.MaxBody = 4 << 20
	}
	es := engineSnapshot()
	s := &Server{
		opts:        opts,
		sched:       NewScheduler(opts.MaxConcurrent, opts.MaxQueue),
		mux:         http.NewServeMux(),
		start:       time.Now(),
		startEngine: startCounters{hits: es.Hits, misses: es.Misses, diskHits: es.DiskHits},
		inflight:    map[int64]*inflightSolve{},
	}
	s.mux.HandleFunc("/v1/solve", s.handleSolve)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Scheduler exposes the admission controller (tests, metrics).
func (s *Server) Scheduler() *Scheduler { return s.sched }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// fail writes the JSON error envelope.
func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	s.reqErrors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.reqTotal.Add(1)
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.fail(w, http.StatusMethodNotAllowed, errors.New("serve: POST required"))
		return
	}
	if s.draining.Load() {
		s.drainRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		s.fail(w, http.StatusServiceUnavailable, errors.New("serve: draining, retry elsewhere"))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.opts.MaxBody+1))
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if int64(len(body)) > s.opts.MaxBody {
		s.fail(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("serve: request body over %d bytes", s.opts.MaxBody))
		return
	}
	req, err := spec.ParseRequest(body)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if err := req.Validate(); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if req.ID == "" {
		req.ID = fmt.Sprintf("r%d", s.seq.Add(1))
	}

	release, wait, err := s.sched.Admit(r.Context(), req.Tenant)
	if err != nil {
		var o *Overloaded
		if errors.As(err, &o) {
			w.Header().Set("Retry-After", strconv.Itoa(int(o.RetryAfter/time.Second)))
			s.fail(w, http.StatusServiceUnavailable, o)
			return
		}
		// Client went away while queued.
		s.fail(w, 499, err)
		return
	}
	defer release()

	// The solve context descends from the request context, so a client
	// hanging up propagates down through the solver budget checks and
	// into fabric shard cancellation; Drain holds the same cancel to
	// cut stragglers loose when the grace period lapses.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	inf := s.track(req, cancel)
	defer s.untrack(inf, ctx)

	if req.Stream {
		s.solveStream(ctx, w, req, wait, inf)
		return
	}
	s.solveOnce(ctx, w, req, wait, inf)
}

// track registers a running solve for drain bookkeeping.
func (s *Server) track(req spec.RequestSpec, cancel context.CancelFunc) *inflightSolve {
	in := &inflightSolve{
		id: s.seq.Add(1), reqID: req.ID, tenant: req.Tenant,
		cancel: cancel, cps: map[string]solver.Checkpoint{},
	}
	s.inflightMu.Lock()
	s.inflight[in.id] = in
	s.inflightMu.Unlock()
	return in
}

// untrack removes a finished solve and counts it as cancelled when
// its context ended before completion.
func (s *Server) untrack(in *inflightSolve, ctx context.Context) {
	s.inflightMu.Lock()
	delete(s.inflight, in.id)
	s.inflightMu.Unlock()
	if ctx.Err() != nil {
		s.canceledSolves.Add(1)
	}
}

// checkpointHook returns the per-scenario checkpoint recorder when
// checkpoint capture is on (Options.CheckpointDir set), else nil so
// solves keep their spec-declared checkpoint cadence untouched.
func (s *Server) checkpointHook(in *inflightSolve) func(string, solver.Checkpoint) {
	if s.opts.CheckpointDir == "" {
		return nil
	}
	return func(scenario string, cp solver.Checkpoint) { in.record(scenario, cp) }
}

// solveOnce runs a request to completion and writes one JSON
// document.
func (s *Server) solveOnce(ctx context.Context, w http.ResponseWriter, req spec.RequestSpec, wait time.Duration, inf *inflightSolve) {
	started := time.Now()
	resp := Response{ID: req.ID, Tenant: req.Tenant, QueueWaitNS: wait.Nanoseconds()}

	// Multi-scenario requests fan out over the fabric when one is
	// attached; single scenarios and streamed solves stay in-process
	// (results are bit-identical either way).
	if fab := s.opts.Fabric; fab != nil && fab.Live() > 0 && len(req.Specs()) > 1 {
		resp.Results = toWire(sim.RunScenarioSpecsOnCtx(ctx, fab, clampedSpecs(req), sim.Overrides{}))
		resp.Distributed = true
	} else {
		scs, err := resolveRequest(req, s.checkpointHook(inf))
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
		resp.Results = toWire(sim.RunScenariosCtx(ctx, scs))
	}
	if ctx.Err() != nil {
		// Client gone or drain cut us off — nobody is reading the body.
		s.fail(w, 499, ctx.Err())
		return
	}
	resp.ElapsedNS = sinceNS(started)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

// solveStream runs a request with live best-so-far streaming over
// Server-Sent Events: one "checkpoint" event per solver snapshot,
// one final "done" event carrying the same Response document the
// non-streamed path returns.
func (s *Server) solveStream(ctx context.Context, w http.ResponseWriter, req spec.RequestSpec, wait time.Duration, inf *inflightSolve) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.fail(w, http.StatusNotImplemented, errors.New("serve: streaming unsupported by this connection"))
		return
	}
	s.streamed.Add(1)
	started := time.Now()

	// Checkpoints fire from solver goroutines — the portfolio races
	// strategies concurrently, and scenarios solve in parallel — so
	// every SSE write goes through one mutex.
	var mu sync.Mutex
	writeEvent := func(event string, v any) {
		buf, err := json.Marshal(v)
		if err != nil {
			return
		}
		mu.Lock()
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, buf)
		flusher.Flush()
		mu.Unlock()
	}

	record := s.checkpointHook(inf)
	scs, err := resolveRequest(req, func(scenario string, cp solver.Checkpoint) {
		if record != nil {
			record(scenario, cp)
		}
		writeEvent("checkpoint", CheckpointEvent{Scenario: scenario, Checkpoint: cp})
	})
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	results := sim.RunScenariosCtx(ctx, scs)
	resp := Response{
		ID: req.ID, Tenant: req.Tenant,
		Results:     toWire(results),
		QueueWaitNS: wait.Nanoseconds(),
		ElapsedNS:   sinceNS(started),
	}
	writeEvent("done", resp)
}
