package experiments

import (
	"fmt"
	"math"

	"temp/internal/baselines"
	"temp/internal/cost"
	"temp/internal/engine"
	"temp/internal/fault"
	"temp/internal/hw"
	"temp/internal/mesh"
	"temp/internal/model"
	"temp/internal/parallel"
	"temp/internal/sim"
	"temp/internal/stream"
	"temp/internal/unit"
)

// evalModels returns the Table II models (or the override set from
// the registry); quick mode keeps the three spanning sizes so
// CI-grade runs stay fast.
func evalModels(quick bool) []model.Config {
	if ms := overriddenModels(); ms != nil {
		return ms
	}
	if quick {
		return []model.Config{model.GPT3_6_7B(), model.Llama3_70B(), model.GPT3_175B()}
	}
	return model.EvaluationModels()
}

// Fig04Breakdown regenerates Fig. 4(b): the share of training time
// Megatron-style execution spends in collective communication, and
// the D2D bandwidth utilization it achieves.
func Fig04Breakdown(quick bool) (*Table, error) {
	t := &Table{
		ID:      "fig4b",
		Title:   "Megatron training-time breakdown and D2D utilization on the WSC",
		Headers: []string{"model", "collective%", "bw-util%"},
	}
	w := evalWafer()
	models := append(evalModels(quick), model.DeepSeek7B())
	if !quick {
		models = append(models, model.DeepSeek67B(), model.DeepSeekV2_236B())
	}
	var collSum float64
	var n int
	for _, m := range models {
		r, err := baselines.Best(baselines.Megatron1(cost.SMap), m, w)
		if err != nil {
			return nil, err
		}
		collPct := r.CommTime() / r.StepTime * 100
		t.AddRow(m.Name, f1(collPct), f1(r.BWUtilization*100))
		collSum += collPct
		n++
	}
	t.AddNote("mean collective share %.0f%% (paper: ~40%%); utilization stays low while compute stalls", collSum/float64(n))
	return t, nil
}

// Fig04Memory regenerates Fig. 4(c): Megatron memory against the
// replication-free ideal, with the per-die capacity line.
func Fig04Memory() (*Table, error) {
	t := &Table{
		ID:      "fig4c",
		Title:   "Memory overhead of Megatron vs replication-free ideal (per die)",
		Headers: []string{"model", "system", "weights", "grads", "optim", "acts", "total", "OOM"},
	}
	w := evalWafer()
	for _, m := range []model.Config{model.DeepSeek7B(), model.Llama2_70B(), model.Bloom176B()} {
		mega := cost.MemoryPerDie(m, w, (parallel.Config{DP: 4, TP: 8}).Normalize(),
			cost.Options{Engine: cost.GMap, Recompute: cost.RecomputeNone, Microbatch: 1, NoFlashAttention: true}, m.Layers)
		ideal := cost.MemoryPerDie(m, w, (parallel.Config{DP: 2, TATP: 16}).Normalize(),
			cost.TEMPOptions(), m.Layers)
		for _, row := range []struct {
			name string
			mb   cost.MemoryBreakdown
		}{{"Megatron", mega}, {"Ideal", ideal}} {
			t.AddRow(m.Name, row.name, gb(row.mb.Weights), gb(row.mb.Grads),
				gb(row.mb.Optimizer), gb(row.mb.Activations), gb(row.mb.Total()),
				fmt.Sprintf("%v", row.mb.OOM()))
		}
	}
	t.AddNote("per-die capacity %s; replication pushes Megatron past it on the large models", gb(w.Die.MemCapacity()))
	return t, nil
}

// Fig05Challenges regenerates Fig. 5(a)/(b): the 7× tail-latency
// disparity of a logical ring on a chain, and the >2× contention
// penalty of colliding routes.
func Fig05Challenges() (*Table, error) {
	t := &Table{
		ID:      "fig5",
		Title:   "Deployment challenges: tail latency and traffic contention",
		Headers: []string{"effect", "value"},
	}
	link := hw.TableID2D()
	line := mesh.New(1, 8, link)
	// Tail latency: logical neighbors 0↔7 are 7 physical hops apart.
	naive := stream.RingSchedule(8)
	orderDies := mesh.Rect{R0: 0, C0: 0, R1: 0, C1: 7}.DiesOn(line)
	maxHops := 0
	for _, sends := range naive.Sends {
		for _, snd := range sends {
			p := line.Route(orderDies[snd.From], orderDies[snd.To])
			if p.Hops() > maxHops {
				maxHops = p.Hops()
			}
		}
	}
	t.AddRow("naive-ring worst hop count on 8-die chain", fmt.Sprintf("%d (paper: 7)", maxHops))

	grid := mesh.New(2, 4, link)
	bytes := 64 * unit.MB
	mk := func(src, dst mesh.DieID, tag string) mesh.Flow {
		return mesh.Flow{Src: src, Dst: dst, Bytes: bytes, Route: grid.RouteXY(src, dst), Payload: tag}
	}
	solo := grid.Time(mesh.Phase{Flows: []mesh.Flow{mk(0, 2, "d1")}})
	both := grid.Time(mesh.Phase{Flows: []mesh.Flow{mk(0, 2, "d1"), mk(1, 3, "d2")}})
	t.AddRow("contention latency inflation (shared link)", fmt.Sprintf("%.2fx (paper: >2x)", both.Serialization/solo.Serialization))
	return t, nil
}

// Fig07Utilization regenerates Fig. 7(c): compute utilization when
// TATP groups map to physical rings versus non-contiguous placements,
// as the wafer grows.
func Fig07Utilization() (*Table, error) {
	t := &Table{
		ID:      "fig7",
		Title:   "Compute utilization: physical-ring vs non-contiguous TATP groups",
		Headers: []string{"model", "grid", "ring util%", "scattered util%", "drop"},
	}
	grids := [][2]int{{4, 4}, {4, 8}, {8, 8}}
	models := []model.Config{model.Llama2_7B(), model.Llama2_30B(), model.Llama2_70B()}
	scatterOpts := cost.TEMPOptions()
	scatterOpts.Engine = cost.SMap
	scatterOpts.DisableStreamOverlap = true
	// Ring/scattered pairs for every model×grid, fanned out in one
	// sweep; results come back in input order.
	var jobs []engine.Job
	for _, m := range models {
		for _, g := range grids {
			w := hw.WaferWithGrid(g[0], g[1])
			cfg := parallel.Config{DP: w.Dies() / 8, TATP: 8}
			jobs = append(jobs,
				engine.Job{Model: m, Wafer: w, Config: cfg, Opts: cost.TEMPOptions()},
				engine.Job{Model: m, Wafer: w, Config: cfg, Opts: scatterOpts})
		}
	}
	results := engine.Sweep(jobs)
	i := 0
	for _, m := range models {
		for _, g := range grids {
			ring, scat := results[i], results[i+1]
			i += 2
			if ring.Err != nil {
				return nil, ring.Err
			}
			if scat.Err != nil {
				return nil, scat.Err
			}
			ru := ring.Breakdown.ComputeTime / ring.Breakdown.StepTime * 100
			su := scat.Breakdown.ComputeTime / scat.Breakdown.StepTime * 100
			t.AddRow(m.Name, fmt.Sprintf("%dx%d", g[0], g[1]), f1(ru), f1(su), f1(ru-su))
		}
	}
	t.AddNote("topology mismatch costs up to ~30%% utilization at scale (paper Fig. 7(c))")
	return t, nil
}

// Fig09SweetSpot regenerates Fig. 9: throughput, memory and power as
// the TATP degree grows for one GPT-3 175B layer under canonical
// weight streaming.
func Fig09SweetSpot() (*Table, error) {
	t := &Table{
		ID:      "fig9",
		Title:   "TATP parallel-degree sweet spot (one GPT-3 175B layer)",
		Headers: []string{"N", "tput tok/s", "norm mem/die", "power W", "tok/s/W"},
	}
	mm := model.GPT3_175B()
	mm.Layers = 1
	o := cost.TEMPOptions()
	o.ForceStreamWeights = true
	type pt struct {
		n    int
		tput float64
	}
	degrees := []int{2, 4, 8, 16, 32, 64}
	jobs := make([]engine.Job, len(degrees))
	for i, n := range degrees {
		rows, cols := 2, n/2
		if n == 2 {
			rows, cols = 1, 2
		}
		jobs[i] = engine.Job{Model: mm, Wafer: hw.WaferWithGrid(rows, cols),
			Config: parallel.Config{TATP: n}, Opts: o}
	}
	var series []pt
	for i, r := range engine.Sweep(jobs) {
		if r.Err != nil {
			return nil, r.Err
		}
		b, n := r.Breakdown, degrees[i]
		t.AddRow(fmt.Sprintf("%d", n), f1(b.ThroughputTokens), gb(b.Memory.Total()),
			f1(b.Power), f2(b.PowerEfficiency))
		series = append(series, pt{n, b.ThroughputTokens})
	}
	best := series[0]
	for _, p := range series {
		if p.tput > best.tput {
			best = p
		}
	}
	t.AddNote("throughput sweet spot at N=%d (paper: 8–16, declining beyond)", best.n)
	return t, nil
}

// compareRows renders one sim.CompareAll result set.
func compareRows(t *Table, m model.Config, rs []baselines.Result) {
	var tempRes baselines.Result
	for _, r := range rs {
		if r.System == "TEMP" {
			tempRes = r
		}
	}
	for _, r := range rs {
		status := "ok"
		speed := "-"
		if !r.Feasible {
			status = "OOM"
		} else if tempRes.Feasible && r.System != "TEMP" {
			speed = f2(r.StepTime / tempRes.StepTime)
		}
		t.AddRow(m.Name, r.System, r.Config.String(), status,
			f3(r.StepTime), f3(r.ComputeTime), f3(r.CommTime()),
			gb(r.Memory.Total()), speed)
	}
}

// Fig13Training regenerates Fig. 13: training latency breakdown and
// peak memory for the six baselines and TEMP across the Table II
// models, each at its best configuration.
func Fig13Training(quick bool) (*Table, error) {
	t := &Table{
		ID:    "fig13",
		Title: "Training performance: six baselines vs TEMP (best config each)",
		Headers: []string{"model", "system", "config", "status", "step(s)",
			"comp(s)", "comm(s)", "mem/die", "TEMP speedup"},
	}
	w := evalWafer()
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, m := range evalModels(quick) {
		rs, err := sim.CompareAll(m, w)
		if err != nil {
			return nil, err
		}
		compareRows(t, m, rs)
		var temp baselines.Result
		for _, r := range rs {
			if r.System == "TEMP" {
				temp = r
			}
		}
		for _, r := range rs {
			if r.System != "TEMP" && r.Feasible && temp.Feasible {
				sums[r.System] += r.StepTime / temp.StepTime
				counts[r.System]++
			}
		}
	}
	var avg float64
	var n int
	for _, s := range baselines.Six() {
		if counts[s.Name] > 0 {
			mean := sums[s.Name] / float64(counts[s.Name])
			t.AddNote("TEMP speedup over %s: %.2fx (feasible models only)", s.Name, mean)
			avg += mean
			n++
		}
	}
	if n > 0 {
		t.AddNote("average TEMP speedup %.2fx (paper: 1.7x average)", avg/float64(n))
	}
	return t, nil
}

// Fig14Power regenerates Fig. 14: power breakdown and power
// efficiency for the same comparison.
func Fig14Power(quick bool) (*Table, error) {
	t := &Table{
		ID:    "fig14",
		Title: "Power breakdown and power efficiency",
		Headers: []string{"model", "system", "power W", "comp%", "comm%", "dram%",
			"tok/s/W", "vs TEMP"},
	}
	w := evalWafer()
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, m := range evalModels(quick) {
		rs, err := sim.CompareAll(m, w)
		if err != nil {
			return nil, err
		}
		var temp baselines.Result
		for _, r := range rs {
			if r.System == "TEMP" {
				temp = r
			}
		}
		for _, r := range rs {
			if !r.Feasible {
				t.AddRow(m.Name, r.System, "OOM", "-", "-", "-", "-", "-")
				continue
			}
			total := r.EnergyCompute + r.EnergyComm + r.EnergyDRAM
			rel := "-"
			if r.System != "TEMP" && temp.Feasible {
				rel = f2(temp.PowerEfficiency / r.PowerEfficiency)
				sums[r.System] += temp.PowerEfficiency / r.PowerEfficiency
				counts[r.System]++
			}
			t.AddRow(m.Name, r.System, f1(r.Power),
				f1(r.EnergyCompute/total*100), f1(r.EnergyComm/total*100),
				f1(r.EnergyDRAM/total*100), f2(r.PowerEfficiency), rel)
		}
	}
	for _, s := range baselines.Six() {
		if counts[s.Name] > 0 {
			t.AddNote("TEMP power-efficiency gain over %s: %.2fx", s.Name, sums[s.Name]/float64(counts[s.Name]))
		}
	}
	return t, nil
}

// Fig15GPU regenerates Fig. 15: the matched-peak GPU cluster against
// the wafer under MeSP and TEMP.
func Fig15GPU(quick bool) (*Table, error) {
	t := &Table{
		ID:      "fig15",
		Title:   "GPU cluster vs WSC at matched FP16 peak (32 devices)",
		Headers: []string{"model", "system", "step(s)", "tput tok/s", "vs GPU"},
	}
	w := hw.ComparisonWafer32()
	c := hw.A100Cluster()
	var sGPUvMeSP, sTEMPvGPU float64
	var n int
	for _, m := range evalModels(quick) {
		gpu, err := baselines.BestCluster(m, c)
		if err != nil {
			return nil, err
		}
		waferMeSP, err := baselines.Best(baselines.MeSP(cost.GMap), m, w)
		if err != nil {
			return nil, err
		}
		waferTEMP, err := baselines.Best(baselines.TEMP(), m, w)
		if err != nil {
			return nil, err
		}
		rows := []struct {
			name string
			r    baselines.Result
		}{{"GPU+MeSP", gpu}, {"Wafer+MeSP", waferMeSP}, {"Wafer+TEMP", waferTEMP}}
		for _, row := range rows {
			rel := "-"
			if row.r.Feasible && gpu.Feasible {
				rel = f2(gpu.StepTime / row.r.StepTime)
			}
			status := f3(row.r.StepTime)
			if !row.r.Feasible {
				status = "OOM"
			}
			t.AddRow(m.Name, row.name, status, f1(row.r.ThroughputTokens), rel)
		}
		if gpu.Feasible && waferMeSP.Feasible && waferTEMP.Feasible {
			sGPUvMeSP += waferMeSP.StepTime / gpu.StepTime
			sTEMPvGPU += gpu.StepTime / waferTEMP.StepTime
			n++
		}
	}
	if n > 0 {
		t.AddNote("Wafer+TEMP speedup over GPU+MeSP: %.2fx (paper: 1.16x)", sTEMPvGPU/float64(n))
		t.AddNote("GPU+MeSP speedup over Wafer+MeSP: %.2fx (paper: ~1.09x)", sGPUvMeSP/float64(n))
	}
	return t, nil
}

// Fig16Ablation regenerates Fig. 16: Base (FSDP+SMap) → +TATP →
// +TATP+TCME throughput ladder.
func Fig16Ablation(quick bool) (*Table, error) {
	t := &Table{
		ID:      "fig16",
		Title:   "Ablation: Base, Base+TATP, Base+TATP+TCME",
		Headers: []string{"model", "base tok/s", "+TATP", "+TATP+TCME", "TATP gain", "TCME gain"},
	}
	w := evalWafer()
	var gTATP, gTCME float64
	var n int
	for _, m := range evalModels(quick) {
		rs, err := sim.Ablation(m, w)
		if err != nil {
			return nil, err
		}
		base, tatp, full := rs[0], rs[1], rs[2]
		t.AddRow(m.Name, f1(base.ThroughputTokens), f1(tatp.ThroughputTokens),
			f1(full.ThroughputTokens),
			f2(tatp.ThroughputTokens/base.ThroughputTokens),
			f2(full.ThroughputTokens/tatp.ThroughputTokens))
		gTATP += tatp.ThroughputTokens / base.ThroughputTokens
		gTCME += full.ThroughputTokens / tatp.ThroughputTokens
		n++
	}
	t.AddNote("mean +TATP gain %.2fx (paper 1.21x); mean +TCME gain %.2fx (paper 1.14x)",
		gTATP/float64(n), gTCME/float64(n))
	return t, nil
}

// Fig17Mixed regenerates Fig. 17: Llama2 7B throughput across
// (DP,TP,SP,TATP) configurations at short and long sequence lengths,
// all under the TCME engine.
func Fig17Mixed() (*Table, error) {
	t := &Table{
		ID:      "fig17",
		Title:   "Mixed parallelism on Llama2 7B (TCME engine)",
		Headers: []string{"seq", "config", "status", "tput tok/s", "norm"},
	}
	w := evalWafer()
	for _, scenario := range []struct {
		seq, batch int
	}{{2048, 128}, {16384, 32}} {
		m := model.Llama2_7B().WithSeq(scenario.seq, scenario.batch)
		cfgs := parallel.EnumerateConfigs(w.Dies(), true, 0)
		jobs := make([]engine.Job, len(cfgs))
		for i, cfg := range cfgs {
			jobs[i] = engine.Job{Model: m, Wafer: w, Config: cfg, Opts: cost.TEMPOptions()}
		}
		type res struct {
			cfg  parallel.Config
			b    cost.Breakdown
			feas bool
		}
		var all []res
		var bestTput, bestNoTATP float64
		var bestCfg, bestNoTATPCfg parallel.Config
		for i, r := range engine.Sweep(jobs) {
			if r.Err != nil {
				continue
			}
			b, cfg := r.Breakdown, cfgs[i]
			feas := !b.OOM()
			all = append(all, res{cfg, b, feas})
			if feas && b.ThroughputTokens > bestTput {
				bestTput, bestCfg = b.ThroughputTokens, cfg
			}
			if feas && cfg.TATP == 1 && b.ThroughputTokens > bestNoTATP {
				bestNoTATP, bestNoTATPCfg = b.ThroughputTokens, cfg
			}
		}
		for _, r := range all {
			status := "ok"
			norm := "-"
			if !r.feas {
				status = "OOM"
			} else if bestTput > 0 {
				norm = f3(r.b.ThroughputTokens / bestTput)
			}
			t.AddRow(fmt.Sprintf("%d", scenario.seq), r.cfg.String(), status,
				f1(r.b.ThroughputTokens), norm)
		}
		t.AddNote("S=%d best %s; best without TATP %s (%.2fx slower)",
			scenario.seq, bestCfg, bestNoTATPCfg, bestTput/math.Max(bestNoTATP, 1))
	}
	return t, nil
}

// Fig18Convergence regenerates Fig. 18: the optimal TATP degree
// across GPT-3 sizes and sequence lengths.
func Fig18Convergence(quick bool) (*Table, error) {
	t := &Table{
		ID:      "fig18",
		Title:   "Optimal TATP degree across model scale and sequence length",
		Headers: []string{"model", "seq", "best config", "tatp", "gain vs no-TATP"},
	}
	w := evalWafer()
	models := []model.Config{model.GPT3_6_7B(), model.GPT3_76B(), model.GPT3_175B()}
	if quick {
		models = models[:2]
	}
	for _, base := range models {
		for _, seq := range []int{2048, 16384} {
			batch := 128
			if seq > 8000 {
				batch = 32
			}
			m := base.WithSeq(seq, batch)
			cfgs := parallel.EnumerateConfigs(w.Dies(), true, 0)
			jobs := make([]engine.Job, len(cfgs))
			for i, cfg := range cfgs {
				jobs[i] = engine.Job{Model: m, Wafer: w, Config: cfg, Opts: cost.TEMPOptions()}
			}
			var bestTput, bestNoTATP float64
			var bestCfg parallel.Config
			for i, r := range engine.Sweep(jobs) {
				if r.Err != nil || r.Breakdown.OOM() {
					continue
				}
				b, cfg := r.Breakdown, cfgs[i]
				if b.ThroughputTokens > bestTput {
					bestTput, bestCfg = b.ThroughputTokens, cfg
				}
				if cfg.TATP == 1 && b.ThroughputTokens > bestNoTATP {
					bestNoTATP = b.ThroughputTokens
				}
			}
			gain := "-"
			if bestNoTATP > 0 {
				gain = f2(bestTput / bestNoTATP)
			}
			t.AddRow(base.Name, fmt.Sprintf("%d", seq), bestCfg.String(),
				fmt.Sprintf("%d", bestCfg.Normalize().TATP), gain)
		}
	}
	t.AddNote("paper: optimal TATP degree consistently 8 or 16, gains 2.06–2.29x")
	return t, nil
}

// Fig19MultiWafer regenerates Fig. 19: multi-wafer scaling of the
// large models with pipeline parallelism across wafers.
func Fig19MultiWafer(quick bool) (*Table, error) {
	t := &Table{
		ID:      "fig19",
		Title:   "Multi-wafer training of large models",
		Headers: []string{"model", "wafers", "system", "config", "step(s)", "bubble%", "vs TEMP"},
	}
	w := evalWafer()
	cases := []struct {
		m      model.Config
		wafers int
	}{
		{model.GPT3_175B(), 2},
		{model.Grok1_341B(), 4},
		{model.Llama3_405B(), 4},
		{model.GPT3_504B(), 6},
	}
	if quick {
		cases = cases[:2]
	}
	systems := []baselines.System{
		baselines.Megatron1(cost.SMap), baselines.MeSP(cost.GMap),
		baselines.FSDP(cost.GMap), baselines.TEMP(),
	}
	for _, tc := range cases {
		var temp baselines.Result
		results := make([]baselines.Result, 0, len(systems))
		for _, s := range systems {
			r, err := sim.MultiWafer(s, tc.m, w, tc.wafers)
			if err != nil {
				continue
			}
			results = append(results, r)
			if s.Name == "TEMP" {
				temp = r
			}
		}
		for _, r := range results {
			rel := "-"
			if r.System != "TEMP" && temp.Feasible {
				rel = f2(r.StepTime / temp.StepTime)
			}
			t.AddRow(tc.m.Name, fmt.Sprintf("%d", tc.wafers), r.System, r.Config.String(),
				f3(r.StepTime), f1(r.BubbleTime/r.StepTime*100), rel)
		}
	}
	t.AddNote("paper: TEMP outperforms baselines 1.2–1.6x and cuts pipeline bubbles via lower PP")
	return t, nil
}

// Fig20Fault regenerates Fig. 20(b)/(c): normalized throughput under
// link and core fault injection with TEMP's adaptive tolerance.
func Fig20Fault(quick bool) (*Table, error) {
	t := &Table{
		ID:      "fig20",
		Title:   "Fault tolerance: normalized throughput vs fault rate",
		Headers: []string{"fault", "rate", "norm tput"},
	}
	w := evalWafer()
	m := model.GPT3_6_7B()
	cfg := parallel.Config{DP: 4, TATP: 8}
	o := cost.TEMPOptions()
	trials := 8
	if quick {
		trials = 4
	}
	linkRates := []float64{0, 0.1, 0.2, 0.3, 0.35, 0.4, 0.6, 0.8}
	var cliffAt float64 = -1
	prev := 1.0
	for _, r := range linkRates {
		v, err := fault.NormalizedThroughput(m, w, cfg, o, fault.Injection{LinkRate: r}, trials, 42)
		if err != nil {
			return nil, err
		}
		t.AddRow("link", f2(r), f3(v))
		if cliffAt < 0 && prev-v > 0.4 {
			cliffAt = r
		}
		prev = v
	}
	coreRates := []float64{0, 0.05, 0.10, 0.15, 0.20, 0.25}
	var at25 float64
	for _, r := range coreRates {
		v, err := fault.NormalizedThroughput(m, w, cfg, o, fault.Injection{CoreRate: r, CoresPerDie: 64}, trials, 43)
		if err != nil {
			return nil, err
		}
		t.AddRow("core", f2(r), f3(v))
		if r == 0.25 {
			at25 = v
		}
	}
	if cliffAt >= 0 {
		t.AddNote("link-fault throughput cliff near %.0f%% (paper: 35%%)", cliffAt*100)
	}
	t.AddNote("core faults degrade gracefully: %.0f%% throughput at 25%% core failures (paper: ~80%%)", at25*100)
	return t, nil
}
