package temp

import (
	"testing"

	"temp/internal/experiments"
)

// The benchmark suite regenerates every paper artefact listed in
// DESIGN.md's per-experiment index — one benchmark per table/figure.
// The regenerated rows are printed once per benchmark so that
// `go test -bench=. -benchmem` doubles as the evaluation harness;
// b.ReportMetric carries each artefact's headline number.

func runExperiment(b *testing.B, id string, metric func(*experiments.Table) (float64, string)) {
	b.Helper()
	var tab *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.ByID(id, true)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if tab != nil {
		b.Log("\n" + tab.String())
		if metric != nil {
			if v, name := metric(tab); name != "" {
				b.ReportMetric(v, name)
			}
		}
	}
}

func BenchmarkFig04MotivationBreakdown(b *testing.B) {
	runExperiment(b, "fig4b", func(t *experiments.Table) (float64, string) {
		return float64(len(t.Rows)), "models"
	})
}

func BenchmarkFig04MemoryOverhead(b *testing.B) {
	runExperiment(b, "fig4c", func(t *experiments.Table) (float64, string) {
		return float64(len(t.Rows)), "rows"
	})
}

func BenchmarkFig05Challenges(b *testing.B) {
	runExperiment(b, "fig5", nil)
}

func BenchmarkFig07RingUtilization(b *testing.B) {
	runExperiment(b, "fig7", func(t *experiments.Table) (float64, string) {
		return float64(len(t.Rows)), "configs"
	})
}

func BenchmarkFig09SweetSpot(b *testing.B) {
	runExperiment(b, "fig9", func(t *experiments.Table) (float64, string) {
		return float64(len(t.Rows)), "degrees"
	})
}

func BenchmarkFig13TrainingPerformance(b *testing.B) {
	runExperiment(b, "fig13", func(t *experiments.Table) (float64, string) {
		return float64(len(t.Rows)), "system-model-pairs"
	})
}

func BenchmarkFig14PowerEfficiency(b *testing.B) {
	runExperiment(b, "fig14", nil)
}

func BenchmarkFig15GPUComparison(b *testing.B) {
	runExperiment(b, "fig15", nil)
}

func BenchmarkFig16Ablation(b *testing.B) {
	runExperiment(b, "fig16", nil)
}

func BenchmarkFig17MixedParallelism(b *testing.B) {
	runExperiment(b, "fig17", func(t *experiments.Table) (float64, string) {
		return float64(len(t.Rows)), "configs"
	})
}

func BenchmarkFig18TATPConvergence(b *testing.B) {
	runExperiment(b, "fig18", nil)
}

func BenchmarkFig19MultiWafer(b *testing.B) {
	runExperiment(b, "fig19", nil)
}

func BenchmarkFig20FaultTolerance(b *testing.B) {
	runExperiment(b, "fig20", nil)
}

func BenchmarkFig21CostModelAccuracy(b *testing.B) {
	runExperiment(b, "fig21", nil)
}

func BenchmarkSearchTimeDLSvsILP(b *testing.B) {
	runExperiment(b, "tabH", nil)
}
