// Quickstart: evaluate one LLM training step on the wafer simulator,
// then let TEMP pick its best hybrid configuration.
package main

import (
	"fmt"
	"log"

	"temp"
)

func main() {
	w := temp.EvaluationWafer() // 4×8 dies, Table I parameters
	m := temp.GPT3_6_7B()

	// Price a hand-written hybrid configuration: 4-way data
	// parallelism × 8-way TATP tensor streaming.
	cfg := temp.ParallelConfig{DP: 4, TATP: 8}
	b, err := temp.Evaluate(m, w, cfg, temp.TEMPOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("manual config %s:\n", cfg)
	fmt.Printf("  step latency     %.3fs\n", b.StepTime)
	fmt.Printf("  per-die memory   %.1f GB (capacity %.1f GB, OOM=%v)\n",
		b.Memory.Total()/1e9, b.Memory.Capacity/1e9, b.OOM())
	fmt.Printf("  throughput       %.0f tokens/s\n", b.ThroughputTokens)
	fmt.Printf("  power efficiency %.2f tokens/s/W\n\n", b.PowerEfficiency)

	// Let the framework search its configuration space.
	best, err := temp.BestTEMP(m, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TEMP best config %s:\n", best.Config)
	fmt.Printf("  step latency     %.3fs\n", best.StepTime)
	fmt.Printf("  throughput       %.0f tokens/s (%.2fx over the manual config)\n",
		best.ThroughputTokens, best.ThroughputTokens/b.ThroughputTokens)
}
