package solver

import (
	"testing"

	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
)

// BenchmarkDLS tracks the GA solve the paper's search-time comparison
// hammers: dual-level search over the full power-of-two configuration
// space with the analytic operator model.
func BenchmarkDLS(b *testing.B) {
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	g := model.BlockGraph(m)
	space := parallel.EnumerateConfigs(w.Dies(), true, 0)
	cm := &Analytic{W: w, M: m}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DLS(g, space, cm, DLSOptions{Seed: 7, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
