// Package baselines encodes the comparison systems of §VIII-A as
// declarative descriptors: three partitioning schemes (Megatron-1,
// Megatron-3/MeSP, FSDP) crossed with two mapping engines (SMap,
// GMap), plus TEMP itself. Each system knows which hybrid parallel
// configurations it may legally choose from, so "the best
// configuration of each baseline" — the footing every figure compares
// on — is a brute-force sweep of that space through the shared cost
// model.
package baselines

import (
	"fmt"
	"math"
	"strings"

	"temp/internal/cost"
	"temp/internal/engine"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
)

// System is one evaluated training system.
type System struct {
	Name string
	// Scheme identifies the partitioning scheme the system derives
	// from ("megatron1", "mesp", "fsdp" or "temp"); the scenario layer
	// reconstructs systems from it.
	Scheme string
	// Opts carries the engine and execution conventions.
	Opts cost.Options
	// Backend is the canonical cost-backend key the system's sweeps
	// are priced with ("" = the engine's default backend, normally
	// analytic). Scenario cost stages set it; see cost.BackendKey.
	Backend string
	// Envelope caps the configuration space Best sweeps; the zero
	// envelope is unbounded.
	Envelope Envelope
	// Configs enumerates the candidate hybrid configurations for a
	// die budget, before the envelope is applied.
	Configs func(dies int) []parallel.Config
}

// Space returns the system's candidate configurations for a die
// budget with the envelope applied — the space Best actually sweeps.
func (s System) Space(dies int) []parallel.Config {
	return s.Envelope.Filter(s.Configs(dies))
}

// Envelope restricts a system's hybrid-configuration space: each
// non-zero field caps the degree of one parallel strategy. Scenario
// specs use it to carve sub-spaces out of a scheme's full enumeration
// (e.g. "TEMP but TATP at most 8") without defining new schemes.
type Envelope struct {
	MaxDP, MaxTP, MaxSP, MaxCP, MaxTATP int
}

// Zero reports whether the envelope imposes no restriction.
func (e Envelope) Zero() bool { return e == Envelope{} }

// Allows reports whether a configuration fits inside the envelope.
func (e Envelope) Allows(c parallel.Config) bool {
	c = c.Normalize()
	if e.MaxDP > 0 && c.DP > e.MaxDP {
		return false
	}
	if e.MaxTP > 0 && c.TP > e.MaxTP {
		return false
	}
	if e.MaxSP > 0 && c.SP > e.MaxSP {
		return false
	}
	if e.MaxCP > 0 && c.CP > e.MaxCP {
		return false
	}
	if e.MaxTATP > 0 && c.TATP > e.MaxTATP {
		return false
	}
	return true
}

// Filter returns the configurations the envelope allows. The zero
// envelope returns the input slice unchanged, so envelope-free systems
// keep their exact historical sweep.
func (e Envelope) Filter(cfgs []parallel.Config) []parallel.Config {
	if e.Zero() {
		return cfgs
	}
	out := make([]parallel.Config, 0, len(cfgs))
	for _, c := range cfgs {
		if e.Allows(c) {
			out = append(out, c)
		}
	}
	return out
}

// megatron1Configs: DP × TP only (the paper's Megatron-1 hierarchy
// minus intra-wafer PP, which §II-A excludes on WSCs).
func megatron1Configs(dies int) []parallel.Config {
	var out []parallel.Config
	for tp := 1; tp <= dies; tp *= 2 {
		if dies%tp != 0 {
			continue
		}
		dp := dies / tp
		if dp&(dp-1) != 0 {
			continue
		}
		out = append(out, parallel.Config{DP: dp, TP: tp})
	}
	return out
}

// mespConfigs: DP × TP × SP with Megatron-3 fused sequence
// parallelism, plus context parallelism for long sequences.
func mespConfigs(dies int) []parallel.Config {
	var out []parallel.Config
	for tp := 1; tp <= dies; tp *= 2 {
		for sp := 1; tp*sp <= dies; sp *= 2 {
			for cp := 1; tp*sp*cp <= dies; cp *= 2 {
				rest := dies / (tp * sp * cp)
				if tp*sp*cp*rest != dies || rest&(rest-1) != 0 {
					continue
				}
				out = append(out, parallel.Config{
					DP: rest, TP: tp, SP: sp, CP: cp, MegatronSP: true,
				})
			}
		}
	}
	return out
}

// fsdpConfigs: fully sharded data parallelism, optionally combined
// with TP for models whose single-layer working set overflows.
func fsdpConfigs(dies int) []parallel.Config {
	var out []parallel.Config
	for tp := 1; tp <= 8 && tp <= dies; tp *= 2 {
		dp := dies / tp
		if dp*tp != dies || dp&(dp-1) != 0 || dp == 1 {
			continue
		}
		out = append(out, parallel.Config{DP: dp, TP: tp, FSDP: true})
	}
	return out
}

// tempConfigs: the full TEMP space — DP, TP, SP, CP and TATP.
func tempConfigs(dies int) []parallel.Config {
	var out []parallel.Config
	for _, c := range parallel.EnumerateConfigs(dies, true, 0) {
		out = append(out, c)
		if c.SP > 1 {
			sc := c
			sc.MegatronSP = false
			out = append(out, sc)
		}
	}
	return out
}

// Megatron1 returns the Megatron-1 system under an engine. Its
// conventions are period-accurate: no flash attention, no selective
// recomputation (full activation stash) and no distributed optimizer
// — which is what produces the replication and OOM behaviour of
// Figs. 4 and 13.
func Megatron1(e cost.Engine) System {
	return System{
		Name:   "Mega+" + e.String(),
		Scheme: "megatron1",
		Opts: cost.Options{
			Engine:           e,
			Recompute:        cost.RecomputeNone,
			Microbatch:       1,
			NoFlashAttention: true,
		},
		Configs: megatron1Configs,
	}
}

// MeSP returns the Megatron-3 (+SP/CP) system under an engine.
func MeSP(e cost.Engine) System {
	return System{
		Name:    "MeSP+" + e.String(),
		Scheme:  "mesp",
		Opts:    cost.Options{Engine: e, Recompute: cost.RecomputeSelective, DistributedOptimizer: true},
		Configs: mespConfigs,
	}
}

// FSDP returns the fully-sharded system under an engine.
func FSDP(e cost.Engine) System {
	return System{
		Name:    "FSDP+" + e.String(),
		Scheme:  "fsdp",
		Opts:    cost.Options{Engine: e, Recompute: cost.RecomputeFull, DistributedOptimizer: true},
		Configs: fsdpConfigs,
	}
}

// TEMP returns the full TEMP system (TCME engine, TATP enabled).
func TEMP() System {
	return System{
		Name:    "TEMP",
		Scheme:  "temp",
		Opts:    cost.TEMPOptions(),
		Configs: tempConfigs,
	}
}

// FromScheme builds a system from its declarative description: a
// partitioning scheme name, a mapping engine, and an optional
// configuration-space envelope. It is the constructor behind
// spec.SystemSpec. Scheme names are matched case-insensitively;
// Megatron-1 accepts "megatron1"/"mega", Megatron-3 accepts
// "mesp"/"megatron3". With the zero envelope and a scheme's canonical
// engine the returned system sweeps exactly the space the named
// constructor (Megatron1, MeSP, FSDP, TEMP) does.
func FromScheme(scheme string, e cost.Engine, env Envelope) (System, error) {
	var s System
	switch strings.ToLower(strings.TrimSpace(scheme)) {
	case "megatron1", "mega", "megatron-1":
		s = Megatron1(e)
	case "mesp", "megatron3", "megatron-3":
		s = MeSP(e)
	case "fsdp":
		s = FSDP(e)
	case "temp", "tatp":
		s = TEMP()
		if e != s.Opts.Engine {
			// TEMP under a baseline mapper: the partition scheme keeps
			// TATP, only the mapping engine degrades (as in Fig. 7's
			// scattered-placement study).
			s.Opts.Engine = e
			s.Name = "TEMP+" + e.String()
		}
	default:
		return System{}, fmt.Errorf("baselines: unknown scheme %q (want megatron1|mesp|fsdp|temp)", scheme)
	}
	s.Envelope = env
	return s, nil
}

// Six returns the paper's six baselines in A–F order:
// Mega+SMap, Mega+GMap, MeSP+SMap, MeSP+GMap, FSDP+SMap, FSDP+GMap.
func Six() []System {
	return []System{
		Megatron1(cost.SMap), Megatron1(cost.GMap),
		MeSP(cost.SMap), MeSP(cost.GMap),
		FSDP(cost.SMap), FSDP(cost.GMap),
	}
}

// Result pairs a breakdown with the configuration that produced it.
type Result struct {
	System string
	Config parallel.Config
	cost.Breakdown
	// Feasible is false when every candidate configuration OOMs; the
	// breakdown then describes the lowest-memory attempt.
	Feasible bool
}

// Best sweeps the system's configuration space on the wafer through
// the concurrent evaluation engine (memoized and fanned out across
// workers) and returns the fastest feasible configuration; when
// nothing fits it returns the lowest-memory OOM attempt with
// Feasible=false (the "OOM" bars of Fig. 13).
func Best(s System, m model.Config, w hw.Wafer) (Result, error) {
	dies := w.Dies()
	cfgs := s.Space(dies)
	if len(cfgs) == 0 {
		return Result{}, fmt.Errorf("baselines: %s has no configurations for %d dies", s.Name, dies)
	}
	jobs := make([]engine.Job, len(cfgs))
	for i, cfg := range cfgs {
		jobs[i] = engine.Job{Model: m, Wafer: w, Config: cfg, Opts: s.Opts, Backend: s.Backend}
	}
	results := engine.Sweep(jobs)
	best := Result{System: s.Name}
	bestTime := math.Inf(1)
	var lowMem Result
	lowMemBytes := math.Inf(1)
	evaluated := 0
	for i, r := range results {
		if r.Err != nil {
			continue // unplaceable on this grid
		}
		b, cfg := r.Breakdown, cfgs[i]
		evaluated++
		if !b.OOM() && b.StepTime < bestTime {
			bestTime = b.StepTime
			best = Result{System: s.Name, Config: cfg, Breakdown: b, Feasible: true}
		}
		if b.Memory.Total() < lowMemBytes {
			lowMemBytes = b.Memory.Total()
			lowMem = Result{System: s.Name, Config: cfg, Breakdown: b, Feasible: false}
		}
	}
	if evaluated == 0 {
		return Result{}, fmt.Errorf("baselines: %s has no placeable configurations on %s", s.Name, w.Name)
	}
	if best.Feasible {
		return best, nil
	}
	return lowMem, nil
}

// BestCluster evaluates the MeSP strategy space on a GPU cluster
// (Fig. 15's GPU+MeSP reference). Like Best, a model that fits in no
// configuration returns the lowest-memory attempt with
// Feasible=false — 175B-class models genuinely exceed 32×80 GB.
func BestCluster(m model.Config, c hw.Cluster) (Result, error) {
	opts := cost.Options{Engine: cost.GMap, Recompute: cost.RecomputeSelective, DistributedOptimizer: true}
	var cfgs []parallel.Config
	for _, cfg := range mespConfigs(c.GPUs()) {
		// TP cannot exceed a node on switched clusters.
		if cfg.TP > c.GPUsPerNode {
			continue
		}
		cfgs = append(cfgs, cfg)
	}
	// Cluster evaluations bypass the wafer cache (different cost
	// entry point) but still fan out across the engine's workers.
	type clusterRes struct {
		b   cost.Breakdown
		err error
	}
	results := make([]clusterRes, len(cfgs))
	engine.Map(len(cfgs), func(i int) {
		engine.Do(func() {
			b, err := cost.EvaluateCluster(m, c, cfgs[i], opts)
			results[i] = clusterRes{b, err}
		})
	})
	best := Result{System: "GPU+MeSP"}
	bestTime := math.Inf(1)
	var lowMem Result
	lowMemBytes := math.Inf(1)
	evaluated := 0
	for i, r := range results {
		if r.err != nil {
			continue
		}
		b, cfg := r.b, cfgs[i]
		evaluated++
		if !b.OOM() && b.StepTime < bestTime {
			bestTime = b.StepTime
			best = Result{System: "GPU+MeSP", Config: cfg, Breakdown: b, Feasible: true}
		}
		if b.Memory.Total() < lowMemBytes {
			lowMemBytes = b.Memory.Total()
			lowMem = Result{System: "GPU+MeSP", Config: cfg, Breakdown: b, Feasible: false}
		}
	}
	if evaluated == 0 {
		return Result{}, fmt.Errorf("baselines: no placeable GPU configuration for %s", m.Name)
	}
	if best.Feasible {
		return best, nil
	}
	return lowMem, nil
}
