module temp

go 1.22
