package collective

import (
	"sync"
	"sync/atomic"

	"temp/internal/mesh"
)

// The memoized collective-lowering cache. Lowering a collective is
// route construction: every ring step, chain hop and multicast tree
// computes paths on the mesh, and the evaluation hot path lowers the
// same (topology, ordered die group, collective kind) combination for
// every candidate configuration that places a group on the same dies.
// The route structures are byte-invariant — only the per-flow byte
// count changes with the query — so each combination compiles to a
// mesh.PhaseTemplate once and is rescaled per query.
//
// Only frozen (interned) topologies are cached: a mutable topology's
// routes can change under fault injection, and its pointer identity
// would pin stale templates. Mutable topologies take the uncached
// build path, which is the historical behaviour.

// Lowering kinds, one key byte each.
const (
	kindAllReduce     = 'A'
	kindAllGather     = 'G'
	kindReduceScatter = 'R'
	kindBroadcast     = 'B'
	kindP2P           = 'P'
	kindChain         = 'C'
	kindAllToAll      = 'X'
)

// lowerMap is one topology's compiled-lowering store. It lives ON the
// topology (via Topology.Derived), not in a package-global map keyed
// by topology pointer: caches share the topology's lifetime, so a
// faulted topology that falls out of the interner takes its templates
// with it instead of pinning them process-wide.
type lowerMap struct {
	sync.RWMutex
	m map[string]*mesh.PhaseTemplate
}

// lowerMapKey is the Derived key under which a topology stores its
// lowering cache.
type lowerMapKey struct{}

func lowerMapOf(t *mesh.Topology) *lowerMap {
	return t.Derived(lowerMapKey{}, func() any {
		return &lowerMap{m: map[string]*mesh.PhaseTemplate{}}
	}).(*lowerMap)
}

var lowerHits, lowerMisses, lowerTemplates atomic.Int64

// LoweringStats reports the lowering cache's effectiveness: compiled
// template count and query hit/miss counters.
type LoweringStats struct {
	Templates    int
	Hits, Misses int64
}

// CacheStats snapshots the lowering cache counters. Templates counts
// compiles over the process lifetime (a compiled template may since
// have been released with its topology).
func CacheStats() LoweringStats {
	return LoweringStats{
		Templates: int(lowerTemplates.Load()),
		Hits:      lowerHits.Load(),
		Misses:    lowerMisses.Load(),
	}
}

// keyPool recycles key-building buffers; cache hits therefore build
// their lookup key without allocating (map reads through string(b) do
// not materialize the string).
var keyPool = sync.Pool{New: func() any { b := make([]byte, 0, 160); return &b }}

// lower returns the lowering for (t, kind, tag, dies) with every flow
// carrying perFlowBytes. build constructs the phase structure for an
// arbitrary uniform byte value; on frozen topologies it runs once per
// key and the compiled template is rescaled per query.
func lower(t *mesh.Topology, kind byte, tag string, dies []mesh.DieID,
	perFlowBytes float64, build func(bytes float64) []mesh.Phase) []mesh.Phase {
	if !t.Frozen() {
		return build(perFlowBytes)
	}
	lm := lowerMapOf(t)
	bp := keyPool.Get().(*[]byte)
	b := (*bp)[:0]
	b = append(b, kind)
	b = append(b, tag...)
	b = append(b, 0)
	for _, d := range dies {
		v := uint32(d)
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	lm.RLock()
	tmpl := lm.m[string(b)]
	lm.RUnlock()
	if tmpl == nil {
		lowerMisses.Add(1)
		tmpl = mesh.NewPhaseTemplate(build(1))
		lm.Lock()
		if prior, ok := lm.m[string(b)]; ok {
			// Concurrent build of the same key: keep the first winner so
			// every caller shares one template.
			tmpl = prior
		} else {
			lm.m[string(b)] = tmpl
			lowerTemplates.Add(1)
		}
		lm.Unlock()
	} else {
		lowerHits.Add(1)
	}
	*bp = b
	keyPool.Put(bp)
	return tmpl.Materialize(perFlowBytes)
}
