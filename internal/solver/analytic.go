// Package solver implements the Dual-Level Wafer Solver (§VII): a
// wafer-customized per-operator cost model, the dual-level search
// algorithm (residual-cut graph partitioning + recursive chain
// dynamic programming + genetic refinement, Fig. 12(b)), and an
// exhaustive joint-search baseline standing in for the ILP solvers
// the paper compares search time against (§VIII-H).
package solver

import (
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
	"temp/internal/tensor"
	"temp/internal/unit"
)

// CostModel prices operators under candidate strategies. Both the
// fast analytic model and the DNN surrogate satisfy it.
//
// Implementations must be safe for concurrent use: DLS prices each
// GA generation's population across DLSOptions.Workers goroutines
// (GOMAXPROCS by default), so Intra/Inter/MemoryOK may be called
// from several goroutines at once. Stateless or read-only models
// (like Analytic) qualify as-is; a stateful model must either
// synchronize internally or be run with Workers: 1.
type CostModel interface {
	// Intra returns T_intra(op) of Eq. (2): compute overlapped with
	// streaming plus exposed collectives, under the strategy.
	Intra(op model.Op, cfg parallel.Config) float64
	// Inter returns T_inter(op1, op2) of Eq. (3): the resharding
	// P2P cost between consecutive operators under their strategies.
	Inter(prev, next model.Op, pc, nc parallel.Config) float64
	// MemoryOK reports whether the strategy fits per-die memory for
	// the whole model (a global, non-chain constraint the genetic
	// level enforces).
	MemoryOK(cfg parallel.Config) bool
}

// Analytic is the closed-form wafer cost model of §VII-A: ring and
// stream formulas over the Table I link parameters, matching the
// first-order behaviour of the full mesh simulation at a tiny
// fraction of its cost.
type Analytic struct {
	W hw.Wafer
	M model.Config
	// Microbatch sequences per DP rank (0 = default 4).
	Microbatch int
	// MemBudget per die; 0 means the wafer die's capacity.
	MemBudget float64
}

func (a *Analytic) mb() float64 {
	if a.Microbatch > 0 {
		return float64(a.Microbatch)
	}
	return 4
}

// gemmHalfEff mirrors the cost package's tile-efficiency knee.
const gemmHalfEff = 1e9

// roundSync mirrors the cost package's per-round stream overhead.
const roundSync = 2 * unit.Microsecond

// Intra implements CostModel.
func (a *Analytic) Intra(op model.Op, cfg parallel.Config) float64 {
	cfg = cfg.Normalize()
	die := a.W.Die
	frac := a.mb() / float64(a.M.Batch)
	gemmShard := float64(cfg.TP * cfg.SP * cfg.CP * cfg.TATP)

	var comp float64
	if op.Kind.IsGEMM() {
		shard := op.FLOPs * frac / gemmShard
		per := shard
		if cfg.TATP > 1 && op.HasWeight() {
			per = shard / float64(cfg.TATP)
		}
		eff := per / (per + gemmHalfEff)
		if eff < 0.05 {
			eff = 0.05
		}
		comp = shard / (die.PeakFLOPS * eff)
	} else {
		vecShard := float64(cfg.SP * cfg.CP * cfg.TATP)
		if op.TPSharded || cfg.MegatronSP {
			vecShard *= float64(cfg.TP)
		}
		shard := op.FLOPs * frac / vecShard
		comp = shard / die.VectorFLOPS
		if !op.FlashFused {
			bytes := (op.Input.Bytes() + op.Output.Bytes()) * frac / vecShard
			comp = unit.MaxF(comp, bytes/die.MemBandwidth())
		}
	}

	// Streaming (TATP) overlaps with compute; collectives expose.
	var stream float64
	if cfg.TATP > 1 && op.HasWeight() {
		wGroup := op.Weight.Bytes() / float64(cfg.TP)
		iGroup := op.Input.Bytes() * frac / float64(cfg.SP*cfg.CP)
		streamed := unit.MinF(wGroup, iGroup)
		sub := streamed / float64(cfg.TATP)
		stream = streamed/a.W.Link.EffectiveBandwidth(sub) + float64(cfg.TATP)*roundSync
	}

	var coll float64
	if cfg.TP > 1 && op.HasWeight() {
		// Half the weighted GEMMs end a TP block with a partial-sum
		// reduction; amortize one AR across two weighted ops.
		arBytes := a.mb() * float64(a.M.Seq) / float64(cfg.SP*cfg.CP*cfg.TATP) *
			float64(a.M.Hidden) * unit.FP16.Size()
		n := float64(cfg.TP)
		chunk := arBytes / n
		coll = 0.5 * (2 * (n - 1) * chunk / a.W.Link.EffectiveBandwidth(chunk))
	}
	return unit.MaxF(comp, stream) + coll
}

// actPartition derives the activation layout a configuration induces.
func actPartition(cfg parallel.Config) tensor.Partition {
	cfg = cfg.Normalize()
	p := tensor.SplitBy(map[tensor.Dim]int{
		tensor.B: cfg.DP,
		tensor.M: cfg.SP * cfg.CP * cfg.TATP,
	})
	if cfg.MegatronSP {
		p = p.Compose(tensor.SplitBy(map[tensor.Dim]int{tensor.M: cfg.TP}))
	} else {
		p = p.WithReplicas(cfg.TP)
	}
	return p
}

// Inter implements CostModel: resharding bytes over one mesh link at
// effective bandwidth (consecutive operators live on the same dies,
// so a layout change is a neighbor exchange).
func (a *Analytic) Inter(prev, next model.Op, pc, nc parallel.Config) float64 {
	bytes := tensor.ReshardBytes(prev.Output, actPartition(pc), actPartition(nc))
	bytes *= a.mb() / float64(a.M.Batch)
	if bytes <= 0 {
		return 0
	}
	return bytes / a.W.Link.EffectiveBandwidth(bytes)
}

// MemoryOK implements CostModel with the same footprint conventions
// as the full model: weights+grads+optimizer+selective activations.
func (a *Analytic) MemoryOK(cfg parallel.Config) bool {
	cfg = cfg.Normalize()
	budget := a.MemBudget
	if budget <= 0 {
		budget = a.W.Die.MemCapacity()
	}
	p := float64(a.M.Params())
	weights := p * 2 / float64(cfg.WeightShardWays())
	grads := weights
	optim := p * 12 / float64(cfg.Degree())
	sLocal := float64(a.M.Seq) / float64(cfg.SP*cfg.CP*cfg.TATP)
	if cfg.MegatronSP {
		sLocal /= float64(cfg.TP)
	}
	acts := 34 * a.mb() * sLocal * float64(a.M.Hidden) * float64(a.M.Layers)
	return weights+grads+optim+acts <= budget
}

var _ CostModel = (*Analytic)(nil)
