// Package model provides the LLM workload descriptions used across
// the evaluation: the parameter configurations of Table II (plus the
// larger multi-wafer models of §VIII-E and the motivation models of
// Fig. 4), and the per-layer transformer operator graph of Fig. 12
// with analytic FLOP and byte counts. These shapes — not data values
// — are what the wafer cost model consumes.
package model

import (
	"fmt"

	"temp/internal/tensor"
	"temp/internal/unit"
)

// Config describes one transformer language model (Table II).
type Config struct {
	Name string
	// Heads is the attention head count.
	Heads int
	// Batch is the global training batch size (sequences).
	Batch int
	// Hidden is the model dimension.
	Hidden int
	// Layers is the transformer block count.
	Layers int
	// Seq is the training sequence length.
	Seq int
	// FFNMult is the feed-forward expansion (intermediate =
	// FFNMult × Hidden); 4 for GPT-style models.
	FFNMult int
	// Vocab is the vocabulary size (embedding/unembedding params).
	Vocab int
}

// Intermediate returns the FFN intermediate dimension.
func (c Config) Intermediate() int { return c.FFNMult * c.Hidden }

// HeadDim returns the per-head dimension.
func (c Config) HeadDim() int { return c.Hidden / c.Heads }

// Tokens returns tokens per global batch.
func (c Config) Tokens() int64 { return int64(c.Batch) * int64(c.Seq) }

// Params returns the total parameter count: 12·H²-ish per layer
// (QKV 3H², attention projection H², FC1 and FC2 each FFNMult·H²)
// plus layer norms and the embedding table.
func (c Config) Params() int64 {
	h := int64(c.Hidden)
	perLayer := 4*h*h + 2*int64(c.FFNMult)*h*h + 4*h
	return int64(c.Layers)*perLayer + int64(c.Vocab)*h
}

// LayerParams returns parameters of one transformer block.
func (c Config) LayerParams() int64 {
	h := int64(c.Hidden)
	return 4*h*h + 2*int64(c.FFNMult)*h*h + 4*h
}

// LayerFLOPs returns the forward FLOPs of one transformer block for
// the configured batch: GEMMs at 2·elems plus the attention
// score/context products.
func (c Config) LayerFLOPs() float64 {
	b, m, h := float64(c.Batch), float64(c.Seq), float64(c.Hidden)
	f := float64(c.Intermediate())
	gemms := 2 * b * m * (3*h*h + h*h + h*f + f*h) // QKV, proj, FC1, FC2
	attn := 2 * b * m * m * h * 2                  // Q·Kᵀ and Score·V
	return gemms + attn
}

// TrainFLOPs returns FLOPs for one full training step of the whole
// model using the standard 3× forward rule (forward + 2× backward).
func (c Config) TrainFLOPs() float64 {
	return 3 * float64(c.Layers) * c.LayerFLOPs()
}

// ActivationBytesPerLayer returns the activation memory one
// transformer block must retain for the backward pass, per the
// selective-recomputation-free mixed-precision estimate of
// Korthikanti et al.: s·b·h·(34 + 5·a·s/h) bytes.
func (c Config) ActivationBytesPerLayer() float64 {
	s, b, h, a := float64(c.Seq), float64(c.Batch), float64(c.Hidden), float64(c.Heads)
	return s * b * h * (34 + 5*a*s/h)
}

// Table II models.

// GPT3_6_7B returns GPT-3 6.7B (32 heads, batch 128, hidden 4096,
// 32 layers, seq 2048).
func GPT3_6_7B() Config {
	return Config{Name: "GPT-3 6.7B", Heads: 32, Batch: 128, Hidden: 4096, Layers: 32, Seq: 2048, FFNMult: 4, Vocab: 50257}
}

// Llama2_7B returns Llama2 7B (32 heads, batch 128, hidden 4096,
// 32 layers, seq 4096).
func Llama2_7B() Config {
	return Config{Name: "Llama2 7B", Heads: 32, Batch: 128, Hidden: 4096, Layers: 32, Seq: 4096, FFNMult: 4, Vocab: 32000}
}

// Llama3_70B returns Llama3 70B (64 heads, batch 128, hidden 8192,
// 80 layers, seq 4096).
func Llama3_70B() Config {
	return Config{Name: "Llama3 70B", Heads: 64, Batch: 128, Hidden: 8192, Layers: 80, Seq: 4096, FFNMult: 4, Vocab: 128256}
}

// GPT3_76B returns GPT-3 76B (80 heads, batch 128, hidden 10240,
// 60 layers, seq 2048).
func GPT3_76B() Config {
	return Config{Name: "GPT-3 76B", Heads: 80, Batch: 128, Hidden: 10240, Layers: 60, Seq: 2048, FFNMult: 4, Vocab: 50257}
}

// GPT3_175B returns GPT-3 175B (96 heads, batch 128, hidden 12288,
// 96 layers, seq 2048).
func GPT3_175B() Config {
	return Config{Name: "GPT-3 175B", Heads: 96, Batch: 128, Hidden: 12288, Layers: 96, Seq: 2048, FFNMult: 4, Vocab: 50257}
}

// OPT_175B returns OPT 175B (96 heads, batch 128, hidden 12288,
// 96 layers, seq 4096).
func OPT_175B() Config {
	return Config{Name: "OPT 175B", Heads: 96, Batch: 128, Hidden: 12288, Layers: 96, Seq: 4096, FFNMult: 4, Vocab: 50272}
}

// Multi-wafer models (§VIII-E).

// Grok1_341B returns the Grok-1 341B dense-equivalent configuration.
func Grok1_341B() Config {
	return Config{Name: "Grok-1 341B", Heads: 96, Batch: 128, Hidden: 15360, Layers: 120, Seq: 4096, FFNMult: 4, Vocab: 131072}
}

// Llama3_405B returns Llama3 405B.
func Llama3_405B() Config {
	return Config{Name: "Llama3 405B", Heads: 128, Batch: 128, Hidden: 16384, Layers: 126, Seq: 4096, FFNMult: 4, Vocab: 128256}
}

// GPT3_504B returns the 504B GPT-3 variant of Fig. 19.
func GPT3_504B() Config {
	return Config{Name: "GPT-3 504B", Heads: 128, Batch: 128, Hidden: 18432, Layers: 124, Seq: 4096, FFNMult: 4, Vocab: 50257}
}

// Motivation-figure models (Fig. 4).

// DeepSeek7B returns DeepSeek 7B.
func DeepSeek7B() Config {
	return Config{Name: "DeepSeek 7B", Heads: 32, Batch: 128, Hidden: 4096, Layers: 30, Seq: 4096, FFNMult: 4, Vocab: 102400}
}

// DeepSeek67B returns DeepSeek 67B.
func DeepSeek67B() Config {
	return Config{Name: "DeepSeek 67B", Heads: 64, Batch: 128, Hidden: 8192, Layers: 95, Seq: 4096, FFNMult: 4, Vocab: 102400}
}

// DeepSeekV2_236B returns DeepSeek-V2 236B (dense-equivalent shape).
func DeepSeekV2_236B() Config {
	return Config{Name: "DeepSeek-V2 236B", Heads: 128, Batch: 128, Hidden: 12288, Layers: 118, Seq: 4096, FFNMult: 4, Vocab: 102400}
}

// Bloom176B returns Bloom 176B.
func Bloom176B() Config {
	return Config{Name: "Bloom 176B", Heads: 112, Batch: 128, Hidden: 14336, Layers: 70, Seq: 2048, FFNMult: 4, Vocab: 250880}
}

// Llama2_30B returns the Llama2 30B-class model used in Fig. 7(c).
func Llama2_30B() Config {
	return Config{Name: "Llama2 30B", Heads: 52, Batch: 128, Hidden: 6656, Layers: 60, Seq: 4096, FFNMult: 4, Vocab: 32000}
}

// Llama2_70B returns Llama2 70B.
func Llama2_70B() Config {
	return Config{Name: "Llama2 70B", Heads: 64, Batch: 128, Hidden: 8192, Layers: 80, Seq: 4096, FFNMult: 4, Vocab: 32000}
}

// EvaluationModels returns the six Table II models in paper order.
func EvaluationModels() []Config {
	return []Config{GPT3_6_7B(), Llama2_7B(), Llama3_70B(), GPT3_76B(), GPT3_175B(), OPT_175B()}
}

// Zoo returns every named model in the repository — Table II, the
// multi-wafer models of §VIII-E and the motivation models of Fig. 4 —
// in paper order. The scenario registry is seeded from it.
func Zoo() []Config {
	return append(EvaluationModels(),
		Grok1_341B(), Llama3_405B(), GPT3_504B(),
		DeepSeek7B(), DeepSeek67B(), DeepSeekV2_236B(),
		Bloom176B(), Llama2_30B(), Llama2_70B())
}

// Validate checks the structural invariants a configuration must
// satisfy before the cost model can price it: positive shape
// dimensions and a hidden dimension the attention heads divide.
func (c Config) Validate() error {
	if c.Layers <= 0 {
		return fmt.Errorf("model: %q has %d layers, need ≥ 1", c.Name, c.Layers)
	}
	if c.Hidden <= 0 {
		return fmt.Errorf("model: %q has non-positive hidden dim %d", c.Name, c.Hidden)
	}
	if c.Heads <= 0 {
		return fmt.Errorf("model: %q has non-positive head count %d", c.Name, c.Heads)
	}
	if c.Hidden%c.Heads != 0 {
		return fmt.Errorf("model: %q hidden dim %d is not divisible by %d heads", c.Name, c.Hidden, c.Heads)
	}
	if c.Batch <= 0 || c.Seq <= 0 {
		return fmt.Errorf("model: %q has non-positive batch/seq (%d, %d)", c.Name, c.Batch, c.Seq)
	}
	if c.FFNMult <= 0 {
		return fmt.Errorf("model: %q has non-positive FFN multiplier %d", c.Name, c.FFNMult)
	}
	return nil
}

// WithSeq returns a copy with sequence length (and optionally batch)
// overridden; used by the long-sequence studies (Fig. 17/18).
func (c Config) WithSeq(seq, batch int) Config {
	c.Seq = seq
	if batch > 0 {
		c.Batch = batch
	}
	c.Name = fmt.Sprintf("%s(S=%d)", c.Name, seq)
	return c
}

// ParamBytes returns the FP16 weight bytes of the full model.
func (c Config) ParamBytes() float64 {
	return float64(c.Params()) * unit.FP16.Size()
}

// String implements fmt.Stringer.
func (c Config) String() string {
	return fmt.Sprintf("%s{H=%d L=%d heads=%d B=%d S=%d}", c.Name, c.Hidden, c.Layers, c.Heads, c.Batch, c.Seq)
}

// WeightShape returns the [N,K] weight tensor of a named projection.
func (c Config) WeightShape(name string, n, k int) tensor.Shape {
	return tensor.Weight(name, int64(n), int64(k), unit.FP16)
}
