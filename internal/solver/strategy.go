package solver

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"temp/internal/model"
	"temp/internal/parallel"
)

// Problem is one partition-mapping search instance: the block graph,
// the candidate strategy space and the cost model pricing them. Every
// Strategy solves the same Problem shape over the shared evaluator
// core, so strategies compose (the portfolio races them) and swap
// freely behind the CLIs and scenario specs.
type Problem struct {
	// Graph is the operator chain being assigned (model.BlockGraph).
	Graph model.Graph
	// Space is the candidate strategy space
	// (parallel.EnumerateConfigs).
	Space []parallel.Config
	// Model prices operators exactly; see the CostModel concurrency
	// contract. Every winner a strategy returns is priced on it.
	Model CostModel
	// Screen optionally provides a cheap lower-fidelity model (e.g.
	// the surrogate backend's operator DNN) for multi-fidelity
	// search: the multifid strategy explores on Screen and verifies
	// on Model, and the portfolio adds a multifid racer when Screen
	// is set. Nil disables screening.
	Screen CostModel
}

// valid reports whether the problem has anything to search.
func (p Problem) valid() bool {
	return len(p.Graph.Ops) > 0 && len(p.Space) > 0
}

// evaluator builds a fresh shared pricing core for one Solve call.
func (p Problem) evaluator() *evaluator {
	return newEvaluator(p.Model, p.Graph.Ops, p.Space)
}

// seedAssignment returns the search's starting point: the budget's
// Resume snapshot when present (and the right length), otherwise the
// chain-DP seed.
func (p Problem) seedAssignment(ev *evaluator, b Budget) Assignment {
	if len(b.Resume) == len(p.Graph.Ops) && len(b.Resume) > 0 {
		return append(Assignment(nil), b.Resume...)
	}
	return ev.seedDP(p.Graph)
}

// Budget bounds one Solve call. The zero Budget is unlimited: each
// strategy runs its configured iteration counts to completion,
// bit-identically to the pre-framework search.
type Budget struct {
	// MaxEvals stops the search once the evaluator has priced this
	// many distinct cost-model terms; 0 means unlimited.
	MaxEvals int
	// Deadline stops the search after this much wall-clock time; 0
	// means unlimited.
	Deadline time.Duration
	// Checkpoint records a best-so-far snapshot in Stats.Checkpoints
	// every N iterations/generations; 0 disables periodic snapshots.
	Checkpoint int
	// Workers bounds parallel evaluation inside a strategy (the GA's
	// population pricing, the portfolio's race); 0 means GOMAXPROCS.
	// Results are bit-identical at any worker count.
	Workers int
	// Resume warm-starts the search from a prior best-so-far
	// assignment (e.g. a Stats.Checkpoints entry) instead of the
	// chain-DP seed. Nil preserves the default seeding.
	Resume Assignment
	// OnCheckpoint, when non-nil, is invoked synchronously from the
	// search loop with each snapshot as it is recorded — the serving
	// daemon's live best-so-far streaming hook. The callback receives
	// the same Checkpoint appended to Stats.Checkpoints (its
	// Assignment is a fresh copy, safe to retain) and must return
	// promptly: the search blocks on it. Ignored by JSON and gob
	// encodings, so budgets travel over the distrib wire unchanged.
	OnCheckpoint func(Checkpoint) `json:"-"`
}

// Checkpoint is one periodic best-so-far snapshot: enough to resume
// the search (pass Assignment as Budget.Resume) or to plot
// convergence.
type Checkpoint struct {
	// Iteration is the generation (GA) or move (local search) index
	// at which the snapshot was taken.
	Iteration int
	// Evaluations is the distinct cost-model evaluation count so far.
	Evaluations int
	// Cost is the best cost found so far.
	Cost float64
	// Elapsed is the wall-clock time into the search.
	Elapsed time.Duration
	// Assignment is a copy of the best assignment so far.
	Assignment Assignment
}

// Stats records what a search did.
type Stats struct {
	// Strategy names the search that produced these stats.
	Strategy string
	// Evaluations counts distinct Intra/Inter cost-model calls on the
	// exact model (the memoized unique-key count, identical at any
	// worker count).
	Evaluations int
	// ScreenEvaluations counts distinct calls on the cheap screening
	// model during multi-fidelity search (zero elsewhere).
	ScreenEvaluations int
	// Nodes counts search-tree expansions (exhaustive search only);
	// it is the quantity that explodes as Ω(|S|^m) in §III
	// challenge 3.
	Nodes int
	// Elapsed is the wall-clock search time.
	Elapsed time.Duration
	// DPCost is the cost of the chain-DP seed (or the Resume
	// snapshot when warm-started).
	DPCost float64
	// FinalCost is the cost after refinement.
	FinalCost float64
	// Generations the GA ran.
	Generations int
	// Iterations counts local-search moves (anneal, hillclimb).
	Iterations int
	// Restarts counts hill-climb restarts.
	Restarts int
	// Checkpoints are the periodic best-so-far snapshots requested
	// via Budget.Checkpoint.
	Checkpoints []Checkpoint
	// Winner names the sub-strategy that produced the portfolio's
	// result; Sub carries each racer's stats.
	Winner string
	Sub    []Stats
}

// Strategy is one pluggable search algorithm over the shared
// Problem/evaluator core. Implementations must be deterministic per
// seed and safe to run concurrently with other Solve calls (each call
// builds its own evaluator state).
type Strategy interface {
	// Name identifies the strategy in registries, specs and stats.
	Name() string
	// Solve searches the problem within the budget and returns the
	// best assignment found plus search stats.
	Solve(ctx context.Context, p Problem, b Budget) (Assignment, Stats)
}

// Params carries strategy tuning knobs by name ("population",
// "generations", "mutation", "seed", ...). Unknown knobs are
// rejected by the factories so spec typos surface as errors.
type Params map[string]float64

// value returns the named knob or def when absent.
func (p Params) value(name string, def float64) float64 {
	if v, ok := p[name]; ok {
		return v
	}
	return def
}

// seed returns the "seed" knob as an integer.
func (p Params) seed() int64 { return int64(p.value("seed", 0)) }

// checkKnown rejects knobs outside the allowed set.
func (p Params) checkKnown(strategy string, known ...string) error {
	for k := range p {
		ok := false
		for _, n := range known {
			if k == n {
				ok = true
				break
			}
		}
		if !ok {
			sort.Strings(known)
			return fmt.Errorf("solver: strategy %q has no param %q (have %s)",
				strategy, k, strings.Join(known, ", "))
		}
	}
	return nil
}

// Factory builds a configured Strategy from named params.
type Factory func(Params) (Strategy, error)

// strategyRegistry is the name-keyed strategy catalogue the spec
// layer and the CLIs resolve against.
var strategyRegistry = struct {
	mu      sync.RWMutex
	order   []string
	factory map[string]Factory
}{factory: map[string]Factory{}}

// RegisterStrategy adds a named strategy factory. Names are
// case-insensitive; re-registering a name replaces the previous
// factory.
func RegisterStrategy(name string, f Factory) {
	key := strings.ToLower(strings.TrimSpace(name))
	strategyRegistry.mu.Lock()
	defer strategyRegistry.mu.Unlock()
	if _, exists := strategyRegistry.factory[key]; !exists {
		strategyRegistry.order = append(strategyRegistry.order, name)
	}
	strategyRegistry.factory[key] = f
}

// NewStrategy builds a registered strategy by name. Names are
// case-insensitive.
func NewStrategy(name string, p Params) (Strategy, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	strategyRegistry.mu.RLock()
	f, ok := strategyRegistry.factory[key]
	strategyRegistry.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("solver: unknown strategy %q (have %s)",
			name, strings.Join(StrategyNames(), ", "))
	}
	return f(p)
}

// StrategyNames lists registered strategies in registration order.
func StrategyNames() []string {
	strategyRegistry.mu.RLock()
	defer strategyRegistry.mu.RUnlock()
	out := make([]string, len(strategyRegistry.order))
	copy(out, strategyRegistry.order)
	return out
}

// run tracks one Solve call's budget and checkpoint bookkeeping.
type run struct {
	start time.Time
	b     Budget
	ev    *evaluator
	stats *Stats
}

func newRun(b Budget, ev *evaluator, stats *Stats) *run {
	return &run{start: time.Now(), b: b, ev: ev, stats: stats}
}

// stop reports whether the search must end: context cancelled, eval
// budget spent, or deadline passed.
func (r *run) stop(ctx context.Context) bool {
	if ctx.Err() != nil {
		return true
	}
	if r.b.MaxEvals > 0 && int(r.ev.n.Load()) >= r.b.MaxEvals {
		return true
	}
	if r.b.Deadline > 0 && time.Since(r.start) >= r.b.Deadline {
		return true
	}
	return false
}

// checkpoint records a best-so-far snapshot when the iteration hits
// the budget's checkpoint interval.
func (r *run) checkpoint(iter int, best Assignment, cost float64) {
	if r.b.Checkpoint <= 0 || iter == 0 || iter%r.b.Checkpoint != 0 {
		return
	}
	cp := Checkpoint{
		Iteration:   iter,
		Evaluations: int(r.ev.n.Load()),
		Cost:        cost,
		Elapsed:     time.Since(r.start),
		Assignment:  append(Assignment(nil), best...),
	}
	r.stats.Checkpoints = append(r.stats.Checkpoints, cp)
	if r.b.OnCheckpoint != nil {
		// The callback gets its own assignment copy: a consumer
		// mutating a delivered snapshot (e.g. to warm-start another
		// search) must not corrupt the recorded stats.
		cb := cp
		cb.Assignment = append(Assignment(nil), cp.Assignment...)
		r.b.OnCheckpoint(cb)
	}
}

// finish stamps the closing stats fields shared by all strategies.
func (r *run) finish(cost float64) {
	r.stats.FinalCost = cost
	r.stats.Evaluations = int(r.ev.n.Load())
	r.stats.Elapsed = time.Since(r.start)
}

func init() {
	RegisterStrategy("ga", newGA)
	RegisterStrategy("anneal", newAnneal)
	RegisterStrategy("hillclimb", newHillClimb)
	RegisterStrategy("dp", newDP)
	RegisterStrategy("portfolio", newPortfolio)
	RegisterStrategy("multifid", newMultiFidelity)
}
