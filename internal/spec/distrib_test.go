package spec

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestDistribSpecRoundTrip: the distrib block survives a JSON
// round-trip and resolves cleanly.
func TestDistribSpecRoundTrip(t *testing.T) {
	in := `{"name":"x","model":"gpt3-175b","wafer":"wsc-4x8","distrib":{"workers":4,"shard_size":2,"retries":3}}`
	s, err := ParseScenario([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	want := &DistribSpec{Workers: 4, ShardSize: 2, Retries: 3}
	if !reflect.DeepEqual(s.Distrib, want) {
		t.Fatalf("distrib = %+v, want %+v", s.Distrib, want)
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseScenario(data)
	if err != nil {
		t.Fatalf("re-parse: %v (json %s)", err, data)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Error("scenario spec changed across JSON round-trip")
	}
	if _, err := s.Resolve(); err != nil {
		t.Fatalf("resolve: %v", err)
	}
}

// TestDistribSpecValidation: negative counts are rejected at Resolve,
// and a missing block stays nil (in-process default).
func TestDistribSpecValidation(t *testing.T) {
	for _, tc := range []struct {
		name, json, want string
	}{
		{
			"negative workers",
			`{"model":"gpt3-6.7b","wafer":"wsc-4x8","distrib":{"workers":-1}}`,
			"workers -1 is negative",
		},
		{
			"negative shard size",
			`{"model":"gpt3-6.7b","wafer":"wsc-4x8","distrib":{"workers":2,"shard_size":-4}}`,
			"shard_size -4 is negative",
		},
		{
			"negative retries",
			`{"model":"gpt3-6.7b","wafer":"wsc-4x8","distrib":{"workers":2,"retries":-2}}`,
			"retries -2 is negative",
		},
	} {
		s, err := ParseScenario([]byte(tc.json))
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.name, err)
		}
		if _, err := s.Resolve(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}

	s, err := ParseScenario([]byte(`{"model":"gpt3-6.7b","wafer":"wsc-4x8"}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Distrib != nil {
		t.Fatalf("distrib should default to nil, got %+v", s.Distrib)
	}
	if err := s.Distrib.validate("x"); err != nil {
		t.Fatalf("nil distrib should validate: %v", err)
	}
}
