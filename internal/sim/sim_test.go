package sim

import (
	"testing"

	"temp/internal/baselines"
	"temp/internal/hw"
	"temp/internal/model"
)

func TestCompareAllShape(t *testing.T) {
	rs, err := CompareAll(model.GPT3_6_7B(), hw.EvaluationWafer())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 7 {
		t.Fatalf("CompareAll = %d systems, want 7 (A–F + TEMP)", len(rs))
	}
	if rs[6].System != "TEMP" {
		t.Errorf("last system = %s, want TEMP", rs[6].System)
	}
	var temp = rs[6]
	if !temp.Feasible {
		t.Fatal("TEMP infeasible on 6.7B")
	}
	for _, r := range rs[:6] {
		if r.Feasible && r.StepTime < temp.StepTime*(1-1e-9) {
			t.Errorf("%s beats TEMP: %v < %v", r.System, r.StepTime, temp.StepTime)
		}
	}
}

func TestAblationLadder(t *testing.T) {
	rs, err := Ablation(model.GPT3_6_7B(), hw.EvaluationWafer())
	if err != nil {
		t.Fatal(err)
	}
	base, tatp, full := rs[0], rs[1], rs[2]
	if base.System != "Base" || tatp.System != "Base+TATP" || full.System != "Base+TATP+TCME" {
		t.Fatalf("ladder names wrong: %s/%s/%s", base.System, tatp.System, full.System)
	}
	if tatp.Config.Normalize().TATP < 2 {
		t.Errorf("+TATP rung chose TATP=%d", tatp.Config.Normalize().TATP)
	}
	if !tatp.Config.FSDP {
		t.Error("+TATP rung must keep the base system's FSDP sharding (Fig. 11 hybrid)")
	}
	// Paper Fig. 16: each rung improves (TCME within tolerance).
	if tatp.ThroughputTokens <= base.ThroughputTokens {
		t.Errorf("+TATP did not improve: %v vs %v", tatp.ThroughputTokens, base.ThroughputTokens)
	}
	if full.ThroughputTokens < tatp.ThroughputTokens*0.99 {
		t.Errorf("+TCME regressed: %v vs %v", full.ThroughputTokens, tatp.ThroughputTokens)
	}
}

func TestMultiWaferPPAcrossWafers(t *testing.T) {
	m := model.GPT3_175B()
	w := hw.EvaluationWafer()
	r, err := MultiWafer(baselines.TEMP(), m, w, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Config.PP != 2 {
		t.Errorf("TEMP PP = %d, want 2 (one stage per wafer)", r.Config.PP)
	}
	if r.BubbleTime <= 0 {
		t.Error("pipeline should produce bubbles")
	}
	if r.BubbleTime/r.StepTime > 0.5 {
		t.Errorf("bubble fraction %.2f implausibly high", r.BubbleTime/r.StepTime)
	}
}
