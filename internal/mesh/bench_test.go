package mesh

import (
	"testing"

	"temp/internal/hw"
)

// benchPhase builds a representative contended phase: every die of one
// ring step sends one chunk to its successor, plus a multi-hop wrap.
func benchPhase(t *Topology) Phase {
	var p Phase
	dies := t.Dies()
	for i := 0; i < dies; i++ {
		src, dst := DieID(i), DieID((i+1)%dies)
		route := t.Route(src, dst)
		if route == nil {
			continue
		}
		p.Flows = append(p.Flows, Flow{Src: src, Dst: dst, Bytes: 1 << 20, Route: route})
	}
	return p
}

func BenchmarkTime(b *testing.B) {
	t := New(4, 8, hw.TableID2D())
	p := benchPhase(t)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = t.Time(p)
	}
}

func BenchmarkTimeLarge(b *testing.B) {
	t := New(32, 32, hw.TableID2D())
	p := benchPhase(t)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = t.Time(p)
	}
}

func BenchmarkSeqTime(b *testing.B) {
	t := New(4, 8, hw.TableID2D())
	phases := make([]Phase, 14)
	for i := range phases {
		phases[i] = benchPhase(t)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = t.SeqTime(phases)
	}
}

func BenchmarkPhaseLoads(b *testing.B) {
	t := New(4, 8, hw.TableID2D())
	p := benchPhase(t)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Loads()
	}
}
