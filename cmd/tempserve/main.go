// Command tempserve runs the partition-mapping service: an HTTP/JSON
// daemon solving scenario requests for many concurrent tenants over
// one shared evaluation engine, so every request after the first hits
// warm interned topologies and memoized prices. Concurrent requests'
// cache misses coalesce into shared batched pricing calls; admission
// control bounds load per tenant (503 + Retry-After past capacity);
// streamed requests get live best-so-far checkpoints over SSE.
//
//	tempserve -listen :8080
//	tempserve -listen :8080 -memo-dir memo -coalesce 2ms
//	tempserve -listen :8080 -distribute 4
//	tempserve -loadtest -url http://127.0.0.1:8080 -mix examples/serve_mix -clients 8 -json load.json
//
//	curl -s localhost:8080/v1/solve -d '{"scenario":{"model":"gpt3-6.7b","wafer":"wsc-4x8"}}'
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"temp/internal/distrib"
	"temp/internal/engine"
	"temp/internal/serve"
)

func main() {
	var (
		listen        = flag.String("listen", ":8080", "HTTP listen address")
		workers       = flag.Int("workers", runtime.GOMAXPROCS(0), "evaluation worker-pool size")
		memoDir       = flag.String("memo-dir", os.Getenv("TEMPMEMO"), "persist priced results in this directory and warm-start from them (default $TEMPMEMO)")
		coalesce      = flag.Duration("coalesce", 2*time.Millisecond, "cross-request miss-coalescing window (0 disables)")
		maxConcurrent = flag.Int("max-concurrent", runtime.GOMAXPROCS(0), "solve requests running at once")
		maxQueue      = flag.Int("max-queue", 64, "solve requests waiting past -max-concurrent before 503")
		distribute    = flag.Int("distribute", 0, "fan multi-scenario requests across N worker subprocesses")
		syncMemo      = flag.Bool("sync-memo", false, "ship the warm disk-memo to workers over the wire instead of sharing -memo-dir (shared-nothing workers)")
		drainGrace    = flag.Duration("drain-grace", 30*time.Second, "SIGTERM drain: time in-flight solves get to finish before cancellation")
		checkpointDir = flag.String("checkpoint-dir", "", "persist best-so-far checkpoints of solves cancelled during drain to this directory")
		workerMode    = flag.Bool("worker-mode", false, "internal: serve shards from a coordinator over stdio")

		loadtest = flag.Bool("loadtest", false, "run as load generator against -url instead of serving")
		url      = flag.String("url", "http://127.0.0.1:8080", "-loadtest: daemon base URL")
		mixDir   = flag.String("mix", "examples/serve_mix", "-loadtest: directory of request/scenario JSON files to replay")
		clients  = flag.Int("clients", 8, "-loadtest: concurrent client loops")
		repeat   = flag.Int("repeat", 1, "-loadtest: times each mix entry is replayed per pass")
		passes   = flag.Int("passes", 2, "-loadtest: sweeps over the mix (first cold, rest warm)")
		verify   = flag.Bool("verify", true, "-loadtest: byte-compare served results against a direct in-process solve")
		jsonPath = flag.String("json", "", "-loadtest: write the load report to this file")
	)
	flag.Parse()
	engine.SetWorkers(*workers)

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "tempserve:", err)
		os.Exit(1)
	}
	if *memoDir != "" {
		dm, err := engine.AttachDiskMemo(*memoDir)
		if err != nil {
			fail(err)
		}
		defer dm.Close()
	}
	if *workerMode {
		if err := distrib.ServeStdio(); err != nil {
			fail(err)
		}
		return
	}
	if *loadtest {
		runLoadtest(*url, *mixDir, *clients, *repeat, *passes, *verify, *jsonPath, fail)
		return
	}

	if *coalesce > 0 {
		engine.SetCoalescer(engine.NewCoalescer(nil, *coalesce, 0))
	}
	var fab *distrib.Fabric
	if *distribute > 0 {
		exe, err := os.Executable()
		if err != nil {
			fail(err)
		}
		cmdline := []string{exe, "-worker-mode", "-workers", fmt.Sprint(*workers)}
		if *memoDir != "" && !*syncMemo {
			// Workers share the memo directory; with -sync-memo they
			// instead receive the warm segment over the wire at attach.
			cmdline = append(cmdline, "-memo-dir", *memoDir)
		}
		if fab, err = distrib.New(distrib.Options{Workers: *distribute, Command: cmdline, SyncMemo: *syncMemo}); err != nil {
			fmt.Fprintln(os.Stderr, "tempserve: distrib:", err)
		}
		defer fab.Shutdown()
	}

	srv := serve.New(serve.Options{
		MaxConcurrent: *maxConcurrent,
		MaxQueue:      *maxQueue,
		Fabric:        fab,
		CheckpointDir: *checkpointDir,
	})
	httpSrv := &http.Server{Addr: *listen, Handler: srv}

	// Graceful shutdown on SIGTERM/SIGINT: new solves get 503 +
	// Retry-After while in-flight ones finish inside the grace period
	// (stragglers are checkpointed then cancelled), the fabric stops
	// dealing shards, and only then does the listener close — so the
	// 503s are servable for the whole drain.
	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintf(os.Stderr, "tempserve: draining (grace %s)\n", *drainGrace)
		dctx, dcancel := context.WithTimeout(context.Background(), *drainGrace)
		rep := srv.Drain(dctx)
		dcancel()
		fmt.Fprintf(os.Stderr, "tempserve: drain done: %d in-flight, %d completed, %d canceled\n",
			rep.Inflight, rep.Completed, rep.Canceled)
		for _, cp := range rep.Checkpoints {
			fmt.Fprintf(os.Stderr, "tempserve: checkpoint persisted: %s\n", cp)
		}
		for _, e := range rep.Errors {
			fmt.Fprintf(os.Stderr, "tempserve: drain: %s\n", e)
		}
		if fab != nil {
			fab.Drain()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
		close(done)
	}()

	fmt.Fprintf(os.Stderr, "tempserve: listening on %s (workers %d, max-concurrent %d, queue %d, coalesce %s, distribute %d)\n",
		*listen, *workers, *maxConcurrent, *maxQueue, *coalesce, *distribute)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fail(err)
	}
	<-done
}

// runLoadtest drives a running daemon and prints the report.
func runLoadtest(url, mixDir string, clients, repeat, passes int, verify bool, jsonPath string, fail func(error)) {
	mix, err := serve.LoadMix(mixDir)
	if err != nil {
		fail(err)
	}
	rep, err := serve.RunLoad(serve.LoadOptions{
		URL: url, Clients: clients, Repeat: repeat, Passes: passes,
		Mix: mix, Verify: verify,
	})
	if err != nil {
		fail(err)
	}
	for _, p := range rep.Passes {
		fmt.Printf("pass %d  %4d requests (%d errors)  %8.2f solves/s  p50 %s  p95 %s  p99 %s  queue %s  hit ratio %.2f\n",
			p.Pass, p.Requests, p.Errors, p.SolvesSec,
			time.Duration(p.P50NS), time.Duration(p.P95NS), time.Duration(p.P99NS),
			time.Duration(p.MeanQueueNS), p.HitRatio)
	}
	fmt.Printf("warm speedup %.2fx\n", rep.WarmSpeedup)
	if rep.Verify != nil {
		if rep.Verify.Match {
			fmt.Printf("verify       %d/%d served results bit-identical to direct solve\n",
				rep.Verify.Checked, len(mix))
		} else {
			fmt.Printf("verify       MISMATCH: %s\n", rep.Verify.Mismatch)
		}
	}
	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			fail(err)
		}
	}
	if rep.Verify != nil && !rep.Verify.Match {
		os.Exit(1)
	}
}
