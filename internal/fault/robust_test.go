package fault

import (
	"testing"

	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
	"temp/internal/solver"
)

func TestRobustModelEnsemble(t *testing.T) {
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	base := &solver.Analytic{W: w, M: m}
	rm, err := NewRobustModel(base, m, w, Injection{LinkRate: 0.1}, 3, 99, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Masks() < 1 || rm.Masks() > 3 {
		t.Fatalf("ensemble size %d, want 1..3", rm.Masks())
	}
	g := model.BlockGraph(m)
	op := g.Ops[0]
	cfg := parallel.Config{DP: 4, TATP: 8}
	v := rm.Intra(op, cfg)
	if v <= 0 {
		t.Errorf("robust intra %v, want > 0", v)
	}
	if rm.MemoryOK(cfg) != base.MemoryOK(cfg) {
		t.Error("robust feasibility diverges from the fault-free model")
	}

	// Deterministic: same seed rebuilds the identical ensemble.
	rm2, err := NewRobustModel(base, m, w, Injection{LinkRate: 0.1}, 3, 99, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rm2.Masks() != rm.Masks() || rm2.Intra(op, cfg) != v {
		t.Error("robust model not deterministic across construction")
	}
	if len(g.Ops) > 1 {
		if rm.Inter(g.Ops[0], g.Ops[1], cfg, cfg) != rm2.Inter(g.Ops[0], g.Ops[1], cfg, cfg) {
			t.Error("robust inter cost not deterministic")
		}
	}
}

func TestRobustModelRejectsBadArgs(t *testing.T) {
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	base := &solver.Analytic{W: w, M: m}
	if _, err := NewRobustModel(base, m, w, Injection{}, 3, 99, 0.5); err == nil {
		t.Error("inactive injection accepted")
	}
	if _, err := NewRobustModel(base, m, w, Injection{LinkRate: 0.1}, 3, 99, 1.5); err == nil {
		t.Error("weight 1.5 accepted")
	}
	if _, err := NewRobustModel(base, m, w, Injection{LinkRate: 0.1}, 3, 99, -0.5); err == nil {
		t.Error("weight -0.5 accepted")
	}
}
