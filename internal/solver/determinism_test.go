package solver

import (
	"testing"

	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
)

// TestDLSWorkerCountInvariance is the refactor's safety net: for a
// fixed seed the dual-level search must return a bit-identical
// assignment, cost and evaluation count whether the GA population is
// priced serially or fanned out across workers. The RNG only drives
// the serial variation steps, so any divergence means parallel
// evaluation leaked into the search trajectory.
func TestDLSWorkerCountInvariance(t *testing.T) {
	w := hw.EvaluationWafer()
	space := parallel.EnumerateConfigs(w.Dies(), true, 0)
	cases := []struct {
		m    model.Config
		seed int64
	}{
		{model.GPT3_6_7B(), 7},
		{model.GPT3_6_7B(), 42},
		{model.Llama3_70B(), 7},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.m.Name, func(t *testing.T) {
			g := model.BlockGraph(tc.m)
			cm := &Analytic{W: w, M: tc.m}
			refAssign, refStats, err := DLS(g, space, cm, DLSOptions{Seed: tc.seed, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 8} {
				a, s, err := DLS(g, space, cm, DLSOptions{Seed: tc.seed, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if s.FinalCost != refStats.FinalCost {
					t.Errorf("workers=%d: FinalCost %v ≠ serial %v", workers, s.FinalCost, refStats.FinalCost)
				}
				if s.DPCost != refStats.DPCost {
					t.Errorf("workers=%d: DPCost %v ≠ serial %v", workers, s.DPCost, refStats.DPCost)
				}
				if s.Evaluations != refStats.Evaluations {
					t.Errorf("workers=%d: Evaluations %d ≠ serial %d (unique-key count must not depend on scheduling)",
						workers, s.Evaluations, refStats.Evaluations)
				}
				if len(a) != len(refAssign) {
					t.Fatalf("workers=%d: assignment length %d ≠ %d", workers, len(a), len(refAssign))
				}
				for i := range a {
					if a[i] != refAssign[i] {
						t.Fatalf("workers=%d: assignment diverged at op %d: %d ≠ %d",
							workers, i, a[i], refAssign[i])
					}
				}
			}
		})
	}
}
